// Slab-arena exponential histograms: the storage engine of the per-key
// exact counter store (engine/keyed_store.h).
//
// ExponentialHistogram is the right synopsis per key, but the class itself
// is built for a few thousand sketch cells, not a few million keys: each
// instance owns a level directory plus one std::vector ring per level —
// three heap blocks and ~200 bytes of frame before the first bucket. At a
// million keys that is pointer-chasing per touch and an allocator call on
// every admission (the SAM shape: `std::map<string, shared_ptr<EH>>`).
//
// This file flattens the whole histogram into ONE contiguous span of
// 8-byte slots inside a shared slab arena:
//
//   * slot = (level << 56) | end_timestamp — buckets are self-describing,
//     so there is no per-key level directory at all;
//   * bucket age strictly decreases with position: the span is ordered
//     oldest→newest, which (by the EH invariant "bucket sizes are
//     non-decreasing with age") means levels are non-increasing and end
//     timestamps ascending — every per-level operation of the classic
//     algorithm becomes a binary search inside the span;
//   * spans live in size-class blocks (jemalloc spacing: powers of two
//     plus 1.5x midpoints) carved from 64 KiB slab pages; freed blocks
//     recycle through per-class free lists, so admission/eviction churn
//     never touches malloc in steady state;
//   * per-key header state is a 32-byte POD (SlabEhState) the caller
//     embeds in its own record — the pool holds no per-key allocation.
//
// Semantics are replicated from ExponentialHistogram EXACTLY — the same
// level capacity, unit cascade, closed-form weighted batch insert, expiry
// rule, estimate arithmetic (including the straddle half-correction and
// accumulation order) and NextEstimateChangeAt. tests/slab_eh_test.cc pins
// bit-identical estimates against ExponentialHistogram over randomized
// weighted add/expire/query interleavings; the keyed store's differential
// suite leans on that identity for its naive-map oracle.

#ifndef ECM_WINDOW_SLAB_EH_H_
#define ECM_WINDOW_SLAB_EH_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/window/exponential_histogram.h"
#include "src/window/window_spec.h"

namespace ecm {

/// Page-based slab allocator for 8-byte slot blocks in jemalloc-spaced
/// size classes (2, 3, 4, 6, 8, 12, ..., 32768 slots — powers of two plus
/// their 1.5x midpoints, so internal fragmentation is bounded by ~33%
/// instead of 2x). Blocks are addressed by a 32-bit handle; freed blocks
/// go to per-class free lists and are handed out again before any new
/// page is carved.
class SlabArena {
 public:
  static constexpr uint32_t kNullBlock = 0xFFFFFFFFu;
  // 2-slot minimum: a key holding 1-2 buckets (the steady state of the
  // million-key cold tail) pays 16 bytes of slab, a 3-bucket key 24.
  static constexpr uint32_t kMinBlockSlots = 2;
  static constexpr int kNumClasses = 29;
  static constexpr uint32_t kPageSlots = 8192;  // 64 KiB pages

  /// Number of slots in a class-`cls` block.
  static uint32_t ClassSlots(uint8_t cls) { return kClassSlots[cls]; }

  /// Smallest class whose blocks hold at least `slots` slots. `slots` must
  /// be <= ClassSlots(kNumClasses - 1).
  static uint8_t ClassFor(uint32_t slots);

  /// Hands out a block of class `cls` (recycled if possible).
  uint32_t Allocate(uint8_t cls);

  /// Returns `handle` (a block of class `cls`) to its free list.
  void Free(uint32_t handle, uint8_t cls);

  uint64_t* Slots(uint32_t handle) {
    const Page& p = pages_[handle >> kBlockBits];
    return p.slots.get() +
           static_cast<size_t>(handle & kBlockMask) * p.block_slots;
  }
  const uint64_t* Slots(uint32_t handle) const {
    const Page& p = pages_[handle >> kBlockBits];
    return p.slots.get() +
           static_cast<size_t>(handle & kBlockMask) * p.block_slots;
  }

  /// Pages currently held (pages are never returned to the OS; freed
  /// blocks recycle within them).
  size_t NumPages() const { return pages_.size(); }

  /// Blocks handed out and not yet freed.
  size_t LiveBlocks() const { return live_blocks_; }

  /// Total footprint: page storage plus free-list bookkeeping.
  size_t MemoryBytes() const;

 private:
  // Handle = page index << kBlockBits | block index within page.
  static constexpr int kBlockBits = 12;
  static constexpr uint32_t kBlockMask = (1u << kBlockBits) - 1;

  // Powers of two and their 1.5x midpoints, ascending.
  static constexpr uint32_t kClassSlots[kNumClasses] = {
      2,    3,    4,    6,    8,    12,   16,    24,    32,    48,
      64,   96,   128,  192,  256,  384,  512,   768,   1024,  1536,
      2048, 3072, 4096, 6144, 8192, 12288, 16384, 24576, 32768};

  struct Page {
    std::unique_ptr<uint64_t[]> slots;
    uint32_t num_slots = 0;
    // ClassSlots(cls) of the class this page is carved for.
    uint16_t block_slots = 0;
  };

  std::vector<Page> pages_;
  std::array<std::vector<uint32_t>, kNumClasses> free_;
  size_t live_blocks_ = 0;
};

/// Per-key histogram header. POD; embed it in the owning record. All
/// fields are managed by SlabEhPool — callers only read `total` via the
/// pool accessors. A default-constructed state is a valid empty histogram.
struct SlabEhState {
  uint64_t total = 0;          ///< sum of held bucket sizes
  Timestamp expired_end = 0;   ///< end of the most recently expired bucket
  uint32_t block = SlabArena::kNullBlock;
  uint16_t start = 0;          ///< offset of the oldest slot in the block
  uint16_t count = 0;          ///< buckets held
  uint8_t cls = 0;             ///< size class of `block`
};

/// Shared-configuration pool of slab histograms: one (epsilon, window)
/// pair, one arena, any number of SlabEhState instances. Not thread-safe
/// (the keyed store shards by design, like the rest of the library).
class SlabEhPool {
 public:
  /// Same parameters as ExponentialHistogram::Config. The slab layout
  /// bounds the per-level capacity at kMaxLevelCapacity (epsilon >=
  /// ~1/500) so that slot counts fit the 16-bit header fields; that
  /// covers every per-key configuration of interest (per-key counters
  /// trade epsilon for memory at million-key scale).
  SlabEhPool(double epsilon, uint64_t window_len);

  /// Registers `count` arrivals at `ts` and expires what slid out,
  /// exactly like ExponentialHistogram::Add. Timestamps must be
  /// non-decreasing per state and < 2^56 (the slot encoding bound).
  void Add(SlabEhState* s, Timestamp ts, uint64_t count = 1);

  /// Drops buckets entirely outside the window ending at `now`; shrinks
  /// or frees the block when occupancy drops far enough.
  void Expire(SlabEhState* s, Timestamp now);

  /// Frees the state's block and resets it to empty.
  void Release(SlabEhState* s);

  /// Bit-identical to ExponentialHistogram::Estimate on the same add
  /// sequence (see header comment).
  double Estimate(const SlabEhState& s, Timestamp now, uint64_t range) const;

  /// Bit-identical to ExponentialHistogram::NextEstimateChangeAt: the
  /// earliest clock strictly after `now` at which Estimate(·, range) can
  /// change without further adds; 0 if it never can. The keyed store's
  /// expiry wheel schedules keys off this, so idle keys cost nothing
  /// until their oldest content can actually expire.
  Timestamp NextEstimateChangeAt(const SlabEhState& s, Timestamp now,
                                 uint64_t range) const;

  uint64_t BucketTotal(const SlabEhState& s) const { return s.total; }
  size_t NumBuckets(const SlabEhState& s) const { return s.count; }

  /// Snapshot (oldest first) for tests, mirroring
  /// ExponentialHistogram::Buckets().
  std::vector<BucketView> Buckets(const SlabEhState& s) const;

  /// Arena-wide footprint (shared across all states of the pool).
  size_t MemoryBytes() const { return sizeof(*this) + arena_.MemoryBytes(); }

  const SlabArena& arena() const { return arena_; }
  double epsilon() const { return epsilon_; }
  uint64_t window_len() const { return window_len_; }
  size_t level_capacity() const { return level_capacity_; }

  /// Largest supported per-level bucket capacity (k + 2). Keeps the
  /// worst-case slot count of one histogram inside the largest size
  /// class and the 16-bit count field.
  static constexpr size_t kMaxLevelCapacity = 510;

 private:
  static constexpr int kLevelShift = 56;
  static constexpr uint64_t kEndMask = (1ULL << kLevelShift) - 1;

  static uint64_t EncodeSlot(uint64_t level, Timestamp end) {
    return (level << kLevelShift) | end;
  }
  static Timestamp SlotEnd(uint64_t slot) { return slot & kEndMask; }
  static uint64_t SlotLevel(uint64_t slot) { return slot >> kLevelShift; }

  // Makes room for `extra` more slots behind start+count, compacting to
  // offset 0 or growing the block as needed.
  void EnsureRoom(SlabEhState* s, uint32_t extra);
  // Moves the span into a block of class `new_cls` (grow or shrink).
  void Reblock(SlabEhState* s, uint8_t new_cls);

  void AddOne(SlabEhState* s, Timestamp ts);
  void AddBatch(SlabEhState* s, Timestamp ts, uint64_t count);

  double epsilon_;
  uint64_t window_len_;
  size_t level_capacity_;
  SlabArena arena_;
};

}  // namespace ecm

#endif  // ECM_WINDOW_SLAB_EH_H_
