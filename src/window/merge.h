// Order-preserving aggregation of sliding-window synopses (paper §5).
//
// The paper's key distributed-systems result: a set of *deterministic*
// sliding-window synopses (exponential histograms, deterministic waves)
// over time-based windows can be merged into a single synopsis of the
// interleaved logical stream S₁ ⊕ S₂ ⊕ … ⊕ Sₙ with bounded error
// inflation (Theorem 4: ε + ε' + εε'), by treating each input bucket as a
// log entry — half its content replayed at the bucket's start time, half
// at its end time — and feeding the replay into a fresh synopsis.
//
// Randomized waves merge losslessly (§5.2) by uniting per-level samples.
//
// Count-based windows CANNOT be merged (paper Fig. 2): the synopses
// preserve the order of their own arrivals but lose the interleaving with
// the other streams' arrivals, so "the last N global arrivals" is
// unanswerable. The entry points here take time-based synopses only; the
// mode check itself lives in EcmSketch::Merge, which owns the mode.

#ifndef ECM_WINDOW_MERGE_H_
#define ECM_WINDOW_MERGE_H_

#include <algorithm>
#include <vector>

#include "src/util/result.h"
#include "src/window/counter_traits.h"

namespace ecm {

/// One replay event of the §5.1 merge: `count` arrivals at time `ts`.
struct ReplayEvent {
  Timestamp ts;
  uint64_t count;
};

/// Expands a bucket log into replay events: ⌊C/2⌋ arrivals at the bucket's
/// start time, ⌈C/2⌉ at its end time (end gets the odd arrival so that
/// zero-width and size-1 buckets stay at their known newest timestamp).
/// Timestamps are clamped to >= 1 per the Add() convention.
void AppendBucketEvents(const std::vector<BucketView>& buckets,
                        std::vector<ReplayEvent>* events);

/// Sorts events by timestamp (stable) and replays them into `target`,
/// which may be any sliding-window counter.
template <SlidingWindowCounter C>
void ReplayInto(std::vector<ReplayEvent> events, C* target) {
  std::stable_sort(events.begin(), events.end(),
                   [](const ReplayEvent& a, const ReplayEvent& b) {
                     return a.ts < b.ts;
                   });
  for (const ReplayEvent& e : events) target->Add(e.ts, e.count);
}

/// Merges time-based exponential histograms (§5.1, Theorem 4). The result
/// is a fresh histogram with error parameter `eps_prime` covering the same
/// window; querying it carries relative error <= ε + ε' + εε'.
/// Fails if the inputs disagree on window length.
Result<ExponentialHistogram> MergeHistograms(
    const std::vector<const ExponentialHistogram*>& inputs, double eps_prime);

/// Merges time-based deterministic waves ("the aggregation technique
/// trivially extends for deterministic waves", §5.1). `max_arrivals` sizes
/// the merged wave's levels; pass the sum of per-stream bounds.
Result<DeterministicWave> MergeWaves(
    const std::vector<const DeterministicWave*>& inputs, double eps_prime,
    uint64_t max_arrivals);

/// Losslessly merges randomized waves (§5.2): per level, the union of the
/// input samples sorted by timestamp, truncated to the level capacity; if
/// the merged wave needs more levels than an input has, the input's top
/// level is sub-sampled onward by seeded coin flips (the "rehash" step of
/// Gibbons & Tirthapura). The merged wave keeps the inputs' (ε, δ)
/// guarantee. Fails if inputs disagree on ε, δ, window length, capacity,
/// or sub-wave count.
Result<RandomizedWave> MergeRandomizedWaves(
    const std::vector<const RandomizedWave*>& inputs, uint64_t seed);

}  // namespace ecm

#endif  // ECM_WINDOW_MERGE_H_
