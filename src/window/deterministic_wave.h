// Deterministic wave (Gibbons & Tirthapura, SPAA 2002) for ε-approximate
// basic counting over a sliding window — the "ECM-DW" counter variant.
//
// A wave keeps L levels; level j records the arrival ranks divisible by
// 2^j (together with their timestamps), retaining the most recent
// c = ceil(1/ε)+2 entries per level. A query for range r locates, at the
// finest level that still covers the range boundary, the last recorded rank
// at or before the boundary; the count of newer arrivals then has an
// uncertainty of at most 2^j - 1, which the level structure keeps below
// ε times the answer.
//
// Space matches the exponential histogram asymptotically
// (O(log²(g(N,S))/ε) bits); the wave's advantage (paper Table 2) is O(1)
// worst-case update time. Unlike the exponential histogram, the number of
// levels must be provisioned from an upper bound u(N,S) on the arrivals in
// a window (paper §4.2.2); overestimating u only costs log-many levels.
//
// NOTE: we implement the textbook variant whose update is O(1) amortized
// (a rank divisible by 2^j touches j+1 levels); Gibbons & Tirthapura
// de-amortize with staggered work, which changes no observable behaviour.

#ifndef ECM_WINDOW_DETERMINISTIC_WAVE_H_
#define ECM_WINDOW_DETERMINISTIC_WAVE_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/util/bytes.h"
#include "src/util/result.h"
#include "src/window/exponential_histogram.h"  // BucketView
#include "src/window/window_spec.h"

namespace ecm {

/// ε-approximate sliding-window counter with O(1) amortized updates and
/// levels provisioned from an a-priori arrival bound.
class DeterministicWave {
 public:
  struct Config {
    double epsilon = 0.1;        ///< max relative error of estimates
    uint64_t window_len = 100;   ///< N: window length (ticks or arrivals)
    uint64_t max_arrivals = 1 << 20;  ///< u(N,S): arrivals bound per window
  };

  DeterministicWave() : DeterministicWave(Config{}) {}
  explicit DeterministicWave(const Config& config);

  /// Registers `count` arrivals at timestamp `ts` (non-decreasing, >= 1).
  void Add(Timestamp ts, uint64_t count = 1);

  /// Estimated number of arrivals with timestamp in (now - range, now].
  double Estimate(Timestamp now, uint64_t range) const;

  /// Drops entries that can no longer influence any in-window query.
  void Expire(Timestamp now);

  /// Exact number of arrivals ever registered.
  uint64_t lifetime_count() const { return lifetime_; }

  /// Approximate in-memory footprint in bytes.
  size_t MemoryBytes() const;

  /// Reconstructs the stream suffix as buckets (oldest first): between two
  /// consecutive recorded ranks q_i < q_{i+1} exactly q_{i+1}-q_i arrivals
  /// happened in (ts_i, ts_{i+1}]. Feeds the §5.1-style merge, which the
  /// paper notes "trivially extends" to deterministic waves.
  std::vector<BucketView> Buckets() const;

  double epsilon() const { return epsilon_; }
  uint64_t window_len() const { return window_len_; }
  int num_levels() const { return static_cast<int>(levels_.size()); }
  Timestamp last_timestamp() const { return last_ts_; }

  /// Appends the exact wire encoding to `w`.
  void SerializeTo(ByteWriter* w) const;

  /// Decodes a wave previously written by SerializeTo.
  static Result<DeterministicWave> Deserialize(ByteReader* r);

 private:
  struct Entry {
    uint64_t rank;  // arrival index (1-based), divisible by 2^level
    Timestamp ts;
  };

  void AddOne(Timestamp ts);
  // Closed-form equivalent of `count` AddOne calls at one timestamp.
  void AddBatch(Timestamp ts, uint64_t count);

  double epsilon_;
  uint64_t window_len_;
  size_t level_capacity_;  // c = ceil(1/eps) + 2

  std::vector<std::deque<Entry>> levels_;
  // anchors_[j]: most recently evicted entry of level j (rank 0 at ts 0
  // initially); the left neighbour of levels_[j].front().
  std::vector<Entry> anchors_;
  uint64_t lifetime_ = 0;
  Timestamp last_ts_ = 0;
};

}  // namespace ecm

#endif  // ECM_WINDOW_DETERMINISTIC_WAVE_H_
