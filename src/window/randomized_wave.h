// Randomized wave (Gibbons & Tirthapura, SPAA 2002) — (ε, δ)-approximate
// basic counting over a sliding window, the "ECM-RW" counter variant.
//
// Each arrival is assigned an independent geometric level g (P[g >= l] =
// 2^-l); level l of the wave samples the stream with probability 2^-l by
// retaining the timestamps of arrivals with g >= l, keeping only the most
// recent c = ceil(k/ε²) per level. A query uses the finest level whose
// retained sample still spans the range boundary and scales the in-range
// sample count by 2^l. Repeating the structure in d = Θ(log 1/δ)
// independent sub-waves and taking the median of the estimates drives the
// failure probability below δ.
//
// Weighted arrivals use binomial-split batch sampling: the number of the
// c arrivals reaching level l+1 given the n_l that reached level l is
// Binomial(n_l, 1/2), so Add(ts, c) draws the whole per-level sample-count
// chain in O(log c) exact binomial splits (Rng::BinomialHalf). Each split
// popcounts ceil(n_l / 64) fair-coin words, so the chain costs ~c/32 Rng
// words in total — a 64x constant-factor cut over the c independent
// geometric draws (each ~2 words) plus the elimination of the per-arrival
// deque traffic. The chain has exactly the joint distribution of c
// per-arrival draws, and for c == 1 it consumes the very same coins, so
// unit streams are bit-identical to the per-arrival path. Retained samples
// are run-length compressed (all c samples of one arrival share a
// timestamp), which also makes the capacity ring update O(1) amortized per
// level.
//
// The point of carrying this Θ(1/ε²)-space structure alongside the
// deterministic synopses is the paper's central trade-off: randomized
// waves merge *losslessly* (§5.2) but cost one to two orders of magnitude
// more memory and network — exactly the effect benches fig4/fig5/fig6
// reproduce.

#ifndef ECM_WINDOW_RANDOMIZED_WAVE_H_
#define ECM_WINDOW_RANDOMIZED_WAVE_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/util/bytes.h"
#include "src/util/random.h"
#include "src/util/result.h"
#include "src/window/window_spec.h"

namespace ecm {

/// (ε, δ)-approximate sliding-window counter based on hierarchical
/// sampling. Losslessly mergeable across streams (see window/merge.h).
class RandomizedWave {
 public:
  struct Config {
    double epsilon = 0.1;        ///< target relative error
    double delta = 0.1;          ///< failure probability
    uint64_t window_len = 100;   ///< N: window length
    uint64_t max_arrivals = 1 << 20;  ///< u(N,S): arrivals bound per window
    uint64_t seed = 0xECADECADULL;    ///< sampling seed (per-counter)
    /// Per-level capacity multiplier: c = ceil(sample_constant / ε²).
    /// The theory constant is conservative; 4 reproduces the paper's
    /// accuracy in practice and keeps the memory ratio honest.
    double sample_constant = 4.0;
  };

  RandomizedWave() : RandomizedWave(Config{}) {}
  explicit RandomizedWave(const Config& config);

  /// Registers `count` arrivals at timestamp `ts` (non-decreasing, >= 1).
  /// Costs O(count / 64 + levels) coin words per sub-wave via
  /// binomial-split batch sampling (see the file comment);
  /// distributionally identical to `count` unit calls, and bit-identical
  /// to the per-arrival path for count == 1.
  void Add(Timestamp ts, uint64_t count = 1);

  /// Median-of-sub-waves estimate of the arrivals in (now - range, now].
  /// O(log) per sub-wave: the partition point is found by binary search
  /// and the in-range sample count read off the runs' cumulative counts
  /// (Sample::cum) instead of walking the run suffix.
  double Estimate(Timestamp now, uint64_t range) const;

  /// Pre-PR4 reference implementation of Estimate: identical level
  /// selection, but the in-range sample count is accumulated by a linear
  /// walk over the run suffix. Bit-identical to Estimate() — kept as the
  /// differential-test oracle and the bench ablation baseline.
  double EstimateScanReference(Timestamp now, uint64_t range) const;

  /// Earliest clock value strictly after `now` at which Estimate(·, range)
  /// can differ from its value at `now`, assuming no further Adds; 0 when
  /// it can never change again. Conservative (may fire when the median
  /// happens not to move): every per-level selection and partition flip
  /// happens when the window boundary crosses a retained sample
  /// timestamp, so the next candidate is the smallest retained timestamp
  /// past the boundary across all sub-waves and levels. Drives the
  /// geometric monitors' per-counter expiry-event heap.
  Timestamp NextEstimateChangeAt(Timestamp now, uint64_t range) const;

  /// Drops sample entries that can no longer influence in-window queries.
  void Expire(Timestamp now);

  /// Exact number of arrivals ever registered.
  uint64_t lifetime_count() const { return lifetime_; }

  /// Approximate in-memory footprint in bytes.
  size_t MemoryBytes() const;

  double epsilon() const { return epsilon_; }
  double delta() const { return delta_; }
  uint64_t window_len() const { return window_len_; }
  int num_subwaves() const { return static_cast<int>(subwaves_.size()); }
  int num_levels() const { return num_levels_; }
  size_t level_capacity() const { return level_capacity_; }
  Timestamp last_timestamp() const { return last_ts_; }

  /// A run of retained samples: `count` arrivals all stamped `ts`.
  /// `cum` is the run's inclusive cumulative sample count within its
  /// level's retained history: for adjacent runs a, b the invariant
  /// b.cum == a.cum + b.count holds, so the in-range suffix sum of any
  /// query is back().cum - predecessor.cum in O(1). Front evictions and
  /// anchor shrinks leave cum untouched (only the implied start offset
  /// front.cum - front.count moves), so maintenance is O(1) per push.
  struct Sample {
    Timestamp ts;
    uint64_t count;
    uint64_t cum = 0;
  };

  /// One independent sampling structure. Public so the §5.2 merge
  /// (window/merge.h) can unite per-level samples across waves.
  struct SubWave {
    /// levels[l] = run-length-compressed timestamps of retained arrivals
    /// with geometric level >= l, oldest first; total sample count per
    /// level is capped at the wave's level capacity.
    std::vector<std::deque<Sample>> levels;
    /// sizes[l] = total retained samples at level l (Σ run counts).
    std::vector<uint64_t> sizes;
    /// True once level l has dropped a sample (capacity or expiry): the
    /// sample no longer reaches arbitrarily far left.
    std::vector<bool> truncated;
  };

  const std::vector<SubWave>& subwaves() const { return subwaves_; }
  std::vector<SubWave>& mutable_subwaves() { return subwaves_; }

  /// Sets the lifetime counter (merge helper).
  void set_lifetime_count(uint64_t n) { lifetime_ = n; }
  void set_last_timestamp(Timestamp ts) { last_ts_ = ts; }

  /// Estimate from a single sub-wave (exposed for tests).
  double EstimateSubWave(int idx, Timestamp now, uint64_t range) const;

  /// Appends the exact wire encoding to `w`.
  void SerializeTo(ByteWriter* w) const;

  /// Decodes a wave previously written by SerializeTo.
  static Result<RandomizedWave> Deserialize(ByteReader* r);

 private:
  // Appends `n` samples stamped `ts` to `level` of `sw`, merging into the
  // newest run and evicting oldest samples past the level capacity.
  void PushSamples(SubWave* sw, int level, Timestamp ts, uint64_t n);

  double epsilon_;
  double delta_;
  uint64_t window_len_;
  size_t level_capacity_;
  int num_levels_;

  std::vector<SubWave> subwaves_;
  Rng rng_;
  uint64_t lifetime_ = 0;
  Timestamp last_ts_ = 0;
};

}  // namespace ecm

#endif  // ECM_WINDOW_RANDOMIZED_WAVE_H_
