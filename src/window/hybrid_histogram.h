// Hybrid histogram baseline (Qiao, Agrawal, El Abbadi, SSDBM 2003 — the
// paper's §2 related work): an exact high-resolution buffer over the most
// recent arrivals backed by an equi-width histogram over the older part
// of the window.
//
// Like the pure equi-width counter (core/equiwidth_cm.h), the hybrid
// gives NO bounded relative error once a query boundary falls into the
// equi-width region — but it is *exact* for short trailing ranges, which
// is precisely the regime its paper targets. We implement it so the
// ablation bench can reproduce the ECM paper's §2 comparison honestly:
// hybrid wins on very recent ranges, loses its guarantees on older ones,
// and cannot be merged.
//
// Satisfies SlidingWindowCounter; the EcmSketch<HybridHistogram> baseline
// sketch type lives in core/equiwidth_cm.h.

#ifndef ECM_WINDOW_HYBRID_HISTOGRAM_H_
#define ECM_WINDOW_HYBRID_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "src/window/window_spec.h"

namespace ecm {

/// Exact recent buffer + equi-width tail.
class HybridHistogram {
 public:
  struct Config {
    uint64_t window_len = 100;   ///< N: total window length
    uint64_t exact_len = 10;     ///< span kept at exact resolution
    uint32_t num_subwindows = 8; ///< equi-width slots over the tail
  };

  HybridHistogram() : HybridHistogram(Config{}) {}
  explicit HybridHistogram(const Config& config);

  /// Registers `count` arrivals at `ts` (non-decreasing, >= 1).
  void Add(Timestamp ts, uint64_t count = 1);

  /// Estimate of arrivals in (now-range, now]: exact for ranges within
  /// the exact buffer, linear slot interpolation beyond it.
  double Estimate(Timestamp now, uint64_t range) const;

  /// Migrates exact entries that aged past `exact_len` into the tail and
  /// drops expired tail slots.
  void Expire(Timestamp now);

  uint64_t lifetime_count() const { return lifetime_; }
  uint64_t window_len() const { return window_len_; }
  Timestamp last_timestamp() const { return last_ts_; }
  /// Span kept at exact resolution behind the newest arrival.
  uint64_t exact_len() const { return exact_len_; }
  /// Ticks covered per equi-width tail slot (error-bound hook for tests).
  uint64_t span() const { return span_; }
  size_t MemoryBytes() const;

  /// Number of runs currently in the exact buffer (test hook).
  size_t ExactRuns() const { return exact_.size(); }

 private:
  struct Run {
    Timestamp ts;
    uint64_t count;
  };

  size_t SlotIndex(Timestamp ts) const {
    return static_cast<size_t>((ts / span_) % slots_.size());
  }
  Timestamp SlotEpoch(Timestamp ts) const { return (ts / span_) * span_; }
  void AddToTail(Timestamp ts, uint64_t count);
  /// Migrates exact runs that aged past `exact_len` into the tail.
  void DemoteAged(Timestamp now);

  uint64_t window_len_;
  uint64_t exact_len_;
  uint64_t span_;
  // Demotion watermark: the highest exact-region start any Add/Expire has
  // demoted through. No tail-ring content is newer than this, which is
  // what lets Estimate() clamp tail interpolation out of the exact
  // region. Tracked explicitly because Expire(now) may run with a clock
  // ahead of last_ts_.
  Timestamp demoted_through_ = 0;
  std::deque<Run> exact_;  // oldest first, all within exact_len of last_ts_
  std::vector<uint64_t> slots_;
  std::vector<Timestamp> slot_epochs_;
  uint64_t lifetime_ = 0;
  Timestamp last_ts_ = 0;
};

}  // namespace ecm

#endif  // ECM_WINDOW_HYBRID_HISTOGRAM_H_
