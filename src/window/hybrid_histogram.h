// Hybrid histogram baseline (Qiao, Agrawal, El Abbadi, SSDBM 2003 — the
// paper's §2 related work): an exact high-resolution buffer over the most
// recent arrivals backed by an equi-width histogram over the older part
// of the window.
//
// Like the pure equi-width counter (core/equiwidth_cm.h), the hybrid
// gives NO bounded relative error once a query boundary falls into the
// equi-width region — but it is *exact* for short trailing ranges, which
// is precisely the regime its paper targets. We implement it so the
// ablation bench can reproduce the ECM paper's §2 comparison honestly:
// hybrid wins on very recent ranges, loses its guarantees on older ones,
// and cannot be merged.
//
// Satisfies SlidingWindowCounter, so EcmSketch<HybridHistogram> works.

#ifndef ECM_WINDOW_HYBRID_HISTOGRAM_H_
#define ECM_WINDOW_HYBRID_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "src/window/window_spec.h"

namespace ecm {

/// Exact recent buffer + equi-width tail.
class HybridHistogram {
 public:
  struct Config {
    uint64_t window_len = 100;   ///< N: total window length
    uint64_t exact_len = 10;     ///< span kept at exact resolution
    uint32_t num_subwindows = 8; ///< equi-width slots over the tail
  };

  HybridHistogram() : HybridHistogram(Config{}) {}
  explicit HybridHistogram(const Config& config);

  /// Registers `count` arrivals at `ts` (non-decreasing, >= 1).
  void Add(Timestamp ts, uint64_t count = 1);

  /// Estimate of arrivals in (now-range, now]: exact for ranges within
  /// the exact buffer, linear slot interpolation beyond it.
  double Estimate(Timestamp now, uint64_t range) const;

  /// Migrates exact entries that aged past `exact_len` into the tail and
  /// drops expired tail slots.
  void Expire(Timestamp now);

  uint64_t lifetime_count() const { return lifetime_; }
  uint64_t window_len() const { return window_len_; }
  Timestamp last_timestamp() const { return last_ts_; }
  size_t MemoryBytes() const;

  /// Number of runs currently in the exact buffer (test hook).
  size_t ExactRuns() const { return exact_.size(); }

 private:
  struct Run {
    Timestamp ts;
    uint64_t count;
  };

  size_t SlotIndex(Timestamp ts) const {
    return static_cast<size_t>((ts / span_) % slots_.size());
  }
  Timestamp SlotEpoch(Timestamp ts) const { return (ts / span_) * span_; }
  void AddToTail(Timestamp ts, uint64_t count);

  uint64_t window_len_;
  uint64_t exact_len_;
  uint64_t span_;
  std::deque<Run> exact_;  // oldest first, all within exact_len of last_ts_
  std::vector<uint64_t> slots_;
  std::vector<Timestamp> slot_epochs_;
  uint64_t lifetime_ = 0;
  Timestamp last_ts_ = 0;
};

}  // namespace ecm

#include <cmath>

#include "src/core/ecm_sketch.h"

namespace ecm {

/// EcmSketch<HybridHistogram> support: exact resolution over the most
/// recent 5% of the window, ε_sw-granular equi-width tail — the natural
/// memory-comparable configuration against an ε_sw exponential histogram.
template <>
inline HybridHistogram::Config MakeCounterConfig<HybridHistogram>(
    const EcmConfig& cfg) {
  HybridHistogram::Config c;
  c.window_len = cfg.window_len;
  c.exact_len = std::max<uint64_t>(1, cfg.window_len / 20);
  c.num_subwindows = static_cast<uint32_t>(
      std::ceil(1.0 / (cfg.epsilon_sw > 0 ? cfg.epsilon_sw : 0.1)));
  return c;
}

}  // namespace ecm

#endif  // ECM_WINDOW_HYBRID_HISTOGRAM_H_
