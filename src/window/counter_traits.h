// The SlidingWindowCounter concept: the contract every window synopsis
// (exponential histogram, deterministic wave, randomized wave, exact
// window) satisfies so that EcmSketch<Counter> can be instantiated with any
// of them with zero virtual-dispatch overhead on the update path.

#ifndef ECM_WINDOW_COUNTER_TRAITS_H_
#define ECM_WINDOW_COUNTER_TRAITS_H_

#include <concepts>
#include <cstdint>
#include <string_view>
#include <type_traits>

#include "src/window/deterministic_wave.h"
#include "src/window/equiwidth_window.h"
#include "src/window/exact_window.h"
#include "src/window/exponential_histogram.h"
#include "src/window/hybrid_histogram.h"
#include "src/window/randomized_wave.h"
#include "src/window/window_spec.h"

namespace ecm {

/// Requirements for a sliding-window counter usable inside an ECM-sketch.
template <typename C>
concept SlidingWindowCounter =
    requires(C c, const C& cc, Timestamp ts, uint64_t n) {
      typename C::Config;
      requires std::constructible_from<C, const typename C::Config&>;
      c.Add(ts, n);
      c.Expire(ts);
      { cc.Estimate(ts, n) } -> std::convertible_to<double>;
      { cc.MemoryBytes() } -> std::convertible_to<size_t>;
      { cc.lifetime_count() } -> std::convertible_to<uint64_t>;
      { cc.window_len() } -> std::convertible_to<uint64_t>;
      { cc.last_timestamp() } -> std::convertible_to<Timestamp>;
    };

/// Counters whose contents can be exported as an oldest-first bucket log —
/// the input format of the deterministic order-preserving merge (§5.1).
template <typename C>
concept BucketExportingCounter =
    SlidingWindowCounter<C> && requires(const C& cc) {
  { cc.Buckets() } -> std::convertible_to<std::vector<BucketView>>;
};

static_assert(SlidingWindowCounter<ExponentialHistogram>);
static_assert(SlidingWindowCounter<DeterministicWave>);
static_assert(SlidingWindowCounter<RandomizedWave>);
static_assert(SlidingWindowCounter<ExactWindow>);
static_assert(SlidingWindowCounter<EquiWidthWindow>);
static_assert(SlidingWindowCounter<HybridHistogram>);
static_assert(BucketExportingCounter<ExponentialHistogram>);
static_assert(BucketExportingCounter<DeterministicWave>);
static_assert(BucketExportingCounter<ExactWindow>);

/// Short human-readable counter name used in bench output rows.
template <typename C>
constexpr std::string_view CounterName() {
  if constexpr (std::is_same_v<C, ExponentialHistogram>) return "EH";
  if constexpr (std::is_same_v<C, DeterministicWave>) return "DW";
  if constexpr (std::is_same_v<C, RandomizedWave>) return "RW";
  if constexpr (std::is_same_v<C, ExactWindow>) return "EXACT";
  if constexpr (std::is_same_v<C, EquiWidthWindow>) return "EQW";
  if constexpr (std::is_same_v<C, HybridHistogram>) return "HYB";
  return "?";
}

}  // namespace ecm

#endif  // ECM_WINDOW_COUNTER_TRAITS_H_
