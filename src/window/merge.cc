#include "src/window/merge.h"

#include <algorithm>

#include "src/util/random.h"

namespace ecm {

void AppendBucketEvents(const std::vector<BucketView>& buckets,
                        std::vector<ReplayEvent>* events) {
  for (const BucketView& b : buckets) {
    if (b.size == 0) continue;
    uint64_t at_start = b.size / 2;
    uint64_t at_end = b.size - at_start;
    Timestamp start = std::max<Timestamp>(b.start, 1);
    Timestamp end = std::max<Timestamp>(b.end, 1);
    if (at_start > 0 && start < end) {
      events->push_back(ReplayEvent{start, at_start});
      events->push_back(ReplayEvent{end, at_end});
    } else {
      // Zero-width bucket (or start clamped past end): everything at end.
      events->push_back(ReplayEvent{end, b.size});
    }
  }
}

Result<ExponentialHistogram> MergeHistograms(
    const std::vector<const ExponentialHistogram*>& inputs,
    double eps_prime) {
  if (inputs.empty()) {
    return Status::InvalidArgument("MergeHistograms: no inputs");
  }
  uint64_t window = inputs[0]->window_len();
  for (const auto* eh : inputs) {
    if (eh->window_len() != window) {
      return Status::Incompatible(
          "MergeHistograms: inputs cover different window lengths");
    }
  }
  std::vector<ReplayEvent> events;
  for (const auto* eh : inputs) AppendBucketEvents(eh->Buckets(), &events);

  ExponentialHistogram merged(
      ExponentialHistogram::Config{eps_prime, window});
  ReplayInto(std::move(events), &merged);
  return merged;
}

Result<DeterministicWave> MergeWaves(
    const std::vector<const DeterministicWave*>& inputs, double eps_prime,
    uint64_t max_arrivals) {
  if (inputs.empty()) {
    return Status::InvalidArgument("MergeWaves: no inputs");
  }
  uint64_t window = inputs[0]->window_len();
  for (const auto* dw : inputs) {
    if (dw->window_len() != window) {
      return Status::Incompatible(
          "MergeWaves: inputs cover different window lengths");
    }
  }
  std::vector<ReplayEvent> events;
  for (const auto* dw : inputs) AppendBucketEvents(dw->Buckets(), &events);

  DeterministicWave merged(
      DeterministicWave::Config{eps_prime, window, max_arrivals});
  ReplayInto(std::move(events), &merged);
  return merged;
}

namespace {

using RwSample = RandomizedWave::Sample;

// Extends a sub-wave's sampling hierarchy past its stored top level: each
// retained sample survives each further level with probability 1/2,
// drawn per run as Binomial(count, 1/2) (seeded, so merges are
// reproducible; distributionally identical to per-sample coin flips).
// Returns the runs simulated at level top_stored + levels_to_add.
std::vector<RwSample> ExtendLevels(const std::deque<RwSample>& top_level,
                                   int levels_to_add, Rng* rng) {
  std::vector<RwSample> current(top_level.begin(), top_level.end());
  for (int i = 0; i < levels_to_add; ++i) {
    std::vector<RwSample> next;
    next.reserve(current.size());
    for (const RwSample& s : current) {
      uint64_t kept = rng->BinomialHalf(s.count);
      if (kept > 0) next.push_back(RwSample{s.ts, kept});
    }
    current = std::move(next);
  }
  return current;
}

// One input's contribution to a merged level: either a borrowed view of
// the input's own run deque or an owned vector of simulated runs. Both
// are already sorted by timestamp, which is what lets the level merge be
// a k-way run merge instead of a concatenate-and-sort.
struct RunSource {
  const std::deque<RwSample>* borrowed = nullptr;
  std::vector<RwSample> owned;
  size_t pos = 0;

  size_t size() const { return borrowed ? borrowed->size() : owned.size(); }
  const RwSample& at(size_t i) const {
    return borrowed ? (*borrowed)[i] : owned[i];
  }
  bool exhausted() const { return pos >= size(); }
  const RwSample& head() const { return at(pos); }
};

// Merges the sources' runs into timestamp order, coalescing equal
// timestamps across inputs, and returns the total sample count. A binary
// min-heap over the source heads makes this O(n log k) for n total runs
// over a fan-in of k, replacing the previous concatenate-and-sort's
// O(n log n) whole-level re-sort. Sources with equal head timestamps can
// pop in either order — coalescing makes the result identical.
uint64_t KWayMergeRuns(std::vector<RunSource>* sources,
                       std::vector<RwSample>* runs) {
  runs->clear();
  uint64_t total = 0;
  auto newer_head = [sources](size_t a, size_t b) {
    return (*sources)[a].head().ts > (*sources)[b].head().ts;
  };
  std::vector<size_t> heap;
  heap.reserve(sources->size());
  for (size_t i = 0; i < sources->size(); ++i) {
    if (!(*sources)[i].exhausted()) heap.push_back(i);
  }
  std::make_heap(heap.begin(), heap.end(), newer_head);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), newer_head);
    size_t idx = heap.back();
    heap.pop_back();
    RunSource& src = (*sources)[idx];
    const RwSample& s = src.head();
    ++src.pos;
    total += s.count;
    if (!runs->empty() && runs->back().ts == s.ts) {
      runs->back().count += s.count;
    } else {
      runs->push_back(s);
    }
    if (!src.exhausted()) {
      heap.push_back(idx);
      std::push_heap(heap.begin(), heap.end(), newer_head);
    }
  }
  return total;
}

}  // namespace

Result<RandomizedWave> MergeRandomizedWaves(
    const std::vector<const RandomizedWave*>& inputs, uint64_t seed) {
  if (inputs.empty()) {
    return Status::InvalidArgument("MergeRandomizedWaves: no inputs");
  }
  const RandomizedWave& first = *inputs[0];
  int target_levels = first.num_levels();
  for (const auto* rw : inputs) {
    if (rw->window_len() != first.window_len() ||
        rw->epsilon() != first.epsilon() || rw->delta() != first.delta() ||
        rw->num_subwaves() != first.num_subwaves() ||
        rw->level_capacity() != first.level_capacity()) {
      return Status::Incompatible(
          "MergeRandomizedWaves: inputs differ in epsilon/delta/window/"
          "sub-wave configuration");
    }
    target_levels = std::max(target_levels, rw->num_levels());
  }

  // Construct a wave with exactly target_levels levels: the constructor
  // derives levels from max_arrivals, so invert that formula.
  RandomizedWave::Config cfg;
  cfg.epsilon = first.epsilon();
  cfg.delta = first.delta();
  cfg.window_len = first.window_len();
  cfg.seed = seed;
  cfg.max_arrivals =
      static_cast<uint64_t>(first.level_capacity()) << (target_levels - 1);
  RandomizedWave merged(cfg);

  Rng rng(seed ^ 0xD157F1B5ULL);
  size_t capacity = first.level_capacity();
  uint64_t lifetime = 0;
  Timestamp last_ts = 0;

  std::vector<RunSource> sources;
  std::vector<RwSample> runs;
  for (int s = 0; s < first.num_subwaves(); ++s) {
    auto& out_sw = merged.mutable_subwaves()[s];
    for (int l = 0; l < merged.num_levels(); ++l) {
      // Each input's level runs are already sorted by timestamp, so the
      // merged level is a k-way run merge across the inputs.
      sources.clear();
      bool truncated = false;
      for (const auto* rw : inputs) {
        const auto& in_sw = rw->subwaves()[s];
        int in_top = rw->num_levels() - 1;
        RunSource src;
        if (l <= in_top) {
          src.borrowed = &in_sw.levels[l];
          truncated = truncated || in_sw.truncated[l];
        } else {
          // Input provisioned fewer levels: sub-sample its top level on.
          src.owned = ExtendLevels(in_sw.levels[in_top], l - in_top, &rng);
          truncated = truncated || in_sw.truncated[in_top];
        }
        sources.push_back(std::move(src));
      }
      uint64_t total = KWayMergeRuns(&sources, &runs);
      if (total > capacity) {
        // Keep the most recent `capacity` samples.
        uint64_t excess = total - capacity;
        truncated = true;
        size_t keep_from = 0;
        while (excess > 0 && keep_from < runs.size()) {
          if (runs[keep_from].count <= excess) {
            excess -= runs[keep_from].count;
            ++keep_from;
          } else {
            runs[keep_from].count -= excess;
            excess = 0;
          }
        }
        runs.erase(runs.begin(),
                   runs.begin() + static_cast<ptrdiff_t>(keep_from));
        total = capacity;
      }
      // Re-establish the runs' cumulative-count invariant (truncation
      // moved the front) before handing them to the wave's query path.
      uint64_t cum = 0;
      for (RwSample& r : runs) {
        cum += r.count;
        r.cum = cum;
      }
      out_sw.levels[l].assign(runs.begin(), runs.end());
      out_sw.sizes[l] = total;
      out_sw.truncated[l] = truncated;
    }
  }
  for (const auto* rw : inputs) {
    lifetime += rw->lifetime_count();
    last_ts = std::max(last_ts, rw->last_timestamp());
  }
  merged.set_lifetime_count(lifetime);
  merged.set_last_timestamp(last_ts);
  return merged;
}

}  // namespace ecm
