#include "src/window/exponential_histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ecm {

ExponentialHistogram::ExponentialHistogram(const Config& config)
    : epsilon_(config.epsilon), window_len_(config.window_len) {
  assert(epsilon_ > 0.0 && epsilon_ <= 1.0);
  assert(window_len_ > 0);
  // k = ceil(1/eps). Keeping up to k+1 buckets per level (merging the two
  // oldest when a level reaches k+2) retains at least k buckets per level
  // below the top one, which yields invariant 1 of the paper for every
  // bucket of size >= 2:  C_j <= 2*eps*(1 + sum of more recent sizes).
  // Clamped before the float->int cast (tiny epsilons from hostile bytes
  // must not overflow into UB).
  double k = std::ceil(1.0 / epsilon_);
  if (!(k >= 1.0)) k = 1.0;
  if (k > 1e9) k = 1e9;
  level_capacity_ = static_cast<size_t>(k) + 2;
}

void ExponentialHistogram::AddOne(Timestamp ts) {
  ++lifetime_;
  ++total_;
  ++num_buckets_;
  if (levels_.empty()) levels_.emplace_back();
  levels_[0].push_back(Bucket{ts});
  // Cascade merges: when a level fills up, its two oldest buckets coalesce
  // into one bucket of double size, which is the *newest* bucket of the
  // next level (bucket sizes are non-decreasing with age).
  for (size_t i = 0; i < levels_.size() && levels_[i].size() >= level_capacity_;
       ++i) {
    Bucket oldest = levels_[i].front();
    levels_[i].pop_front();
    Bucket second = levels_[i].front();
    levels_[i].pop_front();
    (void)oldest;  // merged bucket keeps the newer end timestamp
    if (i + 1 == levels_.size()) levels_.emplace_back();
    levels_[i + 1].push_back(Bucket{second.end});
    --num_buckets_;
  }
}

void ExponentialHistogram::Add(Timestamp ts, uint64_t count) {
  assert(ts >= last_ts_ && "timestamps must be non-decreasing");
  last_ts_ = ts;
  for (uint64_t i = 0; i < count; ++i) AddOne(ts);
  Expire(ts);
}

void ExponentialHistogram::Expire(Timestamp now) {
  Timestamp wstart = WindowStart(now, window_len_);
  // Oldest buckets live at the highest levels; within a level, at front().
  for (size_t i = levels_.size(); i-- > 0;) {
    auto& level = levels_[i];
    bool dropped_here = false;
    while (!level.empty() && level.front().end <= wstart) {
      if (level.front().end > expired_end_) expired_end_ = level.front().end;
      total_ -= (1ULL << i);
      --num_buckets_;
      level.pop_front();
      dropped_here = true;
    }
    // If nothing expired at this level, nothing can expire below it either:
    // lower-level buckets are strictly newer.
    if (!dropped_here && !level.empty()) break;
  }
}

double ExponentialHistogram::Estimate(Timestamp now, uint64_t range) const {
  assert(now >= last_ts_);
  if (range > window_len_) range = window_len_;
  Timestamp boundary = WindowStart(now, range);

  // Random-access query path (paper §4.2.1 / §7.1): within each level,
  // bucket end timestamps ascend front-to-back, so the first in-range
  // bucket is found by binary search — O(log(u)·log(1/ε)) instead of the
  // O(log(u)/ε) full scan. Levels hold buckets in strictly decreasing
  // age (level i+1 buckets are all older than level i buckets), so the
  // oldest in-range bucket lives in the highest level holding one.
  double sum = 0.0;
  bool first_included = true;
  for (size_t i = levels_.size(); i-- > 0;) {
    const auto& level = levels_[i];
    if (level.empty() || level.back().end <= boundary) continue;
    auto it = std::partition_point(
        level.begin(), level.end(),
        [boundary](const Bucket& b) { return b.end <= boundary; });
    double size = static_cast<double>(1ULL << i);
    sum += size * static_cast<double>(level.end() - it);
    if (first_included) {
      // The oldest bucket intersecting the query contributes half its
      // size if it straddles the boundary (paper §3) and fully if its
      // reconstructed start is already inside the range. Its start is
      // the end of the next-older bucket: the predecessor in this level,
      // else the newest bucket of the next-higher non-empty level, else
      // the expiry watermark.
      Timestamp prev_end = expired_end_;
      if (it != level.begin()) {
        prev_end = std::prev(it)->end;
      } else {
        for (size_t j = i + 1; j < levels_.size(); ++j) {
          if (!levels_[j].empty()) {
            prev_end = levels_[j].back().end;
            break;
          }
        }
      }
      bool fully_inside =
          boundary == 0 || prev_end > boundary || prev_end >= it->end;
      if (!fully_inside) sum -= size / 2.0;
      first_included = false;
    }
  }
  return sum;
}

size_t ExponentialHistogram::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  bytes += levels_.size() * sizeof(std::deque<Bucket>);
  bytes += num_buckets_ * sizeof(Bucket);
  return bytes;
}

std::vector<BucketView> ExponentialHistogram::Buckets() const {
  std::vector<BucketView> out;
  out.reserve(num_buckets_);
  Timestamp prev_end = expired_end_;
  for (size_t i = levels_.size(); i-- > 0;) {
    uint64_t size = 1ULL << i;
    for (const Bucket& b : levels_[i]) {
      out.push_back(BucketView{prev_end, b.end, size});
      prev_end = b.end;
    }
  }
  return out;
}

int ExponentialHistogram::CheckInvariant() const {
  // Gather sizes oldest-first, then verify invariant 1 against the suffix
  // sums of more recent buckets. Buckets of size 1 are exempt (they carry
  // at most 1/2 absolute error, which the error analysis absorbs).
  std::vector<uint64_t> sizes;
  sizes.reserve(num_buckets_);
  for (size_t i = levels_.size(); i-- > 0;) {
    for (size_t j = 0; j < levels_[i].size(); ++j) sizes.push_back(1ULL << i);
  }
  for (size_t j = 0; j < sizes.size(); ++j) {
    if (sizes[j] < 2) continue;
    uint64_t newer = 0;
    for (size_t i = j + 1; i < sizes.size(); ++i) newer += sizes[i];
    if (static_cast<double>(sizes[j]) >
        2.0 * epsilon_ * (1.0 + static_cast<double>(newer)) + 1e-9) {
      return static_cast<int>(j);
    }
  }
  return -1;
}


namespace {
constexpr uint8_t kEhMagic = 0xE1;
}  // namespace

void ExponentialHistogram::SerializeTo(ByteWriter* w) const {
  w->PutFixed<uint8_t>(kEhMagic);
  w->PutDouble(epsilon_);
  w->PutVarint(window_len_);
  w->PutVarint(expired_end_);
  w->PutVarint(lifetime_);
  w->PutVarint(last_ts_);
  w->PutVarint(levels_.size());
  for (const auto& level : levels_) {
    w->PutVarint(level.size());
    Timestamp prev = 0;
    for (const Bucket& b : level) {
      w->PutVarint(b.end - prev);  // front-to-back end stamps ascend
      prev = b.end;
    }
  }
}

Result<ExponentialHistogram> ExponentialHistogram::Deserialize(
    ByteReader* r) {
  auto magic = r->GetFixed<uint8_t>();
  if (!magic.ok()) return magic.status();
  if (*magic != kEhMagic) {
    return Status::Corruption("bad exponential-histogram magic byte");
  }
  auto epsilon = r->GetDouble();
  if (!epsilon.ok()) return epsilon.status();
  auto window = r->GetVarint();
  if (!window.ok()) return window.status();
  if (!(*epsilon > 0.0) || *epsilon > 1.0 || *window == 0) {
    return Status::Corruption("exponential-histogram header out of domain");
  }
  ExponentialHistogram eh(Config{*epsilon, *window});

  auto expired_end = r->GetVarint();
  if (!expired_end.ok()) return expired_end.status();
  eh.expired_end_ = *expired_end;
  auto lifetime = r->GetVarint();
  if (!lifetime.ok()) return lifetime.status();
  eh.lifetime_ = *lifetime;
  auto last_ts = r->GetVarint();
  if (!last_ts.ok()) return last_ts.status();
  eh.last_ts_ = *last_ts;

  auto num_levels = r->GetVarint();
  if (!num_levels.ok()) return num_levels.status();
  if (*num_levels > 64) {
    return Status::Corruption("exponential histogram claims > 64 levels");
  }
  eh.levels_.resize(*num_levels);
  for (size_t i = 0; i < *num_levels; ++i) {
    auto count = r->GetVarint();
    if (!count.ok()) return count.status();
    Timestamp prev = 0;
    for (uint64_t j = 0; j < *count; ++j) {
      auto delta = r->GetVarint();
      if (!delta.ok()) return delta.status();
      prev += *delta;
      eh.levels_[i].push_back(Bucket{prev});
      ++eh.num_buckets_;
      eh.total_ += 1ULL << i;
    }
  }
  return eh;
}

}  // namespace ecm
