#include "src/window/exponential_histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace ecm {

ExponentialHistogram::ExponentialHistogram(const Config& config)
    : epsilon_(config.epsilon), window_len_(config.window_len) {
  assert(epsilon_ > 0.0 && epsilon_ <= 1.0);
  assert(window_len_ > 0);
  // k = ceil(1/eps). Keeping up to k+1 buckets per level (merging the two
  // oldest when a level reaches k+2) retains at least k buckets per level
  // below the top one, which yields invariant 1 of the paper for every
  // bucket of size >= 2:  C_j <= 2*eps*(1 + sum of more recent sizes).
  // Clamped before the float->int cast (tiny epsilons from hostile bytes
  // must not overflow into UB); the clamp also keeps ring arithmetic in
  // 32 bits.
  double k = std::ceil(1.0 / epsilon_);
  if (!(k >= 1.0)) k = 1.0;
  if (k > 1e9) k = 1e9;
  level_capacity_ = static_cast<size_t>(k) + 2;
}

void ExponentialHistogram::Grow(size_t level) {
  // Geometric segment growth, capped at the ring bound. The cascade never
  // holds more than level_capacity_ buckets in a level, so a full segment
  // at the cap is unreachable here.
  std::vector<Bucket>& slots = level_slots_[level];
  size_t new_cap =
      std::min(std::max<size_t>(2 * slots.size(), 8), level_capacity_ + 1);
  std::vector<Bucket> grown(new_cap);
  uint32_t old_cap = static_cast<uint32_t>(slots.size());
  for (uint32_t j = 0; j < level_count_[level]; ++j) {
    uint32_t idx = level_head_[level] + j;
    if (idx >= old_cap) idx -= old_cap;
    grown[j] = slots[idx];
  }
  slots = std::move(grown);
  level_head_[level] = 0;
}

void ExponentialHistogram::AddOne(Timestamp ts) {
  ++num_buckets_;
  EnsureLevel(0);
  PushBack(0, Bucket{ts});
  // Cascade merges: when a level fills up, its two oldest buckets coalesce
  // into one bucket of double size, which is the *newest* bucket of the
  // next level (bucket sizes are non-decreasing with age).
  for (size_t i = 0;
       i < NumLevels() && level_count_[i] >= level_capacity_; ++i) {
    PopFront(i);  // merged bucket keeps the newer end timestamp
    Bucket second = PopFront(i);
    EnsureLevel(i + 1);
    PushBack(i + 1, Bucket{second.end});
    --num_buckets_;
  }
}

void ExponentialHistogram::AddBatch(Timestamp ts, uint64_t count) {
  // Closed-form, level-by-level propagation of the unit-insert cascade.
  // The incoming buckets of the current level are `expl` — explicit end
  // timestamps emitted by merges of pre-existing buckets one level below,
  // oldest first — followed by a run of `ts_run` buckets all ending at
  // `ts`. The final state is exactly what `count` sequential AddOne calls
  // would leave behind, at O(log(count) + level_capacity_) bucket ops.
  //
  // Reused thread-local scratch keeps the weighted path allocation-free
  // after warm-up (sizes are bounded by level_capacity_; a histogram is
  // not shared across threads anyway).
  static thread_local std::vector<Timestamp> expl, next_expl;
  expl.clear();
  uint64_t ts_run = count;
  int64_t bucket_delta = 0;
  for (size_t i = 0; ts_run + expl.size() > 0; ++i) {
    EnsureLevel(i);
    const uint64_t c = level_capacity_;
    const uint64_t m = level_count_[i];
    const uint64_t k = expl.size() + ts_run;
    // Merges the unit cascade performs here: the first fires once the
    // level fills to c, then one more per two further appends.
    const uint64_t merges = (k >= c - m) ? 1 + (k - (c - m)) / 2 : 0;
    bucket_delta +=
        static_cast<int64_t>(k) - 2 * static_cast<int64_t>(merges);
    if (merges == 0) {
      for (Timestamp e : expl) PushBack(i, Bucket{e});
      for (uint64_t j = 0; j < ts_run; ++j) PushBack(i, Bucket{ts});
      break;
    }
    // Merge j (1-based) coalesces elements 2j-1 and 2j of the oldest-first
    // sequence [existing buckets, expl, ts-run] and emits a bucket ending
    // at element 2j into the next level; once 2j lands in the ts-run every
    // remaining merge emits `ts`.
    next_expl.clear();
    uint64_t next_ts_run = 0;
    for (uint64_t j = 1; j <= merges; ++j) {
      const uint64_t p = 2 * j;
      if (p <= m) {
        next_expl.push_back(At(i, static_cast<uint32_t>(p - 1)).end);
      } else if (p <= m + expl.size()) {
        next_expl.push_back(expl[p - m - 1]);
      } else {
        next_ts_run = merges - j + 1;
        break;
      }
    }
    // Consume the merged prefix: drop min(2*merges, m) existing buckets,
    // then skip the first (2*merges - m) incoming ones (which the unit
    // cascade would have appended and immediately merged away), and append
    // what survives.
    const uint64_t consumed_existing = std::min(2 * merges, m);
    for (uint64_t j = 0; j < consumed_existing; ++j) PopFront(i);
    const uint64_t dropped_in = 2 * merges - consumed_existing;
    const uint64_t dropped_expl = std::min<uint64_t>(dropped_in, expl.size());
    for (size_t x = dropped_expl; x < expl.size(); ++x) {
      PushBack(i, Bucket{expl[x]});
    }
    for (uint64_t x = dropped_in - dropped_expl; x < ts_run; ++x) {
      PushBack(i, Bucket{ts});
    }
    expl.swap(next_expl);
    ts_run = next_ts_run;
  }
  num_buckets_ =
      static_cast<size_t>(static_cast<int64_t>(num_buckets_) + bucket_delta);
}

void ExponentialHistogram::Add(Timestamp ts, uint64_t count) {
  assert(ts >= last_ts_ && "timestamps must be non-decreasing");
  last_ts_ = ts;
  lifetime_ += count;
  total_ += count;
  if (count == 1) {
    AddOne(ts);
  } else if (count > 1) {
    AddBatch(ts, count);
  }
  Expire(ts);
}

void ExponentialHistogram::Expire(Timestamp now) {
  Timestamp wstart = WindowStart(now, window_len_);
  // Oldest buckets live at the highest levels; within a level, at front.
  for (size_t i = NumLevels(); i-- > 0;) {
    bool dropped_here = false;
    while (level_count_[i] > 0 && At(i, 0).end <= wstart) {
      Bucket b = PopFront(i);
      if (b.end > expired_end_) expired_end_ = b.end;
      total_ -= (1ULL << i);
      --num_buckets_;
      dropped_here = true;
    }
    // If nothing expired at this level, nothing can expire below it either:
    // lower-level buckets are strictly newer.
    if (!dropped_here && level_count_[i] > 0) break;
  }
}

double ExponentialHistogram::Estimate(Timestamp now, uint64_t range) const {
  assert(now >= last_ts_);
  if (range > window_len_) range = window_len_;
  Timestamp boundary = WindowStart(now, range);
  if (num_buckets_ == 0) return 0.0;

  // Full-coverage fast path: the global oldest bucket (ring front of the
  // top non-empty level) is already in range, so every bucket is — the
  // running total answers in O(1), with the straddle half-correction
  // (paper §3) applied to that oldest bucket. This is the steady state
  // for full-window queries after Expire().
  const Timestamp oldest_end = At(top_level_, 0).end;
  if (boundary < oldest_end) {
    double sum = static_cast<double>(total_);
    bool fully_inside = boundary == 0 || expired_end_ > boundary ||
                        expired_end_ >= oldest_end;
    if (!fully_inside) {
      sum -= static_cast<double>(1ULL << top_level_) / 2.0;
    }
    return sum;
  }

  // Partial range: bucket age strictly decreases from the top level down
  // (level i+1 buckets are all older than level i buckets), so exactly
  // one level straddles the boundary — the highest one whose newest
  // bucket is in range. One binary search inside that level finds the
  // oldest in-range bucket; every lower level contributes its whole
  // weight off the directory without touching bucket storage. In-range
  // weight accumulates in integers, so the result is bit-identical to
  // the per-level scan (EstimateScanReference) for masses below 2^53.
  uint64_t weight = 0;
  double straddle = 0.0;
  for (size_t i = top_level_ + 1; i-- > 0;) {
    const uint32_t n = level_count_[i];
    if (n == 0 || At(i, n - 1).end <= boundary) continue;
    // First ring position whose bucket end exceeds the boundary.
    uint32_t lo = 0, hi = n;
    while (lo < hi) {
      uint32_t mid = lo + (hi - lo) / 2;
      if (At(i, mid).end <= boundary) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    weight += static_cast<uint64_t>(n - lo) << i;
    // The oldest in-range bucket contributes half its size if it
    // straddles the boundary and fully if its reconstructed start is
    // inside the range. Its start is the end of the next-older bucket:
    // the predecessor in this level, else the newest bucket of the next
    // non-empty level above, else the expiry watermark.
    Timestamp prev_end = expired_end_;
    if (lo > 0) {
      prev_end = At(i, lo - 1).end;
    } else {
      for (size_t j = i + 1; j < NumLevels(); ++j) {
        if (level_count_[j] > 0) {
          prev_end = At(j, level_count_[j] - 1).end;
          break;
        }
      }
    }
    bool fully_inside =
        boundary == 0 || prev_end > boundary || prev_end >= At(i, lo).end;
    if (!fully_inside) straddle = static_cast<double>(1ULL << i) / 2.0;
    // All remaining (newer) levels are entirely in range.
    while (i-- > 0) {
      weight += static_cast<uint64_t>(level_count_[i]) << i;
    }
    break;
  }
  return static_cast<double>(weight) - straddle;
}

Timestamp ExponentialHistogram::NextEstimateChangeAt(Timestamp now,
                                                     uint64_t range) const {
  assert(now >= last_ts_);
  if (range > window_len_) range = window_len_;
  if (num_buckets_ == 0) return 0;
  const Timestamp boundary = WindowStart(now, range);
  uint64_t candidate = std::numeric_limits<uint64_t>::max();
  // The straddle correction special-cases boundary == 0, so leaving zero
  // is itself a potential flip.
  if (boundary == 0) candidate = 1;
  if (expired_end_ > boundary) candidate = std::min(candidate, expired_end_);
  // Smallest bucket end past the boundary: bucket age strictly decreases
  // from the top level down, so it is the first in-range bucket of the
  // highest level that still has one.
  for (size_t i = top_level_ + 1; i-- > 0;) {
    const uint32_t n = level_count_[i];
    if (n == 0 || At(i, n - 1).end <= boundary) continue;
    uint32_t lo = 0, hi = n;
    while (lo < hi) {
      uint32_t mid = lo + (hi - lo) / 2;
      if (At(i, mid).end <= boundary) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    candidate = std::min<uint64_t>(candidate, At(i, lo).end);
    break;
  }
  if (candidate == std::numeric_limits<uint64_t>::max()) return 0;
  return candidate + range;
}

double ExponentialHistogram::EstimateScanReference(Timestamp now,
                                                   uint64_t range) const {
  assert(now >= last_ts_);
  if (range > window_len_) range = window_len_;
  Timestamp boundary = WindowStart(now, range);

  // The pre-PR4 query path: every level binary-searched independently,
  // partial sums accumulated in doubles top-down.
  double sum = 0.0;
  bool first_included = true;
  for (size_t i = NumLevels(); i-- > 0;) {
    const uint32_t n = level_count_[i];
    if (n == 0 || At(i, n - 1).end <= boundary) continue;
    uint32_t lo = 0, hi = n;
    while (lo < hi) {
      uint32_t mid = lo + (hi - lo) / 2;
      if (At(i, mid).end <= boundary) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    double size = static_cast<double>(1ULL << i);
    sum += size * static_cast<double>(n - lo);
    if (first_included) {
      Timestamp prev_end = expired_end_;
      if (lo > 0) {
        prev_end = At(i, lo - 1).end;
      } else {
        for (size_t j = i + 1; j < NumLevels(); ++j) {
          if (level_count_[j] > 0) {
            prev_end = At(j, level_count_[j] - 1).end;
            break;
          }
        }
      }
      bool fully_inside =
          boundary == 0 || prev_end > boundary || prev_end >= At(i, lo).end;
      if (!fully_inside) sum -= size / 2.0;
      first_included = false;
    }
  }
  return sum;
}

size_t ExponentialHistogram::AllocatedSlots() const {
  size_t slots = 0;
  for (const std::vector<Bucket>& s : level_slots_) slots += s.size();
  return slots;
}

size_t ExponentialHistogram::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  bytes += AllocatedSlots() * sizeof(Bucket);
  bytes += level_head_.capacity() * sizeof(uint32_t);
  bytes += level_count_.capacity() * sizeof(uint32_t);
  bytes += level_slots_.capacity() * sizeof(std::vector<Bucket>);
  return bytes;
}

std::vector<BucketView> ExponentialHistogram::Buckets() const {
  std::vector<BucketView> out;
  out.reserve(num_buckets_);
  Timestamp prev_end = expired_end_;
  for (size_t i = NumLevels(); i-- > 0;) {
    uint64_t size = 1ULL << i;
    for (uint32_t j = 0; j < level_count_[i]; ++j) {
      out.push_back(BucketView{prev_end, At(i, j).end, size});
      prev_end = At(i, j).end;
    }
  }
  return out;
}

int ExponentialHistogram::CheckInvariant() const {
  // Gather sizes oldest-first, then verify invariant 1 against the suffix
  // sums of more recent buckets. Buckets of size 1 are exempt (they carry
  // at most 1/2 absolute error, which the error analysis absorbs).
  std::vector<uint64_t> sizes;
  sizes.reserve(num_buckets_);
  for (size_t i = NumLevels(); i-- > 0;) {
    for (uint32_t j = 0; j < level_count_[i]; ++j) {
      sizes.push_back(1ULL << i);
    }
  }
  for (size_t j = 0; j < sizes.size(); ++j) {
    if (sizes[j] < 2) continue;
    uint64_t newer = 0;
    for (size_t i = j + 1; i < sizes.size(); ++i) newer += sizes[i];
    if (static_cast<double>(sizes[j]) >
        2.0 * epsilon_ * (1.0 + static_cast<double>(newer)) + 1e-9) {
      return static_cast<int>(j);
    }
  }
  return -1;
}


namespace {
constexpr uint8_t kEhMagic = 0xE1;
}  // namespace

void ExponentialHistogram::SerializeTo(ByteWriter* w) const {
  w->PutFixed<uint8_t>(kEhMagic);
  w->PutDouble(epsilon_);
  w->PutVarint(window_len_);
  w->PutVarint(expired_end_);
  w->PutVarint(lifetime_);
  w->PutVarint(last_ts_);
  w->PutVarint(NumLevels());
  for (size_t i = 0; i < NumLevels(); ++i) {
    w->PutVarint(level_count_[i]);
    Timestamp prev = 0;
    for (uint32_t j = 0; j < level_count_[i]; ++j) {
      w->PutVarint(At(i, j).end - prev);  // front-to-back end stamps ascend
      prev = At(i, j).end;
    }
  }
}

Result<ExponentialHistogram> ExponentialHistogram::Deserialize(
    ByteReader* r) {
  auto magic = r->GetFixed<uint8_t>();
  if (!magic.ok()) return magic.status();
  if (*magic != kEhMagic) {
    return Status::Corruption("bad exponential-histogram magic byte");
  }
  auto epsilon = r->GetDouble();
  if (!epsilon.ok()) return epsilon.status();
  auto window = r->GetVarint();
  if (!window.ok()) return window.status();
  if (!(*epsilon > 0.0) || *epsilon > 1.0 || *window == 0) {
    return Status::Corruption("exponential-histogram header out of domain");
  }
  ExponentialHistogram eh(Config{*epsilon, *window});

  auto expired_end = r->GetVarint();
  if (!expired_end.ok()) return expired_end.status();
  eh.expired_end_ = *expired_end;
  auto lifetime = r->GetVarint();
  if (!lifetime.ok()) return lifetime.status();
  eh.lifetime_ = *lifetime;
  auto last_ts = r->GetVarint();
  if (!last_ts.ok()) return last_ts.status();
  eh.last_ts_ = *last_ts;

  auto num_levels = r->GetVarint();
  if (!num_levels.ok()) return num_levels.status();
  if (*num_levels > 64) {
    return Status::Corruption("exponential histogram claims > 64 levels");
  }
  // Segment growth allocates in proportion to buckets actually decoded
  // (each costs at least one payload byte), so a hostile tiny-epsilon
  // header cannot request a large allocation up front; the per-level
  // count bound below rejects over-capacity levels.
  if (*num_levels > 0) eh.EnsureLevel(*num_levels - 1);
  for (size_t i = 0; i < *num_levels; ++i) {
    auto count = r->GetVarint();
    if (!count.ok()) return count.status();
    if (*count >= eh.level_capacity_) {
      return Status::Corruption("exponential histogram level over capacity");
    }
    Timestamp prev = 0;
    for (uint64_t j = 0; j < *count; ++j) {
      auto delta = r->GetVarint();
      if (!delta.ok()) return delta.status();
      prev += *delta;
      eh.PushBack(i, Bucket{prev});
      ++eh.num_buckets_;
      eh.total_ += 1ULL << i;
    }
  }
  return eh;
}

}  // namespace ecm
