#include "src/window/hybrid_histogram.h"

#include <algorithm>
#include <cassert>

namespace ecm {

HybridHistogram::HybridHistogram(const Config& config)
    : window_len_(config.window_len), exact_len_(config.exact_len) {
  assert(config.window_len > 0 && config.num_subwindows > 0);
  assert(config.exact_len < config.window_len);
  uint32_t slots = config.num_subwindows + 1;
  // Round the span UP so the (B+1)-slot ring always covers the full
  // window: with a floored span and (window - exact_len) % B != 0 the
  // ring wrapped inside the window and silently overwrote in-window
  // tail mass.
  span_ = std::max<uint64_t>(
      1, (window_len_ - exact_len_ + config.num_subwindows - 1) /
             config.num_subwindows);
  slots_.assign(slots, 0);
  slot_epochs_.assign(slots, ~0ULL);
}

void HybridHistogram::AddToTail(Timestamp ts, uint64_t count) {
  size_t idx = SlotIndex(ts);
  Timestamp epoch = SlotEpoch(ts);
  if (slot_epochs_[idx] != epoch) {
    slots_[idx] = 0;
    slot_epochs_[idx] = epoch;
  }
  slots_[idx] += count;
}

void HybridHistogram::DemoteAged(Timestamp now) {
  // Exact entries older than exact_len demote into the equi-width tail.
  Timestamp exact_start = WindowStart(now, exact_len_);
  if (exact_start > demoted_through_) demoted_through_ = exact_start;
  while (!exact_.empty() && exact_.front().ts <= exact_start) {
    AddToTail(exact_.front().ts, exact_.front().count);
    exact_.pop_front();
  }
}

void HybridHistogram::Add(Timestamp ts, uint64_t count) {
  assert(ts >= last_ts_ && "timestamps must be non-decreasing");
  last_ts_ = ts;
  lifetime_ += count;
  if (!exact_.empty() && exact_.back().ts == ts) {
    exact_.back().count += count;
  } else {
    exact_.push_back(Run{ts, count});
  }
  // Hot path stays O(1) amortized: only demote aged exact runs. Expired
  // tail slots need no eager zeroing — Estimate() filters them by epoch
  // and AddToTail() resets a slot when its ring epoch advances — so the
  // full ring scan is reserved for the explicit Expire() entry point.
  DemoteAged(ts);
}

void HybridHistogram::Expire(Timestamp now) {
  DemoteAged(now);
  // Tail slots fully outside the window are dropped.
  Timestamp wstart = WindowStart(now, window_len_);
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slot_epochs_[i] != ~0ULL && slot_epochs_[i] + span_ <= wstart) {
      slots_[i] = 0;
      slot_epochs_[i] = ~0ULL;
    }
  }
}

double HybridHistogram::Estimate(Timestamp now, uint64_t range) const {
  if (range > window_len_) range = window_len_;
  Timestamp boundary = WindowStart(now, range);

  // Exact region: count runs inside (boundary, now].
  double sum = 0.0;
  auto it = std::partition_point(
      exact_.begin(), exact_.end(),
      [boundary](const Run& r) { return r.ts <= boundary; });
  for (; it != exact_.end(); ++it) {
    if (it->ts <= now) sum += static_cast<double>(it->count);
  }
  // Tail region: equi-width slots with boundary interpolation. Demotion
  // never puts anything newer than the demoted_through_ watermark into
  // the ring, so a slot's content occupies [slot_start, min(slot_end-1,
  // watermark)] — interpolating over that covered range (not the nominal
  // span) keeps tail mass out of the exact region, making ranges within
  // the exact buffer exact by construction instead of by epoch-alignment
  // luck.
  auto slot_mass = [&](size_t i) -> double {
    Timestamp lo = slot_epochs_[i];
    Timestamp covered = std::min<Timestamp>(lo + span_ - 1, demoted_through_);
    Timestamp hi = std::min<Timestamp>(covered, now);
    if (hi < lo || hi <= boundary) return 0.0;
    if (lo > boundary && hi == covered) return static_cast<double>(slots_[i]);
    // Boundary slot: assume uniform arrivals over the covered range (the
    // baseline's unavoidable, guarantee-free assumption).
    Timestamp from =
        (lo == 0) ? boundary : std::max<Timestamp>(boundary, lo - 1);
    return static_cast<double>(slots_[i]) * static_cast<double>(hi - from) /
           static_cast<double>(covered - lo + 1);
  };
  // A stored epoch e intersects the range exactly when SlotEpoch(boundary)
  // <= e <= SlotEpoch(now); walk those epochs directly when there are
  // fewer of them than ring slots (short trailing ranges), else scan the
  // ring once (the tail span is sized to window - exact_len, so a
  // full-window walk could otherwise revisit slots).
  Timestamp first_epoch = SlotEpoch(boundary);
  Timestamp last_epoch = SlotEpoch(now);
  if ((last_epoch - first_epoch) / span_ <
      static_cast<uint64_t>(slots_.size())) {
    for (Timestamp e = first_epoch;; e += span_) {
      size_t i = SlotIndex(e);
      if (slot_epochs_[i] == e && slots_[i] != 0) sum += slot_mass(i);
      if (e == last_epoch) break;
    }
  } else {
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (slot_epochs_[i] == ~0ULL || slots_[i] == 0) continue;
      if (slot_epochs_[i] > now || slot_epochs_[i] + span_ <= boundary) {
        continue;
      }
      sum += slot_mass(i);
    }
  }
  return sum;
}

size_t HybridHistogram::MemoryBytes() const {
  return sizeof(*this) + exact_.size() * sizeof(Run) +
         slots_.size() * (sizeof(uint64_t) + sizeof(Timestamp));
}

}  // namespace ecm
