#include "src/window/hybrid_histogram.h"

#include <algorithm>
#include <cassert>

namespace ecm {

HybridHistogram::HybridHistogram(const Config& config)
    : window_len_(config.window_len), exact_len_(config.exact_len) {
  assert(config.window_len > 0 && config.num_subwindows > 0);
  assert(config.exact_len < config.window_len);
  uint32_t slots = config.num_subwindows + 1;
  span_ = std::max<uint64_t>(
      1, (window_len_ - exact_len_) / config.num_subwindows);
  slots_.assign(slots, 0);
  slot_epochs_.assign(slots, ~0ULL);
}

void HybridHistogram::AddToTail(Timestamp ts, uint64_t count) {
  size_t idx = SlotIndex(ts);
  Timestamp epoch = SlotEpoch(ts);
  if (slot_epochs_[idx] != epoch) {
    slots_[idx] = 0;
    slot_epochs_[idx] = epoch;
  }
  slots_[idx] += count;
}

void HybridHistogram::DemoteAged(Timestamp now) {
  // Exact entries older than exact_len demote into the equi-width tail.
  Timestamp exact_start = WindowStart(now, exact_len_);
  while (!exact_.empty() && exact_.front().ts <= exact_start) {
    AddToTail(exact_.front().ts, exact_.front().count);
    exact_.pop_front();
  }
}

void HybridHistogram::Add(Timestamp ts, uint64_t count) {
  assert(ts >= last_ts_ && "timestamps must be non-decreasing");
  last_ts_ = ts;
  lifetime_ += count;
  if (!exact_.empty() && exact_.back().ts == ts) {
    exact_.back().count += count;
  } else {
    exact_.push_back(Run{ts, count});
  }
  // Hot path stays O(1) amortized: only demote aged exact runs. Expired
  // tail slots need no eager zeroing — Estimate() filters them by epoch
  // and AddToTail() resets a slot when its ring epoch advances — so the
  // full ring scan is reserved for the explicit Expire() entry point.
  DemoteAged(ts);
}

void HybridHistogram::Expire(Timestamp now) {
  DemoteAged(now);
  // Tail slots fully outside the window are dropped.
  Timestamp wstart = WindowStart(now, window_len_);
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slot_epochs_[i] != ~0ULL && slot_epochs_[i] + span_ <= wstart) {
      slots_[i] = 0;
      slot_epochs_[i] = ~0ULL;
    }
  }
}

double HybridHistogram::Estimate(Timestamp now, uint64_t range) const {
  if (range > window_len_) range = window_len_;
  Timestamp boundary = WindowStart(now, range);

  // Exact region: count runs inside (boundary, now].
  double sum = 0.0;
  auto it = std::partition_point(
      exact_.begin(), exact_.end(),
      [boundary](const Run& r) { return r.ts <= boundary; });
  for (; it != exact_.end(); ++it) {
    if (it->ts <= now) sum += static_cast<double>(it->count);
  }
  // Tail region: equi-width slots with boundary interpolation.
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slot_epochs_[i] == ~0ULL || slots_[i] == 0) continue;
    Timestamp slot_start = slot_epochs_[i];
    Timestamp slot_end = slot_start + span_;
    if (slot_start > now || slot_end <= boundary) continue;
    if (slot_start > boundary && slot_end <= now + 1) {
      sum += static_cast<double>(slots_[i]);
    } else {
      Timestamp lo = std::max(slot_start, boundary + 1);
      Timestamp hi = std::min<Timestamp>(slot_end, now + 1);
      double frac = hi > lo ? static_cast<double>(hi - lo) /
                                  static_cast<double>(span_)
                            : 0.0;
      sum += static_cast<double>(slots_[i]) * frac;
    }
  }
  return sum;
}

size_t HybridHistogram::MemoryBytes() const {
  return sizeof(*this) + exact_.size() * sizeof(Run) +
         slots_.size() * (sizeof(uint64_t) + sizeof(Timestamp));
}

}  // namespace ecm
