// Equi-width sliding sub-window counter — the related-work baseline the
// paper contrasts with (Hung & Ting 2008; Dimitropoulos et al. 2008;
// hybrid histograms of Qiao et al. 2003): a ring of B equal-span
// sub-window counters instead of an exponential histogram.
//
// The structure is simple and fast — a weighted arrival is one ring-slot
// addition — but, as the paper argues in §2, provides NO meaningful error
// guarantee: a query whose boundary falls inside a sub-window can be off
// by that sub-window's entire content, and for small ranges the error is
// unbounded relative to the answer. The ablation bench
// (bench_ablation_equiwidth) measures exactly this failure mode against
// ECM-EH at matched memory.
//
// EquiWidthWindow satisfies SlidingWindowCounter; the baseline sketch
// EcmSketch<EquiWidthWindow> lives in core/equiwidth_cm.h.

#ifndef ECM_WINDOW_EQUIWIDTH_WINDOW_H_
#define ECM_WINDOW_EQUIWIDTH_WINDOW_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/window/window_spec.h"

namespace ecm {

/// Ring of B equal-span counters covering the trailing window.
class EquiWidthWindow {
 public:
  struct Config {
    uint64_t window_len = 100;  ///< N: window length
    uint32_t num_subwindows = 8;  ///< B: ring size
  };

  EquiWidthWindow() : EquiWidthWindow(Config{}) {}
  explicit EquiWidthWindow(const Config& config);

  /// Registers `count` arrivals at `ts` (non-decreasing, >= 1). Weighted
  /// arrivals are native: one slot addition regardless of `count`.
  void Add(Timestamp ts, uint64_t count = 1);

  /// Estimate of arrivals in (now-range, now]: full sub-windows inside the
  /// range plus a linear fraction of the boundary sub-window.
  double Estimate(Timestamp now, uint64_t range) const;

  /// Zeroes sub-windows that slid out of the window.
  void Expire(Timestamp now);

  uint64_t lifetime_count() const { return lifetime_; }
  uint64_t window_len() const { return window_len_; }
  Timestamp last_timestamp() const { return last_ts_; }
  /// Ticks covered per ring slot (error-bound hook for tests: a boundary
  /// inside a slot is resolved by uniform interpolation over this span).
  uint64_t span() const { return span_; }
  size_t MemoryBytes() const {
    return sizeof(*this) + slots_.size() * sizeof(uint64_t);
  }

 private:
  /// Index of the ring slot containing timestamp ts.
  size_t SlotIndex(Timestamp ts) const {
    return static_cast<size_t>((ts / span_) % slots_.size());
  }
  /// First timestamp of the slot epoch containing ts.
  Timestamp SlotEpoch(Timestamp ts) const { return (ts / span_) * span_; }

  uint64_t window_len_;
  uint64_t span_;  // ticks covered per slot
  std::vector<uint64_t> slots_;
  std::vector<Timestamp> slot_epochs_;  // epoch each slot currently holds
  uint64_t lifetime_ = 0;
  Timestamp last_ts_ = 0;
};

}  // namespace ecm

#endif  // ECM_WINDOW_EQUIWIDTH_WINDOW_H_
