// Common vocabulary for sliding-window synopses.
//
// The paper (§4) supports two sliding-window models:
//  * time-based  — "items seen in the last N time units";
//  * count-based — "the last N arrivals of the stream".
//
// Both are handled by one code path: every arrival carries a Timestamp that
// is either a wall-clock tick (time-based) or the global arrival index of
// the *stream* (count-based). A window of length N at instant `now` covers
// exactly the timestamps in (now - N, now].

#ifndef ECM_WINDOW_WINDOW_SPEC_H_
#define ECM_WINDOW_WINDOW_SPEC_H_

#include <cstdint>

namespace ecm {

/// Timestamp of an arrival: wall-clock tick (time-based windows) or global
/// arrival index starting at 1 (count-based windows).
using Timestamp = uint64_t;

/// Which sliding-window model a synopsis operates under.
enum class WindowMode : uint8_t {
  kTimeBased = 0,
  kCountBased = 1,
};

inline const char* WindowModeToString(WindowMode m) {
  return m == WindowMode::kTimeBased ? "time-based" : "count-based";
}

/// True iff timestamp `ts` lies inside the window of length `len` ending at
/// `now`, i.e. ts ∈ (now - len, now].
inline bool InWindow(Timestamp ts, Timestamp now, uint64_t len) {
  // Written as a subtraction so that huge window lengths cannot overflow.
  return ts <= now && now - ts < len;
}

/// Start boundary of the window (exclusive): items with ts <= this value
/// are outside the window. Saturates at 0.
inline Timestamp WindowStart(Timestamp now, uint64_t len) {
  return now >= len ? now - len : 0;
}

}  // namespace ecm

#endif  // ECM_WINDOW_WINDOW_SPEC_H_
