// Exponential histogram (Datar, Gionis, Indyk, Motwani, SIAM J. Comput. 2002)
// for ε-approximate basic counting over a sliding window.
//
// This is the default sliding-window counter inside ECM-sketches (the
// "ECM-EH" variant of the paper). It maintains buckets of exponentially
// increasing sizes; bucket boundaries are chosen so that invariant 1 of the
// paper holds for every bucket j (bucket 1 = most recent):
//
//     C_j / (2 (1 + Σ_{i<j} C_i)) <= ε
//
// which bounds the query-time error (half the partially-overlapping oldest
// bucket) by ε times the true count.
//
// Storage follows the layout the paper found fastest (§7.1): the bucket
// list is split into levels L0, L1, ..., level i being a deque that holds
// only buckets of size 2^i. Levels are allocated lazily. This gives random
// access by level and O(1) bucket merges.
//
// Space: O(log²(N) / ε) bits. Amortized update: O(1). Both window models
// are supported; the timestamp convention is defined in window_spec.h.

#ifndef ECM_WINDOW_EXPONENTIAL_HISTOGRAM_H_
#define ECM_WINDOW_EXPONENTIAL_HISTOGRAM_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/util/bytes.h"
#include "src/util/result.h"
#include "src/window/window_spec.h"

namespace ecm {

/// Read-only view of one bucket, used by the order-preserving merge (§5.1)
/// and by tests that check invariant 1. Buckets are reported oldest first.
struct BucketView {
  Timestamp start;  ///< end timestamp of the next-older bucket (exclusive)
  Timestamp end;    ///< timestamp of the most recent 1-bit in the bucket
  uint64_t size;    ///< number of 1-bits aggregated in the bucket
};

/// ε-approximate sliding-window counter.
///
/// Counts "1-bits" (arrivals, possibly weighted) whose timestamps fall in
/// the window (now - range, now], for any range up to the configured window
/// length. Timestamps passed to Add() must be non-decreasing.
class ExponentialHistogram {
 public:
  /// Construction parameters. Every sliding-window counter class in this
  /// library exposes a nested Config so that EcmSketch<Counter> can build
  /// its w×d counters uniformly.
  struct Config {
    double epsilon = 0.1;       ///< max relative error of estimates
    uint64_t window_len = 100;  ///< N: window length (ticks or arrivals)
  };

  ExponentialHistogram() : ExponentialHistogram(Config{}) {}
  explicit ExponentialHistogram(const Config& config);

  /// Registers `count` arrivals at timestamp `ts` (non-decreasing across
  /// calls, and >= 1) and expires buckets that slid out of the window.
  void Add(Timestamp ts, uint64_t count = 1);

  /// Estimated number of arrivals with timestamp in (now - range, now].
  /// `range` is clamped to the configured window length. `now` must be
  /// >= the last Add() timestamp (the caller's clock may have advanced).
  double Estimate(Timestamp now, uint64_t range) const;

  /// Estimate over the full window length.
  double EstimateWindow(Timestamp now) const {
    return Estimate(now, window_len());
  }

  /// Drops buckets entirely outside the window ending at `now`.
  void Expire(Timestamp now);

  /// Sum of all bucket sizes currently held (an upper bound on the true
  /// in-window count; at most (1+ε) times it after Expire()).
  uint64_t BucketTotal() const { return total_; }

  /// Exact number of arrivals ever registered (not windowed).
  uint64_t lifetime_count() const { return lifetime_; }

  /// Number of buckets currently held.
  size_t NumBuckets() const { return num_buckets_; }

  /// Approximate in-memory footprint in bytes (buckets + level directory).
  size_t MemoryBytes() const;

  /// Snapshot of all buckets, oldest first, with reconstructed start
  /// timestamps (paper §5: s(b_j) = e(b_{j+1}), oldest bucket uses the
  /// expiry watermark). Used by the §5.1 merge and by tests.
  std::vector<BucketView> Buckets() const;

  double epsilon() const { return epsilon_; }
  uint64_t window_len() const { return window_len_; }
  Timestamp last_timestamp() const { return last_ts_; }

  /// True if no buckets are held.
  bool Empty() const { return num_buckets_ == 0; }

  /// Verifies invariant 1 for every bucket; returns the first violating
  /// bucket index (oldest-first) or -1 if the invariant holds. Test hook.
  int CheckInvariant() const;

  /// Appends the exact wire encoding (varint bucket log) to `w`. The wire
  /// size is what the distributed benches account as network transfer.
  void SerializeTo(ByteWriter* w) const;

  /// Decodes a histogram previously written by SerializeTo.
  static Result<ExponentialHistogram> Deserialize(ByteReader* r);

 private:
  struct Bucket {
    Timestamp end;  // timestamp of the newest 1-bit in the bucket
  };

  // Inserts a single 1-bit at `ts` and cascades merges.
  void AddOne(Timestamp ts);

  double epsilon_;
  uint64_t window_len_;
  // Maximum buckets allowed per level before the two oldest merge:
  // ceil(1/eps)/2 + 2 (Datar et al. invariant with k = ceil(1/eps)).
  size_t level_capacity_;

  // levels_[i] holds buckets of size 2^i, front() = oldest.
  std::vector<std::deque<Bucket>> levels_;
  size_t num_buckets_ = 0;
  uint64_t total_ = 0;     // sum of sizes of held buckets
  uint64_t lifetime_ = 0;  // all arrivals ever
  Timestamp last_ts_ = 0;
  // End timestamp of the most recently expired (or merged-away via expiry)
  // bucket; the reconstruction start of the oldest live bucket.
  Timestamp expired_end_ = 0;
};

}  // namespace ecm

#endif  // ECM_WINDOW_EXPONENTIAL_HISTOGRAM_H_
