// Exponential histogram (Datar, Gionis, Indyk, Motwani, SIAM J. Comput. 2002)
// for ε-approximate basic counting over a sliding window.
//
// This is the default sliding-window counter inside ECM-sketches (the
// "ECM-EH" variant of the paper). It maintains buckets of exponentially
// increasing sizes; bucket boundaries are chosen so that invariant 1 of the
// paper holds for every bucket j (bucket 1 = most recent):
//
//     C_j / (2 (1 + Σ_{i<j} C_i)) <= ε
//
// which bounds the query-time error (half the partially-overlapping oldest
// bucket) by ε times the true count.
//
// Storage follows the layout the paper found fastest (§7.1) — the bucket
// list is split into levels L0, L1, ..., level i holding only buckets of
// size 2^i — with each level's buckets in a contiguous ring-buffer
// segment (head/count indices). A bucket is one 8-byte timestamp and
// steady-state pushes and pops never touch the allocator. Segments grow
// geometrically up to the `level_capacity_` ring bound as buckets
// actually arrive, so tiny-ε configurations (level capacity in the
// millions) no longer pay a full `levels × level_capacity_` preallocation
// for mostly-empty levels.
//
// Weighted arrivals: Add(ts, count) costs O(log(count) + level_capacity_)
// bucket operations, not O(count). The batch insert propagates the unit
// cascade level by level in closed form and reproduces the exact bucket
// state that `count` sequential unit inserts would produce, so estimates,
// invariant 1, merges and the wire encoding are all indistinguishable from
// the sequential path.
//
// Space: O(log²(N) / ε) bits. Amortized update: O(1). Both window models
// are supported; the timestamp convention is defined in window_spec.h.

#ifndef ECM_WINDOW_EXPONENTIAL_HISTOGRAM_H_
#define ECM_WINDOW_EXPONENTIAL_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "src/util/bytes.h"
#include "src/util/result.h"
#include "src/window/window_spec.h"

namespace ecm {

/// Read-only view of one bucket, used by the order-preserving merge (§5.1)
/// and by tests that check invariant 1. Buckets are reported oldest first.
struct BucketView {
  Timestamp start;  ///< end timestamp of the next-older bucket (exclusive)
  Timestamp end;    ///< timestamp of the most recent 1-bit in the bucket
  uint64_t size;    ///< number of 1-bits aggregated in the bucket
};

/// ε-approximate sliding-window counter.
///
/// Counts "1-bits" (arrivals, possibly weighted) whose timestamps fall in
/// the window (now - range, now], for any range up to the configured window
/// length. Timestamps passed to Add() must be non-decreasing.
class ExponentialHistogram {
 public:
  /// Construction parameters. Every sliding-window counter class in this
  /// library exposes a nested Config so that EcmSketch<Counter> can build
  /// its w×d counters uniformly.
  struct Config {
    double epsilon = 0.1;       ///< max relative error of estimates
    uint64_t window_len = 100;  ///< N: window length (ticks or arrivals)
  };

  ExponentialHistogram() : ExponentialHistogram(Config{}) {}
  explicit ExponentialHistogram(const Config& config);

  /// Registers `count` arrivals at timestamp `ts` (non-decreasing across
  /// calls, and >= 1) and expires buckets that slid out of the window.
  /// Weighted inserts are O(log(count) + 1/ε) and produce the same bucket
  /// state as `count` unit inserts.
  void Add(Timestamp ts, uint64_t count = 1);

  /// Estimated number of arrivals with timestamp in (now - range, now].
  /// `range` is clamped to the configured window length. `now` must be
  /// >= the last Add() timestamp (the caller's clock may have advanced).
  ///
  /// O(1) when the range covers every held bucket (the steady state for
  /// full-window queries): the maintained running total answers directly.
  /// Otherwise one binary search inside the single straddling level; all
  /// newer levels contribute their whole weight off the level directory
  /// without touching bucket storage.
  double Estimate(Timestamp now, uint64_t range) const;

  /// Pre-PR4 reference implementation of Estimate: the per-level scan
  /// that binary-searches every level's ring independently. Bit-identical
  /// to Estimate() for in-window masses below 2^53 (both paths then sum
  /// exactly representable doubles) — kept as the differential-test
  /// oracle and the bench ablation baseline.
  double EstimateScanReference(Timestamp now, uint64_t range) const;

  /// Estimate over the full window length.
  double EstimateWindow(Timestamp now) const {
    return Estimate(now, window_len());
  }

  /// Earliest clock value strictly after `now` at which Estimate(·, range)
  /// can return a different value than at `now`, assuming no further
  /// Add/Expire calls — i.e. the next window-expiry event of this counter.
  /// Returns 0 when the estimate can never change again (empty histogram,
  /// or all content already behind the boundary). The incremental drift
  /// tracker (dist/geometric.h) schedules per-counter expiry-event heap
  /// entries off this, replacing its former periodic staleness refresh.
  ///
  /// The estimate is a function of which bucket ends lie past the window
  /// boundary plus the straddle half-correction (driven by expired_end_
  /// and the boundary-zero special case), so it is piecewise constant in
  /// `now` with flips exactly when the boundary crosses a bucket end,
  /// the expiry watermark, or leaves zero.
  Timestamp NextEstimateChangeAt(Timestamp now, uint64_t range) const;

  /// Drops buckets entirely outside the window ending at `now`.
  void Expire(Timestamp now);

  /// Sum of all bucket sizes currently held (an upper bound on the true
  /// in-window count; at most (1+ε) times it after Expire()).
  uint64_t BucketTotal() const { return total_; }

  /// Exact number of arrivals ever registered (not windowed).
  uint64_t lifetime_count() const { return lifetime_; }

  /// Number of buckets currently held.
  size_t NumBuckets() const { return num_buckets_; }

  /// Total ring slots currently allocated across all level segments —
  /// the segmented-growth regression hook: stays proportional to buckets
  /// actually held, not to levels × level_capacity_.
  size_t AllocatedSlots() const;

  /// Approximate in-memory footprint in bytes (segments + directory).
  size_t MemoryBytes() const;

  /// Snapshot of all buckets, oldest first, with reconstructed start
  /// timestamps (paper §5: s(b_j) = e(b_{j+1}), oldest bucket uses the
  /// expiry watermark). Used by the §5.1 merge and by tests.
  std::vector<BucketView> Buckets() const;

  double epsilon() const { return epsilon_; }
  uint64_t window_len() const { return window_len_; }
  Timestamp last_timestamp() const { return last_ts_; }

  /// True if no buckets are held.
  bool Empty() const { return num_buckets_ == 0; }

  /// Verifies invariant 1 for every bucket; returns the first violating
  /// bucket index (oldest-first) or -1 if the invariant holds. Test hook.
  int CheckInvariant() const;

  /// Appends the exact wire encoding (varint bucket log) to `w`. The wire
  /// size is what the distributed benches account as network transfer.
  /// The encoding is bucket-layout-independent (a level log of end
  /// timestamps) and is unchanged from the deque-backed representation.
  void SerializeTo(ByteWriter* w) const;

  /// Decodes a histogram previously written by SerializeTo.
  static Result<ExponentialHistogram> Deserialize(ByteReader* r);

 private:
  struct Bucket {
    Timestamp end;  // timestamp of the newest 1-bit in the bucket
  };

  // --- level directory (structure-of-arrays) ----------------------------
  // The directory is three parallel arrays indexed by level: ring head,
  // bucket count, and the ring segment storage. head/count live in dense
  // uint32 arrays (not per-level structs) because the query path walks
  // the whole directory — the straddling-level search and the
  // `count << i` weight accumulation in Estimate stream one contiguous
  // 4-byte-stride span instead of hopping 40-byte Level records. Segment
  // sizes grow geometrically (Grow) up to level_capacity_ as levels fill.
  size_t NumLevels() const { return level_count_.size(); }

  // --- ring-buffer primitives -------------------------------------------
  const Bucket& At(size_t level, uint32_t pos) const {
    const std::vector<Bucket>& slots = level_slots_[level];
    uint32_t cap = static_cast<uint32_t>(slots.size());
    uint32_t idx = level_head_[level] + pos;
    if (idx >= cap) idx -= cap;
    return slots[idx];
  }
  // Re-linearizes the ring into a segment of at least `count + 1` slots,
  // doubling up to the level_capacity_ bound.
  void Grow(size_t level);
  void PushBack(size_t level, Bucket b) {
    if (level_count_[level] == level_slots_[level].size()) Grow(level);
    uint32_t cap = static_cast<uint32_t>(level_slots_[level].size());
    uint32_t idx = level_head_[level] + level_count_[level];
    if (idx >= cap) idx -= cap;
    level_slots_[level][idx] = b;
    ++level_count_[level];
    if (level > top_level_ || level_count_[top_level_] == 0) {
      top_level_ = level;
    }
  }
  Bucket PopFront(size_t level) {
    Bucket b = level_slots_[level][level_head_[level]];
    level_head_[level] =
        (level_head_[level] + 1 == level_slots_[level].size())
            ? 0
            : level_head_[level] + 1;
    --level_count_[level];
    if (level_count_[level] == 0 && level == top_level_) {
      while (top_level_ > 0 && level_count_[top_level_] == 0) --top_level_;
    }
    return b;
  }
  // Grows the level directory so that `level` exists (no slot storage is
  // allocated until the level receives its first bucket).
  void EnsureLevel(size_t level) {
    if (NumLevels() <= level) {
      level_head_.resize(level + 1, 0);
      level_count_.resize(level + 1, 0);
      level_slots_.resize(level + 1);
    }
  }

  // Inserts a single 1-bit at `ts` and cascades merges (unit fast path).
  void AddOne(Timestamp ts);
  // Inserts `count` 1-bits at `ts` by closed-form cascade propagation.
  void AddBatch(Timestamp ts, uint64_t count);

  double epsilon_;
  uint64_t window_len_;
  // Maximum buckets allowed per level before the two oldest merge:
  // ceil(1/eps)/2 + 2 (Datar et al. invariant with k = ceil(1/eps)).
  size_t level_capacity_;

  std::vector<uint32_t> level_head_;
  std::vector<uint32_t> level_count_;
  std::vector<std::vector<Bucket>> level_slots_;
  // Index of the highest non-empty level (the global oldest bucket is its
  // ring front); 0 when no buckets are held. Lets full-coverage queries
  // read the oldest bucket in O(1).
  size_t top_level_ = 0;
  size_t num_buckets_ = 0;
  uint64_t total_ = 0;     // sum of sizes of held buckets
  uint64_t lifetime_ = 0;  // all arrivals ever
  Timestamp last_ts_ = 0;
  // End timestamp of the most recently expired (or merged-away via expiry)
  // bucket; the reconstruction start of the oldest live bucket.
  Timestamp expired_end_ = 0;
};

}  // namespace ecm

#endif  // ECM_WINDOW_EXPONENTIAL_HISTOGRAM_H_
