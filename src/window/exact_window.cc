#include "src/window/exact_window.h"

#include <algorithm>
#include <cassert>

namespace ecm {

void ExactWindow::Add(Timestamp ts, uint64_t count) {
  assert(ts >= last_ts_ && "timestamps must be non-decreasing");
  last_ts_ = ts;
  lifetime_ += count;
  if (!runs_.empty() && runs_.back().ts == ts) {
    runs_.back().count += count;
  } else {
    runs_.push_back(Run{ts, count});
  }
  Expire(ts);
}

void ExactWindow::Expire(Timestamp now) {
  Timestamp wstart = WindowStart(now, window_len_);
  while (!runs_.empty() && runs_.front().ts <= wstart) runs_.pop_front();
}

double ExactWindow::Estimate(Timestamp now, uint64_t range) const {
  assert(now >= last_ts_);
  if (range > window_len_) range = window_len_;
  Timestamp boundary = WindowStart(now, range);
  auto it = std::partition_point(
      runs_.begin(), runs_.end(),
      [boundary](const Run& r) { return r.ts <= boundary; });
  uint64_t sum = 0;
  for (; it != runs_.end(); ++it) sum += it->count;
  return static_cast<double>(sum);
}

size_t ExactWindow::MemoryBytes() const {
  return sizeof(*this) + runs_.size() * sizeof(Run);
}

std::vector<BucketView> ExactWindow::Buckets() const {
  std::vector<BucketView> out;
  out.reserve(runs_.size());
  for (const Run& r : runs_) out.push_back(BucketView{r.ts, r.ts, r.count});
  return out;
}


namespace {
constexpr uint8_t kExactMagic = 0xE4;
}  // namespace

void ExactWindow::SerializeTo(ByteWriter* w) const {
  w->PutFixed<uint8_t>(kExactMagic);
  w->PutVarint(window_len_);
  w->PutVarint(lifetime_);
  w->PutVarint(last_ts_);
  w->PutVarint(runs_.size());
  Timestamp prev = 0;
  for (const Run& run : runs_) {
    w->PutVarint(run.ts - prev);
    w->PutVarint(run.count);
    prev = run.ts;
  }
}

Result<ExactWindow> ExactWindow::Deserialize(ByteReader* r) {
  auto magic = r->GetFixed<uint8_t>();
  if (!magic.ok()) return magic.status();
  if (*magic != kExactMagic) {
    return Status::Corruption("bad exact-window magic byte");
  }
  auto window = r->GetVarint();
  if (!window.ok()) return window.status();
  if (*window == 0) return Status::Corruption("exact window length is zero");
  ExactWindow ew(Config{*window});
  auto lifetime = r->GetVarint();
  if (!lifetime.ok()) return lifetime.status();
  ew.lifetime_ = *lifetime;
  auto last_ts = r->GetVarint();
  if (!last_ts.ok()) return last_ts.status();
  ew.last_ts_ = *last_ts;
  auto count = r->GetVarint();
  if (!count.ok()) return count.status();
  Timestamp prev = 0;
  for (uint64_t i = 0; i < *count; ++i) {
    auto delta = r->GetVarint();
    if (!delta.ok()) return delta.status();
    auto n = r->GetVarint();
    if (!n.ok()) return n.status();
    prev += *delta;
    ew.runs_.push_back(Run{prev, *n});
  }
  return ew;
}

}  // namespace ecm
