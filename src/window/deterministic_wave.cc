#include "src/window/deterministic_wave.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/util/bits.h"

namespace ecm {

DeterministicWave::DeterministicWave(const Config& config)
    : epsilon_(config.epsilon), window_len_(config.window_len) {
  assert(epsilon_ > 0.0 && epsilon_ <= 1.0);
  assert(window_len_ > 0);
  // Clamped before the float->int cast (tiny epsilons from hostile bytes
  // must not overflow into UB).
  double capacity = std::ceil(1.0 / epsilon_);
  if (!(capacity >= 1.0)) capacity = 1.0;
  if (capacity > 1e9) capacity = 1e9;
  level_capacity_ = static_cast<size_t>(capacity) + 2;
  // Provision levels so the top level spans a full window of max_arrivals:
  // c * 2^(L-1) >= u  =>  L = ceil(log2(u / c)) + 1.
  uint64_t u = std::max<uint64_t>(config.max_arrivals, 1);
  uint64_t per_level = static_cast<uint64_t>(level_capacity_);
  int num_levels = 1;
  if (u > per_level) {
    num_levels = CeilLog2((u + per_level - 1) / per_level) + 1;
  }
  levels_.resize(num_levels);
  anchors_.assign(num_levels, Entry{0, 0});
}

void DeterministicWave::AddOne(Timestamp ts) {
  uint64_t rank = ++lifetime_;
  int top = std::min<int>(TrailingZeros(rank), num_levels() - 1);
  for (int j = 0; j <= top; ++j) {
    levels_[j].push_back(Entry{rank, ts});
    if (levels_[j].size() > level_capacity_) {
      anchors_[j] = levels_[j].front();
      levels_[j].pop_front();
    }
  }
}

void DeterministicWave::AddBatch(Timestamp ts, uint64_t count) {
  // All `count` arrivals share one timestamp, so each level's update has a
  // closed form: level j records the ranks divisible by 2^j inside
  // (lifetime, lifetime + count], and only the most recent
  // `level_capacity_` of them survive — the rest would be pushed and
  // popped straight through, leaving only an anchor update. The final
  // state is exactly what `count` AddOne calls would produce, at
  // O(levels + level_capacity_) cost instead of O(count · levels).
  const uint64_t lt = lifetime_;
  for (size_t j = 0; j < levels_.size(); ++j) {
    const uint64_t step = 1ULL << j;
    const uint64_t new_entries = ((lt + count) >> j) - (lt >> j);
    if (new_entries == 0) break;  // higher levels are sparser still
    auto& level = levels_[j];
    const uint64_t sz = level.size();
    const uint64_t keep = std::min(sz + new_entries, level_capacity_);
    const uint64_t new_kept = std::min(new_entries, keep);
    const uint64_t old_kept = keep - new_kept;
    const uint64_t pops = sz + new_entries - keep;
    if (pops > 0) {
      if (pops <= sz) {
        // Last evicted entry is a pre-existing one.
        anchors_[j] = level[pops - 1];
      } else {
        // Evictions ran into the new run: the last skipped new rank.
        const uint64_t first_rank = ((lt >> j) + 1) << j;
        anchors_[j] = Entry{first_rank + (pops - sz - 1) * step, ts};
      }
      for (uint64_t p = 0; p < sz - old_kept; ++p) level.pop_front();
    }
    const uint64_t last_rank = ((lt + count) >> j) << j;
    for (uint64_t p = new_kept; p-- > 0;) {
      level.push_back(Entry{last_rank - p * step, ts});
    }
  }
  lifetime_ += count;
}

void DeterministicWave::Add(Timestamp ts, uint64_t count) {
  assert(ts >= last_ts_ && "timestamps must be non-decreasing");
  last_ts_ = ts;
  if (count == 1) {
    AddOne(ts);
  } else if (count > 1) {
    AddBatch(ts, count);
  }
  Expire(ts);
}

void DeterministicWave::Expire(Timestamp now) {
  Timestamp wstart = WindowStart(now, window_len_);
  for (size_t j = 0; j < levels_.size(); ++j) {
    auto& level = levels_[j];
    // Keep one entry at or before the window start as the search anchor;
    // strictly older ones can never be the boundary predecessor.
    while (level.size() > 1 && level[1].ts <= wstart) {
      anchors_[j] = level.front();
      level.pop_front();
    }
  }
}

double DeterministicWave::Estimate(Timestamp now, uint64_t range) const {
  assert(now >= last_ts_);
  if (range > window_len_) range = window_len_;
  Timestamp boundary = WindowStart(now, range);
  if (lifetime_ == 0) return 0.0;

  // Finest level that covers the boundary: its anchor (left edge of the
  // recorded history) must lie at or before the boundary.
  for (size_t j = 0; j < levels_.size(); ++j) {
    const auto& level = levels_[j];
    const Entry& anchor = anchors_[j];
    bool covers = anchor.ts <= boundary;
    if (!covers) continue;

    // Last recorded (rank, ts) with ts <= boundary; the anchor qualifies.
    auto it = std::partition_point(
        level.begin(), level.end(),
        [boundary](const Entry& e) { return e.ts <= boundary; });
    uint64_t q = (it == level.begin()) ? anchor.rank : std::prev(it)->rank;

    uint64_t gap = 1ULL << j;
    double hi = static_cast<double>(lifetime_ - q);
    double lo;
    if (q + gap <= lifetime_) {
      // The successor rank q+2^j exists and has ts > boundary, so at least
      // lifetime - (q + 2^j) + 1 arrivals are inside the range.
      lo = std::max<double>(0.0, static_cast<double>(lifetime_) -
                                     static_cast<double>(q + gap) + 1.0);
    } else {
      lo = 0.0;
    }
    return (hi + lo) / 2.0;
  }

  // No level covers the boundary: every recorded point is newer than the
  // boundary, which can only happen right after heavy eviction. Fall back
  // to the coarsest level's anchor as the best available left edge.
  const Entry& anchor = anchors_.back();
  return static_cast<double>(lifetime_ - anchor.rank);
}

size_t DeterministicWave::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  bytes += levels_.size() * (sizeof(std::deque<Entry>) + sizeof(Entry));
  for (const auto& level : levels_) bytes += level.size() * sizeof(Entry);
  return bytes;
}

std::vector<BucketView> DeterministicWave::Buckets() const {
  // Union of all recorded (rank, ts) points, deduplicated by rank; each
  // adjacent pair becomes one bucket.
  std::vector<Entry> points;
  for (size_t j = 0; j < levels_.size(); ++j) {
    if (anchors_[j].rank > 0) points.push_back(anchors_[j]);
    for (const Entry& e : levels_[j]) points.push_back(e);
  }
  std::sort(points.begin(), points.end(),
            [](const Entry& a, const Entry& b) { return a.rank < b.rank; });
  points.erase(std::unique(points.begin(), points.end(),
                           [](const Entry& a, const Entry& b) {
                             return a.rank == b.rank;
                           }),
               points.end());

  std::vector<BucketView> out;
  if (points.empty()) {
    if (lifetime_ > 0) {
      out.push_back(BucketView{0, last_ts_, lifetime_});
    }
    return out;
  }
  uint64_t prev_rank = points.front().rank;
  Timestamp prev_ts = points.front().ts;
  // History before the oldest recorded point was expired; note it is not
  // reconstructed (same information loss as expired EH buckets).
  for (size_t i = 1; i < points.size(); ++i) {
    out.push_back(
        BucketView{prev_ts, points[i].ts, points[i].rank - prev_rank});
    prev_rank = points[i].rank;
    prev_ts = points[i].ts;
  }
  if (lifetime_ > prev_rank) {
    out.push_back(BucketView{prev_ts, last_ts_, lifetime_ - prev_rank});
  }
  return out;
}

namespace {
constexpr uint8_t kDwMagic = 0xD3;
}  // namespace

void DeterministicWave::SerializeTo(ByteWriter* w) const {
  w->PutFixed<uint8_t>(kDwMagic);
  w->PutDouble(epsilon_);
  w->PutVarint(window_len_);
  w->PutVarint(level_capacity_);
  w->PutVarint(levels_.size());
  w->PutVarint(lifetime_);
  w->PutVarint(last_ts_);
  for (size_t j = 0; j < levels_.size(); ++j) {
    w->PutVarint(anchors_[j].rank);
    w->PutVarint(anchors_[j].ts);
    w->PutVarint(levels_[j].size());
    uint64_t prev_rank = 0;
    Timestamp prev_ts = 0;
    for (const Entry& e : levels_[j]) {
      w->PutVarint(e.rank - prev_rank);
      w->PutVarint(e.ts - prev_ts);
      prev_rank = e.rank;
      prev_ts = e.ts;
    }
  }
}

Result<DeterministicWave> DeterministicWave::Deserialize(ByteReader* r) {
  auto magic = r->GetFixed<uint8_t>();
  if (!magic.ok()) return magic.status();
  if (*magic != kDwMagic) {
    return Status::Corruption("bad deterministic-wave magic byte");
  }
  auto epsilon = r->GetDouble();
  if (!epsilon.ok()) return epsilon.status();
  auto window = r->GetVarint();
  if (!window.ok()) return window.status();
  auto capacity = r->GetVarint();
  if (!capacity.ok()) return capacity.status();
  auto num_levels = r->GetVarint();
  if (!num_levels.ok()) return num_levels.status();
  if (!(*epsilon > 0.0) || *epsilon > 1.0 || *window == 0 ||
      *capacity == 0 || *num_levels == 0 || *num_levels > 64) {
    return Status::Corruption("deterministic-wave header out of domain");
  }

  DeterministicWave dw(Config{*epsilon, *window, 1});
  dw.level_capacity_ = *capacity;
  dw.levels_.assign(*num_levels, {});
  dw.anchors_.assign(*num_levels, Entry{0, 0});

  auto lifetime = r->GetVarint();
  if (!lifetime.ok()) return lifetime.status();
  dw.lifetime_ = *lifetime;
  auto last_ts = r->GetVarint();
  if (!last_ts.ok()) return last_ts.status();
  dw.last_ts_ = *last_ts;

  for (size_t j = 0; j < *num_levels; ++j) {
    auto anchor_rank = r->GetVarint();
    if (!anchor_rank.ok()) return anchor_rank.status();
    auto anchor_ts = r->GetVarint();
    if (!anchor_ts.ok()) return anchor_ts.status();
    dw.anchors_[j] = Entry{*anchor_rank, *anchor_ts};
    auto count = r->GetVarint();
    if (!count.ok()) return count.status();
    uint64_t prev_rank = 0;
    Timestamp prev_ts = 0;
    for (uint64_t i = 0; i < *count; ++i) {
      auto drank = r->GetVarint();
      if (!drank.ok()) return drank.status();
      auto dts = r->GetVarint();
      if (!dts.ok()) return dts.status();
      prev_rank += *drank;
      prev_ts += *dts;
      dw.levels_[j].push_back(Entry{prev_rank, prev_ts});
    }
  }
  return dw;
}

}  // namespace ecm
