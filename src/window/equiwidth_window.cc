#include "src/window/equiwidth_window.h"

#include <algorithm>
#include <cassert>

namespace ecm {

EquiWidthWindow::EquiWidthWindow(const Config& config)
    : window_len_(config.window_len) {
  assert(config.window_len > 0 && config.num_subwindows > 0);
  // B+1 slots so a full window of B spans is always representable even
  // when the current slot is partially filled. The span rounds UP so
  // that (B+1)·span >= window + span always holds: with a floored span
  // and window % B != 0 the ring could wrap inside the window and
  // silently overwrite in-window mass (e.g. window=100, B=60 gave
  // span=1 and only 61 covered ticks).
  uint32_t slots = config.num_subwindows + 1;
  span_ = std::max<uint64_t>(
      1, (window_len_ + config.num_subwindows - 1) / config.num_subwindows);
  slots_.assign(slots, 0);
  slot_epochs_.assign(slots, ~0ULL);
}

void EquiWidthWindow::Add(Timestamp ts, uint64_t count) {
  assert(ts >= last_ts_ && "timestamps must be non-decreasing");
  last_ts_ = ts;
  lifetime_ += count;
  size_t idx = SlotIndex(ts);
  Timestamp epoch = SlotEpoch(ts);
  if (slot_epochs_[idx] != epoch) {
    slots_[idx] = 0;  // ring wrapped: this slot's old epoch is history
    slot_epochs_[idx] = epoch;
  }
  slots_[idx] += count;
}

void EquiWidthWindow::Expire(Timestamp now) {
  Timestamp wstart = WindowStart(now, window_len_);
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slot_epochs_[i] != ~0ULL && slot_epochs_[i] + span_ <= wstart) {
      slots_[i] = 0;
      slot_epochs_[i] = ~0ULL;
    }
  }
}

double EquiWidthWindow::Estimate(Timestamp now, uint64_t range) const {
  if (range > window_len_) range = window_len_;
  Timestamp boundary = WindowStart(now, range);
  // Only slot epochs intersecting (boundary, now] can contribute, and a
  // stored epoch e intersects exactly when SlotEpoch(boundary) <= e <=
  // SlotEpoch(now) — so walk those epochs directly (at most range/span+1
  // ring probes) instead of scanning the whole ring.
  double sum = 0.0;
  Timestamp last_epoch = SlotEpoch(now);
  for (Timestamp e = SlotEpoch(boundary);; e += span_) {
    size_t i = SlotIndex(e);
    if (slot_epochs_[i] == e && slots_[i] != 0) {
      Timestamp slot_end = e + span_;  // exclusive
      if (e > boundary && slot_end <= now + 1) {
        sum += static_cast<double>(slots_[i]);
      } else {
        // Boundary slot: assume uniform arrivals within the slot (the
        // baseline's unavoidable, guarantee-free assumption).
        Timestamp lo = std::max(e, boundary + 1);
        Timestamp hi = std::min<Timestamp>(slot_end, now + 1);
        double frac = hi > lo ? static_cast<double>(hi - lo) /
                                    static_cast<double>(span_)
                              : 0.0;
        sum += static_cast<double>(slots_[i]) * frac;
      }
    }
    if (e == last_epoch) break;
  }
  return sum;
}

}  // namespace ecm
