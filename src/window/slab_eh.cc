#include "src/window/slab_eh.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>

namespace ecm {

// ---------------------------------------------------------------------------
// SlabArena
// ---------------------------------------------------------------------------

uint8_t SlabArena::ClassFor(uint32_t slots) {
  for (uint8_t cls = 0; cls < kNumClasses; ++cls) {
    if (ClassSlots(cls) >= slots) return cls;
  }
  assert(false && "slot request exceeds the largest slab size class");
  return kNumClasses - 1;
}

uint32_t SlabArena::Allocate(uint8_t cls) {
  std::vector<uint32_t>& fl = free_[cls];
  if (fl.empty()) {
    const uint32_t block_slots = ClassSlots(cls);
    const uint32_t page_slots = std::max(kPageSlots, block_slots);
    Page page;
    page.slots.reset(new uint64_t[page_slots]);
    page.num_slots = page_slots;
    page.block_slots = static_cast<uint16_t>(block_slots);
    const uint32_t page_idx = static_cast<uint32_t>(pages_.size());
    assert(page_idx < (1u << (32 - kBlockBits)) - 1 &&
           "slab arena page index space exhausted");
    const uint32_t nblocks = page_slots / block_slots;
    fl.reserve(fl.size() + nblocks);
    // Reversed so that blocks are handed out front-to-back within the page.
    for (uint32_t b = nblocks; b-- > 0;) {
      fl.push_back((page_idx << kBlockBits) | b);
    }
    pages_.push_back(std::move(page));
  }
  const uint32_t handle = fl.back();
  fl.pop_back();
  ++live_blocks_;
  return handle;
}

void SlabArena::Free(uint32_t handle, uint8_t cls) {
  assert(handle != kNullBlock);
  assert(live_blocks_ > 0);
  free_[cls].push_back(handle);
  --live_blocks_;
}

size_t SlabArena::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const Page& p : pages_) bytes += p.num_slots * sizeof(uint64_t);
  bytes += pages_.capacity() * sizeof(Page);
  for (const std::vector<uint32_t>& fl : free_) {
    bytes += fl.capacity() * sizeof(uint32_t);
  }
  return bytes;
}

// ---------------------------------------------------------------------------
// SlabEhPool
// ---------------------------------------------------------------------------

SlabEhPool::SlabEhPool(double epsilon, uint64_t window_len)
    : epsilon_(epsilon), window_len_(window_len) {
  assert(epsilon_ > 0.0 && epsilon_ <= 1.0);
  assert(window_len_ > 0);
  // Same capacity rule as ExponentialHistogram: k = ceil(1/eps), merge the
  // two oldest buckets of a level once it holds k + 2.
  double k = std::ceil(1.0 / epsilon_);
  if (!(k >= 1.0)) k = 1.0;
  if (k > 1e9) k = 1e9;
  level_capacity_ = static_cast<size_t>(k) + 2;
  assert(level_capacity_ <= kMaxLevelCapacity &&
         "SlabEhPool requires epsilon >= ~1/500 (see kMaxLevelCapacity)");
}

void SlabEhPool::Reblock(SlabEhState* s, uint8_t new_cls) {
  const uint32_t handle = arena_.Allocate(new_cls);
  if (s->block != SlabArena::kNullBlock) {
    if (s->count > 0) {
      std::memcpy(arena_.Slots(handle), arena_.Slots(s->block) + s->start,
                  static_cast<size_t>(s->count) * sizeof(uint64_t));
    }
    arena_.Free(s->block, s->cls);
  }
  s->block = handle;
  s->cls = new_cls;
  s->start = 0;
}

void SlabEhPool::EnsureRoom(SlabEhState* s, uint32_t extra) {
  if (s->block == SlabArena::kNullBlock) {
    s->cls = SlabArena::ClassFor(std::max(extra, SlabArena::kMinBlockSlots));
    s->block = arena_.Allocate(s->cls);
    s->start = 0;
    return;
  }
  const uint32_t cap = SlabArena::ClassSlots(s->cls);
  if (static_cast<uint32_t>(s->start) + s->count + extra <= cap) return;
  if (static_cast<uint32_t>(s->count) + extra <= cap) {
    // Compact in place: slide the span back to offset 0.
    uint64_t* slots = arena_.Slots(s->block);
    std::memmove(slots, slots + s->start,
                 static_cast<size_t>(s->count) * sizeof(uint64_t));
    s->start = 0;
    return;
  }
  Reblock(s, SlabArena::ClassFor(s->count + extra));
}

void SlabEhPool::AddOne(SlabEhState* s, Timestamp ts) {
  EnsureRoom(s, 1);
  uint64_t* slots = arena_.Slots(s->block);
  uint32_t end = static_cast<uint32_t>(s->start) + s->count;  // exclusive
  slots[end++] = EncodeSlot(0, ts);
  ++s->count;
  // Cascade merges, exactly as ExponentialHistogram::AddOne: when a level
  // fills to level_capacity_, its two oldest buckets coalesce into one
  // bucket of double size, which is the newest bucket of the next level.
  // Levels are contiguous segments of the span (non-increasing top-down),
  // so "two oldest of level i" is the segment head pair and the merged
  // bucket lands exactly where the pair began.
  uint32_t seg_end = end;  // exclusive end of the current level's segment
  for (uint64_t level = 0;; ++level) {
    uint32_t seg_begin = seg_end;
    while (seg_begin > s->start && SlotLevel(slots[seg_begin - 1]) == level) {
      --seg_begin;
    }
    if (seg_end - seg_begin < level_capacity_) break;
    // Merged bucket keeps the newer end timestamp of the pair.
    const Timestamp second_end = SlotEnd(slots[seg_begin + 1]);
    slots[seg_begin] = EncodeSlot(level + 1, second_end);
    std::memmove(&slots[seg_begin + 1], &slots[seg_begin + 2],
                 static_cast<size_t>(end - seg_begin - 2) * sizeof(uint64_t));
    --end;
    --s->count;
    seg_end = seg_begin + 1;  // the merged slot now tails level+1's segment
  }
}

void SlabEhPool::AddBatch(SlabEhState* s, Timestamp ts, uint64_t count) {
  // Unpack the span into per-level end-timestamp lists (oldest first),
  // run the closed-form cascade propagation verbatim from
  // ExponentialHistogram::AddBatch, and repack. Reused thread-local
  // scratch keeps the path allocation-free after warm-up.
  static thread_local std::vector<std::vector<Timestamp>> lv;
  static thread_local std::vector<uint32_t> lv_head;
  static thread_local std::vector<Timestamp> expl, next_expl;
  for (std::vector<Timestamp>& l : lv) l.clear();
  lv_head.assign(lv.size(), 0);
  expl.clear();

  const uint64_t* span =
      s->block == SlabArena::kNullBlock ? nullptr : arena_.Slots(s->block);
  for (uint32_t p = 0; p < s->count; ++p) {
    const uint64_t slot = span[s->start + p];
    const size_t level = static_cast<size_t>(SlotLevel(slot));
    if (lv.size() <= level) {
      lv.resize(level + 1);
      lv_head.resize(level + 1, 0);
    }
    lv[level].push_back(SlotEnd(slot));
  }

  auto ensure_level = [](size_t level) {
    if (lv.size() <= level) {
      lv.resize(level + 1);
      lv_head.resize(level + 1, 0);
    }
  };
  auto level_count = [](size_t i) -> uint64_t {
    return lv[i].size() - lv_head[i];
  };
  auto at = [](size_t i, uint64_t pos) -> Timestamp {
    return lv[i][lv_head[i] + pos];
  };

  uint64_t ts_run = count;
  for (size_t i = 0; ts_run + expl.size() > 0; ++i) {
    ensure_level(i);
    const uint64_t c = level_capacity_;
    const uint64_t m = level_count(i);
    const uint64_t k = expl.size() + ts_run;
    const uint64_t merges = (k >= c - m) ? 1 + (k - (c - m)) / 2 : 0;
    if (merges == 0) {
      for (Timestamp e : expl) lv[i].push_back(e);
      for (uint64_t j = 0; j < ts_run; ++j) lv[i].push_back(ts);
      break;
    }
    next_expl.clear();
    uint64_t next_ts_run = 0;
    for (uint64_t j = 1; j <= merges; ++j) {
      const uint64_t p = 2 * j;
      if (p <= m) {
        next_expl.push_back(at(i, p - 1));
      } else if (p <= m + expl.size()) {
        next_expl.push_back(expl[p - m - 1]);
      } else {
        next_ts_run = merges - j + 1;
        break;
      }
    }
    const uint64_t consumed_existing = std::min(2 * merges, m);
    lv_head[i] += static_cast<uint32_t>(consumed_existing);
    const uint64_t dropped_in = 2 * merges - consumed_existing;
    const uint64_t dropped_expl = std::min<uint64_t>(dropped_in, expl.size());
    for (size_t x = dropped_expl; x < expl.size(); ++x) {
      lv[i].push_back(expl[x]);
    }
    for (uint64_t x = dropped_in - dropped_expl; x < ts_run; ++x) {
      lv[i].push_back(ts);
    }
    expl.swap(next_expl);
    ts_run = next_ts_run;
  }

  // Repack top level down, oldest first within each level.
  size_t total_slots = 0;
  for (size_t i = 0; i < lv.size(); ++i) total_slots += level_count(i);
  assert(total_slots <=
         SlabArena::ClassSlots(SlabArena::kNumClasses - 1));
  if (s->block == SlabArena::kNullBlock ||
      SlabArena::ClassSlots(s->cls) < total_slots) {
    // The span is rewritten wholesale below, so swap blocks without a copy.
    if (s->block != SlabArena::kNullBlock) arena_.Free(s->block, s->cls);
    s->cls = SlabArena::ClassFor(static_cast<uint32_t>(
        std::max<size_t>(total_slots, SlabArena::kMinBlockSlots)));
    s->block = arena_.Allocate(s->cls);
  }
  uint64_t* out = arena_.Slots(s->block);
  uint32_t pos = 0;
  for (size_t i = lv.size(); i-- > 0;) {
    for (size_t j = lv_head[i]; j < lv[i].size(); ++j) {
      out[pos++] = EncodeSlot(i, lv[i][j]);
    }
  }
  s->start = 0;
  s->count = static_cast<uint16_t>(total_slots);
}

void SlabEhPool::Add(SlabEhState* s, Timestamp ts, uint64_t count) {
  assert(ts < (1ULL << kLevelShift) && "timestamp exceeds slot encoding");
  s->total += count;
  if (count == 1) {
    AddOne(s, ts);
  } else if (count > 1) {
    AddBatch(s, ts, count);
  }
  Expire(s, ts);
}

void SlabEhPool::Expire(SlabEhState* s, Timestamp now) {
  if (s->count == 0) return;
  const Timestamp wstart = WindowStart(now, window_len_);
  uint64_t* slots = arena_.Slots(s->block);
  while (s->count > 0 && SlotEnd(slots[s->start]) <= wstart) {
    const uint64_t slot = slots[s->start];
    const Timestamp end = SlotEnd(slot);
    if (end > s->expired_end) s->expired_end = end;
    s->total -= 1ULL << SlotLevel(slot);
    ++s->start;
    --s->count;
  }
  if (s->count == 0) {
    arena_.Free(s->block, s->cls);
    s->block = SlabArena::kNullBlock;
    s->start = 0;
    s->cls = 0;
  } else if (s->cls > 0 &&
             static_cast<uint32_t>(s->count) * 4 <=
                 SlabArena::ClassSlots(s->cls)) {
    // Cooled-down key: hand the oversized block back (2x headroom kept).
    Reblock(s, SlabArena::ClassFor(static_cast<uint32_t>(s->count) * 2));
  }
}

void SlabEhPool::Release(SlabEhState* s) {
  if (s->block != SlabArena::kNullBlock) arena_.Free(s->block, s->cls);
  *s = SlabEhState{};
}

double SlabEhPool::Estimate(const SlabEhState& s, Timestamp now,
                            uint64_t range) const {
  if (range > window_len_) range = window_len_;
  const Timestamp boundary = WindowStart(now, range);
  if (s.count == 0) return 0.0;
  const uint64_t* slots = arena_.Slots(s.block);
  const uint32_t b = s.start;
  const uint32_t e = static_cast<uint32_t>(s.start) + s.count;

  // Full-coverage fast path: the front slot is the global oldest bucket
  // and its level is by construction the top non-empty level.
  const Timestamp oldest_end = SlotEnd(slots[b]);
  if (boundary < oldest_end) {
    double sum = static_cast<double>(s.total);
    const bool fully_inside = boundary == 0 || s.expired_end > boundary ||
                              s.expired_end >= oldest_end;
    if (!fully_inside) {
      sum -= static_cast<double>(1ULL << SlotLevel(slots[b])) / 2.0;
    }
    return sum;
  }

  // Partial range: end timestamps ascend front-to-back, so one binary
  // search finds the oldest in-range slot; in-range weight accumulates in
  // integers per level segment (levels are non-increasing front-to-back),
  // reproducing ExponentialHistogram::Estimate's sum bit for bit.
  uint32_t lo = b, hi = e;
  while (lo < hi) {
    const uint32_t mid = lo + (hi - lo) / 2;
    if (SlotEnd(slots[mid]) <= boundary) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == e) return 0.0;
  uint64_t weight = 0;
  for (uint32_t p = lo; p < e;) {
    const uint64_t level = SlotLevel(slots[p]);
    uint32_t seg_lo = p + 1, seg_hi = e;
    while (seg_lo < seg_hi) {
      const uint32_t mid = seg_lo + (seg_hi - seg_lo) / 2;
      if (SlotLevel(slots[mid]) == level) {
        seg_lo = mid + 1;
      } else {
        seg_hi = mid;
      }
    }
    weight += static_cast<uint64_t>(seg_lo - p) << level;
    p = seg_lo;
  }
  // Straddle half-correction on the oldest in-range bucket. Its
  // reconstructed start is the end of the next-older bucket — the span
  // predecessor, else the expiry watermark (identical to the per-level
  // predecessor walk in ExponentialHistogram).
  const Timestamp prev_end = lo > b ? SlotEnd(slots[lo - 1]) : s.expired_end;
  const bool fully_inside = boundary == 0 || prev_end > boundary ||
                            prev_end >= SlotEnd(slots[lo]);
  const double straddle =
      fully_inside ? 0.0
                   : static_cast<double>(1ULL << SlotLevel(slots[lo])) / 2.0;
  return static_cast<double>(weight) - straddle;
}

Timestamp SlabEhPool::NextEstimateChangeAt(const SlabEhState& s, Timestamp now,
                                           uint64_t range) const {
  if (range > window_len_) range = window_len_;
  if (s.count == 0) return 0;
  const Timestamp boundary = WindowStart(now, range);
  uint64_t candidate = std::numeric_limits<uint64_t>::max();
  if (boundary == 0) candidate = 1;
  if (s.expired_end > boundary) {
    candidate = std::min(candidate, s.expired_end);
  }
  // Smallest bucket end past the boundary: ends ascend front-to-back.
  const uint64_t* slots = arena_.Slots(s.block);
  uint32_t lo = s.start, hi = static_cast<uint32_t>(s.start) + s.count;
  const uint32_t e = hi;
  while (lo < hi) {
    const uint32_t mid = lo + (hi - lo) / 2;
    if (SlotEnd(slots[mid]) <= boundary) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < e) candidate = std::min<uint64_t>(candidate, SlotEnd(slots[lo]));
  if (candidate == std::numeric_limits<uint64_t>::max()) return 0;
  return candidate + range;
}

std::vector<BucketView> SlabEhPool::Buckets(const SlabEhState& s) const {
  std::vector<BucketView> out;
  out.reserve(s.count);
  if (s.count == 0) return out;
  const uint64_t* slots = arena_.Slots(s.block);
  Timestamp prev_end = s.expired_end;
  for (uint32_t p = s.start; p < static_cast<uint32_t>(s.start) + s.count;
       ++p) {
    const uint64_t slot = slots[p];
    out.push_back(
        BucketView{prev_end, SlotEnd(slot), 1ULL << SlotLevel(slot)});
    prev_end = SlotEnd(slot);
  }
  return out;
}

}  // namespace ecm
