#include "src/window/randomized_wave.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/util/bits.h"

namespace ecm {

RandomizedWave::RandomizedWave(const Config& config)
    : epsilon_(config.epsilon),
      delta_(config.delta),
      window_len_(config.window_len),
      rng_(config.seed) {
  assert(epsilon_ > 0.0 && epsilon_ <= 1.0);
  assert(delta_ > 0.0 && delta_ < 1.0);
  assert(window_len_ > 0);
  // Clamp before the float->int cast: an adversarially tiny epsilon
  // (e.g. from deserialized bytes) must not overflow into UB.
  double capacity = std::ceil(config.sample_constant / (epsilon_ * epsilon_));
  if (!(capacity >= 1.0)) capacity = 1.0;
  if (capacity > 1e9) capacity = 1e9;
  level_capacity_ = static_cast<size_t>(capacity);
  // Enough levels that the top level's sample (expected n * 2^-(L-1)
  // entries) fits in one level's capacity for max_arrivals arrivals.
  uint64_t u = std::max<uint64_t>(config.max_arrivals, 1);
  num_levels_ = 1;
  if (u > level_capacity_) {
    num_levels_ = CeilLog2((u + level_capacity_ - 1) / level_capacity_) + 1;
  }
  // Odd number of sub-waves for an unambiguous median; Θ(log 1/δ).
  int d = static_cast<int>(std::ceil(std::log2(1.0 / delta_)));
  if (d < 1) d = 1;
  if (d % 2 == 0) ++d;
  subwaves_.resize(d);
  for (auto& sw : subwaves_) {
    sw.levels.resize(num_levels_);
    sw.truncated.assign(num_levels_, false);
  }
}

void RandomizedWave::Add(Timestamp ts, uint64_t count) {
  assert(ts >= last_ts_ && "timestamps must be non-decreasing");
  last_ts_ = ts;
  for (uint64_t i = 0; i < count; ++i) {
    ++lifetime_;
    for (auto& sw : subwaves_) {
      int g = rng_.GeometricLevel(num_levels_ - 1);
      for (int l = 0; l <= g; ++l) {
        sw.levels[l].push_back(ts);
        if (sw.levels[l].size() > level_capacity_) {
          sw.levels[l].pop_front();
          sw.truncated[l] = true;
        }
      }
    }
  }
  Expire(ts);
}

void RandomizedWave::Expire(Timestamp now) {
  Timestamp wstart = WindowStart(now, window_len_);
  for (auto& sw : subwaves_) {
    for (int l = 0; l < num_levels_; ++l) {
      auto& level = sw.levels[l];
      // Keep one entry at or before the window start as coverage anchor.
      while (level.size() > 1 && level[1] <= wstart) {
        level.pop_front();
        sw.truncated[l] = true;
      }
    }
  }
}

double RandomizedWave::EstimateSubWave(int idx, Timestamp now,
                                       uint64_t range) const {
  if (range > window_len_) range = window_len_;
  Timestamp boundary = WindowStart(now, range);
  const SubWave& sw = subwaves_[idx];

  for (int l = 0; l < num_levels_; ++l) {
    const auto& level = sw.levels[l];
    bool covers =
        !sw.truncated[l] || (!level.empty() && level.front() <= boundary);
    if (!covers) continue;
    // Number of sampled arrivals strictly inside the range.
    auto it = std::partition_point(
        level.begin(), level.end(),
        [boundary](Timestamp t) { return t <= boundary; });
    auto in_range = static_cast<double>(level.end() - it);
    return in_range * static_cast<double>(1ULL << l);
  }
  // No level covers the boundary (possible only under adversarial
  // truncation); the coarsest level is the best effort.
  const auto& top = sw.levels[num_levels_ - 1];
  return static_cast<double>(top.size()) *
         static_cast<double>(1ULL << (num_levels_ - 1));
}

double RandomizedWave::Estimate(Timestamp now, uint64_t range) const {
  assert(now >= last_ts_);
  std::vector<double> ests;
  ests.reserve(subwaves_.size());
  for (int i = 0; i < num_subwaves(); ++i) {
    ests.push_back(EstimateSubWave(i, now, range));
  }
  auto mid = ests.begin() + ests.size() / 2;
  std::nth_element(ests.begin(), mid, ests.end());
  return *mid;
}

size_t RandomizedWave::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& sw : subwaves_) {
    bytes += sw.levels.size() *
             (sizeof(std::deque<Timestamp>) + sizeof(bool));
    for (const auto& level : sw.levels) {
      bytes += level.size() * sizeof(Timestamp);
    }
  }
  return bytes;
}

namespace {
constexpr uint8_t kRwMagic = 0xB7;
}  // namespace

void RandomizedWave::SerializeTo(ByteWriter* w) const {
  w->PutFixed<uint8_t>(kRwMagic);
  w->PutDouble(epsilon_);
  w->PutDouble(delta_);
  w->PutVarint(window_len_);
  w->PutVarint(level_capacity_);
  w->PutVarint(static_cast<uint64_t>(num_levels_));
  w->PutVarint(subwaves_.size());
  w->PutVarint(lifetime_);
  w->PutVarint(last_ts_);
  for (const SubWave& sw : subwaves_) {
    for (int l = 0; l < num_levels_; ++l) {
      w->PutFixed<uint8_t>(sw.truncated[l] ? 1 : 0);
      w->PutVarint(sw.levels[l].size());
      Timestamp prev = 0;
      for (Timestamp ts : sw.levels[l]) {
        w->PutVarint(ts - prev);
        prev = ts;
      }
    }
  }
}

Result<RandomizedWave> RandomizedWave::Deserialize(ByteReader* r) {
  auto magic = r->GetFixed<uint8_t>();
  if (!magic.ok()) return magic.status();
  if (*magic != kRwMagic) {
    return Status::Corruption("bad randomized-wave magic byte");
  }
  auto epsilon = r->GetDouble();
  if (!epsilon.ok()) return epsilon.status();
  auto delta = r->GetDouble();
  if (!delta.ok()) return delta.status();
  auto window = r->GetVarint();
  if (!window.ok()) return window.status();
  auto capacity = r->GetVarint();
  if (!capacity.ok()) return capacity.status();
  auto num_levels = r->GetVarint();
  if (!num_levels.ok()) return num_levels.status();
  auto num_subwaves = r->GetVarint();
  if (!num_subwaves.ok()) return num_subwaves.status();
  if (!(*epsilon > 0.0) || *epsilon > 1.0 || !(*delta > 0.0) ||
      *delta >= 1.0 || *window == 0 || *capacity == 0 || *num_levels == 0 ||
      *num_levels > 64 || *num_subwaves == 0 || *num_subwaves > 257) {
    return Status::Corruption("randomized-wave header out of domain");
  }

  Config cfg;
  cfg.epsilon = *epsilon;
  cfg.delta = *delta;
  cfg.window_len = *window;
  cfg.max_arrivals = 1;
  RandomizedWave rw(cfg);
  rw.level_capacity_ = *capacity;
  rw.num_levels_ = static_cast<int>(*num_levels);
  rw.subwaves_.assign(*num_subwaves, SubWave{});
  for (auto& sw : rw.subwaves_) {
    sw.levels.resize(rw.num_levels_);
    sw.truncated.assign(rw.num_levels_, false);
  }

  auto lifetime = r->GetVarint();
  if (!lifetime.ok()) return lifetime.status();
  rw.lifetime_ = *lifetime;
  auto last_ts = r->GetVarint();
  if (!last_ts.ok()) return last_ts.status();
  rw.last_ts_ = *last_ts;

  for (auto& sw : rw.subwaves_) {
    for (int l = 0; l < rw.num_levels_; ++l) {
      auto truncated = r->GetFixed<uint8_t>();
      if (!truncated.ok()) return truncated.status();
      sw.truncated[l] = (*truncated != 0);
      auto count = r->GetVarint();
      if (!count.ok()) return count.status();
      Timestamp prev = 0;
      for (uint64_t i = 0; i < *count; ++i) {
        auto delta_ts = r->GetVarint();
        if (!delta_ts.ok()) return delta_ts.status();
        prev += *delta_ts;
        sw.levels[l].push_back(prev);
      }
    }
  }
  return rw;
}

}  // namespace ecm
