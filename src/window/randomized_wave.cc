#include "src/window/randomized_wave.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "src/util/bits.h"

namespace ecm {

RandomizedWave::RandomizedWave(const Config& config)
    : epsilon_(config.epsilon),
      delta_(config.delta),
      window_len_(config.window_len),
      rng_(config.seed) {
  assert(epsilon_ > 0.0 && epsilon_ <= 1.0);
  assert(delta_ > 0.0 && delta_ < 1.0);
  assert(window_len_ > 0);
  // Clamp before the float->int cast: an adversarially tiny epsilon
  // (e.g. from deserialized bytes) must not overflow into UB.
  double capacity = std::ceil(config.sample_constant / (epsilon_ * epsilon_));
  if (!(capacity >= 1.0)) capacity = 1.0;
  if (capacity > 1e9) capacity = 1e9;
  level_capacity_ = static_cast<size_t>(capacity);
  // Enough levels that the top level's sample (expected n * 2^-(L-1)
  // entries) fits in one level's capacity for max_arrivals arrivals.
  uint64_t u = std::max<uint64_t>(config.max_arrivals, 1);
  num_levels_ = 1;
  if (u > level_capacity_) {
    num_levels_ = CeilLog2((u + level_capacity_ - 1) / level_capacity_) + 1;
  }
  // Odd number of sub-waves for an unambiguous median; Θ(log 1/δ).
  int d = static_cast<int>(std::ceil(std::log2(1.0 / delta_)));
  if (d < 1) d = 1;
  if (d % 2 == 0) ++d;
  subwaves_.resize(d);
  for (auto& sw : subwaves_) {
    sw.levels.resize(num_levels_);
    sw.sizes.assign(num_levels_, 0);
    sw.truncated.assign(num_levels_, false);
  }
}

void RandomizedWave::PushSamples(SubWave* sw, int level, Timestamp ts,
                                 uint64_t n) {
  auto& runs = sw->levels[level];
  if (!runs.empty() && runs.back().ts == ts) {
    runs.back().count += n;
    runs.back().cum += n;
  } else {
    uint64_t cum = (runs.empty() ? 0 : runs.back().cum) + n;
    runs.push_back(Sample{ts, n, cum});
  }
  uint64_t size = sw->sizes[level] + n;
  if (size > level_capacity_) {
    // Evict the oldest samples; identical end state to per-sample
    // push/pop-front interleaving.
    uint64_t excess = size - level_capacity_;
    sw->truncated[level] = true;
    while (excess > 0) {
      Sample& front = runs.front();
      if (front.count <= excess) {
        excess -= front.count;
        runs.pop_front();
      } else {
        front.count -= excess;
        excess = 0;
      }
    }
    size = level_capacity_;
  }
  sw->sizes[level] = size;
}

void RandomizedWave::Add(Timestamp ts, uint64_t count) {
  assert(ts >= last_ts_ && "timestamps must be non-decreasing");
  last_ts_ = ts;
  lifetime_ += count;
  for (auto& sw : subwaves_) {
    // Binomial-split chain: n_0 = count arrivals reach level 0; of the n_l
    // reaching level l, Binomial(n_l, 1/2) survive the next fair coin and
    // reach level l+1 — jointly distributed exactly as `count` independent
    // geometric draws, at O(log count) splits (~count/32 coin words)
    // total. For count == 1 the chain consumes the very coins
    // GeometricLevel would.
    uint64_t n = count;
    for (int l = 0; n > 0; ++l) {
      PushSamples(&sw, l, ts, n);
      if (l + 1 >= num_levels_) break;
      n = rng_.BinomialHalf(n);
    }
  }
  Expire(ts);
}

void RandomizedWave::Expire(Timestamp now) {
  Timestamp wstart = WindowStart(now, window_len_);
  for (auto& sw : subwaves_) {
    // At capacity, a level retains the last-c samples of its substream,
    // and level l+1 samples a subset of level l's pushes — so retained
    // fronts age with the level index, and once a non-empty level has
    // nothing to trim the (newer) levels below it cannot either. The
    // top-down early exit makes the steady-state scan O(levels that
    // actually expire). Pre-capacity warm-up can briefly leave expired
    // samples behind, which only delays their reclamation: estimates
    // exclude out-of-range samples regardless.
    for (int l = num_levels_; l-- > 0;) {
      auto& runs = sw.levels[l];
      bool trimmed = false;
      // Keep one sample at or before the window start as coverage anchor.
      while (runs.size() > 1 && runs[1].ts <= wstart) {
        sw.sizes[l] -= runs.front().count;
        runs.pop_front();
        sw.truncated[l] = true;
        trimmed = true;
      }
      if (!runs.empty() && runs.front().ts <= wstart &&
          runs.front().count > 1) {
        // Shrink a weighted anchor run to the single sample the
        // per-sample pop loop would have kept.
        sw.sizes[l] -= runs.front().count - 1;
        runs.front().count = 1;
        sw.truncated[l] = true;
        trimmed = true;
      }
      if (!trimmed && !runs.empty()) break;
    }
  }
}

double RandomizedWave::EstimateSubWave(int idx, Timestamp now,
                                       uint64_t range) const {
  if (range > window_len_) range = window_len_;
  Timestamp boundary = WindowStart(now, range);
  const SubWave& sw = subwaves_[idx];

  for (int l = 0; l < num_levels_; ++l) {
    const auto& level = sw.levels[l];
    bool covers =
        !sw.truncated[l] || (!level.empty() && level.front().ts <= boundary);
    if (!covers) continue;
    // Number of sampled arrivals strictly inside the range: suffix sum of
    // the runs past the partition point, read off the cumulative counts.
    auto it = std::partition_point(
        level.begin(), level.end(),
        [boundary](const Sample& s) { return s.ts <= boundary; });
    uint64_t in_range = 0;
    if (it != level.end()) {
      in_range = (it == level.begin()) ? sw.sizes[l]
                                       : level.back().cum - std::prev(it)->cum;
    }
    return static_cast<double>(in_range) * static_cast<double>(1ULL << l);
  }
  // No level covers the boundary (possible only under adversarial
  // truncation); the coarsest level is the best effort.
  return static_cast<double>(sw.sizes[num_levels_ - 1]) *
         static_cast<double>(1ULL << (num_levels_ - 1));
}

double RandomizedWave::Estimate(Timestamp now, uint64_t range) const {
  assert(now >= last_ts_);
  std::vector<double> ests;
  ests.reserve(subwaves_.size());
  for (int i = 0; i < num_subwaves(); ++i) {
    ests.push_back(EstimateSubWave(i, now, range));
  }
  auto mid = ests.begin() + ests.size() / 2;
  std::nth_element(ests.begin(), mid, ests.end());
  return *mid;
}

Timestamp RandomizedWave::NextEstimateChangeAt(Timestamp now,
                                               uint64_t range) const {
  assert(now >= last_ts_);
  if (range > window_len_) range = window_len_;
  const Timestamp boundary = WindowStart(now, range);
  uint64_t candidate = std::numeric_limits<uint64_t>::max();
  for (const SubWave& sw : subwaves_) {
    for (const auto& level : sw.levels) {
      // First run past the boundary: the next coverage/partition flip of
      // this level.
      auto it = std::partition_point(
          level.begin(), level.end(),
          [boundary](const Sample& s) { return s.ts <= boundary; });
      if (it != level.end()) candidate = std::min(candidate, it->ts);
    }
  }
  if (candidate == std::numeric_limits<uint64_t>::max()) return 0;
  return candidate + range;
}

double RandomizedWave::EstimateScanReference(Timestamp now,
                                             uint64_t range) const {
  assert(now >= last_ts_);
  uint64_t clamped = range > window_len_ ? window_len_ : range;
  Timestamp boundary = WindowStart(now, clamped);
  std::vector<double> ests;
  ests.reserve(subwaves_.size());
  for (const SubWave& sw : subwaves_) {
    double est = static_cast<double>(sw.sizes[num_levels_ - 1]) *
                 static_cast<double>(1ULL << (num_levels_ - 1));
    for (int l = 0; l < num_levels_; ++l) {
      const auto& level = sw.levels[l];
      bool covers =
          !sw.truncated[l] || (!level.empty() && level.front().ts <= boundary);
      if (!covers) continue;
      auto it = std::partition_point(
          level.begin(), level.end(),
          [boundary](const Sample& s) { return s.ts <= boundary; });
      uint64_t in_range = 0;
      for (; it != level.end(); ++it) in_range += it->count;
      est = static_cast<double>(in_range) * static_cast<double>(1ULL << l);
      break;
    }
    ests.push_back(est);
  }
  auto mid = ests.begin() + ests.size() / 2;
  std::nth_element(ests.begin(), mid, ests.end());
  return *mid;
}

size_t RandomizedWave::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& sw : subwaves_) {
    bytes += sw.levels.size() *
             (sizeof(std::deque<Sample>) + sizeof(uint64_t) + sizeof(bool));
    for (const auto& level : sw.levels) {
      bytes += level.size() * sizeof(Sample);
    }
  }
  return bytes;
}

namespace {
constexpr uint8_t kRwMagic = 0xB7;
}  // namespace

void RandomizedWave::SerializeTo(ByteWriter* w) const {
  w->PutFixed<uint8_t>(kRwMagic);
  w->PutDouble(epsilon_);
  w->PutDouble(delta_);
  w->PutVarint(window_len_);
  w->PutVarint(level_capacity_);
  w->PutVarint(static_cast<uint64_t>(num_levels_));
  w->PutVarint(subwaves_.size());
  w->PutVarint(lifetime_);
  w->PutVarint(last_ts_);
  for (const SubWave& sw : subwaves_) {
    for (int l = 0; l < num_levels_; ++l) {
      w->PutFixed<uint8_t>(sw.truncated[l] ? 1 : 0);
      // Runs expand to one delta per retained sample (zero deltas within a
      // run) — byte-identical to the pre-run-compression encoding.
      w->PutVarint(sw.sizes[l]);
      Timestamp prev = 0;
      for (const Sample& s : sw.levels[l]) {
        w->PutVarint(s.ts - prev);
        for (uint64_t i = 1; i < s.count; ++i) w->PutVarint(0);
        prev = s.ts;
      }
    }
  }
}

Result<RandomizedWave> RandomizedWave::Deserialize(ByteReader* r) {
  auto magic = r->GetFixed<uint8_t>();
  if (!magic.ok()) return magic.status();
  if (*magic != kRwMagic) {
    return Status::Corruption("bad randomized-wave magic byte");
  }
  auto epsilon = r->GetDouble();
  if (!epsilon.ok()) return epsilon.status();
  auto delta = r->GetDouble();
  if (!delta.ok()) return delta.status();
  auto window = r->GetVarint();
  if (!window.ok()) return window.status();
  auto capacity = r->GetVarint();
  if (!capacity.ok()) return capacity.status();
  auto num_levels = r->GetVarint();
  if (!num_levels.ok()) return num_levels.status();
  auto num_subwaves = r->GetVarint();
  if (!num_subwaves.ok()) return num_subwaves.status();
  if (!(*epsilon > 0.0) || *epsilon > 1.0 || !(*delta > 0.0) ||
      *delta >= 1.0 || *window == 0 || *capacity == 0 || *num_levels == 0 ||
      *num_levels > 64 || *num_subwaves == 0 || *num_subwaves > 257) {
    return Status::Corruption("randomized-wave header out of domain");
  }

  Config cfg;
  cfg.epsilon = *epsilon;
  cfg.delta = *delta;
  cfg.window_len = *window;
  cfg.max_arrivals = 1;
  RandomizedWave rw(cfg);
  rw.level_capacity_ = *capacity;
  rw.num_levels_ = static_cast<int>(*num_levels);
  rw.subwaves_.assign(*num_subwaves, SubWave{});
  for (auto& sw : rw.subwaves_) {
    sw.levels.resize(rw.num_levels_);
    sw.sizes.assign(rw.num_levels_, 0);
    sw.truncated.assign(rw.num_levels_, false);
  }

  auto lifetime = r->GetVarint();
  if (!lifetime.ok()) return lifetime.status();
  rw.lifetime_ = *lifetime;
  auto last_ts = r->GetVarint();
  if (!last_ts.ok()) return last_ts.status();
  rw.last_ts_ = *last_ts;

  for (auto& sw : rw.subwaves_) {
    for (int l = 0; l < rw.num_levels_; ++l) {
      auto truncated = r->GetFixed<uint8_t>();
      if (!truncated.ok()) return truncated.status();
      sw.truncated[l] = (*truncated != 0);
      auto count = r->GetVarint();
      if (!count.ok()) return count.status();
      if (*count > rw.level_capacity_) {
        return Status::Corruption("randomized-wave level over capacity");
      }
      Timestamp prev = 0;
      for (uint64_t i = 0; i < *count; ++i) {
        auto delta_ts = r->GetVarint();
        if (!delta_ts.ok()) return delta_ts.status();
        prev += *delta_ts;
        auto& runs = sw.levels[l];
        if (!runs.empty() && runs.back().ts == prev) {
          ++runs.back().count;
          ++runs.back().cum;
        } else {
          uint64_t cum = (runs.empty() ? 0 : runs.back().cum) + 1;
          runs.push_back(Sample{prev, 1, cum});
        }
      }
      sw.sizes[l] = *count;
    }
  }
  return rw;
}

}  // namespace ecm
