// Exact sliding-window counter: the O(n)-space ground truth against which
// every approximate synopsis in this library is measured, and a drop-in
// Counter for EcmSketch<ExactWindow> in tests (an ECM-sketch whose only
// error source is Count-Min collisions).

#ifndef ECM_WINDOW_EXACT_WINDOW_H_
#define ECM_WINDOW_EXACT_WINDOW_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/util/bytes.h"
#include "src/util/result.h"
#include "src/window/exponential_histogram.h"  // BucketView
#include "src/window/window_spec.h"

namespace ecm {

/// Stores every in-window arrival (run-length compressed by timestamp) and
/// answers range counts exactly.
class ExactWindow {
 public:
  struct Config {
    uint64_t window_len = 100;  ///< N: window length (ticks or arrivals)
  };

  ExactWindow() : ExactWindow(Config{}) {}
  explicit ExactWindow(const Config& config) : window_len_(config.window_len) {}

  /// Registers `count` arrivals at timestamp `ts` (non-decreasing, >= 1).
  void Add(Timestamp ts, uint64_t count = 1);

  /// Exact number of arrivals with timestamp in (now - range, now].
  double Estimate(Timestamp now, uint64_t range) const;

  /// Drops entries outside the window ending at `now`.
  void Expire(Timestamp now);

  /// Exact number of arrivals ever registered.
  uint64_t lifetime_count() const { return lifetime_; }

  /// In-memory footprint in bytes (linear in distinct in-window stamps).
  size_t MemoryBytes() const;

  /// One zero-width bucket per retained timestamp; lets the exact counter
  /// participate in the generic bucket-replay merge (tests only).
  std::vector<BucketView> Buckets() const;

  uint64_t window_len() const { return window_len_; }
  Timestamp last_timestamp() const { return last_ts_; }

  /// Appends the exact wire encoding to `w`.
  void SerializeTo(ByteWriter* w) const;

  /// Decodes a window previously written by SerializeTo.
  static Result<ExactWindow> Deserialize(ByteReader* r);

 private:
  struct Run {
    Timestamp ts;
    uint64_t count;
  };

  uint64_t window_len_;
  std::deque<Run> runs_;  // oldest first
  uint64_t lifetime_ = 0;
  Timestamp last_ts_ = 0;
};

}  // namespace ecm

#endif  // ECM_WINDOW_EXACT_WINDOW_H_
