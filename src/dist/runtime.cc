#include "src/dist/runtime.h"

namespace ecm {

void LoopbackTransport::Send(NodeId /*from*/, NodeId /*to*/,
                             size_t payload_bytes) {
  messages_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(payload_bytes, std::memory_order_relaxed);
}

NetworkStats LoopbackTransport::stats() const {
  NetworkStats s;
  s.messages = messages_.load(std::memory_order_relaxed);
  s.bytes = bytes_.load(std::memory_order_relaxed);
  return s;
}

void IngestBarrier::RequestSync() {
  std::lock_guard<std::mutex> lk(mu_);
  pending_ = true;
}

bool IngestBarrier::sync_pending() const {
  std::lock_guard<std::mutex> lk(mu_);
  return pending_;
}

uint64_t IngestBarrier::rounds() const {
  std::lock_guard<std::mutex> lk(mu_);
  return rounds_;
}

void IngestBarrier::Leave() {
  std::lock_guard<std::mutex> lk(mu_);
  --active_;
  // Parked workers re-check "everyone checked in" against the reduced
  // head count; with no workers left a pending sync is drained by the
  // driver's final barrier instead.
  cv_.notify_all();
}

}  // namespace ecm
