// Graceful degradation for the distributed runtime: honest answers from
// a coordinator whose sites are down, flapping, or lagging.
//
// The fault-free protocol merges one fresh snapshot per site, so a point
// query carries the §5.1-calibrated guarantee eps_q * ||a||_1. During an
// outage the coordinator only has *last-known-good* snapshots for some
// sites — silently merging them reports the fault-free bound for an
// answer that is missing every arrival since each stale snapshot's
// clock. DegradingMergeView makes that gap explicit instead: it retains
// the best (max event-clock) snapshot per site, tracks per-site
// staleness against the query clock, and answers according to a
// DegradationPolicy:
//
//   kFailClosed          refuse (kUnavailable) unless every site is
//                        fresh — correctness over availability;
//   kServeStaleWithBound answer from everything retained, *inflating*
//                        the reported error bound by the mass the stale
//                        sites may have absorbed since their snapshots;
//   kExcludeSite         answer from fresh sites only, widening the
//                        bound by the excluded sites' possible mass.
//
// The inflation is an honest worst case under one declared workload
// assumption, DegradationOptions::max_rate_per_site: no site ingests
// more than `rate` arrivals per timestamp tick (weighted mass counts
// with weight). With integer timestamps, the arrivals a site may have
// seen in (t_snap, now] that also land in the query window of length
// `range` are then at most rate * min(now - t_snap, range), and an
// excluded site contributes at most rate * range. The sketch term uses
// the existing multi-level calibration (aggregation_tree.h): the flat
// merge is one level, so eps_q = eps_cm + MultiLevelErrorBound(eps_sw, 1)
// and the L1 read off the merged sketch is itself an estimate, upper-
// bounded by L1_est / (1 - eps_q). Every term the bound reports is
// computable from retained state only — no oracle, no peeking.
//
// The view is transport-agnostic on purpose: feed it decoded sketches
// (Coordinator/SketchReceiver output) or serialized images straight off
// the wire, and feed health transitions from CoordinatorServer's
// site_status(). See examples/chaos_runtime.cpp for the full loop.

#ifndef ECM_DIST_DEGRADE_H_
#define ECM_DIST_DEGRADE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/core/ecm_sketch.h"
#include "src/dist/aggregation_tree.h"
#include "src/dist/serialize.h"
#include "src/dist/transport.h"
#include "src/util/result.h"

namespace ecm {

/// What a coordinator does with queries while sites are stale or gone.
enum class DegradationPolicy : uint8_t {
  kFailClosed = 0,           ///< refuse unless every site is fresh
  kServeStaleWithBound = 1,  ///< serve everything retained, inflate bound
  kExcludeSite = 2,          ///< serve fresh sites only, inflate bound
};

struct DegradationOptions {
  DegradationPolicy policy = DegradationPolicy::kServeStaleWithBound;
  /// A snapshot is stale when the query clock has moved more than this
  /// many ticks past its event clock. 0 means snapshots never age out
  /// (only missing snapshots / SetHealth(false) degrade a site).
  uint64_t stale_after = 0;
  /// Declared workload ceiling: no site ingests more than this much
  /// mass per timestamp tick. The staleness slack in the bound is
  /// rate * (ticks possibly unseen); with rate 0 the bound only covers
  /// sketch error, which is honest only for genuinely idle streams.
  double max_rate_per_site = 0.0;
};

/// Degradation bookkeeping for one site, as of a query clock.
struct SiteSnapshotMeta {
  NodeId node = 0;
  bool has_snapshot = false;
  bool healthy = true;       ///< last SetHealth() report
  bool fresh = false;        ///< healthy + snapshot inside stale_after
  Timestamp snapshot_clock = 0;
};

/// A degraded (or clean) answer with its honest absolute error bound.
struct DegradedEstimate {
  double estimate = 0.0;
  /// estimate ± error_bound covers the true count under the declared
  /// rate ceiling: sketch_error + staleness_slack.
  double error_bound = 0.0;
  double sketch_error = 0.0;     ///< eps_q * L1 upper bound term
  double staleness_slack = 0.0;  ///< unseen-mass term (stale + excluded)
  bool degraded = false;  ///< any site stale, excluded, or missing
  int sites_included = 0;
  int sites_stale = 0;     ///< included but not fresh
  int sites_excluded = 0;  ///< no snapshot, or excluded by policy
  Timestamp now = 0;       ///< query clock the answer is relative to
};

/// Last-known-good merge view over per-site sketch snapshots.
/// Thread-safe: transport reader threads Update() while a query thread
/// calls PointQuery(). Snapshots only move forward in event time — a
/// delayed, reordered older image can never overwrite a newer one.
template <SlidingWindowCounter Counter>
class DegradingMergeView {
 public:
  explicit DegradingMergeView(const DegradationOptions& opts = {})
      : opts_(opts) {}

  /// Retains `sketch` as `node`'s last known good state if it is at
  /// least as advanced (event clock) as what is already held.
  void Update(NodeId node, const EcmSketch<Counter>& sketch) {
    std::lock_guard<std::mutex> lk(mu_);
    Entry& e = FindOrCreateLocked(node);
    if (e.sketch.has_value() && sketch.Now() < e.sketch->Now()) return;
    e.sketch.emplace(sketch);
  }

  /// Decodes a serialized full snapshot off the wire and retains it.
  Status UpdateSerialized(NodeId node, const uint8_t* data, size_t size) {
    auto sketch = DeserializeSketch<Counter>(data, size);
    if (!sketch.ok()) return sketch.status();
    Update(node, *sketch);
    return Status::OK();
  }

  /// Health report from liveness tracking (CoordinatorServer sweeper).
  /// An unhealthy site is never fresh, whatever its snapshot age.
  void SetHealth(NodeId node, bool up) {
    std::lock_guard<std::mutex> lk(mu_);
    FindOrCreateLocked(node).healthy = up;
  }

  /// The most advanced event clock across retained snapshots — the
  /// natural query clock when the coordinator has no stream of its own.
  Timestamp LatestClock() const {
    std::lock_guard<std::mutex> lk(mu_);
    Timestamp latest = 0;
    for (const Entry& e : entries_) {
      if (e.sketch.has_value()) latest = std::max(latest, e.sketch->Now());
    }
    return latest;
  }

  /// Point query at clock `now` over the trailing `range` ticks,
  /// answered per the configured policy with an honest inflated bound.
  Result<DegradedEstimate> PointQuery(uint64_t key, uint64_t range,
                                      Timestamp now) const {
    std::lock_guard<std::mutex> lk(mu_);
    if (entries_.empty()) {
      return Status::Unavailable("DegradingMergeView: no sites registered");
    }
    DegradedEstimate out;
    out.now = now;
    std::vector<const EcmSketch<Counter>*> included;
    std::vector<Timestamp> included_clocks;
    for (const Entry& e : entries_) {
      const bool fresh = IsFreshLocked(e, now);
      if (!e.sketch.has_value()) {
        // Nothing retained for this site: under kFailClosed that is
        // fatal; otherwise its whole window mass goes into the slack.
        if (opts_.policy == DegradationPolicy::kFailClosed) {
          return Status::Unavailable(
              "DegradingMergeView: no snapshot from site " +
              std::to_string(e.node));
        }
        ++out.sites_excluded;
        continue;
      }
      if (!fresh && opts_.policy == DegradationPolicy::kFailClosed) {
        return Status::Unavailable("DegradingMergeView: site " +
                                   std::to_string(e.node) + " is stale");
      }
      if (!fresh && opts_.policy == DegradationPolicy::kExcludeSite) {
        ++out.sites_excluded;
        continue;
      }
      if (!fresh) ++out.sites_stale;
      included.push_back(&*e.sketch);
      included_clocks.push_back(e.sketch->Now());
    }
    if (included.empty()) {
      return Status::Unavailable(
          "DegradingMergeView: no fresh site snapshots to serve from");
    }
    out.sites_included = static_cast<int>(included.size());
    out.degraded = out.sites_stale > 0 || out.sites_excluded > 0;

    const EcmConfig& cfg = included.front()->config();
    auto merged =
        EcmSketch<Counter>::Merge(included, cfg.epsilon_sw, cfg.seed);
    if (!merged.ok()) return merged.status();
    out.estimate = merged->PointQueryAt(key, range, now);

    // Sketch term: the flat merge is one aggregation level, so the
    // window error calibrates as MultiLevelErrorBound(eps_sw, 1) on top
    // of the Count-Min share; the L1 it scales is itself an estimate,
    // upper-bounded by the same relative error.
    const double eps_q =
        cfg.epsilon_cm + MultiLevelErrorBound(cfg.epsilon_sw, 1);
    const double l1 = merged->EstimateL1At(range, now);
    const double l1_upper = eps_q < 1.0 ? l1 / (1.0 - eps_q) : l1;
    out.sketch_error = eps_q * l1_upper;

    // Staleness slack: every included site may have absorbed mass after
    // its snapshot (even "fresh" ones are behind `now`), and every
    // excluded/missing site may have put its whole window mass on this
    // key. All of it is bounded by the declared per-tick rate ceiling.
    double slack = 0.0;
    for (const Timestamp clock : included_clocks) {
      const uint64_t behind = now > clock ? now - clock : 0;
      slack += opts_.max_rate_per_site *
               static_cast<double>(std::min<uint64_t>(behind, range));
    }
    slack += opts_.max_rate_per_site * static_cast<double>(range) *
             static_cast<double>(out.sites_excluded);
    out.staleness_slack = slack;
    out.error_bound = out.sketch_error + out.staleness_slack;
    return out;
  }

  /// Per-site degradation bookkeeping as of query clock `now`.
  std::vector<SiteSnapshotMeta> site_meta(Timestamp now) const {
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<SiteSnapshotMeta> out;
    out.reserve(entries_.size());
    for (const Entry& e : entries_) {
      SiteSnapshotMeta m;
      m.node = e.node;
      m.has_snapshot = e.sketch.has_value();
      m.healthy = e.healthy;
      m.fresh = IsFreshLocked(e, now);
      m.snapshot_clock = e.sketch.has_value() ? e.sketch->Now() : 0;
      out.push_back(m);
    }
    return out;
  }

  const DegradationOptions& options() const { return opts_; }

 private:
  struct Entry {
    NodeId node = 0;
    bool healthy = true;
    std::optional<EcmSketch<Counter>> sketch;
  };

  Entry& FindOrCreateLocked(NodeId node) {
    for (Entry& e : entries_) {
      if (e.node == node) return e;
    }
    entries_.push_back(Entry{});
    entries_.back().node = node;
    return entries_.back();
  }

  bool IsFreshLocked(const Entry& e, Timestamp now) const {
    if (!e.sketch.has_value() || !e.healthy) return false;
    if (opts_.stale_after == 0) return true;
    const Timestamp clock = e.sketch->Now();
    return now <= clock || now - clock <= opts_.stale_after;
  }

  const DegradationOptions opts_;
  mutable std::mutex mu_;
  std::vector<Entry> entries_;
};

}  // namespace ecm

#endif  // ECM_DIST_DEGRADE_H_
