// Whole-sketch wire serialization (§5.3 deployment path): a site ships its
// ECM-sketch to its parent as a self-describing byte string — magic,
// checksum, the full EcmConfig, the sketch clock, and every counter's own
// wire encoding (window/{exponential_histogram,…}.h SerializeTo).
//
// The wire size of these encodings is the single source of truth for the
// network-transfer accounting of the distributed benches (Fig. 5/6,
// Table 4), so the format favors compactness (varints) but stays exact:
// deserialization reproduces a sketch that answers every query identically
// to the original.
//
// Corruption safety: the header carries an FNV-1a checksum of the entire
// payload, so truncated or bit-flipped inputs are rejected with
// StatusCode::kCorruption instead of parsing into garbage (or worse,
// attempting a giant allocation from a flipped dimension field).

#ifndef ECM_DIST_SERIALIZE_H_
#define ECM_DIST_SERIALIZE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/ecm_sketch.h"
#include "src/util/bytes.h"
#include "src/util/result.h"

namespace ecm {

/// Appends the wire encoding of a config to `w` (magic "ECMC" + fields).
void SerializeEcmConfig(const EcmConfig& cfg, ByteWriter* w);

/// Decodes and validates a config previously written by SerializeEcmConfig.
/// Dimension fields are bounds-checked so corrupt input cannot request an
/// absurd sketch allocation downstream.
Result<EcmConfig> DeserializeEcmConfig(ByteReader* r);

namespace wire_internal {

/// FNV-1a 64-bit checksum over a byte span.
uint64_t WireChecksum(const uint8_t* data, size_t size);

inline constexpr uint8_t kSketchMagic[4] = {'E', 'C', 'M', 'S'};
inline constexpr size_t kSketchHeaderBytes =
    sizeof(kSketchMagic) + sizeof(uint64_t);

}  // namespace wire_internal

/// Serializes a whole sketch: header, config, clock, then all w×d counters
/// row-major.
template <SlidingWindowCounter Counter>
std::vector<uint8_t> SerializeSketch(const EcmSketch<Counter>& sketch) {
  ByteWriter payload;
  const EcmConfig& cfg = sketch.config();
  SerializeEcmConfig(cfg, &payload);
  payload.PutVarint(sketch.Now());
  payload.PutVarint(sketch.l1_lifetime());
  for (int j = 0; j < cfg.depth; ++j) {
    for (uint32_t i = 0; i < cfg.width; ++i) {
      sketch.CounterAt(j, i).SerializeTo(&payload);
    }
  }
  ByteWriter out;
  out.PutRaw(wire_internal::kSketchMagic, sizeof(wire_internal::kSketchMagic));
  out.PutFixed<uint64_t>(
      wire_internal::WireChecksum(payload.bytes().data(), payload.size()));
  out.PutRaw(payload.bytes().data(), payload.size());
  return out.MoveBytes();
}

/// Reconstructs a sketch from SerializeSketch bytes. Fails with a
/// Corruption status on truncation, checksum mismatch, or any malformed
/// field; never crashes on hostile input.
template <SlidingWindowCounter Counter>
Result<EcmSketch<Counter>> DeserializeSketch(const uint8_t* data,
                                             size_t size) {
  if (size < wire_internal::kSketchHeaderBytes) {
    return Status::Corruption("sketch bytes shorter than header");
  }
  ByteReader r(data, size);
  for (uint8_t expected : wire_internal::kSketchMagic) {
    auto b = r.GetFixed<uint8_t>();
    if (!b.ok()) return b.status();
    if (*b != expected) return Status::Corruption("bad sketch magic");
  }
  auto checksum = r.GetFixed<uint64_t>();
  if (!checksum.ok()) return checksum.status();
  const uint8_t* body = data + wire_internal::kSketchHeaderBytes;
  size_t body_size = size - wire_internal::kSketchHeaderBytes;
  if (wire_internal::WireChecksum(body, body_size) != *checksum) {
    return Status::Corruption("sketch checksum mismatch");
  }
  auto cfg = DeserializeEcmConfig(&r);
  if (!cfg.ok()) return cfg.status();
  auto now = r.GetVarint();
  if (!now.ok()) return now.status();
  auto l1 = r.GetVarint();
  if (!l1.ok()) return l1.status();
  EcmSketch<Counter> sketch(*cfg);
  for (int j = 0; j < cfg->depth; ++j) {
    for (uint32_t i = 0; i < cfg->width; ++i) {
      auto counter = Counter::Deserialize(&r);
      if (!counter.ok()) return counter.status();
      sketch.CounterAt(j, i) = std::move(*counter);
    }
  }
  if (!r.exhausted()) {
    return Status::Corruption("trailing bytes after sketch payload");
  }
  sketch.RestoreClock(*now, *l1);
  return sketch;
}

template <SlidingWindowCounter Counter>
Result<EcmSketch<Counter>> DeserializeSketch(
    const std::vector<uint8_t>& bytes) {
  return DeserializeSketch<Counter>(bytes.data(), bytes.size());
}

/// Exact size of the sketch on the wire — the currency of all
/// network-transfer accounting.
template <SlidingWindowCounter Counter>
size_t SketchWireSize(const EcmSketch<Counter>& sketch) {
  return SerializeSketch(sketch).size();
}

}  // namespace ecm

#endif  // ECM_DIST_SERIALIZE_H_
