// Whole-sketch wire serialization (§5.3 deployment path): a site ships its
// ECM-sketch to its parent as a self-describing byte string — magic,
// checksum, the full EcmConfig, the sketch clock, and every counter's own
// wire encoding (window/{exponential_histogram,…}.h SerializeTo).
//
// The wire size of these encodings is the single source of truth for the
// network-transfer accounting of the distributed benches (Fig. 5/6,
// Table 4), so the format favors compactness (varints) but stays exact:
// deserialization reproduces a sketch that answers every query identically
// to the original.
//
// Corruption safety: the header carries an FNV-1a checksum of the entire
// payload, so truncated or bit-flipped inputs are rejected with
// StatusCode::kCorruption instead of parsing into garbage (or worse,
// attempting a giant allocation from a flipped dimension field).

#ifndef ECM_DIST_SERIALIZE_H_
#define ECM_DIST_SERIALIZE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/ecm_sketch.h"
#include "src/util/bytes.h"
#include "src/util/result.h"

namespace ecm {

/// Appends the wire encoding of a config to `w` (magic "ECMC" + fields).
void SerializeEcmConfig(const EcmConfig& cfg, ByteWriter* w);

/// Decodes and validates a config previously written by SerializeEcmConfig.
/// Dimension fields are bounds-checked so corrupt input cannot request an
/// absurd sketch allocation downstream.
Result<EcmConfig> DeserializeEcmConfig(ByteReader* r);

namespace wire_internal {

/// FNV-1a 64-bit checksum over a byte span.
uint64_t WireChecksum(const uint8_t* data, size_t size);

inline constexpr uint8_t kSketchMagic[4] = {'E', 'C', 'M', 'S'};
inline constexpr size_t kSketchHeaderBytes =
    sizeof(kSketchMagic) + sizeof(uint64_t);

inline constexpr uint8_t kSketchDeltaMagic[4] = {'E', 'C', 'M', 'D'};
inline constexpr uint64_t kSketchDeltaFormatVersion = 1;

/// Verifies `magic` + an FNV-1a payload checksum at the head of
/// [data, data+size) and positions `r` after them. Shared by the sketch,
/// delta and RLZ decoders.
Status CheckWireHeader(const uint8_t* data, size_t size,
                       const uint8_t (&magic)[4], ByteReader* r);

/// Wraps `payload` in the standard header (magic + FNV-1a checksum).
std::vector<uint8_t> WrapWirePayload(const uint8_t (&magic)[4],
                                     const ByteWriter& payload);

}  // namespace wire_internal

/// Serializes a whole sketch: header, config, clock, then all w×d counters
/// row-major.
template <SlidingWindowCounter Counter>
std::vector<uint8_t> SerializeSketch(const EcmSketch<Counter>& sketch) {
  ByteWriter payload;
  const EcmConfig& cfg = sketch.config();
  SerializeEcmConfig(cfg, &payload);
  payload.PutVarint(sketch.Now());
  payload.PutVarint(sketch.l1_lifetime());
  for (int j = 0; j < cfg.depth; ++j) {
    for (uint32_t i = 0; i < cfg.width; ++i) {
      sketch.CounterAt(j, i).SerializeTo(&payload);
    }
  }
  ByteWriter out;
  out.PutRaw(wire_internal::kSketchMagic, sizeof(wire_internal::kSketchMagic));
  out.PutFixed<uint64_t>(
      wire_internal::WireChecksum(payload.bytes().data(), payload.size()));
  out.PutRaw(payload.bytes().data(), payload.size());
  return out.MoveBytes();
}

/// Reconstructs a sketch from SerializeSketch bytes. Fails with a
/// Corruption status on truncation, checksum mismatch, or any malformed
/// field; never crashes on hostile input.
template <SlidingWindowCounter Counter>
Result<EcmSketch<Counter>> DeserializeSketch(const uint8_t* data,
                                             size_t size) {
  if (size < wire_internal::kSketchHeaderBytes) {
    return Status::Corruption("sketch bytes shorter than header");
  }
  ByteReader r(data, size);
  for (uint8_t expected : wire_internal::kSketchMagic) {
    auto b = r.GetFixed<uint8_t>();
    if (!b.ok()) return b.status();
    if (*b != expected) return Status::Corruption("bad sketch magic");
  }
  auto checksum = r.GetFixed<uint64_t>();
  if (!checksum.ok()) return checksum.status();
  const uint8_t* body = data + wire_internal::kSketchHeaderBytes;
  size_t body_size = size - wire_internal::kSketchHeaderBytes;
  if (wire_internal::WireChecksum(body, body_size) != *checksum) {
    return Status::Corruption("sketch checksum mismatch");
  }
  auto cfg = DeserializeEcmConfig(&r);
  if (!cfg.ok()) return cfg.status();
  auto now = r.GetVarint();
  if (!now.ok()) return now.status();
  auto l1 = r.GetVarint();
  if (!l1.ok()) return l1.status();
  EcmSketch<Counter> sketch(*cfg);
  for (int j = 0; j < cfg->depth; ++j) {
    for (uint32_t i = 0; i < cfg->width; ++i) {
      auto counter = Counter::Deserialize(&r);
      if (!counter.ok()) return counter.status();
      sketch.CounterAt(j, i) = std::move(*counter);
    }
  }
  if (!r.exhausted()) {
    return Status::Corruption("trailing bytes after sketch payload");
  }
  sketch.RestoreClock(*now, *l1);
  return sketch;
}

template <SlidingWindowCounter Counter>
Result<EcmSketch<Counter>> DeserializeSketch(
    const std::vector<uint8_t>& bytes) {
  return DeserializeSketch<Counter>(bytes.data(), bytes.size());
}

/// Exact size of the sketch on the wire — the currency of all
/// network-transfer accounting.
template <SlidingWindowCounter Counter>
size_t SketchWireSize(const EcmSketch<Counter>& sketch) {
  return SerializeSketch(sketch).size();
}

/// Header fields of a delta image (ApplySketchDelta reports them so the
/// receiving channel can chain base-version checks across deltas).
struct SketchDeltaInfo {
  uint64_t epoch = 0;
  uint64_t base_version = 0;  ///< sender's sketch.version() at the base
  uint64_t new_version = 0;   ///< sender's sketch.version() now
  uint64_t n_cells = 0;       ///< dirty cells shipped
};

/// Serializes only the counter cells mutated since `base_version` —
/// the delta between the previously shipped full image (`base_image`,
/// whose checksum pins the base) and the sketch's current state
/// (`new_image` = SerializeSketch(sketch), whose checksum lets the
/// receiver verify the applied result bit-for-bit). `epoch` is the
/// transport rejoin epoch: a receiver on a different epoch must reject
/// the delta and force a full resync.
///
/// Layout: "ECMD" | fixed64 FNV-1a(payload) | payload =
///   varint format | varint epoch | varint base_version | varint
///   new_version | fixed64 base_checksum | varint base_len | fixed64
///   new_checksum | varint new_len | varint now | varint l1 | varint
///   width | varint depth | varint n_cells | n_cells × (varint index
///   delta, counter wire encoding).
template <SlidingWindowCounter Counter>
std::vector<uint8_t> SerializeSketchDelta(
    const EcmSketch<Counter>& sketch, uint64_t base_version, uint64_t epoch,
    const std::vector<uint8_t>& base_image,
    const std::vector<uint8_t>& new_image) {
  ByteWriter payload;
  const EcmConfig& cfg = sketch.config();
  payload.PutVarint(wire_internal::kSketchDeltaFormatVersion);
  payload.PutVarint(epoch);
  payload.PutVarint(base_version);
  payload.PutVarint(sketch.version());
  payload.PutFixed<uint64_t>(
      wire_internal::WireChecksum(base_image.data(), base_image.size()));
  payload.PutVarint(base_image.size());
  payload.PutFixed<uint64_t>(
      wire_internal::WireChecksum(new_image.data(), new_image.size()));
  payload.PutVarint(new_image.size());
  payload.PutVarint(sketch.Now());
  payload.PutVarint(sketch.l1_lifetime());
  payload.PutVarint(cfg.width);
  payload.PutVarint(static_cast<uint64_t>(cfg.depth));
  std::vector<uint32_t> dirty;
  sketch.AppendDirtyCells(base_version, &dirty);
  payload.PutVarint(dirty.size());
  uint32_t prev = 0;
  for (size_t k = 0; k < dirty.size(); ++k) {
    const uint32_t idx = dirty[k];
    payload.PutVarint(k == 0 ? idx : idx - prev);
    prev = idx;
    sketch.CounterAt(static_cast<int>(idx / cfg.width), idx % cfg.width)
        .SerializeTo(&payload);
  }
  return wire_internal::WrapWirePayload(wire_internal::kSketchDeltaMagic,
                                        payload);
}

/// Applies a delta image in place. `expected_epoch` must match the
/// delta's epoch and `base_image` must be byte-identical to the image the
/// sender encoded against (checksum-pinned) — otherwise kStaleBase, with
/// the sketch untouched, and the caller must fall back to a full
/// snapshot. Malformed bytes fail with kCorruption before any mutation.
/// On success returns the new full image (verified bit-identical to the
/// sender's SerializeSketch output — a kInternal failure here means the
/// sketch diverged and the caller must resync). `expected_base_version`,
/// when non-null, additionally pins the sender's version chain.
template <SlidingWindowCounter Counter>
Result<std::vector<uint8_t>> ApplySketchDelta(
    const uint8_t* data, size_t size, uint64_t expected_epoch,
    const std::vector<uint8_t>& base_image, EcmSketch<Counter>* sketch,
    const uint64_t* expected_base_version = nullptr,
    SketchDeltaInfo* info_out = nullptr) {
  ByteReader r(data, size);
  ECM_RETURN_NOT_OK(wire_internal::CheckWireHeader(
      data, size, wire_internal::kSketchDeltaMagic, &r));
  auto fmt = r.GetVarint();
  if (!fmt.ok()) return fmt.status();
  if (*fmt != wire_internal::kSketchDeltaFormatVersion) {
    return Status::Corruption("unsupported sketch delta format version");
  }
  SketchDeltaInfo info;
  auto epoch = r.GetVarint();
  if (!epoch.ok()) return epoch.status();
  info.epoch = *epoch;
  auto base_version = r.GetVarint();
  if (!base_version.ok()) return base_version.status();
  info.base_version = *base_version;
  auto new_version = r.GetVarint();
  if (!new_version.ok()) return new_version.status();
  info.new_version = *new_version;
  auto base_checksum = r.GetFixed<uint64_t>();
  if (!base_checksum.ok()) return base_checksum.status();
  auto base_len = r.GetVarint();
  if (!base_len.ok()) return base_len.status();
  auto new_checksum = r.GetFixed<uint64_t>();
  if (!new_checksum.ok()) return new_checksum.status();
  auto new_len = r.GetVarint();
  if (!new_len.ok()) return new_len.status();
  if (info_out) *info_out = info;
  if (info.epoch != expected_epoch) {
    return Status::StaleBase("sketch delta from a different rejoin epoch");
  }
  if (*base_len != base_image.size() ||
      *base_checksum !=
          wire_internal::WireChecksum(base_image.data(), base_image.size())) {
    return Status::StaleBase("sketch delta against a different base image");
  }
  if (expected_base_version && info.base_version != *expected_base_version) {
    return Status::StaleBase("sketch delta breaks the base-version chain");
  }
  auto now = r.GetVarint();
  if (!now.ok()) return now.status();
  auto l1 = r.GetVarint();
  if (!l1.ok()) return l1.status();
  auto width = r.GetVarint();
  if (!width.ok()) return width.status();
  auto depth = r.GetVarint();
  if (!depth.ok()) return depth.status();
  const EcmConfig& cfg = sketch->config();
  if (*width != cfg.width || *depth != static_cast<uint64_t>(cfg.depth)) {
    return Status::Corruption("sketch delta dimensions mismatch");
  }
  auto n_cells = r.GetVarint();
  if (!n_cells.ok()) return n_cells.status();
  if (*n_cells > sketch->NumCounters()) {
    return Status::Corruption("sketch delta dirty-cell count out of range");
  }
  info.n_cells = *n_cells;
  // Two-phase apply: decode everything first so hostile bytes can never
  // leave the sketch half-mutated.
  std::vector<uint32_t> indices;
  std::vector<Counter> cells;
  indices.reserve(*n_cells);
  cells.reserve(*n_cells);
  uint64_t prev = 0;
  for (uint64_t k = 0; k < *n_cells; ++k) {
    auto gap = r.GetVarint();
    if (!gap.ok()) return gap.status();
    const uint64_t idx = (k == 0) ? *gap : prev + *gap;
    if ((k != 0 && *gap == 0) || idx >= sketch->NumCounters()) {
      return Status::Corruption("sketch delta cell index out of range");
    }
    prev = idx;
    auto counter = Counter::Deserialize(&r);
    if (!counter.ok()) return counter.status();
    indices.push_back(static_cast<uint32_t>(idx));
    cells.push_back(std::move(*counter));
  }
  if (!r.exhausted()) {
    return Status::Corruption("trailing bytes after sketch delta payload");
  }
  for (size_t k = 0; k < indices.size(); ++k) {
    const uint32_t idx = indices[k];
    sketch->CounterAt(static_cast<int>(idx / cfg.width), idx % cfg.width) =
        std::move(cells[k]);
  }
  sketch->RestoreClock(*now, *l1);
  std::vector<uint8_t> full = SerializeSketch(*sketch);
  if (full.size() != *new_len ||
      wire_internal::WireChecksum(full.data(), full.size()) != *new_checksum) {
    return Status::Internal(
        "sketch delta post-image mismatch: receiver diverged from sender");
  }
  if (info_out) *info_out = info;
  return full;
}

}  // namespace ecm

#endif  // ECM_DIST_SERIALIZE_H_
