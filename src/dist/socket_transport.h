// Real TCP wire transport for the distributed runtime (§5–§6 deployment
// path): the socket-backed Transport the dist/transport.h seam was built
// for. Where LoopbackTransport only charges NetworkStats, SocketTransport
// ships the actual dist/serialize bytes between processes:
//
//   site process                         coordinator process
//   ------------                         -------------------
//   SocketTransport::Connect  --TCP-->   CoordinatorServer::Start
//     kHello (node id, epoch)              per-site liveness registry
//     kSketch / kBlob payloads             frame handler (merge, store)
//     kHeartbeat when idle                 heartbeat-timeout sweeper
//     kDone (final snapshot)               down / rejoin tracking
//
// Framing: every message crosses the wire as one length-prefixed frame —
// fixed header (magic 'ECMF', type, from, to, sequence number, payload
// length) followed by the payload, with an FNV-1a checksum over header
// fields and payload. The decoder is incremental (feed arbitrary byte
// slices) and rejects corrupt input without crashing or allocating from
// hostile length fields: oversized lengths, bad magic and checksum
// mismatches all surface as StatusCode::kCorruption, and the sketch
// payloads themselves re-verify under dist/serialize's own checksum.
//
// Sending is asynchronous and batched: Send() enqueues an encoded frame
// and returns; a dedicated sender thread coalesces queued frames into
// large writes. The queue is bounded — when more than
// Options::max_queue_bytes are in flight, Send() blocks until the sender
// drains (backpressure instead of unbounded buffering). When the sender
// has been idle for Options::heartbeat_period_ms, it emits a kHeartbeat
// frame so the coordinator's liveness sweeper sees quiet-but-alive sites.
//
// Accounting: NetworkStats stays the single currency of PR 5 — stats()
// counts exactly the application payload bytes passed to Send()/
// SendPayload(), never framing overhead or control frames (hello,
// heartbeat), so a socket run of a propagation script reports the same
// NetworkStats as a loopback run of the same script. The physical volume
// (framing + control included) is available separately as wire_bytes().

#ifndef ECM_DIST_SOCKET_TRANSPORT_H_
#define ECM_DIST_SOCKET_TRANSPORT_H_

#include <sys/socket.h>

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/dist/fault.h"
#include "src/dist/network_stats.h"
#include "src/dist/transport.h"
#include "src/util/result.h"

namespace ecm {

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// What a frame carries. Control frames (hello, heartbeat) are free in
/// the NetworkStats currency; payload frames are charged at payload size.
enum class FrameType : uint8_t {
  kHello = 1,      ///< first frame of a connection: announces node + epoch
  kHeartbeat = 2,  ///< liveness beacon (empty payload)
  kSketch = 3,     ///< serialized EcmSketch snapshot (dist/serialize bytes)
  kVector = 4,     ///< statistics vector (geometric-monitor sync)
  kBlob = 5,       ///< opaque payload (accounting parity with loopback)
  kDone = 6,       ///< site finished its shard; payload = final snapshot
  kSketchDelta = 7,  ///< dirty-cell delta image ("ECMD", dist/serialize.h)
  kSketchRlz = 8,    ///< reference-compressed image ("ECMZ", dist/compress.h)
};

/// One wire message.
struct Frame {
  FrameType type = FrameType::kBlob;
  NodeId from = 0;
  NodeId to = kCoordinatorNode;
  uint64_t seq = 0;  ///< per-connection sequence number
  std::vector<uint8_t> payload;
};

/// Payloads above this bound are rejected by the decoder before any
/// allocation — a flipped length field cannot request a giant buffer.
inline constexpr size_t kMaxFramePayload = 64u << 20;

/// Fixed frame header size on the wire: magic(4) + type(1) + from(4) +
/// to(4) + seq(8) + payload_len(4) + checksum(8).
inline constexpr size_t kFrameHeaderBytes = 33;

/// Encodes a frame: header (with FNV-1a checksum over the header fields
/// after the magic plus the payload) followed by the payload bytes.
std::vector<uint8_t> EncodeFrame(const Frame& frame);

/// Incremental frame parser: feed received byte slices of any size,
/// then drain complete frames with Next(). Corruption (bad magic,
/// oversized length, checksum mismatch) is sticky: the stream cannot be
/// resynchronized and every later Next() fails too.
class FrameDecoder {
 public:
  /// Appends received bytes to the internal buffer.
  void Feed(const uint8_t* data, size_t size);

  /// Extracts the next complete frame. Returns an empty optional when
  /// more bytes are needed, or kCorruption on malformed input.
  Result<std::optional<Frame>> Next();

  /// Bytes buffered but not yet consumed by Next().
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::vector<uint8_t> buf_;
  size_t pos_ = 0;
  bool corrupt_ = false;
};

// ---------------------------------------------------------------------------
// Site side: SocketTransport
// ---------------------------------------------------------------------------

/// TCP-backed Transport: connects to a CoordinatorServer and ships real
/// frames with async batched sends and bounded-queue backpressure. All
/// send entry points are thread-safe (ParallelIngest workers may share
/// one transport); the Transport::Send overrides never block the caller
/// beyond the backpressure bound and record failures in status().
class SocketTransport final : public Transport {
 public:
  struct Options {
    size_t max_queue_bytes = 8u << 20;    ///< backpressure bound (bytes)
    size_t max_batch_bytes = 256u << 10;  ///< coalescing cap per write
    uint64_t heartbeat_period_ms = 250;   ///< 0 disables idle heartbeats
    int connect_attempts = 40;            ///< dials while the server boots
    /// Exponential-backoff schedule with deterministic jitter, shared by
    /// the initial Connect() dial loop and in-transport reconnects
    /// (replaces the old fixed connect_retry_ms sleep).
    BackoffPolicy backoff{/*initial_ms=*/10, /*max_ms=*/1000,
                          /*multiplier=*/2.0, /*jitter=*/0.2, /*seed=*/1};
    /// Reconnect dials per outage before the transport gives up with a
    /// sticky kUnavailable. 0 disables in-transport reconnection (a
    /// retryable write failure is then terminal, the pre-PR-9 behavior).
    int reconnect_attempts = 8;
    uint32_t epoch = 1;  ///< announced in kHello; > 1 flags a rejoin
    /// Optional deterministic fault schedule applied to outgoing
    /// application frames (never kHello/kHeartbeat/kDone): drops,
    /// payload bit-flips, byte-identical duplicates, delay-reordering
    /// and mid-stream connection severs. Not owned; may be shared.
    const FaultPlan* fault_plan = nullptr;
  };

  /// Wire-level faults this transport injected (fault_plan only).
  struct FaultCounters {
    uint64_t drops = 0;
    uint64_t duplicates = 0;
    uint64_t corrupts = 0;
    uint64_t delays = 0;
    uint64_t severs = 0;
  };

  /// Connects to `host:port`, announces `self` with a kHello frame and
  /// starts the sender thread. Retries while the server is still booting.
  static Result<std::unique_ptr<SocketTransport>> Connect(
      const std::string& host, int port, NodeId self,
      const Options& options);

  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  /// Accounting-only send (size known, state moved elsewhere): ships a
  /// kBlob frame of `payload_bytes` zero bytes so the claimed volume
  /// really crosses the wire, and charges NetworkStats exactly like
  /// LoopbackTransport does.
  void Send(NodeId from, NodeId to, size_t payload_bytes) override;

  /// Payload-carrying send: frames `data` as kBlob and ships it.
  void Send(NodeId from, NodeId to, const uint8_t* data,
            size_t size) override;

  /// Typed application send (sketch snapshots, final results). Charged
  /// to NetworkStats at payload size.
  Status SendPayload(FrameType type, NodeId to,
                     std::vector<uint8_t> payload);

  /// Blocks until every queued frame (fault-delayed ones included) has
  /// been written to the socket. `timeout_ms == 0` waits forever;
  /// otherwise returns kDeadlineExceeded when the queue has not drained
  /// in time (retryable: the sender may still be healing the link).
  Status Flush(uint64_t timeout_ms = 0);

  NetworkStats stats() const override;

  /// Physical bytes written: payloads plus framing and control frames.
  uint64_t wire_bytes() const;

  /// First *terminal* send/connection error, OK while healthy. Outages
  /// the reconnect machinery healed (or is still healing) never show
  /// here — only retry exhaustion and fatal classifications stick.
  Status status() const;

  NodeId node() const { return node_; }

  /// Epoch announced in the most recent kHello. Starts at
  /// Options::epoch; every in-transport reconnect re-hellos with the
  /// next epoch, so a caller shipping compressed sketches re-bases its
  /// SketchSender when this advances (see examples/multiproc_runtime).
  uint32_t epoch() const { return epoch_.load(std::memory_order_relaxed); }

  /// Successful in-transport reconnects (link outages healed).
  uint64_t reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }

  FaultCounters fault_counters() const;

 private:
  /// One queued, already-encoded frame. `sever_after` marks a frame the
  /// fault plan kills the connection behind (after it reaches the wire).
  struct Entry {
    std::vector<uint8_t> bytes;
    bool sever_after = false;
  };

  SocketTransport(int fd, NodeId self, const sockaddr_storage& addr,
                  const Options& options);

  /// Applies the fault plan (when any) and enqueues the frame, blocking
  /// on the backpressure bound.
  Status EnqueueFramed(Frame&& frame);

  /// Enqueues entries verbatim, blocking on the backpressure bound.
  Status EnqueueEntries(std::vector<Entry> entries);

  /// Moves every still-delayed fault frame into the send queue.
  void ReleaseAllDelayedLocked();

  /// Sender-thread main loop: coalesce + write, idle heartbeats,
  /// backoff reconnect on retryable failures.
  void SenderLoop();

  /// Backoff + dial + re-hello under a fresh epoch. Called from the
  /// sender thread with `lk` held; drops it around slow operations.
  Status ReconnectLocked(std::unique_lock<std::mutex>& lk);

  const Options options_;
  const NodeId node_;
  int fd_ = -1;
  sockaddr_storage addr_{};  ///< server address, kept for reconnects

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;   ///< signals the sender thread
  std::condition_variable space_cv_;   ///< wakes blocked producers
  std::deque<Entry> queue_;
  size_t queued_bytes_ = 0;
  bool stop_ = false;
  Status error_;  ///< sticky first terminal failure
  uint64_t next_seq_ = 0;
  uint64_t fault_index_ = 0;  ///< faultable frames sent (plan coordinate)
  std::deque<std::pair<uint64_t, Entry>> delayed_;  ///< (release_index, frame)
  FaultCounters fault_counters_;

  std::atomic<uint64_t> payload_messages_{0};
  std::atomic<uint64_t> payload_bytes_{0};
  std::atomic<uint64_t> wire_bytes_{0};
  std::atomic<uint32_t> epoch_{1};
  std::atomic<uint64_t> reconnects_{0};

  std::thread sender_;
};

// ---------------------------------------------------------------------------
// Coordinator side: CoordinatorServer
// ---------------------------------------------------------------------------

/// Health of one site as seen by the coordinator's liveness tracking.
enum class SiteHealth : uint8_t {
  kNeverSeen = 0,  ///< no kHello received yet
  kUp = 1,         ///< connected and inside the heartbeat window
  kDown = 2,       ///< disconnected or heartbeat-silent past the timeout
};

/// Liveness + progress snapshot of one site.
struct SiteStatus {
  NodeId node = 0;
  SiteHealth health = SiteHealth::kNeverSeen;
  uint32_t epoch = 0;          ///< kHello epoch of the current connection
  uint32_t joins = 0;          ///< connections accepted (>1 means rejoins)
  uint32_t hello_attempts = 0;  ///< kHello frames seen, refused included
  uint64_t frames = 0;         ///< application frames received
  uint64_t payload_bytes = 0;  ///< application payload volume received
  bool done = false;           ///< kDone received on the current epoch
};

/// The liveness predicate of the sweeper, split out pure so the deadline
/// boundary is unit-testable without real clocks: a site is expired only
/// when its silence *strictly exceeds* the timeout — a heartbeat landing
/// exactly at the deadline keeps it alive. timeout_ms == 0 means any
/// nonzero silence downs the site.
inline constexpr bool HeartbeatExpired(uint64_t silent_ms,
                                       uint64_t timeout_ms) {
  return silent_ms > timeout_ms;
}

/// Accepts site connections, decodes frames, tracks per-site liveness
/// (heartbeat timeouts, crash detection via EOF, rejoin epochs) and hands
/// every application frame to a handler. The handler runs on the
/// connection's reader thread; handlers that touch shared state must
/// synchronize (one frame handler call per site is in flight at a time,
/// but different sites' handlers run concurrently).
class CoordinatorServer {
 public:
  struct Options {
    uint64_t heartbeat_timeout_ms = 2000;  ///< silence before kDown
    uint64_t sweep_period_ms = 50;         ///< liveness sweeper cadence
    /// Optional deterministic fault schedule: kHello attempts matching
    /// the plan's hello_refusals are refused (connection closed before
    /// registration) — a coordinator-side partition the site's
    /// reconnect/backoff machinery must outlast. Not owned.
    const FaultPlan* fault_plan = nullptr;
  };

  using FrameHandler = std::function<void(const Frame& frame)>;

  /// Binds `port` (0 picks an ephemeral port, see port()), starts the
  /// accept loop and the liveness sweeper.
  static Result<std::unique_ptr<CoordinatorServer>> Start(
      int port, const Options& options, FrameHandler handler);

  ~CoordinatorServer();

  CoordinatorServer(const CoordinatorServer&) = delete;
  CoordinatorServer& operator=(const CoordinatorServer&) = delete;

  /// The bound TCP port.
  int port() const { return port_; }

  /// Current status of every site that ever said hello.
  std::vector<SiteStatus> site_status() const;

  /// Status of one site; kNeverSeen default when unknown.
  SiteStatus site(NodeId node) const;

  /// Received application traffic in the NetworkStats currency.
  NetworkStats stats() const;

  /// Times any site transitioned kUp -> kDown (EOF or heartbeat timeout).
  uint64_t downs() const { return downs_.load(std::memory_order_relaxed); }

  /// Times a site said hello again after a previous connection.
  uint64_t rejoins() const {
    return rejoins_.load(std::memory_order_relaxed);
  }

  /// Connections dropped for malformed frames.
  uint64_t corrupt_streams() const {
    return corrupt_streams_.load(std::memory_order_relaxed);
  }

  /// kHello attempts refused by the fault plan.
  uint64_t hello_refusals() const {
    return hello_refusals_.load(std::memory_order_relaxed);
  }

  /// Stops accepting, closes every connection and joins all threads.
  /// Safe to call more than once; the destructor calls it.
  void Stop();

 private:
  struct Connection;
  struct SiteState;

  CoordinatorServer(int listen_fd, int port, const Options& options,
                    FrameHandler handler);

  void AcceptLoop();
  void ReaderLoop(Connection* conn);
  void SweeperLoop();

  /// Marks `node` down if currently up; counts the transition.
  void MarkDown(NodeId node);

  const Options options_;
  FrameHandler handler_;
  int listen_fd_ = -1;
  int port_ = 0;

  mutable std::mutex mu_;
  std::condition_variable stop_cv_;  ///< wakes the sweeper on Stop()
  std::vector<std::unique_ptr<Connection>> connections_;
  std::vector<std::unique_ptr<SiteState>> sites_;
  bool stopping_ = false;

  std::atomic<uint64_t> payload_messages_{0};
  std::atomic<uint64_t> payload_bytes_{0};
  std::atomic<uint64_t> downs_{0};
  std::atomic<uint64_t> rejoins_{0};
  std::atomic<uint64_t> corrupt_streams_{0};
  std::atomic<uint64_t> hello_refusals_{0};

  std::thread acceptor_;
  std::thread sweeper_;
};

/// Builds the kHello payload (epoch as varint) / parses it back.
std::vector<uint8_t> EncodeHelloPayload(uint32_t epoch);
Result<uint32_t> DecodeHelloPayload(const std::vector<uint8_t>& payload);

}  // namespace ecm

#endif  // ECM_DIST_SOCKET_TRANSPORT_H_
