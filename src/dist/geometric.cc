#include "src/dist/geometric.h"

namespace ecm {

// The monitors are counter-generic templates; the common instantiations
// are compiled once here (and their layouts/regressions are pinned by
// tests/dist_runtime_test.cc's counter-generic checks).
template class GeometricSelfJoinMonitorT<ExponentialHistogram>;
template class GeometricSelfJoinMonitorT<RandomizedWave>;
template class GeometricPointMonitorT<ExponentialHistogram>;
template class GeometricPointMonitorT<RandomizedWave>;

}  // namespace ecm
