#include "src/dist/geometric.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ecm {
namespace {

// Ball geometry shared by both monitors: center c = e + δ/2, radius
// r = ‖δ‖/2. Returns (c, r) given the drift δ = current − at_sync.
double BallCenterAndRadius(const std::vector<double>& current,
                           const std::vector<double>& at_sync,
                           const std::vector<double>& e_avg,
                           std::vector<double>* center) {
  const size_t dim = current.size();
  center->resize(dim);
  double radius_sq = 0.0;
  for (size_t k = 0; k < dim; ++k) {
    const double drift = current[k] - at_sync[k];
    radius_sq += drift * drift;
    (*center)[k] = e_avg[k] + 0.5 * drift;
  }
  return 0.5 * std::sqrt(radius_sq);
}

}  // namespace

// ---------------------------------------------------------------------------
// GeometricSelfJoinMonitor: f(v) = min over rows of Σ_col v², the F₂
// estimate of the (average) statistics vector.
// ---------------------------------------------------------------------------

GeometricSelfJoinMonitor::GeometricSelfJoinMonitor(
    int num_sites, const EcmConfig& sketch_config, const Config& config)
    : sketch_config_(sketch_config), config_(config) {
  const size_t n = static_cast<size_t>(num_sites);
  sites_.reserve(n);
  for (size_t i = 0; i < n; ++i) sites_.emplace_back(sketch_config_);
  const size_t dim =
      static_cast<size_t>(sketch_config_.width) * sketch_config_.depth;
  v_sync_.assign(n, std::vector<double>(dim, 0.0));
  e_avg_.assign(dim, 0.0);
  site_updates_.assign(n, 0);
}

std::vector<double> GeometricSelfJoinMonitor::SiteVector(int site) const {
  const EcmSketch<ExponentialHistogram>& sketch =
      sites_[static_cast<size_t>(site)];
  const size_t width = sketch_config_.width;
  std::vector<double> out(width * static_cast<size_t>(sketch_config_.depth));
  const Timestamp now = sketch.Now();
  for (int row = 0; row < sketch_config_.depth; ++row) {
    // Batched row materialization straight into the statistics vector —
    // no per-row temporaries.
    sketch.EstimateRowAt(row, sketch_config_.window_len, now,
                         &out[static_cast<size_t>(row) * width]);
  }
  return out;
}

bool GeometricSelfJoinMonitor::SphereViolation(
    const std::vector<double>& current,
    const std::vector<double>& at_sync) const {
  const double n = static_cast<double>(sites_.size());
  const double threshold_avg = config_.threshold / (n * n);
  std::vector<double> center;
  const double radius = BallCenterAndRadius(current, at_sync, e_avg_, &center);

  // f bound over the ball, row by row: max is at most min_row (‖c_row‖+r)²
  // and min is at least min_row (‖c_row‖−r)₊².
  double bound = std::numeric_limits<double>::infinity();
  const uint32_t width = sketch_config_.width;
  for (int row = 0; row < sketch_config_.depth; ++row) {
    double norm_sq = 0.0;
    for (uint32_t col = 0; col < width; ++col) {
      const double v = center[static_cast<size_t>(row) * width + col];
      norm_sq += v * v;
    }
    const double norm = std::sqrt(norm_sq);
    const double extreme =
        above_ ? std::max(norm - radius, 0.0) : norm + radius;
    bound = std::min(bound, extreme * extreme);
  }
  return above_ ? bound < threshold_avg : bound >= threshold_avg;
}

void GeometricSelfJoinMonitor::Sync() {
  const size_t n = sites_.size();
  const size_t dim = e_avg_.size();
  std::fill(e_avg_.begin(), e_avg_.end(), 0.0);
  for (size_t i = 0; i < n; ++i) {
    v_sync_[i] = SiteVector(static_cast<int>(i));
    for (size_t k = 0; k < dim; ++k) e_avg_[k] += v_sync_[i][k];
  }
  for (double& v : e_avg_) v /= static_cast<double>(n);

  double f_avg = std::numeric_limits<double>::infinity();
  const uint32_t width = sketch_config_.width;
  for (int row = 0; row < sketch_config_.depth; ++row) {
    double norm_sq = 0.0;
    for (uint32_t col = 0; col < width; ++col) {
      const double v = e_avg_[static_cast<size_t>(row) * width + col];
      norm_sq += v * v;
    }
    f_avg = std::min(f_avg, norm_sq);
  }
  const bool was_above = above_;
  estimate_ = static_cast<double>(n) * static_cast<double>(n) * f_avg;
  above_ = estimate_ >= config_.threshold;
  if (!was_above && above_) ++stats_.crossings_signaled;
  ++stats_.syncs;
  stats_.network.messages += 2 * n;
  stats_.network.bytes +=
      2ull * n * dim * sizeof(double);  // vectors up, average down
}

bool GeometricSelfJoinMonitor::Process(int site, uint64_t key, Timestamp ts,
                                       uint64_t count) {
  sites_[static_cast<size_t>(site)].Add(key, ts, count);
  ++stats_.updates;
  if (!synced_once_) {
    Sync();
    synced_once_ = true;
    return true;
  }
  const uint64_t cadence = std::max<uint64_t>(config_.check_every, 1);
  if (++site_updates_[static_cast<size_t>(site)] % cadence != 0) return false;
  ++stats_.local_checks;
  if (!SphereViolation(SiteVector(site), v_sync_[static_cast<size_t>(site)])) {
    return false;
  }
  ++stats_.local_violations;
  Sync();
  return true;
}

// ---------------------------------------------------------------------------
// GeometricPointMonitor: f(v) = min_j v_j, the Count-Min estimate of the
// watched key from its d per-row counters.
// ---------------------------------------------------------------------------

GeometricPointMonitor::GeometricPointMonitor(int num_sites,
                                             const EcmConfig& sketch_config,
                                             const Config& config)
    : sketch_config_(sketch_config), config_(config) {
  const size_t n = static_cast<size_t>(num_sites);
  sites_.reserve(n);
  for (size_t i = 0; i < n; ++i) sites_.emplace_back(sketch_config_);
  const size_t dim = static_cast<size_t>(sketch_config_.depth);
  v_sync_.assign(n, std::vector<double>(dim, 0.0));
  e_avg_.assign(dim, 0.0);
  site_updates_.assign(n, 0);
}

std::vector<double> GeometricPointMonitor::SiteVector(int site) const {
  const EcmSketch<ExponentialHistogram>& sketch =
      sites_[static_cast<size_t>(site)];
  const Timestamp now = sketch.Now();
  std::vector<double> out(static_cast<size_t>(sketch_config_.depth));
  // One mixing pass for all d per-row contributions of the watched key.
  sketch.PointQueryRowsAt(config_.key, sketch_config_.window_len, now,
                          out.data());
  return out;
}

bool GeometricPointMonitor::SphereViolation(
    const std::vector<double>& current,
    const std::vector<double>& at_sync) const {
  const double n = static_cast<double>(sites_.size());
  const double threshold_avg = config_.threshold / n;
  std::vector<double> center;
  const double radius = BallCenterAndRadius(current, at_sync, e_avg_, &center);
  const double min_center = *std::min_element(center.begin(), center.end());
  // f = min_j is 1-Lipschitz: over the ball it stays within ±r of min_j c_j.
  return above_ ? min_center - radius < threshold_avg
                : min_center + radius >= threshold_avg;
}

void GeometricPointMonitor::Sync() {
  const size_t n = sites_.size();
  const size_t dim = e_avg_.size();
  std::fill(e_avg_.begin(), e_avg_.end(), 0.0);
  for (size_t i = 0; i < n; ++i) {
    v_sync_[i] = SiteVector(static_cast<int>(i));
    for (size_t k = 0; k < dim; ++k) e_avg_[k] += v_sync_[i][k];
  }
  for (double& v : e_avg_) v /= static_cast<double>(n);

  const bool was_above = above_;
  estimate_ = static_cast<double>(n) *
              *std::min_element(e_avg_.begin(), e_avg_.end());
  above_ = estimate_ >= config_.threshold;
  if (!was_above && above_) ++stats_.crossings_signaled;
  ++stats_.syncs;
  stats_.network.messages += 2 * n;
  stats_.network.bytes += 2ull * n * dim * sizeof(double);
}

bool GeometricPointMonitor::Process(int site, uint64_t key, Timestamp ts,
                                    uint64_t count) {
  sites_[static_cast<size_t>(site)].Add(key, ts, count);
  ++stats_.updates;
  if (!synced_once_) {
    Sync();
    synced_once_ = true;
    return true;
  }
  const uint64_t cadence = std::max<uint64_t>(config_.check_every, 1);
  if (++site_updates_[static_cast<size_t>(site)] % cadence != 0) return false;
  ++stats_.local_checks;
  if (!SphereViolation(SiteVector(site), v_sync_[static_cast<size_t>(site)])) {
    return false;
  }
  ++stats_.local_violations;
  Sync();
  return true;
}

}  // namespace ecm
