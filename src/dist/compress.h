// Compressed sketch propagation (the paper's error-vs-network frontier,
// attacked from the network side): successive wire images of the same
// site's sketch are highly self-similar, so instead of re-shipping a full
// SerializeSketch image every sync, a sender/receiver channel pair ships
//
//   * delta images ("ECMD", dist/serialize.h) — only the counter cells
//     mutated since the last propagation, located by EcmSketch's per-cell
//     version stamps; or
//   * RLZ images ("ECMZ", this header) — the full image greedily
//     factorized against the previously shipped one as copy(offset, len)
//     and literal ops (relative Lempel-Ziv, cf. rlz-store's factorizor);
//
// falling back to full snapshots whenever the compressed form stops
// paying for itself (content drift past `max_compressed_fraction`) or the
// receiver's base is unknown (first contact, channel reset, transport
// rejoin epoch change).
//
// Correctness contract, enforced end-to-end rather than assumed: every
// delta and RLZ image carries the FNV-1a checksum of both the base image
// it was encoded against and the full image it must decode to. A receiver
// on the wrong base rejects with StatusCode::kStaleBase (never a silent
// wrong merge), and a decoded image that is not bit-identical to the
// sender's full snapshot is rejected after the fact. Malformed bytes fail
// with kCorruption before any state mutation.

#ifndef ECM_DIST_COMPRESS_H_
#define ECM_DIST_COMPRESS_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "src/core/ecm_sketch.h"
#include "src/dist/serialize.h"
#include "src/util/result.h"

namespace ecm {

// ---------------------------------------------------------------------------
// RLZ codec: byte-level reference compression of wire images.
// ---------------------------------------------------------------------------

namespace wire_internal {
inline constexpr uint8_t kRlzMagic[4] = {'E', 'C', 'M', 'Z'};
inline constexpr uint64_t kRlzFormatVersion = 1;
/// Decoded-image size cap, mirroring SocketTransport's frame bound: a
/// forged length field must never request a giant allocation.
inline constexpr uint64_t kMaxRlzRawBytes = 64ull * 1024 * 1024;
}  // namespace wire_internal

/// Encodes [data, data+size) against `reference` as a checksummed RLZ
/// image: greedy longest-match factorization into copy(offset, len) ops
/// into the reference plus literal runs. `epoch` is the transport rejoin
/// epoch (receivers on a different epoch reject).
///
/// Layout: "ECMZ" | fixed64 FNV-1a(payload) | payload =
///   varint format | varint epoch | fixed64 ref_checksum | varint
///   ref_len | varint raw_len | varint n_ops | ops. Each op is varint
///   (len << 1 | is_copy), then varint offset (copy) or len raw bytes
///   (literal).
std::vector<uint8_t> RlzEncode(const std::vector<uint8_t>& reference,
                               const uint8_t* data, size_t size,
                               uint64_t epoch);

/// Decodes an RLZ image against `reference`. Rejects with kStaleBase when
/// the epoch or the reference (length + checksum) does not match what the
/// sender encoded against, and with kCorruption on any malformed bytes —
/// truncation, bit flips, copy ops past the reference, op lengths that do
/// not reconstruct exactly raw_len bytes. Never reads out of bounds.
Result<std::vector<uint8_t>> RlzDecode(const uint8_t* data, size_t size,
                                       const std::vector<uint8_t>& reference,
                                       uint64_t expected_epoch);

// ---------------------------------------------------------------------------
// Channel layer: per-site sender/receiver pairs with fallback rules.
// ---------------------------------------------------------------------------

/// What a shipped wire image contains. Values are stable wire constants
/// (SocketTransport maps them 1:1 onto frame types).
enum class SketchWireKind : uint8_t {
  kFull = 1,   ///< SerializeSketch bytes ("ECMS")
  kDelta = 2,  ///< dirty-cell delta ("ECMD")
  kRlz = 3,    ///< reference-compressed full image ("ECMZ")
};

const char* SketchWireKindName(SketchWireKind kind);

/// Which compressed forms a sender may choose from. Fallback to kFull is
/// always allowed (and forced on the first image, after Reset, and past
/// the compressibility threshold).
enum class CompressionMode : uint8_t {
  kFull = 0,   ///< always ship full snapshots (the pre-compression wire)
  kDelta = 1,  ///< dirty-cell deltas, full fallback
  kRlz = 2,    ///< RLZ against the previous image, full fallback
  kAuto = 3,   ///< smallest of delta/RLZ per image, full fallback
};

struct CompressionOptions {
  CompressionMode mode = CompressionMode::kAuto;
  /// A compressed image is shipped only if it is smaller than this
  /// fraction of the full snapshot; otherwise the full image goes out
  /// (drifted-too-far fallback, and it re-bases the channel).
  double max_compressed_fraction = 0.9;
  /// Transport rejoin epoch stamped into every compressed image. Bump on
  /// crash/rejoin (SocketTransport Options::epoch) so stale-base deltas
  /// from before the crash can never apply.
  uint64_t epoch = 1;
};

/// Wire-volume accounting of one channel endpoint.
struct CompressionStats {
  uint64_t full_images = 0;
  uint64_t delta_images = 0;
  uint64_t rlz_images = 0;
  uint64_t wire_bytes = 0;  ///< bytes actually shipped
  uint64_t raw_bytes = 0;   ///< full-snapshot bytes they stand in for
};

/// One shippable image: the kind routes it to the matching frame type /
/// decoder.
struct SketchWireImage {
  SketchWireKind kind = SketchWireKind::kFull;
  std::vector<uint8_t> bytes;
};

/// Sender half of a compressed propagation channel. Tracks the last
/// shipped full image (the reference/base) and the sketch version it
/// captured; each Ship() encodes the sketch's current state in the
/// cheapest permitted form. One sender instance per (site sketch,
/// receiver) pair — it must keep shipping the same live sketch object,
/// whose version stamps its base refers to.
template <SlidingWindowCounter Counter>
class SketchSender {
 public:
  explicit SketchSender(const CompressionOptions& opts = {}) : opts_(opts) {}

  /// Encodes the sketch's current state. The first image (and the first
  /// after Reset/set_epoch) is always a full snapshot.
  SketchWireImage Ship(const EcmSketch<Counter>& sketch) {
    std::vector<uint8_t> full = SerializeSketch(sketch);
    stats_.raw_bytes += full.size();
    SketchWireImage img;
    img.kind = SketchWireKind::kFull;
    const size_t budget = static_cast<size_t>(
        static_cast<double>(full.size()) * opts_.max_compressed_fraction);
    if (has_base_ && opts_.mode != CompressionMode::kFull) {
      if (opts_.mode == CompressionMode::kDelta ||
          opts_.mode == CompressionMode::kAuto) {
        std::vector<uint8_t> delta = SerializeSketchDelta(
            sketch, base_version_, opts_.epoch, reference_, full);
        if (delta.size() < budget) {
          img.kind = SketchWireKind::kDelta;
          img.bytes = std::move(delta);
        }
      }
      if (opts_.mode == CompressionMode::kRlz ||
          opts_.mode == CompressionMode::kAuto) {
        std::vector<uint8_t> rlz =
            RlzEncode(reference_, full.data(), full.size(), opts_.epoch);
        if (rlz.size() < budget &&
            (img.kind == SketchWireKind::kFull ||
             rlz.size() < img.bytes.size())) {
          img.kind = SketchWireKind::kRlz;
          img.bytes = std::move(rlz);
        }
      }
    }
    base_version_ = sketch.version();
    reference_ = full;
    has_base_ = true;
    if (img.kind == SketchWireKind::kFull) {
      img.bytes = std::move(full);
      ++stats_.full_images;
    } else if (img.kind == SketchWireKind::kDelta) {
      ++stats_.delta_images;
    } else {
      ++stats_.rlz_images;
    }
    stats_.wire_bytes += img.bytes.size();
    return img;
  }

  /// Forgets the base: the next image is a full snapshot. Call when the
  /// receiver may have lost state (reconnect, receiver reset).
  void Reset() { has_base_ = false; }

  /// Rejoin-epoch bump: subsequent images carry the new epoch, and the
  /// channel re-bases with a full snapshot.
  void set_epoch(uint64_t epoch) {
    opts_.epoch = epoch;
    Reset();
  }
  uint64_t epoch() const { return opts_.epoch; }

  const CompressionStats& stats() const { return stats_; }

 private:
  CompressionOptions opts_;
  bool has_base_ = false;
  uint64_t base_version_ = 0;      // sketch.version() at the last Ship
  std::vector<uint8_t> reference_;  // full image shipped/implied last
  CompressionStats stats_;
};

/// Receiver half: decodes images back into a live sketch, maintaining the
/// same reference chain as the sender. Any kStaleBase/kCorruption outcome
/// leaves a consistent state; after a non-OK Receive the caller should
/// request (or wait for) a full snapshot — deltas keep rejecting until
/// one arrives.
///
/// Replay hardening: delivery is at-least-once under retransmitting
/// transports (a retry after a send timeout, or SocketTransport's
/// reconnect retransmit), so a byte-identical re-delivery of the image
/// just applied is *expected* traffic. The receiver fingerprints each
/// successfully applied image and absorbs such duplicates idempotently —
/// returning the current sketch, mutating nothing, never double-merging.
/// Replays of *older* images (same base, but the chain moved on) still
/// reject with kStaleBase via the base-checksum pinning.
template <SlidingWindowCounter Counter>
class SketchReceiver {
 public:
  explicit SketchReceiver(const CompressionOptions& opts = {}) : opts_(opts) {}

  /// Decodes one image. On success returns the up-to-date sketch (owned
  /// by the receiver, valid until the next Receive/Reset).
  Result<const EcmSketch<Counter>*> Receive(SketchWireKind kind,
                                            const uint8_t* data, size_t size) {
    if (IsDuplicateOfLast(kind, data, size)) {
      ++duplicates_absorbed_;
      return &*base_;
    }
    switch (kind) {
      case SketchWireKind::kFull: {
        auto sketch = DeserializeSketch<Counter>(data, size);
        if (!sketch.ok()) return sketch.status();
        base_.emplace(std::move(*sketch));
        reference_.assign(data, data + size);
        has_version_ = false;
        NoteApplied(kind, data, size);
        return &*base_;
      }
      case SketchWireKind::kDelta: {
        if (!base_.has_value()) {
          return Status::StaleBase("delta image before any full snapshot");
        }
        SketchDeltaInfo info;
        auto full = ApplySketchDelta<Counter>(
            data, size, opts_.epoch, reference_, &*base_,
            has_version_ ? &base_version_ : nullptr, &info);
        if (!full.ok()) {
          // A post-image mismatch mutated the sketch before failing; the
          // stale/corrupt rejections leave it untouched.
          if (full.status().code() == StatusCode::kInternal) Reset();
          return full.status();
        }
        reference_ = std::move(*full);
        base_version_ = info.new_version;
        has_version_ = true;
        NoteApplied(kind, data, size);
        return &*base_;
      }
      case SketchWireKind::kRlz: {
        auto full = RlzDecode(data, size, reference_, opts_.epoch);
        if (!full.ok()) return full.status();
        auto sketch = DeserializeSketch<Counter>(*full);
        if (!sketch.ok()) return sketch.status();
        base_.emplace(std::move(*sketch));
        reference_ = std::move(*full);
        has_version_ = false;
        NoteApplied(kind, data, size);
        return &*base_;
      }
    }
    return Status::InvalidArgument("unknown sketch wire kind");
  }

  /// Drops the base: compressed images are rejected until the next full
  /// snapshot. Call on transport-level resync.
  void Reset() {
    base_.reset();
    reference_.clear();
    has_version_ = false;
    has_last_ = false;
  }

  /// Rejoin-epoch change: images from other epochs reject, and the base
  /// is dropped (the sender re-bases with a full snapshot on its side).
  void set_epoch(uint64_t epoch) {
    opts_.epoch = epoch;
    Reset();
  }
  uint64_t epoch() const { return opts_.epoch; }

  /// Last successfully decoded state, or nullptr before the first image.
  const EcmSketch<Counter>* sketch() const {
    return base_.has_value() ? &*base_ : nullptr;
  }

  /// Byte-identical re-deliveries absorbed without reapplying.
  uint64_t duplicates_absorbed() const { return duplicates_absorbed_; }

 private:
  /// True iff this image is byte-identical to the one just applied (and
  /// the decoded state is still live): the retransmit-duplicate case.
  bool IsDuplicateOfLast(SketchWireKind kind, const uint8_t* data,
                         size_t size) const {
    return has_last_ && base_.has_value() && kind == last_kind_ &&
           size == last_size_ &&
           wire_internal::WireChecksum(data, size) == last_checksum_;
  }

  void NoteApplied(SketchWireKind kind, const uint8_t* data, size_t size) {
    last_kind_ = kind;
    last_size_ = size;
    last_checksum_ = wire_internal::WireChecksum(data, size);
    has_last_ = true;
  }

  CompressionOptions opts_;
  std::optional<EcmSketch<Counter>> base_;
  std::vector<uint8_t> reference_;
  uint64_t base_version_ = 0;  // sender version chain (delta only)
  bool has_version_ = false;
  // Fingerprint of the last applied image, for duplicate absorption.
  bool has_last_ = false;
  SketchWireKind last_kind_ = SketchWireKind::kFull;
  size_t last_size_ = 0;
  uint64_t last_checksum_ = 0;
  uint64_t duplicates_absorbed_ = 0;
};

}  // namespace ecm

#endif  // ECM_DIST_COMPRESS_H_
