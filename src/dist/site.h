// One observation point of a distributed run (§5–§6): a counter-generic
// EcmSketch of the site's local stream plus, when a key domain is
// declared, a dyadic stack for heavy-hitter / range / quantile queries.
//
// This header is deliberately slim: single-site users (StreamEngine, the
// examples' local paths) get the Site abstraction without pulling in the
// multi-threaded ingest driver, wire serialization or the aggregation
// tree — those live in dist/runtime.h, which builds on this file.
// Exactly one ParallelIngest worker ever touches a site, so sites need
// no locks.

#ifndef ECM_DIST_SITE_H_
#define ECM_DIST_SITE_H_

#include <cstdint>
#include <optional>

#include "src/core/dyadic.h"
#include "src/core/ecm_sketch.h"
#include "src/dist/transport.h"
#include "src/stream/event.h"

namespace ecm {

/// One observation point of a distributed run: a local ECM-sketch of the
/// site's stream and, when a key domain is declared, a dyadic stack for
/// heavy-hitter / range / quantile queries over it.
template <SlidingWindowCounter Counter>
class Site {
 public:
  struct Options {
    int domain_bits = 0;  ///< > 0 attaches a DyadicEcm over 2^bits keys
  };

  Site(NodeId id, const EcmConfig& config, const Options& options = {})
      : id_(id), sketch_(config) {
    if (options.domain_bits > 0) {
      dyadic_.emplace(options.domain_bits, config);
    }
  }

  /// Registers one arrival at this site.
  void Ingest(uint64_t key, Timestamp ts, uint64_t count = 1) {
    sketch_.Add(key, ts, count);
    if (dyadic_) dyadic_->Add(key, ts, count);
    ++updates_;
  }

  /// Batched ingest: all events must belong to this site and arrive in
  /// timestamp order (any per-site subsequence of a stream qualifies).
  void IngestBatch(const StreamEvent* events, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      Ingest(events[i].key, events[i].ts, 1);
    }
  }

  NodeId id() const { return id_; }
  uint64_t updates() const { return updates_; }

  const EcmSketch<Counter>& sketch() const { return sketch_; }
  EcmSketch<Counter>& mutable_sketch() { return sketch_; }
  const DyadicEcm<Counter>* dyadic() const {
    return dyadic_ ? &*dyadic_ : nullptr;
  }

 private:
  NodeId id_;
  EcmSketch<Counter> sketch_;
  std::optional<DyadicEcm<Counter>> dyadic_;
  uint64_t updates_ = 0;
};

}  // namespace ecm

#endif  // ECM_DIST_SITE_H_
