#include "src/dist/periodic.h"

#include <algorithm>
#include <cmath>

#include "src/dist/serialize.h"

namespace ecm {

PeriodicAggregator::PeriodicAggregator(int num_sites,
                                       const EcmConfig& sketch_config,
                                       const Config& config)
    : sketch_config_(sketch_config), config_(config) {
  sites_.reserve(static_cast<size_t>(num_sites));
  for (int i = 0; i < num_sites; ++i) sites_.emplace_back(sketch_config_);
}

bool PeriodicAggregator::Process(int site_idx, uint64_t key, Timestamp ts,
                                 uint64_t count) {
  Site& site = sites_[static_cast<size_t>(site_idx)];
  site.local.Add(key, ts, count);
  ++stats_.updates;
  clock_ = std::max(clock_, site.local.Now());

  if (!site.snapshot.has_value()) {
    Push(&site, PushKind::kInitial);
    return true;
  }
  if (config_.period > 0 &&
      site.local.Now() - site.last_push_ts >= config_.period) {
    Push(&site, PushKind::kPeriodic);
    return true;
  }
  if (config_.drift_fraction > 0.0) {
    double l1 = site.local.EstimateL1(sketch_config_.window_len);
    if (std::abs(l1 - site.pushed_l1) >=
        config_.drift_fraction * std::max(site.pushed_l1, 1.0)) {
      Push(&site, PushKind::kDrift);
      return true;
    }
  }
  return false;
}

Status PeriodicAggregator::SyncAll() {
  for (Site& site : sites_) Push(&site, PushKind::kForced);
  return Status::OK();
}

void PeriodicAggregator::Push(Site* site, PushKind kind) {
  site->snapshot = site->local;  // models serialize -> wire -> deserialize
  site->last_push_ts = site->local.Now();
  site->pushed_l1 = site->local.EstimateL1(sketch_config_.window_len);
  ++stats_.pushes;
  if (kind == PushKind::kPeriodic) ++stats_.periodic_pushes;
  if (kind == PushKind::kDrift) ++stats_.drift_pushes;
  ++stats_.network.messages;
  stats_.network.bytes += SketchWireSize(site->local);
  merged_cache_.reset();
}

Result<const EcmSketch<ExponentialHistogram>*> PeriodicAggregator::MergedView()
    const {
  if (merged_cache_.has_value()) return &*merged_cache_;
  std::vector<const EcmSketch<ExponentialHistogram>*> snapshots;
  snapshots.reserve(sites_.size());
  for (const Site& site : sites_) {
    if (!site.snapshot.has_value()) {
      return Status::InvalidArgument(
          "PeriodicAggregator: some site has never pushed; call SyncAll() "
          "or wait for its first arrival");
    }
    snapshots.push_back(&*site.snapshot);
  }
  auto merged = EcmSketch<ExponentialHistogram>::Merge(
      snapshots, sketch_config_.epsilon_sw, sketch_config_.seed);
  if (!merged.ok()) return merged.status();
  merged_cache_ = std::move(*merged);
  return &*merged_cache_;
}

Result<EcmSketch<ExponentialHistogram>> PeriodicAggregator::GlobalView()
    const {
  auto view = MergedView();
  if (!view.ok()) return view.status();
  return **view;
}

Result<double> PeriodicAggregator::GlobalPointQuery(uint64_t key,
                                                    uint64_t range) const {
  auto view = MergedView();
  if (!view.ok()) return view.status();
  return (*view)->PointQuery(key, range);
}

}  // namespace ecm
