#include "src/dist/periodic.h"

namespace ecm {

// The scheduled propagator is counter-generic; the common instantiations
// are compiled once here.
template class PeriodicAggregatorT<ExponentialHistogram>;
template class PeriodicAggregatorT<RandomizedWave>;

}  // namespace ecm
