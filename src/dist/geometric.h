// Geometric-method threshold monitoring over distributed ECM-sketches
// (§6.2, after Sharfman et al.): sites monitor a nonlinear function f of
// the *average* statistics vector without continuous synchronization. At
// each sync the coordinator collects every site's statistics vector and
// broadcasts the global average e; between syncs each site i bounds the
// global average inside the ball centered at e + δ_i/2 with radius
// ‖δ_i‖/2 (δ_i = its local drift since the sync). While every site's ball
// stays strictly on one side of the surface f = T, the global value is
// certified on that side; a ball touching the surface is a local
// violation and forces a sync.
//
// Two monitors are provided:
//  * GeometricSelfJoinMonitor — f is the sliding-window self-join size F₂
//    (statistics vector = the site's full w×d counter-estimate grid);
//  * GeometricPointMonitor — f is one key's windowed count (statistics
//    vector = the d per-row estimates of that key), the paper's §1
//    distributed-trigger scenario.

#ifndef ECM_DIST_GEOMETRIC_H_
#define ECM_DIST_GEOMETRIC_H_

#include <cstdint>
#include <vector>

#include "src/core/ecm_sketch.h"
#include "src/dist/network_stats.h"
#include "src/util/result.h"

namespace ecm {

/// Counters every geometric monitor maintains.
struct MonitorStats {
  uint64_t updates = 0;             ///< arrivals processed
  uint64_t local_checks = 0;        ///< sphere tests performed
  uint64_t local_violations = 0;    ///< tests whose ball touched f = T
  uint64_t syncs = 0;               ///< global synchronizations (incl. initial)
  uint64_t crossings_signaled = 0;  ///< below->above transitions detected
  NetworkStats network;
};

/// Estimated global self-join size of `sites`' union stream over the
/// trailing `range`: merges the sketches order-preservingly (ε' =
/// `eps_prime_sw`) and evaluates F₂ on the result.
template <SlidingWindowCounter Counter>
Result<double> GlobalSelfJoin(const std::vector<EcmSketch<Counter>>& sites,
                              uint64_t range, double eps_prime_sw,
                              uint64_t seed = 0) {
  std::vector<const EcmSketch<Counter>*> ptrs;
  ptrs.reserve(sites.size());
  for (const auto& s : sites) ptrs.push_back(&s);
  auto merged = EcmSketch<Counter>::Merge(ptrs, eps_prime_sw, seed);
  if (!merged.ok()) return merged.status();
  return merged->SelfJoin(range);
}

/// Threshold monitor for the global sliding-window self-join size F₂.
class GeometricSelfJoinMonitor {
 public:
  struct Config {
    double threshold = 0.0;    ///< alarm when global F₂ >= threshold
    uint64_t check_every = 1;  ///< sphere-test cadence, in per-site updates
  };

  GeometricSelfJoinMonitor(int num_sites, const EcmConfig& sketch_config,
                           const Config& config);

  /// Routes one arrival to `site` and runs the local sphere test on its
  /// cadence. Returns true iff this arrival caused a global sync.
  bool Process(int site, uint64_t key, Timestamp ts, uint64_t count = 1);

  /// Side of the threshold established by the most recent sync.
  bool AboveThreshold() const { return above_; }

  /// Global F₂ estimate at the most recent sync.
  double GlobalEstimate() const { return estimate_; }

  const MonitorStats& stats() const { return stats_; }

  const EcmSketch<ExponentialHistogram>& site_sketch(int site) const {
    return sites_[static_cast<size_t>(site)];
  }

 private:
  std::vector<double> SiteVector(int site) const;
  bool SphereViolation(const std::vector<double>& current,
                       const std::vector<double>& at_sync) const;
  void Sync();

  EcmConfig sketch_config_;
  Config config_;
  std::vector<EcmSketch<ExponentialHistogram>> sites_;
  std::vector<std::vector<double>> v_sync_;  ///< per-site vector at last sync
  std::vector<double> e_avg_;                ///< global average at last sync
  std::vector<uint64_t> site_updates_;
  double estimate_ = 0.0;
  bool above_ = false;
  bool synced_once_ = false;
  MonitorStats stats_;
};

/// Threshold monitor for one key's global sliding-window count — the
/// distributed-trigger ("DDoS victim") scenario. Syncs ship only the d
/// per-row estimates of the watched key, so they cost 2·n·d doubles each.
class GeometricPointMonitor {
 public:
  struct Config {
    uint64_t key = 0;          ///< the watched key
    double threshold = 0.0;    ///< alarm when its global count >= threshold
    uint64_t check_every = 1;  ///< sphere-test cadence, in per-site updates
  };

  GeometricPointMonitor(int num_sites, const EcmConfig& sketch_config,
                        const Config& config);

  bool Process(int site, uint64_t key, Timestamp ts, uint64_t count = 1);

  bool AboveThreshold() const { return above_; }

  /// Global windowed-count estimate of the watched key at the last sync.
  double GlobalEstimate() const { return estimate_; }

  const MonitorStats& stats() const { return stats_; }

  const EcmSketch<ExponentialHistogram>& site_sketch(int site) const {
    return sites_[static_cast<size_t>(site)];
  }

 private:
  std::vector<double> SiteVector(int site) const;
  bool SphereViolation(const std::vector<double>& current,
                       const std::vector<double>& at_sync) const;
  void Sync();

  EcmConfig sketch_config_;
  Config config_;
  std::vector<EcmSketch<ExponentialHistogram>> sites_;
  std::vector<std::vector<double>> v_sync_;
  std::vector<double> e_avg_;
  std::vector<uint64_t> site_updates_;
  double estimate_ = 0.0;
  bool above_ = false;
  bool synced_once_ = false;
  MonitorStats stats_;
};

}  // namespace ecm

#endif  // ECM_DIST_GEOMETRIC_H_
