// Geometric-method threshold monitoring over distributed ECM-sketches
// (§6.2, after Sharfman et al.): sites monitor a nonlinear function f of
// the *average* statistics vector without continuous synchronization. At
// each sync the coordinator collects every site's statistics vector and
// broadcasts the global average e; between syncs each site i bounds the
// global average inside the ball centered at e + δ_i/2 with radius
// ‖δ_i‖/2 (δ_i = its local drift since the sync). While every site's ball
// stays strictly on one side of the surface f = T, the global value is
// certified on that side; a ball touching the surface is a local
// violation and forces a sync.
//
// Two monitors are provided, both counter-generic over the runtime's
// Site<Counter> and charging syncs through its Transport:
//  * GeometricSelfJoinMonitorT — f is the sliding-window self-join size F₂
//    (statistics vector = the site's full w×d counter-estimate grid);
//  * GeometricPointMonitorT — f is one key's windowed count (statistics
//    vector = the d per-row estimates of that key), the paper's §1
//    distributed-trigger scenario.
//
// The sync/cadence state machine is identical for every choice of f, so
// it lives once in GeometricMonitorBase (CRTP): ingest + drift
// maintenance + sphere-test cadence on the local path, collect + average
// + re-arm + wire charging on the sync path, and the stats aggregation.
// A derived monitor supplies only the geometry of its f:
//    UpdateDrift(st, key)   O(d) incremental drift maintenance
//    RefreshVector(st)      full statistics-vector rebuild
//    SphereViolation(st)    the local ball-vs-surface test
//    InstallAverage()       f on the fresh global average + per-site
//                           re-arm of f-specific ball state
//
// Drift tracking (the steady-state cost of the local sphere test):
//  * kIncremental (default) — each arrival touches exactly one counter
//    per row, so the site updates only those d statistics-vector entries
//    (located via the sketch's PointQueryRowsAt hook) and maintains
//    ‖δ_i‖² and the per-row ball-center norms by difference. The sphere
//    test is then O(d) per check instead of the O(w·d) full rebuild.
//    Window expiry is handled exactly by a per-counter expiry-event heap:
//    every tracked counter reports the next clock value at which its
//    estimate can change (Counter::NextEstimateChangeAt), the site keeps
//    those events in a min-heap, and each arrival drains the events that
//    came due before the sphere test — so the tracked vector equals the
//    rebuilt one at every check, with no staleness window. Counter types
//    without the NextEstimateChangeAt hook fall back to the legacy
//    periodic full refresh every `refresh_every` ticks.
//  * kRebuild — the legacy reference: every check re-materializes the
//    full statistics vector and recomputes the ball fresh. Kept for
//    differential tests (dist_runtime_test.cc verifies both modes sync
//    on exactly the same arrivals) and bench ablations.
//
// Parallel ingest: Process() is the sequential API (sync runs inline on
// the violating arrival). ParallelIngest drives the split API instead —
// LocalProcess() on the owning worker (site-local state only; returns
// true to request a sync) and GlobalSync() at the barrier with every
// worker quiescent.

#ifndef ECM_DIST_GEOMETRIC_H_
#define ECM_DIST_GEOMETRIC_H_

#include <algorithm>
#include <cmath>
#include <concepts>
#include <cstdint>
#include <limits>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "src/core/ecm_sketch.h"
#include "src/dist/network_stats.h"
#include "src/dist/runtime.h"
#include "src/dist/transport.h"
#include "src/util/result.h"

namespace ecm {

/// Counters every geometric monitor maintains.
struct MonitorStats {
  uint64_t updates = 0;             ///< arrivals processed
  uint64_t local_checks = 0;        ///< sphere tests performed
  uint64_t local_violations = 0;    ///< tests whose ball touched f = T
  uint64_t syncs = 0;               ///< global synchronizations (incl. initial)
  uint64_t crossings_signaled = 0;  ///< below->above transitions detected
  NetworkStats network;
};

/// How a site maintains its drift δ_i between syncs (see file comment).
enum class DriftTracking : uint8_t {
  kIncremental = 0,  ///< O(d) per check: update only touched entries
  kRebuild = 1,      ///< O(w·d) per check: full rebuild (legacy reference)
};

/// Estimated global self-join size of `sites`' union stream over the
/// trailing `range`: merges the sketches order-preservingly (ε' =
/// `eps_prime_sw`) and evaluates F₂ on the result.
template <SlidingWindowCounter Counter>
Result<double> GlobalSelfJoin(const std::vector<EcmSketch<Counter>>& sites,
                              uint64_t range, double eps_prime_sw,
                              uint64_t seed = 0) {
  std::vector<const EcmSketch<Counter>*> ptrs;
  ptrs.reserve(sites.size());
  for (const auto& s : sites) ptrs.push_back(&s);
  auto merged = EcmSketch<Counter>::Merge(ptrs, eps_prime_sw, seed);
  if (!merged.ok()) return merged.status();
  return merged->SelfJoin(range);
}

/// Knobs shared by every geometric monitor (the self-join monitor's
/// Config is exactly this; the point monitor's adds the watched key).
struct GeometricMonitorConfig {
  double threshold = 0.0;    ///< alarm when the global f >= threshold
  uint64_t check_every = 1;  ///< sphere-test cadence, in per-site updates
  DriftTracking drift = DriftTracking::kIncremental;
  /// Fallback staleness bound for counter types without the
  /// NextEstimateChangeAt hook (0 = window_len / 4): ticks between full
  /// refreshes of the incrementally tracked statistics vector. Counters
  /// with the hook (EH, RW) are tracked exactly via the expiry-event
  /// heap and never take the periodic refresh.
  uint64_t refresh_every = 0;
};

namespace geom_internal {

/// Counter types that can report the next clock value at which their
/// estimate can change with no further arrivals. Monitors over such
/// counters (EH, RW) track incremental drift exactly via the per-counter
/// expiry-event heap; anything else keeps the periodic refresh fallback.
template <typename C>
concept HasNextEstimateChange =
    requires(const C& c, Timestamp now, uint64_t range) {
      { c.NextEstimateChangeAt(now, range) } -> std::same_as<Timestamp>;
    };

/// Per-site state every monitor keeps; f-specific monitors may extend it
/// with extra ball bookkeeping (the self-join monitor's per-row norms).
template <SlidingWindowCounter Counter>
struct SiteStateBase {
  using ExpiryEvent = std::pair<Timestamp, uint32_t>;  // (when, cell)

  SiteStateBase(NodeId id, const EcmConfig& cfg, size_t dim)
      : node(id, cfg), v_sync(dim, 0.0), v_cur(dim, 0.0), scheduled(dim, 0) {}
  Site<Counter> node;
  std::vector<double> v_sync;  ///< statistics vector at the last sync
  std::vector<double> v_cur;   ///< tracked current statistics vector
  double radius_sq = 0.0;      ///< ‖δ‖²
  Timestamp last_refresh = 0;
  uint64_t updates = 0;        ///< arrivals (stats)
  uint64_t cadence_ticks = 0;  ///< arrivals since the initial sync
  uint64_t checks = 0;
  uint64_t violations = 0;
  /// Min-heap of pending estimate-change events (lazy deletion: an entry
  /// is live iff it matches `scheduled` for its cell). Unused when the
  /// counter lacks NextEstimateChangeAt or in kRebuild mode.
  std::priority_queue<ExpiryEvent, std::vector<ExpiryEvent>,
                      std::greater<ExpiryEvent>>
      expiry_heap;
  /// Earliest heap entry per cell; 0 = none pending.
  std::vector<Timestamp> scheduled;
};

template <SlidingWindowCounter Counter>
struct SelfJoinSiteState : SiteStateBase<Counter> {
  SelfJoinSiteState(NodeId id, const EcmConfig& cfg, size_t dim, int depth)
      : SiteStateBase<Counter>(id, cfg, dim),
        row_sq(static_cast<size_t>(depth), 0.0) {}
  std::vector<double> row_sq;  ///< per-row ‖e + δ/2‖² (ball-center norms)
};

}  // namespace geom_internal

/// CRTP base: the f-independent sync/cadence scaffolding (see the file
/// comment for the four hooks a derived monitor implements).
template <typename Derived, SlidingWindowCounter Counter, typename SiteState>
class GeometricMonitorBase {
 public:
  /// Routes one arrival to `site` and runs the local sphere test on its
  /// cadence; a violation synchronizes inline. Returns true iff this
  /// arrival caused a global sync.
  bool Process(int site, uint64_t key, Timestamp ts, uint64_t count = 1) {
    const bool violation = LocalProcess(site, key, ts, count);
    if (violation) GlobalSync();
    return violation;
  }

  /// Site-local half of Process (safe on the ParallelIngest worker that
  /// owns `site`): ingest, drift maintenance, sphere test. Returns true
  /// iff a global sync is required.
  bool LocalProcess(int site, uint64_t key, Timestamp ts, uint64_t count = 1) {
    SiteState& st = sites_[static_cast<size_t>(site)];
    st.node.Ingest(key, ts, count);
    ++st.updates;
    if (!synced_once_) return true;  // initial sync still outstanding
    if (config_.drift == DriftTracking::kIncremental) {
      if constexpr (geom_internal::HasNextEstimateChange<Counter>) {
        // Replay every estimate-change event the clock has passed before
        // folding in this arrival, so untouched entries are exact too.
        DrainExpiryEvents(&st);
      }
      derived().UpdateDrift(&st, key);
    }
    const uint64_t cadence = std::max<uint64_t>(config_.check_every, 1);
    if (++st.cadence_ticks % cadence != 0) return false;
    ++st.checks;
    if (config_.drift == DriftTracking::kRebuild) {
      derived().RefreshVector(&st);
    } else {
      if constexpr (!geom_internal::HasNextEstimateChange<Counter>) {
        // No expiry events available for this counter type: bound the
        // staleness from window expiry by the periodic full refresh.
        if (st.node.sketch().Now() - st.last_refresh >= refresh_period_) {
          derived().RefreshVector(&st);
        }
      }
    }
    if (!derived().SphereViolation(st)) return false;
    ++st.violations;
    return true;
  }

  /// Coordinator half: collects every site's statistics vector, installs
  /// the new global average and re-arms all drift state. Requires every
  /// worker quiescent (ParallelIngest's barrier, or the sequential path).
  void GlobalSync() {
    const size_t n = sites_.size();
    std::fill(e_avg_.begin(), e_avg_.end(), 0.0);
    for (SiteState& st : sites_) {
      derived().RefreshVector(&st);
      st.v_sync = st.v_cur;
      for (size_t k = 0; k < dim_; ++k) e_avg_[k] += st.v_sync[k];
    }
    for (double& v : e_avg_) v /= static_cast<double>(n);

    // δ = 0 at every site after a sync; the derived hook evaluates f on
    // the fresh average and re-arms its f-specific ball state.
    const bool was_above = above_;
    estimate_ = derived().InstallAverage();
    above_ = estimate_ >= config_.threshold;
    if (!was_above && above_) ++stats_.crossings_signaled;
    ++stats_.syncs;
    synced_once_ = true;
    for (SiteState& st : sites_) st.radius_sq = 0.0;
    if (config_.drift == DriftTracking::kIncremental) {
      for (SiteState& st : sites_) RebuildExpirySchedule(&st);
    }

    // Vectors up, the average back down — the sync's wire cost.
    for (const SiteState& st : sites_) {
      transport_->Send(st.node.id(), kCoordinatorNode, VectorWireSize(dim_));
    }
    for (const SiteState& st : sites_) {
      transport_->Send(kCoordinatorNode, st.node.id(), VectorWireSize(dim_));
    }
    stats_.network.messages += 2 * n;
    stats_.network.bytes += 2ull * n * VectorWireSize(dim_);
  }

  /// Side of the threshold established by the most recent sync.
  bool AboveThreshold() const { return above_; }

  /// Global estimate of f at the most recent sync.
  double GlobalEstimate() const { return estimate_; }

  /// Aggregated monitor counters (per-site tallies summed on demand, so
  /// parallel workers never contend on shared counters).
  MonitorStats stats() const {
    MonitorStats s = stats_;
    for (const SiteState& st : sites_) {
      s.updates += st.updates;
      s.local_checks += st.checks;
      s.local_violations += st.violations;
    }
    return s;
  }

  const EcmSketch<Counter>& site_sketch(int site) const {
    return sites_[static_cast<size_t>(site)].node.sketch();
  }

  Transport& transport() { return *transport_; }

 protected:
  GeometricMonitorBase(const EcmConfig& sketch_config,
                       const GeometricMonitorConfig& config,
                       Transport* transport, size_t dim)
      : sketch_config_(sketch_config),
        config_(config),
        transport_(transport),
        dim_(dim),
        e_avg_(dim, 0.0) {
    if (!transport_) {
      owned_transport_ = std::make_unique<LoopbackTransport>();
      transport_ = owned_transport_.get();
    }
    refresh_period_ =
        config_.refresh_every
            ? config_.refresh_every
            : std::max<uint64_t>(sketch_config_.window_len / 4, 1);
  }

  ~GeometricMonitorBase() = default;

  Derived& derived() { return static_cast<Derived&>(*this); }
  const Derived& derived() const {
    return static_cast<const Derived&>(*this);
  }

  // --- per-counter expiry-event heap (kIncremental, hook-aware counters) --
  //
  // Every cell of the tracked statistics vector is backed by one counter;
  // its estimate moves either when an arrival touches it (UpdateDrift
  // re-evaluates those cells directly) or when the window boundary slides
  // past retained content. For the latter, each cell keeps at most one
  // live heap entry at the counter's self-reported next change time;
  // DrainExpiryEvents replays the due entries before every sphere test, so
  // the incremental vector is exact — no periodic staleness refresh.

  /// Registers cell `cell`'s next estimate-change event. `when` == 0 means
  /// the estimate can never change again without an arrival. A later event
  /// than the one already pending is dropped: firing early is a harmless
  /// re-evaluate-and-reschedule, and the pending entry stays the earliest.
  void ScheduleCell(SiteState* st, uint32_t cell, Timestamp when) {
    if (when == 0) return;
    Timestamp& slot = st->scheduled[cell];
    if (slot != 0 && slot <= when) return;
    slot = when;
    st->expiry_heap.emplace(when, cell);
  }

  /// Replays every scheduled estimate-change event at or before the
  /// site's clock; each live event re-evaluates its cell and reschedules.
  void DrainExpiryEvents(SiteState* st) {
    const Timestamp now = st->node.sketch().Now();
    auto& heap = st->expiry_heap;
    while (!heap.empty() && heap.top().first <= now) {
      const auto [when, cell] = heap.top();
      heap.pop();
      if (st->scheduled[cell] != when) continue;  // superseded entry
      st->scheduled[cell] = 0;
      derived().ReevaluateCell(st, cell);
    }
  }

  /// Re-seeds the full schedule from scratch (after a sync refresh, when
  /// every cell was just re-evaluated exactly).
  void RebuildExpirySchedule(SiteState* st) {
    if constexpr (geom_internal::HasNextEstimateChange<Counter>) {
      st->expiry_heap = {};
      std::fill(st->scheduled.begin(), st->scheduled.end(), 0);
      const Timestamp now = st->node.sketch().Now();
      for (size_t k = 0; k < dim_; ++k) {
        ScheduleCell(st, static_cast<uint32_t>(k),
                     derived()
                         .CellCounter(*st, static_cast<uint32_t>(k))
                         .NextEstimateChangeAt(now,
                                               sketch_config_.window_len));
      }
    }
  }

  EcmConfig sketch_config_;
  GeometricMonitorConfig config_;
  Transport* transport_;
  std::unique_ptr<Transport> owned_transport_;
  size_t dim_;
  uint64_t refresh_period_;
  std::vector<SiteState> sites_;
  std::vector<double> e_avg_;  ///< global average at last sync
  double estimate_ = 0.0;
  bool above_ = false;
  bool synced_once_ = false;
  MonitorStats stats_;  ///< sync-side counters (updated under quiescence)
};

/// Threshold monitor for the global sliding-window self-join size F₂.
template <SlidingWindowCounter Counter>
class GeometricSelfJoinMonitorT
    : public GeometricMonitorBase<GeometricSelfJoinMonitorT<Counter>, Counter,
                                  geom_internal::SelfJoinSiteState<Counter>> {
  using SiteState = geom_internal::SelfJoinSiteState<Counter>;
  using Base = GeometricMonitorBase<GeometricSelfJoinMonitorT, Counter,
                                    SiteState>;
  friend Base;

 public:
  using Config = GeometricMonitorConfig;

  GeometricSelfJoinMonitorT(int num_sites, const EcmConfig& sketch_config,
                            const Config& config,
                            Transport* transport = nullptr)
      : Base(sketch_config, config, transport,
             static_cast<size_t>(sketch_config.width) *
                 sketch_config.depth) {
    this->sites_.reserve(static_cast<size_t>(num_sites));
    for (int i = 0; i < num_sites; ++i) {
      this->sites_.emplace_back(i, sketch_config, this->dim_,
                                sketch_config.depth);
    }
  }

 private:
  /// O(d) incremental maintenance: the arrival of `key` touched exactly
  /// one counter per row; re-evaluate those d entries and update ‖δ‖²
  /// and the per-row center norms by difference.
  void UpdateDrift(SiteState* st, uint64_t key) {
    const EcmSketch<Counter>& sk = st->node.sketch();
    const Timestamp now = sk.Now();
    double ests[kMaxSketchDepth];
    uint32_t cols[kMaxSketchDepth];
    sk.PointQueryRowsAt(key, this->sketch_config_.window_len, now, ests,
                        cols);
    const uint32_t width = this->sketch_config_.width;
    for (int j = 0; j < this->sketch_config_.depth; ++j) {
      const size_t k = static_cast<size_t>(j) * width + cols[j];
      if constexpr (geom_internal::HasNextEstimateChange<Counter>) {
        // The arrival changed this counter's content, so its pending
        // expiry event may be stale — reschedule even if the estimate
        // value happens to be unchanged right now.
        this->ScheduleCell(st, static_cast<uint32_t>(k),
                           sk.CounterAt(j, cols[j]).NextEstimateChangeAt(
                               now, this->sketch_config_.window_len));
      }
      const double new_v = ests[j];
      const double old_v = st->v_cur[k];
      if (new_v == old_v) continue;
      const double old_d = old_v - st->v_sync[k];
      const double new_d = new_v - st->v_sync[k];
      st->radius_sq += new_d * new_d - old_d * old_d;
      const double old_c = this->e_avg_[k] + 0.5 * old_d;
      const double new_c = this->e_avg_[k] + 0.5 * new_d;
      st->row_sq[static_cast<size_t>(j)] += new_c * new_c - old_c * old_c;
      st->v_cur[k] = new_v;
    }
  }

  /// The counter backing statistics-vector cell `k` (row-major grid).
  const Counter& CellCounter(const SiteState& st, uint32_t cell) const {
    const uint32_t width = this->sketch_config_.width;
    return st.node.sketch().CounterAt(static_cast<int>(cell / width),
                                      cell % width);
  }

  /// Expiry-event replay for one cell: window expiry moved (or may have
  /// moved) the cell's estimate with no arrival touching it. Same
  /// difference updates as UpdateDrift, then reschedule.
  void ReevaluateCell(SiteState* st, uint32_t cell) {
    const EcmSketch<Counter>& sk = st->node.sketch();
    const Timestamp now = sk.Now();
    const uint32_t width = this->sketch_config_.width;
    const int row = static_cast<int>(cell / width);
    const Counter& c = sk.CounterAt(row, cell % width);
    const uint64_t range = this->sketch_config_.window_len;
    const double new_v = c.Estimate(now, range);
    const double old_v = st->v_cur[cell];
    if (new_v != old_v) {
      const double old_d = old_v - st->v_sync[cell];
      const double new_d = new_v - st->v_sync[cell];
      st->radius_sq += new_d * new_d - old_d * old_d;
      const double old_c = this->e_avg_[cell] + 0.5 * old_d;
      const double new_c = this->e_avg_[cell] + 0.5 * new_d;
      st->row_sq[static_cast<size_t>(row)] += new_c * new_c - old_c * old_c;
      st->v_cur[cell] = new_v;
    }
    if constexpr (geom_internal::HasNextEstimateChange<Counter>) {
      this->ScheduleCell(st, cell, c.NextEstimateChangeAt(now, range));
    }
  }

  /// Full O(w·d) re-materialization of the site's statistics vector and
  /// exact recomputation of the ball quantities — the rebuild reference,
  /// the incremental mode's periodic staleness refresh, and the sync
  /// collection path.
  void RefreshVector(SiteState* st) const {
    const EcmSketch<Counter>& sk = st->node.sketch();
    const Timestamp now = sk.Now();
    const uint32_t width = this->sketch_config_.width;
    for (int row = 0; row < this->sketch_config_.depth; ++row) {
      sk.EstimateRowAt(row, this->sketch_config_.window_len, now,
                       &st->v_cur[static_cast<size_t>(row) * width]);
    }
    double radius_sq = 0.0;
    for (size_t k = 0; k < this->dim_; ++k) {
      const double drift = st->v_cur[k] - st->v_sync[k];
      radius_sq += drift * drift;
    }
    st->radius_sq = radius_sq;
    for (int row = 0; row < this->sketch_config_.depth; ++row) {
      double norm_sq = 0.0;
      for (uint32_t col = 0; col < width; ++col) {
        const size_t k = static_cast<size_t>(row) * width + col;
        const double c =
            this->e_avg_[k] + 0.5 * (st->v_cur[k] - st->v_sync[k]);
        norm_sq += c * c;
      }
      st->row_sq[static_cast<size_t>(row)] = norm_sq;
    }
    st->last_refresh = now;
  }

  /// O(d) sphere test from the maintained ball quantities: f over the
  /// ball is bounded row by row by (‖c_row‖ ± r)².
  bool SphereViolation(const SiteState& st) const {
    const double n = static_cast<double>(this->sites_.size());
    const double threshold_avg = this->config_.threshold / (n * n);
    const double radius = 0.5 * std::sqrt(std::max(st.radius_sq, 0.0));
    double bound = std::numeric_limits<double>::infinity();
    for (int row = 0; row < this->sketch_config_.depth; ++row) {
      const double norm =
          std::sqrt(std::max(st.row_sq[static_cast<size_t>(row)], 0.0));
      const double extreme =
          this->above_ ? std::max(norm - radius, 0.0) : norm + radius;
      bound = std::min(bound, extreme * extreme);
    }
    return this->above_ ? bound < threshold_avg : bound >= threshold_avg;
  }

  /// After a sync every ball center collapses onto e_avg, so the per-row
  /// center norms are shared across sites — and f on the average vector
  /// is their row-wise minimum, scaled by n².
  double InstallAverage() {
    const uint32_t width = this->sketch_config_.width;
    std::vector<double> base_row_sq(
        static_cast<size_t>(this->sketch_config_.depth));
    double f_avg = std::numeric_limits<double>::infinity();
    for (int row = 0; row < this->sketch_config_.depth; ++row) {
      double norm_sq = 0.0;
      for (uint32_t col = 0; col < width; ++col) {
        const double v = this->e_avg_[static_cast<size_t>(row) * width + col];
        norm_sq += v * v;
      }
      base_row_sq[static_cast<size_t>(row)] = norm_sq;
      f_avg = std::min(f_avg, norm_sq);
    }
    for (SiteState& st : this->sites_) st.row_sq = base_row_sq;
    const double n = static_cast<double>(this->sites_.size());
    return n * n * f_avg;
  }
};

/// Threshold monitor for one key's global sliding-window count — the
/// distributed-trigger ("DDoS victim") scenario. Syncs ship only the d
/// per-row estimates of the watched key, so they cost 2·n·d doubles each.
template <SlidingWindowCounter Counter>
class GeometricPointMonitorT
    : public GeometricMonitorBase<GeometricPointMonitorT<Counter>, Counter,
                                  geom_internal::SiteStateBase<Counter>> {
  using SiteState = geom_internal::SiteStateBase<Counter>;
  using Base =
      GeometricMonitorBase<GeometricPointMonitorT, Counter, SiteState>;
  friend Base;

 public:
  struct Config : GeometricMonitorConfig {
    uint64_t key = 0;  ///< the watched key
  };

  GeometricPointMonitorT(int num_sites, const EcmConfig& sketch_config,
                         const Config& config, Transport* transport = nullptr)
      : Base(sketch_config, config, transport,
             static_cast<size_t>(sketch_config.depth)),
        key_(config.key) {
    this->sites_.reserve(static_cast<size_t>(num_sites));
    for (int i = 0; i < num_sites; ++i) {
      this->sites_.emplace_back(i, sketch_config, this->dim_);
    }
    // All sites share the hash seed, so the watched key's row buckets are
    // site-independent.
    std::fill(watched_cols_, watched_cols_ + kMaxSketchDepth, 0u);
    if (!this->sites_.empty()) {
      this->sites_[0].node.sketch().RowBuckets(key_, watched_cols_);
    }
  }

 private:
  /// The watched key's row-j entry moves only when an arrival collides
  /// with it in row j; compare the arrival's buckets against the watched
  /// buckets and re-evaluate just the collided rows.
  void UpdateDrift(SiteState* st, uint64_t key) {
    const EcmSketch<Counter>& sk = st->node.sketch();
    uint32_t cols[kMaxSketchDepth];
    sk.RowBuckets(key, cols);
    const Timestamp now = sk.Now();
    for (int j = 0; j < this->sketch_config_.depth; ++j) {
      if (cols[j] != watched_cols_[j]) continue;
      const Counter& c = sk.CounterAt(j, watched_cols_[j]);
      if constexpr (geom_internal::HasNextEstimateChange<Counter>) {
        this->ScheduleCell(
            st, static_cast<uint32_t>(j),
            c.NextEstimateChangeAt(now, this->sketch_config_.window_len));
      }
      const double new_v = c.Estimate(now, this->sketch_config_.window_len);
      const size_t k = static_cast<size_t>(j);
      const double old_v = st->v_cur[k];
      if (new_v == old_v) continue;
      const double old_d = old_v - st->v_sync[k];
      const double new_d = new_v - st->v_sync[k];
      st->radius_sq += new_d * new_d - old_d * old_d;
      st->v_cur[k] = new_v;
    }
  }

  /// Cell j of the watched key's statistics vector = row j's counter at
  /// the key's bucket.
  const Counter& CellCounter(const SiteState& st, uint32_t cell) const {
    return st.node.sketch().CounterAt(static_cast<int>(cell),
                                      watched_cols_[cell]);
  }

  /// Expiry-event replay for row `cell` (see the self-join monitor).
  void ReevaluateCell(SiteState* st, uint32_t cell) {
    const EcmSketch<Counter>& sk = st->node.sketch();
    const Timestamp now = sk.Now();
    const Counter& c =
        sk.CounterAt(static_cast<int>(cell), watched_cols_[cell]);
    const uint64_t range = this->sketch_config_.window_len;
    const double new_v = c.Estimate(now, range);
    const double old_v = st->v_cur[cell];
    if (new_v != old_v) {
      const double old_d = old_v - st->v_sync[cell];
      const double new_d = new_v - st->v_sync[cell];
      st->radius_sq += new_d * new_d - old_d * old_d;
      st->v_cur[cell] = new_v;
    }
    if constexpr (geom_internal::HasNextEstimateChange<Counter>) {
      this->ScheduleCell(st, cell, c.NextEstimateChangeAt(now, range));
    }
  }

  void RefreshVector(SiteState* st) const {
    const EcmSketch<Counter>& sk = st->node.sketch();
    const Timestamp now = sk.Now();
    sk.PointQueryRowsAt(key_, this->sketch_config_.window_len, now,
                        st->v_cur.data());
    double radius_sq = 0.0;
    for (size_t k = 0; k < this->dim_; ++k) {
      const double drift = st->v_cur[k] - st->v_sync[k];
      radius_sq += drift * drift;
    }
    st->radius_sq = radius_sq;
    st->last_refresh = now;
  }

  /// f = min_j is 1-Lipschitz: over the ball it stays within ±r of
  /// min_j c_j, computed fresh from the d tracked entries (O(d)).
  bool SphereViolation(const SiteState& st) const {
    const double n = static_cast<double>(this->sites_.size());
    const double threshold_avg = this->config_.threshold / n;
    const double radius = 0.5 * std::sqrt(std::max(st.radius_sq, 0.0));
    double min_center = std::numeric_limits<double>::infinity();
    for (size_t k = 0; k < this->dim_; ++k) {
      min_center = std::min(
          min_center,
          this->e_avg_[k] + 0.5 * (st.v_cur[k] - st.v_sync[k]));
    }
    return this->above_ ? min_center - radius < threshold_avg
                        : min_center + radius >= threshold_avg;
  }

  /// f on the average is the minimum per-row estimate, scaled by n; no
  /// extra per-site ball state to re-arm beyond the shared ‖δ‖² reset.
  double InstallAverage() {
    return static_cast<double>(this->sites_.size()) *
           *std::min_element(this->e_avg_.begin(), this->e_avg_.end());
  }

  const uint64_t key_;
  uint32_t watched_cols_[kMaxSketchDepth];
};

/// The paper's default instantiations (ECM-EH sites).
using GeometricSelfJoinMonitor =
    GeometricSelfJoinMonitorT<ExponentialHistogram>;
using GeometricPointMonitor = GeometricPointMonitorT<ExponentialHistogram>;

// Compiled once in geometric.cc for the common counter types.
extern template class GeometricSelfJoinMonitorT<ExponentialHistogram>;
extern template class GeometricSelfJoinMonitorT<RandomizedWave>;
extern template class GeometricPointMonitorT<ExponentialHistogram>;
extern template class GeometricPointMonitorT<RandomizedWave>;

}  // namespace ecm

#endif  // ECM_DIST_GEOMETRIC_H_
