#include "src/dist/aggregation_tree.h"

#include <cmath>

namespace ecm {

int TreeHeight(size_t num_leaves) {
  int h = 0;
  size_t capacity = 1;
  while (capacity < num_leaves) {
    capacity *= 2;
    ++h;
  }
  return h;
}

double MultiLevelErrorBound(double epsilon, int height) {
  return static_cast<double>(height) * epsilon * (1.0 + epsilon) + epsilon;
}

double LeafEpsilonForTarget(double target, int height) {
  if (height <= 0) return target;
  // Solve h·ε(1+ε) + ε = target for ε: hε² + (h+1)ε − target = 0.
  const double h = static_cast<double>(height);
  const double b = h + 1.0;
  return (std::sqrt(b * b + 4.0 * h * target) - b) / (2.0 * h);
}

}  // namespace ecm
