// Network-transfer accounting shared by the distributed substrates
// (aggregation tree, scheduled propagation, geometric monitoring). Bytes
// are exact wire sizes as produced by dist/serialize.h, so every bench
// and test charges the same currency.

#ifndef ECM_DIST_NETWORK_STATS_H_
#define ECM_DIST_NETWORK_STATS_H_

#include <cstdint>

namespace ecm {

/// Cumulative transfer volume of a distributed protocol run.
struct NetworkStats {
  uint64_t messages = 0;  ///< point-to-point transfers
  uint64_t bytes = 0;     ///< total payload bytes shipped
};

}  // namespace ecm

#endif  // ECM_DIST_NETWORK_STATS_H_
