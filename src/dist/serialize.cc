#include "src/dist/serialize.h"

#include <cmath>

namespace ecm {
namespace {

constexpr uint8_t kConfigMagic[4] = {'E', 'C', 'M', 'C'};

// Config wire version. v2 added the explicit version byte itself and the
// hash-reduction field (the fast-range bucket mapping re-maps every key,
// so decoding a v1 sketch with v2 code would silently answer queries from
// the wrong buckets — stale encodings must be rejected, not misread).
constexpr uint8_t kConfigWireVersion = 2;

// Upper bounds accepted from the wire. Real configs are far below these
// (width = ceil(e/ε_cm), depth = ceil(ln 1/δ_cm)); the caps exist so a
// corrupt dimension field cannot request a multi-gigabyte allocation.
constexpr uint64_t kMaxWidth = 1u << 22;
constexpr int kMaxDepth = 64;
constexpr uint64_t kMaxCounters = 1u << 22;

// Field domains accepted from the wire. epsilon_sw / delta_sw flow into
// the counter constructors, which require (0,1] / [0,1); the total-budget
// fields are informational but still bounded (multi-level merges can push
// the total epsilon above 1, never to absurd values).
bool ValidTotalBudget(double v) {
  return std::isfinite(v) && v > 0.0 && v <= 16.0;
}
bool ValidComponentEpsilon(double v) {
  return std::isfinite(v) && v > 0.0 && v <= 1.0;
}
bool ValidDelta(double v) { return std::isfinite(v) && v >= 0.0 && v < 1.0; }
// RW counters derive their delta from the total when delta_sw is unset,
// so the total delta must be a usable probability itself.
bool ValidTotalDelta(double v) {
  return std::isfinite(v) && v > 0.0 && v < 1.0;
}

}  // namespace

namespace wire_internal {

uint64_t WireChecksum(const uint8_t* data, size_t size) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

Status CheckWireHeader(const uint8_t* data, size_t size,
                       const uint8_t (&magic)[4], ByteReader* r) {
  constexpr size_t kHeaderBytes = sizeof(magic) + sizeof(uint64_t);
  if (size < kHeaderBytes) {
    return Status::Corruption("wire image shorter than header");
  }
  for (uint8_t expected : magic) {
    auto b = r->GetFixed<uint8_t>();
    if (!b.ok()) return b.status();
    if (*b != expected) return Status::Corruption("bad wire image magic");
  }
  auto checksum = r->GetFixed<uint64_t>();
  if (!checksum.ok()) return checksum.status();
  if (WireChecksum(data + kHeaderBytes, size - kHeaderBytes) != *checksum) {
    return Status::Corruption("wire image checksum mismatch");
  }
  return Status::OK();
}

std::vector<uint8_t> WrapWirePayload(const uint8_t (&magic)[4],
                                     const ByteWriter& payload) {
  ByteWriter out;
  out.PutRaw(magic, sizeof(magic));
  out.PutFixed<uint64_t>(WireChecksum(payload.bytes().data(), payload.size()));
  out.PutRaw(payload.bytes().data(), payload.size());
  return out.MoveBytes();
}

}  // namespace wire_internal

void SerializeEcmConfig(const EcmConfig& cfg, ByteWriter* w) {
  w->PutRaw(kConfigMagic, sizeof(kConfigMagic));
  w->PutFixed<uint8_t>(kConfigWireVersion);
  w->PutFixed<uint8_t>(static_cast<uint8_t>(cfg.hash_reduction));
  w->PutFixed<uint8_t>(static_cast<uint8_t>(cfg.mode));
  w->PutVarint(cfg.window_len);
  w->PutVarint(cfg.max_arrivals);
  w->PutVarint(cfg.width);
  w->PutVarint(static_cast<uint64_t>(cfg.depth));
  w->PutFixed<uint64_t>(cfg.seed);
  w->PutDouble(cfg.epsilon);
  w->PutDouble(cfg.delta);
  w->PutDouble(cfg.epsilon_cm);
  w->PutDouble(cfg.epsilon_sw);
  w->PutDouble(cfg.delta_cm);
  w->PutDouble(cfg.delta_sw);
}

Result<EcmConfig> DeserializeEcmConfig(ByteReader* r) {
  for (uint8_t expected : kConfigMagic) {
    auto b = r->GetFixed<uint8_t>();
    if (!b.ok()) return b.status();
    if (*b != expected) return Status::Corruption("bad config magic");
  }
  auto version = r->GetFixed<uint8_t>();
  if (!version.ok()) return version.status();
  if (*version != kConfigWireVersion) {
    return Status::Corruption("config: unsupported wire version");
  }
  EcmConfig cfg;
  auto reduction = r->GetFixed<uint8_t>();
  if (!reduction.ok()) return reduction.status();
  if (*reduction != static_cast<uint8_t>(HashReduction::kModulo) &&
      *reduction != static_cast<uint8_t>(HashReduction::kFastRange)) {
    return Status::Corruption("config: unknown hash reduction");
  }
  cfg.hash_reduction = static_cast<HashReduction>(*reduction);
  auto mode = r->GetFixed<uint8_t>();
  if (!mode.ok()) return mode.status();
  if (*mode > static_cast<uint8_t>(WindowMode::kCountBased)) {
    return Status::Corruption("config: unknown window mode");
  }
  cfg.mode = static_cast<WindowMode>(*mode);

  auto window_len = r->GetVarint();
  if (!window_len.ok()) return window_len.status();
  if (*window_len == 0) return Status::Corruption("config: zero window");
  cfg.window_len = *window_len;

  auto max_arrivals = r->GetVarint();
  if (!max_arrivals.ok()) return max_arrivals.status();
  if (*max_arrivals == 0) {
    return Status::Corruption("config: zero max_arrivals");
  }
  cfg.max_arrivals = *max_arrivals;

  auto width = r->GetVarint();
  if (!width.ok()) return width.status();
  auto depth = r->GetVarint();
  if (!depth.ok()) return depth.status();
  if (*width == 0 || *width > kMaxWidth || *depth == 0 ||
      *depth > static_cast<uint64_t>(kMaxDepth) ||
      *width * *depth > kMaxCounters) {
    return Status::Corruption("config: implausible sketch dimensions");
  }
  cfg.width = static_cast<uint32_t>(*width);
  cfg.depth = static_cast<int>(*depth);

  auto seed = r->GetFixed<uint64_t>();
  if (!seed.ok()) return seed.status();
  cfg.seed = *seed;

  struct Field {
    double* dst;
    bool (*valid)(double);
  };
  const Field fields[] = {
      {&cfg.epsilon, ValidTotalBudget},
      {&cfg.delta, ValidTotalDelta},
      {&cfg.epsilon_cm, ValidComponentEpsilon},
      {&cfg.epsilon_sw, ValidComponentEpsilon},
      {&cfg.delta_cm, ValidDelta},
      {&cfg.delta_sw, ValidDelta},
  };
  for (const Field& field : fields) {
    auto v = r->GetDouble();
    if (!v.ok()) return v.status();
    if (!field.valid(*v)) {
      return Status::Corruption("config: error parameter out of range");
    }
    *field.dst = *v;
  }
  return cfg;
}

}  // namespace ecm
