// Balanced-binary-tree aggregation of per-site ECM-sketches (§5.1): leaves
// pair up and merge order-preservingly level by level until one root sketch
// summarizes the union stream. Each merge ships both children to the
// parent, so the network cost is 2 transfers per merge at the children's
// exact wire size; an odd survivor is carried to the next level for free.
//
// Error growth: each of the h = ceil(log2 n) merge levels inflates the
// window error by ε' + εε' (Theorem 4), giving the multi-level worst case
// hε(1+ε) + ε when every level uses ε' = ε. LeafEpsilonForTarget inverts
// that bound so leaves can be over-provisioned to meet a root target.

#ifndef ECM_DIST_AGGREGATION_TREE_H_
#define ECM_DIST_AGGREGATION_TREE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "src/core/ecm_sketch.h"
#include "src/dist/network_stats.h"
#include "src/dist/serialize.h"
#include "src/dist/transport.h"
#include "src/util/result.h"

namespace ecm {

/// Height of the balanced binary aggregation tree over `num_leaves` sites:
/// ceil(log2 n) merge rounds (0 for a single leaf).
int TreeHeight(size_t num_leaves);

/// Worst-case window error at the root after `height` merge levels when
/// every level merges with ε' = ε: hε(1+ε) + ε (§5.1).
double MultiLevelErrorBound(double epsilon, int height);

/// Inverts MultiLevelErrorBound: the leaf ε that yields exactly `target`
/// at the root of a `height`-level tree.
double LeafEpsilonForTarget(double target, int height);

/// Outcome of one full tree aggregation.
template <SlidingWindowCounter Counter>
struct AggregationResult {
  EcmSketch<Counter> root;  ///< sketch of the union stream
  int height = 0;           ///< merge rounds executed
  NetworkStats network;     ///< exact transfer accounting
};

/// Aggregates per-site sketches (by pointer — no leaf copies) up a
/// balanced binary tree. `eps_prime_sw` is the window error parameter of
/// every merge level (Theorem 4's ε'); defaults to the leaves' own ε_sw.
/// Requires at least one leaf and mutually compatible, time-based
/// sketches (count-based merges are impossible, paper Fig. 2 —
/// EcmSketch::Merge rejects them).
///
/// Every merge ships both children; the transfers are charged to the
/// result's NetworkStats and, when a `transport` is given, also through
/// it — the runtime's single accounting currency (dist/transport.h).
template <SlidingWindowCounter Counter>
Result<AggregationResult<Counter>> AggregateTreePtrs(
    const std::vector<const EcmSketch<Counter>*>& leaves,
    double eps_prime_sw = -1.0, Transport* transport = nullptr) {
  if (leaves.empty()) {
    return Status::InvalidArgument("AggregateTree: no leaves");
  }
  const double eps =
      eps_prime_sw > 0.0 ? eps_prime_sw : leaves[0]->config().epsilon_sw;
  if (leaves.size() == 1) {
    return AggregationResult<Counter>{*leaves[0], 0, NetworkStats{}};
  }

  std::vector<const EcmSketch<Counter>*> level = leaves;
  // Owns every merged intermediate; deque keeps their addresses stable
  // while pointers to them ride up the tree.
  std::deque<EcmSketch<Counter>> arena;
  NetworkStats net;
  int height = 0;
  const uint64_t seed_base = leaves[0]->config().seed;
  while (level.size() > 1) {
    ++height;
    std::vector<const EcmSketch<Counter>*> next;
    next.reserve((level.size() + 1) / 2);
    size_t i = 0;
    for (; i + 1 < level.size(); i += 2) {
      const size_t left = SketchWireSize(*level[i]);
      const size_t right = SketchWireSize(*level[i + 1]);
      net.messages += 2;
      net.bytes += left + right;
      if (transport) {
        const NodeId parent = static_cast<NodeId>(i / 2);
        transport->Send(static_cast<NodeId>(i), parent, left);
        transport->Send(static_cast<NodeId>(i + 1), parent, right);
      }
      auto merged = EcmSketch<Counter>::Merge(
          {level[i], level[i + 1]}, eps,
          Mix64(seed_base ^ (0x5851F42D4C957F2DULL * (height * 4096 + i + 1))));
      if (!merged.ok()) return merged.status();
      arena.push_back(std::move(*merged));
      next.push_back(&arena.back());
    }
    if (i < level.size()) {
      next.push_back(level[i]);  // odd survivor rides up for free
    }
    level = std::move(next);
  }
  // With >= 2 leaves the root is always the last merge, owned by the arena.
  return AggregationResult<Counter>{std::move(arena.back()), height, net};
}

/// Value-vector convenience wrapper over AggregateTreePtrs.
template <SlidingWindowCounter Counter>
Result<AggregationResult<Counter>> AggregateTree(
    const std::vector<EcmSketch<Counter>>& leaves, double eps_prime_sw = -1.0,
    Transport* transport = nullptr) {
  std::vector<const EcmSketch<Counter>*> ptrs;
  ptrs.reserve(leaves.size());
  for (const auto& leaf : leaves) ptrs.push_back(&leaf);
  return AggregateTreePtrs(ptrs, eps_prime_sw, transport);
}

}  // namespace ecm

#endif  // ECM_DIST_AGGREGATION_TREE_H_
