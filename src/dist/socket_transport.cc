#include "src/dist/socket_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "src/util/bytes.h"

namespace ecm {
namespace {

using Clock = std::chrono::steady_clock;

// FNV-1a, streamable (same polynomial as dist/serialize's WireChecksum;
// computed incrementally here because a frame checksum spans the header
// fields and the payload without concatenating them).
constexpr uint64_t kFnvOffset = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvExtend(uint64_t h, const uint8_t* data, size_t size) {
  for (size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= kFnvPrime;
  }
  return h;
}

constexpr uint8_t kFrameMagic[4] = {'E', 'C', 'M', 'F'};
// Offsets inside the fixed header.
constexpr size_t kChecksummedOffset = sizeof(kFrameMagic);  // type..len
constexpr size_t kLenOffset = 4 + 1 + 4 + 4 + 8;
constexpr size_t kCrcOffset = kLenOffset + 4;
constexpr size_t kChecksummedHeaderBytes = kCrcOffset - kChecksummedOffset;

bool ValidFrameType(uint8_t t) {
  return t >= static_cast<uint8_t>(FrameType::kHello) &&
         t <= static_cast<uint8_t>(FrameType::kSketchRlz);
}

// Errnos a retry against the same peer can plausibly outlive: the peer
// crashed, the link flapped, or the route blinked. Everything else
// (EBADF, EFAULT, ...) is a local programming/resource error — fatal.
bool RetryableErrno(int err) {
  return err == ECONNRESET || err == EPIPE || err == ECONNREFUSED ||
         err == ETIMEDOUT || err == ENETUNREACH || err == EHOSTUNREACH ||
         err == ENOTCONN;
}

// Writes all of `data` to `fd`, surviving partial writes and EINTR.
// Transient link failures classify as kUnavailable (IsRetryable), so the
// sender loop knows to heal the connection instead of going sticky.
Status WriteAll(int fd, const uint8_t* data, size_t size) {
  if (fd < 0) return Status::Unavailable("socket write: not connected");
  size_t off = 0;
  while (off < size) {
    ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string msg =
          std::string("socket write: ") + std::strerror(errno);
      return RetryableErrno(errno) ? Status::Unavailable(msg)
                                   : Status::IOError(msg);
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

// One blocking dial. Returns the connected fd (TCP_NODELAY set) or -1.
int DialOnce(const sockaddr_storage& addr) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(sockaddr_in)) != 0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

uint64_t NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          Clock::now().time_since_epoch())
          .count());
}

}  // namespace

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

std::vector<uint8_t> EncodeFrame(const Frame& frame) {
  ByteWriter w;
  w.Reserve(kFrameHeaderBytes + frame.payload.size());
  w.PutRaw(kFrameMagic, sizeof(kFrameMagic));
  w.PutFixed<uint8_t>(static_cast<uint8_t>(frame.type));
  w.PutFixed<int32_t>(frame.from);
  w.PutFixed<int32_t>(frame.to);
  w.PutFixed<uint64_t>(frame.seq);
  w.PutFixed<uint32_t>(static_cast<uint32_t>(frame.payload.size()));
  uint64_t crc = FnvExtend(kFnvOffset, w.bytes().data() + kChecksummedOffset,
                           kChecksummedHeaderBytes);
  crc = FnvExtend(crc, frame.payload.data(), frame.payload.size());
  w.PutFixed<uint64_t>(crc);
  w.PutRaw(frame.payload.data(), frame.payload.size());
  return w.MoveBytes();
}

void FrameDecoder::Feed(const uint8_t* data, size_t size) {
  // Compact the consumed prefix before it dominates the buffer.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + size);
}

Result<std::optional<Frame>> FrameDecoder::Next() {
  if (corrupt_) {
    return Status::Corruption("frame stream already corrupt");
  }
  if (buffered() < kFrameHeaderBytes) return std::optional<Frame>{};
  const uint8_t* h = buf_.data() + pos_;
  if (std::memcmp(h, kFrameMagic, sizeof(kFrameMagic)) != 0) {
    corrupt_ = true;
    return Status::Corruption("bad frame magic");
  }
  uint32_t len;
  std::memcpy(&len, h + kLenOffset, sizeof(len));
  if (len > kMaxFramePayload) {
    corrupt_ = true;
    return Status::Corruption("oversized frame payload length");
  }
  if (buffered() < kFrameHeaderBytes + len) return std::optional<Frame>{};
  uint64_t expected;
  std::memcpy(&expected, h + kCrcOffset, sizeof(expected));
  uint64_t crc =
      FnvExtend(kFnvOffset, h + kChecksummedOffset, kChecksummedHeaderBytes);
  crc = FnvExtend(crc, h + kFrameHeaderBytes, len);
  if (crc != expected) {
    corrupt_ = true;
    return Status::Corruption("frame checksum mismatch");
  }
  if (!ValidFrameType(h[kChecksummedOffset])) {
    corrupt_ = true;
    return Status::Corruption("unknown frame type");
  }
  Frame f;
  f.type = static_cast<FrameType>(h[kChecksummedOffset]);
  int32_t from;
  int32_t to;
  std::memcpy(&from, h + 5, sizeof(from));
  std::memcpy(&to, h + 9, sizeof(to));
  std::memcpy(&f.seq, h + 13, sizeof(f.seq));
  f.from = from;
  f.to = to;
  f.payload.assign(h + kFrameHeaderBytes, h + kFrameHeaderBytes + len);
  pos_ += kFrameHeaderBytes + len;
  return std::optional<Frame>{std::move(f)};
}

std::vector<uint8_t> EncodeHelloPayload(uint32_t epoch) {
  ByteWriter w;
  w.PutVarint(epoch);
  return w.MoveBytes();
}

Result<uint32_t> DecodeHelloPayload(const std::vector<uint8_t>& payload) {
  ByteReader r(payload);
  auto epoch = r.GetVarint();
  if (!epoch.ok()) return epoch.status();
  if (*epoch == 0 || *epoch > UINT32_MAX) {
    return Status::Corruption("hello epoch out of range");
  }
  return static_cast<uint32_t>(*epoch);
}

// ---------------------------------------------------------------------------
// SocketTransport
// ---------------------------------------------------------------------------

Result<std::unique_ptr<SocketTransport>> SocketTransport::Connect(
    const std::string& host, int port, NodeId self, const Options& options) {
  sockaddr_in addr4{};
  addr4.sin_family = AF_INET;
  addr4.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr4.sin_addr) != 1) {
    return Status::InvalidArgument("SocketTransport: bad IPv4 address " +
                                   host);
  }
  sockaddr_storage addr{};
  std::memcpy(&addr, &addr4, sizeof(addr4));
  int fd = -1;
  const int attempts = options.connect_attempts > 0 ? options.connect_attempts
                                                    : 1;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    fd = DialOnce(addr);
    if (fd >= 0) break;
    if (attempt + 1 < attempts) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          BackoffDelayMs(options.backoff, static_cast<uint32_t>(attempt))));
    }
  }
  if (fd < 0) {
    // Retryable by definition: the server may simply not be up yet.
    return Status::Unavailable("SocketTransport: connect to " + host + ":" +
                               std::to_string(port) + " failed");
  }
  std::unique_ptr<SocketTransport> t(
      new SocketTransport(fd, self, addr, options));
  // First frame of every connection: who we are, and which join this is
  // (epoch > 1 announces a rejoin after a crash/restart).
  Frame hello;
  hello.type = FrameType::kHello;
  hello.from = self;
  hello.payload = EncodeHelloPayload(options.epoch);
  Status s = t->EnqueueFramed(std::move(hello));
  if (!s.ok()) return s;
  return t;
}

SocketTransport::SocketTransport(int fd, NodeId self,
                                 const sockaddr_storage& addr,
                                 const Options& options)
    : options_(options), node_(self), fd_(fd), addr_(addr) {
  epoch_.store(options.epoch, std::memory_order_relaxed);
  sender_ = std::thread([this] { SenderLoop(); });
}

SocketTransport::~SocketTransport() {
  // Signal stop *before* draining: the sender keeps writing queued
  // frames while the link is healthy (stop only ends the loop once the
  // queue is empty), but a mid-outage reconnect schedule is interrupted
  // immediately — destruction must never wait out a backoff ladder.
  // Callers that need a guaranteed drain call Flush() themselves first.
  {
    std::lock_guard<std::mutex> lk(mu_);
    ReleaseAllDelayedLocked();
    stop_ = true;
  }
  queue_cv_.notify_all();
  space_cv_.notify_all();
  sender_.join();
  if (fd_ >= 0) ::close(fd_);
}

void SocketTransport::Send(NodeId from, NodeId to, size_t payload_bytes) {
  // Accounting-only callers moved the state elsewhere; ship the claimed
  // volume as zero bytes so the wire really carries it.
  Frame f;
  f.type = FrameType::kBlob;
  f.from = from;
  f.to = to;
  f.payload.assign(payload_bytes, 0);
  payload_messages_.fetch_add(1, std::memory_order_relaxed);
  payload_bytes_.fetch_add(payload_bytes, std::memory_order_relaxed);
  (void)EnqueueFramed(std::move(f));
}

void SocketTransport::Send(NodeId from, NodeId to, const uint8_t* data,
                           size_t size) {
  Frame f;
  f.type = FrameType::kBlob;
  f.from = from;
  f.to = to;
  f.payload.assign(data, data + size);
  payload_messages_.fetch_add(1, std::memory_order_relaxed);
  payload_bytes_.fetch_add(size, std::memory_order_relaxed);
  (void)EnqueueFramed(std::move(f));
}

Status SocketTransport::SendPayload(FrameType type, NodeId to,
                                    std::vector<uint8_t> payload) {
  Frame f;
  f.type = type;
  f.from = node_;
  f.to = to;
  f.payload = std::move(payload);
  payload_messages_.fetch_add(1, std::memory_order_relaxed);
  payload_bytes_.fetch_add(f.payload.size(), std::memory_order_relaxed);
  return EnqueueFramed(std::move(f));
}

Status SocketTransport::EnqueueFramed(Frame&& frame) {
  // Control frames are never faulted: kHello/kHeartbeat carry the
  // liveness protocol itself and kDone is the final-answer frame whose
  // loss would turn an injected fault into silent data loss instead of
  // a healable outage.
  const bool faultable = options_.fault_plan != nullptr &&
                         frame.type != FrameType::kHello &&
                         frame.type != FrameType::kHeartbeat &&
                         frame.type != FrameType::kDone;
  std::vector<Entry> out;
  {
    std::lock_guard<std::mutex> lk(mu_);
    frame.seq = next_seq_++;
    if (!faultable) {
      out.push_back(Entry{EncodeFrame(frame), false});
    } else {
      const FaultPlan& plan = *options_.fault_plan;
      const uint64_t index = fault_index_++;
      switch (plan.ActionFor(node_, index)) {
        case FaultAction::kDrop:
          ++fault_counters_.drops;
          break;
        case FaultAction::kDuplicate: {
          // Byte-identical twin (same seq): exactly what a
          // retransmit-after-timeout produces; receivers must absorb it.
          ++fault_counters_.duplicates;
          std::vector<uint8_t> encoded = EncodeFrame(frame);
          out.push_back(Entry{encoded, false});
          out.push_back(Entry{std::move(encoded), false});
          break;
        }
        case FaultAction::kCorrupt: {
          // Flip one payload bit *before* framing: the frame checksum
          // stays valid, so the corruption must be caught by the
          // application-level dist/serialize checksum at the receiver.
          ++fault_counters_.corrupts;
          if (!frame.payload.empty()) {
            const size_t bit =
                plan.CorruptBit(node_, index, frame.payload.size());
            frame.payload[bit / 8] ^=
                static_cast<uint8_t>(1u << (bit % 8));
          }
          out.push_back(Entry{EncodeFrame(frame), false});
          break;
        }
        case FaultAction::kDelay:
          ++fault_counters_.delays;
          delayed_.emplace_back(index + plan.DelayFrames(node_, index),
                                Entry{EncodeFrame(frame), false});
          break;
        case FaultAction::kSever:
          ++fault_counters_.severs;
          out.push_back(Entry{EncodeFrame(frame), true});
          break;
        case FaultAction::kNone:
          out.push_back(Entry{EncodeFrame(frame), false});
          break;
      }
      // Release delayed frames that are now due; they queue *behind*
      // the current frame — the reorder the plan asked for.
      for (auto it = delayed_.begin(); it != delayed_.end();) {
        if (it->first <= index) {
          out.push_back(std::move(it->second));
          it = delayed_.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  if (out.empty()) return Status::OK();
  return EnqueueEntries(std::move(out));
}

Status SocketTransport::EnqueueEntries(std::vector<Entry> entries) {
  size_t add = 0;
  for (const Entry& e : entries) add += e.bytes.size();
  std::unique_lock<std::mutex> lk(mu_);
  // Backpressure: block while the in-flight volume exceeds the bound.
  space_cv_.wait(lk, [this] {
    return queued_bytes_ <= options_.max_queue_bytes || stop_ ||
           !error_.ok();
  });
  if (!error_.ok()) return error_;
  if (stop_) return Status::IOError("transport stopped");
  queued_bytes_ += add;
  wire_bytes_.fetch_add(add, std::memory_order_relaxed);
  for (Entry& e : entries) queue_.push_back(std::move(e));
  queue_cv_.notify_one();
  return Status::OK();
}

void SocketTransport::ReleaseAllDelayedLocked() {
  if (delayed_.empty()) return;
  while (!delayed_.empty()) {
    Entry e = std::move(delayed_.front().second);
    delayed_.pop_front();
    queued_bytes_ += e.bytes.size();
    wire_bytes_.fetch_add(e.bytes.size(), std::memory_order_relaxed);
    queue_.push_back(std::move(e));
  }
  queue_cv_.notify_one();
}

Status SocketTransport::Flush(uint64_t timeout_ms) {
  std::unique_lock<std::mutex> lk(mu_);
  // Fault-delayed frames are reordered, never lost: a flush point
  // releases all of them.
  ReleaseAllDelayedLocked();
  const auto drained = [this] {
    return (queue_.empty() && queued_bytes_ == 0) || !error_.ok();
  };
  if (timeout_ms == 0) {
    space_cv_.wait(lk, drained);
  } else if (!space_cv_.wait_for(lk, std::chrono::milliseconds(timeout_ms),
                                 drained)) {
    return Status::DeadlineExceeded(
        "SocketTransport::Flush: queue not drained within " +
        std::to_string(timeout_ms) + " ms");
  }
  return error_;
}

void SocketTransport::SenderLoop() {
  std::vector<Entry> batch_entries;
  std::vector<uint8_t> batch;
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    if (queue_.empty()) {
      if (stop_) return;
      if (options_.heartbeat_period_ms > 0) {
        const bool woke = queue_cv_.wait_for(
            lk, std::chrono::milliseconds(options_.heartbeat_period_ms),
            [this] { return !queue_.empty() || stop_; });
        if (!woke && error_.ok()) {
          // Idle past the heartbeat period: emit a liveness beacon.
          Frame hb;
          hb.type = FrameType::kHeartbeat;
          hb.from = node_;
          hb.seq = next_seq_++;
          Entry e{EncodeFrame(hb), false};
          queued_bytes_ += e.bytes.size();
          wire_bytes_.fetch_add(e.bytes.size(), std::memory_order_relaxed);
          queue_.push_back(std::move(e));
        }
      } else {
        queue_cv_.wait(lk, [this] { return !queue_.empty() || stop_; });
      }
      continue;
    }
    // Coalesce queued frames into one batched write. Entries are kept
    // individually so an unwritten batch can be returned to the queue
    // for retransmission after a reconnect. A sever-fault entry ends
    // its batch: the connection dies right behind that frame.
    batch_entries.clear();
    batch.clear();
    bool sever = false;
    while (!queue_.empty() && batch.size() < options_.max_batch_bytes &&
           !sever) {
      Entry e = std::move(queue_.front());
      queue_.pop_front();
      batch.insert(batch.end(), e.bytes.begin(), e.bytes.end());
      sever = e.sever_after;
      batch_entries.push_back(std::move(e));
    }
    lk.unlock();
    Status s = error_;
    bool wrote = false;
    if (s.ok()) {
      s = WriteAll(fd_, batch.data(), batch.size());
      wrote = s.ok();
      if (wrote && sever) {
        // Injected fault: kill the link mid-stream, after this frame
        // reached the wire. The heal path below takes over.
        ::shutdown(fd_, SHUT_RDWR);
        s = Status::Unavailable("fault injection: connection severed");
      }
    }
    lk.lock();
    if (s.ok()) {
      queued_bytes_ -= std::min(queued_bytes_, batch.size());
      space_cv_.notify_all();
      continue;
    }
    const bool can_retry =
        IsRetryable(s) && options_.reconnect_attempts > 0 && !stop_;
    if (wrote) {
      // The sever batch reached the wire; nothing to retransmit.
      queued_bytes_ -= std::min(queued_bytes_, batch.size());
    } else if (can_retry) {
      // The write failed: the whole batch is still owed. Return it to
      // the queue front (at-least-once delivery; parts of it may have
      // arrived, and receivers absorb such duplicates idempotently).
      for (auto it = batch_entries.rbegin(); it != batch_entries.rend();
           ++it) {
        queue_.push_front(std::move(*it));
      }
    } else {
      queued_bytes_ -= std::min(queued_bytes_, batch.size());
    }
    if (can_retry) {
      Status healed = ReconnectLocked(lk);
      if (healed.ok()) {
        space_cv_.notify_all();
        continue;
      }
      s = healed;
    }
    if (error_.ok()) {
      error_ = s;
      queue_.clear();
      queued_bytes_ = 0;
    }
    space_cv_.notify_all();
  }
}

Status SocketTransport::ReconnectLocked(std::unique_lock<std::mutex>& lk) {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  for (int attempt = 0; attempt < options_.reconnect_attempts && !stop_;
       ++attempt) {
    const uint64_t delay_ms =
        BackoffDelayMs(options_.backoff, static_cast<uint32_t>(attempt));
    if (delay_ms > 0) {
      // Interruptible backoff sleep: Stop()/destruction must not wait
      // out the schedule.
      queue_cv_.wait_for(lk, std::chrono::milliseconds(delay_ms),
                         [this] { return stop_; });
    }
    if (stop_) break;
    const sockaddr_storage addr = addr_;
    lk.unlock();
    int fd = DialOnce(addr);
    lk.lock();
    if (stop_) {
      if (fd >= 0) ::close(fd);
      break;
    }
    if (fd < 0) continue;
    // Fresh link: re-announce under the next rejoin epoch *before* any
    // retransmitted traffic, so the coordinator counts the heal as a
    // rejoin and re-keys its compressed channels (SketchSender callers
    // watch epoch() and re-base).
    const uint32_t epoch = epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
    Frame hello;
    hello.type = FrameType::kHello;
    hello.from = node_;
    hello.payload = EncodeHelloPayload(epoch);
    hello.seq = next_seq_++;
    std::vector<uint8_t> encoded = EncodeFrame(hello);
    wire_bytes_.fetch_add(encoded.size(), std::memory_order_relaxed);
    lk.unlock();
    Status hs = WriteAll(fd, encoded.data(), encoded.size());
    lk.lock();
    if (!hs.ok()) {
      ::close(fd);
      continue;
    }
    if (stop_) {
      ::close(fd);
      break;
    }
    fd_ = fd;
    reconnects_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
  return Status::Unavailable(
      "SocketTransport: reconnect failed after backoff retries");
}

NetworkStats SocketTransport::stats() const {
  NetworkStats s;
  s.messages = payload_messages_.load(std::memory_order_relaxed);
  s.bytes = payload_bytes_.load(std::memory_order_relaxed);
  return s;
}

uint64_t SocketTransport::wire_bytes() const {
  return wire_bytes_.load(std::memory_order_relaxed);
}

Status SocketTransport::status() const {
  std::lock_guard<std::mutex> lk(mu_);
  return error_;
}

SocketTransport::FaultCounters SocketTransport::fault_counters() const {
  std::lock_guard<std::mutex> lk(mu_);
  return fault_counters_;
}

// ---------------------------------------------------------------------------
// CoordinatorServer
// ---------------------------------------------------------------------------

struct CoordinatorServer::Connection {
  int fd = -1;
  NodeId node = kCoordinatorNode;  ///< unknown until kHello
  std::thread reader;
};

struct CoordinatorServer::SiteState {
  NodeId node = 0;
  SiteHealth health = SiteHealth::kNeverSeen;
  uint32_t epoch = 0;
  uint32_t joins = 0;
  uint32_t hello_attempts = 0;
  uint64_t frames = 0;
  uint64_t payload_bytes = 0;
  bool done = false;
  uint64_t last_seen_ms = 0;
};

Result<std::unique_ptr<CoordinatorServer>> CoordinatorServer::Start(
    int port, const Options& options, FrameHandler handler) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket(): ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return Status::IOError(std::string("bind(): ") + std::strerror(errno));
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    return Status::IOError(std::string("listen(): ") + std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd);
    return Status::IOError(std::string("getsockname(): ") +
                           std::strerror(errno));
  }
  return std::unique_ptr<CoordinatorServer>(new CoordinatorServer(
      fd, ntohs(bound.sin_port), options, std::move(handler)));
}

CoordinatorServer::CoordinatorServer(int listen_fd, int port,
                                     const Options& options,
                                     FrameHandler handler)
    : options_(options),
      handler_(std::move(handler)),
      listen_fd_(listen_fd),
      port_(port) {
  acceptor_ = std::thread([this] { AcceptLoop(); });
  sweeper_ = std::thread([this] { SweeperLoop(); });
}

CoordinatorServer::~CoordinatorServer() { Stop(); }

void CoordinatorServer::AcceptLoop() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) {
      if (fd >= 0) ::close(fd);
      return;
    }
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    conn->reader = std::thread([this, raw] { ReaderLoop(raw); });
    connections_.push_back(std::move(conn));
  }
}

void CoordinatorServer::ReaderLoop(Connection* conn) {
  FrameDecoder decoder;
  std::vector<uint8_t> buf(64 * 1024);
  bool clean_done = false;
  while (true) {
    ssize_t n = ::recv(conn->fd, buf.data(), buf.size(), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or connection error
    decoder.Feed(buf.data(), static_cast<size_t>(n));
    while (true) {
      auto next = decoder.Next();
      if (!next.ok()) {
        // Malformed stream: drop the connection; the site shows as down
        // until it reconnects with a fresh hello.
        corrupt_streams_.fetch_add(1, std::memory_order_relaxed);
        if (conn->node != kCoordinatorNode) MarkDown(conn->node);
        ::shutdown(conn->fd, SHUT_RDWR);
        return;
      }
      if (!next->has_value()) break;
      Frame frame = std::move(**next);
      const uint64_t now_ms = NowMs();
      bool is_app_frame = false;
      bool refuse_hello = false;
      {
        std::lock_guard<std::mutex> lk(mu_);
        SiteState* st = nullptr;
        for (auto& s : sites_) {
          if (s->node == frame.from) {
            st = s.get();
            break;
          }
        }
        if (frame.type == FrameType::kHello) {
          if (st == nullptr) {
            sites_.push_back(std::make_unique<SiteState>());
            st = sites_.back().get();
            st->node = frame.from;
          }
          // Attempts count refused hellos too — otherwise a refusal
          // window in attempt space could never be retried past.
          const uint32_t attempt = st->hello_attempts++;
          if (options_.fault_plan != nullptr &&
              options_.fault_plan->RefuseHello(frame.from, attempt)) {
            refuse_hello = true;
          } else {
            if (st->joins > 0) {
              // A node we already knew said hello again: crash/rejoin
              // (or reconnect after a dropped link). Its snapshots
              // restart from the new epoch's catch-up resync.
              rejoins_.fetch_add(1, std::memory_order_relaxed);
            }
            auto epoch = DecodeHelloPayload(frame.payload);
            st->epoch = epoch.ok() ? *epoch : st->joins + 1;
            ++st->joins;
            st->health = SiteHealth::kUp;
            st->done = false;
            st->last_seen_ms = now_ms;
            conn->node = frame.from;
          }
        } else {
          is_app_frame = frame.type != FrameType::kHeartbeat;
          // Any traffic proves the connection's announced node is alive,
          // even when the frame's `from` names another node (a shared
          // transport relaying a whole Coordinator's sites).
          for (auto& s : sites_) {
            if (s->node != conn->node) continue;
            s->last_seen_ms = now_ms;
            if (s->health == SiteHealth::kDown) s->health = SiteHealth::kUp;
            break;
          }
          if (is_app_frame && st != nullptr) {
            ++st->frames;
            st->payload_bytes += frame.payload.size();
            if (frame.type == FrameType::kDone) {
              st->done = true;
              clean_done = true;
            }
          }
        }
      }
      if (refuse_hello) {
        // Injected partition: the coordinator refuses this join. The
        // connection dies before registration, so the site's writes
        // fail and its reconnect/backoff machinery keeps retrying until
        // the refusal window has passed.
        hello_refusals_.fetch_add(1, std::memory_order_relaxed);
        ::shutdown(conn->fd, SHUT_RDWR);
        return;
      }
      if (is_app_frame) {
        payload_messages_.fetch_add(1, std::memory_order_relaxed);
        payload_bytes_.fetch_add(frame.payload.size(),
                                 std::memory_order_relaxed);
        if (handler_) handler_(frame);
      }
    }
  }
  // EOF after kDone is a clean exit; anything else is a crash.
  if (conn->node != kCoordinatorNode && !clean_done) MarkDown(conn->node);
}

void CoordinatorServer::SweeperLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!stopping_) {
    const uint64_t now_ms = NowMs();
    for (auto& s : sites_) {
      if (s->health == SiteHealth::kUp && !s->done &&
          HeartbeatExpired(now_ms - s->last_seen_ms,
                           options_.heartbeat_timeout_ms)) {
        s->health = SiteHealth::kDown;
        downs_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    stop_cv_.wait_for(lk,
                      std::chrono::milliseconds(options_.sweep_period_ms),
                      [this] { return stopping_; });
  }
}

void CoordinatorServer::MarkDown(NodeId node) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& s : sites_) {
    if (s->node == node && s->health == SiteHealth::kUp && !s->done) {
      s->health = SiteHealth::kDown;
      downs_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

std::vector<SiteStatus> CoordinatorServer::site_status() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<SiteStatus> out;
  out.reserve(sites_.size());
  for (const auto& s : sites_) {
    SiteStatus st;
    st.node = s->node;
    st.health = s->health;
    st.epoch = s->epoch;
    st.joins = s->joins;
    st.hello_attempts = s->hello_attempts;
    st.frames = s->frames;
    st.payload_bytes = s->payload_bytes;
    st.done = s->done;
    out.push_back(st);
  }
  return out;
}

SiteStatus CoordinatorServer::site(NodeId node) const {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& s : sites_) {
    if (s->node == node) {
      SiteStatus st;
      st.node = s->node;
      st.health = s->health;
      st.epoch = s->epoch;
      st.joins = s->joins;
      st.hello_attempts = s->hello_attempts;
      st.frames = s->frames;
      st.payload_bytes = s->payload_bytes;
      st.done = s->done;
      return st;
    }
  }
  SiteStatus st;
  st.node = node;
  return st;
}

NetworkStats CoordinatorServer::stats() const {
  NetworkStats s;
  s.messages = payload_messages_.load(std::memory_order_relaxed);
  s.bytes = payload_bytes_.load(std::memory_order_relaxed);
  return s;
}

void CoordinatorServer::Stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  stop_cv_.notify_all();
  // Unblock accept(): shutdown makes the pending accept fail on Linux.
  ::shutdown(listen_fd_, SHUT_RDWR);
  acceptor_.join();
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& c : connections_) ::shutdown(c->fd, SHUT_RDWR);
  }
  for (auto& c : connections_) {
    if (c->reader.joinable()) c->reader.join();
    ::close(c->fd);
  }
  sweeper_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

}  // namespace ecm
