#include "src/dist/socket_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "src/util/bytes.h"

namespace ecm {
namespace {

using Clock = std::chrono::steady_clock;

// FNV-1a, streamable (same polynomial as dist/serialize's WireChecksum;
// computed incrementally here because a frame checksum spans the header
// fields and the payload without concatenating them).
constexpr uint64_t kFnvOffset = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvExtend(uint64_t h, const uint8_t* data, size_t size) {
  for (size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= kFnvPrime;
  }
  return h;
}

constexpr uint8_t kFrameMagic[4] = {'E', 'C', 'M', 'F'};
// Offsets inside the fixed header.
constexpr size_t kChecksummedOffset = sizeof(kFrameMagic);  // type..len
constexpr size_t kLenOffset = 4 + 1 + 4 + 4 + 8;
constexpr size_t kCrcOffset = kLenOffset + 4;
constexpr size_t kChecksummedHeaderBytes = kCrcOffset - kChecksummedOffset;

bool ValidFrameType(uint8_t t) {
  return t >= static_cast<uint8_t>(FrameType::kHello) &&
         t <= static_cast<uint8_t>(FrameType::kSketchRlz);
}

// Writes all of `data` to `fd`, surviving partial writes and EINTR.
Status WriteAll(int fd, const uint8_t* data, size_t size) {
  size_t off = 0;
  while (off < size) {
    ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("socket write: ") +
                             std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

uint64_t NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          Clock::now().time_since_epoch())
          .count());
}

}  // namespace

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

std::vector<uint8_t> EncodeFrame(const Frame& frame) {
  ByteWriter w;
  w.Reserve(kFrameHeaderBytes + frame.payload.size());
  w.PutRaw(kFrameMagic, sizeof(kFrameMagic));
  w.PutFixed<uint8_t>(static_cast<uint8_t>(frame.type));
  w.PutFixed<int32_t>(frame.from);
  w.PutFixed<int32_t>(frame.to);
  w.PutFixed<uint64_t>(frame.seq);
  w.PutFixed<uint32_t>(static_cast<uint32_t>(frame.payload.size()));
  uint64_t crc = FnvExtend(kFnvOffset, w.bytes().data() + kChecksummedOffset,
                           kChecksummedHeaderBytes);
  crc = FnvExtend(crc, frame.payload.data(), frame.payload.size());
  w.PutFixed<uint64_t>(crc);
  w.PutRaw(frame.payload.data(), frame.payload.size());
  return w.MoveBytes();
}

void FrameDecoder::Feed(const uint8_t* data, size_t size) {
  // Compact the consumed prefix before it dominates the buffer.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + size);
}

Result<std::optional<Frame>> FrameDecoder::Next() {
  if (corrupt_) {
    return Status::Corruption("frame stream already corrupt");
  }
  if (buffered() < kFrameHeaderBytes) return std::optional<Frame>{};
  const uint8_t* h = buf_.data() + pos_;
  if (std::memcmp(h, kFrameMagic, sizeof(kFrameMagic)) != 0) {
    corrupt_ = true;
    return Status::Corruption("bad frame magic");
  }
  uint32_t len;
  std::memcpy(&len, h + kLenOffset, sizeof(len));
  if (len > kMaxFramePayload) {
    corrupt_ = true;
    return Status::Corruption("oversized frame payload length");
  }
  if (buffered() < kFrameHeaderBytes + len) return std::optional<Frame>{};
  uint64_t expected;
  std::memcpy(&expected, h + kCrcOffset, sizeof(expected));
  uint64_t crc =
      FnvExtend(kFnvOffset, h + kChecksummedOffset, kChecksummedHeaderBytes);
  crc = FnvExtend(crc, h + kFrameHeaderBytes, len);
  if (crc != expected) {
    corrupt_ = true;
    return Status::Corruption("frame checksum mismatch");
  }
  if (!ValidFrameType(h[kChecksummedOffset])) {
    corrupt_ = true;
    return Status::Corruption("unknown frame type");
  }
  Frame f;
  f.type = static_cast<FrameType>(h[kChecksummedOffset]);
  int32_t from;
  int32_t to;
  std::memcpy(&from, h + 5, sizeof(from));
  std::memcpy(&to, h + 9, sizeof(to));
  std::memcpy(&f.seq, h + 13, sizeof(f.seq));
  f.from = from;
  f.to = to;
  f.payload.assign(h + kFrameHeaderBytes, h + kFrameHeaderBytes + len);
  pos_ += kFrameHeaderBytes + len;
  return std::optional<Frame>{std::move(f)};
}

std::vector<uint8_t> EncodeHelloPayload(uint32_t epoch) {
  ByteWriter w;
  w.PutVarint(epoch);
  return w.MoveBytes();
}

Result<uint32_t> DecodeHelloPayload(const std::vector<uint8_t>& payload) {
  ByteReader r(payload);
  auto epoch = r.GetVarint();
  if (!epoch.ok()) return epoch.status();
  if (*epoch == 0 || *epoch > UINT32_MAX) {
    return Status::Corruption("hello epoch out of range");
  }
  return static_cast<uint32_t>(*epoch);
}

// ---------------------------------------------------------------------------
// SocketTransport
// ---------------------------------------------------------------------------

Result<std::unique_ptr<SocketTransport>> SocketTransport::Connect(
    const std::string& host, int port, NodeId self, const Options& options) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("SocketTransport: bad IPv4 address " +
                                   host);
  }
  int fd = -1;
  const int attempts = options.connect_attempts > 0 ? options.connect_attempts
                                                    : 1;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::IOError(std::string("socket(): ") +
                             std::strerror(errno));
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      break;
    }
    ::close(fd);
    fd = -1;
    if (attempt + 1 < attempts) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options.connect_retry_ms));
    }
  }
  if (fd < 0) {
    return Status::IOError("SocketTransport: connect to " + host + ":" +
                           std::to_string(port) + " failed");
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  std::unique_ptr<SocketTransport> t(
      new SocketTransport(fd, self, options));
  // First frame of every connection: who we are, and which join this is
  // (epoch > 1 announces a rejoin after a crash/restart).
  Frame hello;
  hello.type = FrameType::kHello;
  hello.from = self;
  hello.payload = EncodeHelloPayload(options.epoch);
  {
    std::unique_lock<std::mutex> lk(t->mu_);
    hello.seq = t->next_seq_++;
  }
  Status s = t->Enqueue(EncodeFrame(hello));
  if (!s.ok()) return s;
  return t;
}

SocketTransport::SocketTransport(int fd, NodeId self, const Options& options)
    : options_(options), node_(self), fd_(fd) {
  sender_ = std::thread([this] { SenderLoop(); });
}

SocketTransport::~SocketTransport() {
  (void)Flush();
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  space_cv_.notify_all();
  sender_.join();
  if (fd_ >= 0) ::close(fd_);
}

void SocketTransport::Send(NodeId from, NodeId to, size_t payload_bytes) {
  // Accounting-only callers moved the state elsewhere; ship the claimed
  // volume as zero bytes so the wire really carries it.
  Frame f;
  f.type = FrameType::kBlob;
  f.from = from;
  f.to = to;
  f.payload.assign(payload_bytes, 0);
  payload_messages_.fetch_add(1, std::memory_order_relaxed);
  payload_bytes_.fetch_add(payload_bytes, std::memory_order_relaxed);
  {
    std::unique_lock<std::mutex> lk(mu_);
    f.seq = next_seq_++;
  }
  (void)Enqueue(EncodeFrame(f));
}

void SocketTransport::Send(NodeId from, NodeId to, const uint8_t* data,
                           size_t size) {
  Frame f;
  f.type = FrameType::kBlob;
  f.from = from;
  f.to = to;
  f.payload.assign(data, data + size);
  payload_messages_.fetch_add(1, std::memory_order_relaxed);
  payload_bytes_.fetch_add(size, std::memory_order_relaxed);
  {
    std::unique_lock<std::mutex> lk(mu_);
    f.seq = next_seq_++;
  }
  (void)Enqueue(EncodeFrame(f));
}

Status SocketTransport::SendPayload(FrameType type, NodeId to,
                                    std::vector<uint8_t> payload) {
  Frame f;
  f.type = type;
  f.from = node_;
  f.to = to;
  f.payload = std::move(payload);
  payload_messages_.fetch_add(1, std::memory_order_relaxed);
  payload_bytes_.fetch_add(f.payload.size(), std::memory_order_relaxed);
  {
    std::unique_lock<std::mutex> lk(mu_);
    f.seq = next_seq_++;
  }
  return Enqueue(EncodeFrame(f));
}

Status SocketTransport::Enqueue(std::vector<uint8_t> encoded) {
  std::unique_lock<std::mutex> lk(mu_);
  // Backpressure: block while the in-flight volume exceeds the bound.
  space_cv_.wait(lk, [this] {
    return queued_bytes_ <= options_.max_queue_bytes || stop_ ||
           !error_.ok();
  });
  if (!error_.ok()) return error_;
  if (stop_) return Status::IOError("transport stopped");
  queued_bytes_ += encoded.size();
  wire_bytes_.fetch_add(encoded.size(), std::memory_order_relaxed);
  queue_.push_back(std::move(encoded));
  queue_cv_.notify_one();
  return Status::OK();
}

Status SocketTransport::Flush() {
  std::unique_lock<std::mutex> lk(mu_);
  space_cv_.wait(lk, [this] {
    return (queue_.empty() && queued_bytes_ == 0) || !error_.ok();
  });
  return error_;
}

void SocketTransport::SenderLoop() {
  std::vector<uint8_t> batch;
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    if (queue_.empty()) {
      if (stop_) return;
      if (options_.heartbeat_period_ms > 0) {
        const bool woke = queue_cv_.wait_for(
            lk, std::chrono::milliseconds(options_.heartbeat_period_ms),
            [this] { return !queue_.empty() || stop_; });
        if (!woke && error_.ok()) {
          // Idle past the heartbeat period: emit a liveness beacon.
          Frame hb;
          hb.type = FrameType::kHeartbeat;
          hb.from = node_;
          hb.seq = next_seq_++;
          std::vector<uint8_t> encoded = EncodeFrame(hb);
          queued_bytes_ += encoded.size();
          wire_bytes_.fetch_add(encoded.size(), std::memory_order_relaxed);
          queue_.push_back(std::move(encoded));
        }
      } else {
        queue_cv_.wait(lk, [this] { return !queue_.empty() || stop_; });
      }
      continue;
    }
    // Coalesce queued frames into one batched write.
    batch.clear();
    while (!queue_.empty() && batch.size() < options_.max_batch_bytes) {
      batch.insert(batch.end(), queue_.front().begin(), queue_.front().end());
      queue_.pop_front();
    }
    lk.unlock();
    Status s = error_;
    if (s.ok()) s = WriteAll(fd_, batch.data(), batch.size());
    lk.lock();
    queued_bytes_ -= std::min(queued_bytes_, batch.size());
    if (!s.ok() && error_.ok()) {
      error_ = s;
      queue_.clear();
      queued_bytes_ = 0;
    }
    space_cv_.notify_all();
  }
}

NetworkStats SocketTransport::stats() const {
  NetworkStats s;
  s.messages = payload_messages_.load(std::memory_order_relaxed);
  s.bytes = payload_bytes_.load(std::memory_order_relaxed);
  return s;
}

uint64_t SocketTransport::wire_bytes() const {
  return wire_bytes_.load(std::memory_order_relaxed);
}

Status SocketTransport::status() const {
  std::lock_guard<std::mutex> lk(mu_);
  return error_;
}

// ---------------------------------------------------------------------------
// CoordinatorServer
// ---------------------------------------------------------------------------

struct CoordinatorServer::Connection {
  int fd = -1;
  NodeId node = kCoordinatorNode;  ///< unknown until kHello
  std::thread reader;
};

struct CoordinatorServer::SiteState {
  NodeId node = 0;
  SiteHealth health = SiteHealth::kNeverSeen;
  uint32_t epoch = 0;
  uint32_t joins = 0;
  uint64_t frames = 0;
  uint64_t payload_bytes = 0;
  bool done = false;
  uint64_t last_seen_ms = 0;
};

Result<std::unique_ptr<CoordinatorServer>> CoordinatorServer::Start(
    int port, const Options& options, FrameHandler handler) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket(): ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return Status::IOError(std::string("bind(): ") + std::strerror(errno));
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    return Status::IOError(std::string("listen(): ") + std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd);
    return Status::IOError(std::string("getsockname(): ") +
                           std::strerror(errno));
  }
  return std::unique_ptr<CoordinatorServer>(new CoordinatorServer(
      fd, ntohs(bound.sin_port), options, std::move(handler)));
}

CoordinatorServer::CoordinatorServer(int listen_fd, int port,
                                     const Options& options,
                                     FrameHandler handler)
    : options_(options),
      handler_(std::move(handler)),
      listen_fd_(listen_fd),
      port_(port) {
  acceptor_ = std::thread([this] { AcceptLoop(); });
  sweeper_ = std::thread([this] { SweeperLoop(); });
}

CoordinatorServer::~CoordinatorServer() { Stop(); }

void CoordinatorServer::AcceptLoop() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) {
      if (fd >= 0) ::close(fd);
      return;
    }
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    conn->reader = std::thread([this, raw] { ReaderLoop(raw); });
    connections_.push_back(std::move(conn));
  }
}

void CoordinatorServer::ReaderLoop(Connection* conn) {
  FrameDecoder decoder;
  std::vector<uint8_t> buf(64 * 1024);
  bool clean_done = false;
  while (true) {
    ssize_t n = ::recv(conn->fd, buf.data(), buf.size(), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or connection error
    decoder.Feed(buf.data(), static_cast<size_t>(n));
    while (true) {
      auto next = decoder.Next();
      if (!next.ok()) {
        // Malformed stream: drop the connection; the site shows as down
        // until it reconnects with a fresh hello.
        corrupt_streams_.fetch_add(1, std::memory_order_relaxed);
        if (conn->node != kCoordinatorNode) MarkDown(conn->node);
        ::shutdown(conn->fd, SHUT_RDWR);
        return;
      }
      if (!next->has_value()) break;
      Frame frame = std::move(**next);
      const uint64_t now_ms = NowMs();
      bool is_app_frame = false;
      {
        std::lock_guard<std::mutex> lk(mu_);
        SiteState* st = nullptr;
        for (auto& s : sites_) {
          if (s->node == frame.from) {
            st = s.get();
            break;
          }
        }
        if (frame.type == FrameType::kHello) {
          if (st == nullptr) {
            sites_.push_back(std::make_unique<SiteState>());
            st = sites_.back().get();
            st->node = frame.from;
          } else if (st->joins > 0) {
            // A node we already knew said hello again: crash/rejoin (or
            // reconnect after a dropped link). Its snapshots restart
            // from the new epoch's catch-up resync.
            rejoins_.fetch_add(1, std::memory_order_relaxed);
          }
          auto epoch = DecodeHelloPayload(frame.payload);
          st->epoch = epoch.ok() ? *epoch : st->joins + 1;
          ++st->joins;
          st->health = SiteHealth::kUp;
          st->done = false;
          st->last_seen_ms = now_ms;
          conn->node = frame.from;
        } else {
          is_app_frame = frame.type != FrameType::kHeartbeat;
          // Any traffic proves the connection's announced node is alive,
          // even when the frame's `from` names another node (a shared
          // transport relaying a whole Coordinator's sites).
          for (auto& s : sites_) {
            if (s->node != conn->node) continue;
            s->last_seen_ms = now_ms;
            if (s->health == SiteHealth::kDown) s->health = SiteHealth::kUp;
            break;
          }
          if (is_app_frame && st != nullptr) {
            ++st->frames;
            st->payload_bytes += frame.payload.size();
            if (frame.type == FrameType::kDone) {
              st->done = true;
              clean_done = true;
            }
          }
        }
      }
      if (is_app_frame) {
        payload_messages_.fetch_add(1, std::memory_order_relaxed);
        payload_bytes_.fetch_add(frame.payload.size(),
                                 std::memory_order_relaxed);
        if (handler_) handler_(frame);
      }
    }
  }
  // EOF after kDone is a clean exit; anything else is a crash.
  if (conn->node != kCoordinatorNode && !clean_done) MarkDown(conn->node);
}

void CoordinatorServer::SweeperLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!stopping_) {
    const uint64_t now_ms = NowMs();
    for (auto& s : sites_) {
      if (s->health == SiteHealth::kUp && !s->done &&
          now_ms - s->last_seen_ms > options_.heartbeat_timeout_ms) {
        s->health = SiteHealth::kDown;
        downs_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    stop_cv_.wait_for(lk,
                      std::chrono::milliseconds(options_.sweep_period_ms),
                      [this] { return stopping_; });
  }
}

void CoordinatorServer::MarkDown(NodeId node) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& s : sites_) {
    if (s->node == node && s->health == SiteHealth::kUp && !s->done) {
      s->health = SiteHealth::kDown;
      downs_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

std::vector<SiteStatus> CoordinatorServer::site_status() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<SiteStatus> out;
  out.reserve(sites_.size());
  for (const auto& s : sites_) {
    SiteStatus st;
    st.node = s->node;
    st.health = s->health;
    st.epoch = s->epoch;
    st.joins = s->joins;
    st.frames = s->frames;
    st.payload_bytes = s->payload_bytes;
    st.done = s->done;
    out.push_back(st);
  }
  return out;
}

SiteStatus CoordinatorServer::site(NodeId node) const {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& s : sites_) {
    if (s->node == node) {
      SiteStatus st;
      st.node = s->node;
      st.health = s->health;
      st.epoch = s->epoch;
      st.joins = s->joins;
      st.frames = s->frames;
      st.payload_bytes = s->payload_bytes;
      st.done = s->done;
      return st;
    }
  }
  SiteStatus st;
  st.node = node;
  return st;
}

NetworkStats CoordinatorServer::stats() const {
  NetworkStats s;
  s.messages = payload_messages_.load(std::memory_order_relaxed);
  s.bytes = payload_bytes_.load(std::memory_order_relaxed);
  return s;
}

void CoordinatorServer::Stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  stop_cv_.notify_all();
  // Unblock accept(): shutdown makes the pending accept fail on Linux.
  ::shutdown(listen_fd_, SHUT_RDWR);
  acceptor_.join();
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& c : connections_) ::shutdown(c->fd, SHUT_RDWR);
  }
  for (auto& c : connections_) {
    if (c->reader.joinable()) c->reader.join();
    ::close(c->fd);
  }
  sweeper_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

}  // namespace ecm
