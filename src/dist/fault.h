// Deterministic fault injection for the distributed runtime.
//
// Every fault decision here is a pure function of (seed, node, index):
// FaultPlan hashes the coordinates through Mix64 and never consults the
// wall clock, thread timing or a stateful RNG, so a fault scenario is a
// *replayable unit test* — the same plan over the same message script
// injects byte-identical faults on every run, on every machine.
//
// Two consumers:
//  * FaultInjectingTransport — a decorator over any Transport (loopback
//    included) that drops, duplicates, bit-corrupts and delay-reorders
//    messages per the plan. This is the in-process harness: it lets the
//    aggregation-tree / propagation / monitoring substrates be tested
//    under faults without sockets.
//  * SocketTransport / CoordinatorServer (socket_transport.h) accept a
//    `const FaultPlan*` in their Options and apply the schedule at the
//    wire: payload bit-flips that the dist/serialize checksum must
//    catch, mid-stream connection severs that the in-transport
//    reconnect machinery must heal, and coordinator-side hello
//    refusals that simulate a partitioned site-set for a window.
//
// The retry side of the coin lives here too: BackoffPolicy +
// BackoffDelayMs give exponential backoff with *deterministic* jitter
// (hashed from the policy seed and attempt number), replacing fixed
// retry sleeps so reconnect storms decorrelate without sacrificing
// replayability.

#ifndef ECM_DIST_FAULT_H_
#define ECM_DIST_FAULT_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "src/dist/network_stats.h"
#include "src/dist/transport.h"

namespace ecm {

// ---------------------------------------------------------------------------
// Retry/backoff policy
// ---------------------------------------------------------------------------

/// Exponential backoff with deterministic jitter. Delay for attempt k is
///   min(initial_ms * multiplier^k, max_ms) * (1 - jitter * u)
/// where u in [0,1) is hashed from (seed, attempt) — two transports with
/// different seeds decorrelate their retry storms, yet every run of one
/// transport retries on an identical schedule.
struct BackoffPolicy {
  uint64_t initial_ms = 10;   ///< delay before the first retry
  uint64_t max_ms = 2000;     ///< cap on the exponential growth
  double multiplier = 2.0;    ///< growth factor per attempt
  double jitter = 0.2;        ///< fraction of the delay randomized away
  uint64_t seed = 1;          ///< jitter hash seed
};

/// Pure: the delay before retry `attempt` (0-based) under `policy`.
uint64_t BackoffDelayMs(const BackoffPolicy& policy, uint32_t attempt);

// ---------------------------------------------------------------------------
// FaultPlan
// ---------------------------------------------------------------------------

/// What the plan does to one message.
enum class FaultAction : uint8_t {
  kNone = 0,
  kDrop = 1,       ///< message vanishes
  kDuplicate = 2,  ///< message delivered twice, back to back
  kCorrupt = 3,    ///< one payload bit flipped
  kDelay = 4,      ///< message held back and reordered behind later ones
  kSever = 5,      ///< (socket level) connection killed after the message
};

/// Declarative, seeded fault schedule. Probabilities are cumulative-checked
/// in the order drop, duplicate, corrupt, delay, sever against one uniform
/// draw per message, so they must sum to <= 1.
struct FaultPlanConfig {
  uint64_t seed = 1;

  double drop_p = 0.0;
  double duplicate_p = 0.0;
  double corrupt_p = 0.0;
  double delay_p = 0.0;
  double sever_p = 0.0;

  /// A delayed message is released after 1..max_delay_frames later
  /// messages from the same node have gone out.
  uint32_t max_delay_frames = 4;

  /// Every message from `node` with index in [from_frame, to_frame) is
  /// dropped — a one-sided link partition for that window.
  struct Partition {
    NodeId node = 0;
    uint64_t from_frame = 0;
    uint64_t to_frame = 0;
  };
  std::vector<Partition> partitions;

  /// The coordinator refuses `node`'s kHello attempts with index in
  /// [refuse_from, refuse_from + refuse_count) — the site sees its
  /// connections die until it has retried past the window (a
  /// coordinator-side partition in attempt space).
  struct HelloRefusal {
    NodeId node = 0;
    uint32_t refuse_from = 0;
    uint32_t refuse_count = 0;
  };
  std::vector<HelloRefusal> hello_refusals;
};

/// Immutable after construction; every method is const and pure, so one
/// plan may be shared by any number of transports and the server without
/// synchronization.
class FaultPlan {
 public:
  explicit FaultPlan(FaultPlanConfig config);

  /// The action for message `frame_index` (0-based, per node) from
  /// `node`. Partition windows take precedence and report kDrop.
  FaultAction ActionFor(NodeId node, uint64_t frame_index) const;

  /// How many later messages a kDelay message waits behind (>= 1).
  uint32_t DelayFrames(NodeId node, uint64_t frame_index) const;

  /// Which bit of a `size`-byte message a kCorrupt action flips.
  /// Returns a bit offset in [0, size*8); 0 when size == 0.
  size_t CorruptBit(NodeId node, uint64_t frame_index, size_t size) const;

  /// True when [node, frame_index] falls inside a partition window.
  bool InPartition(NodeId node, uint64_t frame_index) const;

  /// True when the coordinator must refuse this hello attempt (0-based).
  bool RefuseHello(NodeId node, uint32_t attempt_index) const;

  const FaultPlanConfig& config() const { return config_; }

 private:
  /// Uniform [0,1) hashed from (seed, salt, node, index).
  double Uniform(uint64_t salt, NodeId node, uint64_t index) const;

  FaultPlanConfig config_;
};

// ---------------------------------------------------------------------------
// FaultInjectingTransport
// ---------------------------------------------------------------------------

/// Decorator over any Transport that applies a FaultPlan to every
/// message. Message indices are per `from` node, counted in call order —
/// with a deterministic caller script the injected faults are
/// byte-identical across runs (the acceptance invariant; see
/// fault_test.cc).
///
/// Semantics per action:
///  * kDrop / partition — the inner transport never sees the message
///    (stats() still charges it: the sender offered the traffic).
///  * kDuplicate — delivered twice back to back.
///  * kCorrupt — one bit (chosen by the plan) flipped in a copy of the
///    payload; accounting-only sends carry no bytes and pass through.
///  * kDelay — held until DelayFrames() later messages from the same
///    node have been sent, then delivered (reordering). FlushDelayed()
///    releases stragglers at end of script.
///  * kSever — meaningful only at the socket level; here it counts in
///    injection stats and delivers normally.
///
/// Thread-safe; decisions depend only on per-node call order.
class FaultInjectingTransport final : public Transport {
 public:
  /// Counts of injected faults, for assertions and logging.
  struct InjectionStats {
    uint64_t messages = 0;  ///< messages offered to the decorator
    uint64_t drops = 0;
    uint64_t duplicates = 0;
    uint64_t corrupts = 0;
    uint64_t delays = 0;
    uint64_t severs = 0;
    uint64_t partition_drops = 0;  ///< subset of drops from partitions
  };

  /// Neither pointer is owned; both must outlive the decorator.
  FaultInjectingTransport(Transport* inner, const FaultPlan* plan);

  using Transport::Send;
  void Send(NodeId from, NodeId to, size_t payload_bytes) override;
  void Send(NodeId from, NodeId to, const uint8_t* data,
            size_t size) override;

  /// Offered traffic (drops included), in the NetworkStats currency.
  NetworkStats stats() const override;

  /// Delivers every still-delayed message, in held order per node.
  void FlushDelayed();

  InjectionStats injection_stats() const;

 private:
  struct Delayed {
    NodeId from = 0;
    NodeId to = 0;
    std::vector<uint8_t> bytes;
    bool accounting_only = false;
    size_t payload_bytes = 0;     ///< for accounting-only sends
    uint64_t release_index = 0;   ///< deliver once node passes this index
  };

  /// Common path for both Send forms.
  void SendImpl(NodeId from, NodeId to, const uint8_t* data, size_t size,
                bool accounting_only);

  /// Delivers delayed messages of `from` due at `index` (mu_ held;
  /// unlocks around inner sends via the caller-provided lock).
  void ReleaseDueLocked(std::unique_lock<std::mutex>& lk, NodeId from,
                        uint64_t index);

  void Deliver(NodeId from, NodeId to, const uint8_t* data, size_t size,
               bool accounting_only, size_t payload_bytes);

  Transport* const inner_;
  const FaultPlan* const plan_;

  mutable std::mutex mu_;
  std::vector<std::pair<NodeId, uint64_t>> frame_counts_;
  std::deque<Delayed> delayed_;
  InjectionStats inj_;
  uint64_t offered_messages_ = 0;
  uint64_t offered_bytes_ = 0;
};

}  // namespace ecm

#endif  // ECM_DIST_FAULT_H_
