// Scheduled propagation (Chan et al.-style, §2 related work): each site
// keeps a local time-based ECM-sketch and pushes a snapshot of it to the
// coordinator when a trigger fires — on its first arrival, every `period`
// ticks, and/or whenever its windowed L1 drifts by more than a configured
// fraction since the last push. The coordinator answers global queries by
// merging the freshest snapshot of every site, so its view lags each site
// by at most one trigger interval (the bandwidth/freshness trade-off the
// structure exists for).

#ifndef ECM_DIST_PERIODIC_H_
#define ECM_DIST_PERIODIC_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/core/ecm_sketch.h"
#include "src/dist/network_stats.h"
#include "src/util/result.h"
#include "src/util/status.h"

namespace ecm {

/// Coordinator plus `num_sites` local sketches with scheduled pushes.
class PeriodicAggregator {
 public:
  struct Config {
    /// Push whenever this many ticks elapsed since the site's last push
    /// (0 = no periodic schedule).
    uint64_t period = 0;
    /// Push whenever the site's windowed L1 estimate moved by this
    /// fraction (relative to its value at the last push; 0 = disabled).
    double drift_fraction = 0.0;
  };

  struct Stats {
    uint64_t updates = 0;          ///< arrivals processed across all sites
    uint64_t pushes = 0;           ///< snapshots shipped to the coordinator
    uint64_t periodic_pushes = 0;  ///< pushes triggered by the period
    uint64_t drift_pushes = 0;     ///< pushes triggered by the drift budget
    NetworkStats network;
  };

  PeriodicAggregator(int num_sites, const EcmConfig& sketch_config,
                     const Config& config);

  /// Routes one arrival to `site`'s local sketch and fires any due push.
  /// Returns true iff this arrival triggered a push.
  bool Process(int site, uint64_t key, Timestamp ts, uint64_t count = 1);

  /// Forces every site to push its current sketch (e.g. before a query
  /// barrier).
  Status SyncAll();

  /// Merged view of the freshest snapshot of every site. Fails while any
  /// site has never pushed.
  Result<EcmSketch<ExponentialHistogram>> GlobalView() const;

  /// Point query against the coordinator's (possibly stale) merged view.
  Result<double> GlobalPointQuery(uint64_t key, uint64_t range) const;

  const Stats& stats() const { return stats_; }

  /// Largest timestamp processed so far.
  Timestamp clock() const { return clock_; }

  /// The live local sketch of one site (always fresh, unlike the
  /// coordinator's snapshot of it).
  const EcmSketch<ExponentialHistogram>& site_sketch(int site) const {
    return sites_[static_cast<size_t>(site)].local;
  }

 private:
  enum class PushKind { kInitial, kPeriodic, kDrift, kForced };

  struct Site {
    explicit Site(const EcmConfig& cfg) : local(cfg) {}
    EcmSketch<ExponentialHistogram> local;
    std::optional<EcmSketch<ExponentialHistogram>> snapshot;
    Timestamp last_push_ts = 0;
    double pushed_l1 = 0.0;  ///< windowed L1 estimate at the last push
  };

  void Push(Site* site, PushKind kind);
  Result<const EcmSketch<ExponentialHistogram>*> MergedView() const;

  EcmConfig sketch_config_;
  Config config_;
  std::vector<Site> sites_;
  Stats stats_;
  Timestamp clock_ = 0;
  // Merged snapshot cache, invalidated by every push.
  mutable std::optional<EcmSketch<ExponentialHistogram>> merged_cache_;
};

}  // namespace ecm

#endif  // ECM_DIST_PERIODIC_H_
