// Scheduled propagation (Chan et al.-style, §2 related work): each site
// keeps a local time-based ECM-sketch and pushes a snapshot of it to the
// coordinator when a trigger fires — on its first arrival, every `period`
// ticks, and/or whenever its windowed L1 drifts by more than a configured
// fraction since the last push. The coordinator answers global queries by
// merging the freshest snapshot of every site, so its view lags each site
// by at most one trigger interval (the bandwidth/freshness trade-off the
// structure exists for).
//
// Built on the shared runtime substrate: sites are runtime Sites, pushes
// ship their exact dist/serialize wire size through the Transport, and
// every per-site tally lives with the site — so ParallelIngest can drive
// Process() from one worker per site shard with no locking (a push only
// writes the pushing site's own snapshot slot; the merged coordinator
// view is keyed on the global push count and rebuilt lazily at query
// time, after ingest quiesces).

#ifndef ECM_DIST_PERIODIC_H_
#define ECM_DIST_PERIODIC_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/core/ecm_sketch.h"
#include "src/dist/compress.h"
#include "src/dist/network_stats.h"
#include "src/dist/runtime.h"
#include "src/dist/serialize.h"
#include "src/dist/transport.h"
#include "src/util/result.h"
#include "src/util/status.h"

namespace ecm {

/// Coordinator plus `num_sites` local sketches with scheduled pushes.
template <SlidingWindowCounter Counter>
class PeriodicAggregatorT {
 public:
  struct Config {
    /// Push whenever this many ticks elapsed since the site's last push
    /// (0 = no periodic schedule).
    uint64_t period = 0;
    /// Push whenever the site's windowed L1 estimate moved by this
    /// fraction (relative to its value at the last push; 0 = disabled).
    double drift_fraction = 0.0;
    /// Wire compression of pushed snapshots (dist/compress.h). The
    /// default kFull keeps the pre-compression behavior: snapshots are
    /// charged at full SerializeSketch size and copied directly. Any
    /// other mode routes every push through a per-site sender/receiver
    /// channel pair: deltas/RLZ images on the wire, and the coordinator
    /// snapshot is the receiver-decoded sketch (verified bit-identical
    /// to the full image).
    CompressionOptions compression{CompressionMode::kFull};
  };

  struct Stats {
    uint64_t updates = 0;          ///< arrivals processed across all sites
    uint64_t pushes = 0;           ///< snapshots shipped to the coordinator
    uint64_t periodic_pushes = 0;  ///< pushes triggered by the period
    uint64_t drift_pushes = 0;     ///< pushes triggered by the drift budget
    NetworkStats network;
  };

  PeriodicAggregatorT(int num_sites, const EcmConfig& sketch_config,
                      const Config& config, Transport* transport = nullptr)
      : sketch_config_(sketch_config), config_(config), transport_(transport) {
    if (!transport_) {
      owned_transport_ = std::make_unique<LoopbackTransport>();
      transport_ = owned_transport_.get();
    }
    sites_.reserve(static_cast<size_t>(num_sites));
    for (int i = 0; i < num_sites; ++i) {
      sites_.emplace_back(i, sketch_config_, config_.compression);
    }
  }

  /// Routes one arrival to `site`'s local sketch and fires any due push.
  /// Returns true iff this arrival triggered a push. Touches only
  /// `site`-local state (plus the thread-safe Transport), so one
  /// ParallelIngest worker per site shard may call it concurrently.
  bool Process(int site_idx, uint64_t key, Timestamp ts, uint64_t count = 1) {
    SiteState& site = sites_[static_cast<size_t>(site_idx)];
    site.node.Ingest(key, ts, count);
    ++site.updates;

    if (!site.snapshot.has_value()) {
      Push(&site, PushKind::kInitial);
      return true;
    }
    const Timestamp now = site.node.sketch().Now();
    if (config_.period > 0 && now - site.last_push_ts >= config_.period) {
      Push(&site, PushKind::kPeriodic);
      return true;
    }
    if (config_.drift_fraction > 0.0) {
      double l1 = site.node.sketch().EstimateL1(sketch_config_.window_len);
      if (std::abs(l1 - site.pushed_l1) >=
          config_.drift_fraction * std::max(site.pushed_l1, 1.0)) {
        Push(&site, PushKind::kDrift);
        return true;
      }
    }
    return false;
  }

  /// Forces every site to push its current sketch (e.g. before a query
  /// barrier).
  Status SyncAll() {
    for (SiteState& site : sites_) Push(&site, PushKind::kForced);
    return Status::OK();
  }

  /// Merged view of the freshest snapshot of every site. Fails while any
  /// site has never pushed.
  Result<EcmSketch<Counter>> GlobalView() const {
    auto view = MergedView();
    if (!view.ok()) return view.status();
    return **view;
  }

  /// Point query against the coordinator's (possibly stale) merged view.
  Result<double> GlobalPointQuery(uint64_t key, uint64_t range) const {
    auto view = MergedView();
    if (!view.ok()) return view.status();
    return (*view)->PointQuery(key, range);
  }

  /// Aggregated counters (per-site tallies summed on demand).
  Stats stats() const {
    Stats s;
    for (const SiteState& site : sites_) {
      s.updates += site.updates;
      s.pushes += site.pushes;
      s.periodic_pushes += site.periodic_pushes;
      s.drift_pushes += site.drift_pushes;
      s.network.messages += site.net.messages;
      s.network.bytes += site.net.bytes;
    }
    return s;
  }

  /// Aggregated sender-side accounting of the compression channels
  /// (all-zero in CompressionMode::kFull).
  CompressionStats compression_stats() const {
    CompressionStats total;
    for (const SiteState& site : sites_) {
      const CompressionStats& s = site.sender.stats();
      total.full_images += s.full_images;
      total.delta_images += s.delta_images;
      total.rlz_images += s.rlz_images;
      total.wire_bytes += s.wire_bytes;
      total.raw_bytes += s.raw_bytes;
    }
    return total;
  }

  /// Largest timestamp processed so far.
  Timestamp clock() const {
    Timestamp t = 0;
    for (const SiteState& site : sites_) {
      t = std::max(t, site.node.sketch().Now());
    }
    return t;
  }

  /// The live local sketch of one site (always fresh, unlike the
  /// coordinator's snapshot of it).
  const EcmSketch<Counter>& site_sketch(int site) const {
    return sites_[static_cast<size_t>(site)].node.sketch();
  }

  Transport& transport() { return *transport_; }

 private:
  enum class PushKind { kInitial, kPeriodic, kDrift, kForced };

  struct SiteState {
    SiteState(NodeId id, const EcmConfig& cfg, const CompressionOptions& copts)
        : node(id, cfg), sender(copts), receiver(copts) {}
    Site<Counter> node;
    SketchSender<Counter> sender;      // compressed-push channel (unused
    SketchReceiver<Counter> receiver;  // in CompressionMode::kFull)
    std::optional<EcmSketch<Counter>> snapshot;
    Timestamp last_push_ts = 0;
    double pushed_l1 = 0.0;  ///< windowed L1 estimate at the last push
    uint64_t updates = 0;
    uint64_t pushes = 0;
    uint64_t periodic_pushes = 0;
    uint64_t drift_pushes = 0;
    NetworkStats net;  ///< this site's share of the transport traffic
  };

  void Push(SiteState* site, PushKind kind) {
    const EcmSketch<Counter>& local = site->node.sketch();
    size_t wire;
    if (config_.compression.mode == CompressionMode::kFull) {
      site->snapshot = local;  // models serialize -> wire -> deserialize
      wire = SketchWireSize(local);
      transport_->Send(site->node.id(), kCoordinatorNode, wire);
    } else {
      SketchWireImage img = site->sender.Ship(local);
      auto decoded = site->receiver.Receive(img.kind, img.bytes.data(),
                                            img.bytes.size());
      if (!decoded.ok()) {
        // In-process the channel cannot desync; resync defensively with a
        // full snapshot so propagation never wedges.
        site->sender.Reset();
        img = site->sender.Ship(local);
        decoded = site->receiver.Receive(img.kind, img.bytes.data(),
                                         img.bytes.size());
      }
      if (decoded.ok()) {
        site->snapshot = **decoded;
      } else {
        site->snapshot = local;
      }
      wire = img.bytes.size();
      transport_->Send(site->node.id(), kCoordinatorNode, wire);
    }
    site->last_push_ts = local.Now();
    site->pushed_l1 = local.EstimateL1(sketch_config_.window_len);
    ++site->pushes;
    if (kind == PushKind::kPeriodic) ++site->periodic_pushes;
    if (kind == PushKind::kDrift) ++site->drift_pushes;
    ++site->net.messages;
    site->net.bytes += wire;
  }

  Result<const EcmSketch<Counter>*> MergedView() const {
    uint64_t total_pushes = 0;
    for (const SiteState& site : sites_) total_pushes += site.pushes;
    if (merged_cache_.has_value() && merged_cache_pushes_ == total_pushes) {
      return &*merged_cache_;
    }
    std::vector<const EcmSketch<Counter>*> snapshots;
    snapshots.reserve(sites_.size());
    for (const SiteState& site : sites_) {
      if (!site.snapshot.has_value()) {
        return Status::InvalidArgument(
            "PeriodicAggregator: some site has never pushed; call SyncAll() "
            "or wait for its first arrival");
      }
      snapshots.push_back(&*site.snapshot);
    }
    auto merged = EcmSketch<Counter>::Merge(
        snapshots, sketch_config_.epsilon_sw, sketch_config_.seed);
    if (!merged.ok()) return merged.status();
    merged_cache_ = std::move(*merged);
    merged_cache_pushes_ = total_pushes;
    return &*merged_cache_;
  }

  EcmConfig sketch_config_;
  Config config_;
  Transport* transport_;
  std::unique_ptr<Transport> owned_transport_;
  std::vector<SiteState> sites_;
  // Merged snapshot cache, keyed on the global push count (stale after
  // any push; rebuilt lazily at query time, outside the ingest path).
  mutable std::optional<EcmSketch<Counter>> merged_cache_;
  mutable uint64_t merged_cache_pushes_ = 0;
};

/// The paper's default instantiation (ECM-EH sites).
using PeriodicAggregator = PeriodicAggregatorT<ExponentialHistogram>;

// Compiled once in periodic.cc for the common counter types.
extern template class PeriodicAggregatorT<ExponentialHistogram>;
extern template class PeriodicAggregatorT<RandomizedWave>;

}  // namespace ecm

#endif  // ECM_DIST_PERIODIC_H_
