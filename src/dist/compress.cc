#include "src/dist/compress.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "src/util/bytes.h"

namespace ecm {
namespace {

// Greedy factorization matches are seeded from this many reference bytes:
// shorter copies rarely beat their op overhead (1–3 varint bytes for the
// header plus up to 4 for the offset), and one fixed gram width keeps the
// reference index a single flat hash pass.
constexpr size_t kRlzGramBytes = 8;

// Most recent reference positions kept per gram hash. Successive sketch
// images are near-aligned, so one or two candidates almost always hold
// the best match; a small bound keeps hostile/self-similar references
// from degrading the encoder to quadratic.
constexpr size_t kRlzMaxCandidates = 4;

uint64_t RlzGram(const uint8_t* p) {
  uint64_t g;
  std::memcpy(&g, p, sizeof(g));
  // Fibonacci hash: gram bytes are low-entropy (varint payloads), so
  // spread them before bucketing.
  return g * 0x9E3779B97F4A7C15ULL;
}

struct RlzOps {
  ByteWriter ops;
  uint64_t n_ops = 0;

  void EmitLiteral(const uint8_t* data, size_t len) {
    ops.PutVarint(static_cast<uint64_t>(len) << 1);
    ops.PutRaw(data, len);
    ++n_ops;
  }
  void EmitCopy(size_t offset, size_t len) {
    ops.PutVarint((static_cast<uint64_t>(len) << 1) | 1);
    ops.PutVarint(offset);
    ++n_ops;
  }
};

}  // namespace

const char* SketchWireKindName(SketchWireKind kind) {
  switch (kind) {
    case SketchWireKind::kFull:
      return "full";
    case SketchWireKind::kDelta:
      return "delta";
    case SketchWireKind::kRlz:
      return "rlz";
  }
  return "unknown";
}

std::vector<uint8_t> RlzEncode(const std::vector<uint8_t>& reference,
                               const uint8_t* data, size_t size,
                               uint64_t epoch) {
  // Index every gram start position in the reference, newest kept first.
  std::unordered_map<uint64_t, std::vector<uint32_t>> index;
  if (reference.size() >= kRlzGramBytes) {
    index.reserve(reference.size());
    for (size_t i = 0; i + kRlzGramBytes <= reference.size(); ++i) {
      std::vector<uint32_t>& slots = index[RlzGram(reference.data() + i)];
      if (slots.size() < kRlzMaxCandidates) {
        slots.push_back(static_cast<uint32_t>(i));
      }
    }
  }

  RlzOps out;
  size_t literal_start = 0;  // pending literal run [literal_start, i)
  size_t i = 0;
  while (i < size) {
    size_t best_len = 0;
    size_t best_off = 0;
    if (i + kRlzGramBytes <= size) {
      auto it = index.find(RlzGram(data + i));
      if (it != index.end()) {
        for (uint32_t cand : it->second) {
          // Verify and extend the candidate match.
          size_t len = 0;
          const size_t max_len =
              std::min(size - i, reference.size() - cand);
          while (len < max_len && reference[cand + len] == data[i + len]) {
            ++len;
          }
          if (len > best_len) {
            best_len = len;
            best_off = cand;
          }
        }
      }
    }
    if (best_len >= kRlzGramBytes) {
      if (i > literal_start) {
        out.EmitLiteral(data + literal_start, i - literal_start);
      }
      out.EmitCopy(best_off, best_len);
      i += best_len;
      literal_start = i;
    } else {
      ++i;
    }
  }
  if (size > literal_start) {
    out.EmitLiteral(data + literal_start, size - literal_start);
  }

  ByteWriter payload;
  payload.PutVarint(wire_internal::kRlzFormatVersion);
  payload.PutVarint(epoch);
  payload.PutFixed<uint64_t>(
      wire_internal::WireChecksum(reference.data(), reference.size()));
  payload.PutVarint(reference.size());
  payload.PutVarint(size);
  payload.PutVarint(out.n_ops);
  payload.PutRaw(out.ops.bytes().data(), out.ops.size());
  return wire_internal::WrapWirePayload(wire_internal::kRlzMagic, payload);
}

Result<std::vector<uint8_t>> RlzDecode(const uint8_t* data, size_t size,
                                       const std::vector<uint8_t>& reference,
                                       uint64_t expected_epoch) {
  ByteReader r(data, size);
  ECM_RETURN_NOT_OK(
      wire_internal::CheckWireHeader(data, size, wire_internal::kRlzMagic, &r));
  auto fmt = r.GetVarint();
  if (!fmt.ok()) return fmt.status();
  if (*fmt != wire_internal::kRlzFormatVersion) {
    return Status::Corruption("unsupported RLZ format version");
  }
  auto epoch = r.GetVarint();
  if (!epoch.ok()) return epoch.status();
  auto ref_checksum = r.GetFixed<uint64_t>();
  if (!ref_checksum.ok()) return ref_checksum.status();
  auto ref_len = r.GetVarint();
  if (!ref_len.ok()) return ref_len.status();
  auto raw_len = r.GetVarint();
  if (!raw_len.ok()) return raw_len.status();
  auto n_ops = r.GetVarint();
  if (!n_ops.ok()) return n_ops.status();
  if (*epoch != expected_epoch) {
    return Status::StaleBase("RLZ image from a different rejoin epoch");
  }
  if (*ref_len != reference.size() ||
      *ref_checksum !=
          wire_internal::WireChecksum(reference.data(), reference.size())) {
    return Status::StaleBase("RLZ image against a different reference");
  }
  if (*raw_len > wire_internal::kMaxRlzRawBytes) {
    return Status::Corruption("RLZ decoded size implausibly large");
  }
  // Every op contributes at least one payload byte, so more ops than
  // remaining input is malformed regardless of their contents.
  if (*n_ops > r.remaining()) {
    return Status::Corruption("RLZ op count exceeds payload");
  }

  std::vector<uint8_t> out;
  out.reserve(*raw_len);
  for (uint64_t k = 0; k < *n_ops; ++k) {
    auto header = r.GetVarint();
    if (!header.ok()) return header.status();
    const uint64_t len = *header >> 1;
    if (len == 0 || len > *raw_len - out.size()) {
      return Status::Corruption("RLZ op overruns the decoded image");
    }
    if (*header & 1) {
      auto offset = r.GetVarint();
      if (!offset.ok()) return offset.status();
      if (*offset > reference.size() || len > reference.size() - *offset) {
        return Status::Corruption("RLZ copy op past the reference");
      }
      out.insert(out.end(), reference.data() + *offset,
                 reference.data() + *offset + len);
    } else {
      auto lit = r.GetRaw(static_cast<size_t>(len));
      if (!lit.ok()) return lit.status();
      out.insert(out.end(), *lit, *lit + len);
    }
  }
  if (!r.exhausted()) {
    return Status::Corruption("trailing bytes after RLZ ops");
  }
  if (out.size() != *raw_len) {
    return Status::Corruption("RLZ ops do not reconstruct the full image");
  }
  return out;
}

}  // namespace ecm
