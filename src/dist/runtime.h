// The shared distributed runtime (§5–§6): one Site/Coordinator/Transport
// substrate under every distributed structure in the repo, instead of the
// three private site/coordinator plumbings the aggregation tree, the
// scheduled propagator and the geometric monitors used to carry.
//
//  * Site<Counter>      — one observation point (dist/site.h): a
//    counter-generic EcmSketch plus an optional dyadic stack, with
//    per-arrival and batched ingest. Exactly one ParallelIngest worker
//    ever touches a site, so sites need no locks.
//  * Coordinator<Counter> — owns the sites and the global views: flat
//    collect-and-merge (§5.3) and balanced-tree aggregation (§5.1), both
//    shipping through the Transport.
//  * ParallelIngest     — the sharded multi-threaded ingest driver: one
//    worker per site shard (site s belongs to shard s mod workers),
//    per-shard event batches, and a sync barrier on which all workers
//    quiesce whenever any site demands a global synchronization (the
//    geometric monitors' local-violation path). Between barriers workers
//    only touch their own sites, so the whole drive is data-race-free by
//    construction; the barrier's mutex provides the happens-before edges
//    for the coordinator's cross-site reads.

#ifndef ECM_DIST_RUNTIME_H_
#define ECM_DIST_RUNTIME_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/ecm_sketch.h"
#include "src/dist/aggregation_tree.h"
#include "src/dist/compress.h"
#include "src/dist/serialize.h"
#include "src/dist/site.h"
#include "src/dist/transport.h"
#include "src/stream/event.h"
#include "src/stream/generators.h"
#include "src/util/result.h"

namespace ecm {

/// The coordinator of one distributed run: owns `num_sites` sites and
/// produces global views by shipping their sketches over the Transport.
/// Pass a shared Transport to charge several substrates into one
/// NetworkStats currency; with none, the coordinator owns a loopback.
template <SlidingWindowCounter Counter>
class Coordinator {
 public:
  Coordinator(int num_sites, const EcmConfig& config,
              Transport* transport = nullptr,
              const typename Site<Counter>::Options& site_options = {})
      : config_(config), transport_(transport) {
    if (!transport_) {
      owned_transport_ = std::make_unique<LoopbackTransport>();
      transport_ = owned_transport_.get();
    }
    sites_.reserve(static_cast<size_t>(num_sites));
    for (int i = 0; i < num_sites; ++i) {
      sites_.emplace_back(i, config_, site_options);
    }
  }

  int num_sites() const { return static_cast<int>(sites_.size()); }
  Site<Counter>& site(int i) { return sites_[static_cast<size_t>(i)]; }
  const Site<Counter>& site(int i) const {
    return sites_[static_cast<size_t>(i)];
  }
  const EcmConfig& config() const { return config_; }
  Transport& transport() { return *transport_; }
  const Transport& transport() const { return *transport_; }

  /// Enables compressed propagation for CollectAndMerge: every site gets
  /// a persistent sender/receiver channel pair (dist/compress.h), so
  /// repeated collects ship delta/RLZ images instead of full snapshots.
  /// The merged view is built from the receiver-decoded sketches — the
  /// exact state a remote coordinator would reconstruct — which the
  /// channels verify bit-identical to the full images.
  void EnableCompression(const CompressionOptions& options) {
    channels_.clear();
    channels_.reserve(sites_.size());
    for (size_t i = 0; i < sites_.size(); ++i) channels_.emplace_back(options);
  }

  /// Aggregated sender-side accounting of the compression channels.
  CompressionStats compression_stats() const {
    CompressionStats total;
    for (const Channel& ch : channels_) {
      const CompressionStats& s = ch.sender.stats();
      total.full_images += s.full_images;
      total.delta_images += s.delta_images;
      total.rlz_images += s.rlz_images;
      total.wire_bytes += s.wire_bytes;
      total.raw_bytes += s.raw_bytes;
    }
    return total;
  }

  /// Flat §5.3 aggregation: every site ships its serialized sketch to the
  /// coordinator (n messages at exact wire size; payload-carrying
  /// transports deliver the bytes verbatim), which merges them
  /// order-preservingly with window error parameter `eps_prime_sw`
  /// (defaults to the sites' own ε_sw). With EnableCompression the
  /// shipped images are delta/RLZ-compressed against the previous
  /// collect and decoded back through the receiver channels.
  Result<EcmSketch<Counter>> CollectAndMerge(double eps_prime_sw = -1.0,
                                             uint64_t seed = 0) const {
    const double eps = eps_prime_sw > 0.0 ? eps_prime_sw : config_.epsilon_sw;
    std::vector<const EcmSketch<Counter>*> ptrs;
    ptrs.reserve(sites_.size());
    if (!channels_.empty()) {
      for (size_t i = 0; i < sites_.size(); ++i) {
        auto decoded = ShipThroughChannel(i);
        if (!decoded.ok()) return decoded.status();
        ptrs.push_back(*decoded);
      }
      return EcmSketch<Counter>::Merge(ptrs, eps, seed);
    }
    for (const auto& s : sites_) {
      const std::vector<uint8_t> wire = SerializeSketch(s.sketch());
      transport_->Send(s.id(), kCoordinatorNode, wire.data(), wire.size());
      ptrs.push_back(&s.sketch());
    }
    return EcmSketch<Counter>::Merge(ptrs, eps, seed);
  }

  /// Balanced-binary-tree aggregation (§5.1) over the sites' sketches,
  /// charging every merge transfer through this runtime's Transport.
  Result<AggregationResult<Counter>> AggregateUp(
      double eps_prime_sw = -1.0) const {
    std::vector<const EcmSketch<Counter>*> leaves;
    leaves.reserve(sites_.size());
    for (const auto& s : sites_) leaves.push_back(&s.sketch());
    return AggregateTreePtrs(leaves, eps_prime_sw, transport_);
  }

 private:
  struct Channel {
    explicit Channel(const CompressionOptions& options)
        : sender(options), receiver(options) {}
    SketchSender<Counter> sender;
    SketchReceiver<Counter> receiver;
  };

  /// Ships site `i`'s sketch through its channel and returns the decoded
  /// (receiver-side) sketch. A stale-base rejection — e.g. the first
  /// image after a channel reset — resyncs once with a full snapshot.
  Result<const EcmSketch<Counter>*> ShipThroughChannel(size_t i) const {
    Channel& ch = channels_[i];
    const Site<Counter>& s = sites_[i];
    SketchWireImage img = ch.sender.Ship(s.sketch());
    transport_->Send(s.id(), kCoordinatorNode, img.bytes.data(),
                     img.bytes.size());
    auto decoded =
        ch.receiver.Receive(img.kind, img.bytes.data(), img.bytes.size());
    if (!decoded.ok() && decoded.status().code() == StatusCode::kStaleBase) {
      ch.sender.Reset();
      img = ch.sender.Ship(s.sketch());
      transport_->Send(s.id(), kCoordinatorNode, img.bytes.data(),
                       img.bytes.size());
      decoded =
          ch.receiver.Receive(img.kind, img.bytes.data(), img.bytes.size());
    }
    if (!decoded.ok()) return decoded.status();
    return *decoded;
  }

  EcmConfig config_;
  Transport* transport_;
  std::unique_ptr<Transport> owned_transport_;
  std::vector<Site<Counter>> sites_;
  // Per-site compression channels (empty = uncompressed propagation).
  // `mutable` because CollectAndMerge is logically const on the sites
  // but advances the channels' reference chain.
  mutable std::vector<Channel> channels_;
};

/// The rendezvous point of ParallelIngest: workers drain their shards in
/// batches and, when any of them requests a global sync, all live workers
/// park here; the last arrival runs the sync function exactly once with
/// every other worker quiescent, then releases them.
class IngestBarrier {
 public:
  explicit IngestBarrier(int workers) : active_(workers) {}

  /// Flags that a global sync must run at the next rendezvous. Callable
  /// from any worker, any number of times per round.
  void RequestSync();

  /// True iff a sync has been requested and not yet drained.
  bool sync_pending() const;

  /// Number of sync rounds drained so far.
  uint64_t rounds() const;

  /// Batch-boundary check-in: returns immediately when no sync is
  /// pending; otherwise blocks until every live worker has checked in,
  /// runs `fn` on exactly one of them (all others parked — `fn` may read
  /// and write every site), and releases the round.
  template <typename Fn>
  void DrainIfRequested(Fn&& fn) {
    std::unique_lock<std::mutex> lk(mu_);
    if (!pending_) return;
    const uint64_t gen = generation_;
    ++waiting_;
    while (true) {
      if (waiting_ == active_) {
        fn();
        pending_ = false;
        waiting_ = 0;
        ++generation_;
        ++rounds_;
        cv_.notify_all();
        return;
      }
      cv_.wait(lk);
      if (generation_ != gen) return;  // another worker ran the sync
      // Spurious wake or a worker left: re-check whether we are last.
    }
  }

  /// A worker finished its shard: it stops participating in rendezvous.
  /// Wakes parked workers so the "everyone checked in" condition is
  /// re-evaluated against the reduced head count.
  void Leave();

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int active_;
  int waiting_ = 0;
  bool pending_ = false;
  uint64_t generation_ = 0;
  uint64_t rounds_ = 0;
};

struct ParallelIngestOptions {
  /// Worker threads; <= 0 picks min(num_sites, hardware_concurrency).
  int num_workers = 0;
  /// Events a worker processes between barrier check-ins. Larger batches
  /// amortize synchronization; syncs are deferred to batch boundaries, so
  /// this also bounds the extra detection latency vs sequential ingest.
  size_t batch_size = 512;
  /// Run one final sync after all shards drain (a query barrier: the
  /// coordinator's view then reflects every arrival).
  bool final_sync = true;
};

struct ParallelIngestReport {
  uint64_t events = 0;       ///< arrivals driven
  int workers = 0;           ///< worker threads used
  uint64_t sync_rounds = 0;  ///< barrier drains (incl. the final one)
};

/// Drives `events` through a sharded worker pool: site s belongs to
/// worker s mod workers, each worker replays its sites' arrivals in
/// stream order. `on_event(site, event)` runs on the owning worker and
/// must touch only that site's state; returning true requests a global
/// sync, executed by `on_sync()` at the next barrier rendezvous with
/// every worker quiescent. This is the multi-core ingest path of the
/// distributed benches and examples; single-threaded semantics differ
/// only in sync placement (batch boundaries instead of the triggering
/// arrival).
template <typename OnEvent, typename OnSync>
ParallelIngestReport ParallelIngest(const std::vector<StreamEvent>& events,
                                    int num_sites, OnEvent&& on_event,
                                    OnSync&& on_sync,
                                    const ParallelIngestOptions& options = {}) {
  ParallelIngestReport report;
  report.events = events.size();
  int workers = options.num_workers;
  if (workers <= 0) {
    workers = static_cast<int>(std::thread::hardware_concurrency());
    if (workers <= 0) workers = 1;
  }
  workers = std::min(workers, std::max(num_sites, 1));
  report.workers = workers;

  std::vector<std::vector<StreamEvent>> shards =
      ShardByWorker(events, static_cast<uint32_t>(workers));
  const size_t batch = std::max<size_t>(options.batch_size, 1);

  IngestBarrier barrier(workers);
  auto drive = [&](int w) {
    const std::vector<StreamEvent>& shard = shards[static_cast<size_t>(w)];
    size_t i = 0;
    while (i < shard.size()) {
      const size_t end = std::min(i + batch, shard.size());
      bool need_sync = false;
      for (; i < end; ++i) {
        if (on_event(static_cast<int>(shard[i].node), shard[i])) {
          need_sync = true;
        }
      }
      if (need_sync) barrier.RequestSync();
      barrier.DrainIfRequested(on_sync);
    }
    barrier.Leave();
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) pool.emplace_back(drive, w);
  for (auto& t : pool) t.join();
  if (options.final_sync) on_sync();
  report.sync_rounds = barrier.rounds() + (options.final_sync ? 1 : 0);
  return report;
}

}  // namespace ecm

#endif  // ECM_DIST_RUNTIME_H_
