#include "src/dist/fault.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/util/hash.h"

namespace ecm {
namespace {

// Decision-stream salts: each kind of draw gets its own hash stream so
// e.g. the delay distance of a message is independent of the draw that
// selected kDelay for it.
constexpr uint64_t kSaltAction = 0xFA01;
constexpr uint64_t kSaltDelay = 0xFA02;
constexpr uint64_t kSaltCorrupt = 0xFA03;
constexpr uint64_t kSaltBackoff = 0xFA04;

uint64_t HashCoords(uint64_t seed, uint64_t salt, uint64_t a, uint64_t b) {
  return Mix64(seed ^ Mix64(salt ^ Mix64(a) ^ (b * 0x9E3779B97F4A7C15ULL)));
}

double ToUnit(uint64_t h) {
  // Top 53 bits -> [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

uint64_t BackoffDelayMs(const BackoffPolicy& policy, uint32_t attempt) {
  double delay = static_cast<double>(policy.initial_ms);
  const double mult = policy.multiplier > 1.0 ? policy.multiplier : 1.0;
  for (uint32_t i = 0; i < attempt; ++i) {
    delay *= mult;
    if (delay >= static_cast<double>(policy.max_ms)) break;
  }
  delay = std::min(delay, static_cast<double>(policy.max_ms));
  const double jitter = std::clamp(policy.jitter, 0.0, 1.0);
  if (jitter > 0.0) {
    const double u =
        ToUnit(HashCoords(policy.seed, kSaltBackoff, attempt, 0));
    delay *= 1.0 - jitter * u;
  }
  return static_cast<uint64_t>(delay);
}

// ---------------------------------------------------------------------------
// FaultPlan
// ---------------------------------------------------------------------------

FaultPlan::FaultPlan(FaultPlanConfig config) : config_(std::move(config)) {}

double FaultPlan::Uniform(uint64_t salt, NodeId node, uint64_t index) const {
  return ToUnit(HashCoords(config_.seed, salt,
                           static_cast<uint64_t>(static_cast<int64_t>(node)),
                           index));
}

bool FaultPlan::InPartition(NodeId node, uint64_t frame_index) const {
  for (const auto& p : config_.partitions) {
    if (p.node == node && frame_index >= p.from_frame &&
        frame_index < p.to_frame) {
      return true;
    }
  }
  return false;
}

FaultAction FaultPlan::ActionFor(NodeId node, uint64_t frame_index) const {
  if (InPartition(node, frame_index)) return FaultAction::kDrop;
  const double r = Uniform(kSaltAction, node, frame_index);
  double acc = config_.drop_p;
  if (r < acc) return FaultAction::kDrop;
  acc += config_.duplicate_p;
  if (r < acc) return FaultAction::kDuplicate;
  acc += config_.corrupt_p;
  if (r < acc) return FaultAction::kCorrupt;
  acc += config_.delay_p;
  if (r < acc) return FaultAction::kDelay;
  acc += config_.sever_p;
  if (r < acc) return FaultAction::kSever;
  return FaultAction::kNone;
}

uint32_t FaultPlan::DelayFrames(NodeId node, uint64_t frame_index) const {
  const uint32_t span = std::max<uint32_t>(1, config_.max_delay_frames);
  const double u = Uniform(kSaltDelay, node, frame_index);
  return 1 + static_cast<uint32_t>(u * span) % span;
}

size_t FaultPlan::CorruptBit(NodeId node, uint64_t frame_index,
                             size_t size) const {
  if (size == 0) return 0;
  const uint64_t h =
      HashCoords(config_.seed, kSaltCorrupt,
                 static_cast<uint64_t>(static_cast<int64_t>(node)),
                 frame_index);
  return static_cast<size_t>(h % (size * 8));
}

bool FaultPlan::RefuseHello(NodeId node, uint32_t attempt_index) const {
  for (const auto& r : config_.hello_refusals) {
    if (r.node == node && attempt_index >= r.refuse_from &&
        attempt_index < r.refuse_from + r.refuse_count) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// FaultInjectingTransport
// ---------------------------------------------------------------------------

FaultInjectingTransport::FaultInjectingTransport(Transport* inner,
                                                 const FaultPlan* plan)
    : inner_(inner), plan_(plan) {}

void FaultInjectingTransport::Send(NodeId from, NodeId to,
                                   size_t payload_bytes) {
  SendImpl(from, to, nullptr, payload_bytes, /*accounting_only=*/true);
}

void FaultInjectingTransport::Send(NodeId from, NodeId to,
                                   const uint8_t* data, size_t size) {
  SendImpl(from, to, data, size, /*accounting_only=*/false);
}

void FaultInjectingTransport::Deliver(NodeId from, NodeId to,
                                      const uint8_t* data, size_t size,
                                      bool accounting_only,
                                      size_t payload_bytes) {
  if (accounting_only) {
    inner_->Send(from, to, payload_bytes);
  } else {
    inner_->Send(from, to, data, size);
  }
}

void FaultInjectingTransport::SendImpl(NodeId from, NodeId to,
                                       const uint8_t* data, size_t size,
                                       bool accounting_only) {
  std::unique_lock<std::mutex> lk(mu_);
  uint64_t index = 0;
  {
    auto it = std::find_if(
        frame_counts_.begin(), frame_counts_.end(),
        [from](const std::pair<NodeId, uint64_t>& e) { return e.first == from; });
    if (it == frame_counts_.end()) {
      frame_counts_.emplace_back(from, 0);
      it = frame_counts_.end() - 1;
    }
    index = it->second++;
  }
  ++offered_messages_;
  offered_bytes_ += size;
  ++inj_.messages;

  const FaultAction action = plan_->ActionFor(from, index);
  switch (action) {
    case FaultAction::kDrop: {
      ++inj_.drops;
      if (plan_->InPartition(from, index)) ++inj_.partition_drops;
      break;
    }
    case FaultAction::kDuplicate: {
      ++inj_.duplicates;
      lk.unlock();
      Deliver(from, to, data, size, accounting_only, size);
      Deliver(from, to, data, size, accounting_only, size);
      lk.lock();
      break;
    }
    case FaultAction::kCorrupt: {
      if (!accounting_only && size > 0) {
        ++inj_.corrupts;
        std::vector<uint8_t> copy(data, data + size);
        const size_t bit = plan_->CorruptBit(from, index, size);
        copy[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
        lk.unlock();
        inner_->Send(from, to, copy.data(), copy.size());
        lk.lock();
      } else {
        // No bytes to corrupt: pass through.
        lk.unlock();
        Deliver(from, to, data, size, accounting_only, size);
        lk.lock();
      }
      break;
    }
    case FaultAction::kDelay: {
      ++inj_.delays;
      Delayed d;
      d.from = from;
      d.to = to;
      d.accounting_only = accounting_only;
      d.payload_bytes = size;
      if (!accounting_only && size > 0) d.bytes.assign(data, data + size);
      d.release_index = index + plan_->DelayFrames(from, index);
      delayed_.push_back(std::move(d));
      break;
    }
    case FaultAction::kSever: {
      // No connection to kill at this layer; count it and deliver.
      ++inj_.severs;
      lk.unlock();
      Deliver(from, to, data, size, accounting_only, size);
      lk.lock();
      break;
    }
    case FaultAction::kNone: {
      lk.unlock();
      Deliver(from, to, data, size, accounting_only, size);
      lk.lock();
      break;
    }
  }
  ReleaseDueLocked(lk, from, index);
}

void FaultInjectingTransport::ReleaseDueLocked(
    std::unique_lock<std::mutex>& lk, NodeId from, uint64_t index) {
  // Collect due messages first so inner sends run unlocked; held order
  // per node is preserved.
  std::vector<Delayed> due;
  for (auto it = delayed_.begin(); it != delayed_.end();) {
    if (it->from == from && it->release_index <= index) {
      due.push_back(std::move(*it));
      it = delayed_.erase(it);
    } else {
      ++it;
    }
  }
  if (due.empty()) return;
  lk.unlock();
  for (const Delayed& d : due) {
    Deliver(d.from, d.to, d.bytes.data(), d.bytes.size(), d.accounting_only,
            d.payload_bytes);
  }
  lk.lock();
}

void FaultInjectingTransport::FlushDelayed() {
  std::deque<Delayed> due;
  {
    std::lock_guard<std::mutex> lk(mu_);
    due.swap(delayed_);
  }
  for (const Delayed& d : due) {
    Deliver(d.from, d.to, d.bytes.data(), d.bytes.size(), d.accounting_only,
            d.payload_bytes);
  }
}

NetworkStats FaultInjectingTransport::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  NetworkStats s;
  s.messages = offered_messages_;
  s.bytes = offered_bytes_;
  return s;
}

FaultInjectingTransport::InjectionStats
FaultInjectingTransport::injection_stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return inj_;
}

}  // namespace ecm
