// The message substrate of the distributed runtime (§5–§6 deployment
// path): every site→coordinator or site→site transfer of the aggregation
// tree, the scheduled propagator and the geometric monitors goes through
// one Transport, so all three substrates charge the same NetworkStats
// currency — payload bytes as priced by dist/serialize.h wire encodings
// (sketches) or fixed64 statistics vectors (geometric syncs).
//
// Transport has two send forms that charge the same currency:
//  * Send(from, to, payload_bytes) — accounting-only, for substrates that
//    deliver state by reference inside one process and only need the wire
//    cost charged (the experimentally meaningful effect for Fig. 5/6,
//    Table 4);
//  * Send(from, to, data, size)    — payload-carrying: implementations
//    that really move bytes (dist/socket_transport.h) ship `data`
//    verbatim, while the in-process LoopbackTransport just counts it.
// Both forms charge exactly `size` payload bytes, so loopback and socket
// runs of the same propagation script produce identical NetworkStats —
// the one-accounting-currency invariant.

#ifndef ECM_DIST_TRANSPORT_H_
#define ECM_DIST_TRANSPORT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "src/dist/network_stats.h"

namespace ecm {

/// Logical node id inside one distributed runtime: sites are 0..n-1.
using NodeId = int;

/// The coordinator's node id.
inline constexpr NodeId kCoordinatorNode = -1;

/// Point-to-point message shipping with exact byte accounting. All
/// methods must be safe to call concurrently: ParallelIngest workers push
/// site-local traffic (scheduled-propagation snapshots) from their own
/// threads.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Ships one message of `payload_bytes` from `from` to `to`.
  virtual void Send(NodeId from, NodeId to, size_t payload_bytes) = 0;

  /// Ships one message carrying `size` payload bytes. Implementations
  /// that move real bytes deliver `data` verbatim; the default charges
  /// the accounting-only form, so both forms always cost the same.
  virtual void Send(NodeId from, NodeId to, const uint8_t* data,
                    size_t size) {
    (void)data;
    Send(from, to, size);
  }

  /// Cumulative transfer volume across every message ever sent.
  virtual NetworkStats stats() const = 0;
};

/// In-process transport: delivery is instantaneous (state moves by
/// reference inside the runtime), so the observable effect is the
/// accounting. Counters are atomic — one LoopbackTransport may be shared
/// by all substrates of a run and by all ParallelIngest workers.
class LoopbackTransport final : public Transport {
 public:
  using Transport::Send;
  void Send(NodeId from, NodeId to, size_t payload_bytes) override;
  NetworkStats stats() const override;

 private:
  std::atomic<uint64_t> messages_{0};
  std::atomic<uint64_t> bytes_{0};
};

/// Wire price of shipping a dense statistics vector of `dim` doubles
/// (geometric-monitor syncs: vectors up, the average back down).
inline constexpr size_t VectorWireSize(size_t dim) {
  return dim * sizeof(double);
}

}  // namespace ecm

#endif  // ECM_DIST_TRANSPORT_H_
