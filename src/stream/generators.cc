#include "src/stream/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace ecm {

ZipfStream::ZipfStream(const Config& config)
    : config_(config),
      zipf_(config.domain, config.skew),
      rng_(config.seed) {}

StreamEvent ZipfStream::Next() {
  // Exponential inter-arrival scaled by the instantaneous intensity.
  double u = rng_.NextDouble();
  double base_gap = -std::log(1.0 - u) / config_.events_per_tick;
  double intensity = 1.0;
  if (config_.diurnal_amplitude > 0.0) {
    double phase = 2.0 * M_PI * clock_ /
                   static_cast<double>(config_.diurnal_period);
    intensity += config_.diurnal_amplitude * std::sin(phase);
    if (intensity < 0.05) intensity = 0.05;  // nights are quiet, not silent
  }
  clock_ += base_gap / intensity;

  StreamEvent e;
  e.ts = static_cast<Timestamp>(std::ceil(clock_));
  e.key = zipf_.Sample(rng_);
  e.node = config_.num_nodes > 1
               ? static_cast<uint32_t>(rng_.Uniform(config_.num_nodes))
               : 0;
  return e;
}

std::vector<std::vector<StreamEvent>> PartitionByNode(
    const std::vector<StreamEvent>& events, uint32_t num_nodes) {
  std::vector<std::vector<StreamEvent>> parts(num_nodes);
  for (const StreamEvent& e : events) {
    parts[e.node % num_nodes].push_back(e);
  }
  return parts;
}

std::vector<std::vector<StreamEvent>> ShardByWorker(
    const std::vector<StreamEvent>& events, uint32_t num_workers) {
  if (num_workers == 0) num_workers = 1;
  std::vector<std::vector<StreamEvent>> shards(num_workers);
  for (const StreamEvent& e : events) {
    shards[e.node % num_workers].push_back(e);
  }
  return shards;
}

uint64_t ExactFrequency(const std::vector<StreamEvent>& events, uint64_t key,
                        Timestamp now, uint64_t range) {
  Timestamp boundary = WindowStart(now, range);
  uint64_t count = 0;
  for (const StreamEvent& e : events) {
    if (e.key == key && e.ts > boundary && e.ts <= now) ++count;
  }
  return count;
}

ExactRangeStats ComputeExactRangeStats(const std::vector<StreamEvent>& events,
                                       Timestamp now, uint64_t range) {
  Timestamp boundary = WindowStart(now, range);
  std::unordered_map<uint64_t, uint64_t> freq;
  ExactRangeStats stats;
  for (const StreamEvent& e : events) {
    if (e.ts > boundary && e.ts <= now) {
      ++freq[e.key];
      ++stats.l1;
    }
  }
  stats.freqs.reserve(freq.size());
  for (const auto& [key, count] : freq) {
    stats.freqs.emplace_back(key, count);
    stats.self_join +=
        static_cast<double>(count) * static_cast<double>(count);
  }
  return stats;
}

}  // namespace ecm
