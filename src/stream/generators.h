// Generic synthetic stream generators: the building blocks for the two
// trace synthesizers (wc98_like.h, snmp_like.h) and for focused test /
// ablation workloads.

#ifndef ECM_STREAM_GENERATORS_H_
#define ECM_STREAM_GENERATORS_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/stream/event.h"
#include "src/stream/zipf.h"
#include "src/util/random.h"

namespace ecm {

/// Abstract pull-based stream source. Generators are deterministic given
/// their seed, so every experiment row is replayable.
class StreamSource {
 public:
  virtual ~StreamSource() = default;

  /// Produces the next event (timestamps non-decreasing).
  virtual StreamEvent Next() = 0;

  /// Convenience: materializes the next `n` events.
  std::vector<StreamEvent> Take(size_t n) {
    std::vector<StreamEvent> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) out.push_back(Next());
    return out;
  }
};

/// Zipf-keyed stream with configurable arrival-rate modulation.
///
/// Arrival timestamps follow an inhomogeneous Poisson-like process with
/// intensity  λ(t) = base_rate · (1 + diurnal_amplitude · sin(2πt/period)),
/// approximated by exponential inter-arrivals scaled by the instantaneous
/// intensity — the classic shape of web/wireless traffic.
class ZipfStream : public StreamSource {
 public:
  struct Config {
    uint64_t domain = 100000;      ///< number of distinct keys
    double skew = 1.0;             ///< Zipf exponent
    uint32_t num_nodes = 1;        ///< sites; node sampled uniformly
    double events_per_tick = 1.0;  ///< base arrival rate
    double diurnal_amplitude = 0.0;  ///< 0 = homogeneous arrivals
    uint64_t diurnal_period = 86'400'000;  ///< one day in ms
    uint64_t seed = 42;
  };

  explicit ZipfStream(const Config& config);

  StreamEvent Next() override;

  const Config& config() const { return config_; }

 private:
  Config config_;
  ZipfDistribution zipf_;
  Rng rng_;
  double clock_ = 1.0;  // fractional tick clock; emitted ts = ceil(clock_)
};

/// Stream that cycles deterministically over [1, domain] — worst case for
/// sketches (uniform, no skew) and convenient for exact-count tests.
class RoundRobinStream : public StreamSource {
 public:
  RoundRobinStream(uint64_t domain, uint32_t num_nodes,
                   uint64_t ticks_per_event = 1)
      : domain_(domain),
        num_nodes_(num_nodes),
        ticks_per_event_(ticks_per_event) {}

  StreamEvent Next() override {
    StreamEvent e;
    e.ts = 1 + count_ * ticks_per_event_;
    e.key = 1 + (count_ % domain_);
    e.node = static_cast<uint32_t>(count_ % num_nodes_);
    ++count_;
    return e;
  }

 private:
  uint64_t domain_;
  uint32_t num_nodes_;
  uint64_t ticks_per_event_;
  uint64_t count_ = 0;
};

/// Splits an event vector by node id — the distributed-experiment harness
/// uses this to feed per-site sketches.
std::vector<std::vector<StreamEvent>> PartitionByNode(
    const std::vector<StreamEvent>& events, uint32_t num_nodes);

/// Groups events into `num_workers` shards with shard = node mod workers,
/// preserving arrival order inside every shard (hence inside every site).
/// This is the input partition of dist/runtime.h's ParallelIngest: all
/// sites of one shard are owned by exactly one worker, so site state
/// needs no locking.
std::vector<std::vector<StreamEvent>> ShardByWorker(
    const std::vector<StreamEvent>& events, uint32_t num_workers);

/// Exact frequency of `key` among events with ts ∈ (now-range, now]
/// (linear scan ground truth for error measurement).
uint64_t ExactFrequency(const std::vector<StreamEvent>& events, uint64_t key,
                        Timestamp now, uint64_t range);

/// Exact ‖a_r‖₁ and per-key frequency table over a range, plus exact
/// self-join size; one pass over the events.
struct ExactRangeStats {
  uint64_t l1 = 0;            ///< number of arrivals in range
  double self_join = 0.0;     ///< Σ_x f(x)²
  std::vector<std::pair<uint64_t, uint64_t>> freqs;  ///< (key, count)
};
ExactRangeStats ComputeExactRangeStats(const std::vector<StreamEvent>& events,
                                       Timestamp now, uint64_t range);

}  // namespace ecm

#endif  // ECM_STREAM_GENERATORS_H_
