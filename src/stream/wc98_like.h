// Synthetic stand-in for the WorldCup'98 HTTP trace (paper §7).
//
// The original trace — 1.089 billion requests to the 1998 World Cup web
// site over 92 days, served by 33 mirrors, keyed by page URL — is not
// redistributable here, so we synthesize a trace with the statistical
// properties the ECM-sketch experiments actually exercise:
//
//  * heavy-tailed page popularity (web page references are classically
//    Zipf with exponent ≈ 0.85; Arlitt & Jin report strong concentration
//    on a small page set for wc'98 itself);
//  * diurnal arrival intensity (match-driven bursts + day/night cycle);
//  * load-balanced assignment of requests to the 33 server mirrors;
//  * millisecond timestamps over a configurable horizon.
//
// Sketch error/memory behaviour depends exactly on these properties (key
// skew, arrival ordering, in-window volume), so shape-level conclusions
// (EH vs DW vs RW, centralized vs distributed) carry over; absolute
// update-rate numbers naturally reflect our hardware, not the authors'.

#ifndef ECM_STREAM_WC98_LIKE_H_
#define ECM_STREAM_WC98_LIKE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/stream/generators.h"

namespace ecm {

/// wc'98-like workload factory.
struct Wc98Config {
  uint64_t num_events = 2'000'000;  ///< scaled from the 1.089e9 original
  uint64_t domain = 90'000;         ///< distinct URLs (wc'98 had ~90k pages)
  double skew = 0.85;               ///< web-page popularity exponent
  uint32_t num_servers = 33;        ///< official wc'98 mirror count
  double events_per_ms = 1.0;       ///< mean arrival rate
  double diurnal_amplitude = 0.6;   ///< day/night swing
  uint64_t seed = 1998;
};

/// Builds the pull-based source for a wc'98-like stream.
std::unique_ptr<StreamSource> MakeWc98Stream(const Wc98Config& config);

/// Materializes the full trace (sorted by timestamp by construction).
std::vector<StreamEvent> GenerateWc98Like(const Wc98Config& config);

}  // namespace ecm

#endif  // ECM_STREAM_WC98_LIKE_H_
