// Synthetic stand-in for the CRAWDAD Dartmouth SNMP Fall'03/04 trace
// (paper §7): 134 million SNMP records from 535 wireless access points,
// keyed by (anonymized) client MAC address — the ECM-sketch estimates the
// per-user traffic volume.
//
// Reproduced properties (see wc98_like.h for the substitution rationale):
//  * heavy-tailed per-client volume (campus WLAN usage is strongly skewed;
//    a small population of heavy users dominates) — Zipf exponent ≈ 1.0;
//  * locality: a client's records concentrate at its "home" AP with
//    occasional roaming, so per-AP substreams have distinct key mixes
//    (unlike wc'98's load-balanced mirrors) — this is what makes the
//    distributed aggregation experiment non-trivial;
//  * heterogeneous AP load (library APs see orders of magnitude more
//    traffic than dorm-corner APs).

#ifndef ECM_STREAM_SNMP_LIKE_H_
#define ECM_STREAM_SNMP_LIKE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/stream/generators.h"

namespace ecm {

/// snmp-like workload factory.
struct SnmpConfig {
  uint64_t num_events = 2'000'000;  ///< scaled from the 134e6 original
  uint64_t domain = 20'000;         ///< distinct client MACs
  double skew = 1.0;                ///< per-client volume exponent
  uint32_t num_aps = 535;           ///< Dartmouth AP count
  double roaming_prob = 0.2;        ///< P[record observed away from home AP]
  double ap_load_skew = 0.8;        ///< Zipf exponent of AP popularity
  double events_per_ms = 1.0;       ///< mean arrival rate
  uint64_t seed = 2003;
};

/// Pull-based snmp-like source.
class SnmpStream : public StreamSource {
 public:
  explicit SnmpStream(const SnmpConfig& config);

  StreamEvent Next() override;

 private:
  SnmpConfig config_;
  ZipfDistribution client_zipf_;
  ZipfDistribution ap_zipf_;
  Rng rng_;
  double clock_ = 1.0;
};

std::unique_ptr<StreamSource> MakeSnmpStream(const SnmpConfig& config);

/// Materializes the full trace.
std::vector<StreamEvent> GenerateSnmpLike(const SnmpConfig& config);

}  // namespace ecm

#endif  // ECM_STREAM_SNMP_LIKE_H_
