#include "src/stream/wc98_like.h"

namespace ecm {

std::unique_ptr<StreamSource> MakeWc98Stream(const Wc98Config& config) {
  ZipfStream::Config zc;
  zc.domain = config.domain;
  zc.skew = config.skew;
  zc.num_nodes = config.num_servers;
  zc.events_per_tick = config.events_per_ms;
  zc.diurnal_amplitude = config.diurnal_amplitude;
  zc.diurnal_period = 86'400'000;  // one day of milliseconds
  zc.seed = config.seed;
  return std::make_unique<ZipfStream>(zc);
}

std::vector<StreamEvent> GenerateWc98Like(const Wc98Config& config) {
  return MakeWc98Stream(config)->Take(config.num_events);
}

}  // namespace ecm
