// The stream model: a stream is a time-ordered sequence of keyed arrivals,
// each observed at one distributed site (paper §1's network-monitoring
// setting: site = router / access point / server mirror).

#ifndef ECM_STREAM_EVENT_H_
#define ECM_STREAM_EVENT_H_

#include <cstdint>

#include "src/window/window_spec.h"

namespace ecm {

/// One stream arrival.
struct StreamEvent {
  Timestamp ts = 0;   ///< arrival time in ticks (milliseconds in workloads)
  uint64_t key = 0;   ///< item identifier (URL id, MAC address, IP, ...)
  uint32_t node = 0;  ///< site that observed the arrival
};

}  // namespace ecm

#endif  // ECM_STREAM_EVENT_H_
