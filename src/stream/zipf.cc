#include "src/stream/zipf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ecm {

namespace {

// log(1+x)/x, numerically stable near 0.
double Helper1(double x) {
  if (std::abs(x) > 1e-8) return std::log1p(x) / x;
  return 1.0 - x / 2.0 + x * x / 3.0 - x * x * x / 4.0;
}

// (exp(x)-1)/x, numerically stable near 0.
double Helper2(double x) {
  if (std::abs(x) > 1e-8) return std::expm1(x) / x;
  return 1.0 + x / 2.0 + x * x / 6.0 + x * x * x / 24.0;
}

}  // namespace

ZipfDistribution::ZipfDistribution(uint64_t n, double skew)
    : n_(n), skew_(skew) {
  assert(n_ >= 1);
  assert(skew_ >= 0.0);
  h_integral_x1_ = HIntegral(1.5) - 1.0;
  h_integral_n_ = HIntegral(static_cast<double>(n_) + 0.5);
  s_ = 2.0 - HIntegralInverse(HIntegral(2.5) - H(2.0));
}

// ∫ x^-skew dx expressed via stable helpers.
double ZipfDistribution::HIntegral(double x) const {
  double log_x = std::log(x);
  return Helper2((1.0 - skew_) * log_x) * log_x;
}

double ZipfDistribution::H(double x) const {
  return std::exp(-skew_ * std::log(x));
}

double ZipfDistribution::HIntegralInverse(double x) const {
  double t = x * (1.0 - skew_);
  if (t < -1.0) t = -1.0;  // guard against numeric overshoot
  return std::exp(Helper1(t) * x);
}

uint64_t ZipfDistribution::Sample(Rng& rng) const {
  if (n_ == 1) return 1;
  for (;;) {
    double u =
        h_integral_n_ + rng.NextDouble() * (h_integral_x1_ - h_integral_n_);
    double x = HIntegralInverse(u);
    double clamped =
        std::clamp(x, 1.0, static_cast<double>(n_));
    auto k = static_cast<uint64_t>(clamped + 0.5);
    k = std::clamp<uint64_t>(k, 1, n_);
    // Acceptance: immediate for points deep inside the hat, otherwise the
    // exact rejection test.
    if (static_cast<double>(k) - x <= s_ ||
        u >= HIntegral(static_cast<double>(k) + 0.5) -
                 H(static_cast<double>(k))) {
      return k;
    }
  }
}

RotatingZipf::RotatingZipf(uint64_t n, double skew, uint64_t shift_every,
                           uint64_t stride)
    : zipf_(n, skew), shift_every_(shift_every), stride_(stride) {
  assert(shift_every_ >= 1);
  assert(stride_ >= 1);
}

uint64_t RotatingZipf::KeyForRank(uint64_t rank) const {
  const uint64_t n = zipf_.n();
  const uint64_t offset = static_cast<uint64_t>(
      static_cast<unsigned __int128>(epoch() % n) * (stride_ % n) % n);
  return 1 + (rank - 1 + offset) % n;
}

uint64_t RotatingZipf::Sample(Rng& rng) {
  const uint64_t key = KeyForRank(zipf_.Sample(rng));
  ++draws_;
  return key;
}

}  // namespace ecm
