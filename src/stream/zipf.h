// O(1) Zipf sampling by rejection inversion (Hörmann & Derflinger 1996),
// the standard technique for Zipf-distributed keys over large domains
// (the wc'98 URL and snmp MAC domains) without precomputing a CDF.

#ifndef ECM_STREAM_ZIPF_H_
#define ECM_STREAM_ZIPF_H_

#include <cstdint>

#include "src/util/random.h"

namespace ecm {

/// Samples from P[X = k] ∝ 1/k^s over k ∈ [1, n].
///
/// Supports any skew s >= 0 (s = 0 degenerates to uniform) and domains up
/// to 2^62. Expected rejections per sample are < 1.1 across the domain.
class ZipfDistribution {
 public:
  /// \param n     domain size (>= 1)
  /// \param skew  exponent s >= 0
  ZipfDistribution(uint64_t n, double skew);

  /// Draws one sample in [1, n] using randomness from `rng`.
  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double skew() const { return skew_; }

 private:
  double HIntegral(double x) const;
  double H(double x) const;
  double HIntegralInverse(double x) const;

  uint64_t n_;
  double skew_;
  double h_integral_x1_;
  double h_integral_n_;
  double s_;
};

/// Zipf sampler whose hot-set *identity* drifts: every `shift_every`
/// draws the rank->key mapping rotates by `stride`, so the heavy ranks
/// land on fresh keys while the frequency profile stays exactly Zipf.
/// This is the adversarial workload for admission-guarded stores: the
/// hot set the guard admitted keeps going cold and a new one heats up.
/// Fully deterministic given (n, skew, shift_every, stride) and the
/// caller's Rng seed.
class RotatingZipf {
 public:
  /// \param shift_every  draws between rotations (>= 1)
  /// \param stride       key-space offset added per rotation (>= 1)
  RotatingZipf(uint64_t n, double skew, uint64_t shift_every,
               uint64_t stride);

  /// Draws the next key in [1, n]; advances the rotation clock.
  uint64_t Sample(Rng& rng);

  /// Key that rank `rank` maps to at the current rotation (rank 1 is the
  /// hottest). Exposed so tests and benches can find the current hot set.
  uint64_t KeyForRank(uint64_t rank) const;

  uint64_t epoch() const { return draws_ / shift_every_; }
  uint64_t draws() const { return draws_; }
  const ZipfDistribution& base() const { return zipf_; }

 private:
  ZipfDistribution zipf_;
  uint64_t shift_every_;
  uint64_t stride_;
  uint64_t draws_ = 0;
};

}  // namespace ecm

#endif  // ECM_STREAM_ZIPF_H_
