// O(1) Zipf sampling by rejection inversion (Hörmann & Derflinger 1996),
// the standard technique for Zipf-distributed keys over large domains
// (the wc'98 URL and snmp MAC domains) without precomputing a CDF.

#ifndef ECM_STREAM_ZIPF_H_
#define ECM_STREAM_ZIPF_H_

#include <cstdint>

#include "src/util/random.h"

namespace ecm {

/// Samples from P[X = k] ∝ 1/k^s over k ∈ [1, n].
///
/// Supports any skew s >= 0 (s = 0 degenerates to uniform) and domains up
/// to 2^62. Expected rejections per sample are < 1.1 across the domain.
class ZipfDistribution {
 public:
  /// \param n     domain size (>= 1)
  /// \param skew  exponent s >= 0
  ZipfDistribution(uint64_t n, double skew);

  /// Draws one sample in [1, n] using randomness from `rng`.
  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double skew() const { return skew_; }

 private:
  double HIntegral(double x) const;
  double H(double x) const;
  double HIntegralInverse(double x) const;

  uint64_t n_;
  double skew_;
  double h_integral_x1_;
  double h_integral_n_;
  double s_;
};

}  // namespace ecm

#endif  // ECM_STREAM_ZIPF_H_
