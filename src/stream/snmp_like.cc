#include "src/stream/snmp_like.h"

#include <cmath>

#include "src/util/hash.h"

namespace ecm {

SnmpStream::SnmpStream(const SnmpConfig& config)
    : config_(config),
      client_zipf_(config.domain, config.skew),
      ap_zipf_(config.num_aps, config.ap_load_skew),
      rng_(config.seed) {}

StreamEvent SnmpStream::Next() {
  double u = rng_.NextDouble();
  clock_ += -std::log(1.0 - u) / config_.events_per_ms;

  StreamEvent e;
  e.ts = static_cast<Timestamp>(std::ceil(clock_));
  e.key = client_zipf_.Sample(rng_);
  // A client's home AP is a deterministic, load-skewed function of the
  // client id; with roaming_prob the record appears at a random AP.
  if (rng_.Bernoulli(config_.roaming_prob)) {
    e.node = static_cast<uint32_t>(rng_.Uniform(config_.num_aps));
  } else {
    // Home AP: deterministic per client, drawn once from the load-skewed
    // AP popularity distribution (rank 1 = busiest AP).
    Rng client_rng(Mix64(e.key) ^ config_.seed);
    e.node = static_cast<uint32_t>(ap_zipf_.Sample(client_rng) - 1);
  }
  return e;
}

std::unique_ptr<StreamSource> MakeSnmpStream(const SnmpConfig& config) {
  return std::make_unique<SnmpStream>(config);
}

std::vector<StreamEvent> GenerateSnmpLike(const SnmpConfig& config) {
  return MakeSnmpStream(config)->Take(config.num_events);
}

}  // namespace ecm
