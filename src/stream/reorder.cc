#include "src/stream/reorder.h"

#include <algorithm>

#include "src/util/random.h"

namespace ecm {

void ReorderBuffer::Drain(Timestamp release_up_to) {
  while (!heap_.empty() && heap_.top().ts <= release_up_to) {
    StreamEvent e = heap_.top();
    heap_.pop();
    // Heap order guarantees non-decreasing release timestamps.
    last_released_ = e.ts;
    sink_(e);
  }
}

void ReorderBuffer::Push(const StreamEvent& event) {
  if (event.ts > watermark_) watermark_ = event.ts;

  Timestamp safe = watermark_ > config_.max_lateness
                       ? watermark_ - config_.max_lateness
                       : 0;
  if (event.ts < safe || event.ts < last_released_) {
    ++late_;
    if (config_.late_policy == LatePolicy::kDrop) {
      ++dropped_;
    } else {
      // Clamp forward to the release frontier: the arrival keeps its
      // count, displaced by at most its lateness.
      StreamEvent clamped = event;
      clamped.ts = std::max(safe, last_released_);
      heap_.push(clamped);
    }
  } else {
    heap_.push(event);
  }
  // Everything at or before watermark - max_lateness can no longer be
  // preceded by future arrivals: safe to release.
  Drain(safe);
}

void ReorderBuffer::Flush() {
  Drain(~0ULL);
}

std::vector<StreamEvent> ShuffleWithBoundedDelay(
    std::vector<StreamEvent> events, uint64_t max_shift, uint64_t seed) {
  // Model: event i is *observed* at ts + delay_i with delay_i uniform in
  // [0, max_shift]; the observation order is by delivery time, but each
  // event still carries its original timestamp — exactly what a receiver
  // behind a jittery network sees.
  Rng rng(seed);
  std::vector<std::pair<Timestamp, StreamEvent>> delivery;
  delivery.reserve(events.size());
  for (const StreamEvent& e : events) {
    Timestamp delivered = e.ts + rng.Uniform(max_shift + 1);
    delivery.emplace_back(delivered, e);
  }
  std::stable_sort(delivery.begin(), delivery.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  std::vector<StreamEvent> out;
  out.reserve(events.size());
  for (const auto& [d, e] : delivery) out.push_back(e);
  return out;
}

}  // namespace ecm
