// Bounded-disorder ingestion: a reorder buffer in front of a sliding-
// window synopsis.
//
// Every synopsis in this library requires non-decreasing timestamps — the
// cash-register model of the paper. Real distributed feeds (the §2
// related work on out-of-order streams: Busch & Tirthapura 2007, Cormode
// et al. 2009, Xu et al. 2008) deliver slightly shuffled arrivals due to
// network delays. Rather than redesigning the synopses for asynchrony
// (those structures give up composability or pay Θ(1/ε²) space), the
// standard engineering remedy suffices when disorder is bounded: buffer
// arrivals for `max_lateness` ticks and release them in timestamp order.
//
// Items later than the bound are either clamped forward to the release
// watermark (default — they stay in the stream, slightly displaced, which
// perturbs estimates by at most the lateness/window ratio) or dropped,
// with both counts reported.

#ifndef ECM_STREAM_REORDER_H_
#define ECM_STREAM_REORDER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/stream/event.h"

namespace ecm {

/// Reorder buffer with a fixed lateness bound.
class ReorderBuffer {
 public:
  enum class LatePolicy : uint8_t {
    kClampForward = 0,  ///< emit with ts = watermark (keeps the count)
    kDrop = 1,          ///< discard (keeps timestamps exact)
  };

  struct Config {
    uint64_t max_lateness = 1000;  ///< disorder bound, in ticks
    LatePolicy late_policy = LatePolicy::kClampForward;
  };

  /// \param sink receives events in non-decreasing timestamp order.
  ReorderBuffer(const Config& config,
                std::function<void(const StreamEvent&)> sink)
      : config_(config), sink_(std::move(sink)) {}

  /// Accepts one possibly-out-of-order event. Events with
  /// ts <= watermark - max_lateness are handled per the late policy.
  void Push(const StreamEvent& event);

  /// Releases everything still buffered (end of stream).
  void Flush();

  /// Highest timestamp seen so far.
  Timestamp watermark() const { return watermark_; }

  /// Events currently buffered.
  size_t Pending() const { return heap_.size(); }

  /// Arrivals that violated the lateness bound (clamped or dropped).
  uint64_t late_events() const { return late_; }
  uint64_t dropped_events() const { return dropped_; }

  /// Memory held by the buffer.
  size_t MemoryBytes() const {
    return sizeof(*this) + heap_.size() * sizeof(StreamEvent);
  }

 private:
  struct LaterTs {
    bool operator()(const StreamEvent& a, const StreamEvent& b) const {
      return a.ts > b.ts;
    }
  };

  void Drain(Timestamp release_up_to);

  Config config_;
  std::function<void(const StreamEvent&)> sink_;
  std::priority_queue<StreamEvent, std::vector<StreamEvent>, LaterTs> heap_;
  Timestamp watermark_ = 0;
  Timestamp last_released_ = 0;
  uint64_t late_ = 0;
  uint64_t dropped_ = 0;
};

/// Test/bench helper: applies bounded random displacement to an ordered
/// event vector (each event moves backward by up to `max_shift` ticks),
/// producing the disorder pattern of a delay-prone network.
std::vector<StreamEvent> ShuffleWithBoundedDelay(
    std::vector<StreamEvent> events, uint64_t max_shift, uint64_t seed);

}  // namespace ecm

#endif  // ECM_STREAM_REORDER_H_
