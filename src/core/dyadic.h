// Dyadic ECM-sketch stack (paper §6.1): log|U| ECM-sketches, the i-th
// summarizing dyadic ranges of length 2^i, enabling over sliding windows:
//
//  * heavy hitters by group testing (Theorem 5): recursive descent from
//    the coarsest ranges, pruning every dyadic range whose estimated
//    in-window frequency is below the threshold;
//  * range queries: any [lo, hi] decomposes into <= 2·log|U| dyadic
//    ranges whose estimates sum;
//  * quantiles: binary search over prefix-range sums.
//
// The threshold φ can be an absolute count or a ratio of the in-window
// arrivals ‖a_r‖₁; for the ratio form the paper recommends estimating
// ‖a_r‖₁ from sketch CM₀ itself (average of per-row counter sums) rather
// than a separate synopsis — implemented in EcmSketch::EstimateL1.

#ifndef ECM_CORE_DYADIC_H_
#define ECM_CORE_DYADIC_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/core/ecm_sketch.h"

namespace ecm {

/// One dyadic interval [prefix·2^level, (prefix+1)·2^level - 1].
struct DyadicRange {
  int level;
  uint64_t prefix;
};

/// Decomposes the inclusive key interval [lo, hi] (within a domain of
/// 2^domain_bits keys) into at most 2·domain_bits disjoint dyadic ranges.
std::vector<DyadicRange> DyadicDecompose(uint64_t lo, uint64_t hi,
                                         int domain_bits);

/// Appending variant of DyadicDecompose: pushes the decomposition onto
/// `out` (which is not cleared) and returns the number of ranges
/// appended. Lets hot callers — RangeQuery, the quantile binary search —
/// reuse one scratch vector so steady-state queries allocate nothing.
size_t DyadicDecomposeInto(uint64_t lo, uint64_t hi, int domain_bits,
                           std::vector<DyadicRange>* out);

/// A heavy-hitter report entry.
struct HeavyHitter {
  uint64_t key;
  double estimate;  ///< estimated in-window frequency
};

/// Sliding-window frequent-items / range-query / quantile structure.
template <SlidingWindowCounter Counter = ExponentialHistogram>
class DyadicEcm {
 public:
  /// \param domain_bits  keys live in [0, 2^domain_bits)
  /// \param config       configuration shared by all level sketches (the
  ///                     per-level hash seeds are derived from it)
  DyadicEcm(int domain_bits, const EcmConfig& config)
      : domain_bits_(domain_bits) {
    levels_.reserve(domain_bits_);
    for (int i = 0; i < domain_bits_; ++i) {
      EcmConfig level_cfg = config;
      level_cfg.seed = Mix64(config.seed + 0x1234567ULL * (i + 1));
      levels_.emplace_back(level_cfg);
    }
  }

  static Result<DyadicEcm> Create(int domain_bits, double epsilon,
                                  double delta, WindowMode mode,
                                  uint64_t window_len, uint64_t seed,
                                  uint64_t max_arrivals = 1 << 20) {
    if (domain_bits < 1 || domain_bits > 63) {
      return Status::InvalidArgument("domain_bits must be in [1, 63]");
    }
    constexpr auto family = std::is_same_v<Counter, RandomizedWave>
                                ? CounterFamily::kRandomized
                                : CounterFamily::kDeterministic;
    auto cfg = EcmConfig::Create(epsilon, delta, mode, window_len, seed,
                                 OptimizeFor::kPointQueries, family,
                                 max_arrivals);
    if (!cfg.ok()) return cfg.status();
    return DyadicEcm(domain_bits, *cfg);
  }

  /// Registers `count` occurrences of `key` (< 2^domain_bits) at `ts`.
  void Add(uint64_t key, Timestamp ts, uint64_t count = 1) {
    for (int i = 0; i < domain_bits_; ++i) {
      levels_[i].Add(key >> i, ts, count);
    }
  }

  /// Estimated number of in-window arrivals with key in [lo, hi]. The
  /// decomposed dyadic ranges are sorted by level and each level sketch
  /// answers its prefixes in one batched pass (thread-local scratch; no
  /// per-call allocations beyond the decomposition itself).
  double RangeQuery(uint64_t lo, uint64_t hi, uint64_t range) const {
    static thread_local std::vector<DyadicRange> ranges;
    ranges.clear();
    DyadicDecomposeInto(lo, hi, domain_bits_, &ranges);
    std::sort(ranges.begin(), ranges.end(),
              [](const DyadicRange& a, const DyadicRange& b) {
                return a.level < b.level;
              });
    static thread_local std::vector<uint64_t> keys;
    static thread_local std::vector<double> ests;
    double sum = 0.0;
    for (size_t i = 0; i < ranges.size();) {
      const int level = ranges[i].level;
      keys.clear();
      while (i < ranges.size() && ranges[i].level == level) {
        keys.push_back(ranges[i++].prefix);
      }
      ests.resize(keys.size());
      levels_[level].PointQueryBatchAt(keys.data(), keys.size(), range,
                                       levels_[level].Now(), ests.data());
      for (double e : ests) sum += e;
    }
    return sum;
  }

  /// All keys whose estimated in-window frequency is >= `threshold`
  /// occurrences (group-testing descent; Theorem 5 guarantees every key
  /// with true frequency >= (φ+ε)‖a_r‖₁ is reported and, w.h.p., none
  /// below φ‖a_r‖₁).
  ///
  /// The descent runs level by level on a frontier of surviving
  /// prefixes: each level's sibling probes go through the level sketch's
  /// batched point-query path in one pass (one hash pass per prefix,
  /// row-major counter sweep) instead of one PointQuery per tree node.
  /// Reported keys, estimates and order are identical to the recursive
  /// per-node descent (ascending key order).
  std::vector<HeavyHitter> HeavyHittersAbsolute(double threshold,
                                                uint64_t range) const {
    std::vector<HeavyHitter> out;
    std::vector<uint64_t> frontier = {0, 1};
    std::vector<uint64_t> next;
    std::vector<double> ests;
    for (int level = domain_bits_ - 1; level >= 0 && !frontier.empty();
         --level) {
      const EcmSketch<Counter>& sketch = levels_[level];
      ests.resize(frontier.size());
      sketch.PointQueryBatchAt(frontier.data(), frontier.size(), range,
                               sketch.Now(), ests.data());
      next.clear();
      for (size_t i = 0; i < frontier.size(); ++i) {
        if (ests[i] < threshold) continue;
        if (level == 0) {
          out.push_back(HeavyHitter{frontier[i], ests[i]});
        } else {
          const uint64_t left = frontier[i] * 2;
          next.push_back(left);
          next.push_back(left + 1);
          // Warm the children's counter cells in the next level's sketch
          // while this level's filter is still running: by the time the
          // next batched probe reads them, the row-stride misses are
          // already in flight.
          levels_[level - 1].PrefetchKey(left);
          levels_[level - 1].PrefetchKey(left + 1);
        }
      }
      frontier.swap(next);
    }
    return out;
  }

  /// Keys with estimated frequency >= phi_ratio · ‖a_r‖₁, with ‖a_r‖₁
  /// estimated from the finest sketch per §6.1.
  std::vector<HeavyHitter> HeavyHitters(double phi_ratio,
                                        uint64_t range) const {
    double l1 = EstimateL1(range);
    return HeavyHittersAbsolute(phi_ratio * l1, range);
  }

  /// ‖a_r‖₁ estimate (average of per-row counter sums of CM₀). Memoized
  /// inside CM₀ per (now, range) until its next update, so the
  /// ratio-threshold descent and quantile binary search pay the full
  /// width × depth sweep once.
  double EstimateL1(uint64_t range) const {
    return levels_[0].EstimateL1(range);
  }

  /// Smallest key k such that the estimated count of keys <= k reaches
  /// q · ‖a_r‖₁ (the q-quantile of the in-window key distribution).
  uint64_t Quantile(double q, uint64_t range) const {
    double target = q * EstimateL1(range);
    uint64_t lo = 0;
    uint64_t hi = (domain_bits_ >= 64) ? ~0ULL : (1ULL << domain_bits_) - 1;
    while (lo < hi) {
      uint64_t mid = lo + (hi - lo) / 2;
      if (RangeQuery(0, mid, range) >= target) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }

  /// Memory of all level sketches.
  size_t MemoryBytes() const {
    size_t bytes = sizeof(*this);
    for (const auto& s : levels_) bytes += s.MemoryBytes();
    return bytes;
  }

  int domain_bits() const { return domain_bits_; }
  const EcmSketch<Counter>& level(int i) const { return levels_[i]; }

 private:
  int domain_bits_;
  std::vector<EcmSketch<Counter>> levels_;
};

}  // namespace ecm

#endif  // ECM_CORE_DYADIC_H_
