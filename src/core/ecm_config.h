// ECM-sketch configuration: dimensioning the Count-Min array and splitting
// the total error budget ε between the Count-Min hashing error ε_cm and
// the sliding-window counter error ε_sw (paper §4.1).
//
// Point queries obey |f̂ - f| <= (ε_sw + ε_cm + ε_sw·ε_cm)·‖a_r‖₁ w.p.
// 1-δ (Theorems 1/3), so any split with ε_sw + ε_cm + ε_sw·ε_cm = ε meets
// a total budget ε; the right split is the one minimizing memory:
//
//  * deterministic counters (EH/DW), point queries: memory ∝ 1/(ε_sw·ε_cm)
//    → ε_sw = ε_cm = √(1+ε) − 1  (paper §4.1);
//  * randomized counters (RW): memory ∝ 1/(ε_sw²·ε_cm)
//    → ε_sw = (√(ε²+10ε+9) + ε − 3)/4  (paper §4.2.2, Theorem 3);
//  * self-join / inner-product queries (Theorem 2) have the constraint
//    ε_sw² + 2ε_sw + ε_cm(1+ε_sw)² = ε; the paper gives the Cardano
//    closed form — we obtain the same minimizer by ternary search on the
//    (unimodal) memory objective, which is exact to machine precision and
//    immune to transcription errors.

#ifndef ECM_CORE_ECM_CONFIG_H_
#define ECM_CORE_ECM_CONFIG_H_

#include <cstdint>

#include "src/util/hash.h"
#include "src/util/result.h"
#include "src/window/window_spec.h"

namespace ecm {

/// Which query type the ε-split should minimize memory for.
enum class OptimizeFor : uint8_t {
  kPointQueries = 0,
  kSelfJoinQueries = 1,
};

/// Which family of sliding-window counter the sketch will carry (affects
/// the memory model of the split and the δ budget).
enum class CounterFamily : uint8_t {
  kDeterministic = 0,  ///< exponential histogram / deterministic wave
  kRandomized = 1,     ///< randomized wave (δ is split δ_cm = δ_sw = δ/2)
};

/// Full parameter set of an ECM-sketch. Build with EcmConfig::Create.
struct EcmConfig {
  WindowMode mode = WindowMode::kTimeBased;
  uint64_t window_len = 1000;       ///< N (ticks or arrivals)
  uint64_t max_arrivals = 1 << 20;  ///< u(N,S), sizes wave counters
  double epsilon = 0.1;             ///< total error budget
  double delta = 0.1;               ///< total failure probability
  double epsilon_cm = 0.0;          ///< Count-Min share of ε
  double epsilon_sw = 0.0;          ///< window-counter share of ε
  double delta_cm = 0.0;            ///< Count-Min share of δ
  double delta_sw = 0.0;            ///< window-counter share of δ (RW only)
  uint32_t width = 0;               ///< w = ceil(e / ε_cm)
  int depth = 0;                    ///< d = ceil(ln(1 / δ_cm))
  uint64_t seed = 0xEC35EEDULL;     ///< hash seed; equal seeds ⇒ mergeable
  /// Bucket-reduction version. Changing it re-maps every key, so it is
  /// part of sketch compatibility and of the serialized config.
  HashReduction hash_reduction = HashReduction::kFastRange;

  /// Computes the optimal split and array dimensions for a total (ε, δ)
  /// budget. Fails on out-of-domain parameters.
  static Result<EcmConfig> Create(
      double epsilon, double delta, WindowMode mode, uint64_t window_len,
      uint64_t seed, OptimizeFor optimize = OptimizeFor::kPointQueries,
      CounterFamily family = CounterFamily::kDeterministic,
      uint64_t max_arrivals = 1 << 20);

  /// True iff sketches built from the two configs can be merged / compared:
  /// identical dimensions, hash seed, window and mode.
  bool CompatibleWith(const EcmConfig& other) const {
    return mode == other.mode && window_len == other.window_len &&
           width == other.width && depth == other.depth &&
           seed == other.seed && hash_reduction == other.hash_reduction;
  }
};

/// ε_sw = ε_cm = √(1+ε) − 1: deterministic-counter point-query split.
double PointSplitDeterministic(double epsilon);

/// Theorem-3 split for randomized-wave counters; returns ε_sw (ε_cm follows
/// from the constraint).
double PointSplitRandomizedSw(double epsilon);
double PointSplitRandomizedCm(double epsilon);

/// Self-join split (Theorem 2 constraint), deterministic memory model.
/// Returns ε_sw; ε_cm = (ε − ε_sw² − 2ε_sw) / (1+ε_sw)².
double SelfJoinSplitSw(double epsilon);

/// The paper's closed-form (Cardano) expression for the self-join split:
///   ε_sw = −1 − (1+ε)·3^(1/3)/A + A/3^(2/3),
///   A = (9+9ε + √3·√(28+57ε+30ε²+ε³))^(1/3).
/// Provided for cross-checking; agrees with SelfJoinSplitSw (the numeric
/// minimizer) to ~1e-9 — see ecm_config_test.cc.
double SelfJoinSplitSwClosedForm(double epsilon);

}  // namespace ecm

#endif  // ECM_CORE_ECM_CONFIG_H_
