#include "src/core/count_min.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace ecm {

CountMinSketch::CountMinSketch(uint32_t width, int depth, uint64_t seed)
    // Depth is capped at kMaxSketchDepth: the one-pass update path fills a
    // fixed d-entry bucket array, so an oversized depth must shrink the
    // sketch rather than overflow the array in Release builds.
    : width_(width),
      depth_(std::min(depth, kMaxSketchDepth)),
      hashes_(seed, depth_) {
  assert(width_ > 0 && depth > 0 && depth <= kMaxSketchDepth);
  table_.assign(static_cast<size_t>(width_) * depth_, 0);
}

CountMinSketch CountMinSketch::FromErrorBounds(double epsilon, double delta,
                                               uint64_t seed) {
  assert(epsilon > 0 && delta > 0 && delta < 1);
  auto width = static_cast<uint32_t>(std::ceil(std::exp(1.0) / epsilon));
  int depth = std::max(1, static_cast<int>(std::ceil(std::log(1.0 / delta))));
  return CountMinSketch(width, depth, seed);
}

void CountMinSketch::Add(uint64_t key, uint64_t count) {
  uint32_t cols[kMaxSketchDepth];
  hashes_.BucketsMixed(key, width_, cols);
  for (int j = 0; j < depth_; ++j) {
    counter_ref(j, cols[j]) += count;
  }
  l1_ += count;
}

uint64_t CountMinSketch::PointQuery(uint64_t key) const {
  uint32_t cols[kMaxSketchDepth];
  hashes_.BucketsMixed(key, width_, cols);
  uint64_t best = std::numeric_limits<uint64_t>::max();
  for (int j = 0; j < depth_; ++j) {
    best = std::min(best, counter(j, cols[j]));
  }
  return best;
}

Result<uint64_t> CountMinSketch::InnerProduct(
    const CountMinSketch& other) const {
  if (!CompatibleWith(other)) {
    return Status::Incompatible(
        "InnerProduct requires equal width/depth/seed");
  }
  uint64_t best = std::numeric_limits<uint64_t>::max();
  for (int j = 0; j < depth_; ++j) {
    uint64_t row_sum = 0;
    for (uint32_t i = 0; i < width_; ++i) {
      row_sum += counter(j, i) * other.counter(j, i);
    }
    best = std::min(best, row_sum);
  }
  return best;
}

uint64_t CountMinSketch::SelfJoin() const {
  return UnwrapCompatible(InnerProduct(*this), "CountMinSketch::SelfJoin");
}

Status CountMinSketch::MergeWith(const CountMinSketch& other) {
  if (!CompatibleWith(other)) {
    return Status::Incompatible("MergeWith requires equal width/depth/seed");
  }
  for (size_t i = 0; i < table_.size(); ++i) table_[i] += other.table_[i];
  l1_ += other.l1_;
  return Status::OK();
}

}  // namespace ecm
