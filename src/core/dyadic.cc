#include "src/core/dyadic.h"

#include <cassert>

#include "src/util/bits.h"

namespace ecm {

size_t DyadicDecomposeInto(uint64_t lo, uint64_t hi, int domain_bits,
                           std::vector<DyadicRange>* out) {
  assert(domain_bits >= 1 && domain_bits <= 63);
  uint64_t domain_max = (1ULL << domain_bits) - 1;
  if (hi > domain_max) hi = domain_max;
  if (lo > hi) return 0;

  // Greedy canonical decomposition: repeatedly take the largest aligned
  // dyadic block starting at lo that fits within [lo, hi]. Levels are
  // capped at domain_bits - 1 (the coarsest sketch level).
  const size_t before = out->size();
  while (lo <= hi) {
    int level = (lo == 0) ? domain_bits - 1 : TrailingZeros(lo);
    if (level > domain_bits - 1) level = domain_bits - 1;
    while (level > 0 && lo + (1ULL << level) - 1 > hi) --level;
    out->push_back(DyadicRange{level, lo >> level});
    uint64_t step = 1ULL << level;
    if (hi - lo < step) break;  // guards the lo += step overflow at hi=max
    lo += step;
  }
  return out->size() - before;
}

std::vector<DyadicRange> DyadicDecompose(uint64_t lo, uint64_t hi,
                                         int domain_bits) {
  std::vector<DyadicRange> out;
  DyadicDecomposeInto(lo, hi, domain_bits, &out);
  return out;
}

}  // namespace ecm
