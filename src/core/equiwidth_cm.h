// Guarantee-free baseline sketches for the paper's §2 comparison: the
// equi-width sub-window Count-Min (Hung & Ting / Dimitropoulos et al.)
// and the hybrid-histogram Count-Min (Qiao et al. 2003). The counters
// themselves live in src/window ({equiwidth_window,hybrid_histogram}.h);
// their per-counter configuration rules are with the other counter
// specializations in core/ecm_sketch.h. This header names the resulting
// sketch types.

#ifndef ECM_CORE_EQUIWIDTH_CM_H_
#define ECM_CORE_EQUIWIDTH_CM_H_

#include "src/core/ecm_sketch.h"
#include "src/window/equiwidth_window.h"
#include "src/window/hybrid_histogram.h"

namespace ecm {

/// The guarantee-free equi-width baseline sketch (Hung & Ting-style).
using EcmEquiWidth = EcmSketch<EquiWidthWindow>;

/// The hybrid exact-buffer + equi-width-tail baseline sketch.
using EcmHybrid = EcmSketch<HybridHistogram>;

}  // namespace ecm

#endif  // ECM_CORE_EQUIWIDTH_CM_H_
