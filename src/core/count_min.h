// Count-Min sketch (Cormode & Muthukrishnan, J. Algorithms 2005) over
// full-history streams — the conventional-stream substrate the ECM-sketch
// builds on (paper §3), used directly by the geometric-method monitor as
// the extracted "statistics vector" representation, and as the linear
// baseline in tests.
//
// Guarantees with w = ceil(e/ε), d = ceil(ln(1/δ)): a point query
// overestimates by at most ε‖a‖₁ with probability >= 1-δ; analogous bounds
// hold for inner products and range sums.

#ifndef ECM_CORE_COUNT_MIN_H_
#define ECM_CORE_COUNT_MIN_H_

#include <cstdint>
#include <vector>

#include "src/util/hash.h"
#include "src/util/result.h"

namespace ecm {

/// Classic Count-Min sketch with 64-bit integer counters.
class CountMinSketch {
 public:
  /// Builds a w×d sketch whose hash functions derive from `seed`. Sketches
  /// that must be merged or compared (inner products) need equal (w, d,
  /// seed).
  CountMinSketch(uint32_t width, int depth, uint64_t seed);

  /// Builds a sketch from accuracy targets: w = ceil(e/epsilon),
  /// d = ceil(ln(1/delta)).
  static CountMinSketch FromErrorBounds(double epsilon, double delta,
                                        uint64_t seed);

  /// Adds `count` occurrences of `key`.
  void Add(uint64_t key, uint64_t count = 1);

  /// Point query: estimated frequency of `key` (never an underestimate).
  uint64_t PointQuery(uint64_t key) const;

  /// Estimated inner product Σ_x f_a(x)·f_b(x) with another sketch of
  /// identical shape and seed.
  Result<uint64_t> InnerProduct(const CountMinSketch& other) const;

  /// Estimated self-join size (second frequency moment F₂).
  uint64_t SelfJoin() const;

  /// Adds every counter of `other` into this sketch (linear merge).
  Status MergeWith(const CountMinSketch& other);

  /// Total stream weight ‖a‖₁ (sum of all Add counts).
  uint64_t l1_norm() const { return l1_; }

  uint32_t width() const { return width_; }
  int depth() const { return depth_; }
  uint64_t seed() const { return hashes_.seed(); }

  /// Raw counter access (row-major), used by the geometric monitor which
  /// treats rows as vectors.
  uint64_t counter(int row, uint32_t col) const {
    return table_[static_cast<size_t>(row) * width_ + col];
  }
  uint64_t& counter_ref(int row, uint32_t col) {
    return table_[static_cast<size_t>(row) * width_ + col];
  }

  /// True iff shapes and hash seeds match (mergeable / comparable).
  bool CompatibleWith(const CountMinSketch& other) const {
    return width_ == other.width_ && depth_ == other.depth_ &&
           hashes_.SameAs(other.hashes_);
  }

  size_t MemoryBytes() const {
    return sizeof(*this) + table_.size() * sizeof(uint64_t);
  }

 private:
  uint32_t width_;
  int depth_;
  HashFamily hashes_;
  std::vector<uint64_t> table_;  // row-major d × w
  uint64_t l1_ = 0;
};

}  // namespace ecm

#endif  // ECM_CORE_COUNT_MIN_H_
