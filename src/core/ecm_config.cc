#include "src/core/ecm_config.h"

#include <algorithm>
#include <cmath>

namespace ecm {

double PointSplitDeterministic(double epsilon) {
  return std::sqrt(1.0 + epsilon) - 1.0;
}

double PointSplitRandomizedSw(double epsilon) {
  double root = std::sqrt(epsilon * epsilon + 10.0 * epsilon + 9.0);
  return (root + epsilon - 3.0) / 4.0;
}

double PointSplitRandomizedCm(double epsilon) {
  double root = std::sqrt(epsilon * epsilon + 10.0 * epsilon + 9.0);
  return (3.0 * epsilon - root + 3.0) / (epsilon + root + 1.0);
}

namespace {

// ε_cm implied by the Theorem-2 (self-join) constraint for a given ε_sw.
double SelfJoinCm(double epsilon, double esw) {
  return (epsilon - esw * esw - 2.0 * esw) / ((1.0 + esw) * (1.0 + esw));
}

}  // namespace

double SelfJoinSplitSw(double epsilon) {
  // Memory ∝ 1/(ε_sw·ε_cm); minimize over the feasible ε_sw range
  // (0, √(1+ε)−1) where ε_cm stays positive. The objective is unimodal —
  // ternary search converges to the paper's closed-form Cardano root.
  double lo = 1e-9;
  double hi = std::sqrt(1.0 + epsilon) - 1.0 - 1e-9;
  for (int iter = 0; iter < 200; ++iter) {
    double m1 = lo + (hi - lo) / 3.0;
    double m2 = hi - (hi - lo) / 3.0;
    double f1 = 1.0 / (m1 * SelfJoinCm(epsilon, m1));
    double f2 = 1.0 / (m2 * SelfJoinCm(epsilon, m2));
    if (f1 < f2) {
      hi = m2;
    } else {
      lo = m1;
    }
  }
  return (lo + hi) / 2.0;
}

double SelfJoinSplitSwClosedForm(double epsilon) {
  // Minimizing 1/(s·ε_cm(s)) under the Theorem-2 constraint yields the
  // cubic s³ + 3s² + (4+ε)s − ε = 0; substituting s = y − 1 depresses it
  // to y³ + (1+ε)y − 2(1+ε) = 0, whose Cardano solution is the paper's
  // closed form (§4.1; note 28+57ε+30ε²+ε³ = (1+ε)²(28+ε)).
  double e1 = 1.0 + epsilon;
  double radical = std::sqrt(3.0) * std::sqrt(e1 * e1 * (28.0 + epsilon));
  double a = std::cbrt(9.0 * e1 + radical);
  return -1.0 + a / std::cbrt(9.0) - e1 / (std::cbrt(3.0) * a);
}

Result<EcmConfig> EcmConfig::Create(double epsilon, double delta,
                                    WindowMode mode, uint64_t window_len,
                                    uint64_t seed, OptimizeFor optimize,
                                    CounterFamily family,
                                    uint64_t max_arrivals) {
  if (!(epsilon > 0.0) || epsilon >= 1.0) {
    return Status::InvalidArgument("epsilon must be in (0, 1)");
  }
  if (!(delta > 0.0) || delta >= 1.0) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  if (window_len == 0) {
    return Status::InvalidArgument("window_len must be positive");
  }

  EcmConfig cfg;
  cfg.mode = mode;
  cfg.window_len = window_len;
  cfg.max_arrivals = max_arrivals;
  cfg.epsilon = epsilon;
  cfg.delta = delta;
  cfg.seed = seed;

  if (family == CounterFamily::kRandomized) {
    // Theorem 3: δ = δ_sw + δ_cm; the paper evaluates δ_cm = δ_sw = δ/2.
    cfg.delta_cm = delta / 2.0;
    cfg.delta_sw = delta / 2.0;
    cfg.epsilon_sw = PointSplitRandomizedSw(epsilon);
    cfg.epsilon_cm = PointSplitRandomizedCm(epsilon);
  } else {
    cfg.delta_cm = delta;
    cfg.delta_sw = 0.0;  // deterministic counters cannot fail
    if (optimize == OptimizeFor::kSelfJoinQueries) {
      cfg.epsilon_sw = SelfJoinSplitSw(epsilon);
      double esw = cfg.epsilon_sw;
      cfg.epsilon_cm =
          (epsilon - esw * esw - 2.0 * esw) / ((1.0 + esw) * (1.0 + esw));
    } else {
      cfg.epsilon_sw = PointSplitDeterministic(epsilon);
      cfg.epsilon_cm = cfg.epsilon_sw;
    }
  }

  cfg.width =
      static_cast<uint32_t>(std::ceil(std::exp(1.0) / cfg.epsilon_cm));
  cfg.depth = std::max(
      1, static_cast<int>(std::ceil(std::log(1.0 / cfg.delta_cm))));
  // The one-pass update path fills a fixed d-entry bucket array; depth
  // beyond kMaxSketchDepth needs delta < 2e-28, so clamping costs nothing
  // real while keeping the hot path branch-free.
  cfg.depth = std::min(cfg.depth, kMaxSketchDepth);
  return cfg;
}

}  // namespace ecm
