// ECM-sketch (Exponential Count-Min sketch) — the paper's core
// contribution (§4): a Count-Min sketch whose counters are sliding-window
// synopses, summarizing the item-frequency distribution of a
// high-dimensional stream over time-based or count-based sliding windows.
//
// The class is templated on the counter type (exponential histogram by
// default; deterministic or randomized wave; exact window for testing), so
// the paper's three variants are:
//
//     using EcmEh = EcmSketch<ExponentialHistogram>;   // "ECM-EH"
//     using EcmDw = EcmSketch<DeterministicWave>;      // "ECM-DW"
//     using EcmRw = EcmSketch<RandomizedWave>;         // "ECM-RW"
//
// Supported queries (all over any range r within the window):
//  * point query        f̂(x, r)         — Theorems 1/3 error bound
//  * inner product      (a_r ⊙ b_r)^     — Theorem 2 error bound
//  * self-join size F₂  (a_r ⊙ a_r)^
//  * windowed L1 estimate (for ratio-threshold heavy hitters, §6.1)
//
// Time-based sketches of parallel streams merge into a sketch of the
// order-preserving aggregate stream (§5.3); count-based sketches refuse to
// merge (Fig. 2 impossibility).

#ifndef ECM_CORE_ECM_SKETCH_H_
#define ECM_CORE_ECM_SKETCH_H_

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "src/core/ecm_config.h"
#include "src/util/hash.h"
#include "src/util/result.h"
#include "src/util/simd.h"
#include "src/window/counter_traits.h"
#include "src/window/merge.h"

namespace ecm {

/// Which sweep PointQueryBatchAt runs over each sketch row.
enum class BatchQueryMode : uint8_t {
  /// Cost-model pick: bucket-sorted once the frontier is large enough to
  /// amortize the per-row counting sort, scalar sweep below that. With
  /// the row-major column matrix the sorted walk wins in both coverage
  /// regimes (sequential counter access plus shared-column dedup), so
  /// the cutover is on frontier size alone.
  kAuto = 0,
  kScalarSweep = 1,   ///< keys in caller order, one Estimate per (key, row)
  kBucketSorted = 2,  ///< counting-sorted column walk, collisions deduped
};

/// Builds the per-counter configuration appropriate for each counter type
/// from the sketch-level EcmConfig.
template <SlidingWindowCounter Counter>
typename Counter::Config MakeCounterConfig(const EcmConfig& cfg);

template <>
inline ExponentialHistogram::Config
MakeCounterConfig<ExponentialHistogram>(const EcmConfig& cfg) {
  return ExponentialHistogram::Config{cfg.epsilon_sw, cfg.window_len};
}

template <>
inline DeterministicWave::Config MakeCounterConfig<DeterministicWave>(
    const EcmConfig& cfg) {
  return DeterministicWave::Config{cfg.epsilon_sw, cfg.window_len,
                                   cfg.max_arrivals};
}

template <>
inline RandomizedWave::Config MakeCounterConfig<RandomizedWave>(
    const EcmConfig& cfg) {
  RandomizedWave::Config c;
  c.epsilon = cfg.epsilon_sw;
  c.delta = cfg.delta_sw > 0 ? cfg.delta_sw : cfg.delta / 2.0;
  c.window_len = cfg.window_len;
  c.max_arrivals = cfg.max_arrivals;
  c.seed = cfg.seed;
  return c;
}

template <>
inline ExactWindow::Config MakeCounterConfig<ExactWindow>(
    const EcmConfig& cfg) {
  return ExactWindow::Config{cfg.window_len};
}

/// Equi-width baseline: spend the window-error budget on ring granularity
/// — B = ceil(1/ε_sw) sub-windows, the natural memory-matched
/// configuration against an ε_sw exponential histogram.
template <>
inline EquiWidthWindow::Config MakeCounterConfig<EquiWidthWindow>(
    const EcmConfig& cfg) {
  auto subwindows = static_cast<uint32_t>(
      std::ceil(1.0 / (cfg.epsilon_sw > 0 ? cfg.epsilon_sw : 0.1)));
  return EquiWidthWindow::Config{cfg.window_len, subwindows};
}

/// Hybrid baseline: exact resolution over the most recent 5% of the
/// window, ε_sw-granular equi-width tail — the natural memory-comparable
/// configuration against an ε_sw exponential histogram.
template <>
inline HybridHistogram::Config MakeCounterConfig<HybridHistogram>(
    const EcmConfig& cfg) {
  HybridHistogram::Config c;
  c.window_len = cfg.window_len;
  c.exact_len = std::max<uint64_t>(1, cfg.window_len / 20);
  c.num_subwindows = static_cast<uint32_t>(
      std::ceil(1.0 / (cfg.epsilon_sw > 0 ? cfg.epsilon_sw : 0.1)));
  return c;
}

/// Count-Min sketch over sliding windows, templated on the window counter.
template <SlidingWindowCounter Counter>
class EcmSketch {
 public:
  /// Builds a sketch from a fully-specified config (typically produced by
  /// EcmConfig::Create). Sketches that will be merged or compared must be
  /// built from compatible configs (same dimensions/seed/window/mode).
  explicit EcmSketch(const EcmConfig& config)
      : config_(config),
        hashes_(config.seed, std::min(config.depth, kMaxSketchDepth),
                config.hash_reduction) {
    assert(config.width > 0 && config.depth > 0 &&
           config.depth <= kMaxSketchDepth);
    // Defense in depth for hand-built configs: the one-pass update path
    // fills a fixed kMaxSketchDepth-entry bucket array, so an oversized
    // depth must shrink the sketch, not overflow the array in Release.
    config_.depth = std::min(config_.depth, kMaxSketchDepth);
    counters_.reserve(NumCounters());
    cell_version_.assign(NumCounters(), 0);
    auto counter_cfg = MakeCounterConfig<Counter>(config);
    for (size_t i = 0; i < NumCounters(); ++i) {
      if constexpr (std::is_same_v<Counter, RandomizedWave>) {
        // Independent sampling randomness per counter cell.
        auto cell_cfg = counter_cfg;
        cell_cfg.seed = Mix64(config.seed ^ (0x9E3779B9ULL * (i + 1)));
        counters_.emplace_back(cell_cfg);
      } else {
        counters_.emplace_back(counter_cfg);
      }
    }
  }

  /// Convenience: compute the config and build in one step.
  static Result<EcmSketch> Create(
      double epsilon, double delta, WindowMode mode, uint64_t window_len,
      uint64_t seed, OptimizeFor optimize = OptimizeFor::kPointQueries,
      uint64_t max_arrivals = 1 << 20) {
    constexpr auto family = std::is_same_v<Counter, RandomizedWave>
                                ? CounterFamily::kRandomized
                                : CounterFamily::kDeterministic;
    auto cfg = EcmConfig::Create(epsilon, delta, mode, window_len, seed,
                                 optimize, family, max_arrivals);
    if (!cfg.ok()) return cfg.status();
    return EcmSketch(*cfg);
  }

  /// Registers `count` occurrences of `key`.
  ///
  /// Time-based mode: `ts` is the arrival's wall-clock tick (>= 1,
  /// non-decreasing). Count-based mode: `ts` is ignored; the sketch keys
  /// counters by the global arrival index of the stream.
  void Add(uint64_t key, Timestamp ts, uint64_t count = 1) {
    Timestamp use_ts;
    if (config_.mode == WindowMode::kCountBased) {
      arrivals_ += count;
      use_ts = arrivals_;
    } else {
      assert(ts >= last_ts_ && ts >= 1);
      use_ts = ts;
    }
    last_ts_ = use_ts;
    l1_lifetime_ += count;
    ++version_;
    // One-pass hashing: mix the key once, derive all d row buckets
    // (SIMD-dispatched), then prefetch every touched counter before the
    // first Add — the d slots live one row-stride apart, so without the
    // prefetch each row's update eats a serial cache miss.
    uint32_t cols[kMaxSketchDepth];
    hashes_.BucketsMixed(key, config_.width, cols);
    for (int j = 0; j < config_.depth; ++j) {
      PrefetchRead(&counters_[static_cast<size_t>(j) * config_.width +
                              cols[j]]);
    }
    for (int j = 0; j < config_.depth; ++j) {
      const size_t idx = static_cast<size_t>(j) * config_.width + cols[j];
      counters_[idx].Add(use_ts, count);
      cell_version_[idx] = version_;
    }
  }

  /// Point query at the sketch's current time: estimated frequency of
  /// `key` among the arrivals in the trailing `range` ticks/arrivals.
  double PointQuery(uint64_t key, uint64_t range) const {
    return PointQueryAt(key, range, Now());
  }

  /// Point query evaluated at an explicit clock value `now` (time-based
  /// mode; `now` must be >= the last Add timestamp).
  double PointQueryAt(uint64_t key, uint64_t range, Timestamp now) const {
    uint32_t cols[kMaxSketchDepth];
    hashes_.BucketsMixed(key, config_.width, cols);
    for (int j = 0; j < config_.depth; ++j) {
      PrefetchRead(&counters_[static_cast<size_t>(j) * config_.width +
                              cols[j]]);
    }
    double best = std::numeric_limits<double>::infinity();
    for (int j = 0; j < config_.depth; ++j) {
      best = std::min(best, CounterAt(j, cols[j]).Estimate(now, range));
    }
    return best;
  }

  /// Batched point queries: writes the estimate for each of keys[0..n)
  /// to out[0..n), identical to n PointQueryAt calls. One SIMD Mix64
  /// pass over all keys, then the key-parallel kernel fills a row-major
  /// bucket matrix (cols[j*n + k]) so each row's sweep reads one
  /// contiguous span; the estimation pass then sweeps the counter array
  /// row-major — the access pattern the dyadic heavy-hitter frontier
  /// descent batches its sibling probes through.
  ///
  /// `mode` picks the per-row sweep. kBucketSorted counting-sorts the
  /// keys inside each row so counter accesses walk in ascending column
  /// order (and column-colliding keys share one Estimate); kScalarSweep
  /// visits keys in caller order with a look-ahead prefetch. kAuto
  /// applies the cost model: sorted once the batch reaches
  /// kBatchBucketSortThreshold keys — below that the counting sort's
  /// fixed per-row cost outweighs its locality win. Per-key results are
  /// bit-identical in every mode, because each estimate is independent
  /// and the per-key min is order-free.
  void PointQueryBatchAt(const uint64_t* keys, size_t n, uint64_t range,
                         Timestamp now, double* out,
                         BatchQueryMode mode = BatchQueryMode::kAuto) const {
    if (n == 0) return;
    const size_t depth = static_cast<size_t>(config_.depth);
    static thread_local std::vector<uint64_t> mixed;
    static thread_local std::vector<uint32_t> cols;  // row-major: [j*n + k]
    mixed.resize(n);
    cols.resize(n * depth);
    HashFamily::Mix64Batch(keys, n, mixed.data());
    hashes_.BucketsRowMajor(mixed.data(), n, config_.width, cols.data());
    std::fill(out, out + n, std::numeric_limits<double>::infinity());
    const bool bucketed =
        mode == BatchQueryMode::kBucketSorted ||
        (mode == BatchQueryMode::kAuto && n >= kBatchBucketSortThreshold);
    if (!bucketed) {
      constexpr size_t kLookAhead = 8;
      for (size_t j = 0; j < depth; ++j) {
        const Counter* row = &counters_[j * config_.width];
        const uint32_t* row_cols = &cols[j * n];
        for (size_t k = 0; k < n; ++k) {
          if (k + kLookAhead < n) PrefetchRead(&row[row_cols[k + kLookAhead]]);
          out[k] = std::min(out[k], row[row_cols[k]].Estimate(now, range));
        }
      }
      return;
    }
    static thread_local std::vector<uint32_t> starts;  // counting sort
    static thread_local std::vector<uint32_t> order;
    order.resize(n);
    for (size_t j = 0; j < depth; ++j) {
      const uint32_t* row_cols = &cols[j * n];
      starts.assign(config_.width + 1, 0);
      for (size_t k = 0; k < n; ++k) ++starts[row_cols[k] + 1];
      for (uint32_t c = 0; c < config_.width; ++c) starts[c + 1] += starts[c];
      for (size_t k = 0; k < n; ++k) {
        order[starts[row_cols[k]]++] = static_cast<uint32_t>(k);
      }
      const Counter* row = &counters_[j * config_.width];
      uint32_t prev_col = std::numeric_limits<uint32_t>::max();
      double prev_est = 0.0;
      for (size_t i = 0; i < n; ++i) {
        const size_t k = order[i];
        const uint32_t col = row_cols[k];
        if (col != prev_col) {
          prev_col = col;
          prev_est = row[col].Estimate(now, range);
        }
        out[k] = std::min(out[k], prev_est);
      }
    }
  }

  /// The arrival-order batched reference: per-row sweep over the keys in
  /// caller order, one Estimate per (key, row). Kept as the ablation
  /// baseline for the bucket-sorted path above (bit-identical output).
  void PointQueryBatchScalarAt(const uint64_t* keys, size_t n, uint64_t range,
                               Timestamp now, double* out) const {
    PointQueryBatchAt(keys, n, range, now, out, BatchQueryMode::kScalarSweep);
  }

  /// Batched admission check for the keyed counter store: heavy_out[k] = 1
  /// iff the sketch's point estimate of keys[k] over (now - range, now] is
  /// at least `threshold` — decision-identical to `PointQueryAt(keys[k],
  /// range, now) >= threshold` but evaluated through the batched row-major
  /// kernel, so candidate bursts cost one Mix64 pass and d contiguous row
  /// sweeps instead of n scattered probes.
  void FlagHeavyKeysAt(const uint64_t* keys, size_t n, uint64_t range,
                       Timestamp now, double threshold,
                       uint8_t* heavy_out) const {
    if (n == 0) return;
    static thread_local std::vector<double> est;
    est.resize(n);
    PointQueryBatchAt(keys, n, range, now, est.data());
    for (size_t k = 0; k < n; ++k) {
      heavy_out[k] = est[k] >= threshold ? 1 : 0;
    }
  }

  /// Single-row contribution to a point query: the estimate of the one
  /// counter `key` hashes to in row `row`. The geometric point monitor
  /// (§6.2) treats the d per-row values as the key's statistics vector.
  double PointQueryRowAt(uint64_t key, int row, uint64_t range,
                         Timestamp now) const {
    return CounterAt(row, hashes_.Bucket(row, key, config_.width))
        .Estimate(now, range);
  }

  /// All d per-row contributions of `key` at once (out[0..depth)): the
  /// statistics vector of the geometric point monitor, materialized with
  /// a single Mix64 pass instead of one hash per row. out[j] ==
  /// PointQueryRowAt(key, j, range, now). When `cols_out` is non-null it
  /// additionally receives the key's d row buckets — the incremental
  /// drift tracker (dist/geometric.h) uses them to locate the touched
  /// statistics-vector entries without a second hash pass.
  void PointQueryRowsAt(uint64_t key, uint64_t range, Timestamp now,
                        double* out, uint32_t* cols_out = nullptr) const {
    uint32_t cols[kMaxSketchDepth];
    hashes_.BucketsMixed(key, config_.width, cols);
    for (int j = 0; j < config_.depth; ++j) {
      PrefetchRead(&counters_[static_cast<size_t>(j) * config_.width +
                              cols[j]]);
    }
    for (int j = 0; j < config_.depth; ++j) {
      out[j] = CounterAt(j, cols[j]).Estimate(now, range);
      if (cols_out) cols_out[j] = cols[j];
    }
  }

  /// Issues read prefetches for every counter cell `key` touches. Callers
  /// that know their next key ahead of time — the dyadic frontier descent
  /// probing level l while level l+1's children are already enumerable —
  /// use this to overlap the d row-stride cache misses with other work.
  void PrefetchKey(uint64_t key) const {
    uint32_t cols[kMaxSketchDepth];
    hashes_.BucketsMixed(key, config_.width, cols);
    for (int j = 0; j < config_.depth; ++j) {
      PrefetchRead(&counters_[static_cast<size_t>(j) * config_.width +
                              cols[j]]);
    }
  }

  /// The d row buckets of `key` (cols[0..depth)), from one Mix64 pass —
  /// the hook drift trackers use to find which counter cell an arrival
  /// touched in each row.
  void RowBuckets(uint64_t key, uint32_t* cols) const {
    hashes_.BucketsMixed(key, config_.width, cols);
  }

  /// Estimated inner product a_r ⊙ b_r of this sketch's stream with
  /// another's over the trailing `range`. Requires compatible sketches.
  Result<double> InnerProduct(const EcmSketch& other, uint64_t range) const {
    return InnerProductAt(other, range, std::max(Now(), other.Now()));
  }

  Result<double> InnerProductAt(const EcmSketch& other, uint64_t range,
                                Timestamp now) const {
    if (!config_.CompatibleWith(other.config_)) {
      return Status::Incompatible(
          "InnerProduct requires equal dimensions, seed, window and mode");
    }
    // Batched path: materialize each row's counter estimates once into
    // scratch, then dot. A self-join squares the one materialized row,
    // so every counter is estimated exactly once — half the work of the
    // per-cell double-Estimate loop, with identical results (same values,
    // same accumulation order).
    static thread_local std::vector<double> scratch_a, scratch_b;
    const bool self = (this == &other);
    scratch_a.resize(config_.width);
    if (!self) scratch_b.resize(config_.width);
    double best = std::numeric_limits<double>::infinity();
    for (int j = 0; j < config_.depth; ++j) {
      EstimateRowAt(j, range, now, scratch_a.data());
      const double* b = scratch_a.data();
      if (!self) {
        other.EstimateRowAt(j, range, now, scratch_b.data());
        b = scratch_b.data();
      }
      double row = 0.0;
      for (uint32_t i = 0; i < config_.width; ++i) {
        row += scratch_a[i] * b[i];
      }
      best = std::min(best, row);
    }
    return best;
  }

  /// Estimated self-join size (second frequency moment F₂) of the trailing
  /// `range`.
  double SelfJoin(uint64_t range) const {
    return UnwrapCompatible(InnerProduct(*this, range),
                            "EcmSketch::SelfJoin");
  }

  /// Estimate of ‖a_r‖₁ (total arrivals in the trailing `range`), computed
  /// as the paper recommends in §6.1: the average over rows of the sum of
  /// the row's counter estimates (per-row sums each equal ‖a_r‖₁ up to
  /// window-counter error; averaging cancels much of it).
  double EstimateL1(uint64_t range) const { return EstimateL1At(range, Now()); }

  /// Results are memoized per (now, range) until the next update
  /// (Add/AdvanceTo/RestoreClock or direct counter mutation), so repeated
  /// window-total probes — the dyadic stack's ratio-threshold pruning,
  /// quantile binary searches — are O(1) after the first. The memo is a
  /// small LRU (kL1CacheEntries slots), so dashboards that interleave
  /// several range ladders between updates do not thrash it.
  double EstimateL1At(uint64_t range, Timestamp now) const {
    for (L1Cache& e : l1_cache_) {
      if (e.valid && e.version == version_ && e.now == now &&
          e.range == range) {
        e.stamp = ++l1_clock_;
        ++l1_hits_;
        return e.value;
      }
    }
    ++l1_misses_;
    double total = 0.0;
    for (int j = 0; j < config_.depth; ++j) {
      for (uint32_t i = 0; i < config_.width; ++i) {
        total += CounterAt(j, i).Estimate(now, range);
      }
    }
    // Evict a stale slot if any survives (entries from old versions are
    // dead weight), else the least recently used one.
    L1Cache* victim = &l1_cache_[0];
    for (L1Cache& e : l1_cache_) {
      if (!e.valid || e.version != version_) {
        victim = &e;
        break;
      }
      if (e.stamp < victim->stamp) victim = &e;
    }
    *victim =
        L1Cache{version_, now, range, total / config_.depth, ++l1_clock_, true};
    return victim->value;
  }

  /// Hit/miss telemetry of the L1 memo (regression-tested).
  struct L1CacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
  };
  L1CacheStats l1_cache_stats() const { return {l1_hits_, l1_misses_}; }

  /// Materializes row `row`'s counter estimates at (now, range) into
  /// out[0..width) — the batched query primitive shared by
  /// InnerProduct/SelfJoin and the geometric monitor's statistics
  /// vectors: each counter's Estimate runs exactly once per pass over
  /// the row's contiguous storage.
  void EstimateRowAt(int row, uint64_t range, Timestamp now,
                     double* out) const {
    const Counter* base = &counters_[static_cast<size_t>(row) * config_.width];
    for (uint32_t i = 0; i < config_.width; ++i) {
      out[i] = base[i].Estimate(now, range);
    }
  }

  /// Extracts one row's counter estimates for range `range` as a dense
  /// vector — the "statistics vector" representation used by the geometric
  /// monitor (§6.2).
  std::vector<double> RowEstimates(int row, uint64_t range,
                                   Timestamp now) const {
    std::vector<double> out(config_.width);
    EstimateRowAt(row, range, now, out.data());
    return out;
  }

  /// Merges time-based sketches into a sketch of the order-preserving
  /// aggregate stream S₁ ⊕ … ⊕ Sₙ (§5.3). `eps_prime_sw` is the window
  /// error parameter of the merged counters (Theorem 4's ε′); pass the
  /// inputs' ε_sw to get total window error 2ε+ε². Count-based sketches
  /// are rejected (Fig. 2).
  static Result<EcmSketch> Merge(const std::vector<const EcmSketch*>& inputs,
                                 double eps_prime_sw, uint64_t seed = 0) {
    if (inputs.empty()) {
      return Status::InvalidArgument("EcmSketch::Merge: no inputs");
    }
    const EcmSketch& first = *inputs[0];
    if (first.config_.mode == WindowMode::kCountBased) {
      return Status::Unsupported(
          "count-based ECM-sketches cannot be merged: the synopses lose the "
          "interleaving of the streams' arrivals (paper Fig. 2)");
    }
    for (const auto* s : inputs) {
      if (!first.config_.CompatibleWith(s->config_)) {
        return Status::Incompatible(
            "EcmSketch::Merge: sketches have different dimensions, seeds, "
            "windows or modes");
      }
    }

    EcmConfig merged_cfg = first.config_;
    merged_cfg.epsilon_sw = eps_prime_sw;
    // Error after one aggregation level (Theorem 4 + §5.3): window error
    // inflates to ε+ε'+εε'; the total budget field tracks it for callers.
    double esw = first.config_.epsilon_sw;
    double merged_sw = esw + eps_prime_sw + esw * eps_prime_sw;
    merged_cfg.epsilon = merged_sw + merged_cfg.epsilon_cm +
                         merged_sw * merged_cfg.epsilon_cm;

    EcmSketch merged(merged_cfg);
    std::vector<const Counter*> cell;
    cell.reserve(inputs.size());
    for (size_t i = 0; i < first.NumCounters(); ++i) {
      cell.clear();
      for (const auto* s : inputs) cell.push_back(&s->counters_[i]);
      auto m = MergeCell(cell, merged_cfg, seed + i);
      if (!m.ok()) return m.status();
      merged.counters_[i] = std::move(*m);
    }
    for (const auto* s : inputs) {
      merged.l1_lifetime_ += s->l1_lifetime_;
      merged.last_ts_ = std::max(merged.last_ts_, s->last_ts_);
    }
    // A freshly merged sketch has all-new content: stamp every cell so
    // delta propagation never mistakes it for an untouched base.
    merged.version_ = 1;
    for (auto& v : merged.cell_version_) v = 1;
    return merged;
  }

  /// Current clock: last Add timestamp (time-based) or total arrivals
  /// (count-based).
  Timestamp Now() const { return last_ts_; }

  /// Advances the sketch clock without adding arrivals (time-based mode);
  /// expires counter state that slid out of the window.
  void AdvanceTo(Timestamp now) {
    assert(config_.mode == WindowMode::kTimeBased && now >= last_ts_);
    last_ts_ = now;
    ++version_;
    // Expire can drop buckets in any counter, so every cell's wire
    // encoding may change: stamp them all dirty. Delta sync pays full
    // price after an explicit AdvanceTo — the steady ingest paths
    // (Site::Ingest, periodic/collect sync) never call it.
    for (auto& c : counters_) c.Expire(now);
    for (auto& v : cell_version_) v = version_;
  }

  /// Total stream weight ever added (not windowed).
  uint64_t l1_lifetime() const { return l1_lifetime_; }

  /// Restores the clock and lifetime counters after deserialization
  /// (dist/serialize.h only).
  void RestoreClock(Timestamp now, uint64_t l1) {
    last_ts_ = now;
    arrivals_ = (config_.mode == WindowMode::kCountBased) ? now : arrivals_;
    l1_lifetime_ = l1;
    ++version_;
  }

  /// In-memory footprint: all counters plus the sketch frame.
  size_t MemoryBytes() const {
    size_t bytes = sizeof(*this);
    for (const auto& c : counters_) bytes += c.MemoryBytes();
    bytes += cell_version_.capacity() * sizeof(uint64_t);
    return bytes;
  }

  const EcmConfig& config() const { return config_; }
  size_t NumCounters() const {
    return static_cast<size_t>(config_.width) * config_.depth;
  }

  /// Counter cell access (row-major), for serialization and tests.
  const Counter& CounterAt(int row, uint32_t col) const {
    return counters_[static_cast<size_t>(row) * config_.width + col];
  }
  Counter& CounterAt(int row, uint32_t col) {
    // Handing out a mutable counter (deserialization, tests) may change
    // its contents, so the memoized window totals must not outlive it —
    // and the cell must count as dirty for delta propagation.
    ++version_;
    const size_t idx = static_cast<size_t>(row) * config_.width + col;
    cell_version_[idx] = version_;
    return counters_[idx];
  }

  /// Monotone state-mutation stamp. Every Add/AdvanceTo/RestoreClock and
  /// every mutable CounterAt access bumps it; the delta-propagation layer
  /// (dist/compress.h) records it at ship time as the base version of the
  /// next delta.
  uint64_t version() const { return version_; }

  /// Version stamp of the last mutation that touched counter cell `idx`
  /// (row-major, as NumCounters() indexes them); 0 if never touched.
  uint64_t CellVersion(size_t idx) const { return cell_version_[idx]; }

  /// Appends (row-major) indices of every cell mutated after
  /// `base_version`, in increasing order — the dirty set a delta image
  /// ships. A sketch restored by deserialization stamps all written cells
  /// via mutable CounterAt, so deltas compose across the wire.
  void AppendDirtyCells(uint64_t base_version,
                        std::vector<uint32_t>* out) const {
    for (size_t i = 0; i < cell_version_.size(); ++i) {
      if (cell_version_[i] > base_version) {
        out->push_back(static_cast<uint32_t>(i));
      }
    }
  }

 private:
  // Merges one counter cell across the input sketches, dispatched on the
  // counter type.
  static Result<Counter> MergeCell(const std::vector<const Counter*>& cell,
                                   const EcmConfig& merged_cfg,
                                   uint64_t seed) {
    if constexpr (std::is_same_v<Counter, ExponentialHistogram>) {
      std::vector<const ExponentialHistogram*> in(cell.begin(), cell.end());
      return MergeHistograms(in, merged_cfg.epsilon_sw);
    } else if constexpr (std::is_same_v<Counter, DeterministicWave>) {
      std::vector<const DeterministicWave*> in(cell.begin(), cell.end());
      return MergeWaves(in, merged_cfg.epsilon_sw, merged_cfg.max_arrivals);
    } else if constexpr (std::is_same_v<Counter, RandomizedWave>) {
      std::vector<const RandomizedWave*> in(cell.begin(), cell.end());
      return MergeRandomizedWaves(in, Mix64(merged_cfg.seed ^ seed));
    } else {
      // Exact windows (tests): lossless replay of all retained arrivals.
      std::vector<ReplayEvent> events;
      for (const auto* c : cell) AppendBucketEvents(c->Buckets(), &events);
      Counter merged(MakeCounterConfig<Counter>(merged_cfg));
      ReplayInto(std::move(events), &merged);
      return merged;
    }
  }

  // One slot of the EstimateL1At LRU, keyed on the sketch's update
  // version and the query's (now, range). `mutable` because queries are
  // logically const; like the thread_local query scratch, concurrent
  // queries on one sketch instance are not supported (updates never
  // were).
  struct L1Cache {
    uint64_t version = 0;
    Timestamp now = 0;
    uint64_t range = 0;
    double value = 0.0;
    uint64_t stamp = 0;  // LRU age (l1_clock_ at last touch)
    bool valid = false;
  };
  static constexpr size_t kL1CacheEntries = 8;

  // Below this frontier size the batched point query runs the plain
  // arrival-order sweep; the counting sort only pays off once the row
  // walk stops fitting comfortably in cache.
  static constexpr size_t kBatchBucketSortThreshold = 64;

  EcmConfig config_;
  HashFamily hashes_;
  std::vector<Counter> counters_;  // row-major depth × width
  // Per-cell dirty stamp: version_ at the cell's last mutation. Parallel
  // to counters_, read by AppendDirtyCells for delta propagation.
  std::vector<uint64_t> cell_version_;
  uint64_t arrivals_ = 0;  // count-based arrival index
  Timestamp last_ts_ = 0;
  uint64_t l1_lifetime_ = 0;
  uint64_t version_ = 0;  // bumped on every state mutation
  mutable std::array<L1Cache, kL1CacheEntries> l1_cache_{};
  mutable uint64_t l1_clock_ = 0;
  mutable uint64_t l1_hits_ = 0;
  mutable uint64_t l1_misses_ = 0;
};

/// The paper's three variants plus the collision-only testing variant.
using EcmEh = EcmSketch<ExponentialHistogram>;
using EcmDw = EcmSketch<DeterministicWave>;
using EcmRw = EcmSketch<RandomizedWave>;
using EcmExact = EcmSketch<ExactWindow>;

}  // namespace ecm

#endif  // ECM_CORE_ECM_SKETCH_H_
