// Arrow/RocksDB-style Status type for recoverable errors.
//
// Library code in this project never throws on anticipated failure paths
// (incompatible sketch merges, bad configuration, deserialization of corrupt
// bytes). Instead, fallible operations return Status or Result<T>
// (see result.h). Programming errors (out-of-contract use) are guarded by
// assertions in debug builds.

#ifndef ECM_UTIL_STATUS_H_
#define ECM_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace ecm {

/// Machine-readable category of a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kIncompatible = 2,    ///< sketches with different shapes/seeds/modes
  kUnsupported = 3,     ///< operation impossible by design (e.g. Fig. 2)
  kOutOfRange = 4,      ///< query range exceeds the configured window
  kCorruption = 5,      ///< malformed serialized bytes
  kInternal = 6,
  kIOError = 7,         ///< socket/file transfer failure (non-transient)
  kStaleBase = 8,       ///< delta/RLZ image against the wrong base snapshot
  kUnavailable = 9,     ///< transient peer/link failure; retry may succeed
  kDeadlineExceeded = 10,  ///< operation did not finish within its deadline
};

/// Returns a short human-readable name for a StatusCode ("OK",
/// "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// Result of an operation that can fail without a return value.
///
/// Cheap to copy in the OK case (no allocation). Construction helpers mirror
/// the Arrow API: `Status::OK()`, `Status::InvalidArgument("...")`, etc.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  /// Returns an OK status.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Incompatible(std::string msg) {
    return Status(StatusCode::kIncompatible, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status StaleBase(std::string msg) {
    return Status(StatusCode::kStaleBase, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  /// True iff the status is OK.
  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// True iff retrying the same operation later could plausibly succeed
/// (transient link loss, missed deadline). Callers holding a retryable
/// failure should back off and retry; anything else is a terminal error.
inline bool IsRetryable(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kDeadlineExceeded;
}
inline bool IsRetryable(const Status& s) { return IsRetryable(s.code()); }

/// Propagates a non-OK Status to the caller, Arrow-style.
#define ECM_RETURN_NOT_OK(expr)            \
  do {                                     \
    ::ecm::Status _st = (expr);            \
    if (!_st.ok()) return _st;             \
  } while (0)

}  // namespace ecm

#endif  // ECM_UTIL_STATUS_H_
