// Result<T>: value-or-Status, the companion of Status for fallible
// operations that produce a value (Arrow's arrow::Result, absl::StatusOr).

#ifndef ECM_UTIL_RESULT_H_
#define ECM_UTIL_RESULT_H_

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <utility>

#include "src/util/status.h"

namespace ecm {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value could not be produced.
///
/// Usage:
/// \code
///   Result<EcmSketch> merged = EcmSketch::Merge(a, b);
///   if (!merged.ok()) return merged.status();
///   UseSketch(*merged);
/// \endcode
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, like arrow::Result).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status. Asserts the status is not OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  /// True iff a value is held.
  bool ok() const { return value_.has_value(); }

  /// The error status; Status::OK() when a value is held.
  const Status& status() const { return status_; }

  /// Accesses the held value. Must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Moves the value out of the Result. Must only be called when ok().
  T MoveValue() {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Unwraps a Result that is guaranteed to hold a value by construction
/// (e.g. comparing a sketch with itself, which is always compatible).
/// Debug builds assert with `context` when the guarantee is violated;
/// release builds abort instead of dereferencing an empty Result.
template <typename T>
T UnwrapCompatible(Result<T> r, const char* context) {
  assert(r.ok() && context != nullptr);
  if (!r.ok()) {
    std::fprintf(stderr, "UnwrapCompatible(%s): %s\n", context,
                 r.status().ToString().c_str());
    std::abort();
  }
  return r.MoveValue();
}

/// Propagates the error of a Result expression, or assigns its value.
#define ECM_ASSIGN_OR_RETURN(lhs, expr)         \
  auto _res_##__LINE__ = (expr);                \
  if (!_res_##__LINE__.ok()) return _res_##__LINE__.status(); \
  lhs = std::move(*_res_##__LINE__)

}  // namespace ecm

#endif  // ECM_UTIL_RESULT_H_
