#include "src/util/hash.h"

#include "src/util/random.h"

namespace ecm {

uint64_t PairwiseHash::MulModMersenne61(uint64_t x, uint64_t y) {
  __uint128_t prod = static_cast<__uint128_t>(x) * y;
  uint64_t lo = static_cast<uint64_t>(prod & kMersenne61);
  uint64_t hi = static_cast<uint64_t>(prod >> 61);
  uint64_t sum = lo + hi;
  if (sum >= kMersenne61) sum -= kMersenne61;
  return sum;
}

PairwiseHash::PairwiseHash(uint64_t seed_a, uint64_t seed_b) {
  a_ = Mix64(seed_a) % (kMersenne61 - 1) + 1;  // in [1, p)
  b_ = Mix64(seed_b) % kMersenne61;            // in [0, p)
}

HashFamily::HashFamily(uint64_t seed, int d) : seed_(seed) {
  funcs_.reserve(d);
  for (int i = 0; i < d; ++i) {
    // Distinct, deterministic sub-seeds per row.
    uint64_t sa = Mix64(seed ^ (0xA5A5A5A5ULL + 2 * i));
    uint64_t sb = Mix64(seed ^ (0x5A5A5A5AULL + 2 * i + 1));
    funcs_.emplace_back(sa, sb);
  }
}

}  // namespace ecm
