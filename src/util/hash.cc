#include "src/util/hash.h"

#include "src/util/random.h"

namespace ecm {

uint64_t PairwiseHash::MulModMersenne61(uint64_t x, uint64_t y) {
  __uint128_t prod = static_cast<__uint128_t>(x) * y;
  // Two folding rounds reduce any 128-bit product exactly mod 2^61-1. One
  // round is not enough for full 64-bit operands (e.g. Mix64 outputs): the
  // first fold can leave up to 65 bits, which a single conditional
  // subtraction cannot bring below the modulus.
  __uint128_t folded = (prod & kMersenne61) + (prod >> 61);
  uint64_t sum =
      static_cast<uint64_t>((folded & kMersenne61) + (folded >> 61));
  if (sum >= kMersenne61) sum -= kMersenne61;
  return sum;
}

PairwiseHash::PairwiseHash(uint64_t seed_a, uint64_t seed_b) {
  a_ = Mix64(seed_a) % (kMersenne61 - 1) + 1;  // in [1, p)
  b_ = Mix64(seed_b) % kMersenne61;            // in [0, p)
}

HashFamily::HashFamily(uint64_t seed, int d, HashReduction reduction)
    : seed_(seed), reduction_(reduction) {
  funcs_.reserve(d);
  for (int i = 0; i < d; ++i) {
    // Distinct, deterministic sub-seeds per row.
    uint64_t sa = Mix64(seed ^ (0xA5A5A5A5ULL + 2 * i));
    uint64_t sb = Mix64(seed ^ (0x5A5A5A5AULL + 2 * i + 1));
    funcs_.emplace_back(sa, sb);
  }
}

}  // namespace ecm
