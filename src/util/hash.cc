#include "src/util/hash.h"

#include "src/util/random.h"

namespace ecm {

uint64_t PairwiseHash::MulModMersenne61(uint64_t x, uint64_t y) {
  __uint128_t prod = static_cast<__uint128_t>(x) * y;
  // Two folding rounds reduce any 128-bit product exactly mod 2^61-1. One
  // round is not enough for full 64-bit operands (e.g. Mix64 outputs): the
  // first fold can leave up to 65 bits, which a single conditional
  // subtraction cannot bring below the modulus.
  __uint128_t folded = (prod & kMersenne61) + (prod >> 61);
  uint64_t sum =
      static_cast<uint64_t>((folded & kMersenne61) + (folded >> 61));
  if (sum >= kMersenne61) sum -= kMersenne61;
  return sum;
}

PairwiseHash::PairwiseHash(uint64_t seed_a, uint64_t seed_b) {
  a_ = Mix64(seed_a) % (kMersenne61 - 1) + 1;  // in [1, p)
  b_ = Mix64(seed_b) % kMersenne61;            // in [0, p)
}

HashFamily::HashFamily(uint64_t seed, int d, HashReduction reduction)
    : seed_(seed), reduction_(reduction) {
  funcs_.reserve(d);
  for (int i = 0; i < d; ++i) {
    // Distinct, deterministic sub-seeds per row.
    uint64_t sa = Mix64(seed ^ (0xA5A5A5A5ULL + 2 * i));
    uint64_t sb = Mix64(seed ^ (0x5A5A5A5AULL + 2 * i + 1));
    funcs_.emplace_back(sa, sb);
  }
  // Padded SoA mirror for the vector kernels; the (a=1, b=0) identity
  // padding is never observable — tail lanes are dropped before stores.
  const size_t padded =
      (static_cast<size_t>(d) + kCoeffPad - 1) / kCoeffPad * kCoeffPad;
  coeff_a_.assign(padded, 1);
  coeff_b_.assign(padded, 0);
  for (int i = 0; i < d; ++i) {
    coeff_a_[i] = funcs_[i].a();
    coeff_b_[i] = funcs_[i].b();
  }
}

void HashFamily::BucketsRowMajor(const uint64_t* mixed, size_t n,
                                 uint32_t width, uint32_t* out) const {
  const size_t d = funcs_.size();
  if (reduction_ == HashReduction::kFastRange) {
    const auto& kernels = internal::ActiveHashKernels();
    for (size_t row = 0; row < d; ++row) {
      kernels.buckets_row(coeff_a_[row], coeff_b_[row], mixed, n, width,
                          out + row * n);
    }
    return;
  }
  for (size_t row = 0; row < d; ++row) {
    uint32_t* row_out = out + row * n;
    for (size_t k = 0; k < n; ++k) {
      row_out[k] =
          PairwiseHash::Reduce(funcs_[row].RawMixed(mixed[k]), width,
                               reduction_);
    }
  }
}

}  // namespace ecm
