// Little-endian binary encoding helpers used by sketch serialization.
//
// The distributed-aggregation substrate measures network cost as the exact
// number of bytes a sketch occupies on the wire, so the encoders here are
// the single source of truth for transfer-volume accounting. Varint
// encoding is used for counts/timestamps since exponential-histogram bucket
// metadata is the dominant payload and is mostly small integers.

#ifndef ECM_UTIL_BYTES_H_
#define ECM_UTIL_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/util/result.h"
#include "src/util/status.h"

namespace ecm {

/// Append-only binary encoder.
class ByteWriter {
 public:
  /// Appends a fixed-width little-endian integer. (insert rather than
  /// resize+memcpy: GCC 12's -Warray-bounds false-fires on the latter
  /// when this inlines into a fixed-size header writer.)
  template <typename T>
  void PutFixed(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  /// Appends an unsigned LEB128 varint.
  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<uint8_t>(v));
  }

  /// Appends a signed varint (zigzag).
  void PutSignedVarint(int64_t v) {
    PutVarint((static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63));
  }

  /// Appends raw bytes verbatim (framing helpers in dist/serialize.h).
  void PutRaw(const uint8_t* data, size_t size) {
    buf_.insert(buf_.end(), data, data + size);
  }

  /// Pre-sizes the underlying buffer (fixed-layout writers know their
  /// exact frame size; reserving once also sidesteps GCC 12's bogus
  /// -Wstringop-overflow on the inlined growth path).
  void Reserve(size_t bytes) { buf_.reserve(bytes); }

  /// Appends a double in its IEEE-754 bit pattern.
  void PutDouble(double d) {
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    PutFixed<uint64_t>(bits);
  }

  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> MoveBytes() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
};

/// Sequential binary decoder over a byte span. All getters return
/// Status/Result so corrupt input is reported, never UB.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size)
      : data_(data), size_(size), pos_(0) {}
  explicit ByteReader(const std::vector<uint8_t>& buf)
      : ByteReader(buf.data(), buf.size()) {}

  template <typename T>
  Result<T> GetFixed() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos_ + sizeof(T) > size_) {
      return Status::Corruption("truncated fixed-width field");
    }
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  Result<uint64_t> GetVarint() {
    uint64_t v = 0;
    int shift = 0;
    while (pos_ < size_ && shift < 64) {
      uint8_t b = data_[pos_++];
      v |= static_cast<uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
    return Status::Corruption("truncated or overlong varint");
  }

  Result<int64_t> GetSignedVarint() {
    auto r = GetVarint();
    if (!r.ok()) return r.status();
    uint64_t u = *r;
    return static_cast<int64_t>((u >> 1) ^ (~(u & 1) + 1));
  }

  Result<double> GetDouble() {
    auto r = GetFixed<uint64_t>();
    if (!r.ok()) return r.status();
    double d;
    uint64_t bits = *r;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
  }

  /// Returns a pointer to the next `n` unconsumed bytes and advances past
  /// them; Corruption if fewer remain. The span aliases the input buffer.
  Result<const uint8_t*> GetRaw(size_t n) {
    if (n > size_ - pos_) {
      return Status::Corruption("truncated raw byte span");
    }
    const uint8_t* p = data_ + pos_;
    pos_ += n;
    return p;
  }

  /// Bytes not yet consumed.
  size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_;
};

/// Size in bytes of a value when varint-encoded.
size_t VarintLength(uint64_t v);

}  // namespace ecm

#endif  // ECM_UTIL_BYTES_H_
