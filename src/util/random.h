// Deterministic pseudo-random generation (xoshiro256**).
//
// Every randomized component of the library (randomized waves, workload
// generators) takes an explicit seed and derives all of its randomness from
// this generator, so that every experiment row in the paper-reproduction
// benches is replayable bit-for-bit.

#ifndef ECM_UTIL_RANDOM_H_
#define ECM_UTIL_RANDOM_H_

#include <cstdint>

namespace ecm {

/// xoshiro256** 1.0 — small, fast, high-quality 64-bit PRNG.
/// Satisfies the UniformRandomBitGenerator concept, so it can be plugged
/// into <random> distributions when convenient.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the generator from a single 64-bit value via SplitMix64.
  explicit Rng(uint64_t seed = 0xECADECADE5EEDULL);

  /// Next raw 64 bits.
  uint64_t Next();

  uint64_t operator()() { return Next(); }
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }

  /// Uniform integer in [0, n). n must be > 0. Uses rejection sampling to
  /// avoid modulo bias.
  uint64_t Uniform(uint64_t n);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Geometric level: number of leading successes of fair coin flips,
  /// i.e. returns l with probability 2^-(l+1), capped at `max_level`.
  int GeometricLevel(int max_level);

  /// Exact Binomial(n, 1/2) draw: the number of heads among n fair coin
  /// flips, computed 64 flips at a time via popcount. For n == 1 this
  /// consumes exactly one Next() and returns its low bit — the same coin
  /// GeometricLevel flips — so per-level binomial thinning of a single
  /// arrival is bit-identical to the per-arrival geometric draw.
  uint64_t BinomialHalf(uint64_t n);

 private:
  uint64_t s_[4];
};

}  // namespace ecm

#endif  // ECM_UTIL_RANDOM_H_
