#include "src/util/random.h"

#include <bit>

#include "src/util/hash.h"

namespace ecm {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  // SplitMix64 expansion of the seed into the 256-bit state, per the
  // xoshiro authors' recommendation.
  uint64_t z = seed;
  for (auto& s : s_) {
    z += 0x9E3779B97F4A7C15ULL;
    s = Mix64(z);
  }
  // xoshiro state must not be all-zero.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  // Lemire-style rejection: threshold = 2^64 mod n.
  uint64_t threshold = (-n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

double Rng::NextDouble() {
  // 53 high bits -> [0,1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

int Rng::GeometricLevel(int max_level) {
  int level = 0;
  while (level < max_level && (Next() & 1)) ++level;
  return level;
}

uint64_t Rng::BinomialHalf(uint64_t n) {
  uint64_t heads = 0;
  while (n >= 64) {
    heads += static_cast<uint64_t>(std::popcount(Next()));
    n -= 64;
  }
  if (n > 0) {
    heads += static_cast<uint64_t>(std::popcount(Next() & ((1ULL << n) - 1)));
  }
  return heads;
}

}  // namespace ecm
