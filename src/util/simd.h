// Runtime SIMD dispatch for the sketch hot kernels.
//
// The vector kernels (util/simd_kernels.h) are compiled for every tier in
// one translation unit via function target attributes, so a stock Release
// build — no -march=native — still ships AVX2 code and selects it at run
// time from one cpuid probe. `ECM_NATIVE` remains the max-opt vehicle
// (whole-program -march=native + LTO); this layer only decides which
// hand-written kernel variant the portable build executes.
//
// Every vector kernel has a scalar twin that is bit-identical (the hash
// arithmetic is exact integer math), so forcing a tier — via
// ForceSimdLevel() or the ECM_SIMD environment variable — changes speed,
// never results. Tests run the full matrix (forced-scalar, forced-SSE2,
// forced-AVX2, auto) against the scalar reference; benches force tiers to
// record ablation rows.

#ifndef ECM_UTIL_SIMD_H_
#define ECM_UTIL_SIMD_H_

#include <cstdint>

namespace ecm {

/// Instruction-set tiers the hand-written kernels exist for, in strictly
/// increasing capability order. kSSE2 is the x86-64 baseline (always
/// available there); kAVX2 requires a cpuid probe; non-x86 builds detect
/// kScalar.
enum class SimdLevel : uint8_t {
  kScalar = 0,
  kSSE2 = 1,
  kAVX2 = 2,
};

/// Highest tier this CPU supports (cpuid, probed once and cached).
SimdLevel DetectedSimdLevel();

/// True iff `level`'s kernels may execute on this CPU.
bool SimdLevelSupported(SimdLevel level);

/// The tier kernels dispatch to: a ForceSimdLevel() override if one is
/// set, else the ECM_SIMD environment variable ("scalar" / "sse2" /
/// "avx2"; "auto" or unset defers), else DetectedSimdLevel().
SimdLevel ActiveSimdLevel();

/// Pins dispatch to `level` (tests and bench ablations). Returns false —
/// and changes nothing — if the CPU cannot execute that tier.
bool ForceSimdLevel(SimdLevel level);

/// Clears a ForceSimdLevel() override (back to ECM_SIMD / detection).
void ResetSimdLevel();

/// "scalar" / "sse2" / "avx2" (stable, matches the ECM_SIMD spellings).
const char* SimdLevelName(SimdLevel level);

/// Parses an ECM_SIMD-style spelling. Returns true and sets *out for the
/// three tier names; returns false for "auto", empty, or garbage (callers
/// treat that as "no override").
bool ParseSimdLevel(const char* name, SimdLevel* out);

/// Read-prefetch of the cache line holding `p` (no-op where unsupported).
/// The d-row sketch walks issue these for all d counter slots before
/// touching the first one, hiding the row-to-row cache misses.
inline void PrefetchRead(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

}  // namespace ecm

#endif  // ECM_UTIL_SIMD_H_
