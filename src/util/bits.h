// Small bit-manipulation helpers shared across the window synopses.

#ifndef ECM_UTIL_BITS_H_
#define ECM_UTIL_BITS_H_

#include <bit>
#include <cstdint>

namespace ecm {

/// floor(log2(x)) for x >= 1.
inline int FloorLog2(uint64_t x) { return 63 - std::countl_zero(x); }

/// ceil(log2(x)) for x >= 1 (returns 0 for x == 1).
inline int CeilLog2(uint64_t x) {
  return x <= 1 ? 0 : 64 - std::countl_zero(x - 1);
}

/// True iff x is a power of two (x > 0).
inline bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// Number of trailing zero bits; 64 for x == 0.
inline int TrailingZeros(uint64_t x) { return std::countr_zero(x); }

}  // namespace ecm

#endif  // ECM_UTIL_BITS_H_
