#include "src/util/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace ecm {

namespace {

#if defined(__x86_64__) || defined(_M_X64)
constexpr bool kIsX64 = true;
#else
constexpr bool kIsX64 = false;
#endif

SimdLevel ProbeCpu() {
#if defined(__x86_64__) || defined(_M_X64)
  // SSE2 is part of the x86-64 baseline; only AVX2 needs a probe.
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAVX2;
  return SimdLevel::kSSE2;
#else
  return SimdLevel::kScalar;
#endif
}

// -1 = no override; otherwise the forced SimdLevel. Relaxed atomics: the
// override is test/bench plumbing, and every tier computes identical
// results, so a racing reader picking either value is benign.
std::atomic<int> g_forced{-1};

// ECM_SIMD parsed once (first dispatch); -1 = unset/auto/unparseable.
int EnvLevel() {
  static const int level = [] {
    const char* e = std::getenv("ECM_SIMD");
    SimdLevel parsed;
    if (e != nullptr && ParseSimdLevel(e, &parsed) &&
        SimdLevelSupported(parsed)) {
      return static_cast<int>(parsed);
    }
    return -1;
  }();
  return level;
}

}  // namespace

SimdLevel DetectedSimdLevel() {
  static const SimdLevel level = ProbeCpu();
  return level;
}

bool SimdLevelSupported(SimdLevel level) {
  if (level == SimdLevel::kScalar) return true;
  if (!kIsX64) return false;
  return static_cast<uint8_t>(level) <=
         static_cast<uint8_t>(DetectedSimdLevel());
}

SimdLevel ActiveSimdLevel() {
  int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<SimdLevel>(forced);
  int env = EnvLevel();
  if (env >= 0) return static_cast<SimdLevel>(env);
  SimdLevel detected = DetectedSimdLevel();
  // Auto mode only steps up to AVX2. Scalar x86-64 has a single-instruction
  // 64x64->128 multiply, which the 2-lane SSE2 emulation (3x pmuludq plus
  // shifts per product) measurably loses to; the SSE2 tier is kept as a
  // correctness rung and stays selectable via ECM_SIMD / ForceSimdLevel.
  return detected == SimdLevel::kAVX2 ? SimdLevel::kAVX2 : SimdLevel::kScalar;
}

bool ForceSimdLevel(SimdLevel level) {
  if (!SimdLevelSupported(level)) return false;
  g_forced.store(static_cast<int>(level), std::memory_order_relaxed);
  return true;
}

void ResetSimdLevel() { g_forced.store(-1, std::memory_order_relaxed); }

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSSE2:
      return "sse2";
    case SimdLevel::kAVX2:
      return "avx2";
  }
  return "scalar";
}

bool ParseSimdLevel(const char* name, SimdLevel* out) {
  if (name == nullptr || out == nullptr) return false;
  if (std::strcmp(name, "scalar") == 0) {
    *out = SimdLevel::kScalar;
    return true;
  }
  if (std::strcmp(name, "sse2") == 0) {
    *out = SimdLevel::kSSE2;
    return true;
  }
  if (std::strcmp(name, "avx2") == 0) {
    *out = SimdLevel::kAVX2;
    return true;
  }
  return false;
}

}  // namespace ecm
