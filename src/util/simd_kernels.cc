#include "src/util/simd_kernels.h"

#include "src/util/hash.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define ECM_SIMD_X64 1
#else
#define ECM_SIMD_X64 0
#endif

namespace ecm::internal {
namespace {

// ---------------------------------------------------------------------------
// Scalar reference tier
//
// Exactly the pre-SIMD loops, routed through the same PairwiseHash
// primitives the rest of the library uses — the other tiers are
// differential-tested against these.
// ---------------------------------------------------------------------------

constexpr uint64_t kM61 = PairwiseHash::kMersenne61;

inline uint32_t ScalarBucket(uint64_t a, uint64_t b, uint64_t mixed,
                             uint32_t width) {
  uint64_t v = PairwiseHash::MulModMersenne61(a, mixed) + b;
  if (v >= kM61) v -= kM61;
  return PairwiseHash::Reduce(v, width, HashReduction::kFastRange);
}

void Mix64BatchScalar(const uint64_t* keys, size_t n, uint64_t* out) {
  for (size_t k = 0; k < n; ++k) out[k] = Mix64(keys[k]);
}

void BucketsMixedScalar(const uint64_t* a, const uint64_t* b, size_t d,
                        uint64_t mixed, uint32_t width, uint32_t* out) {
  for (size_t j = 0; j < d; ++j) {
    out[j] = ScalarBucket(a[j], b[j], mixed, width);
  }
}

void BucketsRowScalar(uint64_t a, uint64_t b, const uint64_t* mixed, size_t n,
                      uint32_t width, uint32_t* out) {
  for (size_t k = 0; k < n; ++k) out[k] = ScalarBucket(a, b, mixed[k], width);
}

#if ECM_SIMD_X64

// ---------------------------------------------------------------------------
// Shared lane math
//
// Each 64-bit lane carries one hash evaluation. The 61-bit Carter–Wegman
// product a*m (a < 2^61, m < 2^64) is built from 32x32 partial products,
// then reduced mod 2^61-1 by a carry-free three-limb fold: with the
// 128-bit product split as prod = hi·2^64 + lo,
//
//     prod ≡ (lo & M61) + (((lo >> 61) | (hi << 3)) & M61) + (hi >> 58)
//
// (2^61 ≡ 1), a sum of three < 2^61 limbs that fits 64 bits — no carry
// detection needed, unlike folding the raw 64-bit halves. One more fold
// plus a conditional subtract lands in the canonical range [0, M61), so
// every tier returns the scalar path's exact representative.
// ---------------------------------------------------------------------------

// --- SSE2 tier (x86-64 baseline; 2 lanes) ---------------------------------

// Signed 64-bit a > b without SSE4.2's pcmpgtq: high dwords compare
// signed; on high-dword equality the sign of the 64-bit difference b-a
// decides (no overflow — equal highs bound |a-b| < 2^32). All inputs here
// are < 2^62, so signed order is unsigned order.
inline __m128i CmpGt64Sse2(__m128i a, __m128i b) {
  __m128i eq_sel = _mm_and_si128(_mm_cmpeq_epi32(a, b), _mm_sub_epi64(b, a));
  __m128i gt = _mm_or_si128(eq_sel, _mm_cmpgt_epi32(a, b));
  return _mm_shuffle_epi32(gt, _MM_SHUFFLE(3, 3, 1, 1));
}

// x - M61 where x >= M61, else x (x < 2^62).
inline __m128i CondSubM61Sse2(__m128i x) {
  const __m128i m61 = _mm_set1_epi64x(static_cast<int64_t>(kM61));
  const __m128i m61m1 = _mm_set1_epi64x(static_cast<int64_t>(kM61 - 1));
  __m128i over = CmpGt64Sse2(x, m61m1);
  return _mm_sub_epi64(x, _mm_and_si128(over, m61));
}

// Two buckets per call: FastRange(RawMixed(a, b, m), width) per lane.
inline __m128i BucketLanesSse2(__m128i a, __m128i b, __m128i m,
                               __m128i widthv) {
  const __m128i mask32 = _mm_set1_epi64x(0xFFFFFFFFLL);
  const __m128i m61 = _mm_set1_epi64x(static_cast<int64_t>(kM61));
  __m128i a_hi = _mm_srli_epi64(a, 32);
  __m128i m_hi = _mm_srli_epi64(m, 32);
  __m128i ll = _mm_mul_epu32(a, m);
  __m128i lh = _mm_mul_epu32(a, m_hi);
  __m128i hl = _mm_mul_epu32(a_hi, m);
  __m128i hh = _mm_mul_epu32(a_hi, m_hi);
  __m128i mid = _mm_add_epi64(_mm_add_epi64(_mm_srli_epi64(ll, 32),
                                            _mm_and_si128(lh, mask32)),
                              _mm_and_si128(hl, mask32));
  __m128i lo = _mm_or_si128(_mm_and_si128(ll, mask32), _mm_slli_epi64(mid, 32));
  __m128i hi = _mm_add_epi64(
      _mm_add_epi64(hh, _mm_srli_epi64(lh, 32)),
      _mm_add_epi64(_mm_srli_epi64(hl, 32), _mm_srli_epi64(mid, 32)));
  __m128i x0 = _mm_and_si128(lo, m61);
  __m128i x1 = _mm_and_si128(
      _mm_or_si128(_mm_srli_epi64(lo, 61), _mm_slli_epi64(hi, 3)), m61);
  __m128i x2 = _mm_srli_epi64(hi, 58);
  __m128i s = _mm_add_epi64(_mm_add_epi64(x0, x1), x2);
  __m128i t = _mm_add_epi64(_mm_and_si128(s, m61), _mm_srli_epi64(s, 61));
  t = CondSubM61Sse2(t);
  __m128i v = CondSubM61Sse2(_mm_add_epi64(t, b));
  // Lemire fast range on the hash's high 32 bits: ((v >> 29) * width) >> 32.
  return _mm_srli_epi64(_mm_mul_epu32(_mm_srli_epi64(v, 29), widthv), 32);
}

// Stores the two lane results (each < 2^32) as consecutive uint32.
inline void Store2Lanes(__m128i buckets, uint32_t* out) {
  __m128i packed = _mm_shuffle_epi32(buckets, _MM_SHUFFLE(3, 3, 2, 0));
  _mm_storel_epi64(reinterpret_cast<__m128i*>(out), packed);
}

// 64-bit lane low multiply by a broadcast constant (SSE2 has no pmullq).
inline __m128i MulLo64Sse2(__m128i x, __m128i c) {
  __m128i lo = _mm_mul_epu32(x, c);
  __m128i h1 = _mm_mul_epu32(_mm_srli_epi64(x, 32), c);
  __m128i h2 = _mm_mul_epu32(x, _mm_srli_epi64(c, 32));
  return _mm_add_epi64(lo, _mm_slli_epi64(_mm_add_epi64(h1, h2), 32));
}

inline __m128i Mix64LanesSse2(__m128i x) {
  const __m128i c1 =
      _mm_set1_epi64x(static_cast<int64_t>(0x9E3779B97F4A7C15ULL));
  const __m128i c2 =
      _mm_set1_epi64x(static_cast<int64_t>(0xBF58476D1CE4E5B9ULL));
  const __m128i c3 =
      _mm_set1_epi64x(static_cast<int64_t>(0x94D049BB133111EBULL));
  x = _mm_add_epi64(x, c1);
  x = MulLo64Sse2(_mm_xor_si128(x, _mm_srli_epi64(x, 30)), c2);
  x = MulLo64Sse2(_mm_xor_si128(x, _mm_srli_epi64(x, 27)), c3);
  return _mm_xor_si128(x, _mm_srli_epi64(x, 31));
}

void Mix64BatchSse2(const uint64_t* keys, size_t n, uint64_t* out) {
  size_t k = 0;
  for (; k + 2 <= n; k += 2) {
    __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + k));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + k), Mix64LanesSse2(x));
  }
  for (; k < n; ++k) out[k] = Mix64(keys[k]);
}

void BucketsMixedSse2(const uint64_t* a, const uint64_t* b, size_t d,
                      uint64_t mixed, uint32_t width, uint32_t* out) {
  const __m128i m = _mm_set1_epi64x(static_cast<int64_t>(mixed));
  const __m128i widthv = _mm_set1_epi64x(static_cast<int64_t>(width));
  size_t j = 0;
  for (; j + 2 <= d; j += 2) {
    __m128i av = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + j));
    __m128i bv = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    Store2Lanes(BucketLanesSse2(av, bv, m, widthv), out + j);
  }
  if (j < d) out[j] = ScalarBucket(a[j], b[j], mixed, width);
}

void BucketsRowSse2(uint64_t a, uint64_t b, const uint64_t* mixed, size_t n,
                    uint32_t width, uint32_t* out) {
  const __m128i av = _mm_set1_epi64x(static_cast<int64_t>(a));
  const __m128i bv = _mm_set1_epi64x(static_cast<int64_t>(b));
  const __m128i widthv = _mm_set1_epi64x(static_cast<int64_t>(width));
  size_t k = 0;
  for (; k + 2 <= n; k += 2) {
    __m128i m = _mm_loadu_si128(reinterpret_cast<const __m128i*>(mixed + k));
    Store2Lanes(BucketLanesSse2(av, bv, m, widthv), out + k);
  }
  for (; k < n; ++k) out[k] = ScalarBucket(a, b, mixed[k], width);
}

// --- AVX2 tier (4 lanes; requires the runtime cpuid probe) ----------------

__attribute__((target("avx2"))) inline __m256i CondSubM61Avx2(__m256i x) {
  const __m256i m61 = _mm256_set1_epi64x(static_cast<int64_t>(kM61));
  const __m256i m61m1 = _mm256_set1_epi64x(static_cast<int64_t>(kM61 - 1));
  __m256i over = _mm256_cmpgt_epi64(x, m61m1);
  return _mm256_sub_epi64(x, _mm256_and_si256(over, m61));
}

__attribute__((target("avx2"))) inline __m256i BucketLanesAvx2(
    __m256i a, __m256i b, __m256i m, __m256i widthv) {
  const __m256i mask32 = _mm256_set1_epi64x(0xFFFFFFFFLL);
  const __m256i m61 = _mm256_set1_epi64x(static_cast<int64_t>(kM61));
  __m256i a_hi = _mm256_srli_epi64(a, 32);
  __m256i m_hi = _mm256_srli_epi64(m, 32);
  __m256i ll = _mm256_mul_epu32(a, m);
  __m256i lh = _mm256_mul_epu32(a, m_hi);
  __m256i hl = _mm256_mul_epu32(a_hi, m);
  __m256i hh = _mm256_mul_epu32(a_hi, m_hi);
  __m256i mid = _mm256_add_epi64(_mm256_add_epi64(_mm256_srli_epi64(ll, 32),
                                                  _mm256_and_si256(lh, mask32)),
                                 _mm256_and_si256(hl, mask32));
  __m256i lo = _mm256_or_si256(_mm256_and_si256(ll, mask32),
                               _mm256_slli_epi64(mid, 32));
  __m256i hi = _mm256_add_epi64(
      _mm256_add_epi64(hh, _mm256_srli_epi64(lh, 32)),
      _mm256_add_epi64(_mm256_srli_epi64(hl, 32), _mm256_srli_epi64(mid, 32)));
  __m256i x0 = _mm256_and_si256(lo, m61);
  __m256i x1 = _mm256_and_si256(
      _mm256_or_si256(_mm256_srli_epi64(lo, 61), _mm256_slli_epi64(hi, 3)),
      m61);
  __m256i x2 = _mm256_srli_epi64(hi, 58);
  __m256i s = _mm256_add_epi64(_mm256_add_epi64(x0, x1), x2);
  __m256i t =
      _mm256_add_epi64(_mm256_and_si256(s, m61), _mm256_srli_epi64(s, 61));
  t = CondSubM61Avx2(t);
  __m256i v = CondSubM61Avx2(_mm256_add_epi64(t, b));
  return _mm256_srli_epi64(_mm256_mul_epu32(_mm256_srli_epi64(v, 29), widthv),
                           32);
}

// Stores the four lane results (each < 2^32) as consecutive uint32.
__attribute__((target("avx2"))) inline void Store4Lanes(__m256i buckets,
                                                        uint32_t* out) {
  const __m256i idx = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  __m256i packed = _mm256_permutevar8x32_epi32(buckets, idx);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out),
                   _mm256_castsi256_si128(packed));
}

__attribute__((target("avx2"))) inline __m256i MulLo64Avx2(__m256i x,
                                                           __m256i c) {
  __m256i lo = _mm256_mul_epu32(x, c);
  __m256i h1 = _mm256_mul_epu32(_mm256_srli_epi64(x, 32), c);
  __m256i h2 = _mm256_mul_epu32(x, _mm256_srli_epi64(c, 32));
  return _mm256_add_epi64(lo,
                          _mm256_slli_epi64(_mm256_add_epi64(h1, h2), 32));
}

__attribute__((target("avx2"))) inline __m256i Mix64LanesAvx2(__m256i x) {
  const __m256i c1 =
      _mm256_set1_epi64x(static_cast<int64_t>(0x9E3779B97F4A7C15ULL));
  const __m256i c2 =
      _mm256_set1_epi64x(static_cast<int64_t>(0xBF58476D1CE4E5B9ULL));
  const __m256i c3 =
      _mm256_set1_epi64x(static_cast<int64_t>(0x94D049BB133111EBULL));
  x = _mm256_add_epi64(x, c1);
  x = MulLo64Avx2(_mm256_xor_si256(x, _mm256_srli_epi64(x, 30)), c2);
  x = MulLo64Avx2(_mm256_xor_si256(x, _mm256_srli_epi64(x, 27)), c3);
  return _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
}

__attribute__((target("avx2"))) void Mix64BatchAvx2(const uint64_t* keys,
                                                    size_t n, uint64_t* out) {
  size_t k = 0;
  // Two vectors in flight per iteration: one Mix64 chain is serial
  // (add → mul → mul → xor, each mul itself a 3-multiply emulation), so a
  // single-vector loop leaves the multiply ports half idle.
  for (; k + 8 <= n; k += 8) {
    __m256i x0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + k));
    __m256i x1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + k + 4));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + k),
                        Mix64LanesAvx2(x0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + k + 4),
                        Mix64LanesAvx2(x1));
  }
  for (; k + 4 <= n; k += 4) {
    __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + k));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + k),
                        Mix64LanesAvx2(x));
  }
  for (; k < n; ++k) out[k] = Mix64(keys[k]);
}

__attribute__((target("avx2"))) void BucketsMixedAvx2(
    const uint64_t* a, const uint64_t* b, size_t d, uint64_t mixed,
    uint32_t width, uint32_t* out) {
  const __m256i m = _mm256_set1_epi64x(static_cast<int64_t>(mixed));
  const __m256i widthv = _mm256_set1_epi64x(static_cast<int64_t>(width));
  size_t j = 0;
  for (; j + 4 <= d; j += 4) {
    __m256i av =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + j));
    __m256i bv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    Store4Lanes(BucketLanesAvx2(av, bv, m, widthv), out + j);
  }
  if (j < d) {
    // Tail rows: the coefficient arrays are padded (HashFamily::kCoeffPad)
    // so the full-vector loads stay in bounds; only d - j lanes are kept.
    __m256i av =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + j));
    __m256i bv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    uint32_t tail[4];
    Store4Lanes(BucketLanesAvx2(av, bv, m, widthv), tail);
    for (size_t x = 0; j < d; ++j, ++x) out[j] = tail[x];
  }
}

__attribute__((target("avx2"))) void BucketsRowAvx2(uint64_t a, uint64_t b,
                                                    const uint64_t* mixed,
                                                    size_t n, uint32_t width,
                                                    uint32_t* out) {
  const __m256i av = _mm256_set1_epi64x(static_cast<int64_t>(a));
  const __m256i bv = _mm256_set1_epi64x(static_cast<int64_t>(b));
  const __m256i widthv = _mm256_set1_epi64x(static_cast<int64_t>(width));
  size_t k = 0;
  // Two independent bucket chains per iteration for instruction-level
  // parallelism (same rationale as Mix64BatchAvx2).
  for (; k + 8 <= n; k += 8) {
    __m256i m0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mixed + k));
    __m256i m1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mixed + k + 4));
    Store4Lanes(BucketLanesAvx2(av, bv, m0, widthv), out + k);
    Store4Lanes(BucketLanesAvx2(av, bv, m1, widthv), out + k + 4);
  }
  for (; k + 4 <= n; k += 4) {
    __m256i m =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mixed + k));
    Store4Lanes(BucketLanesAvx2(av, bv, m, widthv), out + k);
  }
  for (; k < n; ++k) out[k] = ScalarBucket(a, b, mixed[k], width);
}

#endif  // ECM_SIMD_X64

constexpr HashKernels kScalarKernels = {Mix64BatchScalar, BucketsMixedScalar,
                                        BucketsRowScalar};
#if ECM_SIMD_X64
constexpr HashKernels kSse2Kernels = {Mix64BatchSse2, BucketsMixedSse2,
                                      BucketsRowSse2};
constexpr HashKernels kAvx2Kernels = {Mix64BatchAvx2, BucketsMixedAvx2,
                                      BucketsRowAvx2};
#endif

}  // namespace

const HashKernels& HashKernelsFor(SimdLevel level) {
#if ECM_SIMD_X64
  switch (level) {
    case SimdLevel::kAVX2:
      return kAvx2Kernels;
    case SimdLevel::kSSE2:
      return kSse2Kernels;
    case SimdLevel::kScalar:
      return kScalarKernels;
  }
#else
  (void)level;
#endif
  return kScalarKernels;
}

}  // namespace ecm::internal
