// Hand-vectorized hash kernels behind the runtime SIMD dispatch.
//
// All three kernels implement exact 61-bit Carter–Wegman arithmetic
// (util/hash.h) with integer SIMD, so every tier is bit-identical to the
// scalar reference — the property the sketch depends on, since bucket
// placement is part of a sketch's identity. Only the kFastRange reduction
// is vectorized; HashFamily falls back to the scalar loop for the legacy
// kModulo reduction (a per-lane 64-bit divide has no SIMD form worth
// carrying).
//
// The kernels come as function-pointer tables, one per SimdLevel, all
// compiled into the portable build via per-function target attributes —
// stock Release binaries carry the AVX2 code and select it at run time.

#ifndef ECM_UTIL_SIMD_KERNELS_H_
#define ECM_UTIL_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "src/util/simd.h"

namespace ecm::internal {

/// The three hash hot kernels, as one dispatch table.
struct HashKernels {
  /// out[k] = Mix64(keys[k]) for k in [0, n) — the shared per-key mixing
  /// pass of every batched sketch query.
  void (*mix64_batch)(const uint64_t* keys, size_t n, uint64_t* out);

  /// Row-parallel one-key walk: out[j] = FastRange(RawMixed(a[j], b[j],
  /// mixed), width) for j in [0, d). `a`/`b` are the hash family's SoA
  /// coefficient arrays, padded so full-vector loads at any j < d are in
  /// bounds (HashFamily::kCoeffPad); exactly d entries of `out` are
  /// written.
  void (*buckets_mixed)(const uint64_t* a, const uint64_t* b, size_t d,
                        uint64_t mixed, uint32_t width, uint32_t* out);

  /// Key-parallel one-row sweep: out[k] = FastRange(RawMixed(a, b,
  /// mixed[k]), width) for k in [0, n) — the fill kernel of the row-major
  /// batched point query.
  void (*buckets_row)(uint64_t a, uint64_t b, const uint64_t* mixed,
                      size_t n, uint32_t width, uint32_t* out);
};

/// The kernel table for one tier (callable only if SimdLevelSupported).
const HashKernels& HashKernelsFor(SimdLevel level);

/// The kernel table dispatch resolves to right now.
inline const HashKernels& ActiveHashKernels() {
  return HashKernelsFor(ActiveSimdLevel());
}

}  // namespace ecm::internal

#endif  // ECM_UTIL_SIMD_KERNELS_H_
