// Wall-clock stopwatch used by the benchmark harnesses.

#ifndef ECM_UTIL_TIMER_H_
#define ECM_UTIL_TIMER_H_

#include <chrono>

namespace ecm {

/// Monotonic stopwatch. Starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ecm

#endif  // ECM_UTIL_TIMER_H_
