#include "src/util/bytes.h"

namespace ecm {

size_t VarintLength(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

}  // namespace ecm
