// Hash families used by the sketches.
//
// Count-Min rows need pairwise-independent (2-universal) hash functions; we
// use the classic Carter–Wegman construction over the Mersenne prime 2^61-1,
// which is exact for 64-bit keys after a 64-bit mixing step. Randomized
// waves need a geometric level assignment, derived from a strong 64-bit
// mixer (SplitMix64 finalizer).

#ifndef ECM_UTIL_HASH_H_
#define ECM_UTIL_HASH_H_

#include <cstdint>
#include <vector>

namespace ecm {

/// 64-bit finalizer (SplitMix64 / Murmur3-style avalanche). Bijective.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// One member of a 2-universal family h(x) = ((a*x + b) mod p) mod w,
/// p = 2^61 - 1. `a` is drawn from [1, p), `b` from [0, p).
///
/// The input key is first passed through Mix64 so that adversarially
/// structured keys (sequential IPs, aligned pointers) still spread.
class PairwiseHash {
 public:
  PairwiseHash() : a_(1), b_(0) {}

  /// Constructs a member of the family from two 64-bit seeds.
  PairwiseHash(uint64_t seed_a, uint64_t seed_b);

  /// Hashes `key` into [0, width).
  uint32_t Bucket(uint64_t key, uint32_t width) const {
    return static_cast<uint32_t>(Raw(key) % width);
  }

  /// The full 61-bit hash value before reduction mod width.
  uint64_t Raw(uint64_t key) const {
    uint64_t v = MulModMersenne61(a_, Mix64(key)) + b_;
    return v >= kMersenne61 ? v - kMersenne61 : v;
  }

  uint64_t a() const { return a_; }
  uint64_t b() const { return b_; }

  static constexpr uint64_t kMersenne61 = (1ULL << 61) - 1;

  /// (x * y) mod (2^61 - 1) without overflow, using 128-bit products.
  static uint64_t MulModMersenne61(uint64_t x, uint64_t y);

 private:
  uint64_t a_;  // in [1, p)
  uint64_t b_;  // in [0, p)
};

/// A family of `d` independent PairwiseHash functions, one per Count-Min
/// row, all derived deterministically from a single seed. Two families
/// built from the same (seed, d) are identical — the property that makes
/// sketches mergeable across machines.
class HashFamily {
 public:
  HashFamily() = default;

  /// Creates `d` hash functions seeded from `seed`.
  HashFamily(uint64_t seed, int d);

  /// Hashes key with function `row` into [0, width).
  uint32_t Bucket(int row, uint64_t key, uint32_t width) const {
    return funcs_[row].Bucket(key, width);
  }

  int depth() const { return static_cast<int>(funcs_.size()); }
  uint64_t seed() const { return seed_; }

  /// True iff the two families were built from the same seed and depth
  /// (and therefore produce identical mappings).
  bool SameAs(const HashFamily& other) const {
    return seed_ == other.seed_ && funcs_.size() == other.funcs_.size();
  }

 private:
  uint64_t seed_ = 0;
  std::vector<PairwiseHash> funcs_;
};

}  // namespace ecm

#endif  // ECM_UTIL_HASH_H_
