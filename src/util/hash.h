// Hash families used by the sketches.
//
// Count-Min rows need pairwise-independent (2-universal) hash functions; we
// use the classic Carter–Wegman construction over the Mersenne prime 2^61-1,
// which is exact for 64-bit keys after a 64-bit mixing step. Randomized
// waves need a geometric level assignment, derived from a strong 64-bit
// mixer (SplitMix64 finalizer).
//
// Update-path layout: a sketch Add/PointQuery needs all d row buckets of
// one key. BucketsMixed computes the Mix64 step once and derives every
// row's bucket from the shared mixed word, and the bucket reduction uses
// Lemire's multiply-shift fast range instead of a hardware divide. The
// reduction is versioned (HashReduction) because changing it re-maps every
// key: two sketches agree on bucket placement only if they share seed,
// depth, AND reduction, and serialized sketches record the reduction so
// stale encodings are rejected instead of silently misread.

#ifndef ECM_UTIL_HASH_H_
#define ECM_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ecm {

/// 64-bit finalizer (SplitMix64 / Murmur3-style avalanche). Bijective.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// How a 61-bit row hash is reduced to a bucket index in [0, width).
/// Part of a sketch's identity: sketches (and their serialized forms) are
/// only compatible when the reduction matches.
enum class HashReduction : uint8_t {
  kModulo = 1,     ///< legacy `raw % width` (hardware divide per row)
  kFastRange = 2,  ///< Lemire multiply-shift on the hash's high 32 bits
};

/// Largest Count-Min depth the one-pass update path supports (also the
/// cap enforced by the wire format). d = ceil(ln(1/δ)) reaches 64 only for
/// δ < 2e-28, far beyond any practical failure budget.
inline constexpr int kMaxSketchDepth = 64;

/// One member of a 2-universal family h(x) = ((a*x + b) mod p) mod w,
/// p = 2^61 - 1. `a` is drawn from [1, p), `b` from [0, p).
///
/// The input key is first passed through Mix64 so that adversarially
/// structured keys (sequential IPs, aligned pointers) still spread.
class PairwiseHash {
 public:
  PairwiseHash() : a_(1), b_(0) {}

  /// Constructs a member of the family from two 64-bit seeds.
  PairwiseHash(uint64_t seed_a, uint64_t seed_b);

  /// Hashes `key` into [0, width).
  uint32_t Bucket(uint64_t key, uint32_t width,
                  HashReduction reduction = HashReduction::kFastRange) const {
    return Reduce(Raw(key), width, reduction);
  }

  /// The full 61-bit hash value before reduction to a bucket.
  uint64_t Raw(uint64_t key) const { return RawMixed(Mix64(key)); }

  /// Same as Raw, but for a key already passed through Mix64 — the shared
  /// per-Add mixing step of the one-pass sketch update path.
  uint64_t RawMixed(uint64_t mixed) const {
    uint64_t v = MulModMersenne61(a_, mixed) + b_;
    return v >= kMersenne61 ? v - kMersenne61 : v;
  }

  /// Reduces a 61-bit hash value to [0, width).
  static uint32_t Reduce(uint64_t raw, uint32_t width,
                         HashReduction reduction) {
    if (reduction == HashReduction::kModulo) {
      return static_cast<uint32_t>(raw % width);
    }
    // Lemire fast range over the hash's high 32 bits: raw < 2^61, so
    // raw >> 29 is a uniform 32-bit word and the product fits 64 bits.
    return static_cast<uint32_t>(((raw >> 29) * width) >> 32);
  }

  uint64_t a() const { return a_; }
  uint64_t b() const { return b_; }

  static constexpr uint64_t kMersenne61 = (1ULL << 61) - 1;

  /// (x * y) mod (2^61 - 1) without overflow, using 128-bit products.
  static uint64_t MulModMersenne61(uint64_t x, uint64_t y);

 private:
  uint64_t a_;  // in [1, p)
  uint64_t b_;  // in [0, p)
};

/// A family of `d` independent PairwiseHash functions, one per Count-Min
/// row, all derived deterministically from a single seed. Two families
/// built from the same (seed, d, reduction) are identical — the property
/// that makes sketches mergeable across machines.
class HashFamily {
 public:
  HashFamily() = default;

  /// Creates `d` hash functions seeded from `seed`.
  explicit HashFamily(uint64_t seed, int d,
                      HashReduction reduction = HashReduction::kFastRange);

  /// Hashes key with function `row` into [0, width).
  uint32_t Bucket(int row, uint64_t key, uint32_t width) const {
    return funcs_[row].Bucket(key, width, reduction_);
  }

  /// One-pass bucket computation: mixes `key` once and fills
  /// `out[0..depth)` with every row's bucket in [0, width). `out` must
  /// have room for depth() entries (kMaxSketchDepth always suffices).
  void BucketsMixed(uint64_t key, uint32_t width, uint32_t* out) const {
    uint64_t mixed = Mix64(key);
    const HashReduction reduction = reduction_;
    const PairwiseHash* funcs = funcs_.data();
    const size_t d = funcs_.size();
    for (size_t row = 0; row < d; ++row) {
      out[row] = PairwiseHash::Reduce(funcs[row].RawMixed(mixed), width,
                                      reduction);
    }
  }

  int depth() const { return static_cast<int>(funcs_.size()); }
  uint64_t seed() const { return seed_; }
  HashReduction reduction() const { return reduction_; }

  /// True iff the two families were built from the same seed, depth and
  /// reduction (and therefore produce identical mappings).
  bool SameAs(const HashFamily& other) const {
    return seed_ == other.seed_ && funcs_.size() == other.funcs_.size() &&
           reduction_ == other.reduction_;
  }

 private:
  uint64_t seed_ = 0;
  HashReduction reduction_ = HashReduction::kFastRange;
  std::vector<PairwiseHash> funcs_;
};

}  // namespace ecm

#endif  // ECM_UTIL_HASH_H_
