// Hash families used by the sketches.
//
// Count-Min rows need pairwise-independent (2-universal) hash functions; we
// use the classic Carter–Wegman construction over the Mersenne prime 2^61-1,
// which is exact for 64-bit keys after a 64-bit mixing step. Randomized
// waves need a geometric level assignment, derived from a strong 64-bit
// mixer (SplitMix64 finalizer).
//
// Update-path layout: a sketch Add/PointQuery needs all d row buckets of
// one key. BucketsMixed computes the Mix64 step once and derives every
// row's bucket from the shared mixed word, and the bucket reduction uses
// Lemire's multiply-shift fast range instead of a hardware divide. The
// reduction is versioned (HashReduction) because changing it re-maps every
// key: two sketches agree on bucket placement only if they share seed,
// depth, AND reduction, and serialized sketches record the reduction so
// stale encodings are rejected instead of silently misread.

#ifndef ECM_UTIL_HASH_H_
#define ECM_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/util/simd_kernels.h"

namespace ecm {

/// 64-bit finalizer (SplitMix64 / Murmur3-style avalanche). Bijective.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// How a 61-bit row hash is reduced to a bucket index in [0, width).
/// Part of a sketch's identity: sketches (and their serialized forms) are
/// only compatible when the reduction matches.
enum class HashReduction : uint8_t {
  kModulo = 1,     ///< legacy `raw % width` (hardware divide per row)
  kFastRange = 2,  ///< Lemire multiply-shift on the hash's high 32 bits
};

/// Largest Count-Min depth the one-pass update path supports (also the
/// cap enforced by the wire format). d = ceil(ln(1/δ)) reaches 64 only for
/// δ < 2e-28, far beyond any practical failure budget.
inline constexpr int kMaxSketchDepth = 64;

/// One member of a 2-universal family h(x) = ((a*x + b) mod p) mod w,
/// p = 2^61 - 1. `a` is drawn from [1, p), `b` from [0, p).
///
/// The input key is first passed through Mix64 so that adversarially
/// structured keys (sequential IPs, aligned pointers) still spread.
class PairwiseHash {
 public:
  PairwiseHash() : a_(1), b_(0) {}

  /// Constructs a member of the family from two 64-bit seeds.
  PairwiseHash(uint64_t seed_a, uint64_t seed_b);

  /// Hashes `key` into [0, width).
  uint32_t Bucket(uint64_t key, uint32_t width,
                  HashReduction reduction = HashReduction::kFastRange) const {
    return Reduce(Raw(key), width, reduction);
  }

  /// The full 61-bit hash value before reduction to a bucket.
  uint64_t Raw(uint64_t key) const { return RawMixed(Mix64(key)); }

  /// Same as Raw, but for a key already passed through Mix64 — the shared
  /// per-Add mixing step of the one-pass sketch update path.
  uint64_t RawMixed(uint64_t mixed) const {
    uint64_t v = MulModMersenne61(a_, mixed) + b_;
    return v >= kMersenne61 ? v - kMersenne61 : v;
  }

  /// Reduces a 61-bit hash value to [0, width).
  static uint32_t Reduce(uint64_t raw, uint32_t width,
                         HashReduction reduction) {
    if (reduction == HashReduction::kModulo) {
      return static_cast<uint32_t>(raw % width);
    }
    // Lemire fast range over the hash's high 32 bits: raw < 2^61, so
    // raw >> 29 is a uniform 32-bit word and the product fits 64 bits.
    return static_cast<uint32_t>(((raw >> 29) * width) >> 32);
  }

  uint64_t a() const { return a_; }
  uint64_t b() const { return b_; }

  static constexpr uint64_t kMersenne61 = (1ULL << 61) - 1;

  /// (x * y) mod (2^61 - 1) without overflow, using 128-bit products.
  static uint64_t MulModMersenne61(uint64_t x, uint64_t y);

 private:
  uint64_t a_;  // in [1, p)
  uint64_t b_;  // in [0, p)
};

/// A family of `d` independent PairwiseHash functions, one per Count-Min
/// row, all derived deterministically from a single seed. Two families
/// built from the same (seed, d, reduction) are identical — the property
/// that makes sketches mergeable across machines.
class HashFamily {
 public:
  HashFamily() = default;

  /// Creates `d` hash functions seeded from `seed`.
  explicit HashFamily(uint64_t seed, int d,
                      HashReduction reduction = HashReduction::kFastRange);

  /// Hashes key with function `row` into [0, width).
  uint32_t Bucket(int row, uint64_t key, uint32_t width) const {
    return funcs_[row].Bucket(key, width, reduction_);
  }

  /// One-pass bucket computation: mixes `key` once and fills
  /// `out[0..depth)` with every row's bucket in [0, width). `out` must
  /// have room for depth() entries (kMaxSketchDepth always suffices).
  /// kFastRange families go through the SIMD-dispatched row-parallel
  /// kernel; kModulo keeps the scalar loop.
  void BucketsMixed(uint64_t key, uint32_t width, uint32_t* out) const {
    BucketsForMixed(Mix64(key), width, out);
  }

  /// BucketsMixed for a key that is already Mix64-ed — the shape batched
  /// callers use after one Mix64Batch pass over all keys.
  void BucketsForMixed(uint64_t mixed, uint32_t width, uint32_t* out) const {
    const size_t d = funcs_.size();
    if (reduction_ == HashReduction::kFastRange) {
      internal::ActiveHashKernels().buckets_mixed(coeff_a_.data(),
                                                  coeff_b_.data(), d, mixed,
                                                  width, out);
      return;
    }
    for (size_t row = 0; row < d; ++row) {
      out[row] = PairwiseHash::Reduce(funcs_[row].RawMixed(mixed), width,
                                      reduction_);
    }
  }

  /// out[k] = Mix64(keys[k]) for k in [0, n), SIMD-dispatched — the shared
  /// mixing pass in front of BucketsForMixed / BucketsRowMajor.
  static void Mix64Batch(const uint64_t* keys, size_t n, uint64_t* out) {
    internal::ActiveHashKernels().mix64_batch(keys, n, out);
  }

  /// Key-parallel batch: fills the row-major matrix out[row * n + k] with
  /// the bucket of pre-mixed key `mixed[k]` in row `row`. Row-major so
  /// each row's sweep (and the key-parallel kernel filling it) streams one
  /// contiguous span. `out` must hold depth() * n entries.
  void BucketsRowMajor(const uint64_t* mixed, size_t n, uint32_t width,
                       uint32_t* out) const;

  int depth() const { return static_cast<int>(funcs_.size()); }
  uint64_t seed() const { return seed_; }
  HashReduction reduction() const { return reduction_; }

  /// True iff the two families were built from the same seed, depth and
  /// reduction (and therefore produce identical mappings).
  bool SameAs(const HashFamily& other) const {
    return seed_ == other.seed_ && funcs_.size() == other.funcs_.size() &&
           reduction_ == other.reduction_;
  }

  /// The SoA coefficient arrays are padded to a multiple of this many
  /// entries so the vector kernels may always load a full vector at any
  /// in-range row (lanes past depth() are computed and discarded).
  static constexpr size_t kCoeffPad = 8;

 private:
  uint64_t seed_ = 0;
  HashReduction reduction_ = HashReduction::kFastRange;
  std::vector<PairwiseHash> funcs_;
  // funcs_[i].a()/b() duplicated as padded structure-of-arrays so the
  // row-parallel kernel loads coefficients contiguously.
  std::vector<uint64_t> coeff_a_;
  std::vector<uint64_t> coeff_b_;
};

}  // namespace ecm

#endif  // ECM_UTIL_HASH_H_
