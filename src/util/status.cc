#include "src/util/status.h"

namespace ecm {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kIncompatible:
      return "Incompatible";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kStaleBase:
      return "Stale base";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace ecm
