// Continuous-query engine over a single high-dimensional stream: the
// "local site" runtime of the paper's monitoring scenarios (§1, §6).
//
// A StreamEngine owns an ECM-sketch (and, when a key-domain is declared,
// a dyadic stack) and evaluates registered standing queries as the stream
// flows:
//
//  * point-threshold   — fire when a key's sliding-window count crosses T
//                        (the §1 DDoS trigger, evaluated per arrival of
//                        the watched key, cheap: one point query);
//  * self-join-threshold — fire when windowed F₂ crosses T (checked every
//                        `evaluate_every` arrivals; F₂ costs O(w·d));
//  * heavy-hitters     — report keys above φ·‖a_r‖₁ every `period` ticks
//                        (needs the dyadic stack).
//
// Alerts are edge-triggered: a callback fires when the estimate's side of
// the threshold changes, not on every arrival while it stays crossed.
// All callbacks run synchronously inside Ingest() — keep them light.

#ifndef ECM_ENGINE_CONTINUOUS_H_
#define ECM_ENGINE_CONTINUOUS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/core/dyadic.h"
#include "src/core/ecm_sketch.h"
#include "src/dist/site.h"
#include "src/engine/keyed_store.h"
#include "src/stream/event.h"

namespace ecm {

/// Identifier of a registered standing query.
using QueryId = uint64_t;

/// Alert delivered by threshold queries.
struct ThresholdAlert {
  QueryId query = 0;
  Timestamp ts = 0;      ///< stream time of the triggering arrival
  double estimate = 0.0; ///< the estimate that crossed
  bool above = false;    ///< new side of the threshold
};

/// Periodic heavy-hitter report.
struct HeavyHitterReport {
  QueryId query = 0;
  Timestamp ts = 0;
  double window_l1 = 0.0;
  std::vector<HeavyHitter> hitters;
};

/// Single-stream continuous-query runtime.
class StreamEngine {
 public:
  struct Options {
    EcmConfig sketch;        ///< configuration of the underlying sketch
    int domain_bits = 0;     ///< > 0 enables the dyadic stack (heavy hitters)
    uint64_t evaluate_every = 64;  ///< cadence of self-join checks (arrivals)
  };

  explicit StreamEngine(const Options& options);

  /// Registers a point-threshold query. `callback` fires on each crossing
  /// (both directions).
  QueryId WatchPoint(uint64_t key, uint64_t range, double threshold,
                     std::function<void(const ThresholdAlert&)> callback);

  /// Registers a self-join (F₂) threshold query.
  QueryId WatchSelfJoin(uint64_t range, double threshold,
                        std::function<void(const ThresholdAlert&)> callback);

  /// Registers a periodic heavy-hitter report (every `period` ticks of
  /// stream time). Requires domain_bits > 0 at construction.
  Result<QueryId> WatchHeavyHitters(
      double phi_ratio, uint64_t range, uint64_t period,
      std::function<void(const HeavyHitterReport&)> callback);

  /// Removes a standing query. Returns false if the id is unknown.
  bool Unwatch(QueryId id);

  /// Feeds one arrival and evaluates the affected standing queries.
  void Ingest(uint64_t key, Timestamp ts, uint64_t count = 1);

  /// Batched ingest of a site-local, timestamp-ordered event slice —
  /// the form ParallelIngest workers and trace replays feed.
  void IngestBatch(const StreamEvent* events, size_t n);

  /// Attaches a keyed counter store guarded by this engine's sketch:
  /// every ingested arrival is co-fed to the store after the sketch, so
  /// hot keys get exact sliding-window counters while the sketch covers
  /// the rest of the universe. Replaces any previously enabled store.
  KeyedCounterStore* EnableKeyedStore(const KeyedStoreConfig& config);

  const KeyedCounterStore* keyed_store() const { return keyed_store_.get(); }
  KeyedCounterStore* keyed_store() { return keyed_store_.get(); }

  /// Ad-hoc queries pass through to the sketch.
  double PointQuery(uint64_t key, uint64_t range) const {
    return site_.sketch().PointQuery(key, range);
  }

  /// Point query preferring the exact per-key counter when the key is
  /// resident in the keyed store, falling back to the sketch otherwise.
  /// `exact_out` (optional) reports which path answered.
  double PointQueryExact(uint64_t key, uint64_t range,
                         bool* exact_out = nullptr) const {
    if (keyed_store_) {
      double est = 0.0;
      if (keyed_store_->TryPointQuery(key, keyed_store_->clock(), range,
                                      &est)) {
        if (exact_out) *exact_out = true;
        return est;
      }
    }
    if (exact_out) *exact_out = false;
    return site_.sketch().PointQuery(key, range);
  }
  double SelfJoin(uint64_t range) const {
    return site_.sketch().SelfJoin(range);
  }

  const EcmSketch<ExponentialHistogram>& sketch() const {
    return site_.sketch();
  }
  const DyadicEcm<ExponentialHistogram>* dyadic() const {
    return site_.dyadic();
  }

  /// Counters for tests/telemetry.
  struct Stats {
    uint64_t arrivals = 0;
    uint64_t point_evaluations = 0;
    uint64_t selfjoin_evaluations = 0;
    uint64_t heavy_hitter_reports = 0;
    uint64_t alerts = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Total memory of the engine's synopses.
  size_t MemoryBytes() const;

 private:
  struct PointWatch {
    QueryId id;
    uint64_t key;
    uint64_t range;
    double threshold;
    bool above = false;
    std::function<void(const ThresholdAlert&)> callback;
  };
  struct SelfJoinWatch {
    QueryId id;
    uint64_t range;
    double threshold;
    bool above = false;
    std::function<void(const ThresholdAlert&)> callback;
  };
  struct HitterWatch {
    QueryId id;
    double phi_ratio;
    uint64_t range;
    uint64_t period;
    Timestamp next_due = 0;
    std::function<void(const HeavyHitterReport&)> callback;
  };

  void EvaluatePoint(PointWatch* watch, Timestamp ts);
  void EvaluateSelfJoins(Timestamp ts);
  void EvaluateHitters(Timestamp ts);

  Options options_;
  // The engine IS the paper's "local site": its synopses are one runtime
  // Site (sketch + optional dyadic stack), the same observation-point
  // abstraction the distributed substrates are built on.
  Site<ExponentialHistogram> site_;
  // Optional exact per-key counter store, admission-guarded by site_'s
  // sketch (null until EnableKeyedStore).
  std::unique_ptr<KeyedCounterStore> keyed_store_;
  std::vector<PointWatch> point_watches_;
  std::vector<SelfJoinWatch> selfjoin_watches_;
  std::vector<HitterWatch> hitter_watches_;
  QueryId next_id_ = 1;
  uint64_t since_eval_ = 0;
  Stats stats_;
};

}  // namespace ecm

#endif  // ECM_ENGINE_CONTINUOUS_H_
