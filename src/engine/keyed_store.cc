#include "src/engine/keyed_store.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/util/hash.h"

namespace ecm {

// ---------------------------------------------------------------------------
// KeyTable
// ---------------------------------------------------------------------------

KeyTable::KeyTable(KeyResolver resolver, const void* resolver_ctx,
                   size_t initial_capacity)
    : resolver_(resolver), resolver_ctx_(resolver_ctx) {
  size_t cap = 64;
  while (cap < initial_capacity) cap <<= 1;
  slots_.assign(cap, PackSlot(0, kNotFound));
  mask_ = cap - 1;
}

uint32_t KeyTable::FindIn(const std::vector<uint64_t>& slots, uint64_t mask,
                          uint32_t tag, uint64_t key) const {
  size_t slot = tag & mask;
  size_t dist = 0;
  for (;;) {
    const uint64_t s = slots[slot];
    if (SlotVal(s) == kNotFound) return kNotFound;
    // Tags can collide across distinct keys, so a tag hit is only a
    // candidate; the full key check goes through the resolver. A
    // mismatch keeps probing — the true entry may sit further along.
    if (SlotTag(s) == tag && resolver_(resolver_ctx_, SlotVal(s)) == key) {
      return SlotVal(s);
    }
    // Robin-hood bound: entries are ordered by probe distance, so once a
    // resident entry sits closer to home than our probe has walked, the
    // key cannot be further along.
    if (ProbeDistance(SlotTag(s), slot, mask) < dist) return kNotFound;
    slot = (slot + 1) & mask;
    ++dist;
  }
}

uint32_t KeyTable::Find(uint64_t key) const {
  const uint32_t tag = static_cast<uint32_t>(Mix64(key));
  uint32_t v = FindIn(slots_, mask_, tag, key);
  if (v != kNotFound || old_slots_.empty()) return v;
  return FindIn(old_slots_, old_mask_, tag, key);
}

void KeyTable::InsertInto(std::vector<uint64_t>& slots, uint64_t mask,
                          uint32_t tag, uint32_t value) {
  size_t slot = tag & mask;
  size_t dist = 0;
  uint64_t cur = PackSlot(tag, value);
  for (;;) {
    if (SlotVal(slots[slot]) == kNotFound) {
      slots[slot] = cur;
      return;
    }
    const size_t rdist = ProbeDistance(SlotTag(slots[slot]), slot, mask);
    if (rdist < dist) {
      std::swap(cur, slots[slot]);
      dist = rdist;
    }
    slot = (slot + 1) & mask;
    ++dist;
  }
}

bool KeyTable::EraseFrom(std::vector<uint64_t>& slots, uint64_t mask,
                         uint32_t tag, uint64_t key) {
  size_t slot = tag & mask;
  size_t dist = 0;
  for (;;) {
    const uint64_t s = slots[slot];
    if (SlotVal(s) == kNotFound) return false;
    if (SlotTag(s) == tag && resolver_(resolver_ctx_, SlotVal(s)) == key) {
      break;
    }
    if (ProbeDistance(SlotTag(s), slot, mask) < dist) return false;
    slot = (slot + 1) & mask;
    ++dist;
  }
  // Backward-shift deletion: pull the following displaced run one slot
  // back; no tombstones, so probe sequences stay short forever.
  for (;;) {
    const size_t nxt = (slot + 1) & mask;
    if (SlotVal(slots[nxt]) == kNotFound ||
        ProbeDistance(SlotTag(slots[nxt]), nxt, mask) == 0) {
      slots[slot] = PackSlot(0, kNotFound);
      return true;
    }
    slots[slot] = slots[nxt];
    slot = nxt;
  }
}

void KeyTable::MaybeStartRehash() {
  const size_t primary_live = size_ - old_live_;
  if (RehashInProgress()) {
    // The drain normally outpaces inserts 16:1; if a pathological burst
    // still fills the primary, finish the migration rather than overfill.
    if (primary_live * 10 >= slots_.size() * 8) {
      while (RehashInProgress()) DrainStep();
    }
    return;
  }
  if (primary_live * 10 < slots_.size() * 7) return;
  old_slots_ = std::move(slots_);
  old_mask_ = mask_;
  old_live_ = primary_live;
  drain_pos_ = 0;
  const size_t cap = (old_mask_ + 1) * 2;
  slots_.assign(cap, PackSlot(0, kNotFound));
  mask_ = cap - 1;
}

void KeyTable::DrainStep() {
  if (!RehashInProgress()) return;
  uint32_t moved = 0;
  uint32_t scanned = 0;
  while (old_live_ > 0 && moved < kRehashStep && scanned < 4 * kRehashStep) {
    const uint64_t s = old_slots_[drain_pos_];
    if (SlotVal(s) != kNotFound) {
      InsertInto(slots_, mask_, SlotTag(s), SlotVal(s));
      old_slots_[drain_pos_] = PackSlot(0, kNotFound);
      --old_live_;
      ++moved;
      ++rehash_steps_;
    }
    ++drain_pos_;
    ++scanned;
  }
  if (old_live_ == 0) {
    old_slots_ = std::vector<uint64_t>();
    old_mask_ = 0;
    drain_pos_ = 0;
  }
}

void KeyTable::Insert(uint64_t key, uint32_t value) {
  assert(value != kNotFound);
  MaybeStartRehash();
  DrainStep();
  InsertInto(slots_, mask_, static_cast<uint32_t>(Mix64(key)), value);
  ++size_;
}

bool KeyTable::Erase(uint64_t key) {
  DrainStep();
  const uint32_t tag = static_cast<uint32_t>(Mix64(key));
  if (EraseFrom(slots_, mask_, tag, key)) {
    --size_;
    return true;
  }
  if (!old_slots_.empty() && EraseFrom(old_slots_, old_mask_, tag, key)) {
    --size_;
    --old_live_;
    return true;
  }
  return false;
}

size_t KeyTable::MemoryBytes() const {
  return sizeof(*this) + slots_.capacity() * sizeof(uint64_t) +
         old_slots_.capacity() * sizeof(uint64_t);
}

// ---------------------------------------------------------------------------
// ExpiryWheel
// ---------------------------------------------------------------------------

namespace {

inline bool TestBit(const uint64_t* words, uint32_t bit) {
  return (words[bit >> 6] >> (bit & 63)) & 1;
}
inline void SetBit(uint64_t* words, uint32_t bit) {
  words[bit >> 6] |= 1ULL << (bit & 63);
}
inline void ClearBit(uint64_t* words, uint32_t bit) {
  words[bit >> 6] &= ~(1ULL << (bit & 63));
}

/// First set bit with index strictly greater than `pos`, or -1.
inline int FirstSetAbove(const uint64_t* words, uint32_t pos) {
  if (pos >= 255) return -1;
  uint32_t w = (pos + 1) >> 6;
  const uint32_t off = (pos + 1) & 63;
  uint64_t cur = words[w] >> off;
  if (cur) {
    return static_cast<int>((w << 6) + off +
                            static_cast<uint32_t>(__builtin_ctzll(cur)));
  }
  for (++w; w < 4; ++w) {
    if (words[w]) {
      return static_cast<int>((w << 6) +
                              static_cast<uint32_t>(__builtin_ctzll(words[w])));
    }
  }
  return -1;
}

}  // namespace

ExpiryWheel::ExpiryWheel(Timestamp start) : now_(start) {
  for (int l = 0; l < kLevels; ++l) {
    for (uint32_t s = 0; s < kSlots; ++s) heads_[l][s] = kNil;
  }
  std::memset(bitmap_, 0, sizeof(bitmap_));
}

void ExpiryWheel::EnsureItems(size_t n) {
  if (next_.size() >= n) return;
  next_.resize(n, kNil);
  prev_.resize(n, kNil);
  deadline_.resize(n, 0);
}

void ExpiryWheel::Reserve(size_t n) {
  next_.reserve(n);
  prev_.reserve(n);
  deadline_.reserve(n);
}

int ExpiryWheel::LevelFor(Timestamp deadline) const {
  const uint64_t x = deadline ^ now_;
  assert(x != 0);
  return (63 - __builtin_clzll(x)) >> 3;
}

void ExpiryWheel::Place(uint32_t item, Timestamp deadline) {
  const int l = LevelFor(deadline);
  const uint32_t s =
      static_cast<uint32_t>(deadline >> (kSlotBits * l)) & (kSlots - 1);
  deadline_[item] = deadline;
  prev_[item] = kNil;
  next_[item] = heads_[l][s];
  if (heads_[l][s] != kNil) prev_[heads_[l][s]] = item;
  heads_[l][s] = item;
  SetBit(bitmap_[l], s);
  // Safe lower bound: the slot's window starts at deadline with its low
  // level-granularity bits cleared. Using the bound (not the deadline)
  // keeps cascade boundaries from being jumped over by the fast path.
  const Timestamp bound =
      deadline & ~((1ULL << (kSlotBits * l)) - 1);
  if (bound < cached_next_) cached_next_ = bound;
}

void ExpiryWheel::Unlink(uint32_t item) {
  // A linked item sits exactly where Place last put it (see the header
  // note on deadline_), so its level and slot are recomputed, not stored.
  const int l = LevelFor(deadline_[item]);
  const uint32_t s =
      static_cast<uint32_t>(deadline_[item] >> (kSlotBits * l)) & (kSlots - 1);
  if (prev_[item] != kNil) {
    next_[prev_[item]] = next_[item];
  } else {
    heads_[l][s] = next_[item];
  }
  if (next_[item] != kNil) prev_[next_[item]] = prev_[item];
  if (heads_[l][s] == kNil) ClearBit(bitmap_[l], s);
  deadline_[item] = 0;
  next_[item] = prev_[item] = kNil;
}

void ExpiryWheel::Schedule(uint32_t item, Timestamp deadline) {
  assert(item < deadline_.size() && "EnsureItems not called for this id");
  if (deadline_[item] != 0) {
    Unlink(item);
    --scheduled_;
  }
  if (deadline <= now_) deadline = now_ + 1;
  Place(item, deadline);
  ++scheduled_;
}

void ExpiryWheel::Cancel(uint32_t item) {
  if (!IsScheduled(item)) return;
  Unlink(item);
  --scheduled_;
  // cached_next_ may now be early; that only costs one spurious scan.
}

Timestamp ExpiryWheel::NextEventBound() const {
  Timestamp best = kNoEvent;
  for (int l = 0; l < kLevels; ++l) {
    const uint32_t pos =
        static_cast<uint32_t>(now_ >> (kSlotBits * l)) & (kSlots - 1);
    const int s = FirstSetAbove(bitmap_[l], pos);
    if (s < 0) continue;
    Timestamp bound;
    if (l == kLevels - 1) {
      bound = static_cast<Timestamp>(s) << (kSlotBits * (kLevels - 1));
    } else {
      const int shift = kSlotBits * (l + 1);
      bound = ((now_ >> shift) << shift) |
              (static_cast<Timestamp>(s) << (kSlotBits * l));
    }
    if (bound < best) best = bound;
  }
  return best;
}

void ExpiryWheel::ProcessCurrent(const std::function<void(uint32_t)>& fire) {
  // Cascade top-down so long-range items settle into lower levels before
  // the level-0 slot for this tick drains. A slot at the clock position
  // is only ever occupied when the clock sits exactly at its lower bound
  // (placement always targets strictly-future slots).
  for (int l = kLevels - 1; l >= 1; --l) {
    const uint32_t pos =
        static_cast<uint32_t>(now_ >> (kSlotBits * l)) & (kSlots - 1);
    if (!TestBit(bitmap_[l], pos)) continue;
    uint32_t item = heads_[l][pos];
    heads_[l][pos] = kNil;
    ClearBit(bitmap_[l], pos);
    while (item != kNil) {
      const uint32_t nx = next_[item];
      next_[item] = prev_[item] = kNil;
      if (deadline_[item] <= now_) {
        deadline_[item] = 0;
        --scheduled_;
        fire(item);
      } else {
        Place(item, deadline_[item]);  // lands at a lower level
      }
      item = nx;
    }
  }
  const uint32_t pos0 = static_cast<uint32_t>(now_) & (kSlots - 1);
  if (TestBit(bitmap_[0], pos0)) {
    uint32_t item = heads_[0][pos0];
    heads_[0][pos0] = kNil;
    ClearBit(bitmap_[0], pos0);
    while (item != kNil) {
      const uint32_t nx = next_[item];
      next_[item] = prev_[item] = kNil;
      deadline_[item] = 0;
      --scheduled_;
      fire(item);  // level-0 slots are tick-exact: deadline == now_
      item = nx;
    }
  }
}

void ExpiryWheel::Advance(Timestamp now,
                          const std::function<void(uint32_t)>& fire) {
  if (now <= now_) return;
  if (scheduled_ == 0 || now < cached_next_) {
    now_ = now;
    return;
  }
  for (;;) {
    const Timestamp t = NextEventBound();
    if (t == kNoEvent) {
      cached_next_ = kNoEvent;
      break;
    }
    if (t > now) {
      cached_next_ = t;
      break;
    }
    now_ = t;
    ProcessCurrent(fire);
  }
  if (now_ < now) now_ = now;
}

size_t ExpiryWheel::MemoryBytes() const {
  return sizeof(*this) +
         next_.capacity() * sizeof(uint32_t) +
         prev_.capacity() * sizeof(uint32_t) +
         deadline_.capacity() * sizeof(Timestamp);
}

// ---------------------------------------------------------------------------
// KeyedCounterStore
// ---------------------------------------------------------------------------

uint64_t KeyedCounterStore::RecordKeyOf(const void* ctx, uint32_t val) {
  return (*static_cast<const std::vector<KeyRecord>*>(ctx))[val].key;
}

KeyedCounterStore::KeyedCounterStore(const KeyedStoreConfig& config,
                                     const Sketch* sketch)
    : config_(config),
      sketch_(sketch),
      pool_(config.epsilon, config.window_len),
      table_(&RecordKeyOf, &records_,
             config.max_keys > 0 ? config.max_keys * 10 / 7 + 1 : 1024) {
  fire_fn_ = [this](uint32_t idx) { FireRecord(idx); };
  if (config_.max_keys > 0) {
    // A declared hot-set budget is a memory contract: reserve the
    // per-key arrays up front so steady state carries no doubling slack.
    records_.reserve(config_.max_keys);
    if (config_.track_variance) var_exts_.reserve(config_.max_keys);
    wheel_.Reserve(config_.max_keys);
  }
}

void KeyedCounterStore::Advance(Timestamp now) {
  wheel_.Advance(now, fire_fn_);
}

uint32_t KeyedCounterStore::AdmitKey(uint64_t key) {
  uint32_t idx;
  if (!free_records_.empty()) {
    idx = free_records_.back();
    free_records_.pop_back();
    records_[idx] = KeyRecord{};
  } else {
    idx = static_cast<uint32_t>(records_.size());
    records_.emplace_back();
    wheel_.EnsureItems(records_.size());
  }
  KeyRecord& rec = records_[idx];
  rec.key = key;
  if (config_.track_variance && var_exts_.size() < records_.size()) {
    var_exts_.resize(records_.size());
  }
  table_.Insert(key, idx);
  ++stats_.admissions;
  if (table_.size() > stats_.peak_live_keys) {
    stats_.peak_live_keys = table_.size();
  }
  if (on_admit) on_admit(key, wheel_.now());
  return idx;
}

void KeyedCounterStore::AddToRecord(uint32_t idx, Timestamp ts,
                                    uint64_t weight) {
  KeyRecord& rec = records_[idx];
  pool_.Add(&rec.sum, ts, weight);
  if (config_.track_variance) {
    VarExt& v = var_exts_[idx];
    pool_.Add(&v.sumsq, ts, weight * weight);
    pool_.Add(&v.nevents, ts, 1);
  }
  ++stats_.exact_events;
  if (on_exact_add) on_exact_add(rec.key, ts, weight);
}

Timestamp KeyedCounterStore::RecordDeadline(uint32_t idx,
                                            Timestamp now) const {
  Timestamp d =
      pool_.NextEstimateChangeAt(records_[idx].sum, now, config_.window_len);
  if (config_.track_variance) {
    const VarExt& v = var_exts_[idx];
    for (const SlabEhState* s : {&v.sumsq, &v.nevents}) {
      const Timestamp t =
          pool_.NextEstimateChangeAt(*s, now, config_.window_len);
      if (t != 0 && (d == 0 || t < d)) d = t;
    }
  }
  return d;
}

void KeyedCounterStore::ScheduleOrEvict(uint32_t idx, Timestamp now) {
  const Timestamp d = RecordDeadline(idx, now);
  if (d == 0) {
    // Nothing this key holds can ever affect an estimate again.
    EvictRecord(idx, now);
    return;
  }
  wheel_.Schedule(idx, d);
}

void KeyedCounterStore::EvictRecord(uint32_t idx, Timestamp now) {
  KeyRecord& rec = records_[idx];
  if (on_evict) on_evict(rec.key, now);
  wheel_.Cancel(idx);
  pool_.Release(&rec.sum);
  if (config_.track_variance) {
    VarExt& v = var_exts_[idx];
    pool_.Release(&v.sumsq);
    pool_.Release(&v.nevents);
  }
  table_.Erase(rec.key);
  free_records_.push_back(idx);
  ++stats_.evictions;
}

void KeyedCounterStore::FireRecord(uint32_t idx) {
  KeyRecord& rec = records_[idx];
  const Timestamp now = wheel_.now();
  ++stats_.wheel_keys_touched;
  pool_.Expire(&rec.sum, now);
  if (config_.track_variance) {
    VarExt& v = var_exts_[idx];
    pool_.Expire(&v.sumsq, now);
    pool_.Expire(&v.nevents, now);
  }
  bool evict = rec.sum.count == 0;
  if (!evict && config_.evict_threshold > 0 &&
      static_cast<double>(rec.sum.total) < config_.evict_threshold) {
    evict = true;
  }
  if (evict) {
    EvictRecord(idx, now);
    return;
  }
  if (on_expire) on_expire(rec.key, now);
  ScheduleOrEvict(idx, now);
}

void KeyedCounterStore::Add(uint64_t key, Timestamp ts, uint64_t weight) {
  Advance(ts);
  ++stats_.events_total;
  uint32_t idx = table_.Find(key);
  if (idx == KeyTable::kNotFound) {
    if (sketch_ && config_.admit_threshold > 0 &&
        sketch_->PointQueryAt(key, config_.window_len, ts) <
            config_.admit_threshold) {
      ++stats_.rejected_events;
      return;
    }
    if (config_.max_keys > 0 && table_.size() >= config_.max_keys) {
      ++stats_.capacity_refusals;
      ++stats_.rejected_events;
      return;
    }
    idx = AdmitKey(key);
    AddToRecord(idx, ts, weight);
    ScheduleOrEvict(idx, ts);
    return;
  }
  AddToRecord(idx, ts, weight);
}

void KeyedCounterStore::AddBatch(const StreamEvent* events, size_t n) {
  pending_.clear();
  for (size_t i = 0; i < n; ++i) {
    const StreamEvent& ev = events[i];
    Advance(ev.ts);
    ++stats_.events_total;
    const uint32_t idx = table_.Find(ev.key);
    if (idx != KeyTable::kNotFound) {
      AddToRecord(idx, ev.ts, 1);
    } else {
      pending_.push_back(PendingEvent{ev.key, ev.ts});
    }
  }
  if (pending_.empty()) return;
  const Timestamp now = wheel_.now();

  // Distinct candidates, ascending: the order is the documented admission
  // policy when max_keys rations the last slots, and it feeds the sketch
  // one batched flag query.
  candidates_.clear();
  for (const PendingEvent& p : pending_) candidates_.push_back(p.key);
  std::sort(candidates_.begin(), candidates_.end());
  candidates_.erase(std::unique(candidates_.begin(), candidates_.end()),
                    candidates_.end());
  heavy_flags_.assign(candidates_.size(), 1);
  if (sketch_ && config_.admit_threshold > 0) {
    sketch_->FlagHeavyKeysAt(candidates_.data(), candidates_.size(),
                             config_.window_len, now, config_.admit_threshold,
                             heavy_flags_.data());
  }
  for (size_t c = 0; c < candidates_.size(); ++c) {
    if (!heavy_flags_[c]) continue;
    if (config_.max_keys > 0 && table_.size() >= config_.max_keys) {
      ++stats_.capacity_refusals;
      heavy_flags_[c] = 0;
      continue;
    }
    AdmitKey(candidates_[c]);
  }
  // Replay buffered events in arrival order: an admitted key's counters
  // are exact from its first in-batch appearance.
  for (const PendingEvent& p : pending_) {
    const uint32_t idx = table_.Find(p.key);
    if (idx == KeyTable::kNotFound) {
      ++stats_.rejected_events;
      continue;
    }
    AddToRecord(idx, p.ts, 1);
  }
  for (size_t c = 0; c < candidates_.size(); ++c) {
    if (!heavy_flags_[c]) continue;
    const uint32_t idx = table_.Find(candidates_[c]);
    if (idx != KeyTable::kNotFound) ScheduleOrEvict(idx, now);
  }
  pending_.clear();
}

bool KeyedCounterStore::TryPointQuery(uint64_t key, Timestamp now,
                                      uint64_t range, double* out) const {
  const uint32_t idx = table_.Find(key);
  if (idx == KeyTable::kNotFound) return false;
  *out = pool_.Estimate(records_[idx].sum, now, range);
  return true;
}

bool KeyedCounterStore::TryVarianceQuery(uint64_t key, Timestamp now,
                                         uint64_t range,
                                         KeyVarianceStats* out) const {
  const uint32_t idx = table_.Find(key);
  if (idx == KeyTable::kNotFound || !config_.track_variance) return false;
  const KeyRecord& rec = records_[idx];
  const VarExt& v = var_exts_[idx];
  KeyVarianceStats st;
  st.count = pool_.Estimate(v.nevents, now, range);
  st.sum = pool_.Estimate(rec.sum, now, range);
  if (st.count > 0.0) {
    const double sumsq = pool_.Estimate(v.sumsq, now, range);
    st.mean = st.sum / st.count;
    st.variance = sumsq / st.count - st.mean * st.mean;
  }
  *out = st;
  return true;
}

size_t KeyedCounterStore::MemoryBytes() const {
  return sizeof(*this) + pool_.MemoryBytes() + table_.MemoryBytes() +
         wheel_.MemoryBytes() +
         records_.capacity() * sizeof(KeyRecord) +
         free_records_.capacity() * sizeof(uint32_t) +
         var_exts_.capacity() * sizeof(VarExt) +
         pending_.capacity() * sizeof(PendingEvent) +
         candidates_.capacity() * sizeof(uint64_t) +
         heavy_flags_.capacity();
}

}  // namespace ecm
