// Million-key exact counter store: sliding-window counts (and variance)
// per key for the hot set, guarded by the resident ECM sketch.
//
// The sketch answers point queries approximately for the whole key
// universe; deployments of the paper's monitoring stack (per-flow DDoS
// scoring, per-user rate analytics) also want *exact* windows for the
// keys that matter. The naive shape — SAM's `ExponentialHistogramSum`,
// a `std::map<key, shared_ptr<EH>>` — pays three heap allocations and a
// pointer chase per key and a full scan to expire; this store is the
// production version:
//
//   * KeyTable — open-addressing robin-hood table (8-byte key tags +
//     32-bit record indices in parallel arrays, backward-shift deletion,
//     no tombstones). Growth is an *incremental* rehash: a second table
//     is allocated and a bounded number of entries migrate per mutating
//     op, so no add ever pays a full-table stall — the property the
//     bench pins with a p99 add-latency ceiling.
//   * Slab-arena counters — per-key state is a 32-byte SlabEhState
//     header embedded in the key record; buckets live in shared slab
//     pages (window/slab_eh.h), recycled through free lists on
//     eviction. No per-key heap allocation anywhere.
//   * ExpiryWheel — a shared hierarchical timing wheel (8 levels x 256
//     slots, occupancy bitmaps) scheduling each key at its counter's
//     NextEstimateChangeAt. Idle keys cost zero per tick: Advance jumps
//     straight between occupied slots, so a tick's cost is O(keys whose
//     oldest bucket can actually expire), not O(live keys) — pinned by
//     a counting test.
//   * Sketch-guarded admission — unknown keys get exact counters only
//     when the resident EcmSketch estimates them at or above
//     `admit_threshold` (batched through FlagHeavyKeysAt / the PR-7
//     row-major kernels); keys that cool below `evict_threshold` are
//     evicted back to sketch-only coverage on wheel expiry, so memory
//     is bounded by the hot-set budget (`max_keys`), not the universe.
//
// Determinism contract (what the oracle-differential test leans on): for
// admitted keys, every answer is bit-identical to a plain per-key
// ExponentialHistogram receiving the same Add sequence plus an Expire
// at each wheel firing — the slab representation is replicated from
// ExponentialHistogram exactly (see slab_eh.h), and admission decisions
// are a pure function of (sketch state, candidate key set) so a
// reference implementation can mirror them.

#ifndef ECM_ENGINE_KEYED_STORE_H_
#define ECM_ENGINE_KEYED_STORE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/core/ecm_sketch.h"
#include "src/stream/event.h"
#include "src/window/exponential_histogram.h"
#include "src/window/slab_eh.h"
#include "src/window/window_spec.h"

namespace ecm {

/// Open-addressing key table: uint64 key -> uint32 record index.
/// A slot packs a 4-byte hash tag and the 4-byte value into one uint64;
/// the full key lives in the owner's record array and is consulted
/// (through the resolver) only when a tag matches, so the table costs 8
/// bytes per slot instead of 12 and a probe run stays inside one cache
/// line. Robin-hood probing with backward-shift deletion; growth
/// rehashes incrementally (kRehashStep entries per mutating op) through
/// a two-table phase so no single operation pays a full-table migration.
class KeyTable {
 public:
  static constexpr uint32_t kNotFound = 0xFFFFFFFFu;

  /// Returns the full key behind a stored value. The context pointer
  /// must stay valid for the table's lifetime (the keyed store passes
  /// the address of its record vector; indexing through it survives
  /// reallocation).
  using KeyResolver = uint64_t (*)(const void* ctx, uint32_t value);

  KeyTable(KeyResolver resolver, const void* resolver_ctx,
           size_t initial_capacity = 64);

  /// Record index of `key`, or kNotFound.
  uint32_t Find(uint64_t key) const;

  /// Inserts `key` (must not be present; value must not be kNotFound).
  void Insert(uint64_t key, uint32_t value);

  /// Removes `key`; returns false if absent.
  bool Erase(uint64_t key);

  size_t size() const { return size_; }
  bool RehashInProgress() const { return !old_slots_.empty(); }
  uint64_t rehash_steps() const { return rehash_steps_; }
  size_t Capacity() const { return slots_.size() + old_slots_.size(); }
  size_t MemoryBytes() const;

 private:
  static constexpr uint32_t kRehashStep = 16;

  // Slot layout: tag in the high 32 bits, value in the low 32.
  // A slot is empty iff its value field is kNotFound.
  static uint64_t PackSlot(uint32_t tag, uint32_t value) {
    return (static_cast<uint64_t>(tag) << 32) | value;
  }
  static uint32_t SlotTag(uint64_t s) { return static_cast<uint32_t>(s >> 32); }
  static uint32_t SlotVal(uint64_t s) { return static_cast<uint32_t>(s); }

  // The tag doubles as the hash: home slot = tag & mask (capacities are
  // <= 2^32, so the low 32 hash bits cover every mask).
  size_t ProbeDistance(uint32_t tag, size_t slot, uint64_t mask) const {
    return (slot + mask + 1 - (tag & mask)) & mask;
  }
  void InsertInto(std::vector<uint64_t>& slots, uint64_t mask, uint32_t tag,
                  uint32_t value);
  uint32_t FindIn(const std::vector<uint64_t>& slots, uint64_t mask,
                  uint32_t tag, uint64_t key) const;
  bool EraseFrom(std::vector<uint64_t>& slots, uint64_t mask, uint32_t tag,
                 uint64_t key);
  void MaybeStartRehash();
  void DrainStep();

  KeyResolver resolver_;
  const void* resolver_ctx_;

  // Primary table (inserts land here).
  std::vector<uint64_t> slots_;
  uint64_t mask_ = 0;
  // Draining table during incremental rehash (empty vector otherwise).
  std::vector<uint64_t> old_slots_;
  uint64_t old_mask_ = 0;
  size_t old_live_ = 0;
  size_t drain_pos_ = 0;

  size_t size_ = 0;
  uint64_t rehash_steps_ = 0;
};

/// Hierarchical timing wheel over uint32 item ids (record indices).
/// 8 levels x 256 slots cover the full 64-bit tick space; per-level
/// occupancy bitmaps let Advance jump directly between occupied slots,
/// so advancing over an idle span costs O(1) regardless of how many
/// items are parked. Items are intrusively linked through parallel
/// arrays indexed by item id (~18 bytes per item).
class ExpiryWheel {
 public:
  static constexpr uint32_t kNil = 0xFFFFFFFFu;

  explicit ExpiryWheel(Timestamp start = 0);

  /// Grows the per-item link arrays to cover ids < n.
  void EnsureItems(size_t n);

  /// Pre-reserves the per-item link arrays for n ids (declared budgets
  /// avoid vector-doubling slack).
  void Reserve(size_t n);

  /// (Re)schedules `item` to fire at `deadline` (clamped to now+1 if not
  /// in the future). Item id must be < the EnsureItems bound.
  void Schedule(uint32_t item, Timestamp deadline);

  /// Unschedules `item` if scheduled.
  void Cancel(uint32_t item);

  bool IsScheduled(uint32_t item) const {
    return item < deadline_.size() && deadline_[item] != 0;
  }
  Timestamp DeadlineOf(uint32_t item) const { return deadline_[item]; }

  /// Advances the clock to `now`, invoking fire(item) for every item
  /// whose deadline passed, in deadline order. `fire` may reschedule or
  /// leave the item unscheduled, but must not call Advance reentrantly.
  /// When nothing is due the call is O(1) off the cached next-event
  /// lower bound.
  void Advance(Timestamp now, const std::function<void(uint32_t)>& fire);

  Timestamp now() const { return now_; }
  size_t scheduled_count() const { return scheduled_; }
  size_t MemoryBytes() const;

 private:
  static constexpr int kLevels = 8;
  static constexpr int kSlotBits = 8;
  static constexpr uint32_t kSlots = 1u << kSlotBits;
  static constexpr Timestamp kNoEvent = ~0ULL;

  int LevelFor(Timestamp deadline) const;
  void Place(uint32_t item, Timestamp deadline);
  void Unlink(uint32_t item);
  /// Lower bound of the earliest occupied slot, or kNoEvent.
  Timestamp NextEventBound() const;
  /// Drains every slot whose bound equals now_ (fires level 0, cascades
  /// higher levels down).
  void ProcessCurrent(const std::function<void(uint32_t)>& fire);

  uint32_t heads_[kLevels][kSlots];
  uint64_t bitmap_[kLevels][kSlots / 64];
  std::vector<uint32_t> next_;
  std::vector<uint32_t> prev_;
  // Placement deadline while linked, 0 when unscheduled. A linked item's
  // (level, slot) is recomputed from this: an item only ever leaves its
  // placement slot when the clock reaches that slot's bound (and the
  // cascade re-places it), so LevelFor(deadline) stays exact in between —
  // no per-item slot field needed.
  std::vector<Timestamp> deadline_;
  Timestamp now_;
  // Safe lower bound on the next event time (never later than the true
  // next event); lets idle Advance calls return without scanning.
  Timestamp cached_next_ = kNoEvent;
  size_t scheduled_ = 0;
};

/// Configuration of the keyed counter store.
struct KeyedStoreConfig {
  double epsilon = 0.01;      ///< per-key EH accuracy (>= ~1/500, slab bound)
  uint64_t window_len = 100;  ///< sliding-window length in ticks
  /// Hot-set budget: maximum resident keys (0 = unbounded). Admission
  /// beyond the budget is refused until evictions free room.
  size_t max_keys = 0;
  /// Sketch estimate (full window) required to admit an unknown key.
  /// <= 0 admits everything the capacity allows. Ignored when the store
  /// has no sketch.
  double admit_threshold = 0.0;
  /// A resident key whose bucket total falls below this on wheel expiry
  /// is evicted back to sketch-only coverage. <= 0 evicts only keys
  /// whose window emptied entirely.
  double evict_threshold = 0.0;
  /// Also maintain per-key sum-of-squares + event-count histograms so
  /// TryVarianceQuery works (3x the counter memory for tracked keys).
  bool track_variance = false;
};

/// Store telemetry. The `wheel_keys_touched` counter is the subject of
/// the O(expiring keys) test: advancing over a span where no key's
/// oldest bucket can expire must not touch any key.
struct KeyedStoreStats {
  uint64_t events_total = 0;     ///< events offered via Add/AddBatch
  uint64_t exact_events = 0;     ///< events absorbed into exact counters
  uint64_t rejected_events = 0;  ///< events dropped (below threshold/budget)
  uint64_t admissions = 0;
  uint64_t evictions = 0;
  uint64_t capacity_refusals = 0;  ///< heavy keys refused by max_keys
  uint64_t wheel_keys_touched = 0;
  uint64_t peak_live_keys = 0;
};

/// Per-key variance snapshot (paired sum / sum-of-squares histograms,
/// after SAM's ExponentialHistogramVariance).
struct KeyVarianceStats {
  double count = 0.0;     ///< events in range (from the unit-count EH)
  double sum = 0.0;       ///< sum of weights in range
  double mean = 0.0;      ///< sum / count
  double variance = 0.0;  ///< E[w^2] - mean^2 (0 when count == 0)
};

/// The exact per-key counter store. Single-threaded like every synopsis
/// in this library (shard stores across threads the way ParallelIngest
/// shards sketches). Timestamps must be non-decreasing across all calls;
/// when a sketch guards admission, feed it each event *before* the store
/// so admission sees the sketch state including the current arrival.
class KeyedCounterStore {
 public:
  using Sketch = EcmSketch<ExponentialHistogram>;

  /// `sketch` may be null: every key is then admitted (up to max_keys).
  /// The sketch is borrowed, not owned, and must outlive the store.
  explicit KeyedCounterStore(const KeyedStoreConfig& config,
                             const Sketch* sketch = nullptr);

  /// Feeds one weighted arrival. Unknown keys go through admission.
  void Add(uint64_t key, Timestamp ts, uint64_t weight = 1);

  /// Feeds a timestamp-ordered slice of unit-weight events. Misses are
  /// buffered and admission runs once per batch over the distinct
  /// candidate keys (ascending key order decides who gets the last
  /// budget slots); buffered events of admitted keys are then replayed
  /// in arrival order, so an admitted key's counters are exact from its
  /// first in-batch appearance.
  void AddBatch(const StreamEvent* events, size_t n);

  /// Advances the store clock: fires due wheel entries, expiring idle
  /// keys' buckets and evicting the ones that cooled off. Called
  /// implicitly by Add/AddBatch; call directly to reclaim memory during
  /// ingest gaps.
  void Advance(Timestamp now);

  bool Contains(uint64_t key) const {
    return table_.Find(key) != KeyTable::kNotFound;
  }

  /// Exact-counter point estimate over (now - range, now], bit-identical
  /// to a plain ExponentialHistogram fed this key's admitted arrivals.
  /// Returns false (and leaves *out alone) for non-resident keys —
  /// fall back to the sketch. `now` must be >= the store clock.
  bool TryPointQuery(uint64_t key, Timestamp now, uint64_t range,
                     double* out) const;

  /// Windowed variance of the key's arrival weights (requires
  /// track_variance). False for non-resident keys.
  bool TryVarianceQuery(uint64_t key, Timestamp now, uint64_t range,
                        KeyVarianceStats* out) const;

  size_t LiveKeys() const { return table_.size(); }
  Timestamp clock() const { return wheel_.now(); }
  const KeyedStoreStats& stats() const { return stats_; }
  const KeyedStoreConfig& config() const { return config_; }

  /// Full store footprint: slab pages, key table, wheel, records.
  size_t MemoryBytes() const;

  /// Test observers (called synchronously; keep them light). on_expire
  /// fires when the wheel touches a *surviving* key, after its buckets
  /// expired — the oracle mirrors it with ExponentialHistogram::Expire.
  std::function<void(uint64_t key, Timestamp now)> on_admit;
  std::function<void(uint64_t key, Timestamp now)> on_evict;
  std::function<void(uint64_t key, Timestamp now)> on_expire;
  /// Fires for every event absorbed into an exact counter (including
  /// batch replays, in the order they are applied) — the oracle feeds
  /// its reference histograms from exactly this sequence.
  std::function<void(uint64_t key, Timestamp ts, uint64_t weight)>
      on_exact_add;

 private:
  struct KeyRecord {
    uint64_t key = 0;
    SlabEhState sum;
  };
  struct VarExt {
    SlabEhState sumsq;   // adds weight^2 per arrival
    SlabEhState nevents; // adds 1 per arrival
  };

  /// KeyTable resolver: ctx is the store's records_ vector.
  static uint64_t RecordKeyOf(const void* ctx, uint32_t value);

  uint32_t AdmitKey(uint64_t key);
  void AddToRecord(uint32_t idx, Timestamp ts, uint64_t weight);
  /// Min nonzero NextEstimateChangeAt across the record's histograms
  /// (0 when all are empty).
  Timestamp RecordDeadline(uint32_t idx, Timestamp now) const;
  /// Schedules the record, or evicts it when nothing can ever expire.
  void ScheduleOrEvict(uint32_t idx, Timestamp now);
  void EvictRecord(uint32_t idx, Timestamp now);
  /// Wheel fire handler: expire buckets, evict-or-reschedule.
  void FireRecord(uint32_t idx);

  KeyedStoreConfig config_;
  const Sketch* sketch_;
  SlabEhPool pool_;
  KeyTable table_;
  ExpiryWheel wheel_;
  std::vector<KeyRecord> records_;
  std::vector<uint32_t> free_records_;
  // Parallel to records_ when track_variance is on (same index), empty
  // otherwise — no per-record link field, no separate free list.
  std::vector<VarExt> var_exts_;
  KeyedStoreStats stats_;

  // Batch scratch (members, not statics: stores are independent).
  struct PendingEvent {
    uint64_t key;
    Timestamp ts;
  };
  std::vector<PendingEvent> pending_;
  std::vector<uint64_t> candidates_;
  std::vector<uint8_t> heavy_flags_;
  std::function<void(uint32_t)> fire_fn_;
};

}  // namespace ecm

#endif  // ECM_ENGINE_KEYED_STORE_H_
