#include "src/engine/continuous.h"

#include <algorithm>

namespace ecm {

StreamEngine::StreamEngine(const Options& options)
    : options_(options),
      site_(/*id=*/0, options.sketch,
            Site<ExponentialHistogram>::Options{options.domain_bits}) {
  if (options_.evaluate_every == 0) options_.evaluate_every = 1;
}

QueryId StreamEngine::WatchPoint(
    uint64_t key, uint64_t range, double threshold,
    std::function<void(const ThresholdAlert&)> callback) {
  PointWatch w;
  w.id = next_id_++;
  w.key = key;
  w.range = range;
  w.threshold = threshold;
  w.callback = std::move(callback);
  point_watches_.push_back(std::move(w));
  return point_watches_.back().id;
}

QueryId StreamEngine::WatchSelfJoin(
    uint64_t range, double threshold,
    std::function<void(const ThresholdAlert&)> callback) {
  SelfJoinWatch w;
  w.id = next_id_++;
  w.range = range;
  w.threshold = threshold;
  w.callback = std::move(callback);
  selfjoin_watches_.push_back(std::move(w));
  return selfjoin_watches_.back().id;
}

Result<QueryId> StreamEngine::WatchHeavyHitters(
    double phi_ratio, uint64_t range, uint64_t period,
    std::function<void(const HeavyHitterReport&)> callback) {
  if (!site_.dyadic()) {
    return Status::InvalidArgument(
        "heavy-hitter queries need domain_bits > 0 at engine construction");
  }
  if (!(phi_ratio > 0.0) || phi_ratio >= 1.0) {
    return Status::InvalidArgument("phi_ratio must be in (0, 1)");
  }
  if (period == 0) {
    return Status::InvalidArgument("period must be positive");
  }
  HitterWatch w;
  w.id = next_id_++;
  w.phi_ratio = phi_ratio;
  w.range = range;
  w.period = period;
  w.callback = std::move(callback);
  hitter_watches_.push_back(std::move(w));
  return hitter_watches_.back().id;
}

bool StreamEngine::Unwatch(QueryId id) {
  auto erase_by_id = [id](auto* watches) {
    auto it = std::find_if(watches->begin(), watches->end(),
                           [id](const auto& w) { return w.id == id; });
    if (it == watches->end()) return false;
    watches->erase(it);
    return true;
  };
  return erase_by_id(&point_watches_) || erase_by_id(&selfjoin_watches_) ||
         erase_by_id(&hitter_watches_);
}

void StreamEngine::EvaluatePoint(PointWatch* watch, Timestamp ts) {
  ++stats_.point_evaluations;
  double est = site_.sketch().PointQuery(watch->key, watch->range);
  bool above = est >= watch->threshold;
  if (above != watch->above) {
    watch->above = above;
    ++stats_.alerts;
    if (watch->callback) {
      watch->callback(ThresholdAlert{watch->id, ts, est, above});
    }
  }
}

void StreamEngine::EvaluateSelfJoins(Timestamp ts) {
  for (auto& watch : selfjoin_watches_) {
    ++stats_.selfjoin_evaluations;
    double est = site_.sketch().SelfJoin(watch.range);
    bool above = est >= watch.threshold;
    if (above != watch.above) {
      watch.above = above;
      ++stats_.alerts;
      if (watch.callback) {
        watch.callback(ThresholdAlert{watch.id, ts, est, above});
      }
    }
  }
}

void StreamEngine::EvaluateHitters(Timestamp ts) {
  for (auto& watch : hitter_watches_) {
    if (ts < watch.next_due) continue;
    watch.next_due = ts + watch.period;
    ++stats_.heavy_hitter_reports;
    HeavyHitterReport report;
    report.query = watch.id;
    report.ts = ts;
    report.window_l1 = site_.dyadic()->EstimateL1(watch.range);
    report.hitters = site_.dyadic()->HeavyHitters(watch.phi_ratio, watch.range);
    if (watch.callback) watch.callback(report);
  }
}

KeyedCounterStore* StreamEngine::EnableKeyedStore(
    const KeyedStoreConfig& config) {
  keyed_store_ =
      std::make_unique<KeyedCounterStore>(config, &site_.sketch());
  return keyed_store_.get();
}

void StreamEngine::Ingest(uint64_t key, Timestamp ts, uint64_t count) {
  site_.Ingest(key, ts, count);
  // The store sees each arrival after the sketch so its admission check
  // includes the current event (the store's documented contract).
  if (keyed_store_) keyed_store_->Add(key, ts, count);
  ++stats_.arrivals;

  // Point watches on the arriving key re-evaluate immediately (their
  // estimate only moves when the key arrives or the window slides).
  for (auto& watch : point_watches_) {
    if (watch.key == key) EvaluatePoint(&watch, ts);
  }
  if (++since_eval_ >= options_.evaluate_every) {
    since_eval_ = 0;
    // Window sliding can also *lower* point estimates: re-check all.
    for (auto& watch : point_watches_) {
      if (watch.key != key) EvaluatePoint(&watch, ts);
    }
    EvaluateSelfJoins(ts);
  }
  EvaluateHitters(ts);
}

void StreamEngine::IngestBatch(const StreamEvent* events, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    Ingest(events[i].key, events[i].ts, 1);
  }
}

size_t StreamEngine::MemoryBytes() const {
  size_t bytes = sizeof(*this) + site_.sketch().MemoryBytes();
  if (site_.dyadic()) bytes += site_.dyadic()->MemoryBytes();
  if (keyed_store_) bytes += keyed_store_->MemoryBytes();
  return bytes;
}

}  // namespace ecm
