// Cross-counter property harness: every sliding-window counter type runs
// the same randomized-operation scripts (interleaved single/bulk adds,
// clock jumps, expiry, queries at random ranges) against the exact
// reference, checking each type's error envelope, basic monotonicity
// properties, and serialization stability under mid-stream snapshots.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/util/random.h"
#include "src/window/counter_traits.h"

namespace ecm {
namespace {

constexpr uint64_t kWindow = 50'000;
constexpr double kEpsilon = 0.1;

// Per-type construction and error tolerance.
template <typename Counter>
struct Harness;

template <>
struct Harness<ExponentialHistogram> {
  static ExponentialHistogram Make(uint64_t) {
    return ExponentialHistogram({kEpsilon, kWindow});
  }
  static double Budget(double truth) { return kEpsilon * truth + 1.0; }
};

template <>
struct Harness<DeterministicWave> {
  static DeterministicWave Make(uint64_t) {
    return DeterministicWave({kEpsilon, kWindow, 1 << 18});
  }
  static double Budget(double truth) { return kEpsilon * truth + 1.0; }
};

template <>
struct Harness<RandomizedWave> {
  static RandomizedWave Make(uint64_t seed) {
    RandomizedWave::Config cfg;
    cfg.epsilon = kEpsilon;
    cfg.delta = 0.05;
    cfg.window_len = kWindow;
    cfg.max_arrivals = 1 << 18;
    cfg.seed = seed;
    return RandomizedWave(cfg);
  }
  // Randomized: permit 3x the epsilon band (checked per-query; delta-rare
  // excursions are tolerated by the violation counter in the test).
  static double Budget(double truth) { return 3.0 * kEpsilon * truth + 2.0; }
};

template <>
struct Harness<ExactWindow> {
  static ExactWindow Make(uint64_t) { return ExactWindow({kWindow}); }
  static double Budget(double) { return 1e-9; }
};

class Reference {
 public:
  void Add(Timestamp ts, uint64_t count) {
    for (uint64_t i = 0; i < count; ++i) stamps_.push_back(ts);
  }
  double Count(Timestamp now, uint64_t range) const {
    Timestamp boundary = WindowStart(now, range);
    uint64_t n = 0;
    for (Timestamp t : stamps_) {
      if (t > boundary && t <= now) ++n;
    }
    return static_cast<double>(n);
  }

 private:
  std::vector<Timestamp> stamps_;
};

template <typename Counter>
class CounterPropertyTest : public ::testing::Test {};

using AllCounters = ::testing::Types<ExponentialHistogram, DeterministicWave,
                                     RandomizedWave, ExactWindow>;
TYPED_TEST_SUITE(CounterPropertyTest, AllCounters);

TYPED_TEST(CounterPropertyTest, RandomScriptStaysInBudget) {
  for (uint64_t seed : {11u, 22u, 33u}) {
    TypeParam counter = Harness<TypeParam>::Make(seed);
    Reference ref;
    Rng rng(seed);
    Timestamp t = 1;
    int violations = 0, checks = 0;
    for (int op = 0; op < 8000; ++op) {
      switch (rng.Uniform(10)) {
        case 0: {  // bulk add
          uint64_t count = 1 + rng.Uniform(30);
          counter.Add(t, count);
          ref.Add(t, count);
          break;
        }
        case 1:  // clock jump (quiet period)
          t += rng.Uniform(kWindow / 10);
          counter.Expire(t);
          break;
        case 2: {  // query at random range
          uint64_t range = 1 + rng.Uniform(kWindow);
          double est = counter.Estimate(t, range);
          double truth = ref.Count(t, range);
          ++checks;
          if (std::abs(est - truth) > Harness<TypeParam>::Budget(truth)) {
            ++violations;
          }
          break;
        }
        default:  // single add with small gap
          t += rng.Uniform(3);
          counter.Add(t, 1);
          ref.Add(t, 1);
          break;
      }
    }
    // Deterministic types must never violate; randomized type only with
    // probability ~delta per check.
    int allowed = std::is_same_v<TypeParam, RandomizedWave>
                      ? checks / 10 + 2
                      : 0;
    EXPECT_LE(violations, allowed)
        << violations << "/" << checks << " violations at seed " << seed;
  }
}

TYPED_TEST(CounterPropertyTest, EstimateMonotoneInRange) {
  TypeParam counter = Harness<TypeParam>::Make(7);
  Rng rng(7);
  Timestamp t = 1;
  for (int i = 0; i < 20000; ++i) {
    t += rng.Uniform(3);
    counter.Add(t, 1);
  }
  // Widening the range never decreases the estimate by more than the
  // boundary uncertainty of the narrower range.
  double prev = 0.0;
  for (uint64_t range = 100; range <= kWindow; range *= 4) {
    double est = counter.Estimate(t, range);
    EXPECT_GE(est, prev * (1.0 - 2.5 * kEpsilon) - 2.0) << "range " << range;
    prev = est;
  }
}

TYPED_TEST(CounterPropertyTest, LifetimeIsExact) {
  TypeParam counter = Harness<TypeParam>::Make(8);
  Rng rng(8);
  Timestamp t = 1;
  uint64_t total = 0;
  for (int i = 0; i < 5000; ++i) {
    t += rng.Uniform(3);
    uint64_t count = 1 + rng.Uniform(5);
    counter.Add(t, count);
    total += count;
  }
  EXPECT_EQ(counter.lifetime_count(), total);
}

TYPED_TEST(CounterPropertyTest, SnapshotSerializationAgreesForever) {
  // Serialize mid-stream; the snapshot must answer any query identically
  // to the live object at the snapshot instant.
  TypeParam counter = Harness<TypeParam>::Make(9);
  Rng rng(9);
  Timestamp t = 1;
  for (int i = 0; i < 10000; ++i) {
    t += rng.Uniform(3);
    counter.Add(t, 1);
  }
  ByteWriter w;
  counter.SerializeTo(&w);
  ByteReader r(w.bytes());
  auto snapshot = TypeParam::Deserialize(&r);
  ASSERT_TRUE(snapshot.ok());
  for (uint64_t range : {37u, 512u, 9999u, 50'000u}) {
    EXPECT_EQ(snapshot->Estimate(t, range), counter.Estimate(t, range))
        << "range " << range;
  }
}

TYPED_TEST(CounterPropertyTest, FullExpiryEmptiesEstimates) {
  TypeParam counter = Harness<TypeParam>::Make(10);
  for (Timestamp t = 1; t <= 1000; ++t) counter.Add(t, 1);
  Timestamp far = 1000 + 3 * kWindow;
  counter.Expire(far);
  EXPECT_EQ(counter.Estimate(far, kWindow), 0.0);
}

}  // namespace
}  // namespace ecm
