// Differential suite for the SIMD hash kernels (util/simd_kernels.h).
//
// Every vector tier must be bit-identical to the scalar reference — bucket
// placement is part of a sketch's identity, so "close" is not good enough.
// The suite runs each kernel under forced-scalar, forced-SSE2, forced-AVX2
// (skipping tiers the CPU lacks) and auto-dispatch, over randomized
// weighted streams, adversarial key shapes, and every tail length, then
// cross-checks whole-sketch estimates across tiers.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/core/ecm_sketch.h"
#include "src/util/hash.h"
#include "src/util/random.h"
#include "src/util/simd.h"
#include "src/util/simd_kernels.h"

namespace ecm {
namespace {

constexpr SimdLevel kAllLevels[] = {SimdLevel::kScalar, SimdLevel::kSSE2,
                                    SimdLevel::kAVX2};

// Pins dispatch for one scope; restores auto on exit so test order can
// never leak a forced tier.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) {
    forced_ = ForceSimdLevel(level);
  }
  ~ScopedSimdLevel() { ResetSimdLevel(); }
  bool forced() const { return forced_; }

 private:
  bool forced_;
};

// Key mixes that stress both the arithmetic (full-width products, values
// near the modulus) and the tail handling (odd lengths).
std::vector<uint64_t> AdversarialKeys() {
  std::vector<uint64_t> keys = {0,
                                1,
                                ~0ULL,
                                PairwiseHash::kMersenne61,
                                PairwiseHash::kMersenne61 - 1,
                                PairwiseHash::kMersenne61 + 1,
                                1ULL << 63,
                                (1ULL << 61) - 2};
  for (uint64_t i = 0; i < 64; ++i) keys.push_back(i);               // dense
  for (uint64_t i = 0; i < 64; ++i) keys.push_back(i << 32);         // aligned
  for (uint64_t i = 0; i < 64; ++i) keys.push_back(~0ULL - 3 * i);   // high
  Rng rng(0x51D0);
  for (int i = 0; i < 512; ++i) keys.push_back(rng.Next());
  return keys;
}

TEST(SimdKernelTest, Mix64BatchMatchesScalarAtEveryTier) {
  const std::vector<uint64_t> keys = AdversarialKeys();
  for (SimdLevel level : kAllLevels) {
    if (!SimdLevelSupported(level)) continue;
    const auto& kernels = internal::HashKernelsFor(level);
    // Every length exercises a different tail shape.
    for (size_t n = 0; n <= keys.size(); n = n * 2 + 1) {
      std::vector<uint64_t> out(n, 0);
      kernels.mix64_batch(keys.data(), n, out.data());
      for (size_t k = 0; k < n; ++k) {
        ASSERT_EQ(out[k], Mix64(keys[k]))
            << SimdLevelName(level) << " n=" << n << " k=" << k;
      }
    }
  }
}

TEST(SimdKernelTest, BucketsMixedMatchesScalarAtEveryTierAndDepth) {
  const std::vector<uint64_t> keys = AdversarialKeys();
  const uint32_t widths[] = {1, 2, 3, 54, 1u << 16, 0xFFFFFFFFu};
  // Depths cover every vector-tail shape for 2- and 4-lane kernels.
  for (int d = 1; d <= 9; ++d) {
    HashFamily family(0xFACADE + d, d);
    for (SimdLevel level : kAllLevels) {
      if (!SimdLevelSupported(level)) continue;
      ScopedSimdLevel scoped(level);
      ASSERT_TRUE(scoped.forced());
      for (uint32_t width : widths) {
        for (uint64_t key : keys) {
          uint32_t got[kMaxSketchDepth];
          family.BucketsMixed(key, width, got);
          for (int row = 0; row < d; ++row) {
            ASSERT_EQ(got[row], family.Bucket(row, key, width))
                << SimdLevelName(level) << " d=" << d << " width=" << width
                << " key=" << key << " row=" << row;
          }
        }
      }
    }
  }
}

TEST(SimdKernelTest, BucketsRowMajorMatchesScalarAtEveryTier) {
  const std::vector<uint64_t> keys = AdversarialKeys();
  std::vector<uint64_t> mixed(keys.size());
  for (size_t k = 0; k < keys.size(); ++k) mixed[k] = Mix64(keys[k]);
  constexpr int kDepth = 5;
  HashFamily family(0xB00C, kDepth);
  const uint32_t widths[] = {1, 7, 54, 1u << 20};
  for (SimdLevel level : kAllLevels) {
    if (!SimdLevelSupported(level)) continue;
    ScopedSimdLevel scoped(level);
    for (uint32_t width : widths) {
      for (size_t n : {size_t{0}, size_t{1}, size_t{2}, size_t{3}, size_t{7},
                       keys.size()}) {
        std::vector<uint32_t> out(kDepth * n, ~0u);
        family.BucketsRowMajor(mixed.data(), n, width, out.data());
        for (int row = 0; row < kDepth; ++row) {
          for (size_t k = 0; k < n; ++k) {
            ASSERT_EQ(out[row * n + k], family.Bucket(row, keys[k], width))
                << SimdLevelName(level) << " width=" << width << " n=" << n
                << " row=" << row << " k=" << k;
          }
        }
      }
    }
  }
}

TEST(SimdKernelTest, ModuloReductionUnaffectedByForcedTier) {
  // kModulo bypasses the vector kernels; forcing tiers must not change it.
  constexpr int kDepth = 4;
  HashFamily family(0xD1CE, kDepth, HashReduction::kModulo);
  const std::vector<uint64_t> keys = AdversarialKeys();
  for (SimdLevel level : kAllLevels) {
    if (!SimdLevelSupported(level)) continue;
    ScopedSimdLevel scoped(level);
    for (uint64_t key : keys) {
      uint32_t got[kDepth];
      family.BucketsMixed(key, 54, got);
      for (int row = 0; row < kDepth; ++row) {
        ASSERT_EQ(got[row], family.Bucket(row, key, 54));
      }
    }
  }
}

TEST(SimdKernelTest, ForceSimdLevelRejectsUnsupportedAndReports) {
  // Scalar is always forcible; unsupported tiers are rejected unchanged.
  EXPECT_TRUE(ForceSimdLevel(SimdLevel::kScalar));
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  ResetSimdLevel();
  for (SimdLevel level : kAllLevels) {
    if (SimdLevelSupported(level)) {
      EXPECT_TRUE(ForceSimdLevel(level));
      EXPECT_EQ(ActiveSimdLevel(), level);
      ResetSimdLevel();
    } else {
      SimdLevel before = ActiveSimdLevel();
      EXPECT_FALSE(ForceSimdLevel(level));
      EXPECT_EQ(ActiveSimdLevel(), before);
    }
  }
  // Names round-trip through the parser (the ECM_SIMD spellings).
  for (SimdLevel level : kAllLevels) {
    SimdLevel parsed;
    ASSERT_TRUE(ParseSimdLevel(SimdLevelName(level), &parsed));
    EXPECT_EQ(parsed, level);
  }
  SimdLevel ignored;
  EXPECT_FALSE(ParseSimdLevel("auto", &ignored));
  EXPECT_FALSE(ParseSimdLevel("", &ignored));
  EXPECT_FALSE(ParseSimdLevel(nullptr, &ignored));
}

// Whole-sketch differential: identical streams into one sketch per tier,
// then every query result must agree bit-for-bit with the scalar sketch
// (same hash family ⇒ same buckets ⇒ same counters).
TEST(SimdKernelTest, SketchEndToEndIdenticalAcrossTiers) {
  auto config = EcmConfig::Create(0.05, 0.05, WindowMode::kTimeBased, 2048,
                                  /*seed=*/0xABBAEC);
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  struct TierRun {
    SimdLevel level;
    std::vector<double> estimates;
  };
  std::vector<TierRun> runs;
  for (SimdLevel level : kAllLevels) {
    if (!SimdLevelSupported(level)) continue;
    ScopedSimdLevel scoped(level);
    EcmSketch<ExponentialHistogram> sketch(*config);
    Rng rng(0xABBA);
    Timestamp t = 1;
    for (int i = 0; i < 4000; ++i) {
      t += rng.Uniform(4);
      sketch.Add(rng.Uniform(300), t, 1 + rng.Uniform(20));
    }
    TierRun run{level, {}};
    std::vector<uint64_t> keys;
    for (uint64_t k = 0; k < 300; ++k) keys.push_back(k);
    run.estimates.resize(keys.size());
    sketch.PointQueryBatchAt(keys.data(), keys.size(), /*range=*/1024, t,
                             run.estimates.data());
    for (uint64_t k = 0; k < 300; k += 7) {
      run.estimates.push_back(sketch.PointQueryAt(k, /*range=*/700, t));
    }
    double rows[kMaxSketchDepth];
    for (uint64_t k = 0; k < 50; ++k) {
      sketch.PointQueryRowsAt(k, /*range=*/500, t, rows);
      run.estimates.insert(run.estimates.end(), rows,
                           rows + sketch.config().depth);
    }
    runs.push_back(std::move(run));
  }
  ASSERT_GE(runs.size(), 1u);
  for (size_t i = 1; i < runs.size(); ++i) {
    ASSERT_EQ(runs[i].estimates, runs[0].estimates)
        << "tier " << SimdLevelName(runs[i].level)
        << " diverged from scalar";
  }
}

TEST(SimdKernelTest, AutoDispatchAgreesWithForcedDetectedTier) {
  const std::vector<uint64_t> keys = AdversarialKeys();
  HashFamily family(0xAD0, 6);
  std::vector<uint32_t> auto_out(6), forced_out(6);
  SimdLevel detected = DetectedSimdLevel();
  // Auto mode only steps up to AVX2; below that it stays scalar (SSE2 is
  // a correctness rung, not a default — see ActiveSimdLevel()). Skip the
  // tier assertion when ECM_SIMD overrides auto mode.
  ResetSimdLevel();
  if (std::getenv("ECM_SIMD") == nullptr) {
    EXPECT_EQ(ActiveSimdLevel(), detected == SimdLevel::kAVX2
                                     ? SimdLevel::kAVX2
                                     : SimdLevel::kScalar);
  }
  for (uint64_t key : keys) {
    ResetSimdLevel();
    family.BucketsMixed(key, 54, auto_out.data());
    {
      ScopedSimdLevel scoped(detected);
      family.BucketsMixed(key, 54, forced_out.data());
    }
    ASSERT_EQ(auto_out, forced_out) << "key=" << key;
  }
}

}  // namespace
}  // namespace ecm
