// Tests for the real TCP wire transport (dist/socket_transport.h):
//
//  * frame encode/decode round-trips, incl. byte-at-a-time feeding;
//  * SocketTransport -> CoordinatorServer delivery over 127.0.0.1: real
//    dist/serialize bytes arrive intact and re-deserialize;
//  * liveness: heartbeat keeps a quiet site up, silence past the timeout
//    marks it down, a new hello after a drop counts as a rejoin;
//  * the one-accounting-currency invariant: an identical CollectAndMerge
//    propagation script charges byte-for-byte the same NetworkStats
//    through LoopbackTransport and SocketTransport;
//  * backpressure: the bounded send queue never holds more than the
//    configured volume, yet every frame is eventually delivered.

#include "src/dist/socket_transport.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <functional>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "src/dist/compress.h"
#include "src/dist/runtime.h"
#include "src/dist/serialize.h"
#include "src/stream/generators.h"

namespace ecm {
namespace {

constexpr uint64_t kWindow = 20'000;

EcmConfig SketchCfg(uint64_t seed = 11) {
  auto cfg = EcmConfig::Create(0.1, 0.1, WindowMode::kTimeBased, kWindow,
                               seed);
  EXPECT_TRUE(cfg.ok());
  return *cfg;
}

std::vector<StreamEvent> ZipfEvents(size_t n, uint32_t sites,
                                    uint64_t seed) {
  ZipfStream::Config zc;
  zc.domain = 300;
  zc.skew = 1.0;
  zc.num_nodes = sites;
  zc.seed = seed;
  return ZipfStream(zc).Take(n);
}

/// Collects every application frame the server hands out and lets tests
/// block until an expected number arrived.
class FrameSink {
 public:
  void Add(const Frame& frame) {
    std::lock_guard<std::mutex> lk(mu_);
    frames_.push_back(frame);
    cv_.notify_all();
  }

  CoordinatorServer::FrameHandler handler() {
    return [this](const Frame& f) { Add(f); };
  }

  bool WaitForCount(size_t n, int timeout_ms = 5000) {
    std::unique_lock<std::mutex> lk(mu_);
    return cv_.wait_for(lk, std::chrono::milliseconds(timeout_ms),
                        [&] { return frames_.size() >= n; });
  }

  std::vector<Frame> frames() const {
    std::lock_guard<std::mutex> lk(mu_);
    return frames_;
  }

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::vector<Frame> frames_;
};

bool WaitFor(const std::function<bool()>& pred, int timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

// --- Framing --------------------------------------------------------------

TEST(FrameCodecTest, RoundTripsAllFields) {
  Frame f;
  f.type = FrameType::kSketch;
  f.from = 7;
  f.to = kCoordinatorNode;
  f.seq = 123456789;
  f.payload = {1, 2, 3, 250, 0, 42};
  std::vector<uint8_t> wire = EncodeFrame(f);
  EXPECT_EQ(wire.size(), kFrameHeaderBytes + f.payload.size());

  FrameDecoder d;
  d.Feed(wire.data(), wire.size());
  auto got = d.Next();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(got->has_value());
  EXPECT_EQ((*got)->type, FrameType::kSketch);
  EXPECT_EQ((*got)->from, 7);
  EXPECT_EQ((*got)->to, kCoordinatorNode);
  EXPECT_EQ((*got)->seq, 123456789u);
  EXPECT_EQ((*got)->payload, f.payload);

  auto empty = d.Next();
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(empty->has_value());
  EXPECT_EQ(d.buffered(), 0u);
}

TEST(FrameCodecTest, DecodesByteAtATimeAndBackToBack) {
  Frame a;
  a.type = FrameType::kHello;
  a.from = 1;
  a.payload = EncodeHelloPayload(3);
  Frame b;
  b.type = FrameType::kDone;
  b.from = 1;
  b.seq = 1;
  b.payload.assign(1000, 7);

  std::vector<uint8_t> wire = EncodeFrame(a);
  std::vector<uint8_t> wb = EncodeFrame(b);
  wire.insert(wire.end(), wb.begin(), wb.end());

  FrameDecoder d;
  size_t decoded = 0;
  for (uint8_t byte : wire) {
    d.Feed(&byte, 1);
    while (true) {
      auto got = d.Next();
      ASSERT_TRUE(got.ok());
      if (!got->has_value()) break;
      ++decoded;
      if (decoded == 1) {
        EXPECT_EQ((*got)->type, FrameType::kHello);
        auto epoch = DecodeHelloPayload((*got)->payload);
        ASSERT_TRUE(epoch.ok());
        EXPECT_EQ(*epoch, 3u);
      } else {
        EXPECT_EQ((*got)->type, FrameType::kDone);
        EXPECT_EQ((*got)->payload.size(), 1000u);
      }
    }
  }
  EXPECT_EQ(decoded, 2u);
}

// --- Wire delivery --------------------------------------------------------

TEST(SocketTransportTest, DeliversSerializedSketchesIntact) {
  FrameSink sink;
  auto server =
      CoordinatorServer::Start(0, CoordinatorServer::Options{}, sink.handler());
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  EcmConfig cfg = SketchCfg();
  EcmSketch<ExponentialHistogram> sketch(cfg);
  for (const StreamEvent& e : ZipfEvents(5'000, 1, 99)) {
    sketch.Add(e.key, e.ts);
  }
  std::vector<uint8_t> wire = SerializeSketch(sketch);

  SocketTransport::Options topt;
  topt.heartbeat_period_ms = 0;
  auto client =
      SocketTransport::Connect("127.0.0.1", (*server)->port(), 4, topt);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE(
      (*client)->SendPayload(FrameType::kSketch, kCoordinatorNode, wire).ok());
  ASSERT_TRUE((*client)->Flush().ok());

  ASSERT_TRUE(sink.WaitForCount(1));
  std::vector<Frame> frames = sink.frames();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::kSketch);
  EXPECT_EQ(frames[0].from, 4);
  EXPECT_EQ(frames[0].payload, wire);

  // The shipped bytes reconstruct a sketch answering identically.
  auto back = DeserializeSketch<ExponentialHistogram>(frames[0].payload);
  ASSERT_TRUE(back.ok());
  for (uint64_t key = 1; key <= 16; ++key) {
    EXPECT_DOUBLE_EQ(back->PointQueryAt(key, kWindow, sketch.Now()),
                     sketch.PointQueryAt(key, kWindow, sketch.Now()));
  }

  // Server-side accounting saw exactly the payload volume.
  EXPECT_EQ((*server)->stats().messages, 1u);
  EXPECT_EQ((*server)->stats().bytes, wire.size());
  SiteStatus st = (*server)->site(4);
  EXPECT_EQ(st.health, SiteHealth::kUp);
  EXPECT_EQ(st.joins, 1u);
  EXPECT_EQ(st.frames, 1u);
}

// --- Liveness -------------------------------------------------------------

TEST(SocketTransportTest, HeartbeatKeepsQuietSiteUp) {
  FrameSink sink;
  CoordinatorServer::Options copt;
  copt.heartbeat_timeout_ms = 150;
  copt.sweep_period_ms = 20;
  auto server = CoordinatorServer::Start(0, copt, sink.handler());
  ASSERT_TRUE(server.ok());

  SocketTransport::Options topt;
  topt.heartbeat_period_ms = 30;  // well inside the timeout
  auto client =
      SocketTransport::Connect("127.0.0.1", (*server)->port(), 1, topt);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(WaitFor(
      [&] { return (*server)->site(1).health == SiteHealth::kUp; }));

  // Quiet for several timeout periods: heartbeats alone keep it up.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  EXPECT_EQ((*server)->site(1).health, SiteHealth::kUp);
  EXPECT_EQ((*server)->downs(), 0u);
}

TEST(SocketTransportTest, SilentSiteTimesOutAndRejoinCounts) {
  FrameSink sink;
  CoordinatorServer::Options copt;
  copt.heartbeat_timeout_ms = 100;
  copt.sweep_period_ms = 10;
  auto server = CoordinatorServer::Start(0, copt, sink.handler());
  ASSERT_TRUE(server.ok());

  SocketTransport::Options topt;
  topt.heartbeat_period_ms = 0;  // no beacons: the site goes silent
  {
    auto client =
        SocketTransport::Connect("127.0.0.1", (*server)->port(), 2, topt);
    ASSERT_TRUE(client.ok());
    // Heartbeat-silence past the timeout marks the site down even while
    // the connection stays open.
    ASSERT_TRUE(WaitFor(
        [&] { return (*server)->site(2).health == SiteHealth::kDown; }));
    EXPECT_GE((*server)->downs(), 1u);
  }

  // Reconnect with the next epoch: counted as a rejoin, health back up.
  topt.epoch = 2;
  auto again =
      SocketTransport::Connect("127.0.0.1", (*server)->port(), 2, topt);
  ASSERT_TRUE(again.ok());
  ASSERT_TRUE(WaitFor(
      [&] { return (*server)->site(2).health == SiteHealth::kUp; }));
  EXPECT_EQ((*server)->rejoins(), 1u);
  SiteStatus st = (*server)->site(2);
  EXPECT_EQ(st.joins, 2u);
  EXPECT_EQ(st.epoch, 2u);
}

// --- One accounting currency ----------------------------------------------

TEST(SocketTransportTest, NetworkStatsMatchesLoopbackOnIdenticalScript) {
  constexpr int kSites = 5;
  EcmConfig cfg = SketchCfg(23);
  std::vector<StreamEvent> events = ZipfEvents(20'000, kSites, 41);

  // Loopback run of the propagation script.
  LoopbackTransport loopback;
  Coordinator<ExponentialHistogram> a(kSites, cfg, &loopback);
  // Socket run of the identical script: same sketches, same pushes, but
  // the serialized payloads really cross a TCP connection.
  FrameSink sink;
  auto server =
      CoordinatorServer::Start(0, CoordinatorServer::Options{}, sink.handler());
  ASSERT_TRUE(server.ok());
  SocketTransport::Options topt;
  topt.heartbeat_period_ms = 0;
  auto socket = SocketTransport::Connect("127.0.0.1", (*server)->port(),
                                         kCoordinatorNode, topt);
  ASSERT_TRUE(socket.ok());
  Coordinator<ExponentialHistogram> b(kSites, cfg, socket->get());

  uint64_t pushes = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    const StreamEvent& e = events[i];
    const int site = static_cast<int>(e.node % kSites);
    a.site(site).Ingest(e.key, e.ts);
    b.site(site).Ingest(e.key, e.ts);
    if ((i + 1) % 4'000 == 0) {
      ASSERT_TRUE(a.CollectAndMerge().ok());
      ASSERT_TRUE(b.CollectAndMerge().ok());
      pushes += kSites;
    }
  }
  ASSERT_TRUE((*socket)->Flush().ok());

  // Byte-for-byte identical accounting: the invariant from PR 5 holds
  // across transports.
  NetworkStats la = loopback.stats();
  NetworkStats lb = (*socket)->stats();
  EXPECT_EQ(la.messages, lb.messages);
  EXPECT_EQ(la.bytes, lb.bytes);
  EXPECT_EQ(la.messages, pushes);

  // And the receiving side agrees with the sending side.
  ASSERT_TRUE(WaitFor([&] {
    return (*server)->stats().messages == lb.messages;
  }));
  EXPECT_EQ((*server)->stats().bytes, lb.bytes);

  // The physical wire carries framing overhead on top — strictly more
  // than the accounted payload, by exactly one header per frame (hello
  // is control-plane: one extra frame, zero accounted bytes).
  EXPECT_EQ((*socket)->wire_bytes(),
            lb.bytes + (lb.messages + 1) * kFrameHeaderBytes +
                EncodeHelloPayload(1).size());
}

// --- Hostile wire input ---------------------------------------------------
//
// The serialized-synopsis layer already has its own fuzz sweeps
// (corruption_test.cc); these target the frame layer and the composition
// of the two: no slice of hostile bytes may crash the decoder, allocate
// from a forged length field, or surface as a frame it did not receive.

std::vector<uint8_t> SampleFrameBytes() {
  Frame f;
  f.type = FrameType::kSketch;
  f.from = 2;
  f.seq = 5;
  f.payload.resize(257);
  for (size_t i = 0; i < f.payload.size(); ++i) {
    f.payload[i] = static_cast<uint8_t>(i * 31 + 7);
  }
  return EncodeFrame(f);
}

TEST(FrameFuzzTest, EveryTruncationIsIncompleteNotCorrupt) {
  std::vector<uint8_t> wire = SampleFrameBytes();
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    FrameDecoder d;
    d.Feed(wire.data(), cut);
    auto got = d.Next();
    ASSERT_TRUE(got.ok()) << "prefix " << cut << ": "
                          << got.status().ToString();
    EXPECT_FALSE(got->has_value()) << "prefix " << cut;
  }
}

TEST(FrameFuzzTest, BitFlipsNeverYieldAFrame) {
  std::vector<uint8_t> wire = SampleFrameBytes();
  std::mt19937_64 rng(0xF00D);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> bad = wire;
    const int flips = 1 + static_cast<int>(rng() % 4);
    for (int i = 0; i < flips; ++i) {
      bad[rng() % bad.size()] ^= static_cast<uint8_t>(1u << (rng() % 8));
    }
    if (bad == wire) continue;
    FrameDecoder d;
    d.Feed(bad.data(), bad.size());
    // A flip in the length field may leave the decoder waiting for bytes
    // that will never come; every other flip must fail the checksum (or
    // magic / type / length-bound check). Neither path yields a frame.
    auto got = d.Next();
    if (got.ok()) {
      EXPECT_FALSE(got->has_value()) << "trial " << trial;
    } else {
      EXPECT_EQ(got.status().code(), StatusCode::kCorruption);
    }
  }
}

TEST(FrameFuzzTest, ForgedLengthRejectedBeforeAllocation) {
  std::vector<uint8_t> wire = SampleFrameBytes();
  // Overwrite the payload-length field with a huge value and feed only
  // the header: the decoder must reject at the length-bound check, not
  // wait for (or try to allocate) 4 GB of payload.
  const uint32_t huge = 0xFFFFFFFFu;
  std::memcpy(wire.data() + 21, &huge, sizeof(huge));
  FrameDecoder d;
  d.Feed(wire.data(), kFrameHeaderBytes);
  auto got = d.Next();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kCorruption);
}

TEST(FrameFuzzTest, BadMagicIsStickyCorruption) {
  std::vector<uint8_t> wire = SampleFrameBytes();
  wire[0] ^= 0x40;
  FrameDecoder d;
  d.Feed(wire.data(), wire.size());
  EXPECT_FALSE(d.Next().ok());
  // A pristine frame after the poison does not resynchronize the stream.
  std::vector<uint8_t> good = SampleFrameBytes();
  d.Feed(good.data(), good.size());
  auto again = d.Next();
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kCorruption);
}

TEST(FrameFuzzTest, UnknownFrameTypeRejectedEvenWithValidChecksum) {
  Frame f;
  f.type = static_cast<FrameType>(200);  // checksummed, but not a type
  f.from = 1;
  f.payload = {1, 2, 3};
  std::vector<uint8_t> wire = EncodeFrame(f);
  FrameDecoder d;
  d.Feed(wire.data(), wire.size());
  auto got = d.Next();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kCorruption);
}

TEST(FrameFuzzTest, RandomGarbageStreamsNeverCrash) {
  std::mt19937_64 rng(0xBEEF);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = 1 + rng() % 512;
    std::vector<uint8_t> junk(n);
    for (auto& b : junk) b = static_cast<uint8_t>(rng());
    FrameDecoder d;
    // Feed in random slice sizes to exercise the incremental path.
    size_t off = 0;
    while (off < junk.size()) {
      const size_t step = 1 + rng() % 64;
      const size_t take = std::min(step, junk.size() - off);
      d.Feed(junk.data() + off, take);
      off += take;
      auto got = d.Next();
      if (!got.ok()) break;  // corrupt and sticky: done with this stream
      if (got->has_value()) {
        // Only a byte-exact valid frame may surface, which random bytes
        // essentially cannot produce; treat it as a failure.
        ADD_FAILURE() << "garbage parsed as a frame in trial " << trial;
        break;
      }
    }
  }
}

TEST(FrameFuzzTest, CorruptSketchPayloadInsideValidFrameIsRejectedDownstream) {
  // Composition: the frame layer checksums transport corruption, the
  // serialize layer checksums application corruption. A frame built
  // around already-corrupt sketch bytes decodes fine — and the payload
  // is then rejected by DeserializeSketch.
  EcmConfig cfg = SketchCfg(31);
  EcmSketch<ExponentialHistogram> sketch(cfg);
  for (const StreamEvent& e : ZipfEvents(2'000, 1, 13)) {
    sketch.Add(e.key, e.ts);
  }
  std::vector<uint8_t> bytes = SerializeSketch(sketch);
  bytes[bytes.size() / 2] ^= 0x10;

  Frame f;
  f.type = FrameType::kSketch;
  f.from = 1;
  f.payload = bytes;
  std::vector<uint8_t> wire = EncodeFrame(f);
  FrameDecoder d;
  d.Feed(wire.data(), wire.size());
  auto got = d.Next();
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got->has_value());
  auto back = DeserializeSketch<ExponentialHistogram>((*got)->payload);
  EXPECT_FALSE(back.ok());
}

// --- Compressed frames across crash/rejoin epochs ---------------------------

/// Coordinator-side receive endpoint for compressed sketch frames: one
/// SketchReceiver keyed on the site's current kHello rejoin epoch. An
/// epoch change (crash/rejoin) drops the delta base, so compressed images
/// stamped with the old epoch reject with kStaleBase and only a fresh
/// full snapshot re-bases the channel.
class CompressedSink {
 public:
  explicit CompressedSink(const CompressionOptions& opts) : receiver_(opts) {}

  CoordinatorServer::FrameHandler handler() {
    return [this](const Frame& f) { Handle(f); };
  }

  void set_server(CoordinatorServer* server) {
    std::lock_guard<std::mutex> lk(mu_);
    server_ = server;
  }

  bool WaitForCount(size_t n, int timeout_ms = 5000) {
    std::unique_lock<std::mutex> lk(mu_);
    return cv_.wait_for(lk, std::chrono::milliseconds(timeout_ms),
                        [&] { return outcomes_.size() >= n; });
  }

  std::vector<std::pair<FrameType, StatusCode>> outcomes() const {
    std::lock_guard<std::mutex> lk(mu_);
    return outcomes_;
  }

  std::vector<uint8_t> received_image() const {
    std::lock_guard<std::mutex> lk(mu_);
    const EcmSketch<ExponentialHistogram>* sk = receiver_.sketch();
    return sk ? SerializeSketch(*sk) : std::vector<uint8_t>{};
  }

 private:
  void Handle(const Frame& f) {
    SketchWireKind kind;
    switch (f.type) {
      case FrameType::kSketch:
        kind = SketchWireKind::kFull;
        break;
      case FrameType::kSketchDelta:
        kind = SketchWireKind::kDelta;
        break;
      case FrameType::kSketchRlz:
        kind = SketchWireKind::kRlz;
        break;
      default:
        return;  // control / unrelated traffic
    }
    std::lock_guard<std::mutex> lk(mu_);
    // The connection's kHello epoch is authoritative: a rejoin bumps it,
    // which must invalidate any delta base from the previous life.
    const uint32_t epoch = server_->site(f.from).epoch;
    if (epoch != receiver_.epoch()) receiver_.set_epoch(epoch);
    auto got = receiver_.Receive(kind, f.payload.data(), f.payload.size());
    outcomes_.emplace_back(f.type,
                           got.ok() ? StatusCode::kOk : got.status().code());
    cv_.notify_all();
  }

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  CoordinatorServer* server_ = nullptr;
  SketchReceiver<ExponentialHistogram> receiver_;
  std::vector<std::pair<FrameType, StatusCode>> outcomes_;
};

TEST(SocketTransportTest, RejoinEpochInvalidatesDeltaBase) {
  CompressionOptions copts;
  copts.mode = CompressionMode::kDelta;
  CompressedSink sink(copts);
  CoordinatorServer::Options sopt;
  sopt.heartbeat_timeout_ms = 100;
  sopt.sweep_period_ms = 10;
  auto server = CoordinatorServer::Start(0, sopt, sink.handler());
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  sink.set_server(server->get());

  EcmConfig cfg = SketchCfg(61);
  EcmSketch<ExponentialHistogram> local(cfg);
  SketchSender<ExponentialHistogram> sender(copts);
  Timestamp ts = 0;
  auto feed = [&](int n, uint64_t seed) {
    for (const StreamEvent& e : ZipfEvents(static_cast<size_t>(n), 1, seed)) {
      local.Add(e.key, ++ts);
    }
  };
  auto ship = [&](SocketTransport* t) {
    SketchWireImage img = sender.Ship(local);
    const FrameType type = img.kind == SketchWireKind::kFull
                               ? FrameType::kSketch
                               : img.kind == SketchWireKind::kDelta
                                     ? FrameType::kSketchDelta
                                     : FrameType::kSketchRlz;
    ASSERT_TRUE(t->SendPayload(type, kCoordinatorNode,
                               std::move(img.bytes))
                    .ok());
    ASSERT_TRUE(t->Flush().ok());
  };

  SocketTransport::Options topt;
  topt.heartbeat_period_ms = 0;
  {
    auto client =
        SocketTransport::Connect("127.0.0.1", (*server)->port(), 9, topt);
    ASSERT_TRUE(client.ok());
    feed(3'000, 71);
    ship(client->get());  // full snapshot primes the channel
    feed(60, 72);
    ship(client->get());  // steady-state delta applies
    ASSERT_TRUE(sink.WaitForCount(2));
    // Site crashes: connection drops, coordinator marks it down.
  }
  ASSERT_TRUE(WaitFor(
      [&] { return (*server)->site(9).health == SiteHealth::kDown; }));

  // Fault injection: the site rejoins under epoch 2 but resumes from its
  // stale pre-crash channel state and immediately ships a delta stamped
  // with the old epoch. The coordinator must refuse it — never a silent
  // merge against the pre-crash base.
  topt.epoch = 2;
  auto again =
      SocketTransport::Connect("127.0.0.1", (*server)->port(), 9, topt);
  ASSERT_TRUE(again.ok());
  ASSERT_TRUE(WaitFor(
      [&] { return (*server)->site(9).epoch == 2; }));
  feed(60, 73);
  ship(again->get());  // stale-epoch delta: must reject
  ASSERT_TRUE(sink.WaitForCount(3));

  // The site learns the new epoch: full-snapshot resync, then deltas
  // flow again.
  sender.set_epoch(2);
  ship(again->get());
  feed(60, 74);
  ship(again->get());
  ASSERT_TRUE(sink.WaitForCount(5));

  auto outcomes = sink.outcomes();
  ASSERT_EQ(outcomes.size(), 5u);
  EXPECT_EQ(outcomes[0], std::make_pair(FrameType::kSketch, StatusCode::kOk));
  EXPECT_EQ(outcomes[1],
            std::make_pair(FrameType::kSketchDelta, StatusCode::kOk));
  EXPECT_EQ(outcomes[2],
            std::make_pair(FrameType::kSketchDelta, StatusCode::kStaleBase));
  EXPECT_EQ(outcomes[3], std::make_pair(FrameType::kSketch, StatusCode::kOk));
  EXPECT_EQ(outcomes[4],
            std::make_pair(FrameType::kSketchDelta, StatusCode::kOk));
  EXPECT_EQ((*server)->rejoins(), 1u);
  // After the resync the coordinator's decoded state is bit-identical to
  // the site's.
  EXPECT_EQ(sink.received_image(), SerializeSketch(local));
}

// --- Backpressure ---------------------------------------------------------

TEST(SocketTransportTest, BoundedQueueStillDeliversEverything) {
  FrameSink sink;
  auto server =
      CoordinatorServer::Start(0, CoordinatorServer::Options{}, sink.handler());
  ASSERT_TRUE(server.ok());

  SocketTransport::Options topt;
  topt.heartbeat_period_ms = 0;
  topt.max_queue_bytes = 64 * 1024;  // tiny bound: producers must block
  topt.max_batch_bytes = 16 * 1024;
  auto client =
      SocketTransport::Connect("127.0.0.1", (*server)->port(), 3, topt);
  ASSERT_TRUE(client.ok());

  constexpr int kFrames = 200;
  constexpr size_t kPayload = 8 * 1024;
  std::vector<uint8_t> payload(kPayload, 0xAB);
  for (int i = 0; i < kFrames; ++i) {
    ASSERT_TRUE((*client)
                    ->SendPayload(FrameType::kBlob, kCoordinatorNode, payload)
                    .ok());
  }
  ASSERT_TRUE((*client)->Flush().ok());
  ASSERT_TRUE(sink.WaitForCount(kFrames));

  std::vector<Frame> frames = sink.frames();
  ASSERT_EQ(frames.size(), static_cast<size_t>(kFrames));
  for (const Frame& f : frames) {
    EXPECT_EQ(f.payload.size(), kPayload);
  }
  EXPECT_EQ((*client)->stats().bytes,
            static_cast<uint64_t>(kFrames) * kPayload);
  EXPECT_EQ((*server)->stats().bytes,
            static_cast<uint64_t>(kFrames) * kPayload);
}

// --- Liveness edge cases ----------------------------------------------------

TEST(HeartbeatExpiredTest, DeadlineBoundaryIsExact) {
  // A heartbeat landing exactly at the deadline keeps the site alive;
  // one millisecond past it does not.
  static_assert(!HeartbeatExpired(0, 100));
  static_assert(!HeartbeatExpired(100, 100));
  static_assert(HeartbeatExpired(101, 100));
  // timeout 0: any nonzero silence downs the site, zero silence does not.
  static_assert(!HeartbeatExpired(0, 0));
  static_assert(HeartbeatExpired(1, 0));
  EXPECT_FALSE(HeartbeatExpired(2000, 2000));
  EXPECT_TRUE(HeartbeatExpired(2001, 2000));
}

TEST(SocketTransportTest, ZeroTimeoutDownsAnySilenceAndTrafficRevives) {
  FrameSink sink;
  CoordinatorServer::Options copt;
  copt.heartbeat_timeout_ms = 0;  // any silence at all is an outage
  copt.sweep_period_ms = 10;
  auto server = CoordinatorServer::Start(0, copt, sink.handler());
  ASSERT_TRUE(server.ok());

  SocketTransport::Options topt;
  topt.heartbeat_period_ms = 0;  // silent site
  auto client =
      SocketTransport::Connect("127.0.0.1", (*server)->port(), 6, topt);
  ASSERT_TRUE(client.ok());
  // The hello registers the site, then the first sweep already downs it.
  ASSERT_TRUE(WaitFor(
      [&] { return (*server)->site(6).health == SiteHealth::kDown; }));
  EXPECT_GE((*server)->downs(), 1u);
  EXPECT_EQ((*server)->rejoins(), 0u);

  // Traffic on the same connection revives it without a new hello...
  std::vector<uint8_t> payload{1, 2, 3};
  ASSERT_TRUE((*client)
                  ->SendPayload(FrameType::kBlob, kCoordinatorNode, payload)
                  .ok());
  ASSERT_TRUE(WaitFor(
      [&] { return (*server)->site(6).health == SiteHealth::kUp; }));
  EXPECT_EQ((*server)->site(6).joins, 1u);
  EXPECT_EQ((*server)->rejoins(), 0u);
  // ... and the next silent sweep downs it again: flapping without churn.
  ASSERT_TRUE(WaitFor(
      [&] { return (*server)->site(6).health == SiteHealth::kDown; }));
  EXPECT_GE((*server)->downs(), 2u);
}

TEST(SocketTransportTest, TimeoutSmallerThanHeartbeatPeriodFlaps) {
  // Misconfiguration the liveness layer must survive: the site beacons
  // slower than the coordinator's patience, so it flaps down between
  // beats and revives on each one — never a rejoin, never a join churn.
  FrameSink sink;
  CoordinatorServer::Options copt;
  copt.heartbeat_timeout_ms = 50;
  copt.sweep_period_ms = 10;
  auto server = CoordinatorServer::Start(0, copt, sink.handler());
  ASSERT_TRUE(server.ok());

  SocketTransport::Options topt;
  topt.heartbeat_period_ms = 150;  // 3x the coordinator's timeout
  auto client =
      SocketTransport::Connect("127.0.0.1", (*server)->port(), 7, topt);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(WaitFor([&] { return (*server)->downs() >= 2; }));
  EXPECT_EQ((*server)->rejoins(), 0u);
  EXPECT_EQ((*server)->site(7).joins, 1u);
  // The connection itself stayed healthy through the flapping.
  EXPECT_TRUE((*client)->status().ok());
  EXPECT_EQ((*client)->reconnects(), 0u);
}

TEST(SocketTransportTest, FlappingFasterThanSweeperIsCountedViaEof) {
  // The sweeper is nearly asleep (10 s cadence): down transitions for
  // these flaps can only come from the EOF path, and every one must be
  // counted even though no sweep runs between them.
  FrameSink sink;
  CoordinatorServer::Options copt;
  copt.heartbeat_timeout_ms = 10'000;
  copt.sweep_period_ms = 10'000;
  auto server = CoordinatorServer::Start(0, copt, sink.handler());
  ASSERT_TRUE(server.ok());

  constexpr int kFlaps = 3;
  for (int i = 0; i < kFlaps; ++i) {
    SocketTransport::Options topt;
    topt.heartbeat_period_ms = 0;
    topt.epoch = static_cast<uint32_t>(i + 1);
    auto client =
        SocketTransport::Connect("127.0.0.1", (*server)->port(), 8, topt);
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(WaitFor(
        [&] { return (*server)->site(8).health == SiteHealth::kUp; }));
    client->reset();  // abrupt close, no kDone: a crash, not a clean exit
    ASSERT_TRUE(WaitFor(
        [&] { return (*server)->site(8).health == SiteHealth::kDown; }));
  }
  SiteStatus st = (*server)->site(8);
  EXPECT_EQ(st.joins, static_cast<uint32_t>(kFlaps));
  EXPECT_EQ((*server)->rejoins(), static_cast<uint64_t>(kFlaps - 1));
  EXPECT_EQ((*server)->downs(), static_cast<uint64_t>(kFlaps));
  EXPECT_EQ(st.epoch, static_cast<uint32_t>(kFlaps));
}

// --- In-transport reconnect -------------------------------------------------

TEST(SocketTransportTest, ReconnectHealsAcrossServerRestart) {
  SocketTransport::Options topt;
  topt.heartbeat_period_ms = 20;  // beacons detect the dead link fast
  topt.reconnect_attempts = 50;
  topt.backoff = BackoffPolicy{/*initial_ms=*/10, /*max_ms=*/80,
                               /*multiplier=*/2.0, /*jitter=*/0.2,
                               /*seed=*/3};

  FrameSink sink_a;
  int port = 0;
  std::unique_ptr<SocketTransport> client;
  {
    auto server_a = CoordinatorServer::Start(0, CoordinatorServer::Options{},
                                             sink_a.handler());
    ASSERT_TRUE(server_a.ok());
    port = (*server_a)->port();
    auto connected = SocketTransport::Connect("127.0.0.1", port, 5, topt);
    ASSERT_TRUE(connected.ok());
    client = std::move(*connected);
    std::vector<uint8_t> payload{1, 1, 2, 3, 5};
    ASSERT_TRUE(client->SendPayload(FrameType::kBlob, kCoordinatorNode,
                                    payload)
                    .ok());
    ASSERT_TRUE(client->Flush().ok());
    ASSERT_TRUE(sink_a.WaitForCount(1));
    // Coordinator crashes: server torn down, port released.
  }

  // Restart on the same port. The bind can transiently refuse while the
  // old listener drains, so retry.
  FrameSink sink_b;
  std::unique_ptr<CoordinatorServer> server_b;
  ASSERT_TRUE(WaitFor([&] {
    auto restarted = CoordinatorServer::Start(
        port, CoordinatorServer::Options{}, sink_b.handler());
    if (!restarted.ok()) return false;
    server_b = std::move(*restarted);
    return true;
  }));

  // The transport heals on its own: heartbeat writes fail, the backoff
  // dial loop lands on the reborn coordinator, a fresh-epoch hello
  // re-registers the site.
  ASSERT_TRUE(WaitFor([&] { return client->reconnects() >= 1; }));
  ASSERT_TRUE(WaitFor(
      [&] { return server_b->site(5).health == SiteHealth::kUp; }));
  EXPECT_TRUE(client->status().ok());
  EXPECT_GE(client->epoch(), 2u);
  EXPECT_EQ(server_b->site(5).epoch, client->epoch());

  // The healed link carries traffic end to end.
  std::vector<uint8_t> payload{8, 13, 21};
  ASSERT_TRUE(
      client->SendPayload(FrameType::kBlob, kCoordinatorNode, payload).ok());
  ASSERT_TRUE(client->Flush().ok());
  ASSERT_TRUE(sink_b.WaitForCount(1));
  EXPECT_EQ(sink_b.frames()[0].payload, payload);
}

TEST(SocketTransportTest, FlushTimesOutWhileLinkIsDown) {
  SocketTransport::Options topt;
  topt.heartbeat_period_ms = 0;
  topt.reconnect_attempts = 1000;  // keep healing well past the Flush
  topt.backoff = BackoffPolicy{/*initial_ms=*/100, /*max_ms=*/200,
                               /*multiplier=*/2.0, /*jitter=*/0.0,
                               /*seed=*/1};
  std::unique_ptr<SocketTransport> client;
  FrameSink sink;
  {
    auto server = CoordinatorServer::Start(0, CoordinatorServer::Options{},
                                           sink.handler());
    ASSERT_TRUE(server.ok());
    auto connected =
        SocketTransport::Connect("127.0.0.1", (*server)->port(), 4, topt);
    ASSERT_TRUE(connected.ok());
    client = std::move(*connected);
  }
  // The server is gone. The first post-mortem write may still land in
  // the kernel buffer; the RST it provokes fails the next one for sure.
  std::vector<uint8_t> payload{42};
  ASSERT_TRUE(
      client->SendPayload(FrameType::kBlob, kCoordinatorNode, payload).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_TRUE(
      client->SendPayload(FrameType::kBlob, kCoordinatorNode, payload).ok());
  // The sender is now in its backoff dial loop with frames still queued:
  // a bounded Flush must report the missed deadline, retryably.
  Status s = client->Flush(/*timeout_ms=*/150);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(IsRetryable(s));
}

// --- Wire-level fault injection ---------------------------------------------

TEST(SocketTransportTest, SeverFaultHealsWithoutLosingFrames) {
  FrameSink sink;
  auto server =
      CoordinatorServer::Start(0, CoordinatorServer::Options{}, sink.handler());
  ASSERT_TRUE(server.ok());

  FaultPlanConfig fcfg;
  fcfg.sever_p = 1.0;  // the link dies behind every application frame
  FaultPlan plan(fcfg);
  SocketTransport::Options topt;
  topt.heartbeat_period_ms = 0;
  topt.reconnect_attempts = 20;
  topt.backoff = BackoffPolicy{/*initial_ms=*/5, /*max_ms=*/40,
                               /*multiplier=*/2.0, /*jitter=*/0.0,
                               /*seed=*/2};
  topt.fault_plan = &plan;
  auto client =
      SocketTransport::Connect("127.0.0.1", (*server)->port(), 9, topt);
  ASSERT_TRUE(client.ok());

  constexpr int kFrames = 5;
  for (uint8_t i = 0; i < kFrames; ++i) {
    ASSERT_TRUE((*client)
                    ->SendPayload(FrameType::kBlob, kCoordinatorNode,
                                  std::vector<uint8_t>{i})
                    .ok());
  }
  ASSERT_TRUE((*client)->Flush().ok());
  ASSERT_TRUE(sink.WaitForCount(kFrames));

  // Every frame reached the wire exactly once, in order, across five
  // injected outages each healed by an in-transport reconnect.
  std::vector<Frame> frames = sink.frames();
  ASSERT_EQ(frames.size(), static_cast<size_t>(kFrames));
  for (int i = 0; i < kFrames; ++i) {
    EXPECT_EQ(frames[static_cast<size_t>(i)].payload,
              std::vector<uint8_t>{static_cast<uint8_t>(i)});
  }
  EXPECT_EQ((*client)->fault_counters().severs,
            static_cast<uint64_t>(kFrames));
  ASSERT_TRUE(WaitFor([&] {
    return (*client)->reconnects() == static_cast<uint64_t>(kFrames);
  }));
  EXPECT_EQ((*client)->epoch(), 1u + kFrames);
  EXPECT_TRUE((*client)->status().ok());
  ASSERT_TRUE(WaitFor(
      [&] { return (*server)->site(9).epoch == (*client)->epoch(); }));
  EXPECT_EQ((*server)->rejoins(), static_cast<uint64_t>(kFrames));
  EXPECT_EQ((*server)->stats().messages, static_cast<uint64_t>(kFrames));
}

TEST(SocketTransportTest, CorruptFaultPassesFramingFailsAppChecksum) {
  // The plan flips a payload bit *before* framing: the frame checksum is
  // valid (the stream survives), and the corruption must be caught by
  // the application-level dist/serialize checksum instead.
  FrameSink sink;
  auto server =
      CoordinatorServer::Start(0, CoordinatorServer::Options{}, sink.handler());
  ASSERT_TRUE(server.ok());

  FaultPlanConfig fcfg;
  fcfg.corrupt_p = 1.0;
  FaultPlan plan(fcfg);
  SocketTransport::Options topt;
  topt.heartbeat_period_ms = 0;
  topt.fault_plan = &plan;
  auto client =
      SocketTransport::Connect("127.0.0.1", (*server)->port(), 2, topt);
  ASSERT_TRUE(client.ok());

  EcmConfig cfg = SketchCfg(83);
  EcmSketch<ExponentialHistogram> sketch(cfg);
  for (const StreamEvent& e : ZipfEvents(2'000, 1, 17)) {
    sketch.Add(e.key, e.ts);
  }
  std::vector<uint8_t> wire = SerializeSketch(sketch);
  ASSERT_TRUE(
      (*client)->SendPayload(FrameType::kSketch, kCoordinatorNode, wire).ok());
  ASSERT_TRUE((*client)->Flush().ok());
  ASSERT_TRUE(sink.WaitForCount(1));

  EXPECT_EQ((*client)->fault_counters().corrupts, 1u);
  EXPECT_EQ((*server)->corrupt_streams(), 0u);  // framing passed
  std::vector<Frame> frames = sink.frames();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_NE(frames[0].payload, wire);
  auto back = DeserializeSketch<ExponentialHistogram>(frames[0].payload);
  ASSERT_FALSE(back.ok());  // ... but serialize's checksum catches it
  EXPECT_EQ(back.status().code(), StatusCode::kCorruption);
}

TEST(SocketTransportTest, DropAndDelayFaultsAtTheWire) {
  FrameSink sink;
  auto server =
      CoordinatorServer::Start(0, CoordinatorServer::Options{}, sink.handler());
  ASSERT_TRUE(server.ok());

  // Drops: offered traffic is charged, nothing arrives.
  FaultPlanConfig drop_cfg;
  drop_cfg.drop_p = 1.0;
  FaultPlan drop_plan(drop_cfg);
  SocketTransport::Options topt;
  topt.heartbeat_period_ms = 0;
  topt.fault_plan = &drop_plan;
  {
    auto client =
        SocketTransport::Connect("127.0.0.1", (*server)->port(), 3, topt);
    ASSERT_TRUE(client.ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE((*client)
                      ->SendPayload(FrameType::kBlob, kCoordinatorNode,
                                    std::vector<uint8_t>{1, 2})
                      .ok());
    }
    ASSERT_TRUE((*client)->Flush().ok());
    EXPECT_EQ((*client)->stats().messages, 4u);  // offered, per PR 5 currency
    EXPECT_EQ((*client)->fault_counters().drops, 4u);
  }
  EXPECT_EQ((*server)->stats().messages, 0u);

  // Delays: reordering, never loss — Flush releases the stragglers.
  FaultPlanConfig delay_cfg;
  delay_cfg.delay_p = 1.0;
  delay_cfg.max_delay_frames = 3;
  FaultPlan delay_plan(delay_cfg);
  topt.fault_plan = &delay_plan;
  auto client =
      SocketTransport::Connect("127.0.0.1", (*server)->port(), 5, topt);
  ASSERT_TRUE(client.ok());
  constexpr int kFrames = 6;
  for (uint8_t i = 0; i < kFrames; ++i) {
    ASSERT_TRUE((*client)
                    ->SendPayload(FrameType::kBlob, kCoordinatorNode,
                                  std::vector<uint8_t>{i})
                    .ok());
  }
  ASSERT_TRUE((*client)->Flush().ok());
  ASSERT_TRUE(sink.WaitForCount(kFrames));
  EXPECT_EQ((*client)->fault_counters().delays,
            static_cast<uint64_t>(kFrames));
  std::vector<int> seen(kFrames, 0);
  for (const Frame& f : sink.frames()) {
    ASSERT_EQ(f.payload.size(), 1u);
    ++seen[f.payload[0]];
  }
  for (int c : seen) EXPECT_EQ(c, 1);
}

// --- Coordinator-side hello refusal ----------------------------------------

TEST(SocketTransportTest, HelloRefusalWindowOutlastedByBackoffRetries) {
  // The coordinator refuses node 7's first two hello attempts (a
  // partition in attempt space). The site's reconnect machinery must
  // retry through the window and register on the third attempt.
  FaultPlanConfig fcfg;
  fcfg.hello_refusals.push_back(
      {/*node=*/7, /*refuse_from=*/0, /*refuse_count=*/2});
  FaultPlan plan(fcfg);
  FrameSink sink;
  CoordinatorServer::Options copt;
  copt.fault_plan = &plan;
  auto server = CoordinatorServer::Start(0, copt, sink.handler());
  ASSERT_TRUE(server.ok());

  SocketTransport::Options topt;
  topt.heartbeat_period_ms = 15;  // beacons surface the refused link fast
  topt.reconnect_attempts = 30;
  topt.backoff = BackoffPolicy{/*initial_ms=*/5, /*max_ms=*/40,
                               /*multiplier=*/2.0, /*jitter=*/0.0,
                               /*seed=*/4};
  auto client =
      SocketTransport::Connect("127.0.0.1", (*server)->port(), 7, topt);
  ASSERT_TRUE(client.ok());

  ASSERT_TRUE(WaitFor(
      [&] { return (*server)->site(7).health == SiteHealth::kUp; }));
  EXPECT_EQ((*server)->hello_refusals(), 2u);
  SiteStatus st = (*server)->site(7);
  EXPECT_EQ(st.hello_attempts, 3u);
  EXPECT_EQ(st.joins, 1u);  // the refused attempts never registered
  EXPECT_EQ((*server)->rejoins(), 0u);
  EXPECT_GE((*client)->reconnects(), 2u);
  EXPECT_GE((*client)->epoch(), 3u);
  EXPECT_EQ(st.epoch, (*client)->epoch());

  // The admitted link carries traffic.
  std::vector<uint8_t> payload{7, 7, 7};
  ASSERT_TRUE(
      (*client)->SendPayload(FrameType::kBlob, kCoordinatorNode, payload).ok());
  ASSERT_TRUE((*client)->Flush().ok());
  ASSERT_TRUE(sink.WaitForCount(1));
  EXPECT_TRUE((*client)->status().ok());
}

}  // namespace
}  // namespace ecm
