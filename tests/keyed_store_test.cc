// Keyed counter store tests: an oracle differential against a naive
// map<key, ExponentialHistogram> reference driven through the store's
// observers (bit-identity for admitted keys, including variance),
// sketch-guarded admission/eviction behaviour, the O(expiring keys)
// idle-tick property, and randomized fuzz of the robin-hood table's
// incremental rehash racing wheel-driven eviction.

#include "src/engine/keyed_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/engine/continuous.h"
#include "src/util/random.h"
#include "src/window/exponential_histogram.h"

namespace ecm {
namespace {

using EcmEh = EcmSketch<ExponentialHistogram>;

EcmConfig SketchConfig(double eps, uint64_t window) {
  auto cfg = EcmConfig::Create(eps, 0.1, WindowMode::kTimeBased, window,
                               /*seed=*/4242);
  EXPECT_TRUE(cfg.ok());
  return *cfg;
}

// ---------------------------------------------------------------------------
// ExpiryWheel
// ---------------------------------------------------------------------------

TEST(ExpiryWheelTest, FiresInDeadlineOrderAtExactTimes) {
  ExpiryWheel wheel(/*start=*/17);
  constexpr uint32_t kItems = 2000;
  wheel.EnsureItems(kItems);
  Rng rng(0x57EE1001);
  std::vector<Timestamp> deadline(kItems);
  for (uint32_t i = 0; i < kItems; ++i) {
    // Mix of near, mid and very far deadlines to cover all wheel levels.
    const int shape = static_cast<int>(rng.Uniform(3));
    Timestamp d = 18;
    if (shape == 0) d += rng.Uniform(1 << 10);
    if (shape == 1) d += rng.Uniform(1 << 22);
    if (shape == 2) d += rng.Uniform(1ULL << 44);
    deadline[i] = d;
    wheel.Schedule(i, d);
  }
  EXPECT_EQ(wheel.scheduled_count(), kItems);

  std::vector<std::pair<Timestamp, uint32_t>> fired;
  auto fire = [&](uint32_t item) { fired.emplace_back(wheel.now(), item); };
  Timestamp now = 17;
  while (wheel.scheduled_count() > 0) {
    now += 1 + rng.Uniform(1ULL << 40);
    wheel.Advance(now, fire);
  }
  ASSERT_EQ(fired.size(), kItems);
  for (size_t i = 0; i < fired.size(); ++i) {
    EXPECT_EQ(fired[i].first, deadline[fired[i].second]) << "item " << i;
    if (i > 0) {
      EXPECT_LE(fired[i - 1].first, fired[i].first);
    }
  }
}

TEST(ExpiryWheelTest, CancelAndRescheduleRespected) {
  ExpiryWheel wheel;
  wheel.EnsureItems(8);
  wheel.Schedule(0, 100);
  wheel.Schedule(1, 100);
  wheel.Schedule(2, 50);
  wheel.Cancel(1);
  wheel.Schedule(2, 900);  // reschedule away from 50
  EXPECT_TRUE(wheel.IsScheduled(0));
  EXPECT_FALSE(wheel.IsScheduled(1));
  EXPECT_EQ(wheel.DeadlineOf(2), 900u);

  std::vector<uint32_t> fired;
  wheel.Advance(500, [&](uint32_t item) { fired.push_back(item); });
  EXPECT_EQ(fired, std::vector<uint32_t>{0});
  wheel.Advance(1000, [&](uint32_t item) { fired.push_back(item); });
  EXPECT_EQ(fired, (std::vector<uint32_t>{0, 2}));
  EXPECT_EQ(wheel.scheduled_count(), 0u);
}

TEST(ExpiryWheelTest, RescheduleFromFireCallback) {
  ExpiryWheel wheel;
  wheel.EnsureItems(1);
  wheel.Schedule(0, 10);
  int fires = 0;
  wheel.Advance(100, [&](uint32_t item) {
    ++fires;
    if (fires < 3) wheel.Schedule(item, wheel.now() + 20);
  });
  // 10 -> 30 -> 50, the third fire leaves it unscheduled.
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(wheel.scheduled_count(), 0u);
}

// ---------------------------------------------------------------------------
// KeyTable
// ---------------------------------------------------------------------------

namespace {
// Resolver for standalone KeyTable tests: values are indices into an
// external key log, mirroring how the store resolves record indices.
uint64_t TestKeyOf(const void* ctx, uint32_t val) {
  return (*static_cast<const std::vector<uint64_t>*>(ctx))[val];
}
}  // namespace

TEST(KeyTableTest, RandomizedAgainstUnorderedMap) {
  std::vector<uint64_t> key_of_val;
  KeyTable table(&TestKeyOf, &key_of_val, 64);
  std::unordered_map<uint64_t, uint32_t> ref;
  Rng rng(0x7AB1E003);
  bool saw_rehash = false;
  for (int op = 0; op < 60000; ++op) {
    const uint64_t key = 1 + rng.Uniform(9000);
    const uint64_t what = rng.Uniform(10);
    auto it = ref.find(key);
    if (what < 6) {
      if (it == ref.end()) {
        const uint32_t val = static_cast<uint32_t>(key_of_val.size());
        key_of_val.push_back(key);
        table.Insert(key, val);
        ref.emplace(key, val);
      }
    } else if (what < 8) {
      EXPECT_EQ(table.Erase(key), it != ref.end());
      if (it != ref.end()) ref.erase(it);
    } else {
      const uint32_t got = table.Find(key);
      if (it == ref.end()) {
        EXPECT_EQ(got, KeyTable::kNotFound);
      } else {
        EXPECT_EQ(got, it->second);
      }
    }
    saw_rehash = saw_rehash || table.RehashInProgress();
    ASSERT_EQ(table.size(), ref.size());
  }
  EXPECT_TRUE(saw_rehash);
  EXPECT_GT(table.rehash_steps(), 0u);
  for (const auto& [key, val] : ref) EXPECT_EQ(table.Find(key), val);
}

// ---------------------------------------------------------------------------
// KeyedCounterStore: oracle differential
// ---------------------------------------------------------------------------

// Naive per-key reference: three plain ExponentialHistograms fed from the
// store's own observer stream (admit / exact-add / wheel-expire / evict),
// which is exactly the determinism contract the header documents. Every
// resident key's point and variance answers must be bit-identical.
struct RefKey {
  ExponentialHistogram sum;
  ExponentialHistogram sumsq;
  ExponentialHistogram nevents;
  RefKey(double eps, uint64_t window)
      : sum({eps, window}), sumsq({eps, window}), nevents({eps, window}) {}
};

TEST(KeyedStoreTest, OracleDifferentialBitIdentity) {
  KeyedStoreConfig cfg;
  cfg.epsilon = 0.1;
  cfg.window_len = 512;
  cfg.track_variance = true;
  KeyedCounterStore store(cfg);  // no sketch: admit-all, churn via expiry

  std::map<uint64_t, RefKey> ref;
  store.on_admit = [&](uint64_t key, Timestamp) {
    ASSERT_TRUE(ref.try_emplace(key, cfg.epsilon, cfg.window_len).second);
  };
  store.on_evict = [&](uint64_t key, Timestamp) {
    ASSERT_EQ(ref.erase(key), 1u);
  };
  store.on_expire = [&](uint64_t key, Timestamp now) {
    auto it = ref.find(key);
    ASSERT_NE(it, ref.end());
    it->second.sum.Expire(now);
    it->second.sumsq.Expire(now);
    it->second.nevents.Expire(now);
  };
  store.on_exact_add = [&](uint64_t key, Timestamp ts, uint64_t weight) {
    auto it = ref.find(key);
    ASSERT_NE(it, ref.end());
    it->second.sum.Add(ts, weight);
    it->second.sumsq.Add(ts, weight * weight);
    it->second.nevents.Add(ts, 1);
  };

  Rng rng(0x0D1FF7777);
  Timestamp ts = 1;
  std::vector<StreamEvent> batch;
  for (int op = 0; op < 3000; ++op) {
    const uint64_t what = rng.Uniform(100);
    if (what < 60) {
      ts += rng.Uniform(cfg.window_len / 8 + 1);
      const uint64_t weight = 1 + (rng.Uniform(5) == 0 ? rng.Uniform(999) : 0);
      store.Add(1 + rng.Uniform(60), ts, weight);
    } else if (what < 80) {
      batch.clear();
      const size_t n = 1 + rng.Uniform(32);
      for (size_t i = 0; i < n; ++i) {
        ts += rng.Uniform(4);
        batch.push_back(StreamEvent{ts, 1 + rng.Uniform(60), 0});
      }
      store.AddBatch(batch.data(), batch.size());
    } else if (what < 90) {
      // Idle gap: wheel fires without any adds.
      ts += rng.Uniform(2 * cfg.window_len);
      store.Advance(ts);
    }

    // Full cross-check of the resident set at a randomized query time.
    ASSERT_EQ(store.LiveKeys(), ref.size()) << "op " << op;
    const Timestamp now = store.clock() + rng.Uniform(cfg.window_len / 4 + 1);
    const uint64_t range = 1 + rng.Uniform(cfg.window_len + 64);
    for (auto& [key, rk] : ref) {
      double est = 0.0;
      ASSERT_TRUE(store.TryPointQuery(key, now, range, &est))
          << "op " << op << " key " << key;
      EXPECT_EQ(est, rk.sum.Estimate(now, range))
          << "op " << op << " key " << key << " now=" << now
          << " range=" << range;

      KeyVarianceStats vs;
      ASSERT_TRUE(store.TryVarianceQuery(key, now, range, &vs));
      const double rcount = rk.nevents.Estimate(now, range);
      const double rsum = rk.sum.Estimate(now, range);
      EXPECT_EQ(vs.count, rcount);
      EXPECT_EQ(vs.sum, rsum);
      if (rcount > 0.0) {
        const double rmean = rsum / rcount;
        EXPECT_EQ(vs.mean, rmean);
        EXPECT_EQ(vs.variance,
                  rk.sumsq.Estimate(now, range) / rcount - rmean * rmean);
      } else {
        EXPECT_EQ(vs.mean, 0.0);
        EXPECT_EQ(vs.variance, 0.0);
      }
    }
    // Non-resident keys answer false (sketch fallback is the caller's).
    const uint64_t probe = 1 + rng.Uniform(60);
    if (!ref.count(probe)) {
      double est = 0.0;
      EXPECT_FALSE(store.TryPointQuery(probe, now, cfg.window_len, &est));
    }
  }
  EXPECT_GT(store.stats().evictions, 0u) << "test never exercised eviction";
  EXPECT_GT(store.stats().admissions, store.stats().evictions);
}

// Exact variance on a window that fully covers a handful of arrivals
// (no EH approximation in play): textbook values, not just self-identity.
TEST(KeyedStoreTest, VarianceMatchesClosedForm) {
  KeyedStoreConfig cfg;
  cfg.epsilon = 0.01;
  cfg.window_len = 1 << 20;
  cfg.track_variance = true;
  KeyedCounterStore store(cfg);
  const uint64_t weights[] = {2, 4, 4, 4, 5, 5, 7, 9};
  Timestamp ts = 100;
  for (uint64_t w : weights) store.Add(42, ts += 10, w);
  KeyVarianceStats vs;
  ASSERT_TRUE(store.TryVarianceQuery(42, ts, cfg.window_len, &vs));
  EXPECT_DOUBLE_EQ(vs.count, 8.0);
  EXPECT_DOUBLE_EQ(vs.sum, 40.0);
  EXPECT_DOUBLE_EQ(vs.mean, 5.0);
  EXPECT_DOUBLE_EQ(vs.variance, 4.0);  // E[w^2] = 29, 29 - 25
  double point = 0.0;
  ASSERT_TRUE(store.TryPointQuery(42, ts, cfg.window_len, &point));
  EXPECT_DOUBLE_EQ(point, 40.0);
}

// ---------------------------------------------------------------------------
// Sketch-guarded admission / eviction / capacity
// ---------------------------------------------------------------------------

TEST(KeyedStoreTest, SketchGuardsAdmission) {
  const uint64_t kWindow = 1000;
  EcmEh sketch(SketchConfig(0.05, kWindow));
  KeyedStoreConfig cfg;
  cfg.epsilon = 0.05;
  cfg.window_len = kWindow;
  cfg.admit_threshold = 60.0;
  KeyedCounterStore store(cfg, &sketch);

  // One hot key (weight floods past the threshold), many one-shot colds.
  const uint64_t kHot = 7;
  Rng rng(0xAD317);
  Timestamp ts = 1;
  uint64_t cold_events = 0;
  for (int i = 0; i < 2000; ++i) {
    ts += 1;
    uint64_t key;
    uint64_t weight;
    if (rng.Uniform(4) == 0) {
      key = kHot;
      weight = 10;
    } else {
      key = 1000 + rng.Uniform(100000);  // effectively never repeats
      weight = 1;
      ++cold_events;
    }
    sketch.Add(key, ts, weight);  // sketch first, store second
    store.Add(key, ts, weight);
  }
  EXPECT_TRUE(store.Contains(kHot));
  // The admission gate kept the cold universe out of exact memory.
  EXPECT_LT(store.LiveKeys(), 1 + cold_events / 10);
  EXPECT_GT(store.stats().rejected_events, cold_events / 2);

  // Cold keys stay sketch-only.
  double est = 0.0;
  EXPECT_FALSE(store.TryPointQuery(999999, ts, kWindow, &est));

  // The hot key's exact estimate tracks its true in-window total.
  double exact = 0.0;
  ASSERT_TRUE(store.TryPointQuery(kHot, ts, kWindow, &exact));
  EXPECT_GT(exact, 60.0);

  // Cooling off: no more arrivals, clock runs past the window; the wheel
  // evicts the hot key back to sketch-only coverage and frees its memory.
  store.Advance(ts + 4 * kWindow);
  EXPECT_FALSE(store.Contains(kHot));
  EXPECT_EQ(store.LiveKeys(), 0u);
  EXPECT_GT(store.stats().evictions, 0u);
}

TEST(KeyedStoreTest, CapacityBudgetRefusesAndRationsAscending) {
  KeyedStoreConfig cfg;
  cfg.window_len = 1000;
  cfg.max_keys = 4;
  KeyedCounterStore store(cfg);
  // One batch offering 8 distinct keys: the 4 smallest win the budget.
  std::vector<StreamEvent> batch;
  const uint64_t keys[] = {90, 10, 70, 30, 50, 20, 80, 60};
  Timestamp ts = 0;
  for (uint64_t k : keys) batch.push_back(StreamEvent{++ts, k, 0});
  store.AddBatch(batch.data(), batch.size());
  EXPECT_EQ(store.LiveKeys(), 4u);
  for (uint64_t k : {10, 20, 30, 50}) EXPECT_TRUE(store.Contains(k)) << k;
  for (uint64_t k : {60, 70, 80, 90}) EXPECT_FALSE(store.Contains(k)) << k;
  EXPECT_EQ(store.stats().capacity_refusals, 4u);
  EXPECT_EQ(store.stats().rejected_events, 4u);

  // Single-add path refuses too until eviction frees room.
  store.Add(5, ++ts);
  EXPECT_FALSE(store.Contains(5));
  EXPECT_EQ(store.stats().capacity_refusals, 5u);
}

// ---------------------------------------------------------------------------
// Idle-tick cost: O(keys whose oldest bucket can expire), not O(live)
// ---------------------------------------------------------------------------

TEST(KeyedStoreTest, IdleTicksTouchNoKeys) {
  KeyedStoreConfig cfg;
  cfg.epsilon = 0.1;
  cfg.window_len = 1 << 20;
  KeyedCounterStore store(cfg);
  constexpr uint64_t kKeys = 1000;
  Timestamp ts = 0;
  for (uint64_t k = 1; k <= kKeys; ++k) store.Add(k, ++ts);
  ASSERT_EQ(store.LiveKeys(), kKeys);
  ASSERT_EQ(store.stats().wheel_keys_touched, 0u);

  // Thousands of clock advances across the span where no key's content
  // can leave the window: zero keys touched, O(1) per call.
  const Timestamp safe_end = 1 + cfg.window_len - 8;
  for (Timestamp t = ts; t < safe_end; t += (safe_end - ts) / 5000 + 1) {
    store.Advance(t);
  }
  EXPECT_EQ(store.stats().wheel_keys_touched, 0u)
      << "idle advance touched keys despite nothing expiring";

  // Jumping past everyone's expiry touches each key at most twice: once
  // when the window boundary first passes time zero (full coverage ends,
  // so the estimate legitimately changes) and once when its bucket
  // expires and the key is evicted — O(expiring keys), never O(ticks).
  store.Advance(ts + 2 * cfg.window_len);
  EXPECT_GE(store.stats().wheel_keys_touched, kKeys);
  EXPECT_LE(store.stats().wheel_keys_touched, 2 * kKeys);
  EXPECT_EQ(store.stats().evictions, kKeys);
  EXPECT_EQ(store.LiveKeys(), 0u);
}

// ---------------------------------------------------------------------------
// Rehash-under-expiry fuzz (run under ASan/TSan in CI)
// ---------------------------------------------------------------------------

TEST(KeyedStoreTest, RehashUnderExpiryFuzz) {
  KeyedStoreConfig cfg;
  cfg.epsilon = 0.2;
  cfg.window_len = 4096;
  KeyedCounterStore store(cfg);
  std::unordered_set<uint64_t> resident;
  store.on_admit = [&](uint64_t key, Timestamp) { resident.insert(key); };
  store.on_evict = [&](uint64_t key, Timestamp) { resident.erase(key); };

  Rng rng(0xF022EA51);
  Timestamp ts = 1;
  std::vector<StreamEvent> batch;
  for (int op = 0; op < 60000; ++op) {
    const uint64_t key = 1 + rng.Uniform(20000);
    const uint64_t what = rng.Uniform(100);
    if (what < 70) {
      ts += rng.Uniform(2);
      store.Add(key, ts);
    } else if (what < 90) {
      batch.clear();
      for (size_t i = 1 + rng.Uniform(16); i > 0; --i) {
        ts += rng.Uniform(2);
        batch.push_back(StreamEvent{ts, 1 + rng.Uniform(20000), 0});
      }
      store.AddBatch(batch.data(), batch.size());
    } else {
      // Expiry bursts race the incremental rehash drain.
      ts += rng.Uniform(cfg.window_len / 2);
      store.Advance(ts);
    }
    if (op % 997 == 0) {
      ASSERT_EQ(store.LiveKeys(), resident.size()) << "op " << op;
      for (int probe = 0; probe < 50; ++probe) {
        const uint64_t k = 1 + rng.Uniform(20000);
        ASSERT_EQ(store.Contains(k), resident.count(k) > 0)
            << "op " << op << " key " << k;
      }
    }
  }
  ASSERT_EQ(store.LiveKeys(), resident.size());
  // Drain the world; everything must unwind cleanly.
  store.Advance(ts + 4 * cfg.window_len);
  EXPECT_EQ(store.LiveKeys(), 0u);
  EXPECT_TRUE(resident.empty());
  EXPECT_EQ(store.stats().admissions, store.stats().evictions);
}

// ---------------------------------------------------------------------------
// Engine integration
// ---------------------------------------------------------------------------

TEST(KeyedStoreTest, EngineCoFeedsAndPrefersExactAnswers) {
  StreamEngine::Options opts;
  opts.sketch = SketchConfig(0.1, 1000);
  StreamEngine engine(opts);
  KeyedStoreConfig cfg;
  cfg.epsilon = 0.1;
  cfg.window_len = 1000;
  cfg.admit_threshold = 5.0;
  KeyedCounterStore* store = engine.EnableKeyedStore(cfg);
  ASSERT_NE(store, nullptr);
  ASSERT_EQ(engine.keyed_store(), store);

  Timestamp ts = 0;
  for (int i = 0; i < 50; ++i) engine.Ingest(7, ++ts);
  engine.Ingest(12345, ++ts);  // one-shot cold key

  bool exact = false;
  const double hot = engine.PointQueryExact(7, 1000, &exact);
  EXPECT_TRUE(exact);
  // Exact counter from the admission point on: the few arrivals before
  // the sketch estimate crossed the threshold are not in it.
  EXPECT_GE(hot, 40.0);
  EXPECT_LE(hot, 50.0);

  const double cold = engine.PointQueryExact(12345, 1000, &exact);
  EXPECT_FALSE(exact);  // fell back to the sketch
  EXPECT_GE(cold, 1.0);
  EXPECT_GT(engine.MemoryBytes(), store->MemoryBytes());
}

}  // namespace
}  // namespace ecm
