// Tests for the exact sliding-window counter (the ground-truth reference).

#include "src/window/exact_window.h"

#include <gtest/gtest.h>

namespace ecm {
namespace {

TEST(ExactWindowTest, EmptyEstimatesZero) {
  ExactWindow ew({100});
  EXPECT_EQ(ew.Estimate(10, 100), 0.0);
}

TEST(ExactWindowTest, CountsExactly) {
  ExactWindow ew({100});
  ew.Add(1);
  ew.Add(5, 3);
  ew.Add(50);
  EXPECT_EQ(ew.Estimate(50, 100), 5.0);
  EXPECT_EQ(ew.Estimate(50, 45), 1.0);   // only ts=50 in (5, 50]
  EXPECT_EQ(ew.Estimate(50, 46), 4.0);   // ts=5 (x3) and ts=50
}

TEST(ExactWindowTest, ExpiresOutsideWindow) {
  ExactWindow ew({10});
  for (Timestamp t = 1; t <= 100; ++t) ew.Add(t);
  EXPECT_EQ(ew.Estimate(100, 10), 10.0);
  EXPECT_EQ(ew.lifetime_count(), 100u);
  // Memory holds ~window content only.
  EXPECT_LT(ew.MemoryBytes(), sizeof(ExactWindow) + 20 * 16);
}

TEST(ExactWindowTest, RunLengthCompressesSameTimestamp) {
  ExactWindow ew({1000});
  for (int i = 0; i < 1000; ++i) ew.Add(7);
  EXPECT_EQ(ew.Estimate(7, 1000), 1000.0);
  EXPECT_LT(ew.MemoryBytes(), sizeof(ExactWindow) + 4 * 16);
}

TEST(ExactWindowTest, AdvancedClockExcludesExpired) {
  ExactWindow ew({100});
  for (Timestamp t = 1; t <= 60; ++t) ew.Add(t);
  EXPECT_EQ(ew.Estimate(120, 100), 40.0);  // only (20, 120]
}

TEST(ExactWindowTest, BucketsAreZeroWidthRuns) {
  ExactWindow ew({100});
  ew.Add(3, 2);
  ew.Add(9);
  auto buckets = ew.Buckets();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].start, buckets[0].end);
  EXPECT_EQ(buckets[0].size, 2u);
  EXPECT_EQ(buckets[1].end, 9u);
}

TEST(ExactWindowTest, SerializeRoundTrip) {
  ExactWindow ew({500});
  for (Timestamp t = 1; t <= 700; t += 3) ew.Add(t, 1 + t % 4);
  ByteWriter w;
  ew.SerializeTo(&w);
  ByteReader r(w.bytes());
  auto back = ExactWindow::Deserialize(&r);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(back->lifetime_count(), ew.lifetime_count());
  // The loop's last Add lands on t=700, so query at the counter's clock
  // (Estimate requires now >= the last Add timestamp).
  const Timestamp now = ew.last_timestamp();
  for (uint64_t range : {50u, 200u, 500u}) {
    EXPECT_EQ(back->Estimate(now, range), ew.Estimate(now, range));
  }
}

TEST(ExactWindowTest, DeserializeRejectsGarbage) {
  std::vector<uint8_t> junk = {0x11};
  ByteReader r(junk.data(), junk.size());
  EXPECT_FALSE(ExactWindow::Deserialize(&r).ok());
}

}  // namespace
}  // namespace ecm
