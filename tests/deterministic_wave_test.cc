// Tests for the deterministic wave: exactness at level 0, the ε property
// under sweeps, level provisioning from u(N,S), bucket-log reconstruction,
// and serialization.

#include "src/window/deterministic_wave.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/util/random.h"

namespace ecm {
namespace {

class ExactCounter {
 public:
  void Add(Timestamp ts, uint64_t count = 1) {
    for (uint64_t i = 0; i < count; ++i) stamps_.push_back(ts);
  }
  uint64_t Count(Timestamp now, uint64_t range) const {
    Timestamp boundary = WindowStart(now, range);
    uint64_t n = 0;
    for (Timestamp t : stamps_) {
      if (t > boundary && t <= now) ++n;
    }
    return n;
  }

 private:
  std::vector<Timestamp> stamps_;
};

TEST(DeterministicWaveTest, EmptyEstimatesZero) {
  DeterministicWave dw({0.1, 100, 1000});
  EXPECT_EQ(dw.Estimate(50, 100), 0.0);
}

TEST(DeterministicWaveTest, ExactForSmallStreams) {
  // While level 0 still holds every arrival, queries are exact.
  DeterministicWave dw({0.2, 1000, 1 << 16});
  for (Timestamp t = 1; t <= 5; ++t) dw.Add(t);
  EXPECT_EQ(dw.Estimate(5, 1000), 5.0);
  EXPECT_EQ(dw.Estimate(5, 2), 2.0);
}

TEST(DeterministicWaveTest, LevelProvisioningGrowsWithBound) {
  DeterministicWave small({0.1, 100, 100});
  DeterministicWave large({0.1, 100, 1 << 24});
  EXPECT_LT(small.num_levels(), large.num_levels());
}

TEST(DeterministicWaveTest, FullWindowQuery) {
  DeterministicWave dw({0.1, 1 << 20, 1 << 20});
  for (Timestamp t = 1; t <= 20000; ++t) dw.Add(t);
  double est = dw.Estimate(20000, 1 << 20);
  EXPECT_NEAR(est, 20000.0, 20000.0 * 0.1 + 1.0);
}

TEST(DeterministicWaveTest, ExpiryRespectsWindow) {
  DeterministicWave dw({0.1, 100, 1 << 16});
  for (Timestamp t = 1; t <= 1000; ++t) dw.Add(t);
  double est = dw.Estimate(1000, 100);
  EXPECT_NEAR(est, 100.0, 100.0 * 0.1 + 1.0);
}

TEST(DeterministicWaveTest, EstimateAtAdvancedClock) {
  DeterministicWave dw({0.1, 100, 1 << 16});
  for (Timestamp t = 1; t <= 60; ++t) dw.Add(t);
  double est = dw.Estimate(120, 100);
  EXPECT_NEAR(est, 40.0, 40.0 * 0.1 + 1.0);
}

TEST(DeterministicWaveTest, MemoryIndependentOfStreamLength) {
  DeterministicWave dw({0.1, 1u << 20, 1 << 20});
  for (Timestamp t = 1; t <= 1000; ++t) dw.Add(t);
  size_t early = dw.MemoryBytes();
  for (Timestamp t = 1001; t <= 100000; ++t) dw.Add(t);
  size_t late = dw.MemoryBytes();
  EXPECT_LT(late, early * 3);  // bounded by levels × capacity
}

struct DwSweepParam {
  double epsilon;
  int burst;
  uint64_t gap_max;
};

class DwErrorSweep : public ::testing::TestWithParam<DwSweepParam> {};

TEST_P(DwErrorSweep, ErrorWithinEpsilon) {
  const DwSweepParam p = GetParam();
  constexpr uint64_t kWindow = 50000;
  DeterministicWave dw({p.epsilon, kWindow, 1 << 20});
  ExactCounter exact;
  Rng rng(static_cast<uint64_t>(p.epsilon * 1000) + p.burst);

  Timestamp t = 1;
  for (int i = 0; i < 30000; ++i) {
    t += 1 + rng.Uniform(p.gap_max);
    uint64_t count = 1 + rng.Uniform(p.burst);
    dw.Add(t, count);
    exact.Add(t, count);
  }
  for (uint64_t range :
       {uint64_t{100}, uint64_t{1000}, uint64_t{10000}, kWindow}) {
    double est = dw.Estimate(t, range);
    double truth = static_cast<double>(exact.Count(t, range));
    EXPECT_LE(std::abs(est - truth), p.epsilon * truth + 1.0)
        << "range=" << range << " truth=" << truth << " est=" << est;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DwErrorSweep,
    ::testing::Values(DwSweepParam{0.01, 1, 3}, DwSweepParam{0.05, 1, 3},
                      DwSweepParam{0.1, 1, 3}, DwSweepParam{0.25, 1, 3},
                      DwSweepParam{0.1, 8, 1}, DwSweepParam{0.1, 64, 10},
                      DwSweepParam{0.05, 16, 100}));

TEST(DeterministicWaveTest, BucketsReconstructTheStreamApproximately) {
  DeterministicWave dw({0.1, 100000, 1 << 16});
  for (Timestamp t = 1; t <= 3000; ++t) dw.Add(t);
  auto buckets = dw.Buckets();
  ASSERT_FALSE(buckets.empty());
  uint64_t total = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    total += buckets[i].size;
    EXPECT_LE(buckets[i].start, buckets[i].end);
    if (i > 0) {
      EXPECT_GE(buckets[i].start, buckets[i - 1].start);
    }
  }
  // The bucket log covers the retained suffix of the stream; its total is
  // within the wave's uncertainty of the true in-window count.
  EXPECT_GT(total, 2500u);
  EXPECT_LE(total, 3000u);
}

TEST(DeterministicWaveTest, SerializeRoundTrip) {
  DeterministicWave dw({0.1, 5000, 1 << 16});
  Rng rng(9);
  Timestamp t = 1;
  for (int i = 0; i < 8000; ++i) {
    t += rng.Uniform(3);
    dw.Add(t);
  }
  ByteWriter w;
  dw.SerializeTo(&w);
  ByteReader r(w.bytes());
  auto back = DeterministicWave::Deserialize(&r);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(back->lifetime_count(), dw.lifetime_count());
  EXPECT_EQ(back->num_levels(), dw.num_levels());
  for (uint64_t range : {100u, 1000u, 5000u}) {
    EXPECT_EQ(back->Estimate(t, range), dw.Estimate(t, range));
  }
}

TEST(DeterministicWaveTest, DeserializeRejectsGarbage) {
  std::vector<uint8_t> junk = {0x42, 0x00};
  ByteReader r(junk.data(), junk.size());
  EXPECT_FALSE(DeterministicWave::Deserialize(&r).ok());
}

TEST(DeterministicWaveTest, DegradesGracefullyBeyondProvisionedBound) {
  // Exceeding u(N,S) must not crash; coverage shrinks to the suffix the
  // provisioned levels can span (underestimation), which is why the paper
  // — and our workloads — use deliberately conservative bounds. Queries
  // within the covered suffix remain epsilon-accurate.
  DeterministicWave dw({0.1, 1 << 20, 256});
  for (Timestamp t = 1; t <= 10000; ++t) dw.Add(t);
  double full = dw.Estimate(10000, 1 << 20);
  EXPECT_GT(full, 0.0);
  EXPECT_LE(full, 10000.0);
  double recent = dw.Estimate(10000, 100);
  EXPECT_NEAR(recent, 100.0, 100.0 * 0.1 + 1.0);
}

}  // namespace
}  // namespace ecm
