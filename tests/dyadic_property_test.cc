// Property tests for the dyadic stack beyond the basics of
// dyadic_test.cc: range-sum additivity, quantile monotonicity and
// inverse consistency on skewed key distributions, and window-sliding
// behaviour of ranges.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/dyadic.h"
#include "src/stream/generators.h"

namespace ecm {
namespace {

constexpr uint64_t kWindow = 50'000;
constexpr int kDomainBits = 11;  // 2048 keys

DyadicEcm<ExponentialHistogram> BuildSkewed(double skew, uint64_t seed,
                                            std::vector<StreamEvent>* events) {
  auto dyadic = DyadicEcm<ExponentialHistogram>::Create(
      kDomainBits, 0.02, 0.05, WindowMode::kTimeBased, kWindow, seed);
  EXPECT_TRUE(dyadic.ok());
  ZipfStream::Config zc;
  zc.domain = 2000;
  zc.skew = skew;
  zc.seed = seed + 1;
  ZipfStream stream(zc);
  *events = stream.Take(30'000);
  for (const auto& e : *events) dyadic->Add(e.key, e.ts);
  return std::move(*dyadic);
}

class DyadicSkewSweep : public ::testing::TestWithParam<double> {};

TEST_P(DyadicSkewSweep, RangeSumsAreAdditive) {
  std::vector<StreamEvent> events;
  auto dyadic = BuildSkewed(GetParam(), 3, &events);
  // [a, c] ~ [a, b] + [b+1, c] for random split points (each side is a
  // different dyadic decomposition; errors are additive and bounded).
  Rng rng(5);
  auto exact = ComputeExactRangeStats(events, events.back().ts, kWindow);
  for (int trial = 0; trial < 20; ++trial) {
    uint64_t a = rng.Uniform(1000);
    uint64_t c = a + 1 + rng.Uniform(1000);
    uint64_t b = a + rng.Uniform(c - a);
    double whole = dyadic.RangeQuery(a, c, kWindow);
    double parts =
        dyadic.RangeQuery(a, b, kWindow) + dyadic.RangeQuery(b + 1, c, kWindow);
    EXPECT_NEAR(whole, parts, 0.1 * static_cast<double>(exact.l1) + 5.0)
        << "[" << a << "," << b << "," << c << "]";
  }
}

TEST_P(DyadicSkewSweep, QuantilesAreMonotone) {
  std::vector<StreamEvent> events;
  auto dyadic = BuildSkewed(GetParam(), 7, &events);
  uint64_t prev = 0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    uint64_t k = dyadic.Quantile(q, kWindow);
    EXPECT_GE(k, prev) << "q=" << q;
    prev = k;
  }
}

TEST_P(DyadicSkewSweep, QuantileInvertsRank) {
  std::vector<StreamEvent> events;
  auto dyadic = BuildSkewed(GetParam(), 11, &events);
  auto exact = ComputeExactRangeStats(events, events.back().ts, kWindow);
  for (double q : {0.25, 0.5, 0.9}) {
    uint64_t k = dyadic.Quantile(q, kWindow);
    // The true rank of the estimated quantile key must be near q.
    uint64_t rank = 0;
    for (const auto& [key, count] : exact.freqs) {
      if (key <= k) rank += count;
    }
    double realized = static_cast<double>(rank) / exact.l1;
    EXPECT_NEAR(realized, q, 0.12) << "q=" << q << " key=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Skews, DyadicSkewSweep,
                         ::testing::Values(0.0, 0.8, 1.2));

TEST(DyadicWindowTest, RangeCountsSlideWithTheWindow) {
  auto dyadic = DyadicEcm<ExponentialHistogram>::Create(
      kDomainBits, 0.02, 0.05, WindowMode::kTimeBased, 1'000, 13);
  ASSERT_TRUE(dyadic.ok());
  // Keys 0..99 early, keys 100..199 late.
  Timestamp t = 1;
  for (int i = 0; i < 2'000; ++i) dyadic->Add(i % 100, t++);
  for (int i = 0; i < 2'000; ++i) dyadic->Add(100 + i % 100, t++);
  // The low range left the 1000-tick window; the high range fills it.
  EXPECT_LE(dyadic->RangeQuery(0, 99, 1'000), 150.0);
  EXPECT_NEAR(dyadic->RangeQuery(100, 199, 1'000), 1'000.0, 150.0);
}

TEST(DyadicWindowTest, HeavyHittersEstimatesAreSelfConsistent) {
  std::vector<StreamEvent> events;
  auto dyadic = BuildSkewed(1.2, 17, &events);
  auto hitters = dyadic.HeavyHitters(0.02, kWindow);
  for (const auto& h : hitters) {
    // The reported estimate equals a fresh point query on level 0.
    EXPECT_EQ(h.estimate, dyadic.level(0).PointQuery(h.key, kWindow));
  }
  // Reported keys are distinct.
  std::vector<uint64_t> keys;
  for (const auto& h : hitters) keys.push_back(h.key);
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end());
}

}  // namespace
}  // namespace ecm
