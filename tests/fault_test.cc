// Tests for the deterministic fault-injection layer (dist/fault.h):
//  * FaultPlan decisions are pure functions of (seed, node, index) —
//    identical across instances; different seeds decorrelate;
//  * FaultInjectingTransport replays byte-identically for a fixed seed
//    (the PR acceptance invariant), and its drop / duplicate / corrupt /
//    delay / partition semantics do exactly what they claim against a
//    recording inner transport;
//  * BackoffDelayMs grows exponentially to the cap with deterministic,
//    bounded jitter;
//  * the widened Status taxonomy classifies retryable vs fatal.

#include "src/dist/fault.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/dist/transport.h"
#include "src/util/status.h"

namespace ecm {
namespace {

/// Inner transport that records every delivered message verbatim.
class RecordingTransport final : public Transport {
 public:
  struct Message {
    NodeId from = 0;
    NodeId to = 0;
    bool accounting_only = false;
    std::vector<uint8_t> bytes;  ///< empty for accounting-only sends
    size_t payload_bytes = 0;
  };

  using Transport::Send;
  void Send(NodeId from, NodeId to, size_t payload_bytes) override {
    messages.push_back(Message{from, to, true, {}, payload_bytes});
  }
  void Send(NodeId from, NodeId to, const uint8_t* data,
            size_t size) override {
    messages.push_back(Message{
        from, to, false, std::vector<uint8_t>(data, data + size), size});
  }
  NetworkStats stats() const override {
    NetworkStats s;
    s.messages = messages.size();
    for (const auto& m : messages) s.bytes += m.payload_bytes;
    return s;
  }

  std::vector<Message> messages;
};

bool SameMessages(const std::vector<RecordingTransport::Message>& a,
                  const std::vector<RecordingTransport::Message>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].from != b[i].from || a[i].to != b[i].to ||
        a[i].accounting_only != b[i].accounting_only ||
        a[i].bytes != b[i].bytes ||
        a[i].payload_bytes != b[i].payload_bytes) {
      return false;
    }
  }
  return true;
}

/// Drives a fixed deterministic message script through the decorator.
void RunScript(FaultInjectingTransport* t, int messages_per_node,
               int nodes) {
  for (int i = 0; i < messages_per_node; ++i) {
    for (NodeId node = 0; node < nodes; ++node) {
      std::vector<uint8_t> payload(16 + static_cast<size_t>(i % 5));
      for (size_t j = 0; j < payload.size(); ++j) {
        payload[j] = static_cast<uint8_t>(node * 31 + i * 7 +
                                          static_cast<int>(j));
      }
      t->Send(node, kCoordinatorNode, payload.data(), payload.size());
    }
  }
  t->FlushDelayed();
}

// --- Status taxonomy (satellite) -------------------------------------------

TEST(StatusTaxonomyTest, RetryableClassification) {
  EXPECT_TRUE(IsRetryable(Status::Unavailable("link flap")));
  EXPECT_TRUE(IsRetryable(Status::DeadlineExceeded("timed out")));
  EXPECT_FALSE(IsRetryable(Status::OK()));
  EXPECT_FALSE(IsRetryable(Status::IOError("bad fd")));
  EXPECT_FALSE(IsRetryable(Status::Corruption("bit rot")));
  EXPECT_FALSE(IsRetryable(Status::StaleBase("old delta")));
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(std::string(StatusCodeToString(StatusCode::kUnavailable)),
            "Unavailable");
  EXPECT_EQ(std::string(StatusCodeToString(StatusCode::kDeadlineExceeded)),
            "Deadline exceeded");
}

// --- BackoffDelayMs ---------------------------------------------------------

TEST(BackoffTest, GrowsExponentiallyToCapWithoutJitter) {
  BackoffPolicy p;
  p.initial_ms = 10;
  p.max_ms = 100;
  p.multiplier = 2.0;
  p.jitter = 0.0;
  EXPECT_EQ(BackoffDelayMs(p, 0), 10u);
  EXPECT_EQ(BackoffDelayMs(p, 1), 20u);
  EXPECT_EQ(BackoffDelayMs(p, 2), 40u);
  EXPECT_EQ(BackoffDelayMs(p, 3), 80u);
  EXPECT_EQ(BackoffDelayMs(p, 4), 100u);   // capped
  EXPECT_EQ(BackoffDelayMs(p, 60), 100u);  // no overflow far past the cap
}

TEST(BackoffTest, JitterIsDeterministicAndBounded) {
  BackoffPolicy p;
  p.initial_ms = 1000;
  p.max_ms = 1000;
  p.multiplier = 2.0;
  p.jitter = 0.5;
  p.seed = 42;
  bool any_jittered = false;
  for (uint32_t attempt = 0; attempt < 16; ++attempt) {
    const uint64_t d = BackoffDelayMs(p, attempt);
    // Replays identically.
    EXPECT_EQ(d, BackoffDelayMs(p, attempt));
    // Within [cap * (1 - jitter), cap].
    EXPECT_GE(d, 500u);
    EXPECT_LE(d, 1000u);
    if (d != 1000u) any_jittered = true;
  }
  EXPECT_TRUE(any_jittered);
  // A different seed re-rolls the jitter somewhere within 16 attempts.
  BackoffPolicy q = p;
  q.seed = 43;
  bool differs = false;
  for (uint32_t attempt = 0; attempt < 16; ++attempt) {
    differs |= BackoffDelayMs(p, attempt) != BackoffDelayMs(q, attempt);
  }
  EXPECT_TRUE(differs);
}

// --- FaultPlan decisions ----------------------------------------------------

TEST(FaultPlanTest, DecisionsAreDeterministicPerCoordinate) {
  FaultPlanConfig cfg;
  cfg.seed = 7;
  cfg.drop_p = 0.1;
  cfg.duplicate_p = 0.1;
  cfg.corrupt_p = 0.1;
  cfg.delay_p = 0.1;
  cfg.sever_p = 0.1;
  FaultPlan plan(cfg);
  FaultPlan twin(cfg);
  for (NodeId node = 0; node < 4; ++node) {
    for (uint64_t i = 0; i < 200; ++i) {
      EXPECT_EQ(plan.ActionFor(node, i), twin.ActionFor(node, i));
      EXPECT_EQ(plan.DelayFrames(node, i), twin.DelayFrames(node, i));
      EXPECT_EQ(plan.CorruptBit(node, i, 128), twin.CorruptBit(node, i, 128));
    }
  }
  // All five actions actually occur at these rates over 800 draws.
  std::map<FaultAction, int> seen;
  for (NodeId node = 0; node < 4; ++node) {
    for (uint64_t i = 0; i < 200; ++i) ++seen[plan.ActionFor(node, i)];
  }
  EXPECT_GT(seen[FaultAction::kNone], 0);
  EXPECT_GT(seen[FaultAction::kDrop], 0);
  EXPECT_GT(seen[FaultAction::kDuplicate], 0);
  EXPECT_GT(seen[FaultAction::kCorrupt], 0);
  EXPECT_GT(seen[FaultAction::kDelay], 0);
  EXPECT_GT(seen[FaultAction::kSever], 0);
}

TEST(FaultPlanTest, SeedsDecorrelate) {
  FaultPlanConfig cfg;
  cfg.drop_p = 0.5;
  cfg.seed = 1;
  FaultPlan a(cfg);
  cfg.seed = 2;
  FaultPlan b(cfg);
  int differs = 0;
  for (uint64_t i = 0; i < 200; ++i) {
    differs += a.ActionFor(0, i) != b.ActionFor(0, i);
  }
  EXPECT_GT(differs, 0);
}

TEST(FaultPlanTest, PartitionWindowDropsEverything) {
  FaultPlanConfig cfg;
  cfg.partitions.push_back({/*node=*/1, /*from_frame=*/10, /*to_frame=*/20});
  FaultPlan plan(cfg);
  for (uint64_t i = 0; i < 30; ++i) {
    const bool inside = i >= 10 && i < 20;
    EXPECT_EQ(plan.InPartition(1, i), inside);
    EXPECT_EQ(plan.ActionFor(1, i),
              inside ? FaultAction::kDrop : FaultAction::kNone);
    // Other nodes are unaffected.
    EXPECT_EQ(plan.ActionFor(0, i), FaultAction::kNone);
  }
}

TEST(FaultPlanTest, HelloRefusalWindow) {
  FaultPlanConfig cfg;
  cfg.hello_refusals.push_back(
      {/*node=*/2, /*refuse_from=*/1, /*refuse_count=*/3});
  FaultPlan plan(cfg);
  EXPECT_FALSE(plan.RefuseHello(2, 0));
  EXPECT_TRUE(plan.RefuseHello(2, 1));
  EXPECT_TRUE(plan.RefuseHello(2, 2));
  EXPECT_TRUE(plan.RefuseHello(2, 3));
  EXPECT_FALSE(plan.RefuseHello(2, 4));
  EXPECT_FALSE(plan.RefuseHello(0, 1));
}

TEST(FaultPlanTest, DelayFramesWithinConfiguredSpan) {
  FaultPlanConfig cfg;
  cfg.max_delay_frames = 3;
  FaultPlan plan(cfg);
  for (uint64_t i = 0; i < 100; ++i) {
    const uint32_t d = plan.DelayFrames(0, i);
    EXPECT_GE(d, 1u);
    EXPECT_LE(d, 3u);
  }
}

TEST(FaultPlanTest, CorruptBitInRange) {
  FaultPlanConfig cfg;
  FaultPlan plan(cfg);
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_LT(plan.CorruptBit(0, i, 17), 17u * 8);
  }
  EXPECT_EQ(plan.CorruptBit(0, 0, 0), 0u);
}

// --- FaultInjectingTransport ------------------------------------------------

TEST(FaultInjectingTransportTest, ReplaysByteIdenticallyForFixedSeed) {
  FaultPlanConfig cfg;
  cfg.seed = 1234;
  cfg.drop_p = 0.15;
  cfg.duplicate_p = 0.15;
  cfg.corrupt_p = 0.15;
  cfg.delay_p = 0.15;
  FaultPlan plan(cfg);

  RecordingTransport run1;
  RecordingTransport run2;
  {
    FaultInjectingTransport t(&run1, &plan);
    RunScript(&t, /*messages_per_node=*/100, /*nodes=*/3);
  }
  {
    FaultInjectingTransport t(&run2, &plan);
    RunScript(&t, /*messages_per_node=*/100, /*nodes=*/3);
  }
  EXPECT_TRUE(SameMessages(run1.messages, run2.messages));

  // Faults really fired (this is not a pass-through comparison) ...
  RecordingTransport clean_inner;
  FaultPlan no_faults{FaultPlanConfig{}};
  FaultInjectingTransport clean(&clean_inner, &no_faults);
  RunScript(&clean, 100, 3);
  EXPECT_FALSE(SameMessages(run1.messages, clean_inner.messages));

  // ... while a different seed injects a different fault history.
  cfg.seed = 77;
  FaultPlan other_plan(cfg);
  RecordingTransport run3;
  {
    FaultInjectingTransport t(&run3, &other_plan);
    RunScript(&t, 100, 3);
  }
  EXPECT_FALSE(SameMessages(run1.messages, run3.messages));
}

TEST(FaultInjectingTransportTest, DropsNeverReachInnerButAreCharged) {
  FaultPlanConfig cfg;
  cfg.drop_p = 1.0;
  FaultPlan plan(cfg);
  RecordingTransport inner;
  FaultInjectingTransport t(&inner, &plan);
  const std::vector<uint8_t> payload{1, 2, 3};
  t.Send(0, kCoordinatorNode, payload.data(), payload.size());
  t.Send(0, kCoordinatorNode, size_t{7});
  t.FlushDelayed();
  EXPECT_TRUE(inner.messages.empty());
  // Offered-traffic accounting still sees both sends.
  EXPECT_EQ(t.stats().messages, 2u);
  EXPECT_EQ(t.stats().bytes, 10u);
  EXPECT_EQ(t.injection_stats().drops, 2u);
}

TEST(FaultInjectingTransportTest, DuplicateDeliversTwiceBackToBack) {
  FaultPlanConfig cfg;
  cfg.duplicate_p = 1.0;
  FaultPlan plan(cfg);
  RecordingTransport inner;
  FaultInjectingTransport t(&inner, &plan);
  const std::vector<uint8_t> payload{9, 8, 7};
  t.Send(3, kCoordinatorNode, payload.data(), payload.size());
  ASSERT_EQ(inner.messages.size(), 2u);
  EXPECT_EQ(inner.messages[0].bytes, payload);
  EXPECT_EQ(inner.messages[1].bytes, payload);
  EXPECT_EQ(t.injection_stats().duplicates, 1u);
}

TEST(FaultInjectingTransportTest, CorruptFlipsExactlyOneBit) {
  FaultPlanConfig cfg;
  cfg.corrupt_p = 1.0;
  FaultPlan plan(cfg);
  RecordingTransport inner;
  FaultInjectingTransport t(&inner, &plan);
  const std::vector<uint8_t> payload(64, 0xAA);
  t.Send(0, kCoordinatorNode, payload.data(), payload.size());
  ASSERT_EQ(inner.messages.size(), 1u);
  const std::vector<uint8_t>& got = inner.messages[0].bytes;
  ASSERT_EQ(got.size(), payload.size());
  int flipped_bits = 0;
  for (size_t i = 0; i < payload.size(); ++i) {
    uint8_t diff = static_cast<uint8_t>(got[i] ^ payload[i]);
    while (diff != 0) {
      flipped_bits += diff & 1;
      diff = static_cast<uint8_t>(diff >> 1);
    }
  }
  EXPECT_EQ(flipped_bits, 1);
  EXPECT_EQ(t.injection_stats().corrupts, 1u);
  // Accounting-only sends carry no bytes: they pass through unfaulted.
  t.Send(0, kCoordinatorNode, size_t{5});
  EXPECT_TRUE(inner.messages.back().accounting_only);
  EXPECT_EQ(inner.messages.back().payload_bytes, 5u);
}

TEST(FaultInjectingTransportTest, DelayReordersButNeverLoses) {
  // Delay must mix with pass-through traffic to observably reorder: a
  // held message re-enters the stream behind later non-delayed ones.
  FaultPlanConfig cfg;
  cfg.seed = 5;
  cfg.delay_p = 0.5;
  cfg.max_delay_frames = 4;
  FaultPlan plan(cfg);
  RecordingTransport inner;
  FaultInjectingTransport t(&inner, &plan);
  constexpr uint8_t kCount = 32;
  for (uint8_t i = 0; i < kCount; ++i) {
    const std::vector<uint8_t> payload{i};
    t.Send(0, kCoordinatorNode, payload.data(), 1);
  }
  t.FlushDelayed();
  // Everything arrives exactly once (delay is reordering, not loss) ...
  ASSERT_EQ(inner.messages.size(), size_t{kCount});
  std::vector<int> seen(kCount, 0);
  bool reordered = false;
  for (size_t i = 0; i < inner.messages.size(); ++i) {
    const uint8_t tag = inner.messages[i].bytes.at(0);
    ++seen[tag];
    if (tag != i) reordered = true;
  }
  for (int c : seen) EXPECT_EQ(c, 1);
  // ... and out of the send order, since delays fired mid-stream.
  EXPECT_TRUE(reordered);
  EXPECT_GT(t.injection_stats().delays, 0u);
  EXPECT_LT(t.injection_stats().delays, uint64_t{kCount});
}

TEST(FaultInjectingTransportTest, PartitionWindowSilencesOneNode) {
  FaultPlanConfig cfg;
  cfg.partitions.push_back({/*node=*/1, /*from_frame=*/2, /*to_frame=*/4});
  FaultPlan plan(cfg);
  RecordingTransport inner;
  FaultInjectingTransport t(&inner, &plan);
  for (uint8_t i = 0; i < 6; ++i) {
    const std::vector<uint8_t> payload{i};
    t.Send(1, kCoordinatorNode, payload.data(), 1);
    t.Send(0, kCoordinatorNode, payload.data(), 1);
  }
  t.FlushDelayed();
  // Node 0's six messages all pass; node 1 loses indices 2 and 3.
  std::vector<uint8_t> from0;
  std::vector<uint8_t> from1;
  for (const auto& m : inner.messages) {
    (m.from == 0 ? from0 : from1).push_back(m.bytes.at(0));
  }
  EXPECT_EQ(from0, (std::vector<uint8_t>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(from1, (std::vector<uint8_t>{0, 1, 4, 5}));
  EXPECT_EQ(t.injection_stats().partition_drops, 2u);
}

}  // namespace
}  // namespace ecm
