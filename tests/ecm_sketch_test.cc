// Tests for the ECM-sketch core: point queries under the Theorem-1/3
// bound across counter types and workloads (parameterized sweeps),
// count-based semantics, no-false-negative direction of Count-Min, L1
// estimation (§6.1), clock advancement and memory accounting.

#include "src/core/ecm_sketch.h"

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>

#include "src/stream/generators.h"
#include "src/util/random.h"

namespace ecm {
namespace {

EcmConfig TestConfig(double eps, double delta, uint64_t window,
                     WindowMode mode = WindowMode::kTimeBased) {
  auto cfg = EcmConfig::Create(eps, delta, mode, window, /*seed=*/1234);
  EXPECT_TRUE(cfg.ok());
  return *cfg;
}

TEST(EcmSketchTest, EmptySketchAnswersZero) {
  EcmEh sketch(TestConfig(0.1, 0.1, 1000));
  EXPECT_EQ(sketch.PointQuery(42, 1000), 0.0);
  EXPECT_EQ(sketch.SelfJoin(1000), 0.0);
  EXPECT_EQ(sketch.EstimateL1(1000), 0.0);
}

TEST(EcmSketchTest, SingleKeyExact) {
  EcmEh sketch(TestConfig(0.1, 0.1, 1000));
  for (Timestamp t = 1; t <= 100; ++t) sketch.Add(7, t);
  EXPECT_NEAR(sketch.PointQuery(7, 1000), 100.0, 100 * 0.1 + 1);
  EXPECT_EQ(sketch.l1_lifetime(), 100u);
}

TEST(EcmSketchTest, WeightedAdds) {
  EcmEh sketch(TestConfig(0.1, 0.1, 1000));
  sketch.Add(7, 10, 50);
  sketch.Add(9, 20, 5);
  EXPECT_NEAR(sketch.PointQuery(7, 1000), 50.0, 6.0);
  EXPECT_EQ(sketch.l1_lifetime(), 55u);
}

TEST(EcmSketchTest, CreateComputesDimensions) {
  auto sketch = EcmEh::Create(0.1, 0.1, WindowMode::kTimeBased, 500, 9);
  ASSERT_TRUE(sketch.ok());
  EXPECT_GT(sketch->config().width, 0u);
  EXPECT_EQ(sketch->config().depth, 3);
  EXPECT_EQ(sketch->NumCounters(),
            static_cast<size_t>(sketch->config().width) * 3);
}

TEST(EcmSketchTest, CreateRejectsBadEpsilon) {
  EXPECT_FALSE(EcmEh::Create(0.0, 0.1, WindowMode::kTimeBased, 500, 9).ok());
}

// The central accuracy property (Theorems 1 and 3): for every distinct
// in-range key, |est - truth| <= eps * ||a_r||_1 (allowing a small count
// of probabilistic violations and rounding slack).
template <typename Counter>
struct SketchSweepCase {
  using CounterType = Counter;
};

struct SweepSpec {
  double epsilon;
  double skew;
  uint64_t range;
};

template <typename Counter>
void RunPointQuerySweep(const SweepSpec& spec) {
  constexpr uint64_t kWindow = 100000;
  auto sketch = EcmSketch<Counter>::Create(
      spec.epsilon, 0.1, WindowMode::kTimeBased, kWindow, 555,
      OptimizeFor::kPointQueries, /*max_arrivals=*/1 << 18);
  ASSERT_TRUE(sketch.ok());

  ZipfStream::Config zc;
  zc.domain = 5000;
  zc.skew = spec.skew;
  zc.events_per_tick = 1.0;
  zc.seed = 99;
  ZipfStream stream(zc);
  std::vector<StreamEvent> events = stream.Take(60000);
  for (const auto& e : events) sketch->Add(e.key, e.ts);

  Timestamp now = events.back().ts;
  ExactRangeStats exact = ComputeExactRangeStats(events, now, spec.range);
  ASSERT_GT(exact.l1, 0u);
  double budget = spec.epsilon * static_cast<double>(exact.l1) + 2.0;
  size_t violations = 0;
  for (const auto& [key, count] : exact.freqs) {
    double est = sketch->PointQueryAt(key, spec.range, now);
    if (std::abs(est - static_cast<double>(count)) > budget) ++violations;
  }
  // delta = 0.1; allow slightly more for finite-sample noise.
  EXPECT_LE(violations, exact.freqs.size() / 8 + 2)
      << violations << "/" << exact.freqs.size() << " beyond the bound";
}

class EcmEhPointSweep : public ::testing::TestWithParam<SweepSpec> {};
TEST_P(EcmEhPointSweep, Theorem1Bound) {
  RunPointQuerySweep<ExponentialHistogram>(GetParam());
}
INSTANTIATE_TEST_SUITE_P(
    Sweep, EcmEhPointSweep,
    ::testing::Values(SweepSpec{0.05, 1.0, 10000}, SweepSpec{0.1, 1.0, 10000},
                      SweepSpec{0.25, 1.0, 10000}, SweepSpec{0.1, 0.5, 10000},
                      SweepSpec{0.1, 1.3, 10000}, SweepSpec{0.1, 1.0, 1000},
                      SweepSpec{0.1, 1.0, 100000}));

class EcmDwPointSweep : public ::testing::TestWithParam<SweepSpec> {};
TEST_P(EcmDwPointSweep, Theorem1Bound) {
  RunPointQuerySweep<DeterministicWave>(GetParam());
}
INSTANTIATE_TEST_SUITE_P(Sweep, EcmDwPointSweep,
                         ::testing::Values(SweepSpec{0.1, 1.0, 10000},
                                           SweepSpec{0.25, 0.8, 5000},
                                           SweepSpec{0.05, 1.0, 50000}));

class EcmRwPointSweep : public ::testing::TestWithParam<SweepSpec> {};
TEST_P(EcmRwPointSweep, Theorem3Bound) {
  RunPointQuerySweep<RandomizedWave>(GetParam());
}
INSTANTIATE_TEST_SUITE_P(Sweep, EcmRwPointSweep,
                         ::testing::Values(SweepSpec{0.1, 1.0, 10000},
                                           SweepSpec{0.2, 1.0, 5000}));

TEST(EcmSketchTest, ExactCounterIsolatesCmError) {
  // With exact windows, the only error source is hashing: estimates never
  // fall below the truth.
  EcmExact sketch(TestConfig(0.1, 0.05, 100000));
  ZipfStream::Config zc;
  zc.domain = 2000;
  zc.skew = 1.0;
  zc.seed = 31;
  ZipfStream stream(zc);
  auto events = stream.Take(20000);
  for (const auto& e : events) sketch.Add(e.key, e.ts);
  Timestamp now = events.back().ts;
  auto exact = ComputeExactRangeStats(events, now, 100000);
  for (const auto& [key, count] : exact.freqs) {
    EXPECT_GE(sketch.PointQueryAt(key, 100000, now) + 1e-9,
              static_cast<double>(count));
  }
}

TEST(EcmSketchTest, CountBasedLastNArrivals) {
  auto cfg = TestConfig(0.05, 0.05, /*window=*/500, WindowMode::kCountBased);
  EcmSketch<ExponentialHistogram> sketch(cfg);
  // 2000 arrivals; the final 500 are all key 9.
  for (int i = 0; i < 1500; ++i) sketch.Add(1, /*ts ignored*/ 0);
  for (int i = 0; i < 500; ++i) sketch.Add(9, 0);
  double est9 = sketch.PointQuery(9, 500);
  double est1 = sketch.PointQuery(1, 500);
  EXPECT_NEAR(est9, 500.0, 500 * 0.06 + 1);
  EXPECT_LE(est1, 500 * 0.06 + 1);  // key 1 left the window
}

TEST(EcmSketchTest, CountBasedPartialWindow) {
  auto cfg = TestConfig(0.05, 0.05, 1000, WindowMode::kCountBased);
  EcmSketch<ExponentialHistogram> sketch(cfg);
  for (int i = 0; i < 600; ++i) sketch.Add(i % 2 ? 5 : 6, 0);
  // Of the last 100 arrivals, 50 are key 5.
  EXPECT_NEAR(sketch.PointQuery(5, 100), 50.0, 50 * 0.06 + 2);
}

TEST(EcmSketchTest, EstimateL1TracksWindowVolume) {
  EcmEh sketch(TestConfig(0.1, 0.1, 10000));
  ZipfStream::Config zc;
  zc.domain = 1000;
  zc.skew = 1.0;
  zc.seed = 13;
  ZipfStream stream(zc);
  auto events = stream.Take(30000);
  for (const auto& e : events) sketch.Add(e.key, e.ts);
  Timestamp now = events.back().ts;
  auto exact = ComputeExactRangeStats(events, now, 10000);
  double est = sketch.EstimateL1At(10000, now);
  EXPECT_NEAR(est, static_cast<double>(exact.l1), exact.l1 * 0.12 + 2);
}

TEST(EcmSketchTest, AdvanceToExpiresContent) {
  EcmEh sketch(TestConfig(0.1, 0.1, 1000));
  for (Timestamp t = 1; t <= 500; ++t) sketch.Add(3, t);
  size_t before = sketch.MemoryBytes();
  sketch.AdvanceTo(10000);  // everything slides out
  EXPECT_EQ(sketch.PointQuery(3, 1000), 0.0);
  // The flat bucket arenas are retained for reuse (expiry never touches
  // the allocator), so the footprint stays flat rather than shrinking.
  EXPECT_LE(sketch.MemoryBytes(), before);
}

TEST(EcmSketchTest, RangeQueriesAreMonotoneInRange) {
  EcmEh sketch(TestConfig(0.1, 0.1, 100000));
  Rng rng(21);
  Timestamp t = 1;
  for (int i = 0; i < 20000; ++i) {
    t += rng.Uniform(3);
    sketch.Add(rng.Uniform(100), t);
  }
  // Larger ranges cover supersets; estimates should not decrease (modulo
  // half-bucket noise on the boundary).
  double prev = 0.0;
  for (uint64_t range : {100ULL, 1000ULL, 10000ULL, 100000ULL}) {
    double est = sketch.PointQuery(5, range);
    EXPECT_GE(est, prev * 0.9);
    prev = est;
  }
}

TEST(EcmSketchTest, MemoryDominatedByCounters) {
  EcmEh sketch(TestConfig(0.1, 0.1, 100000));
  size_t empty_mem = sketch.MemoryBytes();
  Rng rng(2);
  Timestamp t = 1;
  for (int i = 0; i < 50000; ++i) {
    t += rng.Uniform(2);
    sketch.Add(rng.Uniform(10000), t);
  }
  EXPECT_GT(sketch.MemoryBytes(), empty_mem);
}

TEST(EcmSketchTest, RowEstimatesSumToL1PerRow) {
  EcmEh sketch(TestConfig(0.1, 0.1, 100000));
  for (Timestamp t = 1; t <= 1000; ++t) sketch.Add(t % 50, t);
  for (int row = 0; row < sketch.config().depth; ++row) {
    auto estimates = sketch.RowEstimates(row, 100000, sketch.Now());
    double sum = 0.0;
    for (double v : estimates) sum += v;
    EXPECT_NEAR(sum, 1000.0, 1000 * 0.1 + 2);
  }
}

TEST(EcmSketchTest, DeterministicAcrossIdenticalRuns) {
  auto build = [] {
    EcmEh sketch(TestConfig(0.1, 0.1, 10000));
    for (Timestamp t = 1; t <= 5000; ++t) sketch.Add(t * 17 % 300, t);
    return sketch;
  };
  EcmEh a = build(), b = build();
  for (uint64_t key = 0; key < 300; ++key) {
    EXPECT_EQ(a.PointQuery(key, 10000), b.PointQuery(key, 10000));
  }
}

}  // namespace
}  // namespace ecm
