// Oracle-differential harness: every sliding-window counter type (EH, DW,
// RW, EquiWidth, Hybrid — plus ExactWindow as a self-check) runs the same
// randomized interleaved Add/expire/query scripts against an exact
// run-length oracle, and each estimate is checked against that counter's
// *documented* error bound:
//  * EH / DW         — relative error <= ε (invariant 1 / wave ranks);
//  * RW              — (ε, δ): per-query band with a δ-rare allowance;
//  * EquiWidth/Hybrid — the §2 "no guarantee" baselines: the error is
//    bounded only by the true mass of the sub-window slots straddling the
//    query boundaries (exactly the failure mode the paper cites);
//  * ExactWindow     — equality.
// Scripts include weighted arrivals and adjacent equal timestamps.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/util/random.h"
#include "src/window/counter_traits.h"

namespace ecm {
namespace {

constexpr uint64_t kWindow = 4096;
constexpr double kEpsilon = 0.1;
constexpr int kSequences = 1000;
constexpr int kOpsPerSequence = 30;

// Exact run-length oracle over the full arrival history.
class Oracle {
 public:
  void Add(Timestamp ts, uint64_t count) {
    if (!runs_.empty() && runs_.back().ts == ts) {
      runs_.back().count += count;
    } else {
      runs_.push_back(Run{ts, count});
    }
  }
  /// Arrivals with ts in (lo, hi].
  uint64_t CountRange(Timestamp lo, Timestamp hi) const {
    uint64_t n = 0;
    for (const Run& r : runs_) {
      if (r.ts > lo && r.ts <= hi) n += r.count;
    }
    return n;
  }
  /// Arrivals with ts in [lo, lo + len).
  uint64_t CountInterval(Timestamp lo, uint64_t len) const {
    uint64_t n = 0;
    for (const Run& r : runs_) {
      if (r.ts >= lo && r.ts - lo < len) n += r.count;
    }
    return n;
  }

 private:
  struct Run {
    Timestamp ts;
    uint64_t count;
  };
  std::vector<Run> runs_;
};

// True mass of the slot-grid intervals containing the query boundary and
// the query end — the only error the equi-width interpolation baselines
// can introduce.
double BoundarySlotMass(const Oracle& oracle, uint64_t span, Timestamp now,
                        Timestamp boundary) {
  Timestamp eb = (boundary / span) * span;
  Timestamp en = (now / span) * span;
  double mass = static_cast<double>(oracle.CountInterval(eb, span));
  if (en != eb) mass += static_cast<double>(oracle.CountInterval(en, span));
  return mass;
}

template <typename Counter>
struct OracleTraits;

template <>
struct OracleTraits<ExponentialHistogram> {
  static ExponentialHistogram Make(uint64_t) {
    return ExponentialHistogram({kEpsilon, kWindow});
  }
  static double Budget(const ExponentialHistogram&, const Oracle&, Timestamp,
                       Timestamp, double truth) {
    return kEpsilon * truth + 1.0;
  }
  static constexpr bool kRandomized = false;
};

template <>
struct OracleTraits<DeterministicWave> {
  static DeterministicWave Make(uint64_t) {
    return DeterministicWave({kEpsilon, kWindow, 1 << 18});
  }
  static double Budget(const DeterministicWave&, const Oracle&, Timestamp,
                       Timestamp, double truth) {
    return kEpsilon * truth + 1.0;
  }
  static constexpr bool kRandomized = false;
};

template <>
struct OracleTraits<RandomizedWave> {
  static RandomizedWave Make(uint64_t seed) {
    RandomizedWave::Config cfg;
    cfg.epsilon = kEpsilon;
    cfg.delta = 0.05;
    cfg.window_len = kWindow;
    cfg.max_arrivals = 1 << 18;
    cfg.seed = seed;
    return RandomizedWave(cfg);
  }
  // Per-query band at 3x ε; δ-rare excursions are tolerated through the
  // aggregate violation counter.
  static double Budget(const RandomizedWave&, const Oracle&, Timestamp,
                       Timestamp, double truth) {
    return 3.0 * kEpsilon * truth + 2.0;
  }
  static constexpr bool kRandomized = true;
};

template <>
struct OracleTraits<EquiWidthWindow> {
  static EquiWidthWindow Make(uint64_t) {
    // 16 divides kWindow: the ring's (B+1) slots cover a full window and
    // the documented bound below is tight.
    return EquiWidthWindow({kWindow, 16});
  }
  static double Budget(const EquiWidthWindow& c, const Oracle& oracle,
                       Timestamp now, Timestamp boundary, double) {
    return BoundarySlotMass(oracle, c.span(), now, boundary) + 1.0;
  }
  static constexpr bool kRandomized = false;
};

template <>
struct OracleTraits<HybridHistogram> {
  static HybridHistogram Make(uint64_t) {
    // span = (4096 - 256) / 15 = 256; 16 tail slots cover the tail span.
    HybridHistogram::Config cfg;
    cfg.window_len = kWindow;
    cfg.exact_len = 256;
    cfg.num_subwindows = 15;
    return HybridHistogram(cfg);
  }
  static double Budget(const HybridHistogram& c, const Oracle& oracle,
                       Timestamp now, Timestamp boundary, double) {
    // Exact inside the recent buffer; tail errors are bounded by the
    // boundary slots' true mass, as for the pure equi-width ring.
    return BoundarySlotMass(oracle, c.span(), now, boundary) + 1.0;
  }
  static constexpr bool kRandomized = false;
};

template <>
struct OracleTraits<ExactWindow> {
  static ExactWindow Make(uint64_t) { return ExactWindow({kWindow}); }
  static double Budget(const ExactWindow&, const Oracle&, Timestamp,
                       Timestamp, double) {
    return 1e-9;
  }
  static constexpr bool kRandomized = false;
};

template <typename Counter>
class CounterOracleTest : public ::testing::Test {};

using OracleCounters =
    ::testing::Types<ExponentialHistogram, DeterministicWave, RandomizedWave,
                     EquiWidthWindow, HybridHistogram, ExactWindow>;
TYPED_TEST_SUITE(CounterOracleTest, OracleCounters);

TYPED_TEST(CounterOracleTest, RandomizedSequencesStayInDocumentedBounds) {
  int64_t violations = 0, checks = 0;
  for (int seq = 0; seq < kSequences; ++seq) {
    uint64_t seed = 0xACE + static_cast<uint64_t>(seq);
    TypeParam counter = OracleTraits<TypeParam>::Make(seed);
    Oracle oracle;
    Rng rng(seed);
    Timestamp t = 1;
    // One randomized (qnow, range) probe, checked against the oracle and
    // the counter's documented budget. qnow may run ahead of the last
    // arrival (a read clock between updates).
    auto probe = [&](int op, Timestamp qnow) {
      uint64_t range = 1 + rng.Uniform(kWindow + kWindow / 4);
      double est = counter.Estimate(qnow, range);
      uint64_t clamped = range > kWindow ? kWindow : range;
      Timestamp boundary = WindowStart(qnow, clamped);
      double truth = static_cast<double>(oracle.CountRange(boundary, qnow));
      double budget = OracleTraits<TypeParam>::Budget(counter, oracle, qnow,
                                                      boundary, truth);
      ++checks;
      if (std::abs(est - truth) > budget) {
        ++violations;
        if (!OracleTraits<TypeParam>::kRandomized) {
          ADD_FAILURE() << "op=" << op << " qnow=" << qnow
                        << " range=" << range << " est=" << est
                        << " truth=" << truth << " budget=" << budget;
        }
      }
    };
    for (int op = 0; op < kOpsPerSequence; ++op) {
      switch (rng.Uniform(8)) {
        case 0: {  // heavy weighted arrival
          t += rng.Uniform(50);
          uint64_t c = 1 + rng.Uniform(500);
          counter.Add(t, c);
          oracle.Add(t, c);
          break;
        }
        case 1: {  // adjacent equal timestamps (several Adds, same tick)
          t += 1 + rng.Uniform(20);
          int repeats = 2 + static_cast<int>(rng.Uniform(3));
          for (int i = 0; i < repeats; ++i) {
            uint64_t c = 1 + rng.Uniform(30);
            counter.Add(t, c);
            oracle.Add(t, c);
          }
          break;
        }
        case 2:  // quiet period + explicit expiry
          t += rng.Uniform(kWindow / 2);
          counter.Expire(t);
          break;
        case 3:  // single query, occasionally over-length ranges
          probe(op, t);
          break;
        case 4: {  // query-heavy burst: random read clocks and ranges
          Timestamp qnow = t + rng.Uniform(kWindow / 8);
          for (int q = 0; q < 8; ++q) probe(op, qnow + rng.Uniform(16));
          break;
        }
        default: {  // light unit traffic
          t += rng.Uniform(4);
          counter.Add(t, 1);
          oracle.Add(t, 1);
          break;
        }
      }
    }
  }
  if (OracleTraits<TypeParam>::kRandomized) {
    // δ = 0.05 per query at a 3x band: aggregate excursions must stay
    // a small fraction of all checks.
    EXPECT_LE(violations, checks / 20 + 5)
        << violations << "/" << checks << " randomized-band violations";
  } else {
    EXPECT_EQ(violations, 0) << violations << "/" << checks;
  }
}

}  // namespace
}  // namespace ecm
