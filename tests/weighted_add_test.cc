// Weighted-add equivalence and invariant coverage for the batch insert
// paths: Add(ts, c) must be indistinguishable from c unit Adds — exactly
// (bit-identical serialized state) for the closed-form EH/DW batch paths,
// and distributionally for the RW binomial-split batch sampler (whose
// deeper statistical checks live in rw_sampler_equivalence_test.cc).
// Also checks the paper's invariant 1 after large weighted inserts,
// which the O(log c) decomposition must preserve.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/core/ecm_sketch.h"
#include "src/util/random.h"
#include "src/window/counter_traits.h"

namespace ecm {
namespace {

constexpr uint64_t kWindow = 50'000;

template <typename Counter>
std::vector<uint8_t> StateBytes(const Counter& c) {
  ByteWriter w;
  c.SerializeTo(&w);
  return w.bytes();
}

// ---------------------------------------------------------------------------
// Counter-level: the batch paths must reproduce the unit cascade exactly.
// ---------------------------------------------------------------------------

TEST(WeightedAddTest, EhBatchMatchesUnitLoopExactly) {
  for (double eps : {0.5, 0.1, 0.02}) {
    ExponentialHistogram batch({eps, kWindow});
    ExponentialHistogram loop({eps, kWindow});
    Rng rng(static_cast<uint64_t>(1000 * eps));
    Timestamp t = 1;
    for (int op = 0; op < 120; ++op) {
      t += rng.Uniform(40);
      uint64_t c = 1 + rng.Uniform(op % 4 == 0 ? 50'000 : 60);
      batch.Add(t, c);
      for (uint64_t i = 0; i < c; ++i) loop.Add(t, 1);
      ASSERT_EQ(StateBytes(batch), StateBytes(loop))
          << "eps=" << eps << " op=" << op << " c=" << c;
    }
    EXPECT_EQ(batch.lifetime_count(), loop.lifetime_count());
  }
}

TEST(WeightedAddTest, DwBatchMatchesUnitLoopExactly) {
  for (double eps : {0.5, 0.1, 0.02}) {
    DeterministicWave batch({eps, kWindow, 1 << 18});
    DeterministicWave loop({eps, kWindow, 1 << 18});
    Rng rng(static_cast<uint64_t>(1000 * eps) + 7);
    Timestamp t = 1;
    for (int op = 0; op < 120; ++op) {
      t += rng.Uniform(40);
      uint64_t c = 1 + rng.Uniform(op % 4 == 0 ? 50'000 : 60);
      batch.Add(t, c);
      for (uint64_t i = 0; i < c; ++i) loop.Add(t, 1);
      ASSERT_EQ(StateBytes(batch), StateBytes(loop))
          << "eps=" << eps << " op=" << op << " c=" << c;
    }
  }
}

// ---------------------------------------------------------------------------
// Sketch-level: Add(key, ts, c) vs c × Add(key, ts, 1) for the exactly-
// decomposing counters (EH, DW). RW's batch sampler is distributionally,
// not bit-wise, equivalent and is covered separately below.
// ---------------------------------------------------------------------------

template <typename Counter>
class SketchWeightedAddTest : public ::testing::Test {};

using SketchCounters =
    ::testing::Types<ExponentialHistogram, DeterministicWave>;
TYPED_TEST_SUITE(SketchWeightedAddTest, SketchCounters);

TYPED_TEST(SketchWeightedAddTest, WeightedEqualsRepeatedUnit) {
  auto weighted = EcmSketch<TypeParam>::Create(
      0.1, 0.1, WindowMode::kTimeBased, kWindow, /*seed=*/11,
      OptimizeFor::kPointQueries, /*max_arrivals=*/1 << 20);
  auto unit = EcmSketch<TypeParam>::Create(
      0.1, 0.1, WindowMode::kTimeBased, kWindow, /*seed=*/11,
      OptimizeFor::kPointQueries, /*max_arrivals=*/1 << 20);
  ASSERT_TRUE(weighted.ok() && unit.ok());

  Rng rng(3);
  Timestamp t = 1;
  std::vector<uint64_t> keys;
  for (int op = 0; op < 300; ++op) {
    t += 1 + rng.Uniform(10);
    uint64_t key = rng.Uniform(50);
    uint64_t c = 1 + rng.Uniform(op % 5 == 0 ? 8'000 : 30);
    weighted->Add(key, t, c);
    for (uint64_t i = 0; i < c; ++i) unit->Add(key, t, 1);
    keys.push_back(key);
  }
  ASSERT_EQ(weighted->l1_lifetime(), unit->l1_lifetime());
  for (uint64_t key : keys) {
    for (uint64_t range : {uint64_t{500}, uint64_t{5'000}, kWindow}) {
      double w = weighted->PointQueryAt(key, range, t);
      double u = unit->PointQueryAt(key, range, t);
      EXPECT_NEAR(w, u, 1e-6 * (1.0 + u))
          << "key=" << key << " range=" << range;
    }
  }
}

// RW sketch-level: the binomial-split batch sampler draws a different
// (but identically distributed) sample than a unit loop, so weighted and
// unit sketches must agree within the window-counter error envelope, not
// bit-for-bit.
TEST(WeightedAddTest, RwWeightedMatchesRepeatedUnitWithinEpsilon) {
  auto weighted = EcmSketch<RandomizedWave>::Create(
      0.1, 0.1, WindowMode::kTimeBased, kWindow, /*seed=*/11,
      OptimizeFor::kPointQueries, /*max_arrivals=*/1 << 20);
  auto unit = EcmSketch<RandomizedWave>::Create(
      0.1, 0.1, WindowMode::kTimeBased, kWindow, /*seed=*/11,
      OptimizeFor::kPointQueries, /*max_arrivals=*/1 << 20);
  ASSERT_TRUE(weighted.ok() && unit.ok());

  Rng rng(3);
  Timestamp t = 1;
  std::vector<uint64_t> keys;
  for (int op = 0; op < 300; ++op) {
    t += 1 + rng.Uniform(10);
    uint64_t key = rng.Uniform(50);
    uint64_t c = 1 + rng.Uniform(op % 5 == 0 ? 8'000 : 30);
    weighted->Add(key, t, c);
    for (uint64_t i = 0; i < c; ++i) unit->Add(key, t, 1);
    keys.push_back(key);
  }
  ASSERT_EQ(weighted->l1_lifetime(), unit->l1_lifetime());
  double eps_sw = weighted->config().epsilon_sw;
  for (uint64_t key : keys) {
    for (uint64_t range : {uint64_t{500}, uint64_t{5'000}, kWindow}) {
      double w = weighted->PointQueryAt(key, range, t);
      double u = unit->PointQueryAt(key, range, t);
      // Both are (ε_sw, δ)-estimates of the same collision-inflated truth;
      // their gap is bounded by the two error bands (with slack for the
      // delta-rare excursions the median does not fully suppress).
      EXPECT_NEAR(w, u, 3.0 * eps_sw * (w + u) + 8.0)
          << "key=" << key << " range=" << range;
    }
  }
}

// ---------------------------------------------------------------------------
// Invariant 1 must survive large weighted inserts (the decomposition may
// not splice in over-sized buckets).
// ---------------------------------------------------------------------------

TEST(WeightedAddTest, InvariantHoldsAfterLargeWeightedInserts) {
  for (double eps : {0.2, 0.1, 0.05}) {
    ExponentialHistogram eh({eps, 1'000'000});
    Rng rng(static_cast<uint64_t>(eps * 10'000));
    Timestamp t = 1;
    for (int op = 0; op < 400; ++op) {
      t += 1 + rng.Uniform(20);
      eh.Add(t, 1 + rng.Uniform(100'000));
      ASSERT_EQ(eh.CheckInvariant(), -1) << "eps=" << eps << " op=" << op;
    }
    // A final estimate sanity check: full-window estimate within the ε
    // band of the retained total.
    double est = eh.EstimateWindow(t);
    double truth = static_cast<double>(eh.BucketTotal());
    EXPECT_LE(std::abs(est - truth), eps * truth + 1.0);
  }
}

TEST(WeightedAddTest, SingleHugeInsertIsOneQueryableUnit) {
  ExponentialHistogram eh({0.1, kWindow});
  eh.Add(100, 1'000'000);
  EXPECT_EQ(eh.BucketTotal(), 1'000'000u);
  EXPECT_EQ(eh.lifetime_count(), 1'000'000u);
  EXPECT_EQ(eh.CheckInvariant(), -1);
  // Everything arrived at t=100, so any range covering it sees the mass.
  EXPECT_NEAR(eh.Estimate(100, kWindow), 1e6, 1e6 * 0.1 + 1.0);
}

// Weighted inserts under active expiry (window much shorter than the
// stream). Exact state equality no longer applies — Add(ts, c) expires
// once after all c cascades, while c unit Adds interleave expiry with the
// cascades, which legally pairs different buckets — but both must stay
// within the ε envelope and keep invariant 1, and full expiry must drain
// the ring bookkeeping identically.
TEST(WeightedAddTest, ExpiryAfterWeightedInserts) {
  constexpr double kEps = 0.1;
  ExponentialHistogram batch({kEps, 1'000});
  ExponentialHistogram loop({kEps, 1'000});
  Timestamp t = 1;
  uint64_t in_window = 0;
  for (int op = 0; op < 50; ++op) {
    t += 100;
    batch.Add(t, 997);
    for (int i = 0; i < 997; ++i) loop.Add(t, 1);
    ASSERT_EQ(batch.CheckInvariant(), -1) << "op=" << op;
    ASSERT_EQ(batch.lifetime_count(), loop.lifetime_count());
    // 10 bursts fit the window (t advances 100 per op, window 1000).
    in_window = 997ull * std::min(op + 1, 10);
    double truth = static_cast<double>(in_window);
    ASSERT_NEAR(batch.Estimate(t, 1'000), truth, kEps * truth + 1.0)
        << "op=" << op;
    ASSERT_NEAR(loop.Estimate(t, 1'000), truth, kEps * truth + 1.0)
        << "op=" << op;
  }
  Timestamp far = t + 10'000;
  batch.Expire(far);
  loop.Expire(far);
  EXPECT_EQ(batch.Estimate(far, 1'000), 0.0);
  EXPECT_EQ(batch.NumBuckets(), 0u);
  EXPECT_EQ(loop.NumBuckets(), 0u);
}

}  // namespace
}  // namespace ecm
