// Tests for the conventional Count-Min sketch substrate: no
// underestimation, the ε‖a‖₁ overestimation bound, inner products, linear
// merging, and compatibility checking.

#include "src/core/count_min.h"

#include <gtest/gtest.h>

#include <map>

#include "src/util/random.h"

namespace ecm {
namespace {

TEST(CountMinTest, NeverUnderestimates) {
  CountMinSketch cm(50, 3, 1);
  Rng rng(1);
  std::map<uint64_t, uint64_t> truth;
  for (int i = 0; i < 20000; ++i) {
    uint64_t key = rng.Uniform(500);
    cm.Add(key);
    ++truth[key];
  }
  for (const auto& [key, count] : truth) {
    EXPECT_GE(cm.PointQuery(key), count);
  }
}

TEST(CountMinTest, ErrorBoundHolds) {
  // w = ceil(e/0.01) = 272: per-point error <= 0.01 * ||a||_1 w.h.p.
  CountMinSketch cm = CountMinSketch::FromErrorBounds(0.01, 0.01, 7);
  Rng rng(2);
  std::map<uint64_t, uint64_t> truth;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    uint64_t key = rng.Uniform(2000);
    cm.Add(key);
    ++truth[key];
  }
  int violations = 0;
  for (const auto& [key, count] : truth) {
    if (cm.PointQuery(key) > count + 0.01 * kN) ++violations;
  }
  EXPECT_LE(violations, static_cast<int>(truth.size() / 50));
}

TEST(CountMinTest, WeightedAdds) {
  CountMinSketch cm(100, 4, 3);
  cm.Add(42, 1000);
  cm.Add(43, 5);
  EXPECT_GE(cm.PointQuery(42), 1000u);
  EXPECT_EQ(cm.l1_norm(), 1005u);
}

TEST(CountMinTest, UnseenKeySmall) {
  CountMinSketch cm = CountMinSketch::FromErrorBounds(0.005, 0.01, 11);
  for (uint64_t k = 0; k < 1000; ++k) cm.Add(k);
  // An unseen key's estimate is only collision mass: <= eps * ||a||1 whp.
  EXPECT_LE(cm.PointQuery(999999), 1000 * 0.005 * 4);
}

TEST(CountMinTest, FromErrorBoundsDimensions) {
  CountMinSketch cm = CountMinSketch::FromErrorBounds(0.1, 0.05, 1);
  EXPECT_EQ(cm.width(), 28u);  // ceil(e / 0.1)
  EXPECT_EQ(cm.depth(), 3);    // ceil(ln 20)
}

TEST(CountMinTest, InnerProductRequiresCompatibility) {
  CountMinSketch a(50, 3, 1);
  CountMinSketch b(50, 3, 2);  // different seed
  EXPECT_FALSE(a.InnerProduct(b).ok());
  CountMinSketch c(60, 3, 1);  // different width
  EXPECT_FALSE(a.InnerProduct(c).ok());
}

TEST(CountMinTest, InnerProductApproximation) {
  CountMinSketch a = CountMinSketch::FromErrorBounds(0.01, 0.01, 5);
  CountMinSketch b = CountMinSketch::FromErrorBounds(0.01, 0.01, 5);
  std::map<uint64_t, uint64_t> fa, fb;
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    uint64_t ka = rng.Uniform(300), kb = rng.Uniform(300);
    a.Add(ka);
    b.Add(kb);
    ++fa[ka];
    ++fb[kb];
  }
  uint64_t truth = 0;
  for (const auto& [k, v] : fa) {
    auto it = fb.find(k);
    if (it != fb.end()) truth += v * it->second;
  }
  auto est = a.InnerProduct(b);
  ASSERT_TRUE(est.ok());
  EXPECT_GE(*est, truth);  // overestimate only
  EXPECT_LE(*est, truth + 0.01 * a.l1_norm() * b.l1_norm());
}

TEST(CountMinTest, SelfJoinUpperBoundsTruth) {
  CountMinSketch cm = CountMinSketch::FromErrorBounds(0.02, 0.01, 9);
  std::map<uint64_t, uint64_t> truth;
  Rng rng(4);
  for (int i = 0; i < 30000; ++i) {
    uint64_t k = rng.Uniform(100);
    cm.Add(k);
    ++truth[k];
  }
  uint64_t f2 = 0;
  for (const auto& [k, v] : truth) f2 += v * v;
  EXPECT_GE(cm.SelfJoin(), f2);
  EXPECT_LE(cm.SelfJoin(), f2 + 0.02 * cm.l1_norm() * cm.l1_norm());
}

TEST(CountMinTest, MergeEqualsUnionStream) {
  CountMinSketch a(64, 4, 77), b(64, 4, 77), u(64, 4, 77);
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    uint64_t k = rng.Uniform(1000);
    if (i % 2) {
      a.Add(k);
    } else {
      b.Add(k);
    }
    u.Add(k);
  }
  ASSERT_TRUE(a.MergeWith(b).ok());
  for (uint64_t k = 0; k < 1000; ++k) {
    EXPECT_EQ(a.PointQuery(k), u.PointQuery(k));
  }
  EXPECT_EQ(a.l1_norm(), u.l1_norm());
}

TEST(CountMinTest, MergeRejectsIncompatible) {
  CountMinSketch a(64, 4, 1), b(64, 4, 2);
  EXPECT_EQ(a.MergeWith(b).code(), StatusCode::kIncompatible);
}

TEST(CountMinTest, MemoryMatchesDimensions) {
  CountMinSketch cm(100, 5, 1);
  EXPECT_GE(cm.MemoryBytes(), 100 * 5 * sizeof(uint64_t));
}

}  // namespace
}  // namespace ecm
