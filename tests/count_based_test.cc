// Count-based ("last N arrivals") sliding windows across the stack: the
// ECM-sketch variants, the dyadic structure, and the engine all support
// the mode; only distribution (merging) is excluded, per Fig. 2.

#include <gtest/gtest.h>

#include <deque>
#include <map>

#include "src/core/dyadic.h"
#include "src/core/ecm_sketch.h"
#include "src/util/random.h"

namespace ecm {
namespace {

constexpr uint64_t kWindowArrivals = 2'000;

EcmConfig CountCfg(double eps, uint64_t seed) {
  auto cfg = EcmConfig::Create(eps, 0.05, WindowMode::kCountBased,
                               kWindowArrivals, seed);
  EXPECT_TRUE(cfg.ok());
  return *cfg;
}

// Exact frequencies over the last `n` arrivals.
class LastNReference {
 public:
  explicit LastNReference(size_t n) : n_(n) {}
  void Add(uint64_t key) {
    keys_.push_back(key);
    if (keys_.size() > n_) keys_.pop_front();
  }
  uint64_t Count(uint64_t key, size_t last) const {
    last = std::min(last, keys_.size());
    uint64_t c = 0;
    for (size_t i = keys_.size() - last; i < keys_.size(); ++i) {
      if (keys_[i] == key) ++c;
    }
    return c;
  }

 private:
  size_t n_;
  std::deque<uint64_t> keys_;
};

template <typename Counter>
void RunCountBasedSweep(double eps, uint64_t seed) {
  auto cfg = EcmConfig::Create(
      eps, 0.05, WindowMode::kCountBased, kWindowArrivals, seed,
      OptimizeFor::kPointQueries,
      std::is_same_v<Counter, RandomizedWave> ? CounterFamily::kRandomized
                                              : CounterFamily::kDeterministic,
      /*max_arrivals=*/kWindowArrivals * 2);
  ASSERT_TRUE(cfg.ok());
  EcmSketch<Counter> sketch(*cfg);
  LastNReference ref(kWindowArrivals);
  Rng rng(seed);
  for (int i = 0; i < 20'000; ++i) {
    uint64_t key = rng.Uniform(50);
    sketch.Add(key, /*ts ignored*/ 0);
    ref.Add(key);
  }
  int violations = 0, checks = 0;
  double slack = std::is_same_v<Counter, RandomizedWave> ? 3.0 : 1.5;
  for (uint64_t range : {200u, 1000u, 2000u}) {
    for (uint64_t key = 0; key < 50; key += 5) {
      double est = sketch.PointQuery(key, range);
      double truth = static_cast<double>(ref.Count(key, range));
      ++checks;
      if (std::abs(est - truth) >
          slack * eps * static_cast<double>(range) + 2.0) {
        ++violations;
      }
    }
  }
  EXPECT_LE(violations, checks / 8 + 1);
}

TEST(CountBasedTest, EhSweep) {
  RunCountBasedSweep<ExponentialHistogram>(0.05, 1);
  RunCountBasedSweep<ExponentialHistogram>(0.1, 2);
}

TEST(CountBasedTest, DwSweep) {
  RunCountBasedSweep<DeterministicWave>(0.1, 3);
}

TEST(CountBasedTest, RwSweep) { RunCountBasedSweep<RandomizedWave>(0.1, 4); }

TEST(CountBasedTest, WindowEvictsByArrivalNotTime) {
  // Arrivals carry no meaningful wall-clock: eviction must be purely
  // positional.
  EcmSketch<ExponentialHistogram> sketch(CountCfg(0.05, 7));
  for (int i = 0; i < 1'000; ++i) sketch.Add(1, 0);
  for (int i = 0; i < 2'000; ++i) sketch.Add(2, 0);
  // Key 1 is entirely outside the last 2000 arrivals.
  EXPECT_LE(sketch.PointQuery(1, kWindowArrivals), 0.06 * kWindowArrivals + 1);
  EXPECT_NEAR(sketch.PointQuery(2, kWindowArrivals), 2'000,
              0.06 * kWindowArrivals + 1);
}

TEST(CountBasedTest, SubWindowRanges) {
  EcmSketch<ExponentialHistogram> sketch(CountCfg(0.05, 8));
  // Alternate keys: of the last r arrivals, each key holds r/2.
  for (int i = 0; i < 10'000; ++i) sketch.Add(i % 2 ? 10 : 20, 0);
  for (uint64_t range : {100u, 500u, 2000u}) {
    EXPECT_NEAR(sketch.PointQuery(10, range), range / 2.0,
                0.06 * range + 2.0)
        << "range " << range;
  }
}

TEST(CountBasedTest, DyadicHeavyHittersCountBased) {
  auto dyadic = DyadicEcm<ExponentialHistogram>::Create(
      10, 0.02, 0.05, WindowMode::kCountBased, kWindowArrivals, 9);
  ASSERT_TRUE(dyadic.ok());
  Rng rng(10);
  // Key 77 is hot only within the last kWindowArrivals arrivals.
  for (int i = 0; i < 5'000; ++i) dyadic->Add(rng.Uniform(1024), 0);
  for (int i = 0; i < 2'000; ++i) {
    dyadic->Add(rng.Bernoulli(0.3) ? 77 : rng.Uniform(1024), 0);
  }
  auto hitters = dyadic->HeavyHitters(0.2, kWindowArrivals);
  bool found = false;
  for (const auto& h : hitters) {
    if (h.key == 77) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(CountBasedTest, SelfJoinCountBased) {
  EcmSketch<ExponentialHistogram> sketch(CountCfg(0.05, 11));
  // Last 2000 arrivals are a single key -> F2 of the window ~ 2000^2.
  for (int i = 0; i < 3'000; ++i) sketch.Add(i % 100, 0);
  for (int i = 0; i < 2'000; ++i) sketch.Add(5, 0);
  double f2 = sketch.SelfJoin(kWindowArrivals);
  EXPECT_NEAR(f2, 4e6, 4e6 * 0.3);
}

TEST(CountBasedTest, TimestampParameterIgnored) {
  EcmSketch<ExponentialHistogram> a(CountCfg(0.05, 12));
  EcmSketch<ExponentialHistogram> b(CountCfg(0.05, 12));
  Rng rng(13);
  for (int i = 0; i < 5'000; ++i) {
    uint64_t key = rng.Uniform(40);
    a.Add(key, 0);
    b.Add(key, 123456 + i);  // arbitrary ts, must not matter
  }
  for (uint64_t key = 0; key < 40; ++key) {
    EXPECT_EQ(a.PointQuery(key, kWindowArrivals),
              b.PointQuery(key, kWindowArrivals));
  }
}

}  // namespace
}  // namespace ecm
