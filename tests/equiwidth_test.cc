// Tests for the equi-width baseline counter: correct full-window counting,
// the unbounded-error failure mode on small ranges the paper criticizes,
// and its use inside an EcmSketch.

#include "src/core/equiwidth_cm.h"

#include <gtest/gtest.h>

#include "src/core/ecm_sketch.h"
#include "src/window/counter_traits.h"

namespace ecm {
namespace {

static_assert(SlidingWindowCounter<EquiWidthWindow>);

TEST(EquiWidthWindowTest, EmptyEstimatesZero) {
  EquiWidthWindow ew({100, 10});
  EXPECT_EQ(ew.Estimate(50, 100), 0.0);
}

TEST(EquiWidthWindowTest, FullWindowRoughlyExact) {
  EquiWidthWindow ew({100, 10});
  for (Timestamp t = 1; t <= 100; ++t) ew.Add(t);
  EXPECT_NEAR(ew.Estimate(100, 100), 100.0, 12.0);
}

TEST(EquiWidthWindowTest, RingWrapExpiresOldEpochs) {
  EquiWidthWindow ew({100, 10});
  for (Timestamp t = 1; t <= 1000; ++t) ew.Add(t);
  // Only the last ~100 ticks should contribute.
  EXPECT_NEAR(ew.Estimate(1000, 100), 100.0, 15.0);
}

TEST(EquiWidthWindowTest, BoundaryInterpolationAssumesUniformity) {
  EquiWidthWindow ew({100, 4});  // 25-tick slots
  // All 100 arrivals at tick 1 (start of slot 0).
  ew.Add(1, 100);
  // Query range ending mid-slot: linear interpolation misattributes mass —
  // this is the guarantee-free behaviour the paper §2 points out.
  double est = ew.Estimate(20, 10);  // true answer: 0 (all mass at t=1)
  EXPECT_GT(est, 20.0);  // wildly overestimates
}

TEST(EquiWidthWindowTest, SmallRangeErrorUnboundedRelativeToAnswer) {
  EquiWidthWindow ew({1000, 8});  // 125-tick slots
  ExponentialHistogram eh({0.1, 1000});
  // Bursty mass early within each slot.
  Timestamp t = 1;
  for (int burst = 0; burst < 8; ++burst) {
    ew.Add(t, 1000);
    eh.Add(t, 1000);
    t += 125;
  }
  // One trailing arrival; query a range whose boundary falls *after* the
  // last burst but inside the burst's slot. True answer: 1. The uniform-
  // within-slot assumption bleeds most of the burst into the estimate.
  ew.Add(t, 1);
  eh.Add(t, 1);
  double truth = 1.0;
  uint64_t range = 101;  // boundary at t-101 = 900, burst was at 876
  double ew_err = std::abs(ew.Estimate(t, range) - truth);
  double eh_err = std::abs(eh.Estimate(t, range) - truth);
  EXPECT_GT(ew_err, 100.0);  // equi-width: boundary slot bleeds in
  EXPECT_LE(eh_err, 1.0);    // EH honours the epsilon guarantee
}

TEST(EquiWidthWindowTest, WorksInsideEcmSketch) {
  auto cfg = EcmConfig::Create(0.1, 0.1, WindowMode::kTimeBased, 1000, 3);
  ASSERT_TRUE(cfg.ok());
  EcmSketch<EquiWidthWindow> sketch(*cfg);
  for (Timestamp t = 1; t <= 500; ++t) sketch.Add(7, t);
  EXPECT_NEAR(sketch.PointQuery(7, 1000), 500.0, 80.0);
}

TEST(EquiWidthWindowTest, LifetimeTracksAllAdds) {
  EquiWidthWindow ew({100, 10});
  ew.Add(1, 5);
  ew.Add(50, 7);
  EXPECT_EQ(ew.lifetime_count(), 12u);
}

TEST(EquiWidthWindowTest, SpanRoundsUpSoRingCoversWindow) {
  // window % B != 0 with a floored span used to leave the (B+1)-slot ring
  // covering only (B+1)·floor(window/B) < window ticks: the ring wrapped
  // inside the window and silently overwrote in-window mass (window=100,
  // B=60 covered just 61 ticks, dropping ~40% of a uniform stream).
  EquiWidthWindow ew({100, 60});
  EXPECT_EQ(ew.span(), 2u);  // ceil(100/60), not floor = 1
  for (Timestamp t = 1; t <= 100; ++t) ew.Add(t);
  // Full coverage: only the boundary slot's interpolation (< one span of
  // mass) may be lost.
  EXPECT_NEAR(ew.Estimate(100, 100), 100.0, 2.0);
}

}  // namespace
}  // namespace ecm
