// Tests for the geometric-method threshold monitor (§6.2): no missed
// crossings vs a sync-always reference, communication savings vs naive
// synchronization, and the sphere-test mechanics.

#include "src/dist/geometric.h"

#include <gtest/gtest.h>

#include "src/stream/generators.h"

namespace ecm {
namespace {

constexpr uint64_t kWindow = 50000;

EcmConfig MonitorSketchConfig(uint64_t seed = 19) {
  auto cfg = EcmConfig::Create(0.1, 0.1, WindowMode::kTimeBased, kWindow,
                               seed, OptimizeFor::kSelfJoinQueries);
  EXPECT_TRUE(cfg.ok());
  return *cfg;
}

TEST(GeometricMonitorTest, InitialSyncEstablishesEstimate) {
  GeometricSelfJoinMonitor::Config mc;
  mc.threshold = 1e9;
  GeometricSelfJoinMonitor monitor(4, MonitorSketchConfig(), mc);
  monitor.Process(0, 1, 1);
  EXPECT_EQ(monitor.stats().syncs, 1u);
  EXPECT_FALSE(monitor.AboveThreshold());
}

TEST(GeometricMonitorTest, QuietStreamsRarelySync) {
  // Uniform keys, huge threshold: spheres stay far from T, so after the
  // initial sync virtually no communication happens.
  GeometricSelfJoinMonitor::Config mc;
  mc.threshold = 1e12;
  mc.check_every = 16;
  GeometricSelfJoinMonitor monitor(4, MonitorSketchConfig(), mc);
  ZipfStream::Config zc;
  zc.domain = 1000;
  zc.skew = 0.0;  // uniform: low F2
  zc.num_nodes = 4;
  zc.seed = 3;
  ZipfStream stream(zc);
  for (const auto& e : stream.Take(20000)) {
    monitor.Process(e.node, e.key, e.ts);
  }
  EXPECT_LE(monitor.stats().syncs, 3u);
  EXPECT_GT(monitor.stats().local_checks, 100u);
}

TEST(GeometricMonitorTest, DetectsThresholdCrossing) {
  // Start uniform (low F2), then concentrate all arrivals on one key: F2
  // explodes and must be detected via local violations -> sync.
  EcmConfig scfg = MonitorSketchConfig();
  ZipfStream::Config zc;
  zc.domain = 1000;
  zc.skew = 0.0;
  zc.num_nodes = 2;
  zc.seed = 4;
  ZipfStream stream(zc);
  auto warmup = stream.Take(5000);

  // Baseline global F2 after the warmup, from mirror sketches.
  std::vector<EcmSketch<ExponentialHistogram>> mirror(
      2, EcmSketch<ExponentialHistogram>(scfg));
  for (const auto& e : warmup) mirror[e.node].Add(e.key, e.ts);
  auto f2 = GlobalSelfJoin(mirror, kWindow, scfg.epsilon_sw, 1);
  ASSERT_TRUE(f2.ok());

  GeometricSelfJoinMonitor::Config mc;
  mc.check_every = 8;
  mc.threshold = 4.0 * *f2;
  GeometricSelfJoinMonitor fresh(2, MonitorSketchConfig(), mc);
  for (const auto& e : warmup) fresh.Process(e.node, e.key, e.ts);
  ASSERT_FALSE(fresh.AboveThreshold());

  // Hot phase: single-key flood from both sites.
  Timestamp t = warmup.back().ts;
  for (int i = 0; i < 20000; ++i) {
    ++t;
    fresh.Process(i % 2, /*key=*/77, t);
    if (fresh.AboveThreshold()) break;
  }
  EXPECT_TRUE(fresh.AboveThreshold());
  EXPECT_GE(fresh.stats().local_violations, 1u);
  EXPECT_GE(fresh.stats().crossings_signaled, 1u);
}

TEST(GeometricMonitorTest, NoMissedCrossingsVsReference) {
  // Feed a workload that crosses the threshold; at every sync-free
  // checkpoint the reference (merged global F2) must agree with the
  // monitor's side of the threshold, modulo sketch error near T.
  GeometricSelfJoinMonitor::Config mc;
  mc.check_every = 4;
  EcmConfig scfg = MonitorSketchConfig();

  // Calibrate the threshold from a probe run.
  ZipfStream::Config zc;
  zc.domain = 500;
  zc.skew = 1.2;
  zc.num_nodes = 3;
  zc.seed = 8;
  {
    ZipfStream probe(zc);
    std::vector<EcmSketch<ExponentialHistogram>> sites(
        3, EcmSketch<ExponentialHistogram>(scfg));
    for (const auto& e : probe.Take(30000)) sites[e.node].Add(e.key, e.ts);
    auto f2 = GlobalSelfJoin(sites, kWindow, scfg.epsilon_sw, 1);
    ASSERT_TRUE(f2.ok());
    mc.threshold = *f2 * 0.5;  // will be crossed mid-run
  }

  GeometricSelfJoinMonitor monitor(3, scfg, mc);
  std::vector<EcmSketch<ExponentialHistogram>> mirror(
      3, EcmSketch<ExponentialHistogram>(scfg));
  ZipfStream stream(zc);
  int agreements = 0, checks = 0;
  auto events = stream.Take(30000);
  for (size_t i = 0; i < events.size(); ++i) {
    const auto& e = events[i];
    monitor.Process(e.node, e.key, e.ts);
    mirror[e.node].Add(e.key, e.ts);
    if (i % 5000 == 4999) {
      auto ref = GlobalSelfJoin(mirror, kWindow, scfg.epsilon_sw, 2);
      ASSERT_TRUE(ref.ok());
      ++checks;
      // Agreement required unless the reference sits within 30% of T
      // (sketch-error gray zone around the threshold).
      double margin = std::abs(*ref - mc.threshold) / mc.threshold;
      if (margin < 0.3) {
        ++agreements;  // gray zone: both answers acceptable
      } else if ((*ref >= mc.threshold) ==
                 (monitor.GlobalEstimate() >= mc.threshold)) {
        ++agreements;
      }
    }
  }
  EXPECT_EQ(agreements, checks);
  EXPECT_GE(monitor.stats().syncs, 1u);
}

TEST(GeometricMonitorTest, CommunicationFarBelowSyncAlways) {
  GeometricSelfJoinMonitor::Config mc;
  mc.threshold = 1e12;
  mc.check_every = 8;
  EcmConfig scfg = MonitorSketchConfig();
  GeometricSelfJoinMonitor monitor(4, scfg, mc);
  ZipfStream::Config zc;
  zc.domain = 1000;
  zc.skew = 0.5;
  zc.num_nodes = 4;
  zc.seed = 5;
  ZipfStream stream(zc);
  auto events = stream.Take(20000);
  for (const auto& e : events) monitor.Process(e.node, e.key, e.ts);

  // Sync-always would ship every site's sketch on every update.
  uint64_t sync_always_msgs = events.size() * 4;
  EXPECT_LT(monitor.stats().network.messages, sync_always_msgs / 100);
}

TEST(GeometricMonitorTest, StatsAreInternallyConsistent) {
  GeometricSelfJoinMonitor::Config mc;
  mc.threshold = 1e9;
  mc.check_every = 10;
  GeometricSelfJoinMonitor monitor(2, MonitorSketchConfig(), mc);
  ZipfStream::Config zc;
  zc.num_nodes = 2;
  zc.seed = 21;
  ZipfStream stream(zc);
  for (const auto& e : stream.Take(5000)) monitor.Process(e.node, e.key, e.ts);
  const MonitorStats& s = monitor.stats();
  EXPECT_EQ(s.updates, 5000u);
  EXPECT_GE(s.local_checks, s.local_violations);
  EXPECT_GE(s.syncs, 1u);          // the initial one
  EXPECT_LE(s.syncs, s.local_violations + 1);
  EXPECT_GT(s.network.bytes, 0u);
}

// ---------------------------------------------------------------------------
// GeometricPointMonitor: single-key count threshold (§1 trigger scenario).
// ---------------------------------------------------------------------------

TEST(GeometricPointMonitorTest, DetectsDistributedFlood) {
  constexpr uint64_t kVictim = 0xBEEF;
  GeometricPointMonitor::Config mc;
  mc.key = kVictim;
  mc.threshold = 3000;
  mc.check_every = 4;
  GeometricPointMonitor monitor(8, MonitorSketchConfig(23), mc);

  // Background traffic: no single site sees the victim much.
  ZipfStream::Config zc;
  zc.domain = 10000;
  zc.skew = 0.8;
  zc.num_nodes = 8;
  zc.seed = 31;
  ZipfStream stream(zc);
  Rng attack(5);
  Timestamp t = 0;
  bool crossed = false;
  for (int i = 0; i < 40000; ++i) {
    StreamEvent e = stream.Next();
    t = e.ts;
    monitor.Process(e.node, e.key, e.ts);
    // Thin distributed trickle toward the victim after i=10000.
    if (i > 10000) {
      int site = static_cast<int>(attack.Uniform(8));
      monitor.Process(site, kVictim, t);
    }
    if (monitor.AboveThreshold()) {
      crossed = true;
      break;
    }
  }
  EXPECT_TRUE(crossed);
  // No site ever held more than a fraction of the threshold locally.
  double max_local = 0.0;
  for (int i = 0; i < 8; ++i) {
    max_local = std::max(
        max_local, monitor.site_sketch(i).PointQueryAt(kVictim, kWindow, t));
  }
  EXPECT_LT(max_local, mc.threshold * 0.5);
}

TEST(GeometricPointMonitorTest, SyncsShipOnlyKeyVectors) {
  GeometricPointMonitor::Config mc;
  mc.key = 7;
  mc.threshold = 1e9;  // never crossed
  mc.check_every = 4;
  EcmConfig scfg = MonitorSketchConfig(29);
  GeometricPointMonitor monitor(4, scfg, mc);
  ZipfStream::Config zc;
  zc.num_nodes = 4;
  zc.seed = 8;
  ZipfStream stream(zc);
  for (const auto& e : stream.Take(10000)) {
    monitor.Process(e.node, e.key, e.ts);
  }
  const MonitorStats& s = monitor.stats();
  // Each sync moves (up + down) 2 * n * d doubles: with the giant
  // threshold only the initial sync should have happened.
  uint64_t per_sync =
      2ull * 4 * scfg.depth * sizeof(double);
  EXPECT_EQ(s.network.bytes, s.syncs * per_sync);
  EXPECT_LE(s.syncs, 2u);
}

TEST(GeometricPointMonitorTest, EstimateTracksTruth) {
  GeometricPointMonitor::Config mc;
  mc.key = 42;
  mc.threshold = 500;
  mc.check_every = 1;
  GeometricPointMonitor monitor(2, MonitorSketchConfig(31), mc);
  // Key 42 arrives exactly 800 times, split across sites; noise around it.
  Timestamp t = 1;
  Rng rng(3);
  for (int i = 0; i < 800; ++i) {
    monitor.Process(i % 2, 42, t);
    monitor.Process((i + 1) % 2, rng.Uniform(5000), t);
    ++t;
  }
  EXPECT_TRUE(monitor.AboveThreshold());
  EXPECT_NEAR(monitor.GlobalEstimate(), 800.0, 800.0 * 0.2 + 5.0);
}

TEST(GeometricPointMonitorTest, QuietKeyNeverSyncs) {
  GeometricPointMonitor::Config mc;
  mc.key = 99999;  // never arrives
  // The threshold must sit above the sketch's collision noise floor
  // (~eps * ||a||_1 = 0.1 * 20000); anything below it is inherently
  // unmonitorable with this epsilon — pick 5000.
  mc.threshold = 5000;
  mc.check_every = 4;
  GeometricPointMonitor monitor(4, MonitorSketchConfig(37), mc);
  ZipfStream::Config zc;
  zc.domain = 1000;  // keys 1..1000, never 99999
  zc.num_nodes = 4;
  zc.seed = 12;
  ZipfStream stream(zc);
  for (const auto& e : stream.Take(20000)) {
    monitor.Process(e.node, e.key, e.ts);
  }
  // Collisions can nudge the drift, but syncs must stay rare.
  EXPECT_LE(monitor.stats().syncs, 5u);
  EXPECT_FALSE(monitor.AboveThreshold());
}

}  // namespace
}  // namespace ecm
