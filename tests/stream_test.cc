// Tests for the workload layer: Zipf sampling correctness, stream
// generator determinism and shape (skew, timestamps, node sharding), and
// the exact-statistics helpers.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "src/stream/generators.h"
#include "src/stream/snmp_like.h"
#include "src/stream/wc98_like.h"
#include "src/stream/zipf.h"

namespace ecm {
namespace {

TEST(ZipfTest, SamplesInDomain) {
  ZipfDistribution zipf(1000, 1.0);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    uint64_t k = zipf.Sample(rng);
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, 1000u);
  }
}

TEST(ZipfTest, DomainOfOne) {
  ZipfDistribution zipf(1, 1.2);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(rng), 1u);
}

TEST(ZipfTest, SkewZeroIsUniform) {
  ZipfDistribution zipf(10, 0.0);
  Rng rng(3);
  std::map<uint64_t, int> counts;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[zipf.Sample(rng)];
  for (const auto& [k, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kN, 0.1, 0.02) << "key " << k;
  }
}

TEST(ZipfTest, FrequenciesFollowPowerLaw) {
  constexpr double kSkew = 1.0;
  ZipfDistribution zipf(10000, kSkew);
  Rng rng(4);
  std::map<uint64_t, int> counts;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) ++counts[zipf.Sample(rng)];
  // P[k] / P[2k] should be ~2^skew for small k.
  double p1 = counts[1], p2 = counts[2], p4 = counts[4];
  EXPECT_NEAR(p1 / p2, 2.0, 0.3);
  EXPECT_NEAR(p2 / p4, 2.0, 0.3);
  // Head concentration: key 1 gets ~1/H_n of the mass.
  EXPECT_GT(p1 / kN, 0.05);
}

TEST(ZipfTest, SkewOneVsSkewTwoConcentration) {
  Rng rng(5);
  ZipfDistribution mild(1000, 0.8), strong(1000, 1.6);
  int mild_head = 0, strong_head = 0;
  for (int i = 0; i < 50000; ++i) {
    if (mild.Sample(rng) <= 10) ++mild_head;
    if (strong.Sample(rng) <= 10) ++strong_head;
  }
  EXPECT_GT(strong_head, mild_head);
}

TEST(RotatingZipfTest, DeterministicPerSeed) {
  RotatingZipf a(5000, 1.1, /*shift_every=*/1000, /*stride=*/97);
  RotatingZipf b(5000, 1.1, /*shift_every=*/1000, /*stride=*/97);
  Rng ra(0x207A7E), rb(0x207A7E);
  for (int i = 0; i < 20000; ++i) {
    ASSERT_EQ(a.Sample(ra), b.Sample(rb)) << "draw " << i;
  }
  EXPECT_EQ(a.epoch(), 20u);
  EXPECT_EQ(a.draws(), 20000u);
}

TEST(RotatingZipfTest, HotSetIdentityDrifts) {
  constexpr uint64_t kShift = 5000;
  RotatingZipf rot(100000, 1.2, kShift, /*stride=*/1313);
  Rng rng(0xD21F7);
  const uint64_t hot0 = rot.KeyForRank(1);
  std::map<uint64_t, int> epoch0, epoch1;
  for (uint64_t i = 0; i < kShift; ++i) ++epoch0[rot.Sample(rng)];
  EXPECT_EQ(rot.epoch(), 1u);
  const uint64_t hot1 = rot.KeyForRank(1);
  EXPECT_NE(hot0, hot1) << "rotation left the hottest key in place";
  for (uint64_t i = 0; i < kShift; ++i) ++epoch1[rot.Sample(rng)];
  // Within each epoch, the epoch's own hottest key dominates the other
  // epoch's: the frequency profile moved with the rotation.
  EXPECT_GT(epoch0[hot0], epoch0[hot1]);
  EXPECT_GT(epoch1[hot1], epoch1[hot0]);
  EXPECT_GT(epoch0[hot0] * 2, static_cast<int>(kShift) / 10);
}

TEST(RotatingZipfTest, RotationPreservesDomainAndProfile) {
  RotatingZipf rot(64, 1.0, /*shift_every=*/100, /*stride=*/7);
  Rng rng(0x9944);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t k = rot.Sample(rng);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, 64u);
  }
  // Rank mapping is a bijection at every epoch.
  std::set<uint64_t> image;
  for (uint64_t r = 1; r <= 64; ++r) image.insert(rot.KeyForRank(r));
  EXPECT_EQ(image.size(), 64u);
}

TEST(ZipfStreamTest, DeterministicPerSeed) {
  ZipfStream::Config cfg;
  cfg.seed = 9;
  ZipfStream a(cfg), b(cfg);
  for (int i = 0; i < 1000; ++i) {
    StreamEvent ea = a.Next(), eb = b.Next();
    EXPECT_EQ(ea.ts, eb.ts);
    EXPECT_EQ(ea.key, eb.key);
    EXPECT_EQ(ea.node, eb.node);
  }
}

TEST(ZipfStreamTest, TimestampsNonDecreasingAndPositive) {
  ZipfStream::Config cfg;
  cfg.events_per_tick = 5.0;
  cfg.diurnal_amplitude = 0.7;
  ZipfStream s(cfg);
  Timestamp prev = 0;
  for (int i = 0; i < 10000; ++i) {
    StreamEvent e = s.Next();
    EXPECT_GE(e.ts, prev);
    EXPECT_GE(e.ts, 1u);
    prev = e.ts;
  }
}

TEST(ZipfStreamTest, RateMatchesConfig) {
  ZipfStream::Config cfg;
  cfg.events_per_tick = 2.0;
  cfg.seed = 11;
  ZipfStream s(cfg);
  auto events = s.Take(20000);
  double rate = 20000.0 / static_cast<double>(events.back().ts);
  EXPECT_NEAR(rate, 2.0, 0.3);
}

TEST(RoundRobinStreamTest, CyclesKeysAndNodes) {
  RoundRobinStream s(3, 2);
  auto events = s.Take(6);
  EXPECT_EQ(events[0].key, 1u);
  EXPECT_EQ(events[1].key, 2u);
  EXPECT_EQ(events[2].key, 3u);
  EXPECT_EQ(events[3].key, 1u);
  EXPECT_EQ(events[0].node, 0u);
  EXPECT_EQ(events[1].node, 1u);
  EXPECT_EQ(events[2].node, 0u);
}

TEST(Wc98Test, ShardsAcross33Servers) {
  Wc98Config cfg;
  cfg.num_events = 50000;
  auto events = GenerateWc98Like(cfg);
  ASSERT_EQ(events.size(), 50000u);
  std::map<uint32_t, int> per_node;
  for (const auto& e : events) ++per_node[e.node];
  EXPECT_EQ(per_node.size(), 33u);
  // Load-balanced mirrors: roughly equal shares.
  for (const auto& [node, c] : per_node) {
    EXPECT_GT(c, 50000 / 33 / 2) << "node " << node;
  }
}

TEST(Wc98Test, KeyPopularityIsSkewed) {
  Wc98Config cfg;
  cfg.num_events = 100000;
  auto events = GenerateWc98Like(cfg);
  std::map<uint64_t, int> freq;
  for (const auto& e : events) ++freq[e.key];
  std::vector<int> counts;
  for (const auto& [k, c] : freq) counts.push_back(c);
  std::sort(counts.rbegin(), counts.rend());
  // Top-10 pages carry far more than 10x the median page.
  int top10 = std::accumulate(counts.begin(), counts.begin() + 10, 0);
  EXPECT_GT(top10, 100000 / 100);
  EXPECT_GT(counts[0], counts[counts.size() / 2] * 20);
}

TEST(SnmpTest, ShardsAcross535ApsWithLocality) {
  SnmpConfig cfg;
  cfg.num_events = 100000;
  auto events = GenerateSnmpLike(cfg);
  std::map<uint32_t, int> per_node;
  for (const auto& e : events) ++per_node[e.node];
  // Heterogeneous AP load: the busiest AP sees far more than the median.
  std::vector<int> loads;
  for (const auto& [n, c] : per_node) loads.push_back(c);
  std::sort(loads.rbegin(), loads.rend());
  EXPECT_GT(loads[0], loads[loads.size() / 2] * 3);
  for (const auto& [node, c] : per_node) EXPECT_LT(node, 535u);
}

TEST(SnmpTest, ClientsConcentrateAtHomeAp) {
  SnmpConfig cfg;
  cfg.num_events = 100000;
  cfg.roaming_prob = 0.1;
  auto events = GenerateSnmpLike(cfg);
  // For a few hot clients, the modal AP should dominate their records.
  std::map<uint64_t, std::map<uint32_t, int>> client_aps;
  std::map<uint64_t, int> client_total;
  for (const auto& e : events) {
    ++client_aps[e.key][e.node];
    ++client_total[e.key];
  }
  int checked = 0;
  for (const auto& [client, total] : client_total) {
    if (total < 500) continue;
    int modal = 0;
    for (const auto& [ap, c] : client_aps[client]) modal = std::max(modal, c);
    EXPECT_GT(static_cast<double>(modal) / total, 0.6)
        << "client " << client;
    if (++checked >= 5) break;
  }
  EXPECT_GT(checked, 0);
}

TEST(PartitionByNodeTest, PreservesAllEvents) {
  Wc98Config cfg;
  cfg.num_events = 10000;
  auto events = GenerateWc98Like(cfg);
  auto parts = PartitionByNode(events, 33);
  size_t total = 0;
  for (const auto& p : parts) {
    total += p.size();
    Timestamp prev = 0;
    for (const auto& e : p) {
      EXPECT_GE(e.ts, prev);  // per-node order preserved
      prev = e.ts;
    }
  }
  EXPECT_EQ(total, events.size());
}

TEST(ExactStatsTest, MatchesBruteForce) {
  std::vector<StreamEvent> events = {
      {1, 5, 0}, {2, 5, 0}, {3, 7, 0}, {10, 5, 0}, {11, 9, 0}};
  auto stats = ComputeExactRangeStats(events, /*now=*/11, /*range=*/9);
  // Range (2, 11]: events at ts 3,10,11 -> keys 7,5,9.
  EXPECT_EQ(stats.l1, 3u);
  EXPECT_EQ(stats.self_join, 3.0);  // all frequency 1
  EXPECT_EQ(ExactFrequency(events, 5, 11, 9), 1u);
  EXPECT_EQ(ExactFrequency(events, 5, 11, 11), 3u);
}

}  // namespace
}  // namespace ecm
