// Tests for the compressed propagation layer (dist/compress.h +
// dist/serialize.h delta images):
//  * the differential gate — delta ∘ base and rlz ∘ reference decode
//    bit-identically to full SerializeSketch snapshots on randomized
//    streams, chained across many syncs and for every CompressionMode;
//  * stale-base / rejoin-epoch safety — wrong bases, wrong epochs and
//    replayed deltas reject with kStaleBase, never a silent wrong merge;
//  * hostile-input fuzz — truncation sweeps, bit flips and forged copy
//    ops reject cleanly with no out-of-bounds access.

#include "src/dist/compress.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/dist/serialize.h"
#include "src/stream/generators.h"
#include "src/util/random.h"
#include "src/window/exponential_histogram.h"
#include "src/window/randomized_wave.h"

namespace ecm {
namespace {

template <typename Counter>
EcmSketch<Counter> MakeSketch(uint64_t seed = 7) {
  auto sketch = EcmSketch<Counter>::Create(0.1, 0.1, WindowMode::kTimeBased,
                                           200, seed);
  EXPECT_TRUE(sketch.ok()) << sketch.status();
  return std::move(*sketch);
}

// Feeds `n` Zipf arrivals with timestamps advancing from *ts.
template <typename Counter>
void Feed(EcmSketch<Counter>* sketch, int n, uint64_t seed, Timestamp* ts) {
  ZipfStream::Config zc;
  zc.domain = 300;
  zc.skew = 1.0;
  zc.seed = seed;
  ZipfStream stream(zc);
  Rng rng(seed ^ 0xABCDULL);
  for (const auto& e : stream.Take(n)) {
    *ts += rng.Next() % 3;
    sketch->Add(e.key, *ts);
  }
}

// --- delta images: raw API ------------------------------------------------

template <typename Counter>
void DeltaRoundTripImpl() {
  auto sender = MakeSketch<Counter>();
  Timestamp ts = 1;
  Feed(&sender, 400, 11, &ts);
  const std::vector<uint8_t> base_image = SerializeSketch(sender);
  const uint64_t base_version = sender.version();

  auto receiver = DeserializeSketch<Counter>(base_image.data(),
                                             base_image.size());
  ASSERT_TRUE(receiver.ok()) << receiver.status();

  Feed(&sender, 60, 12, &ts);
  const std::vector<uint8_t> new_image = SerializeSketch(sender);
  const std::vector<uint8_t> delta = SerializeSketchDelta(
      sender, base_version, /*epoch=*/1, base_image, new_image);
  // A small increment must beat re-shipping the whole grid.
  EXPECT_LT(delta.size(), new_image.size());

  SketchDeltaInfo info;
  auto full = ApplySketchDelta<Counter>(delta.data(), delta.size(),
                                        /*expected_epoch=*/1, base_image,
                                        &*receiver, nullptr, &info);
  ASSERT_TRUE(full.ok()) << full.status();
  EXPECT_EQ(*full, new_image);
  EXPECT_EQ(SerializeSketch(*receiver), new_image);
  EXPECT_EQ(info.base_version, base_version);
  EXPECT_EQ(info.new_version, sender.version());
}

TEST(SketchDeltaTest, RoundTripMatchesFullImageEh) {
  DeltaRoundTripImpl<ExponentialHistogram>();
}

TEST(SketchDeltaTest, RoundTripMatchesFullImageRw) {
  DeltaRoundTripImpl<RandomizedWave>();
}

TEST(SketchDeltaTest, RejectsWrongBaseImage) {
  auto sender = MakeSketch<ExponentialHistogram>();
  Timestamp ts = 1;
  Feed(&sender, 200, 21, &ts);
  const std::vector<uint8_t> base_image = SerializeSketch(sender);
  const uint64_t base_version = sender.version();
  Feed(&sender, 50, 22, &ts);
  const std::vector<uint8_t> new_image = SerializeSketch(sender);
  const std::vector<uint8_t> delta =
      SerializeSketchDelta(sender, base_version, 1, base_image, new_image);

  // A receiver whose state (and thus base image) differs must refuse.
  auto other = MakeSketch<ExponentialHistogram>();
  Timestamp ts2 = 1;
  Feed(&other, 150, 99, &ts2);
  const std::vector<uint8_t> other_image = SerializeSketch(other);
  auto applied = ApplySketchDelta<ExponentialHistogram>(
      delta.data(), delta.size(), 1, other_image, &other);
  ASSERT_FALSE(applied.ok());
  EXPECT_EQ(applied.status().code(), StatusCode::kStaleBase);
  // The rejected apply must not have mutated the receiver.
  EXPECT_EQ(SerializeSketch(other), other_image);
}

TEST(SketchDeltaTest, RejectsWrongEpochAndReplay) {
  auto sender = MakeSketch<ExponentialHistogram>();
  Timestamp ts = 1;
  Feed(&sender, 200, 31, &ts);
  const std::vector<uint8_t> base_image = SerializeSketch(sender);
  const uint64_t base_version = sender.version();
  auto receiver =
      DeserializeSketch<ExponentialHistogram>(base_image.data(),
                                              base_image.size());
  ASSERT_TRUE(receiver.ok());
  Feed(&sender, 40, 32, &ts);
  const std::vector<uint8_t> new_image = SerializeSketch(sender);
  const std::vector<uint8_t> delta =
      SerializeSketchDelta(sender, base_version, /*epoch=*/3, base_image,
                           new_image);

  // Wrong rejoin epoch: refuse before touching the base.
  auto wrong_epoch = ApplySketchDelta<ExponentialHistogram>(
      delta.data(), delta.size(), /*expected_epoch=*/4, base_image,
      &*receiver);
  ASSERT_FALSE(wrong_epoch.ok());
  EXPECT_EQ(wrong_epoch.status().code(), StatusCode::kStaleBase);

  // Correct epoch applies...
  auto ok = ApplySketchDelta<ExponentialHistogram>(
      delta.data(), delta.size(), 3, base_image, &*receiver);
  ASSERT_TRUE(ok.ok()) << ok.status();
  // ...and replaying the same delta against the advanced base refuses
  // (the base image no longer matches what the delta was encoded against).
  auto replay = ApplySketchDelta<ExponentialHistogram>(
      delta.data(), delta.size(), 3, *ok, &*receiver);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kStaleBase);
}

// --- RLZ codec ------------------------------------------------------------

TEST(RlzTest, RoundTripAgainstReference) {
  auto sketch = MakeSketch<ExponentialHistogram>();
  Timestamp ts = 1;
  Feed(&sketch, 300, 41, &ts);
  const std::vector<uint8_t> ref = SerializeSketch(sketch);
  Feed(&sketch, 30, 42, &ts);
  const std::vector<uint8_t> img = SerializeSketch(sketch);

  const std::vector<uint8_t> enc = RlzEncode(ref, img.data(), img.size(), 1);
  // Successive images share most bytes, so RLZ must compress.
  EXPECT_LT(enc.size(), img.size());
  auto dec = RlzDecode(enc.data(), enc.size(), ref, 1);
  ASSERT_TRUE(dec.ok()) << dec.status();
  EXPECT_EQ(*dec, img);
}

TEST(RlzTest, EmptyReferenceDegeneratesToLiterals) {
  const std::vector<uint8_t> ref;
  std::vector<uint8_t> img(1000);
  Rng rng(5);
  for (auto& b : img) b = static_cast<uint8_t>(rng.Next());
  const std::vector<uint8_t> enc = RlzEncode(ref, img.data(), img.size(), 1);
  auto dec = RlzDecode(enc.data(), enc.size(), ref, 1);
  ASSERT_TRUE(dec.ok()) << dec.status();
  EXPECT_EQ(*dec, img);
}

TEST(RlzTest, RejectsWrongReferenceAndEpoch) {
  std::vector<uint8_t> ref(256), img(256);
  Rng rng(6);
  for (auto& b : ref) b = static_cast<uint8_t>(rng.Next());
  img = ref;
  img[100] ^= 0x5A;
  const std::vector<uint8_t> enc = RlzEncode(ref, img.data(), img.size(), 2);

  auto wrong_epoch = RlzDecode(enc.data(), enc.size(), ref, 3);
  ASSERT_FALSE(wrong_epoch.ok());
  EXPECT_EQ(wrong_epoch.status().code(), StatusCode::kStaleBase);

  std::vector<uint8_t> other_ref = ref;
  other_ref[7] ^= 1;
  auto wrong_ref = RlzDecode(enc.data(), enc.size(), other_ref, 2);
  ASSERT_FALSE(wrong_ref.ok());
  EXPECT_EQ(wrong_ref.status().code(), StatusCode::kStaleBase);
}

// --- hostile-input fuzz ---------------------------------------------------

// Every truncation of a valid image must reject; no prefix may decode.
TEST(CompressFuzzTest, DeltaTruncationSweep) {
  auto sender = MakeSketch<ExponentialHistogram>();
  Timestamp ts = 1;
  Feed(&sender, 120, 51, &ts);
  const std::vector<uint8_t> base_image = SerializeSketch(sender);
  const uint64_t base_version = sender.version();
  Feed(&sender, 20, 52, &ts);
  const std::vector<uint8_t> new_image = SerializeSketch(sender);
  const std::vector<uint8_t> delta =
      SerializeSketchDelta(sender, base_version, 1, base_image, new_image);

  for (size_t len = 0; len < delta.size(); ++len) {
    auto receiver = DeserializeSketch<ExponentialHistogram>(
        base_image.data(), base_image.size());
    ASSERT_TRUE(receiver.ok());
    auto applied = ApplySketchDelta<ExponentialHistogram>(
        delta.data(), len, 1, base_image, &*receiver);
    EXPECT_FALSE(applied.ok()) << "prefix of " << len << " bytes decoded";
    EXPECT_EQ(SerializeSketch(*receiver), base_image)
        << "truncated delta mutated the receiver at len " << len;
  }
}

TEST(CompressFuzzTest, RlzTruncationSweep) {
  auto sketch = MakeSketch<ExponentialHistogram>();
  Timestamp ts = 1;
  Feed(&sketch, 120, 53, &ts);
  const std::vector<uint8_t> ref = SerializeSketch(sketch);
  Feed(&sketch, 20, 54, &ts);
  const std::vector<uint8_t> img = SerializeSketch(sketch);
  const std::vector<uint8_t> enc = RlzEncode(ref, img.data(), img.size(), 1);
  for (size_t len = 0; len < enc.size(); ++len) {
    EXPECT_FALSE(RlzDecode(enc.data(), len, ref, 1).ok())
        << "prefix of " << len << " bytes decoded";
  }
}

// Flipping any single byte must never decode to different content than
// the original image (the checksum makes rejection the expected outcome).
TEST(CompressFuzzTest, DeltaBitFlipSweep) {
  auto sender = MakeSketch<ExponentialHistogram>();
  Timestamp ts = 1;
  Feed(&sender, 120, 55, &ts);
  const std::vector<uint8_t> base_image = SerializeSketch(sender);
  const uint64_t base_version = sender.version();
  Feed(&sender, 20, 56, &ts);
  const std::vector<uint8_t> new_image = SerializeSketch(sender);
  const std::vector<uint8_t> delta =
      SerializeSketchDelta(sender, base_version, 1, base_image, new_image);

  for (size_t i = 0; i < delta.size(); ++i) {
    std::vector<uint8_t> mutated = delta;
    mutated[i] ^= 0x41;
    auto receiver = DeserializeSketch<ExponentialHistogram>(
        base_image.data(), base_image.size());
    ASSERT_TRUE(receiver.ok());
    auto applied = ApplySketchDelta<ExponentialHistogram>(
        mutated.data(), mutated.size(), 1, base_image, &*receiver);
    if (applied.ok()) {
      EXPECT_EQ(*applied, new_image) << "flip at " << i << " silently merged";
    } else {
      EXPECT_EQ(SerializeSketch(*receiver), base_image)
          << "rejected flip at " << i << " mutated the receiver";
    }
  }
}

TEST(CompressFuzzTest, RlzBitFlipSweep) {
  auto sketch = MakeSketch<ExponentialHistogram>();
  Timestamp ts = 1;
  Feed(&sketch, 120, 57, &ts);
  const std::vector<uint8_t> ref = SerializeSketch(sketch);
  Feed(&sketch, 20, 58, &ts);
  const std::vector<uint8_t> img = SerializeSketch(sketch);
  const std::vector<uint8_t> enc = RlzEncode(ref, img.data(), img.size(), 1);
  for (size_t i = 0; i < enc.size(); ++i) {
    std::vector<uint8_t> mutated = enc;
    mutated[i] ^= 0x41;
    auto dec = RlzDecode(mutated.data(), mutated.size(), ref, 1);
    if (dec.ok()) {
      EXPECT_EQ(*dec, img) << "flip at " << i << " silently decoded";
    }
  }
}

// Hand-forged RLZ frames with valid checksums but hostile ops: copy runs
// past the reference, op streams that overrun raw_len, giant raw_len.
TEST(CompressFuzzTest, RlzForgedOpsRejected) {
  std::vector<uint8_t> ref(64);
  for (size_t i = 0; i < ref.size(); ++i) ref[i] = static_cast<uint8_t>(i);
  const uint64_t ref_sum = wire_internal::WireChecksum(ref.data(), ref.size());

  auto forge = [&](uint64_t raw_len, uint64_t n_ops,
                   const std::vector<std::pair<uint64_t, uint64_t>>& copies) {
    ByteWriter payload;
    payload.PutVarint(wire_internal::kRlzFormatVersion);
    payload.PutVarint(1);  // epoch
    payload.PutFixed<uint64_t>(ref_sum);
    payload.PutVarint(ref.size());
    payload.PutVarint(raw_len);
    payload.PutVarint(n_ops);
    for (const auto& [offset, len] : copies) {
      payload.PutVarint((len << 1) | 1);  // copy op
      payload.PutVarint(offset);
    }
    return wire_internal::WrapWirePayload(wire_internal::kRlzMagic, payload);
  };

  // Copy op starting past the reference end.
  auto past_end = forge(16, 1, {{ref.size() + 1, 16}});
  auto r1 = RlzDecode(past_end.data(), past_end.size(), ref, 1);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kCorruption);

  // Copy length running off the reference end from a valid offset.
  auto overrun = forge(32, 1, {{ref.size() - 4, 32}});
  auto r2 = RlzDecode(overrun.data(), overrun.size(), ref, 1);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kCorruption);

  // Ops reconstructing more than raw_len.
  auto too_much = forge(8, 2, {{0, 8}, {0, 8}});
  auto r3 = RlzDecode(too_much.data(), too_much.size(), ref, 1);
  ASSERT_FALSE(r3.ok());
  EXPECT_EQ(r3.status().code(), StatusCode::kCorruption);

  // A raw_len past the decoder's allocation cap must refuse up front.
  auto giant = forge(wire_internal::kMaxRlzRawBytes + 1, 0, {});
  auto r4 = RlzDecode(giant.data(), giant.size(), ref, 1);
  ASSERT_FALSE(r4.ok());
  EXPECT_EQ(r4.status().code(), StatusCode::kCorruption);

  // An op count larger than the remaining bytes must refuse before
  // looping (allocation/time bound on forged headers).
  auto op_bomb = forge(16, 1u << 20, {{0, 16}});
  auto r5 = RlzDecode(op_bomb.data(), op_bomb.size(), ref, 1);
  ASSERT_FALSE(r5.ok());
  EXPECT_EQ(r5.status().code(), StatusCode::kCorruption);
}

// --- channel layer --------------------------------------------------------

template <typename Counter>
void ChannelDifferentialImpl(CompressionMode mode) {
  CompressionOptions opts;
  opts.mode = mode;
  SketchSender<Counter> sender(opts);
  SketchReceiver<Counter> receiver(opts);
  auto local = MakeSketch<Counter>();
  Timestamp ts = 1;
  Feed(&local, 300, 61, &ts);

  for (int round = 0; round < 25; ++round) {
    Feed(&local, 40, 62 + static_cast<uint64_t>(round), &ts);
    SketchWireImage img = sender.Ship(local);
    auto got = receiver.Receive(img.kind, img.bytes.data(), img.bytes.size());
    ASSERT_TRUE(got.ok()) << got.status();
    // The differential gate: the decoded sketch must serialize
    // bit-identically to the sender's full snapshot.
    ASSERT_EQ(SerializeSketch(**got), SerializeSketch(local))
        << "round " << round << " kind " << SketchWireKindName(img.kind);
  }
  const CompressionStats& st = sender.stats();
  EXPECT_EQ(st.full_images + st.delta_images + st.rlz_images, 25u);
  if (mode != CompressionMode::kFull) {
    // Steady-state small increments must actually compress.
    EXPECT_GT(st.delta_images + st.rlz_images, 0u);
    EXPECT_LT(st.wire_bytes, st.raw_bytes);
  }
}

TEST(SketchChannelTest, DifferentialFullEh) {
  ChannelDifferentialImpl<ExponentialHistogram>(CompressionMode::kFull);
}
TEST(SketchChannelTest, DifferentialDeltaEh) {
  ChannelDifferentialImpl<ExponentialHistogram>(CompressionMode::kDelta);
}
TEST(SketchChannelTest, DifferentialRlzEh) {
  ChannelDifferentialImpl<ExponentialHistogram>(CompressionMode::kRlz);
}
TEST(SketchChannelTest, DifferentialAutoEh) {
  ChannelDifferentialImpl<ExponentialHistogram>(CompressionMode::kAuto);
}
TEST(SketchChannelTest, DifferentialDeltaRw) {
  ChannelDifferentialImpl<RandomizedWave>(CompressionMode::kDelta);
}
TEST(SketchChannelTest, DifferentialAutoRw) {
  ChannelDifferentialImpl<RandomizedWave>(CompressionMode::kAuto);
}

TEST(SketchChannelTest, ReceiverRejectsDeltaBeforeFirstSnapshot) {
  CompressionOptions opts;
  opts.mode = CompressionMode::kDelta;
  SketchSender<ExponentialHistogram> sender(opts);
  auto local = MakeSketch<ExponentialHistogram>();
  Timestamp ts = 1;
  Feed(&local, 200, 71, &ts);
  (void)sender.Ship(local);  // primes the sender's base
  Feed(&local, 20, 72, &ts);
  SketchWireImage delta = sender.Ship(local);
  ASSERT_EQ(delta.kind, SketchWireKind::kDelta);

  SketchReceiver<ExponentialHistogram> fresh(opts);
  auto got = fresh.Receive(delta.kind, delta.bytes.data(), delta.bytes.size());
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kStaleBase);
  EXPECT_EQ(fresh.sketch(), nullptr);
}

TEST(SketchChannelTest, EpochChangeForcesFullResync) {
  CompressionOptions opts;
  opts.mode = CompressionMode::kAuto;
  SketchSender<ExponentialHistogram> sender(opts);
  SketchReceiver<ExponentialHistogram> receiver(opts);
  auto local = MakeSketch<ExponentialHistogram>();
  Timestamp ts = 1;
  Feed(&local, 200, 81, &ts);
  SketchWireImage img = sender.Ship(local);
  ASSERT_TRUE(
      receiver.Receive(img.kind, img.bytes.data(), img.bytes.size()).ok());

  // The receiver rejoins under a new epoch (crash/rejoin): compressed
  // images stamped with the old epoch must refuse.
  receiver.set_epoch(2);
  Feed(&local, 20, 82, &ts);
  SketchWireImage stale = sender.Ship(local);
  ASSERT_NE(stale.kind, SketchWireKind::kFull);
  auto rejected =
      receiver.Receive(stale.kind, stale.bytes.data(), stale.bytes.size());
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kStaleBase);

  // Once the sender learns the new epoch it re-bases with a full image
  // and the channel recovers.
  sender.set_epoch(2);
  SketchWireImage resync = sender.Ship(local);
  EXPECT_EQ(resync.kind, SketchWireKind::kFull);
  auto got = receiver.Receive(resync.kind, resync.bytes.data(),
                              resync.bytes.size());
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(SerializeSketch(**got), SerializeSketch(local));

  Feed(&local, 20, 83, &ts);
  SketchWireImage next = sender.Ship(local);
  auto again =
      receiver.Receive(next.kind, next.bytes.data(), next.bytes.size());
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(SerializeSketch(**again), SerializeSketch(local));
}

// --- at-least-once delivery: duplicates and replays -----------------------

template <typename Counter>
void DuplicateDeliveryIdempotentImpl(CompressionMode mode) {
  CompressionOptions opts;
  opts.mode = mode;
  SketchSender<Counter> sender(opts);
  SketchReceiver<Counter> receiver(opts);
  auto local = MakeSketch<Counter>();
  Timestamp ts = 1;
  Feed(&local, 300, 95, &ts);

  // Every image in the conversation is delivered twice back to back —
  // exactly what the socket layer's post-reconnect retransmit produces.
  // The second copy must absorb idempotently, never double-merge.
  uint64_t absorbed = 0;
  for (int round = 0; round < 8; ++round) {
    Feed(&local, 40, 96 + static_cast<uint64_t>(round), &ts);
    SketchWireImage img = sender.Ship(local);
    auto first =
        receiver.Receive(img.kind, img.bytes.data(), img.bytes.size());
    ASSERT_TRUE(first.ok()) << first.status();
    auto dup =
        receiver.Receive(img.kind, img.bytes.data(), img.bytes.size());
    ASSERT_TRUE(dup.ok()) << dup.status();
    ++absorbed;
    EXPECT_EQ(receiver.duplicates_absorbed(), absorbed);
    ASSERT_EQ(SerializeSketch(**dup), SerializeSketch(local))
        << "round " << round << " kind " << SketchWireKindName(img.kind);
  }
}

TEST(SketchChannelTest, DuplicateDeliveryIdempotentFullEh) {
  DuplicateDeliveryIdempotentImpl<ExponentialHistogram>(
      CompressionMode::kFull);
}
TEST(SketchChannelTest, DuplicateDeliveryIdempotentDeltaEh) {
  DuplicateDeliveryIdempotentImpl<ExponentialHistogram>(
      CompressionMode::kDelta);
}
TEST(SketchChannelTest, DuplicateDeliveryIdempotentRlzEh) {
  DuplicateDeliveryIdempotentImpl<ExponentialHistogram>(CompressionMode::kRlz);
}
TEST(SketchChannelTest, DuplicateDeliveryIdempotentDeltaRw) {
  DuplicateDeliveryIdempotentImpl<RandomizedWave>(CompressionMode::kDelta);
}

TEST(SketchChannelTest, OlderReplayStillRejectsStaleBase) {
  // Only the *immediately preceding* image is absorbed as a duplicate; a
  // replay from further back is a stale base and must reject without
  // touching the receiver's state.
  CompressionOptions opts;
  opts.mode = CompressionMode::kDelta;
  SketchSender<ExponentialHistogram> sender(opts);
  SketchReceiver<ExponentialHistogram> receiver(opts);
  auto local = MakeSketch<ExponentialHistogram>();
  Timestamp ts = 1;
  Feed(&local, 300, 97, &ts);
  SketchWireImage full = sender.Ship(local);
  ASSERT_TRUE(
      receiver.Receive(full.kind, full.bytes.data(), full.bytes.size()).ok());

  Feed(&local, 40, 98, &ts);
  SketchWireImage d1 = sender.Ship(local);
  ASSERT_EQ(d1.kind, SketchWireKind::kDelta);
  ASSERT_TRUE(receiver.Receive(d1.kind, d1.bytes.data(), d1.bytes.size()).ok());

  Feed(&local, 40, 99, &ts);
  SketchWireImage d2 = sender.Ship(local);
  ASSERT_TRUE(receiver.Receive(d2.kind, d2.bytes.data(), d2.bytes.size()).ok());
  const std::vector<uint8_t> settled = SerializeSketch(*receiver.sketch());

  // d1 is two images back now: not a duplicate, a stale replay.
  auto replay = receiver.Receive(d1.kind, d1.bytes.data(), d1.bytes.size());
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kStaleBase);
  EXPECT_EQ(receiver.duplicates_absorbed(), 0u);
  EXPECT_EQ(SerializeSketch(*receiver.sketch()), settled);

  // The channel keeps working after the rejected replay.
  Feed(&local, 40, 100, &ts);
  SketchWireImage d3 = sender.Ship(local);
  auto got = receiver.Receive(d3.kind, d3.bytes.data(), d3.bytes.size());
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(SerializeSketch(**got), SerializeSketch(local));
}

TEST(SketchChannelTest, ResetClearsDuplicateFingerprint) {
  // After a Reset (rejoin teardown) the first image of the new
  // conversation must never be mistaken for a duplicate of the old one.
  CompressionOptions opts;
  opts.mode = CompressionMode::kFull;
  SketchSender<ExponentialHistogram> sender(opts);
  SketchReceiver<ExponentialHistogram> receiver(opts);
  auto local = MakeSketch<ExponentialHistogram>();
  Timestamp ts = 1;
  Feed(&local, 200, 101, &ts);
  SketchWireImage img = sender.Ship(local);
  ASSERT_TRUE(
      receiver.Receive(img.kind, img.bytes.data(), img.bytes.size()).ok());
  receiver.Reset();
  auto again = receiver.Receive(img.kind, img.bytes.data(), img.bytes.size());
  ASSERT_TRUE(again.ok()) << again.status();
  // Applied for real, not absorbed: the fingerprint died with the reset.
  EXPECT_EQ(receiver.duplicates_absorbed(), 0u);
  EXPECT_EQ(SerializeSketch(**again), SerializeSketch(local));
}

TEST(SketchChannelTest, SenderResetRebasesWithFullImage) {
  CompressionOptions opts;
  opts.mode = CompressionMode::kDelta;
  SketchSender<ExponentialHistogram> sender(opts);
  auto local = MakeSketch<ExponentialHistogram>();
  Timestamp ts = 1;
  Feed(&local, 100, 91, &ts);
  EXPECT_EQ(sender.Ship(local).kind, SketchWireKind::kFull);
  Feed(&local, 10, 92, &ts);
  EXPECT_EQ(sender.Ship(local).kind, SketchWireKind::kDelta);
  sender.Reset();
  Feed(&local, 10, 93, &ts);
  EXPECT_EQ(sender.Ship(local).kind, SketchWireKind::kFull);
}

}  // namespace
}  // namespace ecm
