// Tests for graceful degradation (dist/degrade.h):
//  * policy dispatch — kFailClosed refuses on any missing/stale site,
//    kExcludeSite serves from fresh sites only, kServeStaleWithBound
//    serves everything retained; all three agree on the clean path;
//  * honest bounds — on a hand-built deterministic outage the reported
//    error_bound covers |estimate - exact truth| under the declared
//    per-site rate ceiling, and inflates with staleness/exclusion;
//  * snapshot retention — the max-event-clock guard never lets a
//    delayed older image overwrite a newer one; SetHealth flips
//    freshness; UpdateSerialized decodes wire images and rejects
//    corrupt ones.

#include "src/dist/degrade.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/core/ecm_sketch.h"
#include "src/dist/serialize.h"
#include "src/util/status.h"
#include "src/window/exponential_histogram.h"
#include "src/window/randomized_wave.h"

namespace ecm {
namespace {

template <typename Counter>
EcmSketch<Counter> MakeSketch(uint64_t seed = 7) {
  auto sketch = EcmSketch<Counter>::Create(0.1, 0.1, WindowMode::kTimeBased,
                                           200, seed);
  EXPECT_TRUE(sketch.ok()) << sketch.status();
  return std::move(*sketch);
}

/// One arrival of `key` per tick over [1, last_ts] — rate exactly 1.
template <typename Counter>
void FeedOnePerTick(EcmSketch<Counter>* sketch, uint64_t key,
                    Timestamp last_ts) {
  for (Timestamp ts = 1; ts <= last_ts; ++ts) sketch->Add(key, ts);
}

constexpr uint64_t kKey = 42;

TEST(DegradeTest, NoSitesRegisteredIsUnavailable) {
  DegradingMergeView<ExponentialHistogram> view;
  auto r = view.PointQuery(kKey, 100, 10);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(IsRetryable(r.status()));
}

TEST(DegradeTest, HealthKnownButNoSnapshotYet) {
  // A site the server knows about (health report arrived) but whose
  // first snapshot has not: kFailClosed refuses; the serving policies
  // have nothing to merge, which is also a refusal.
  DegradationOptions opts;
  opts.policy = DegradationPolicy::kFailClosed;
  DegradingMergeView<ExponentialHistogram> closed(opts);
  closed.SetHealth(0, true);
  EXPECT_EQ(closed.PointQuery(kKey, 100, 10).status().code(),
            StatusCode::kUnavailable);

  DegradingMergeView<ExponentialHistogram> open;  // serve-stale default
  open.SetHealth(0, true);
  EXPECT_EQ(open.PointQuery(kKey, 100, 10).status().code(),
            StatusCode::kUnavailable);
}

TEST(DegradeTest, CleanPathMatchesDirectMergeForAllPolicies) {
  auto s0 = MakeSketch<ExponentialHistogram>();
  auto s1 = MakeSketch<ExponentialHistogram>();
  FeedOnePerTick(&s0, kKey, 100);
  FeedOnePerTick(&s1, kKey, 100);
  const std::vector<const EcmSketch<ExponentialHistogram>*> ptrs{&s0, &s1};
  const EcmConfig& cfg = s0.config();
  auto merged = EcmSketch<ExponentialHistogram>::Merge(ptrs, cfg.epsilon_sw,
                                                       cfg.seed);
  ASSERT_TRUE(merged.ok()) << merged.status();
  const double direct = merged->PointQueryAt(kKey, 200, 100);

  for (DegradationPolicy policy :
       {DegradationPolicy::kFailClosed, DegradationPolicy::kServeStaleWithBound,
        DegradationPolicy::kExcludeSite}) {
    DegradationOptions opts;
    opts.policy = policy;
    opts.max_rate_per_site = 1.0;
    DegradingMergeView<ExponentialHistogram> view(opts);
    view.Update(0, s0);
    view.Update(1, s1);
    auto r = view.PointQuery(kKey, 200, 100);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_DOUBLE_EQ(r->estimate, direct);
    EXPECT_FALSE(r->degraded);
    EXPECT_EQ(r->sites_included, 2);
    EXPECT_EQ(r->sites_stale, 0);
    EXPECT_EQ(r->sites_excluded, 0);
    // Every retained snapshot is at the query clock: zero slack, the
    // bound is pure sketch error and it is strictly positive.
    EXPECT_DOUBLE_EQ(r->staleness_slack, 0.0);
    EXPECT_GT(r->sketch_error, 0.0);
    EXPECT_DOUBLE_EQ(r->error_bound, r->sketch_error);
  }
}

TEST(DegradeTest, StaleSitePolicyDispatch) {
  // Site 0 is current (clock 100); site 1's last snapshot is from clock
  // 60 — an outage 40 ticks long against stale_after = 10.
  auto s0 = MakeSketch<ExponentialHistogram>();
  auto s1 = MakeSketch<ExponentialHistogram>();
  FeedOnePerTick(&s0, kKey, 100);
  FeedOnePerTick(&s1, kKey, 60);
  const double truth = 100 + 60;  // one arrival per tick per site

  DegradationOptions opts;
  opts.stale_after = 10;
  opts.max_rate_per_site = 1.0;

  {
    opts.policy = DegradationPolicy::kFailClosed;
    DegradingMergeView<ExponentialHistogram> view(opts);
    view.Update(0, s0);
    view.Update(1, s1);
    auto r = view.PointQuery(kKey, 200, 100);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  }
  {
    opts.policy = DegradationPolicy::kServeStaleWithBound;
    DegradingMergeView<ExponentialHistogram> view(opts);
    view.Update(0, s0);
    view.Update(1, s1);
    auto r = view.PointQuery(kKey, 200, 100);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_TRUE(r->degraded);
    EXPECT_EQ(r->sites_included, 2);
    EXPECT_EQ(r->sites_stale, 1);
    EXPECT_EQ(r->sites_excluded, 0);
    // Slack: site 0 is at the clock (0), site 1 may have absorbed
    // rate * min(100 - 60, 200) = 40 unseen arrivals.
    EXPECT_DOUBLE_EQ(r->staleness_slack, 40.0);
    EXPECT_LE(std::abs(r->estimate - truth), r->error_bound);
  }
  {
    opts.policy = DegradationPolicy::kExcludeSite;
    DegradingMergeView<ExponentialHistogram> view(opts);
    view.Update(0, s0);
    view.Update(1, s1);
    auto r = view.PointQuery(kKey, 200, 100);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_TRUE(r->degraded);
    EXPECT_EQ(r->sites_included, 1);
    EXPECT_EQ(r->sites_stale, 0);
    EXPECT_EQ(r->sites_excluded, 1);
    // The excluded site may hold up to rate * range window mass.
    EXPECT_DOUBLE_EQ(r->staleness_slack, 200.0);
    EXPECT_LE(std::abs(r->estimate - truth), r->error_bound);
  }
}

TEST(DegradeTest, ExcludingEverySiteIsUnavailable) {
  auto s0 = MakeSketch<ExponentialHistogram>();
  FeedOnePerTick(&s0, kKey, 10);
  DegradationOptions opts;
  opts.policy = DegradationPolicy::kExcludeSite;
  opts.stale_after = 5;
  DegradingMergeView<ExponentialHistogram> view(opts);
  view.Update(0, s0);
  auto r = view.PointQuery(kKey, 200, 100);  // 90 ticks behind
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
}

TEST(DegradeTest, UnhealthySiteIsNeverFresh) {
  auto s0 = MakeSketch<ExponentialHistogram>();
  auto s1 = MakeSketch<ExponentialHistogram>();
  FeedOnePerTick(&s0, kKey, 100);
  FeedOnePerTick(&s1, kKey, 100);
  DegradationOptions opts;
  opts.policy = DegradationPolicy::kExcludeSite;
  opts.max_rate_per_site = 1.0;
  DegradingMergeView<ExponentialHistogram> view(opts);
  view.Update(0, s0);
  view.Update(1, s1);
  // Liveness tracking declares site 1 down: its snapshot is at the
  // query clock yet it must not count as fresh.
  view.SetHealth(1, false);
  auto r = view.PointQuery(kKey, 200, 100);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->sites_included, 1);
  EXPECT_EQ(r->sites_excluded, 1);
  EXPECT_TRUE(r->degraded);
  // Recovery restores the clean answer.
  view.SetHealth(1, true);
  auto healed = view.PointQuery(kKey, 200, 100);
  ASSERT_TRUE(healed.ok()) << healed.status();
  EXPECT_EQ(healed->sites_included, 2);
  EXPECT_FALSE(healed->degraded);
}

TEST(DegradeTest, OlderSnapshotNeverOverwritesNewer) {
  auto current = MakeSketch<ExponentialHistogram>();
  auto older = MakeSketch<ExponentialHistogram>();
  FeedOnePerTick(&current, kKey, 80);
  FeedOnePerTick(&older, kKey, 30);
  DegradingMergeView<ExponentialHistogram> view;
  view.Update(0, current);
  // A delayed, reordered frame delivers the older image late.
  view.Update(0, older);
  const auto meta = view.site_meta(80);
  ASSERT_EQ(meta.size(), 1u);
  EXPECT_EQ(meta[0].snapshot_clock, 80u);
  EXPECT_EQ(view.LatestClock(), 80u);
  // An equal-clock image (idempotent redelivery) is accepted.
  view.Update(0, current);
  EXPECT_EQ(view.site_meta(80)[0].snapshot_clock, 80u);
}

TEST(DegradeTest, LatestClockTracksMostAdvancedSite) {
  auto s0 = MakeSketch<ExponentialHistogram>();
  auto s1 = MakeSketch<ExponentialHistogram>();
  FeedOnePerTick(&s0, kKey, 33);
  FeedOnePerTick(&s1, kKey, 77);
  DegradingMergeView<ExponentialHistogram> view;
  EXPECT_EQ(view.LatestClock(), 0u);
  view.Update(0, s0);
  EXPECT_EQ(view.LatestClock(), 33u);
  view.Update(1, s1);
  EXPECT_EQ(view.LatestClock(), 77u);
}

TEST(DegradeTest, UpdateSerializedDecodesWireImages) {
  auto s0 = MakeSketch<RandomizedWave>();
  FeedOnePerTick(&s0, kKey, 50);
  const std::vector<uint8_t> image = SerializeSketch(s0);

  DegradingMergeView<RandomizedWave> view;
  ASSERT_TRUE(view.UpdateSerialized(0, image.data(), image.size()).ok());
  EXPECT_EQ(view.LatestClock(), 50u);
  auto r = view.PointQuery(kKey, 200, 50);
  ASSERT_TRUE(r.ok()) << r.status();

  // Equivalent to the in-memory Update path.
  DegradingMergeView<RandomizedWave> direct;
  direct.Update(0, s0);
  auto d = direct.PointQuery(kKey, 200, 50);
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_DOUBLE_EQ(r->estimate, d->estimate);
  EXPECT_DOUBLE_EQ(r->error_bound, d->error_bound);

  // Corrupt images reject without disturbing retained state.
  std::vector<uint8_t> bad = image;
  bad[bad.size() / 2] ^= 0x40;
  EXPECT_FALSE(view.UpdateSerialized(0, bad.data(), bad.size()).ok());
  EXPECT_EQ(view.LatestClock(), 50u);
}

TEST(DegradeTest, RateCeilingZeroMeansSketchErrorOnly) {
  // With no declared ingest rate the slack term honestly collapses to
  // zero — the bound covers sketch error only (idle-stream assumption).
  auto s0 = MakeSketch<ExponentialHistogram>();
  FeedOnePerTick(&s0, kKey, 20);
  DegradationOptions opts;
  opts.stale_after = 5;
  DegradingMergeView<ExponentialHistogram> view(opts);
  view.Update(0, s0);
  auto r = view.PointQuery(kKey, 200, 100);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->degraded);
  EXPECT_EQ(r->sites_stale, 1);
  EXPECT_DOUBLE_EQ(r->staleness_slack, 0.0);
  EXPECT_DOUBLE_EQ(r->error_bound, r->sketch_error);
}

}  // namespace
}  // namespace ecm
