// Tests for the shared distributed runtime (dist/runtime.h + transport.h):
//
//  * Transport byte-accounting equals the legacy per-substrate
//    NetworkStats on identical scripts (aggregation tree, scheduled
//    propagation, geometric monitoring all charge one currency);
//  * incremental drift tracking fires syncs on exactly the same arrivals
//    as the full-rebuild reference across randomized multi-site streams;
//  * counter-generic monitor instantiations (EH + RW) behave;
//  * ParallelIngest: sharded multi-threaded ingest matches sequential
//    semantics where they must agree, and the sync barrier drains the
//    coordinator exactly once per round.

#include "src/dist/runtime.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "src/dist/geometric.h"
#include "src/dist/periodic.h"
#include "src/dist/serialize.h"
#include "src/stream/generators.h"

namespace ecm {
namespace {

constexpr uint64_t kWindow = 50'000;

EcmConfig SketchCfg(uint64_t seed = 19,
                    OptimizeFor opt = OptimizeFor::kSelfJoinQueries) {
  auto cfg =
      EcmConfig::Create(0.1, 0.1, WindowMode::kTimeBased, kWindow, seed, opt);
  EXPECT_TRUE(cfg.ok());
  return *cfg;
}

std::vector<StreamEvent> ZipfEvents(size_t n, uint32_t sites, uint64_t seed,
                                    double skew = 1.0, uint64_t domain = 500) {
  ZipfStream::Config zc;
  zc.domain = domain;
  zc.skew = skew;
  zc.num_nodes = sites;
  zc.seed = seed;
  return ZipfStream(zc).Take(n);
}

// --- Transport ------------------------------------------------------------

TEST(LoopbackTransportTest, CountsMessagesAndBytes) {
  LoopbackTransport t;
  t.Send(0, kCoordinatorNode, 100);
  t.Send(1, kCoordinatorNode, 28);
  t.Send(kCoordinatorNode, 1, 0);
  NetworkStats s = t.stats();
  EXPECT_EQ(s.messages, 3u);
  EXPECT_EQ(s.bytes, 128u);
}

TEST(LoopbackTransportTest, ConcurrentSendsAllLand) {
  LoopbackTransport t;
  constexpr int kThreads = 8;
  constexpr int kSends = 2'000;
  std::vector<std::thread> pool;
  for (int w = 0; w < kThreads; ++w) {
    pool.emplace_back([&t, w] {
      for (int i = 0; i < kSends; ++i) t.Send(w, kCoordinatorNode, 3);
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(t.stats().messages, uint64_t{kThreads} * kSends);
  EXPECT_EQ(t.stats().bytes, uint64_t{kThreads} * kSends * 3);
}

// --- Site / Coordinator ----------------------------------------------------

TEST(SiteTest, IngestRoutesToSketchAndDyadic) {
  EcmConfig cfg = SketchCfg(3, OptimizeFor::kPointQueries);
  Site<ExponentialHistogram> site(0, cfg,
                                  Site<ExponentialHistogram>::Options{8});
  ASSERT_NE(site.dyadic(), nullptr);
  for (Timestamp t = 1; t <= 500; ++t) site.Ingest(t % 11, t);
  EXPECT_EQ(site.updates(), 500u);
  EXPECT_EQ(site.sketch().Now(), 500u);
  EXPECT_NEAR(site.sketch().PointQuery(4, kWindow), 500.0 / 11, 30.0);
  EXPECT_NEAR(site.dyadic()->RangeQuery(0, 10, kWindow), 500.0, 100.0);
}

TEST(SiteTest, IngestBatchMatchesPerArrival) {
  EcmConfig cfg = SketchCfg(5, OptimizeFor::kPointQueries);
  auto events = ZipfEvents(4'000, 1, 17);
  Site<ExponentialHistogram> a(0, cfg), b(0, cfg);
  for (const auto& e : events) a.Ingest(e.key, e.ts);
  b.IngestBatch(events.data(), events.size());
  Timestamp now = events.back().ts;
  for (uint64_t key : {1ull, 7ull, 42ull, 300ull}) {
    EXPECT_EQ(a.sketch().PointQueryAt(key, kWindow, now),
              b.sketch().PointQueryAt(key, kWindow, now));
  }
}

TEST(CoordinatorTest, CollectAndMergeChargesExactWireBytes) {
  EcmConfig cfg = SketchCfg(7, OptimizeFor::kPointQueries);
  LoopbackTransport transport;
  Coordinator<ExponentialHistogram> coord(3, cfg, &transport);
  auto events = ZipfEvents(9'000, 3, 23);
  for (const auto& e : events) {
    coord.site(static_cast<int>(e.node)).Ingest(e.key, e.ts);
  }
  uint64_t expected_bytes = 0;
  for (int i = 0; i < 3; ++i) {
    expected_bytes += SketchWireSize(coord.site(i).sketch());
  }
  auto merged = coord.CollectAndMerge();
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(transport.stats().messages, 3u);
  EXPECT_EQ(transport.stats().bytes, expected_bytes);

  // The merged view answers like a directly merged sketch.
  std::vector<const EcmSketch<ExponentialHistogram>*> ptrs;
  for (int i = 0; i < 3; ++i) ptrs.push_back(&coord.site(i).sketch());
  auto direct = EcmSketch<ExponentialHistogram>::Merge(ptrs, cfg.epsilon_sw);
  ASSERT_TRUE(direct.ok());
  Timestamp now = events.back().ts;
  for (uint64_t key : {1ull, 9ull, 77ull}) {
    EXPECT_EQ(merged->PointQueryAt(key, kWindow, now),
              direct->PointQueryAt(key, kWindow, now));
  }
}

TEST(CoordinatorTest, CompressedCollectMatchesUncompressedBitForBit) {
  EcmConfig cfg = SketchCfg(7, OptimizeFor::kPointQueries);
  LoopbackTransport t_plain, t_comp;
  Coordinator<ExponentialHistogram> plain(3, cfg, &t_plain);
  Coordinator<ExponentialHistogram> comp(3, cfg, &t_comp);
  CompressionOptions copts;
  copts.mode = CompressionMode::kAuto;
  comp.EnableCompression(copts);

  // Several collect rounds: after the first, the channels ship delta/RLZ
  // images, and the merged views must stay identical to the
  // uncompressed coordinator's on the same arrivals.
  auto events = ZipfEvents(12'000, 3, 31);
  const size_t rounds = 6;
  const size_t per_round = events.size() / rounds;
  for (size_t r = 0; r < rounds; ++r) {
    for (size_t i = r * per_round; i < (r + 1) * per_round; ++i) {
      const auto& e = events[i];
      plain.site(static_cast<int>(e.node)).Ingest(e.key, e.ts);
      comp.site(static_cast<int>(e.node)).Ingest(e.key, e.ts);
    }
    auto want = plain.CollectAndMerge();
    auto got = comp.CollectAndMerge();
    ASSERT_TRUE(want.ok() && got.ok());
    ASSERT_EQ(SerializeSketch(*got), SerializeSketch(*want)) << "round " << r;
  }
  const CompressionStats cs = comp.compression_stats();
  EXPECT_EQ(cs.full_images + cs.delta_images + cs.rlz_images,
            rounds * 3);
  EXPECT_GT(cs.delta_images + cs.rlz_images, 0u);
  EXPECT_LT(cs.wire_bytes, cs.raw_bytes);
  // The transport was charged the compressed volume, not the raw one.
  EXPECT_EQ(t_comp.stats().bytes, cs.wire_bytes);
  EXPECT_LT(t_comp.stats().bytes, t_plain.stats().bytes);
}

TEST(CoordinatorTest, AggregateUpEqualsLegacyTreeAccounting) {
  EcmConfig cfg = SketchCfg(9, OptimizeFor::kPointQueries);
  LoopbackTransport transport;
  Coordinator<ExponentialHistogram> coord(8, cfg, &transport);
  auto events = ZipfEvents(16'000, 8, 29);
  std::vector<EcmSketch<ExponentialHistogram>> legacy_leaves(
      8, EcmSketch<ExponentialHistogram>(cfg));
  for (const auto& e : events) {
    coord.site(static_cast<int>(e.node)).Ingest(e.key, e.ts);
    legacy_leaves[e.node].Add(e.key, e.ts);
  }
  auto up = coord.AggregateUp();
  auto legacy = AggregateTree(legacy_leaves);
  ASSERT_TRUE(up.ok() && legacy.ok());
  // Identical script -> the transport charged exactly the legacy
  // NetworkStats (8-leaf full tree: 14 transfers), and the result mirror
  // agrees with it.
  EXPECT_EQ(legacy->network.messages, 14u);
  EXPECT_EQ(transport.stats().messages, legacy->network.messages);
  EXPECT_EQ(transport.stats().bytes, legacy->network.bytes);
  EXPECT_EQ(up->network.messages, legacy->network.messages);
  EXPECT_EQ(up->network.bytes, legacy->network.bytes);
  Timestamp now = events.back().ts;
  for (uint64_t key : {2ull, 13ull, 111ull}) {
    EXPECT_EQ(up->root.PointQueryAt(key, kWindow, now),
              legacy->root.PointQueryAt(key, kWindow, now));
  }
}

// --- Transport accounting == legacy NetworkStats on identical scripts ------

TEST(TransportAccountingTest, PeriodicPushesChargeExactSnapshotWire) {
  EcmConfig cfg = SketchCfg(41, OptimizeFor::kPointQueries);
  PeriodicAggregatorT<ExponentialHistogram>::Config pc;
  pc.period = 2'000;
  LoopbackTransport transport;
  PeriodicAggregatorT<ExponentialHistogram> agg(3, cfg, pc, &transport);
  // Legacy mirror: replay the same script and charge the legacy way —
  // one message per push at the pushing site's exact wire size.
  std::vector<EcmSketch<ExponentialHistogram>> mirror(
      3, EcmSketch<ExponentialHistogram>(cfg));
  NetworkStats legacy;
  for (const auto& e : ZipfEvents(20'000, 3, 31)) {
    mirror[e.node].Add(e.key, e.ts);
    if (agg.Process(static_cast<int>(e.node), e.key, e.ts)) {
      ++legacy.messages;
      legacy.bytes += SketchWireSize(mirror[e.node]);
    }
  }
  EXPECT_GT(legacy.messages, 10u);
  EXPECT_EQ(transport.stats().messages, legacy.messages);
  EXPECT_EQ(transport.stats().bytes, legacy.bytes);
  // The aggregator's own stats mirror is the same currency.
  EXPECT_EQ(agg.stats().network.messages, legacy.messages);
  EXPECT_EQ(agg.stats().network.bytes, legacy.bytes);
}

TEST(TransportAccountingTest, GeometricSyncsChargeVectorWire) {
  EcmConfig cfg = SketchCfg(43);
  GeometricSelfJoinMonitor::Config mc;
  mc.threshold = 1e9;
  mc.check_every = 4;
  LoopbackTransport transport;
  GeometricSelfJoinMonitor monitor(4, cfg, mc, &transport);
  for (const auto& e : ZipfEvents(12'000, 4, 37)) {
    monitor.Process(static_cast<int>(e.node), e.key, e.ts);
  }
  const MonitorStats s = monitor.stats();
  // Legacy formula: each sync ships n statistics vectors up and the
  // average back down, dim = w*d doubles each.
  const uint64_t dim = uint64_t{cfg.width} * static_cast<uint64_t>(cfg.depth);
  EXPECT_EQ(transport.stats().messages, s.syncs * 2 * 4);
  EXPECT_EQ(transport.stats().bytes, s.syncs * 2 * 4 * dim * sizeof(double));
  EXPECT_EQ(s.network.messages, transport.stats().messages);
  EXPECT_EQ(s.network.bytes, transport.stats().bytes);
}

TEST(TransportAccountingTest, SharedTransportSumsAllSubstrates) {
  // One run, one currency: a periodic aggregator and a point monitor
  // sharing a transport accumulate into a single NetworkStats.
  EcmConfig cfg = SketchCfg(47, OptimizeFor::kPointQueries);
  LoopbackTransport transport;
  PeriodicAggregatorT<ExponentialHistogram>::Config pc;
  pc.period = 4'000;
  PeriodicAggregatorT<ExponentialHistogram> agg(2, cfg, pc, &transport);
  GeometricPointMonitor::Config gc;
  gc.key = 7;
  gc.threshold = 1e9;
  GeometricPointMonitor monitor(2, cfg, gc, &transport);
  for (const auto& e : ZipfEvents(8'000, 2, 41)) {
    agg.Process(static_cast<int>(e.node), e.key, e.ts);
    monitor.Process(static_cast<int>(e.node), e.key, e.ts);
  }
  EXPECT_EQ(transport.stats().messages, agg.stats().network.messages +
                                            monitor.stats().network.messages);
  EXPECT_EQ(transport.stats().bytes,
            agg.stats().network.bytes + monitor.stats().network.bytes);
}

// --- Incremental drift vs full rebuild: same sync arrivals -----------------

template <typename Monitor, typename Config>
std::vector<size_t> SyncArrivals(int sites, const EcmConfig& cfg, Config mc,
                                 DriftTracking drift,
                                 const std::vector<StreamEvent>& events) {
  mc.drift = drift;
  Monitor monitor(sites, cfg, mc);
  std::vector<size_t> syncs;
  for (size_t i = 0; i < events.size(); ++i) {
    if (monitor.Process(static_cast<int>(events[i].node), events[i].key,
                        events[i].ts)) {
      syncs.push_back(i);
    }
  }
  return syncs;
}

TEST(IncrementalDriftTest, SelfJoinSyncsOnSameArrivalsAsRebuild) {
  // Randomized multi-site streams (within the window, where the tracked
  // vector is exactly the rebuilt one): both modes must fire global
  // syncs on identical arrivals.
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    EcmConfig cfg = SketchCfg(50 + seed);
    auto events = ZipfEvents(15'000, 3, 100 + seed, /*skew=*/1.2);
    // Calibrate a threshold the run will cross.
    std::vector<EcmSketch<ExponentialHistogram>> probe(
        3, EcmSketch<ExponentialHistogram>(cfg));
    for (const auto& e : events) probe[e.node].Add(e.key, e.ts);
    auto f2 = GlobalSelfJoin(probe, kWindow, cfg.epsilon_sw, 1);
    ASSERT_TRUE(f2.ok());
    GeometricSelfJoinMonitor::Config mc;
    mc.threshold = *f2 * 0.6;
    mc.check_every = 4;
    auto inc = SyncArrivals<GeometricSelfJoinMonitor>(
        3, cfg, mc, DriftTracking::kIncremental, events);
    auto reb = SyncArrivals<GeometricSelfJoinMonitor>(
        3, cfg, mc, DriftTracking::kRebuild, events);
    EXPECT_GE(inc.size(), 2u) << "seed " << seed;
    EXPECT_EQ(inc, reb) << "seed " << seed;
  }
}

TEST(IncrementalDriftTest, PointMonitorSyncsOnSameArrivalsAsRebuild) {
  for (uint64_t seed : {5u, 6u, 7u}) {
    EcmConfig cfg = SketchCfg(60 + seed, OptimizeFor::kPointQueries);
    auto events = ZipfEvents(12'000, 4, 200 + seed, /*skew=*/0.8,
                             /*domain=*/5'000);
    // Distributed trickle toward a watched victim key.
    Rng attack(seed);
    std::vector<StreamEvent> script;
    script.reserve(events.size() * 3 / 2);
    for (size_t i = 0; i < events.size(); ++i) {
      script.push_back(events[i]);
      if (i > events.size() / 3 && attack.Bernoulli(0.3)) {
        script.push_back(StreamEvent{events[i].ts, 0xBEEF,
                                     static_cast<uint32_t>(attack.Uniform(4))});
      }
    }
    GeometricPointMonitor::Config mc;
    mc.key = 0xBEEF;
    mc.threshold = 1'200;
    mc.check_every = 2;
    auto inc = SyncArrivals<GeometricPointMonitor>(
        4, cfg, mc, DriftTracking::kIncremental, script);
    auto reb = SyncArrivals<GeometricPointMonitor>(
        4, cfg, mc, DriftTracking::kRebuild, script);
    EXPECT_GE(inc.size(), 2u) << "seed " << seed;
    EXPECT_EQ(inc, reb) << "seed " << seed;
  }
}

TEST(IncrementalDriftTest, SameEstimatesAndCrossingsAsRebuild) {
  EcmConfig cfg = SketchCfg(71);
  auto events = ZipfEvents(10'000, 2, 301, /*skew=*/0.3);
  std::vector<EcmSketch<ExponentialHistogram>> probe(
      2, EcmSketch<ExponentialHistogram>(cfg));
  for (const auto& e : events) probe[e.node].Add(e.key, e.ts);
  auto f2 = GlobalSelfJoin(probe, kWindow, cfg.epsilon_sw, 1);
  ASSERT_TRUE(f2.ok());
  GeometricSelfJoinMonitor::Config mc;
  mc.threshold = *f2 * 2.0;
  mc.check_every = 2;
  mc.drift = DriftTracking::kIncremental;
  GeometricSelfJoinMonitor inc(2, cfg, mc);
  mc.drift = DriftTracking::kRebuild;
  GeometricSelfJoinMonitor reb(2, cfg, mc);
  for (const auto& e : events) {
    inc.Process(static_cast<int>(e.node), e.key, e.ts);
    reb.Process(static_cast<int>(e.node), e.key, e.ts);
    ASSERT_DOUBLE_EQ(inc.GlobalEstimate(), reb.GlobalEstimate());
    ASSERT_EQ(inc.AboveThreshold(), reb.AboveThreshold());
  }
  // Flood one key from both sites to force the crossing in both modes.
  Timestamp t = events.back().ts;
  bool inc_crossed = false, reb_crossed = false;
  for (int i = 0; i < 20'000 && !(inc_crossed && reb_crossed); ++i) {
    ++t;
    inc.Process(i % 2, 99, t);
    reb.Process(i % 2, 99, t);
    inc_crossed = inc.AboveThreshold();
    reb_crossed = reb.AboveThreshold();
    ASSERT_EQ(inc_crossed, reb_crossed) << "arrival " << i;
  }
  EXPECT_TRUE(inc_crossed);
  EXPECT_EQ(inc.stats().crossings_signaled, reb.stats().crossings_signaled);
}

TEST(IncrementalDriftTest, DetectsCrossingBeyondWindowExpiry) {
  // Streams much longer than the window: the incremental vector goes
  // stale on untouched entries between refreshes, but the protocol must
  // still detect a genuine crossing (behavioral check, not bit-equality).
  auto cfg_r = EcmConfig::Create(0.1, 0.1, WindowMode::kTimeBased, 4'000, 83,
                                 OptimizeFor::kSelfJoinQueries);
  ASSERT_TRUE(cfg_r.ok());
  GeometricSelfJoinMonitor::Config mc;
  mc.threshold = 4e6;
  mc.check_every = 4;
  mc.drift = DriftTracking::kIncremental;
  GeometricSelfJoinMonitor monitor(2, *cfg_r, mc);
  // Quiet uniform phase spanning several windows...
  auto events = ZipfEvents(30'000, 2, 53, /*skew=*/0.0, /*domain=*/2'000);
  for (const auto& e : events) {
    monitor.Process(static_cast<int>(e.node), e.key, e.ts);
  }
  EXPECT_FALSE(monitor.AboveThreshold());
  // ...then a single-key flood: F2 over the 4k window rockets past T.
  Timestamp t = events.back().ts;
  for (int i = 0; i < 8'000 && !monitor.AboveThreshold(); ++i) {
    monitor.Process(i % 2, 7, ++t);
  }
  EXPECT_TRUE(monitor.AboveThreshold());
}

TEST(IncrementalDriftTest, ExpiryHeapCatchesDownwardCrossingWithoutRefresh) {
  // Pins the old staleness bug: with the periodic refresh disabled
  // (refresh_every huge), the former tick-based tracker would keep the
  // flooded cells' stale estimates forever once the flood stops — the
  // site ball never reaches the surface and the monitor stays "above"
  // after the window has long expired the flood. The per-counter
  // expiry-event heap must replay the estimate drops exactly, so
  // incremental mode fires syncs on the very same arrivals as the
  // full-rebuild reference and detects the downward crossing.
  constexpr uint64_t kWin = 2'000;
  auto cfg_r = EcmConfig::Create(0.1, 0.1, WindowMode::kTimeBased, kWin, 83,
                                 OptimizeFor::kSelfJoinQueries);
  ASSERT_TRUE(cfg_r.ok());
  const EcmConfig cfg = *cfg_r;

  // Quiet-phase keys must not collide with the flood key in any row, so
  // no arrival ever re-touches the flooded cells: only window expiry can
  // move them.
  constexpr uint64_t kFloodKey = 7;
  EcmSketch<ExponentialHistogram> probe(cfg);
  uint32_t flood_cols[kMaxSketchDepth];
  probe.RowBuckets(kFloodKey, flood_cols);
  std::vector<uint64_t> quiet_keys;
  for (uint64_t k = 100; quiet_keys.size() < 50; ++k) {
    uint32_t cols[kMaxSketchDepth];
    probe.RowBuckets(k, cols);
    bool collides = false;
    for (int j = 0; j < cfg.depth; ++j) collides |= cols[j] == flood_cols[j];
    if (!collides) quiet_keys.push_back(k);
  }

  std::vector<StreamEvent> script;
  Timestamp ts = 0;
  for (int i = 0; i < 4'000; ++i) {  // flood: 2 arrivals per tick
    if (i % 2 == 0) ++ts;
    script.push_back(StreamEvent{ts, kFloodKey, static_cast<uint32_t>(i % 2)});
  }
  for (int i = 0; i < 4'000; ++i) {  // quiet: disjoint keys, 2 windows long
    ++ts;
    script.push_back(StreamEvent{ts, quiet_keys[i % quiet_keys.size()],
                                 static_cast<uint32_t>(i % 2)});
  }

  GeometricSelfJoinMonitor::Config mc;
  mc.threshold = 1e6;
  mc.check_every = 2;
  mc.refresh_every = 1'000'000'000;  // the legacy staleness tick never fires

  auto run = [&](DriftTracking drift) {
    auto mcd = mc;
    mcd.drift = drift;
    GeometricSelfJoinMonitor monitor(2, cfg, mcd);
    std::vector<size_t> syncs;
    size_t above_at = SIZE_MAX, below_at = SIZE_MAX;
    for (size_t i = 0; i < script.size(); ++i) {
      if (monitor.Process(static_cast<int>(script[i].node), script[i].key,
                          script[i].ts)) {
        syncs.push_back(i);
      }
      if (above_at == SIZE_MAX && monitor.AboveThreshold()) above_at = i;
      if (above_at != SIZE_MAX && below_at == SIZE_MAX &&
          !monitor.AboveThreshold()) {
        below_at = i;
      }
    }
    return std::make_tuple(syncs, above_at, below_at);
  };

  auto [inc_syncs, inc_above, inc_below] = run(DriftTracking::kIncremental);
  auto [reb_syncs, reb_above, reb_below] = run(DriftTracking::kRebuild);
  EXPECT_EQ(inc_syncs, reb_syncs);
  EXPECT_EQ(inc_above, reb_above);
  EXPECT_EQ(inc_below, reb_below);
  // The flood pushes F2 over T; the quiet phase's expiry must bring the
  // monitor back below — an expiry-driven sync, no refresh tick involved.
  ASSERT_NE(inc_above, SIZE_MAX);
  EXPECT_LT(inc_above, 4'000u);
  ASSERT_NE(inc_below, SIZE_MAX) << "downward crossing missed under expiry";
  EXPECT_GE(inc_below, 4'000u);
}

TEST(IncrementalDriftTest, PointMonitorExpiryMatchesRebuildWithoutRefresh) {
  // Same staleness pin for the point monitor: the watched key's rows
  // decay purely by expiry during the quiet phase.
  constexpr uint64_t kWin = 1'500;
  auto cfg_r = EcmConfig::Create(0.1, 0.1, WindowMode::kTimeBased, kWin, 29,
                                 OptimizeFor::kPointQueries);
  ASSERT_TRUE(cfg_r.ok());
  const EcmConfig cfg = *cfg_r;
  constexpr uint64_t kVictim = 0xBEEF;
  EcmSketch<ExponentialHistogram> probe(cfg);
  uint32_t victim_cols[kMaxSketchDepth];
  probe.RowBuckets(kVictim, victim_cols);
  std::vector<uint64_t> quiet_keys;
  for (uint64_t k = 3; quiet_keys.size() < 40; ++k) {
    uint32_t cols[kMaxSketchDepth];
    probe.RowBuckets(k, cols);
    bool collides = false;
    for (int j = 0; j < cfg.depth; ++j) collides |= cols[j] == victim_cols[j];
    if (!collides) quiet_keys.push_back(k);
  }

  std::vector<StreamEvent> script;
  Timestamp ts = 0;
  for (int i = 0; i < 3'000; ++i) {
    if (i % 2 == 0) ++ts;
    script.push_back(StreamEvent{ts, kVictim, static_cast<uint32_t>(i % 2)});
  }
  for (int i = 0; i < 6'000; ++i) {
    ++ts;
    script.push_back(StreamEvent{ts, quiet_keys[i % quiet_keys.size()],
                                 static_cast<uint32_t>(i % 2)});
  }

  GeometricPointMonitor::Config mc;
  mc.key = kVictim;
  mc.threshold = 800;
  mc.check_every = 2;
  mc.refresh_every = 1'000'000'000;

  auto run = [&](DriftTracking drift) {
    auto mcd = mc;
    mcd.drift = drift;
    GeometricPointMonitor monitor(2, cfg, mcd);
    std::vector<size_t> syncs;
    size_t below_at = SIZE_MAX;
    bool was_above = false;
    for (size_t i = 0; i < script.size(); ++i) {
      if (monitor.Process(static_cast<int>(script[i].node), script[i].key,
                          script[i].ts)) {
        syncs.push_back(i);
      }
      was_above |= monitor.AboveThreshold();
      if (was_above && below_at == SIZE_MAX && !monitor.AboveThreshold()) {
        below_at = i;
      }
    }
    EXPECT_TRUE(was_above);
    return std::make_pair(syncs, below_at);
  };

  auto [inc_syncs, inc_below] = run(DriftTracking::kIncremental);
  auto [reb_syncs, reb_below] = run(DriftTracking::kRebuild);
  EXPECT_EQ(inc_syncs, reb_syncs);
  EXPECT_EQ(inc_below, reb_below);
  ASSERT_NE(inc_below, SIZE_MAX) << "downward crossing missed under expiry";
  EXPECT_GE(inc_below, 3'000u);
}

// --- Counter-generic monitors ---------------------------------------------

TEST(CounterGenericMonitorTest, RandomizedWaveSelfJoinMonitorRuns) {
  auto cfg = EcmConfig::Create(0.15, 0.1, WindowMode::kTimeBased, kWindow, 91,
                               OptimizeFor::kPointQueries,
                               CounterFamily::kRandomized, 1 << 16);
  ASSERT_TRUE(cfg.ok());
  GeometricSelfJoinMonitorT<RandomizedWave>::Config mc;
  mc.threshold = 1e12;
  mc.check_every = 8;
  GeometricSelfJoinMonitorT<RandomizedWave> monitor(3, *cfg, mc);
  for (const auto& e : ZipfEvents(9'000, 3, 61, /*skew=*/0.0)) {
    monitor.Process(static_cast<int>(e.node), e.key, e.ts);
  }
  const MonitorStats s = monitor.stats();
  EXPECT_EQ(s.updates, 9'000u);
  EXPECT_GE(s.syncs, 1u);
  EXPECT_LE(s.syncs, 5u);  // huge threshold: near-zero communication
  EXPECT_FALSE(monitor.AboveThreshold());
}

TEST(CounterGenericMonitorTest, RandomizedWavePointMonitorDetectsFlood) {
  auto cfg = EcmConfig::Create(0.15, 0.1, WindowMode::kTimeBased, kWindow, 93,
                               OptimizeFor::kPointQueries,
                               CounterFamily::kRandomized, 1 << 16);
  ASSERT_TRUE(cfg.ok());
  GeometricPointMonitorT<RandomizedWave>::Config mc;
  mc.key = 4242;
  mc.threshold = 600;
  mc.check_every = 2;
  GeometricPointMonitorT<RandomizedWave> monitor(2, *cfg, mc);
  Timestamp t = 1;
  Rng rng(5);
  for (int i = 0; i < 1'200; ++i) {
    monitor.Process(i % 2, 4242, t);
    monitor.Process((i + 1) % 2, rng.Uniform(4'000), t);
    ++t;
  }
  EXPECT_TRUE(monitor.AboveThreshold());
  // The estimate is pinned at the most recent sync — at or after the
  // crossing, but possibly well before the flood's final total.
  EXPECT_GE(monitor.GlobalEstimate(), mc.threshold * 0.8);
  EXPECT_LE(monitor.GlobalEstimate(), 1'200.0 * 1.5);
}

TEST(CounterGenericMonitorTest, RandomizedWavePeriodicAggregator) {
  auto cfg = EcmConfig::Create(0.15, 0.1, WindowMode::kTimeBased, kWindow, 95,
                               OptimizeFor::kPointQueries,
                               CounterFamily::kRandomized, 1 << 16);
  ASSERT_TRUE(cfg.ok());
  PeriodicAggregatorT<RandomizedWave>::Config pc;
  pc.period = 2'000;
  PeriodicAggregatorT<RandomizedWave> agg(2, *cfg, pc);
  auto events = ZipfEvents(10'000, 2, 71, /*skew=*/1.0, /*domain=*/200);
  for (const auto& e : events) {
    agg.Process(static_cast<int>(e.node), e.key, e.ts);
  }
  ASSERT_TRUE(agg.SyncAll().ok());
  auto exact = ComputeExactRangeStats(events, events.back().ts, kWindow);
  auto est = agg.GlobalPointQuery(exact.freqs[0].first, kWindow);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(*est, static_cast<double>(exact.freqs[0].second),
              0.5 * static_cast<double>(exact.l1) + 5.0);
}

// --- ParallelIngest --------------------------------------------------------

TEST(ParallelIngestTest, PeriodicAggregatorMatchesSequentialExactly) {
  // Scheduled propagation is site-local, so the sharded parallel drive
  // must reproduce the sequential run exactly: same pushes, same bytes.
  EcmConfig cfg = SketchCfg(101, OptimizeFor::kPointQueries);
  PeriodicAggregator::Config pc;
  pc.period = 1'500;
  auto events = ZipfEvents(40'000, 8, 81);

  PeriodicAggregator seq(8, cfg, pc);
  for (const auto& e : events) {
    seq.Process(static_cast<int>(e.node), e.key, e.ts);
  }
  const PeriodicAggregator::Stats seq_stats = seq.stats();
  ASSERT_TRUE(seq.SyncAll().ok());
  auto seq_query = seq.GlobalPointQuery(3, kWindow);
  ASSERT_TRUE(seq_query.ok());

  for (int workers : {1, 3, 8}) {
    PeriodicAggregator par(8, cfg, pc);
    ParallelIngestOptions opts;
    opts.num_workers = workers;
    opts.final_sync = false;
    auto report = ParallelIngest(
        events, 8,
        [&par](int site, const StreamEvent& e) {
          par.Process(site, e.key, e.ts);
          return false;  // pushes need no global barrier
        },
        [] {}, opts);
    EXPECT_EQ(report.workers, workers);
    EXPECT_EQ(report.events, events.size());
    EXPECT_EQ(par.stats().updates, seq_stats.updates);
    EXPECT_EQ(par.stats().pushes, seq_stats.pushes);
    EXPECT_EQ(par.stats().periodic_pushes, seq_stats.periodic_pushes);
    EXPECT_EQ(par.stats().network.messages, seq_stats.network.messages);
    EXPECT_EQ(par.stats().network.bytes, seq_stats.network.bytes);
    ASSERT_TRUE(par.SyncAll().ok());
    auto a = par.GlobalPointQuery(3, kWindow);
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(*a, *seq_query) << "workers=" << workers;
  }
}

TEST(ParallelIngestTest, GeometricMonitorDetectsCrossingUnderShardedDrive) {
  EcmConfig cfg = SketchCfg(103);
  auto background = ZipfEvents(20'000, 4, 91, /*skew=*/0.0);
  // Calibrate: background F2, then a flood phase that crosses 4x that.
  std::vector<EcmSketch<ExponentialHistogram>> probe(
      4, EcmSketch<ExponentialHistogram>(cfg));
  for (const auto& e : background) probe[e.node].Add(e.key, e.ts);
  auto f2 = GlobalSelfJoin(probe, kWindow, cfg.epsilon_sw, 1);
  ASSERT_TRUE(f2.ok());

  std::vector<StreamEvent> script = background;
  Timestamp t = background.back().ts;
  for (int i = 0; i < 12'000; ++i) {
    ++t;
    script.push_back(StreamEvent{t, 77, static_cast<uint32_t>(i % 4)});
  }

  GeometricSelfJoinMonitor::Config mc;
  mc.threshold = 4.0 * *f2;
  mc.check_every = 8;
  GeometricSelfJoinMonitor monitor(4, cfg, mc);
  ParallelIngestOptions opts;
  opts.num_workers = 4;
  opts.batch_size = 256;
  auto report = ParallelIngest(
      script, 4,
      [&monitor](int site, const StreamEvent& e) {
        return monitor.LocalProcess(site, e.key, e.ts);
      },
      [&monitor] { monitor.GlobalSync(); }, opts);
  EXPECT_TRUE(monitor.AboveThreshold());
  const MonitorStats s = monitor.stats();
  EXPECT_EQ(s.updates, script.size());
  // Every barrier round ran GlobalSync exactly once (plus the final
  // drain), and the transport charged exactly those syncs.
  EXPECT_EQ(s.syncs, report.sync_rounds);
  const uint64_t dim = uint64_t{cfg.width} * static_cast<uint64_t>(cfg.depth);
  EXPECT_EQ(s.network.bytes, s.syncs * 2 * 4 * dim * sizeof(double));
  EXPECT_GE(s.crossings_signaled, 1u);
}

TEST(ParallelIngestTest, BarrierDrainsOncePerRoundUnderContention) {
  // Force frequent syncs from every worker: each drain must run exactly
  // once regardless of how many workers requested it.
  constexpr int kSites = 6;
  std::vector<StreamEvent> events;
  Timestamp t = 0;
  for (int i = 0; i < 30'000; ++i) {
    events.push_back(StreamEvent{++t, static_cast<uint64_t>(i),
                                 static_cast<uint32_t>(i % kSites)});
  }
  std::atomic<uint64_t> local_flags{0};
  uint64_t drains = 0;  // written only inside the barrier
  ParallelIngestOptions opts;
  opts.num_workers = kSites;
  opts.batch_size = 64;
  auto report = ParallelIngest(
      events, kSites,
      [&local_flags](int, const StreamEvent& e) {
        const bool request = e.key % 97 == 0;
        if (request) local_flags.fetch_add(1, std::memory_order_relaxed);
        return request;
      },
      [&drains] { ++drains; }, opts);
  EXPECT_EQ(report.sync_rounds, drains);
  EXPECT_GT(drains, 1u);
  // Far fewer drains than requests: rounds coalesce same-batch requests.
  EXPECT_LT(drains, local_flags.load());
}

}  // namespace
}  // namespace ecm
