// Tests for order-preserving aggregation of window synopses (paper §5):
// Theorem 4's error bound for exponential histograms, the deterministic-
// wave extension, lossless randomized-wave union, and the compatibility
// checks.

#include "src/window/merge.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/util/random.h"

namespace ecm {
namespace {

// Interleaved ground truth over several streams.
class MultiStreamTruth {
 public:
  void Add(Timestamp ts, uint64_t count = 1) {
    for (uint64_t i = 0; i < count; ++i) stamps_.push_back(ts);
  }
  uint64_t Count(Timestamp now, uint64_t range) const {
    Timestamp boundary = WindowStart(now, range);
    uint64_t n = 0;
    for (Timestamp t : stamps_) {
      if (t > boundary && t <= now) ++n;
    }
    return n;
  }

 private:
  std::vector<Timestamp> stamps_;
};

TEST(MergeHistogramsTest, RejectsEmptyInput) {
  EXPECT_FALSE(MergeHistograms({}, 0.1).ok());
}

TEST(MergeHistogramsTest, RejectsMismatchedWindows) {
  ExponentialHistogram a({0.1, 100});
  ExponentialHistogram b({0.1, 200});
  auto r = MergeHistograms({&a, &b}, 0.1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIncompatible);
}

TEST(MergeHistogramsTest, MergeOfEmptiesIsEmpty) {
  ExponentialHistogram a({0.1, 100});
  ExponentialHistogram b({0.1, 100});
  auto m = MergeHistograms({&a, &b}, 0.1);
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(m->Empty());
}

TEST(MergeHistogramsTest, SingleInputPreservesCount) {
  ExponentialHistogram a({0.1, 100000});
  for (Timestamp t = 1; t <= 2000; ++t) a.Add(t);
  auto m = MergeHistograms({&a}, 0.1);
  ASSERT_TRUE(m.ok());
  double orig = a.Estimate(2000, 100000);
  double merged = m->Estimate(2000, 100000);
  // One re-summarization: error vs the original estimate within ~2eps.
  EXPECT_NEAR(merged, orig, orig * 0.25 + 2.0);
}

TEST(MergeHistogramsTest, MergedTotalMatchesSumOfBucketTotals) {
  ExponentialHistogram a({0.1, 1 << 20});
  ExponentialHistogram b({0.1, 1 << 20});
  for (Timestamp t = 1; t <= 1000; ++t) a.Add(t);
  for (Timestamp t = 1; t <= 1500; ++t) b.Add(t * 2);
  auto m = MergeHistograms({&a, &b}, 0.1);
  ASSERT_TRUE(m.ok());
  // Replay conserves every bit that was in a bucket.
  EXPECT_EQ(m->BucketTotal(), a.BucketTotal() + b.BucketTotal());
}

// Theorem 4 sweep: merged-estimate error <= (eps + eps' + eps*eps') * truth
// (+1 rounding slack) across epsilons, stream counts and query ranges.
struct MergeSweepParam {
  double eps;
  double eps_prime;
  int num_streams;
};

class MergeErrorSweep : public ::testing::TestWithParam<MergeSweepParam> {};

TEST_P(MergeErrorSweep, Theorem4Bound) {
  const MergeSweepParam p = GetParam();
  constexpr uint64_t kWindow = 1 << 20;
  std::vector<ExponentialHistogram> ehs(
      p.num_streams, ExponentialHistogram({p.eps, kWindow}));
  MultiStreamTruth truth;
  Rng rng(p.num_streams * 1000 + static_cast<uint64_t>(p.eps * 100));

  // Interleaved streams with skewed per-stream rates.
  Timestamp t = 1;
  for (int i = 0; i < 40000; ++i) {
    t += rng.Uniform(3);
    int s = static_cast<int>(rng.Uniform(p.num_streams));
    ehs[s].Add(t);
    truth.Add(t);
  }
  std::vector<const ExponentialHistogram*> ptrs;
  for (auto& eh : ehs) ptrs.push_back(&eh);
  auto merged = MergeHistograms(ptrs, p.eps_prime);
  ASSERT_TRUE(merged.ok());

  double bound = p.eps + p.eps_prime + p.eps * p.eps_prime;
  for (uint64_t range : {1000ULL, 20000ULL, 60000ULL}) {
    double est = merged->Estimate(t, range);
    double tv = static_cast<double>(truth.Count(t, range));
    EXPECT_LE(std::abs(est - tv), bound * tv + 2.0)
        << "range=" << range << " truth=" << tv << " est=" << est;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MergeErrorSweep,
    ::testing::Values(MergeSweepParam{0.05, 0.05, 2},
                      MergeSweepParam{0.1, 0.1, 2},
                      MergeSweepParam{0.1, 0.1, 5},
                      MergeSweepParam{0.1, 0.05, 8},
                      MergeSweepParam{0.2, 0.2, 3},
                      MergeSweepParam{0.05, 0.2, 4}));

TEST(MergeWavesTest, Theorem4StyleBoundHolds) {
  constexpr uint64_t kWindow = 1 << 20;
  constexpr double kEps = 0.1;
  DeterministicWave a({kEps, kWindow, 1 << 18});
  DeterministicWave b({kEps, kWindow, 1 << 18});
  MultiStreamTruth truth;
  Rng rng(42);
  Timestamp t = 1;
  for (int i = 0; i < 30000; ++i) {
    t += rng.Uniform(3);
    if (rng.Bernoulli(0.6)) {
      a.Add(t);
    } else {
      b.Add(t);
    }
    truth.Add(t);
  }
  auto merged = MergeWaves({&a, &b}, kEps, 1 << 19);
  ASSERT_TRUE(merged.ok());
  double bound = kEps + kEps + kEps * kEps;
  for (uint64_t range : {5000ULL, 30000ULL}) {
    double est = merged->Estimate(t, range);
    double tv = static_cast<double>(truth.Count(t, range));
    EXPECT_LE(std::abs(est - tv), bound * tv + 2.0)
        << "range=" << range << " truth=" << tv << " est=" << est;
  }
}

TEST(MergeWavesTest, RejectsMismatchedWindows) {
  DeterministicWave a({0.1, 100, 1000});
  DeterministicWave b({0.1, 999, 1000});
  EXPECT_FALSE(MergeWaves({&a, &b}, 0.1, 1000).ok());
}

TEST(MergeRandomizedWavesTest, RejectsMismatchedConfig) {
  RandomizedWave::Config ca;
  ca.epsilon = 0.1;
  RandomizedWave::Config cb = ca;
  cb.epsilon = 0.2;
  RandomizedWave a(ca), b(cb);
  auto r = MergeRandomizedWaves({&a, &b}, 1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIncompatible);
}

TEST(MergeRandomizedWavesTest, LosslessWhileSamplesComplete) {
  // Small streams: level 0 of every sub-wave holds everything, so the
  // merged wave answers exactly.
  RandomizedWave::Config cfg;
  cfg.epsilon = 0.2;  // capacity 100
  cfg.window_len = 1 << 16;
  cfg.max_arrivals = 1 << 12;
  cfg.seed = 1;
  RandomizedWave a(cfg);
  cfg.seed = 2;
  RandomizedWave b(cfg);
  for (Timestamp t = 1; t <= 40; ++t) a.Add(2 * t);
  for (Timestamp t = 1; t <= 30; ++t) b.Add(2 * t + 1);
  auto m = MergeRandomizedWaves({&a, &b}, 99);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->Estimate(81, 1 << 16), 70.0);
  EXPECT_EQ(m->lifetime_count(), 70u);
}

TEST(MergeRandomizedWavesTest, LargeMergeStaysInEpsilonBand) {
  RandomizedWave::Config cfg;
  cfg.epsilon = 0.1;
  cfg.delta = 0.05;
  cfg.window_len = 1 << 20;
  cfg.max_arrivals = 1 << 17;
  std::vector<RandomizedWave> waves;
  for (int i = 0; i < 4; ++i) {
    cfg.seed = 100 + i;
    waves.emplace_back(cfg);
  }
  MultiStreamTruth truth;
  Rng rng(8);
  Timestamp t = 1;
  for (int i = 0; i < 60000; ++i) {
    t += rng.Uniform(3);
    waves[rng.Uniform(4)].Add(t);
    truth.Add(t);
  }
  std::vector<const RandomizedWave*> ptrs;
  for (auto& w : waves) ptrs.push_back(&w);
  auto merged = MergeRandomizedWaves(ptrs, 5);
  ASSERT_TRUE(merged.ok());
  for (uint64_t range : {10000ULL, 60000ULL}) {
    double est = merged->Estimate(t, range);
    double tv = static_cast<double>(truth.Count(t, range));
    EXPECT_LE(std::abs(est - tv), 2.5 * cfg.epsilon * tv + 2.0)
        << "range=" << range << " truth=" << tv << " est=" << est;
  }
}

TEST(MergeRandomizedWavesTest, HandlesDifferentLevelCounts) {
  RandomizedWave::Config small;
  small.epsilon = 0.2;
  small.window_len = 1 << 16;
  small.max_arrivals = 1 << 10;
  small.seed = 3;
  RandomizedWave::Config big = small;
  big.max_arrivals = 1 << 16;
  big.seed = 4;
  RandomizedWave a(small), b(big);
  ASSERT_LT(a.num_levels(), b.num_levels());
  for (Timestamp t = 1; t <= 5000; ++t) {
    a.Add(2 * t);
    b.Add(2 * t + 1);
  }
  auto m = MergeRandomizedWaves({&a, &b}, 17);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->num_levels(), b.num_levels());
  double est = m->Estimate(10001, 1 << 16);
  EXPECT_NEAR(est, 10000.0, 10000.0 * 0.5);
}

TEST(ReplayTest, BucketEventsSplitHalfHalf) {
  std::vector<BucketView> buckets = {{10, 20, 8}, {20, 20, 3}, {20, 25, 1}};
  std::vector<ReplayEvent> events;
  AppendBucketEvents(buckets, &events);
  // 8 -> 4@10 + 4@20; 3 zero-width -> 3@20; 1 -> 1@25.
  uint64_t total = 0;
  for (const auto& e : events) total += e.count;
  EXPECT_EQ(total, 12u);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].ts, 10u);
  EXPECT_EQ(events[0].count, 4u);
}

TEST(ReplayTest, ClampsTimestampZero) {
  std::vector<BucketView> buckets = {{0, 0, 4}};
  std::vector<ReplayEvent> events;
  AppendBucketEvents(buckets, &events);
  for (const auto& e : events) EXPECT_GE(e.ts, 1u);
}

}  // namespace
}  // namespace ecm
