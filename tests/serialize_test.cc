// Tests for whole-sketch wire serialization: round-trip equivalence for
// every counter type, corruption rejection, and wire-size sanity (the
// numbers the distributed benches account as network transfer).

#include "src/dist/serialize.h"

#include <gtest/gtest.h>

#include "src/stream/generators.h"
#include "src/util/random.h"

namespace ecm {
namespace {

template <typename Counter>
void FillSketch(EcmSketch<Counter>* sketch, int n, uint64_t seed) {
  ZipfStream::Config zc;
  zc.domain = 500;
  zc.skew = 1.0;
  zc.seed = seed;
  ZipfStream stream(zc);
  for (const auto& e : stream.Take(n)) sketch->Add(e.key, e.ts);
}

TEST(SerializeConfigTest, RoundTrip) {
  auto cfg = EcmConfig::Create(0.07, 0.03, WindowMode::kCountBased, 12345,
                               999, OptimizeFor::kSelfJoinQueries);
  ASSERT_TRUE(cfg.ok());
  ByteWriter w;
  SerializeEcmConfig(*cfg, &w);
  ByteReader r(w.bytes());
  auto back = DeserializeEcmConfig(&r);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->mode, cfg->mode);
  EXPECT_EQ(back->window_len, cfg->window_len);
  EXPECT_EQ(back->width, cfg->width);
  EXPECT_EQ(back->depth, cfg->depth);
  EXPECT_EQ(back->seed, cfg->seed);
  EXPECT_DOUBLE_EQ(back->epsilon_sw, cfg->epsilon_sw);
  EXPECT_DOUBLE_EQ(back->epsilon_cm, cfg->epsilon_cm);
  EXPECT_TRUE(back->CompatibleWith(*cfg));
}

TEST(SerializeConfigTest, RejectsGarbage) {
  std::vector<uint8_t> junk = {0x01, 0x02, 0x03};
  ByteReader r(junk.data(), junk.size());
  EXPECT_FALSE(DeserializeEcmConfig(&r).ok());
}

TEST(SerializeConfigTest, RoundTripsHashReduction) {
  auto cfg = EcmConfig::Create(0.1, 0.1, WindowMode::kTimeBased, 1000, 7);
  ASSERT_TRUE(cfg.ok());
  cfg->hash_reduction = HashReduction::kModulo;
  ByteWriter w;
  SerializeEcmConfig(*cfg, &w);
  ByteReader r(w.bytes());
  auto back = DeserializeEcmConfig(&r);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->hash_reduction, HashReduction::kModulo);
  // A config using the other reduction maps keys differently and must not
  // be considered compatible.
  EcmConfig other = *cfg;
  other.hash_reduction = HashReduction::kFastRange;
  EXPECT_FALSE(back->CompatibleWith(other));
}

TEST(SerializeConfigTest, RejectsUnversionedLegacyEncoding) {
  // Pre-versioning blobs put the mode byte right after the magic; the
  // explicit wire version must reject them instead of misreading buckets.
  auto cfg = EcmConfig::Create(0.1, 0.1, WindowMode::kTimeBased, 1000, 7);
  ASSERT_TRUE(cfg.ok());
  ByteWriter w;
  SerializeEcmConfig(*cfg, &w);
  auto bytes = w.bytes();
  // Strip the version + reduction bytes to fake the legacy layout.
  std::vector<uint8_t> legacy(bytes.begin(), bytes.begin() + 4);
  legacy.insert(legacy.end(), bytes.begin() + 6, bytes.end());
  ByteReader r(legacy.data(), legacy.size());
  EXPECT_FALSE(DeserializeEcmConfig(&r).ok());
}

template <typename Counter>
void RunSketchRoundTrip() {
  auto sketch = EcmSketch<Counter>::Create(
      0.1, 0.1, WindowMode::kTimeBased, 50000, 42,
      OptimizeFor::kPointQueries, /*max_arrivals=*/1 << 16);
  ASSERT_TRUE(sketch.ok());
  FillSketch<Counter>(&*sketch, 10000, 3);

  auto bytes = SerializeSketch(*sketch);
  auto back = DeserializeSketch<Counter>(bytes);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->l1_lifetime(), sketch->l1_lifetime());
  EXPECT_EQ(back->Now(), sketch->Now());
  for (uint64_t key = 0; key < 500; key += 13) {
    for (uint64_t range : {1000u, 50000u}) {
      EXPECT_EQ(back->PointQuery(key, range), sketch->PointQuery(key, range))
          << "key " << key << " range " << range;
    }
  }
}

TEST(SerializeSketchTest, RoundTripEh) {
  RunSketchRoundTrip<ExponentialHistogram>();
}
TEST(SerializeSketchTest, RoundTripDw) {
  RunSketchRoundTrip<DeterministicWave>();
}
TEST(SerializeSketchTest, RoundTripRw) { RunSketchRoundTrip<RandomizedWave>(); }
TEST(SerializeSketchTest, RoundTripExact) { RunSketchRoundTrip<ExactWindow>(); }

// Layout-independence proof for the flat ring-buffer bucket storage: the
// wire encoding is a level log of bucket end timestamps, so a histogram
// built through the batch weighted-insert path must round-trip through
// the unchanged format and answer every query identically.
TEST(SerializeSketchTest, RoundTripEhWeightedInserts) {
  auto sketch = EcmEh::Create(0.1, 0.1, WindowMode::kTimeBased, 50000, 42);
  ASSERT_TRUE(sketch.ok());
  ZipfStream::Config zc;
  zc.domain = 200;
  zc.skew = 1.0;
  zc.seed = 9;
  ZipfStream stream(zc);
  Rng rng(9);
  for (const auto& e : stream.Take(3000)) {
    sketch->Add(e.key, e.ts, 1 + rng.Uniform(10'000));
  }

  auto bytes = SerializeSketch(*sketch);
  auto back = DeserializeSketch<ExponentialHistogram>(bytes);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->l1_lifetime(), sketch->l1_lifetime());
  for (uint64_t key = 0; key < 200; key += 7) {
    for (uint64_t range : {1000u, 50000u}) {
      EXPECT_EQ(back->PointQuery(key, range), sketch->PointQuery(key, range))
          << "key " << key << " range " << range;
    }
  }
  // Re-serialization is byte-stable (same bucket log either way).
  EXPECT_EQ(SerializeSketch(*back), bytes);
}

TEST(SerializeSketchTest, DeserializedSketchIsMergeable) {
  auto a = EcmEh::Create(0.1, 0.1, WindowMode::kTimeBased, 50000, 7);
  ASSERT_TRUE(a.ok());
  FillSketch<ExponentialHistogram>(&*a, 5000, 1);
  auto bytes = SerializeSketch(*a);
  auto b = DeserializeSketch<ExponentialHistogram>(bytes);
  ASSERT_TRUE(b.ok());
  auto merged = EcmEh::Merge({&*a, &*b}, a->config().epsilon_sw);
  ASSERT_TRUE(merged.ok()) << merged.status();
  // a ⊕ a doubles every estimate (within merge error).
  double single = a->PointQuery(1, 50000);
  double doubled = merged->PointQuery(1, 50000);
  EXPECT_NEAR(doubled, 2 * single, 2 * single * 0.3 + 3.0);
}

TEST(SerializeSketchTest, TruncationRejected) {
  auto sketch = EcmEh::Create(0.1, 0.1, WindowMode::kTimeBased, 50000, 9);
  ASSERT_TRUE(sketch.ok());
  FillSketch<ExponentialHistogram>(&*sketch, 2000, 2);
  auto bytes = SerializeSketch(*sketch);
  bytes.resize(bytes.size() / 3);
  EXPECT_FALSE(DeserializeSketch<ExponentialHistogram>(bytes).ok());
}

TEST(SerializeSketchTest, WireSizeOrdersOfMagnitude) {
  // The paper's headline resource result: at equal epsilon, the RW sketch
  // is at least an order of magnitude bigger on the wire than EH.
  constexpr double kEps = 0.1;
  auto eh = EcmEh::Create(kEps, 0.1, WindowMode::kTimeBased, 100000, 5);
  auto rw = EcmRw::Create(kEps, 0.1, WindowMode::kTimeBased, 100000, 5,
                          OptimizeFor::kPointQueries, 1 << 16);
  ASSERT_TRUE(eh.ok() && rw.ok());
  FillSketch<ExponentialHistogram>(&*eh, 30000, 4);
  FillSketch<RandomizedWave>(&*rw, 30000, 4);
  size_t eh_bytes = SketchWireSize(*eh);
  size_t rw_bytes = SketchWireSize(*rw);
  EXPECT_GT(rw_bytes, eh_bytes * 10) << "EH=" << eh_bytes
                                     << " RW=" << rw_bytes;
}

TEST(SerializeSketchTest, EmptySketchHasSmallWire) {
  auto sketch = EcmEh::Create(0.1, 0.1, WindowMode::kTimeBased, 1000, 1);
  ASSERT_TRUE(sketch.ok());
  EXPECT_LT(SketchWireSize(*sketch), 4096u);
}

}  // namespace
}  // namespace ecm
