// Failure-injection tests for the wire format: deserializers must survive
// arbitrary truncation and random byte corruption of every synopsis type
// without crashing — either rejecting with a Corruption status or, when
// the flip happens to produce a well-formed payload, yielding an object
// that answers queries without undefined behaviour.

#include <gtest/gtest.h>

#include "src/dist/serialize.h"
#include "src/stream/generators.h"
#include "src/util/random.h"

namespace ecm {
namespace {

template <typename Counter>
std::vector<uint8_t> SerializedCounter(uint64_t seed) {
  typename Counter::Config cfg{};
  if constexpr (std::is_same_v<Counter, ExponentialHistogram>) {
    cfg = {0.1, 5000};
  } else if constexpr (std::is_same_v<Counter, DeterministicWave>) {
    cfg = {0.1, 5000, 1 << 14};
  } else if constexpr (std::is_same_v<Counter, RandomizedWave>) {
    cfg.epsilon = 0.2;
    cfg.window_len = 5000;
    cfg.max_arrivals = 1 << 12;
    cfg.seed = seed;
  } else {
    cfg = {5000};
  }
  Counter counter(cfg);
  Rng rng(seed);
  Timestamp t = 1;
  for (int i = 0; i < 3000; ++i) {
    t += rng.Uniform(3);
    counter.Add(t);
  }
  ByteWriter w;
  counter.SerializeTo(&w);
  return w.MoveBytes();
}

template <typename Counter>
void RunTruncationSweep() {
  auto bytes = SerializedCounter<Counter>(1);
  // Every strict prefix must be rejected or parse to a safe object.
  for (size_t len = 0; len < bytes.size(); len += 7) {
    ByteReader r(bytes.data(), len);
    auto result = Counter::Deserialize(&r);
    if (result.ok()) {
      // A prefix that happens to parse must still answer queries safely.
      (void)result->Estimate(result->last_timestamp(), 1000);
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
    }
  }
}

TEST(CorruptionTest, EhTruncationSweep) {
  RunTruncationSweep<ExponentialHistogram>();
}
TEST(CorruptionTest, DwTruncationSweep) {
  RunTruncationSweep<DeterministicWave>();
}
TEST(CorruptionTest, RwTruncationSweep) {
  RunTruncationSweep<RandomizedWave>();
}
TEST(CorruptionTest, ExactTruncationSweep) {
  RunTruncationSweep<ExactWindow>();
}

template <typename Counter>
void RunBitFlipSweep(int trials) {
  auto bytes = SerializedCounter<Counter>(2);
  Rng rng(99);
  for (int trial = 0; trial < trials; ++trial) {
    auto corrupted = bytes;
    // Flip 1-4 random bits.
    int flips = 1 + static_cast<int>(rng.Uniform(4));
    for (int f = 0; f < flips; ++f) {
      size_t pos = rng.Uniform(corrupted.size());
      corrupted[pos] ^= static_cast<uint8_t>(1u << rng.Uniform(8));
    }
    ByteReader r(corrupted);
    auto result = Counter::Deserialize(&r);
    if (result.ok()) {
      (void)result->Estimate(result->last_timestamp(), 1000);
      (void)result->MemoryBytes();
    }
  }
}

TEST(CorruptionTest, EhBitFlips) { RunBitFlipSweep<ExponentialHistogram>(300); }
TEST(CorruptionTest, DwBitFlips) { RunBitFlipSweep<DeterministicWave>(300); }
TEST(CorruptionTest, RwBitFlips) { RunBitFlipSweep<RandomizedWave>(300); }
TEST(CorruptionTest, ExactBitFlips) { RunBitFlipSweep<ExactWindow>(300); }

TEST(CorruptionTest, SketchTruncationSweep) {
  auto sketch = EcmEh::Create(0.15, 0.2, WindowMode::kTimeBased, 5000, 3);
  ASSERT_TRUE(sketch.ok());
  Rng rng(5);
  Timestamp t = 1;
  for (int i = 0; i < 5000; ++i) {
    t += rng.Uniform(2);
    sketch->Add(rng.Uniform(100), t);
  }
  auto bytes = SerializeSketch(*sketch);
  for (size_t len = 0; len < bytes.size(); len += 97) {
    auto prefix = bytes;
    prefix.resize(len);
    auto result = DeserializeSketch<ExponentialHistogram>(prefix);
    if (result.ok()) {
      (void)result->PointQuery(1, 5000);
    }
  }
}

TEST(CorruptionTest, SketchBitFlips) {
  auto sketch = EcmEh::Create(0.15, 0.2, WindowMode::kTimeBased, 5000, 4);
  ASSERT_TRUE(sketch.ok());
  Rng rng(6);
  Timestamp t = 1;
  for (int i = 0; i < 5000; ++i) {
    t += rng.Uniform(2);
    sketch->Add(rng.Uniform(100), t);
  }
  auto bytes = SerializeSketch(*sketch);
  for (int trial = 0; trial < 200; ++trial) {
    auto corrupted = bytes;
    size_t pos = rng.Uniform(corrupted.size());
    corrupted[pos] ^= static_cast<uint8_t>(1u << rng.Uniform(8));
    auto result = DeserializeSketch<ExponentialHistogram>(corrupted);
    if (result.ok()) {
      (void)result->PointQuery(1, 5000);
      (void)result->SelfJoin(5000);
    }
  }
}

TEST(CorruptionTest, CrossTypeBytesRejected) {
  // Bytes of one synopsis type must not parse as another (magic bytes).
  auto eh_bytes = SerializedCounter<ExponentialHistogram>(7);
  ByteReader r1(eh_bytes);
  EXPECT_FALSE(DeterministicWave::Deserialize(&r1).ok());
  ByteReader r2(eh_bytes);
  EXPECT_FALSE(RandomizedWave::Deserialize(&r2).ok());
  ByteReader r3(eh_bytes);
  EXPECT_FALSE(ExactWindow::Deserialize(&r3).ok());
}

TEST(CorruptionTest, EmptyInputRejectedEverywhere) {
  ByteReader r(nullptr, 0);
  EXPECT_FALSE(ExponentialHistogram::Deserialize(&r).ok());
  ByteReader r2(nullptr, 0);
  EXPECT_FALSE(DeserializeEcmConfig(&r2).ok());
}

}  // namespace
}  // namespace ecm
