// Tests for src/util: Status/Result, hashing, RNG, bits, byte I/O.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "src/util/bits.h"
#include "src/util/bytes.h"
#include "src/util/hash.h"
#include "src/util/random.h"
#include "src/util/result.h"
#include "src/util/status.h"

namespace ecm {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Incompatible("shape mismatch");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIncompatible);
  EXPECT_EQ(s.ToString(), "Incompatible: shape mismatch");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 6; ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = [] { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    ECM_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = Status::OutOfRange("too big");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, MoveValueTransfersOwnership) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = r.MoveValue();
  EXPECT_EQ(v.size(), 3u);
}

TEST(HashTest, Mix64IsBijectiveOnSamples) {
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 10000; ++i) seen.insert(Mix64(i));
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(HashTest, MulModMersenne61MatchesSmallCases) {
  EXPECT_EQ(PairwiseHash::MulModMersenne61(3, 5), 15u);
  // (p-1) * 2 mod p = p - 2.
  uint64_t p = PairwiseHash::kMersenne61;
  EXPECT_EQ(PairwiseHash::MulModMersenne61(p - 1, 2), p - 2);
}

TEST(HashTest, MulModMersenne61ExactForFullWidthOperands) {
  // Mix64 outputs span all 64 bits; the reduction must stay exact there
  // (a single folding round is not enough — regression guard for the
  // fast-range reduction, which needs Raw() < 2^61).
  uint64_t p = PairwiseHash::kMersenne61;
  EXPECT_EQ(PairwiseHash::MulModMersenne61(1ULL << 61, 1), 1u);
  EXPECT_EQ(PairwiseHash::MulModMersenne61(~0ULL, 1), (~0ULL) % p);
  EXPECT_EQ(PairwiseHash::MulModMersenne61(~0ULL, ~0ULL),
            static_cast<uint64_t>((static_cast<__uint128_t>(~0ULL) *
                                   (~0ULL)) %
                                  p));
}

TEST(HashTest, RawStaysBelowMersenne61) {
  PairwiseHash h(123, 456);
  for (uint64_t k = 0; k < 20000; ++k) {
    EXPECT_LT(h.Raw(k), PairwiseHash::kMersenne61);
  }
}

TEST(HashTest, BucketInRange) {
  PairwiseHash h(123, 456);
  for (uint64_t k = 0; k < 1000; ++k) {
    EXPECT_LT(h.Bucket(k, 37), 37u);
  }
}

TEST(HashTest, FamilyIsDeterministic) {
  HashFamily a(99, 4), b(99, 4);
  EXPECT_TRUE(a.SameAs(b));
  for (int row = 0; row < 4; ++row) {
    for (uint64_t k = 0; k < 100; ++k) {
      EXPECT_EQ(a.Bucket(row, k, 101), b.Bucket(row, k, 101));
    }
  }
}

TEST(HashTest, RowsDiffer) {
  HashFamily f(7, 3);
  int diff = 0;
  for (uint64_t k = 0; k < 200; ++k) {
    if (f.Bucket(0, k, 1000) != f.Bucket(1, k, 1000)) ++diff;
  }
  EXPECT_GT(diff, 150);  // rows are independent functions
}

TEST(HashTest, SpreadIsRoughlyUniform) {
  PairwiseHash h(1, 2);
  constexpr uint32_t kWidth = 16;
  std::vector<int> counts(kWidth, 0);
  constexpr int kN = 32000;
  for (uint64_t k = 0; k < kN; ++k) ++counts[h.Bucket(k, kWidth)];
  for (int c : counts) {
    EXPECT_GT(c, kN / kWidth / 2);
    EXPECT_LT(c, kN / kWidth * 2);
  }
}

TEST(HashTest, BucketsMixedAgreesWithPerRowBucket) {
  HashFamily f(321, 5);
  uint32_t cols[kMaxSketchDepth];
  for (uint64_t k = 0; k < 500; ++k) {
    f.BucketsMixed(k * 0x10001ULL, 773, cols);
    for (int row = 0; row < f.depth(); ++row) {
      EXPECT_EQ(cols[row], f.Bucket(row, k * 0x10001ULL, 773));
    }
  }
}

TEST(HashTest, ReductionVersionsDiffer) {
  // The fast-range and modulo reductions are different mappings of the
  // same raw hash — families must not claim compatibility across them.
  HashFamily fast(5, 3, HashReduction::kFastRange);
  HashFamily mod(5, 3, HashReduction::kModulo);
  EXPECT_FALSE(fast.SameAs(mod));
  int diff = 0;
  for (uint64_t k = 0; k < 500; ++k) {
    if (fast.Bucket(0, k, 1000) != mod.Bucket(0, k, 1000)) ++diff;
  }
  EXPECT_GT(diff, 400);
}

// Chi-square uniformity of the fast-range reduction over the buckets, for
// sequential and adversarially structured key sets. 255 degrees of
// freedom: chi2 above ~330 has p < 0.001, so a comfortably larger bound
// still catches real skew (a broken reduction scores thousands).
TEST(HashTest, FastRangeChiSquareUniform) {
  constexpr uint32_t kWidth = 256;
  constexpr uint64_t kN = 100'000;
  struct KeySet {
    const char* name;
    uint64_t (*key)(uint64_t);
  };
  const KeySet sets[] = {
      {"sequential", [](uint64_t i) { return i; }},
      {"aligned-4k", [](uint64_t i) { return i << 12; }},
      {"ip-like", [](uint64_t i) { return uint64_t{0x0A000000} + i; }},
      {"high-bits", [](uint64_t i) { return i << 32; }},
  };
  PairwiseHash h(911, 17);
  for (const KeySet& s : sets) {
    std::vector<double> counts(kWidth, 0.0);
    for (uint64_t i = 0; i < kN; ++i) {
      uint32_t b = h.Bucket(s.key(i), kWidth, HashReduction::kFastRange);
      ASSERT_LT(b, kWidth);
      counts[b] += 1.0;
    }
    double expected = static_cast<double>(kN) / kWidth;
    double chi2 = 0.0;
    for (double c : counts) {
      chi2 += (c - expected) * (c - expected) / expected;
    }
    EXPECT_LT(chi2, 400.0) << "key set " << s.name;
  }
}

TEST(RandomTest, DeterministicForSeed) {
  Rng a(5), b(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, UniformStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.Uniform(17), 17u);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, GeometricLevelDistribution) {
  Rng rng(3);
  constexpr int kN = 100000;
  int level0 = 0;
  for (int i = 0; i < kN; ++i) {
    if (rng.GeometricLevel(30) == 0) ++level0;
  }
  // P[level == 0] = 1/2.
  EXPECT_NEAR(static_cast<double>(level0) / kN, 0.5, 0.02);
}

TEST(RandomTest, BernoulliMean) {
  Rng rng(4);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(BitsTest, Log2Helpers) {
  EXPECT_EQ(FloorLog2(1), 0);
  EXPECT_EQ(FloorLog2(2), 1);
  EXPECT_EQ(FloorLog2(3), 1);
  EXPECT_EQ(FloorLog2(1024), 10);
  EXPECT_EQ(CeilLog2(1), 0);
  EXPECT_EQ(CeilLog2(2), 1);
  EXPECT_EQ(CeilLog2(3), 2);
  EXPECT_EQ(CeilLog2(1025), 11);
}

TEST(BitsTest, PowerOfTwo) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(64));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(12));
}

TEST(BitsTest, TrailingZeros) {
  EXPECT_EQ(TrailingZeros(1), 0);
  EXPECT_EQ(TrailingZeros(8), 3);
  EXPECT_EQ(TrailingZeros(12), 2);
  EXPECT_EQ(TrailingZeros(0), 64);
}

TEST(BytesTest, FixedRoundTrip) {
  ByteWriter w;
  w.PutFixed<uint32_t>(0xDEADBEEF);
  w.PutFixed<uint8_t>(7);
  ByteReader r(w.bytes());
  EXPECT_EQ(*r.GetFixed<uint32_t>(), 0xDEADBEEFu);
  EXPECT_EQ(*r.GetFixed<uint8_t>(), 7u);
  EXPECT_TRUE(r.exhausted());
}

TEST(BytesTest, VarintRoundTrip) {
  std::vector<uint64_t> values = {0, 1, 127, 128, 300, 1ULL << 20,
                                  1ULL << 40, ~0ULL};
  ByteWriter w;
  for (uint64_t v : values) w.PutVarint(v);
  ByteReader r(w.bytes());
  for (uint64_t v : values) EXPECT_EQ(*r.GetVarint(), v);
  EXPECT_TRUE(r.exhausted());
}

TEST(BytesTest, SignedVarintRoundTrip) {
  std::vector<int64_t> values = {0, -1, 1, -64, 64, -1000000, 1000000};
  ByteWriter w;
  for (int64_t v : values) w.PutSignedVarint(v);
  ByteReader r(w.bytes());
  for (int64_t v : values) EXPECT_EQ(*r.GetSignedVarint(), v);
}

TEST(BytesTest, DoubleRoundTrip) {
  ByteWriter w;
  w.PutDouble(3.14159);
  w.PutDouble(-0.0);
  ByteReader r(w.bytes());
  EXPECT_DOUBLE_EQ(*r.GetDouble(), 3.14159);
  EXPECT_DOUBLE_EQ(*r.GetDouble(), -0.0);
}

TEST(BytesTest, TruncatedReadsFailCleanly) {
  ByteWriter w;
  w.PutFixed<uint64_t>(1);
  ByteReader r(w.bytes().data(), 3);  // cut short
  auto res = r.GetFixed<uint64_t>();
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kCorruption);
}

TEST(BytesTest, OverlongVarintFails) {
  std::vector<uint8_t> bad(11, 0x80);  // never terminates
  ByteReader r(bad.data(), bad.size());
  EXPECT_FALSE(r.GetVarint().ok());
}

TEST(BytesTest, VarintLengthMatchesEncoding) {
  for (uint64_t v : {0ULL, 127ULL, 128ULL, 300ULL, ~0ULL}) {
    ByteWriter w;
    w.PutVarint(v);
    EXPECT_EQ(VarintLength(v), w.size());
  }
}

}  // namespace
}  // namespace ecm
