// Estimate-equivalence suite for the PR-4 query-pipeline overhaul: every
// new indexed/batched query path must reproduce the legacy scan
// implementations exactly.
//
//  * ExponentialHistogram::Estimate (running-total fast path + single
//    straddling-level search) vs EstimateScanReference — bit-identical;
//  * RandomizedWave::Estimate (run prefix-sum lookup) vs
//    EstimateScanReference — bit-identical (same integer sums), including
//    after serialization round-trips and §5.2 k-way merges;
//  * EcmSketch::InnerProduct/SelfJoin/EstimateL1 batched paths vs the
//    per-cell double-Estimate loops — bit-identical (same values, same
//    accumulation order), plus L1 memoization invalidation on update;
//  * EcmSketch::PointQueryBatchAt vs per-key PointQueryAt;
//  * DyadicEcm frontier heavy-hitter descent vs the recursive per-node
//    group-testing descent — same keys, estimates and order.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "src/core/dyadic.h"
#include "src/core/ecm_sketch.h"
#include "src/util/random.h"
#include "src/window/merge.h"

namespace ecm {
namespace {

constexpr uint64_t kWindow = 4096;

// Feeds a randomized weighted stream and cross-checks the fast and scan
// estimates at random read clocks and ranges (including over-length).
template <typename Counter, typename MakeFn>
void CheckCounterEquivalence(MakeFn make, int streams, int ops) {
  for (int s = 0; s < streams; ++s) {
    Counter c = make(0xC0FFEE + static_cast<uint64_t>(s));
    Rng rng(0xBEEF + static_cast<uint64_t>(s));
    Timestamp t = 1;
    for (int op = 0; op < ops; ++op) {
      t += rng.Uniform(60);
      c.Add(t, 1 + rng.Uniform(200));
      if (rng.Uniform(4) == 0) c.Add(t, 1 + rng.Uniform(30));  // equal ts
      Timestamp now = t + rng.Uniform(40);
      for (int q = 0; q < 4; ++q) {
        uint64_t range = 1 + rng.Uniform(kWindow + kWindow / 3);
        ASSERT_EQ(c.Estimate(now, range), c.EstimateScanReference(now, range))
            << "stream " << s << " op " << op << " now " << now << " range "
            << range;
      }
    }
  }
}

TEST(QueryEquivalenceTest, EhEstimateMatchesScanReference) {
  CheckCounterEquivalence<ExponentialHistogram>(
      [](uint64_t) {
        return ExponentialHistogram({0.05, kWindow});
      },
      40, 120);
}

TEST(QueryEquivalenceTest, RwEstimateMatchesScanReference) {
  CheckCounterEquivalence<RandomizedWave>(
      [](uint64_t seed) {
        RandomizedWave::Config cfg;
        cfg.epsilon = 0.1;
        cfg.delta = 0.1;
        cfg.window_len = kWindow;
        cfg.max_arrivals = 1 << 18;
        cfg.seed = seed;
        return RandomizedWave(cfg);
      },
      20, 120);
}

TEST(QueryEquivalenceTest, RwEstimateMatchesScanAfterRoundTrip) {
  RandomizedWave::Config cfg;
  cfg.epsilon = 0.1;
  cfg.window_len = kWindow;
  cfg.max_arrivals = 1 << 16;
  cfg.seed = 17;
  RandomizedWave rw(cfg);
  Rng rng(99);
  Timestamp t = 1;
  for (int i = 0; i < 400; ++i) {
    t += rng.Uniform(30);
    rw.Add(t, 1 + rng.Uniform(100));
  }
  ByteWriter w;
  rw.SerializeTo(&w);
  ByteReader r(w.bytes());
  auto back = RandomizedWave::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  const uint64_t ranges[] = {7, 133, 1024, kWindow};
  for (uint64_t range : ranges) {
    // The decoded wave's run cumulative counts must be consistent: its
    // indexed estimate equals both its own scan and the original's.
    EXPECT_EQ(back->Estimate(t, range), back->EstimateScanReference(t, range));
    EXPECT_EQ(back->Estimate(t, range), rw.Estimate(t, range));
  }
}

TEST(QueryEquivalenceTest, RwEstimateMatchesScanAfterMerge) {
  std::vector<RandomizedWave> waves;
  Rng rng(5);
  Timestamp t = 1;
  for (int i = 0; i < 3; ++i) {
    RandomizedWave::Config cfg;
    cfg.epsilon = 0.15;
    cfg.window_len = kWindow;
    cfg.max_arrivals = 1 << 14;
    cfg.seed = 100 + static_cast<uint64_t>(i);
    waves.emplace_back(cfg);
  }
  for (int op = 0; op < 600; ++op) {
    t += rng.Uniform(20);
    waves[rng.Uniform(3)].Add(t, 1 + rng.Uniform(50));
  }
  std::vector<const RandomizedWave*> inputs;
  for (const auto& w : waves) inputs.push_back(&w);
  auto merged = MergeRandomizedWaves(inputs, 0xFEED);
  ASSERT_TRUE(merged.ok());
  const uint64_t ranges[] = {19, 512, kWindow};
  for (uint64_t range : ranges) {
    // The k-way merged wave's cumulative counts must be consistent too.
    EXPECT_EQ(merged->Estimate(t, range),
              merged->EstimateScanReference(t, range));
  }
}

// Builds a moderately loaded EH sketch for the sketch-level checks.
EcmEh MakeLoadedSketch(uint64_t seed, Timestamp* now_out) {
  auto cfg = EcmConfig::Create(0.1, 0.05, WindowMode::kTimeBased, kWindow,
                               seed);
  EXPECT_TRUE(cfg.ok());
  EcmEh sketch(*cfg);
  Rng rng(seed);
  Timestamp t = 1;
  for (int i = 0; i < 4000; ++i) {
    t += rng.Uniform(3);
    sketch.Add(rng.Uniform(500), t, 1 + rng.Uniform(8));
  }
  *now_out = t;
  return sketch;
}

TEST(QueryEquivalenceTest, BatchedSelfJoinMatchesPerCellLoops) {
  Timestamp now = 0;
  EcmEh sketch = MakeLoadedSketch(21, &now);
  const EcmConfig& cfg = sketch.config();
  const uint64_t ranges[] = {64, 777, kWindow};
  for (uint64_t range : ranges) {
    // Per-cell reference with the new counter estimates (exercises the
    // batching plumbing alone) ...
    double ref_new = std::numeric_limits<double>::infinity();
    // ... and with the legacy scans (the full pre-PR4 pipeline).
    double ref_legacy = std::numeric_limits<double>::infinity();
    for (int j = 0; j < cfg.depth; ++j) {
      double row_new = 0.0, row_legacy = 0.0;
      for (uint32_t i = 0; i < cfg.width; ++i) {
        const ExponentialHistogram& c = sketch.CounterAt(j, i);
        row_new += c.Estimate(now, range) * c.Estimate(now, range);
        row_legacy += c.EstimateScanReference(now, range) *
                      c.EstimateScanReference(now, range);
      }
      ref_new = std::min(ref_new, row_new);
      ref_legacy = std::min(ref_legacy, row_legacy);
    }
    double batched = sketch.InnerProductAt(sketch, range, now).value();
    EXPECT_EQ(batched, ref_new) << "range " << range;
    EXPECT_EQ(batched, ref_legacy) << "range " << range;
  }
}

TEST(QueryEquivalenceTest, BatchedInnerProductMatchesPerCellLoop) {
  Timestamp now_a = 0, now_b = 0;
  EcmEh a = MakeLoadedSketch(31, &now_a);
  EcmEh b = MakeLoadedSketch(31, &now_b);  // same seed: compatible configs
  // Different contents.
  Rng rng(77);
  Timestamp t = now_b;
  for (int i = 0; i < 1000; ++i) {
    t += rng.Uniform(2);
    b.Add(rng.Uniform(300), t, 1 + rng.Uniform(5));
  }
  Timestamp now = std::max(now_a, t);
  const EcmConfig& cfg = a.config();
  const uint64_t ranges[] = {128, kWindow};
  for (uint64_t range : ranges) {
    double ref = std::numeric_limits<double>::infinity();
    for (int j = 0; j < cfg.depth; ++j) {
      double row = 0.0;
      for (uint32_t i = 0; i < cfg.width; ++i) {
        row += a.CounterAt(j, i).Estimate(now, range) *
               b.CounterAt(j, i).Estimate(now, range);
      }
      ref = std::min(ref, row);
    }
    EXPECT_EQ(a.InnerProductAt(b, range, now).value(), ref)
        << "range " << range;
  }
}

TEST(QueryEquivalenceTest, EstimateL1MatchesPerCellSweepAndInvalidates) {
  Timestamp now = 0;
  EcmEh sketch = MakeLoadedSketch(41, &now);
  const EcmConfig& cfg = sketch.config();
  auto reference = [&](uint64_t range, Timestamp at) {
    double total = 0.0;
    for (int j = 0; j < cfg.depth; ++j) {
      for (uint32_t i = 0; i < cfg.width; ++i) {
        total += sketch.CounterAt(j, i).Estimate(at, range);
      }
    }
    return total / cfg.depth;
  };
  const uint64_t ranges[] = {100, kWindow};
  for (uint64_t range : ranges) {
    double first = sketch.EstimateL1At(range, now);
    EXPECT_EQ(first, reference(range, now));
    // Memoized second call returns the identical value.
    EXPECT_EQ(sketch.EstimateL1At(range, now), first);
  }
  // An update must invalidate the memo: the cached (now, range) pair
  // would otherwise serve a stale total.
  double before = sketch.EstimateL1At(kWindow, now);
  sketch.Add(7, now + 1, 1000);
  double after = sketch.EstimateL1At(kWindow, now + 1);
  EXPECT_EQ(after, reference(kWindow, now + 1));
  EXPECT_NE(after, before);
}

TEST(QueryEquivalenceTest, PointQueryBatchMatchesPerKeyQueries) {
  Timestamp now = 0;
  EcmEh sketch = MakeLoadedSketch(51, &now);
  std::vector<uint64_t> keys;
  for (uint64_t k = 0; k < 257; ++k) keys.push_back(k * 31 % 500);
  std::vector<double> batched(keys.size());
  const uint64_t ranges[] = {64, kWindow};
  for (uint64_t range : ranges) {
    sketch.PointQueryBatchAt(keys.data(), keys.size(), range, now,
                             batched.data());
    for (size_t i = 0; i < keys.size(); ++i) {
      EXPECT_EQ(batched[i], sketch.PointQueryAt(keys[i], range, now))
          << "key " << keys[i] << " range " << range;
    }
  }
}

TEST(QueryEquivalenceTest, PointQueryBatchBucketSortMatchesScalarSweep) {
  // Every explicit sweep mode — and the cost-model auto pick — must be
  // bit-identical to the arrival-order scalar sweep (kept as the
  // ablation reference), duplicates included.
  Timestamp now = 0;
  EcmEh sketch = MakeLoadedSketch(61, &now);
  Rng rng(77);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 5'000; ++i) keys.push_back(rng.Uniform(700));
  std::vector<double> got(keys.size()), scalar(keys.size());
  const uint64_t ranges[] = {64, kWindow / 3, kWindow};
  const BatchQueryMode modes[] = {BatchQueryMode::kAuto,
                                  BatchQueryMode::kScalarSweep,
                                  BatchQueryMode::kBucketSorted};
  for (uint64_t range : ranges) {
    sketch.PointQueryBatchScalarAt(keys.data(), keys.size(), range, now,
                                   scalar.data());
    for (BatchQueryMode mode : modes) {
      sketch.PointQueryBatchAt(keys.data(), keys.size(), range, now,
                               got.data(), mode);
      for (size_t i = 0; i < keys.size(); ++i) {
        ASSERT_EQ(got[i], scalar[i])
            << "key " << keys[i] << " range " << range << " mode "
            << static_cast<int>(mode);
      }
    }
  }
  // Tiny frontiers (below the auto sort threshold) agree in every mode.
  sketch.PointQueryBatchScalarAt(keys.data(), 5, kWindow, now, scalar.data());
  for (BatchQueryMode mode : modes) {
    sketch.PointQueryBatchAt(keys.data(), 5, kWindow, now, got.data(), mode);
    for (size_t i = 0; i < 5; ++i) EXPECT_EQ(got[i], scalar[i]);
  }
}

TEST(QueryEquivalenceTest, EstimateL1LruCoversInterleavedRanges) {
  // PR-4's single-entry memo thrashed when a dashboard interleaved two
  // range ladders; the LRU must serve every ladder position from cache.
  Timestamp now = 0;
  EcmEh sketch = MakeLoadedSketch(71, &now);
  const uint64_t ladder[] = {50, 200, 800, 1600, 2400, kWindow};
  auto stats0 = sketch.l1_cache_stats();
  for (uint64_t range : ladder) sketch.EstimateL1At(range, now);
  auto stats1 = sketch.l1_cache_stats();
  EXPECT_EQ(stats1.misses - stats0.misses, 6u);
  EXPECT_EQ(stats1.hits, stats0.hits);
  // Interleaved re-probing of all six (now, range) pairs: pure hits.
  for (int rep = 0; rep < 10; ++rep) {
    for (uint64_t range : ladder) sketch.EstimateL1At(range, now);
  }
  auto stats2 = sketch.l1_cache_stats();
  EXPECT_EQ(stats2.misses, stats1.misses);
  EXPECT_EQ(stats2.hits - stats1.hits, 60u);
  // Any update invalidates every cached entry.
  sketch.Add(3, now + 1, 5);
  sketch.EstimateL1At(kWindow, now + 1);
  auto stats3 = sketch.l1_cache_stats();
  EXPECT_EQ(stats3.misses, stats2.misses + 1);
  // Cached values are the recomputed ones.
  double cached = sketch.EstimateL1At(kWindow, now + 1);
  double recomputed = 0.0;
  const EcmConfig& cfg = sketch.config();
  for (int j = 0; j < cfg.depth; ++j) {
    for (uint32_t i = 0; i < cfg.width; ++i) {
      recomputed += sketch.CounterAt(j, i).Estimate(now + 1, kWindow);
    }
  }
  EXPECT_EQ(cached, recomputed / cfg.depth);
}

// Reference recursive per-node descent (the pre-PR4 implementation),
// rebuilt on the public API.
template <typename Counter>
void DescendReference(const DyadicEcm<Counter>& dy, int level,
                      uint64_t prefix, double threshold, uint64_t range,
                      std::vector<HeavyHitter>* out) {
  const auto& sketch = dy.level(level);
  double est = sketch.PointQueryAt(prefix, range, sketch.Now());
  if (est < threshold) return;
  if (level == 0) {
    out->push_back(HeavyHitter{prefix, est});
    return;
  }
  DescendReference(dy, level - 1, prefix * 2, threshold, range, out);
  DescendReference(dy, level - 1, prefix * 2 + 1, threshold, range, out);
}

TEST(QueryEquivalenceTest, FrontierHeavyHittersMatchRecursiveDescent) {
  auto dy = DyadicEcm<ExponentialHistogram>::Create(
      12, 0.05, 0.05, WindowMode::kTimeBased, kWindow, 9);
  ASSERT_TRUE(dy.ok());
  Rng rng(13);
  Timestamp t = 1;
  for (int i = 0; i < 20000; ++i) {
    t += rng.Uniform(2);
    // Skewed keys so some prefixes are heavy.
    uint64_t key = rng.Uniform(8) == 0 ? rng.Uniform(5) : rng.Uniform(4000);
    dy->Add(key, t);
  }
  for (double threshold : {200.0, 1000.0}) {
    auto fast = dy->HeavyHittersAbsolute(threshold, kWindow);
    std::vector<HeavyHitter> ref;
    DescendReference(*dy, dy->domain_bits() - 1, 0, threshold, kWindow, &ref);
    DescendReference(*dy, dy->domain_bits() - 1, 1, threshold, kWindow, &ref);
    ASSERT_EQ(fast.size(), ref.size()) << "threshold " << threshold;
    for (size_t i = 0; i < fast.size(); ++i) {
      EXPECT_EQ(fast[i].key, ref[i].key);
      EXPECT_EQ(fast[i].estimate, ref[i].estimate);
    }
  }
}

TEST(QueryEquivalenceTest, RangeQueryMatchesPerRangeSum) {
  auto dy = DyadicEcm<ExponentialHistogram>::Create(
      10, 0.05, 0.05, WindowMode::kTimeBased, kWindow, 4);
  ASSERT_TRUE(dy.ok());
  Rng rng(23);
  Timestamp t = 1;
  for (int i = 0; i < 8000; ++i) {
    t += rng.Uniform(2);
    dy->Add(rng.Uniform(1000), t);
  }
  for (int q = 0; q < 50; ++q) {
    uint64_t lo = rng.Uniform(1000);
    uint64_t hi = lo + rng.Uniform(1000);
    double ref = 0.0;
    for (const DyadicRange& r : DyadicDecompose(lo, hi, dy->domain_bits())) {
      const auto& sketch = dy->level(r.level);
      ref += sketch.PointQueryAt(r.prefix, kWindow, sketch.Now());
    }
    // The grouped-by-level batch sums in a different order; allow FP
    // reassociation noise only.
    EXPECT_NEAR(dy->RangeQuery(lo, hi, kWindow), ref, 1e-6 * (1.0 + ref));
  }
}

}  // namespace
}  // namespace ecm
