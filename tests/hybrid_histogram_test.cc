// Tests for the Qiao et al. hybrid-histogram baseline: exactness inside
// the recent buffer, demotion into the equi-width tail, the unbounded
// tail error the ECM paper's §2 cites, and EcmSketch integration.

#include "src/window/hybrid_histogram.h"

#include <gtest/gtest.h>

#include "src/core/ecm_sketch.h"
#include "src/util/random.h"
#include "src/window/counter_traits.h"

namespace ecm {
namespace {

static_assert(SlidingWindowCounter<HybridHistogram>);

TEST(HybridHistogramTest, EmptyEstimatesZero) {
  HybridHistogram hh({1000, 100, 8});
  EXPECT_EQ(hh.Estimate(500, 1000), 0.0);
}

TEST(HybridHistogramTest, ExactWithinRecentBuffer) {
  HybridHistogram hh({1000, 100, 8});
  // Strictly inside the exact span (ts > last - exact_len = 900), so
  // nothing demotes to the tail.
  for (Timestamp t = 910; t <= 1000; t += 10) hh.Add(t, 3);
  EXPECT_EQ(hh.Estimate(1000, 50), 15.0);   // t in (950, 1000]: 5 runs
  EXPECT_EQ(hh.Estimate(1000, 95), 30.0);   // t in (905, 1000]: all 10
}

TEST(HybridHistogramTest, DemotesToTailAndKeepsTotals) {
  HybridHistogram hh({1000, 100, 8});
  for (Timestamp t = 1; t <= 800; ++t) hh.Add(t);
  // Only ~the exact_len newest stay exact.
  EXPECT_LE(hh.ExactRuns(), 101u);
  // Full-window estimate still near the truth (interpolation noise only).
  EXPECT_NEAR(hh.Estimate(800, 1000), 800.0, 120.0);
}

TEST(HybridHistogramTest, TailBoundaryErrorUnbounded) {
  HybridHistogram hh({1000, 50, 4});  // tail slots span ~237 ticks
  // Burst deep in the tail region.
  hh.Add(10, 1000);
  hh.Add(700, 1);
  // Query range ending inside the burst's slot but after the burst: the
  // truth is 1, the interpolated answer inherits burst mass.
  double est = hh.Estimate(700, 650);  // boundary at 50, burst at 10
  EXPECT_GT(std::abs(est - 1.0), 100.0);
}

TEST(HybridHistogramTest, ExpiryDropsOldTailSlots) {
  HybridHistogram hh({1000, 100, 8});
  for (Timestamp t = 1; t <= 5000; ++t) hh.Add(t);
  EXPECT_NEAR(hh.Estimate(5000, 1000), 1000.0, 200.0);
  EXPECT_LT(hh.MemoryBytes(), 8192u);
}

TEST(HybridHistogramTest, LifetimeExact) {
  HybridHistogram hh({1000, 100, 8});
  Rng rng(3);
  Timestamp t = 1;
  uint64_t total = 0;
  for (int i = 0; i < 2000; ++i) {
    t += rng.Uniform(3);
    uint64_t c = 1 + rng.Uniform(4);
    hh.Add(t, c);
    total += c;
  }
  EXPECT_EQ(hh.lifetime_count(), total);
}

TEST(HybridHistogramTest, WorksInsideEcmSketch) {
  auto cfg = EcmConfig::Create(0.1, 0.1, WindowMode::kTimeBased, 1000, 5);
  ASSERT_TRUE(cfg.ok());
  EcmSketch<HybridHistogram> sketch(*cfg);
  for (Timestamp t = 1; t <= 500; ++t) sketch.Add(9, t);
  EXPECT_NEAR(sketch.PointQuery(9, 1000), 500.0, 80.0);
  // Recent ranges hit the exact buffer: tight.
  EXPECT_NEAR(sketch.PointQuery(9, 40), 40.0, 5.0);
}

TEST(HybridHistogramTest, TailSpanRoundsUpSoRingCoversWindow) {
  // (window - exact_len) % B != 0 with a floored span used to leave the
  // tail ring covering less than the tail region: in-window demoted mass
  // was silently overwritten on wrap (window=100, exact=10, B=60 covered
  // 61 of the 90 tail ticks).
  HybridHistogram hh({100, 10, 60});
  EXPECT_EQ(hh.span(), 2u);  // ceil(90/60), not floor = 1
  for (Timestamp t = 1; t <= 100; ++t) hh.Add(t);
  EXPECT_NEAR(hh.Estimate(100, 100), 100.0, 2.0);
}

TEST(HybridHistogramTest, ExactWithinBufferEvenWhenTailSlotsStraddle) {
  // A tail slot is wider than the gap between the demotion watermark and
  // a query boundary inside the exact region; the watermark-clamped
  // interpolation must keep all tail mass out of the exact region.
  HybridHistogram hh({10000, 500, 16});  // span 594 > exact_len - range
  for (Timestamp t = 1; t <= 9000; ++t) hh.Add(t, 2);
  for (uint64_t range : {100u, 250u, 499u}) {
    EXPECT_EQ(hh.Estimate(9000, range), static_cast<double>(2 * range))
        << "range " << range;
  }
}

TEST(HybridHistogramTest, WatermarkTracksExpireAheadOfAdds) {
  // Expire(now) may demote with a clock ahead of the last Add; the tail
  // interpolation watermark must follow the actual demotion, not
  // last_timestamp(), or boundary slots holding freshly demoted mass get
  // clamped to zero.
  HybridHistogram hh({100, 10, 9});  // span 10
  for (Timestamp t = 1; t <= 50; ++t) hh.Add(t);
  hh.Expire(59);  // demotes ts <= 49 into the tail
  // (40, 59] holds ts 41..50 = 10 arrivals; 41..49 sit in the tail slot
  // [40, 50), which a stale watermark of 40 would zero out entirely.
  EXPECT_NEAR(hh.Estimate(59, 19), 10.0, 1.5);
}

TEST(HybridHistogramTest, RandomAgainstReference) {
  HybridHistogram hh({10000, 500, 16});
  std::vector<Timestamp> stamps;
  Rng rng(7);
  Timestamp t = 1;
  for (int i = 0; i < 20000; ++i) {
    t += rng.Uniform(3);
    hh.Add(t);
    stamps.push_back(t);
  }
  // Recent ranges: exact. Tail ranges: within a slot of the truth.
  for (uint64_t range : {100u, 400u}) {
    Timestamp boundary = WindowStart(t, range);
    uint64_t truth = 0;
    for (Timestamp s : stamps) {
      if (s > boundary) ++truth;
    }
    EXPECT_EQ(hh.Estimate(t, range), static_cast<double>(truth))
        << "range " << range;
  }
  for (uint64_t range : {2000u, 10000u}) {
    Timestamp boundary = WindowStart(t, range);
    uint64_t truth = 0;
    for (Timestamp s : stamps) {
      if (s > boundary) ++truth;
    }
    // Slot span ~594; uniform arrivals make interpolation decent here.
    EXPECT_NEAR(hh.Estimate(t, range), static_cast<double>(truth), 600.0)
        << "range " << range;
  }
}

}  // namespace
}  // namespace ecm
