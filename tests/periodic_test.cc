// Tests for scheduled propagation: push triggering (periodic and
// drift-based), coordinator staleness bounds, and the bandwidth/freshness
// trade-off the structure exists for.

#include "src/dist/periodic.h"

#include <gtest/gtest.h>

#include "src/stream/generators.h"

namespace ecm {
namespace {

constexpr uint64_t kWindow = 50'000;

EcmConfig SketchCfg(uint64_t seed = 41) {
  auto cfg = EcmConfig::Create(0.05, 0.05, WindowMode::kTimeBased, kWindow,
                               seed);
  EXPECT_TRUE(cfg.ok());
  return *cfg;
}

TEST(PeriodicAggregatorTest, GlobalViewNeedsAllSites) {
  PeriodicAggregator agg(3, SketchCfg(), {});
  agg.Process(0, 1, 10);
  EXPECT_FALSE(agg.GlobalView().ok());  // sites 1 and 2 never pushed
  ASSERT_TRUE(agg.SyncAll().ok());
  EXPECT_TRUE(agg.GlobalView().ok());
}

TEST(PeriodicAggregatorTest, FirstArrivalAlwaysPushes) {
  PeriodicAggregator agg(2, SketchCfg(), {});
  EXPECT_TRUE(agg.Process(0, 1, 5));
  EXPECT_TRUE(agg.Process(1, 1, 6));
  EXPECT_FALSE(agg.Process(0, 1, 7));  // no schedule configured
  EXPECT_EQ(agg.stats().pushes, 2u);
}

TEST(PeriodicAggregatorTest, PeriodicPushCadence) {
  PeriodicAggregator::Config cfg;
  cfg.period = 1'000;
  PeriodicAggregator agg(1, SketchCfg(), cfg);
  for (Timestamp t = 1; t <= 10'000; t += 10) agg.Process(0, 7, t);
  // 1 initial push + one per 1000 ticks over 10k ticks.
  EXPECT_GE(agg.stats().pushes, 10u);
  EXPECT_LE(agg.stats().pushes, 12u);
  EXPECT_GE(agg.stats().periodic_pushes, 9u);
}

TEST(PeriodicAggregatorTest, DriftPushTracksContentChange) {
  PeriodicAggregator::Config cfg;
  cfg.drift_fraction = 0.5;  // push when windowed L1 moves by 50%
  PeriodicAggregator agg(1, SketchCfg(), cfg);
  // Steady growth: pushes happen at ~L1 = 1, 1.5, 2.25, ... (geometric).
  for (Timestamp t = 1; t <= 2'000; ++t) agg.Process(0, 3, t);
  uint64_t pushes = agg.stats().pushes;
  EXPECT_GE(pushes, 5u);
  EXPECT_LE(pushes, 30u);  // far fewer than 2000 updates
  EXPECT_GE(agg.stats().drift_pushes, pushes - 2);
}

TEST(PeriodicAggregatorTest, CoordinatorViewApproximatesTruth) {
  PeriodicAggregator::Config cfg;
  cfg.period = 2'000;
  constexpr int kSites = 4;
  PeriodicAggregator agg(kSites, SketchCfg(), cfg);
  ZipfStream::Config zc;
  zc.domain = 300;
  zc.skew = 1.0;
  zc.num_nodes = kSites;
  zc.seed = 17;
  ZipfStream stream(zc);
  auto events = stream.Take(30'000);
  for (const auto& e : events) agg.Process(e.node, e.key, e.ts);
  ASSERT_TRUE(agg.SyncAll().ok());

  Timestamp now = events.back().ts;
  auto exact = ComputeExactRangeStats(events, now, kWindow);
  int checked = 0;
  for (const auto& [key, count] : exact.freqs) {
    if (count < exact.l1 / 100) continue;
    auto est = agg.GlobalPointQuery(key, kWindow);
    ASSERT_TRUE(est.ok());
    EXPECT_NEAR(*est, static_cast<double>(count), 0.2 * exact.l1 + 3.0)
        << "key " << key;
    ++checked;
  }
  EXPECT_GT(checked, 3);
}

TEST(PeriodicAggregatorTest, StalenessBoundedByPeriod) {
  // Without a final SyncAll, the coordinator's view lags by at most one
  // period per site: a key that exploded in the last period is
  // under-reported, then correct after SyncAll.
  PeriodicAggregator::Config cfg;
  cfg.period = 5'000;
  PeriodicAggregator agg(1, SketchCfg(), cfg);
  for (Timestamp t = 1; t <= 6'000; ++t) agg.Process(0, 1, t);
  // Hot burst entirely after the last scheduled push.
  Timestamp t = 6'000;
  for (int i = 0; i < 1'000; ++i) agg.Process(0, 99, ++t);
  auto stale = agg.GlobalPointQuery(99, kWindow);
  ASSERT_TRUE(stale.ok());
  ASSERT_TRUE(agg.SyncAll().ok());
  auto fresh = agg.GlobalPointQuery(99, kWindow);
  ASSERT_TRUE(fresh.ok());
  EXPECT_LT(*stale, *fresh);
  EXPECT_NEAR(*fresh, 1'000.0, 100.0);
}

TEST(PeriodicAggregatorTest, BandwidthFreshnessTradeoff) {
  // Smaller drift budgets cost more pushes; both configurations answer
  // queries, the tighter one fresher.
  ZipfStream::Config zc;
  zc.domain = 200;
  zc.num_nodes = 2;
  zc.seed = 21;
  auto events = ZipfStream(zc).Take(20'000);

  auto run = [&](double drift) {
    PeriodicAggregator::Config cfg;
    cfg.drift_fraction = drift;
    PeriodicAggregator agg(2, SketchCfg(), cfg);
    for (const auto& e : events) agg.Process(e.node, e.key, e.ts);
    return agg.stats().network.bytes;
  };
  uint64_t tight = run(0.05);
  uint64_t loose = run(0.5);
  EXPECT_GT(tight, loose * 2);
}

TEST(PeriodicAggregatorTest, StatsConsistency) {
  PeriodicAggregator::Config cfg;
  cfg.period = 500;
  PeriodicAggregator agg(2, SketchCfg(), cfg);
  for (Timestamp t = 1; t <= 3'000; ++t) agg.Process(t % 2, 5, t);
  const auto& s = agg.stats();
  EXPECT_EQ(s.updates, 3'000u);
  EXPECT_EQ(s.network.messages, s.pushes);
  EXPECT_GT(s.network.bytes, 0u);
  EXPECT_LE(s.periodic_pushes + s.drift_pushes + 2 /*initial*/, s.pushes + 2);
}

}  // namespace
}  // namespace ecm
