// Statistical equivalence of the RandomizedWave binomial-split batch
// sampler with the per-arrival geometric sampling it replaced:
//  * Rng::BinomialHalf(n) vs the sum of n fair coin flips (two-sample
//    chi-square over many trials, several n);
//  * per-level retained-sample counts of Add(ts, c) vs a per-arrival
//    reference simulation (two-sample chi-square per level);
//  * the c == 1 degenerate case, which must reproduce the legacy
//    per-arrival path bit-for-bit (same coins, same level contents).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <deque>
#include <vector>

#include "src/util/random.h"
#include "src/window/randomized_wave.h"

namespace ecm {
namespace {

// Two-sample chi-square statistic over pre-binned histograms a and b of
// equal trial counts: sum (a_i - b_i)^2 / (a_i + b_i), df = bins - 1
// (empty bins contribute nothing and drop from the df count).
double TwoSampleChiSquare(const std::vector<uint64_t>& a,
                          const std::vector<uint64_t>& b, int* df) {
  double stat = 0.0;
  *df = -1;
  for (size_t i = 0; i < a.size(); ++i) {
    double ai = static_cast<double>(a[i]);
    double bi = static_cast<double>(b[i]);
    if (ai + bi == 0.0) continue;
    stat += (ai - bi) * (ai - bi) / (ai + bi);
    ++*df;
  }
  return stat;
}

// Bins a count with mean mu and standard deviation sd into `bins` equal
// slices of mu ± 3sd (tails clamp into the edge bins).
size_t Bin(uint64_t x, double mu, double sd, size_t bins) {
  double lo = mu - 3.0 * sd;
  double width = 6.0 * sd / static_cast<double>(bins);
  double pos = (static_cast<double>(x) - lo) / width;
  if (pos < 0.0) return 0;
  auto idx = static_cast<size_t>(pos);
  return idx >= bins ? bins - 1 : idx;
}

// Very generous deterministic acceptance threshold: chi^2_{0.999}(df) is
// roughly df + 3.3 * sqrt(2 df) + 4; doubling the tail term keeps the
// fixed-seed test far from the boundary while still catching a broken
// sampler (which produces statistics orders of magnitude larger).
double ChiSquareThreshold(int df) {
  return static_cast<double>(df) + 6.6 * std::sqrt(2.0 * df) + 8.0;
}

TEST(RwSamplerEquivalenceTest, BinomialHalfMatchesCoinSums) {
  constexpr int kTrials = 4000;
  constexpr size_t kBins = 12;
  for (uint64_t n : {5u, 64u, 200u, 1000u}) {
    Rng batch_rng(0xB10C0DE + n);
    Rng unit_rng(0xC01 + n);
    double mu = static_cast<double>(n) / 2.0;
    double sd = std::sqrt(static_cast<double>(n)) / 2.0;
    std::vector<uint64_t> batch_hist(kBins, 0), unit_hist(kBins, 0);
    for (int trial = 0; trial < kTrials; ++trial) {
      ++batch_hist[Bin(batch_rng.BinomialHalf(n), mu, sd, kBins)];
      uint64_t heads = 0;
      for (uint64_t i = 0; i < n; ++i) heads += unit_rng.Next() & 1;
      ++unit_hist[Bin(heads, mu, sd, kBins)];
    }
    int df = 0;
    double stat = TwoSampleChiSquare(batch_hist, unit_hist, &df);
    EXPECT_LT(stat, ChiSquareThreshold(df))
        << "n=" << n << " df=" << df << " stat=" << stat;
  }
}

TEST(RwSamplerEquivalenceTest, WaveLevelCountsMatchPerArrivalSampling) {
  // One weighted Add of kArrivals per trial; the retained per-level sample
  // counts of sub-wave 0 must be distributed like a per-arrival simulation
  // drawing one geometric level per arrival. kArrivals stays below the
  // level capacity (ε=0.2 -> 100) so no truncation distorts the counts.
  constexpr uint64_t kArrivals = 64;
  constexpr int kTrials = 3000;
  constexpr int kLevels = 4;
  constexpr size_t kBins = 10;
  std::vector<std::vector<uint64_t>> batch_hist(kLevels), unit_hist(kLevels);
  for (int l = 0; l < kLevels; ++l) {
    batch_hist[l].assign(kBins, 0);
    unit_hist[l].assign(kBins, 0);
  }
  RandomizedWave::Config cfg;
  cfg.epsilon = 0.2;
  cfg.window_len = 1 << 20;
  cfg.max_arrivals = 1 << 16;

  for (int trial = 0; trial < kTrials; ++trial) {
    cfg.seed = 1000 + trial;
    RandomizedWave rw(cfg);
    rw.Add(1, kArrivals);
    const auto& sw = rw.subwaves()[0];
    Rng ref_rng(0x5EED0 + trial);
    std::vector<uint64_t> ref_counts(rw.num_levels(), 0);
    for (uint64_t i = 0; i < kArrivals; ++i) {
      int g = ref_rng.GeometricLevel(rw.num_levels() - 1);
      for (int l = 0; l <= g; ++l) ++ref_counts[l];
    }
    for (int l = 1; l <= kLevels; ++l) {
      double mu = static_cast<double>(kArrivals) / std::pow(2.0, l);
      double sd = std::sqrt(mu * (1.0 - 1.0 / std::pow(2.0, l)));
      ++batch_hist[l - 1][Bin(sw.sizes[l], mu, sd, kBins)];
      ++unit_hist[l - 1][Bin(ref_counts[l], mu, sd, kBins)];
    }
  }
  for (int l = 0; l < kLevels; ++l) {
    int df = 0;
    double stat = TwoSampleChiSquare(batch_hist[l], unit_hist[l], &df);
    EXPECT_LT(stat, ChiSquareThreshold(df))
        << "level=" << (l + 1) << " df=" << df << " stat=" << stat;
  }
}

// The legacy per-arrival algorithm, reproduced verbatim: one geometric
// draw per arrival per sub-wave, individual push/pop-front at capacity.
struct LegacySubWave {
  std::vector<std::deque<Timestamp>> levels;
  std::vector<bool> truncated;
};

TEST(RwSamplerEquivalenceTest, UnitAddsBitIdenticalToPerArrivalPath) {
  RandomizedWave::Config cfg;
  cfg.epsilon = 0.15;  // capacity 178: exercises truncation
  cfg.window_len = 1 << 30;
  cfg.max_arrivals = 1 << 14;
  cfg.seed = 99;
  RandomizedWave rw(cfg);

  std::vector<LegacySubWave> legacy(rw.num_subwaves());
  for (auto& sw : legacy) {
    sw.levels.resize(rw.num_levels());
    sw.truncated.assign(rw.num_levels(), false);
  }
  Rng legacy_rng(cfg.seed);

  Rng script(7);
  Timestamp t = 1;
  for (int i = 0; i < 2000; ++i) {
    t += script.Uniform(3);  // repeats produce adjacent equal timestamps
    rw.Add(t, 1);
    for (auto& sw : legacy) {
      int g = legacy_rng.GeometricLevel(rw.num_levels() - 1);
      for (int l = 0; l <= g; ++l) {
        sw.levels[l].push_back(t);
        if (sw.levels[l].size() > rw.level_capacity()) {
          sw.levels[l].pop_front();
          sw.truncated[l] = true;
        }
      }
    }
  }

  for (int s = 0; s < rw.num_subwaves(); ++s) {
    const auto& sw = rw.subwaves()[s];
    for (int l = 0; l < rw.num_levels(); ++l) {
      std::vector<Timestamp> expanded;
      for (const auto& run : sw.levels[l]) {
        for (uint64_t i = 0; i < run.count; ++i) expanded.push_back(run.ts);
      }
      std::vector<Timestamp> expected(legacy[s].levels[l].begin(),
                                      legacy[s].levels[l].end());
      ASSERT_EQ(expanded, expected) << "subwave " << s << " level " << l;
      ASSERT_EQ(sw.truncated[l], legacy[s].truncated[l])
          << "subwave " << s << " level " << l;
      ASSERT_EQ(sw.sizes[l], expected.size())
          << "subwave " << s << " level " << l;
    }
  }
}

}  // namespace
}  // namespace ecm
