// Tests for the bounded-disorder reorder buffer: in-order release,
// lateness policies, end-to-end sketch accuracy behind a jittery feed.

#include "src/stream/reorder.h"

#include <gtest/gtest.h>

#include "src/core/ecm_sketch.h"
#include "src/stream/generators.h"

namespace ecm {
namespace {

TEST(ReorderBufferTest, ReleasesInOrder) {
  std::vector<StreamEvent> out;
  ReorderBuffer buf({/*max_lateness=*/10, ReorderBuffer::LatePolicy::kDrop},
                    [&](const StreamEvent& e) { out.push_back(e); });
  for (Timestamp ts : {5u, 3u, 8u, 7u, 20u, 15u, 14u, 30u}) {
    buf.Push({ts, 1, 0});
  }
  buf.Flush();
  ASSERT_EQ(out.size(), 8u);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LE(out[i - 1].ts, out[i].ts);
  }
}

TEST(ReorderBufferTest, HoldsBackUntilWatermarkAdvances) {
  std::vector<StreamEvent> out;
  ReorderBuffer buf({100, ReorderBuffer::LatePolicy::kDrop},
                    [&](const StreamEvent& e) { out.push_back(e); });
  buf.Push({50, 1, 0});
  buf.Push({60, 2, 0});
  EXPECT_TRUE(out.empty());  // nothing is 100 ticks old yet
  EXPECT_EQ(buf.Pending(), 2u);
  buf.Push({161, 3, 0});  // watermark 161 releases everything <= 61
  EXPECT_EQ(out.size(), 2u);
  buf.Flush();
  EXPECT_EQ(out.size(), 3u);
}

TEST(ReorderBufferTest, DropPolicyDiscardsTooLate) {
  std::vector<StreamEvent> out;
  ReorderBuffer buf({10, ReorderBuffer::LatePolicy::kDrop},
                    [&](const StreamEvent& e) { out.push_back(e); });
  buf.Push({100, 1, 0});
  buf.Push({50, 2, 0});  // 50 ticks late, bound is 10 -> dropped
  buf.Flush();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].ts, 100u);
  EXPECT_EQ(buf.late_events(), 1u);
  EXPECT_EQ(buf.dropped_events(), 1u);
}

TEST(ReorderBufferTest, ClampPolicyKeepsTheCount) {
  std::vector<StreamEvent> out;
  ReorderBuffer buf({10, ReorderBuffer::LatePolicy::kClampForward},
                    [&](const StreamEvent& e) { out.push_back(e); });
  buf.Push({100, 1, 0});
  buf.Push({50, 2, 0});  // clamped to the release frontier
  buf.Flush();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(buf.dropped_events(), 0u);
  EXPECT_EQ(buf.late_events(), 1u);
  // The clamped event still came out in non-decreasing order.
  EXPECT_LE(out[0].ts, out[1].ts);
}

TEST(ReorderBufferTest, ShuffleHelperKeepsMultisetAndBoundsDisorder) {
  ZipfStream::Config zc;
  zc.seed = 4;
  ZipfStream stream(zc);
  auto ordered = stream.Take(5000);
  auto shuffled = ShuffleWithBoundedDelay(ordered, /*max_shift=*/200, 7);
  ASSERT_EQ(shuffled.size(), ordered.size());
  // Same multiset of events.
  auto key_of = [](const StreamEvent& e) {
    return e.ts * 1000003ULL + e.key;
  };
  std::vector<uint64_t> a, b;
  for (const auto& e : ordered) a.push_back(key_of(e));
  for (const auto& e : shuffled) b.push_back(key_of(e));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
  // Disorder is bounded: each event's ts is within max_shift of the
  // running maximum.
  Timestamp watermark = 0;
  for (const auto& e : shuffled) {
    watermark = std::max(watermark, e.ts);
    EXPECT_LE(watermark - e.ts, 200u);
  }
}

TEST(ReorderBufferTest, SketchBehindJitteryFeedMatchesOrderedFeed) {
  // End-to-end: ECM sketch fed through the reorder buffer from a shuffled
  // stream must answer like one fed the ordered stream.
  constexpr uint64_t kWindow = 50'000;
  auto cfg = EcmConfig::Create(0.05, 0.05, WindowMode::kTimeBased, kWindow, 9);
  ASSERT_TRUE(cfg.ok());
  EcmSketch<ExponentialHistogram> ordered_sketch(*cfg);
  EcmSketch<ExponentialHistogram> jitter_sketch(*cfg);

  ZipfStream::Config zc;
  zc.domain = 500;
  zc.skew = 1.0;
  zc.seed = 10;
  ZipfStream stream(zc);
  auto events = stream.Take(30000);
  for (const auto& e : events) ordered_sketch.Add(e.key, e.ts);

  auto shuffled = ShuffleWithBoundedDelay(events, /*max_shift=*/500, 11);
  ReorderBuffer buf(
      {/*max_lateness=*/500, ReorderBuffer::LatePolicy::kClampForward},
      [&](const StreamEvent& e) { jitter_sketch.Add(e.key, e.ts); });
  for (const auto& e : shuffled) buf.Push(e);
  buf.Flush();

  EXPECT_EQ(jitter_sketch.l1_lifetime(), ordered_sketch.l1_lifetime());
  Timestamp now = std::max(ordered_sketch.Now(), jitter_sketch.Now());
  for (uint64_t key = 1; key <= 500; key += 29) {
    double a = ordered_sketch.PointQueryAt(key, kWindow, now);
    double b = jitter_sketch.PointQueryAt(key, kWindow, now);
    EXPECT_NEAR(a, b, std::max(a, b) * 0.1 + 2.0) << "key " << key;
  }
}

TEST(ReorderBufferTest, FlushIsIdempotent) {
  int released = 0;
  ReorderBuffer buf({10, ReorderBuffer::LatePolicy::kDrop},
                    [&](const StreamEvent&) { ++released; });
  buf.Push({1, 1, 0});
  buf.Flush();
  buf.Flush();
  EXPECT_EQ(released, 1);
  EXPECT_EQ(buf.Pending(), 0u);
}

}  // namespace
}  // namespace ecm
