// Tests for the continuous-query engine: threshold edge-triggering in
// both directions, window-slide de-assertion, heavy-hitter periodic
// reports, query lifecycle, and evaluation-cadence accounting.

#include "src/engine/continuous.h"

#include <gtest/gtest.h>

#include "src/stream/generators.h"

namespace ecm {
namespace {

StreamEngine::Options MakeOptions(uint64_t window = 10'000,
                                  int domain_bits = 0,
                                  uint64_t evaluate_every = 16) {
  auto cfg =
      EcmConfig::Create(0.05, 0.05, WindowMode::kTimeBased, window, 71);
  EXPECT_TRUE(cfg.ok());
  StreamEngine::Options opts;
  opts.sketch = *cfg;
  opts.domain_bits = domain_bits;
  opts.evaluate_every = evaluate_every;
  return opts;
}

TEST(StreamEngineTest, PointThresholdFiresOnce) {
  StreamEngine engine(MakeOptions());
  std::vector<ThresholdAlert> alerts;
  engine.WatchPoint(5, 10'000, 100.0,
                    [&](const ThresholdAlert& a) { alerts.push_back(a); });
  for (Timestamp t = 1; t <= 300; ++t) engine.Ingest(5, t);
  ASSERT_EQ(alerts.size(), 1u);  // edge-triggered, not per-arrival
  EXPECT_TRUE(alerts[0].above);
  EXPECT_GE(alerts[0].estimate, 100.0);
}

TEST(StreamEngineTest, PointThresholdDeassertsWhenWindowSlides) {
  StreamEngine engine(MakeOptions(/*window=*/1'000, 0, /*evaluate_every=*/8));
  std::vector<ThresholdAlert> alerts;
  engine.WatchPoint(5, 1'000, 100.0,
                    [&](const ThresholdAlert& a) { alerts.push_back(a); });
  // Burst of key 5, then unrelated traffic pushes the window past it.
  for (Timestamp t = 1; t <= 200; ++t) engine.Ingest(5, t);
  for (Timestamp t = 201; t <= 3'000; ++t) engine.Ingest(77, t);
  ASSERT_GE(alerts.size(), 2u);
  EXPECT_TRUE(alerts.front().above);
  EXPECT_FALSE(alerts.back().above);
}

TEST(StreamEngineTest, SelfJoinThresholdDetectsConcentration) {
  StreamEngine engine(MakeOptions(/*window=*/5'000, 0, /*evaluate_every=*/8));
  std::vector<ThresholdAlert> alerts;
  engine.WatchSelfJoin(5'000, 1e5,
                       [&](const ThresholdAlert& a) { alerts.push_back(a); });
  Rng rng(4);
  Timestamp t = 1;
  // Dispersed phase: F2 stays low.
  for (int i = 0; i < 2'000; ++i) engine.Ingest(rng.Uniform(5'000), ++t);
  EXPECT_TRUE(alerts.empty());
  // Concentrated phase: one key dominates -> F2 ~ n^2 explodes.
  for (int i = 0; i < 1'000; ++i) engine.Ingest(9, ++t);
  ASSERT_FALSE(alerts.empty());
  EXPECT_TRUE(alerts.back().above);
}

TEST(StreamEngineTest, HeavyHitterReportsArePeriodic) {
  StreamEngine engine(MakeOptions(10'000, /*domain_bits=*/12, 16));
  std::vector<HeavyHitterReport> reports;
  auto id = engine.WatchHeavyHitters(
      0.2, 10'000, /*period=*/1'000,
      [&](const HeavyHitterReport& r) { reports.push_back(r); });
  ASSERT_TRUE(id.ok());
  Rng rng(5);
  Timestamp t = 1;
  for (int i = 0; i < 5'000; ++i) {
    // Key 3 takes ~half the stream.
    engine.Ingest(rng.Bernoulli(0.5) ? 3 : rng.Uniform(4'096), ++t);
  }
  ASSERT_GE(reports.size(), 4u);
  for (const auto& r : reports) {
    bool found_3 = false;
    for (const auto& h : r.hitters) {
      if (h.key == 3) found_3 = true;
    }
    EXPECT_TRUE(found_3) << "report at ts " << r.ts;
    EXPECT_GT(r.window_l1, 0.0);
  }
}

TEST(StreamEngineTest, HeavyHitterWatchNeedsDomainBits) {
  StreamEngine engine(MakeOptions(10'000, /*domain_bits=*/0));
  auto id = engine.WatchHeavyHitters(0.1, 10'000, 100, nullptr);
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kInvalidArgument);
}

TEST(StreamEngineTest, WatchValidation) {
  StreamEngine engine(MakeOptions(10'000, 8));
  EXPECT_FALSE(engine.WatchHeavyHitters(0.0, 100, 10, nullptr).ok());
  EXPECT_FALSE(engine.WatchHeavyHitters(1.5, 100, 10, nullptr).ok());
  EXPECT_FALSE(engine.WatchHeavyHitters(0.1, 100, 0, nullptr).ok());
}

TEST(StreamEngineTest, UnwatchStopsCallbacks) {
  StreamEngine engine(MakeOptions());
  int fired = 0;
  QueryId id = engine.WatchPoint(5, 10'000, 10.0,
                                 [&](const ThresholdAlert&) { ++fired; });
  for (Timestamp t = 1; t <= 20; ++t) engine.Ingest(5, t);
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(engine.Unwatch(id));
  EXPECT_FALSE(engine.Unwatch(id));  // already gone
  for (Timestamp t = 21; t <= 4000; ++t) engine.Ingest(6, t);
  EXPECT_EQ(fired, 1);  // no de-assertion callback after Unwatch
}

TEST(StreamEngineTest, StatsAccounting) {
  StreamEngine engine(MakeOptions(10'000, 0, /*evaluate_every=*/10));
  engine.WatchSelfJoin(10'000, 1e18, nullptr);
  for (Timestamp t = 1; t <= 100; ++t) engine.Ingest(1, t);
  const auto& s = engine.stats();
  EXPECT_EQ(s.arrivals, 100u);
  EXPECT_EQ(s.selfjoin_evaluations, 10u);  // every 10th arrival
}

TEST(StreamEngineTest, AdHocQueriesPassThrough) {
  StreamEngine engine(MakeOptions());
  for (Timestamp t = 1; t <= 500; ++t) engine.Ingest(8, t);
  EXPECT_NEAR(engine.PointQuery(8, 10'000), 500.0, 30.0);
  EXPECT_GT(engine.SelfJoin(10'000), 0.0);
  EXPECT_GT(engine.MemoryBytes(), 0u);
}

TEST(StreamEngineTest, MultipleWatchesIndependent) {
  StreamEngine engine(MakeOptions(10'000, 0, 8));
  int a_fired = 0, b_fired = 0;
  engine.WatchPoint(1, 10'000, 50.0,
                    [&](const ThresholdAlert&) { ++a_fired; });
  engine.WatchPoint(2, 10'000, 50.0,
                    [&](const ThresholdAlert&) { ++b_fired; });
  for (Timestamp t = 1; t <= 100; ++t) engine.Ingest(1, t);
  EXPECT_EQ(a_fired, 1);
  EXPECT_EQ(b_fired, 0);  // key 2 never arrived
}

}  // namespace
}  // namespace ecm
