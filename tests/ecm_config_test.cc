// Tests for the ε-split optimization (§4.1): the split formulas satisfy
// their error-budget constraints, minimize the memory objective, and the
// derived Count-Min dimensions follow.

#include "src/core/ecm_config.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ecm {
namespace {

TEST(EcmConfigTest, RejectsBadParameters) {
  EXPECT_FALSE(
      EcmConfig::Create(0.0, 0.1, WindowMode::kTimeBased, 100, 1).ok());
  EXPECT_FALSE(
      EcmConfig::Create(1.5, 0.1, WindowMode::kTimeBased, 100, 1).ok());
  EXPECT_FALSE(
      EcmConfig::Create(0.1, 0.0, WindowMode::kTimeBased, 100, 1).ok());
  EXPECT_FALSE(
      EcmConfig::Create(0.1, 1.0, WindowMode::kTimeBased, 100, 1).ok());
  EXPECT_FALSE(EcmConfig::Create(0.1, 0.1, WindowMode::kTimeBased, 0, 1).ok());
}

class SplitSweep : public ::testing::TestWithParam<double> {};

TEST_P(SplitSweep, DeterministicPointSplitMeetsBudget) {
  double eps = GetParam();
  double esw = PointSplitDeterministic(eps);
  EXPECT_GT(esw, 0.0);
  // eps_sw = eps_cm: the combined error equals the budget exactly.
  EXPECT_NEAR(esw + esw + esw * esw, eps, 1e-12);
}

TEST_P(SplitSweep, RandomizedPointSplitMeetsBudget) {
  double eps = GetParam();
  double esw = PointSplitRandomizedSw(eps);
  double ecm_eps = PointSplitRandomizedCm(eps);
  EXPECT_GT(esw, 0.0);
  EXPECT_GT(ecm_eps, 0.0);
  EXPECT_NEAR(esw + ecm_eps + esw * ecm_eps, eps, 1e-9);
}

TEST_P(SplitSweep, RandomizedSplitMinimizesRwMemoryModel) {
  // Memory model 1/(esw^2 * ecm): the Theorem-3 closed form must beat any
  // nearby perturbation that still meets the budget.
  double eps = GetParam();
  double esw = PointSplitRandomizedSw(eps);
  auto mem = [eps](double sw) {
    double cm = (eps - sw) / (1.0 + sw);
    return 1.0 / (sw * sw * cm);
  };
  double best = mem(esw);
  for (double d : {-0.01, -0.001, 0.001, 0.01}) {
    double sw = esw + d * eps;
    if (sw <= 0.0 || (eps - sw) <= 0.0) continue;
    EXPECT_GE(mem(sw), best * (1.0 - 1e-6)) << "perturbation " << d;
  }
}

TEST_P(SplitSweep, SelfJoinSplitMeetsTheorem2Constraint) {
  double eps = GetParam();
  double esw = SelfJoinSplitSw(eps);
  double cm = (eps - esw * esw - 2.0 * esw) / ((1.0 + esw) * (1.0 + esw));
  EXPECT_GT(esw, 0.0);
  EXPECT_GT(cm, 0.0);
  EXPECT_NEAR(esw * esw + 2.0 * esw + cm * (1.0 + esw) * (1.0 + esw), eps,
              1e-9);
}

TEST_P(SplitSweep, SelfJoinSplitMinimizesMemory) {
  double eps = GetParam();
  double esw = SelfJoinSplitSw(eps);
  auto mem = [eps](double sw) {
    double cm = (eps - sw * sw - 2.0 * sw) / ((1.0 + sw) * (1.0 + sw));
    return 1.0 / (sw * cm);
  };
  double best = mem(esw);
  for (double d : {-0.02, -0.002, 0.002, 0.02}) {
    double sw = esw + d * eps;
    double cm = (eps - sw * sw - 2.0 * sw);
    if (sw <= 0.0 || cm <= 0.0) continue;
    EXPECT_GE(mem(sw), best * (1.0 - 1e-6)) << "perturbation " << d;
  }
}

TEST_P(SplitSweep, ClosedFormMatchesNumericOptimizer) {
  // The paper's Cardano closed form and our ternary-search minimizer must
  // agree: same cubic, two solution methods.
  double eps = GetParam();
  EXPECT_NEAR(SelfJoinSplitSwClosedForm(eps), SelfJoinSplitSw(eps), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Epsilons, SplitSweep,
                         ::testing::Values(0.02, 0.05, 0.1, 0.15, 0.2, 0.25,
                                           0.4));

TEST(EcmConfigTest, CreateDeterministicPoint) {
  auto cfg = EcmConfig::Create(0.1, 0.1, WindowMode::kTimeBased, 1000, 42);
  ASSERT_TRUE(cfg.ok());
  EXPECT_DOUBLE_EQ(cfg->epsilon_sw, cfg->epsilon_cm);
  EXPECT_EQ(cfg->width,
            static_cast<uint32_t>(std::ceil(std::exp(1.0) / cfg->epsilon_cm)));
  EXPECT_EQ(cfg->depth, 3);  // ceil(ln 10)
  EXPECT_DOUBLE_EQ(cfg->delta_cm, 0.1);
}

TEST(EcmConfigTest, CreateRandomizedSplitsDelta) {
  auto cfg = EcmConfig::Create(0.1, 0.1, WindowMode::kTimeBased, 1000, 42,
                               OptimizeFor::kPointQueries,
                               CounterFamily::kRandomized);
  ASSERT_TRUE(cfg.ok());
  EXPECT_DOUBLE_EQ(cfg->delta_cm, 0.05);
  EXPECT_DOUBLE_EQ(cfg->delta_sw, 0.05);
  // RW split shifts budget toward the expensive 1/esw^2 term:
  // esw > ecm at equal epsilon.
  EXPECT_GT(cfg->epsilon_sw, cfg->epsilon_cm);
}

TEST(EcmConfigTest, SelfJoinOptimizationUsesSmallerSwShare) {
  auto point = EcmConfig::Create(0.1, 0.1, WindowMode::kTimeBased, 1000, 42,
                                 OptimizeFor::kPointQueries);
  auto sj = EcmConfig::Create(0.1, 0.1, WindowMode::kTimeBased, 1000, 42,
                              OptimizeFor::kSelfJoinQueries);
  ASSERT_TRUE(point.ok());
  ASSERT_TRUE(sj.ok());
  // Theorem 2's 2*esw term makes window error twice as costly: the
  // self-join split allocates less to esw.
  EXPECT_LT(sj->epsilon_sw, point->epsilon_sw);
}

TEST(EcmConfigTest, CompatibilityChecksShapeSeedWindowMode) {
  auto a = EcmConfig::Create(0.1, 0.1, WindowMode::kTimeBased, 1000, 42);
  auto b = EcmConfig::Create(0.1, 0.1, WindowMode::kTimeBased, 1000, 42);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->CompatibleWith(*b));
  b->seed = 43;
  EXPECT_FALSE(a->CompatibleWith(*b));
  b->seed = 42;
  b->window_len = 999;
  EXPECT_FALSE(a->CompatibleWith(*b));
  b->window_len = 1000;
  b->mode = WindowMode::kCountBased;
  EXPECT_FALSE(a->CompatibleWith(*b));
}

TEST(EcmConfigTest, TighterEpsilonMeansWiderSketch) {
  auto loose = EcmConfig::Create(0.2, 0.1, WindowMode::kTimeBased, 1000, 1);
  auto tight = EcmConfig::Create(0.02, 0.1, WindowMode::kTimeBased, 1000, 1);
  ASSERT_TRUE(loose.ok() && tight.ok());
  EXPECT_GT(tight->width, loose->width * 5);
}

}  // namespace
}  // namespace ecm
