// Tests for the exponential histogram: exactness on small streams, the
// ε-error property over randomized workloads (parameterized sweeps), the
// paper's invariant 1, expiry, serialization, and memory behaviour.

#include "src/window/exponential_histogram.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/util/random.h"

namespace ecm {
namespace {

// Exact reference: all timestamps, queried by linear scan.
class ExactCounter {
 public:
  void Add(Timestamp ts, uint64_t count = 1) {
    for (uint64_t i = 0; i < count; ++i) stamps_.push_back(ts);
  }
  uint64_t Count(Timestamp now, uint64_t range) const {
    Timestamp boundary = WindowStart(now, range);
    uint64_t n = 0;
    for (Timestamp t : stamps_) {
      if (t > boundary && t <= now) ++n;
    }
    return n;
  }

 private:
  std::vector<Timestamp> stamps_;
};

TEST(ExponentialHistogramTest, EmptyEstimatesZero) {
  ExponentialHistogram eh({0.1, 100});
  EXPECT_EQ(eh.Estimate(50, 100), 0.0);
  EXPECT_EQ(eh.NumBuckets(), 0u);
  EXPECT_TRUE(eh.Empty());
}

TEST(ExponentialHistogramTest, SingleArrival) {
  ExponentialHistogram eh({0.1, 100});
  eh.Add(5);
  EXPECT_EQ(eh.Estimate(5, 100), 1.0);
  EXPECT_EQ(eh.lifetime_count(), 1u);
}

TEST(ExponentialHistogramTest, ExactWhileFewBuckets) {
  // With epsilon = 0.5 the capacity is small, but a handful of arrivals
  // stays exact because every bucket has size 1.
  ExponentialHistogram eh({0.5, 1000});
  for (Timestamp t = 1; t <= 4; ++t) eh.Add(t);
  EXPECT_EQ(eh.Estimate(4, 1000), 4.0);
}

TEST(ExponentialHistogramTest, FullWindowQueryCountsEverything) {
  ExponentialHistogram eh({0.1, 1'000'000});
  for (Timestamp t = 1; t <= 1000; ++t) eh.Add(t);
  double est = eh.Estimate(1000, 1'000'000);
  EXPECT_NEAR(est, 1000.0, 1000.0 * 0.1 + 0.5);
}

TEST(ExponentialHistogramTest, ExpiryDropsOldContent) {
  ExponentialHistogram eh({0.1, 100});
  for (Timestamp t = 1; t <= 50; ++t) eh.Add(t);
  // Jump far ahead: everything expires.
  eh.Add(1000);
  EXPECT_LE(eh.BucketTotal(), 1u + 50u);  // old buckets mostly gone
  eh.Expire(1200);
  EXPECT_EQ(eh.Estimate(1200, 100), 0.0);
}

TEST(ExponentialHistogramTest, ExpiryKeepsWindowContent) {
  ExponentialHistogram eh({0.05, 100});
  for (Timestamp t = 1; t <= 200; ++t) eh.Add(t);
  // Window (100, 200]: exactly 100 arrivals.
  double est = eh.Estimate(200, 100);
  EXPECT_NEAR(est, 100.0, 100.0 * 0.05 + 0.5);
  // Nothing older than ~window+slack is retained.
  EXPECT_LE(eh.BucketTotal(), 130u);
}

TEST(ExponentialHistogramTest, EstimateAtAdvancedClock) {
  ExponentialHistogram eh({0.1, 100});
  for (Timestamp t = 1; t <= 60; ++t) eh.Add(t);
  // Clock moved on to 120 without arrivals: only (20, 120] remains.
  double est = eh.Estimate(120, 100);
  EXPECT_NEAR(est, 40.0, 40.0 * 0.1 + 1.0);
}

TEST(ExponentialHistogramTest, RangeIsClampedToWindow) {
  ExponentialHistogram eh({0.1, 50});
  for (Timestamp t = 1; t <= 100; ++t) eh.Add(t);
  EXPECT_EQ(eh.Estimate(100, 5000), eh.Estimate(100, 50));
}

TEST(ExponentialHistogramTest, BulkAddMatchesLoop) {
  ExponentialHistogram a({0.1, 1000});
  ExponentialHistogram b({0.1, 1000});
  a.Add(10, 37);
  for (int i = 0; i < 37; ++i) b.Add(10, 1);
  EXPECT_EQ(a.BucketTotal(), b.BucketTotal());
  EXPECT_EQ(a.NumBuckets(), b.NumBuckets());
  EXPECT_EQ(a.Estimate(10, 1000), b.Estimate(10, 1000));
}

TEST(ExponentialHistogramTest, InvariantHoldsAfterManyInserts) {
  ExponentialHistogram eh({0.1, 100000});
  Rng rng(17);
  Timestamp t = 1;
  for (int i = 0; i < 20000; ++i) {
    t += rng.Uniform(3);
    eh.Add(t);
    if (i % 1000 == 0) {
      EXPECT_EQ(eh.CheckInvariant(), -1) << "after " << i << " inserts";
    }
  }
  EXPECT_EQ(eh.CheckInvariant(), -1);
}

TEST(ExponentialHistogramTest, BucketViewIsConsistent) {
  ExponentialHistogram eh({0.2, 10000});
  for (Timestamp t = 1; t <= 500; ++t) eh.Add(t);
  auto buckets = eh.Buckets();
  ASSERT_EQ(buckets.size(), eh.NumBuckets());
  uint64_t total = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    total += buckets[i].size;
    EXPECT_LE(buckets[i].start, buckets[i].end);
    if (i > 0) {
      EXPECT_EQ(buckets[i].start, buckets[i - 1].end);
      EXPECT_GE(buckets[i].size, 1u);
      // Sizes never increase from old to new.
      EXPECT_LE(buckets[i].size, buckets[i - 1].size);
    }
  }
  EXPECT_EQ(total, eh.BucketTotal());
}

TEST(ExponentialHistogramTest, MemoryIsLogarithmicInCount) {
  ExponentialHistogram small({0.1, 1u << 30});
  ExponentialHistogram large({0.1, 1u << 30});
  for (Timestamp t = 1; t <= 1000; ++t) small.Add(t);
  for (Timestamp t = 1; t <= 100000; ++t) large.Add(t);
  // 100x the stream, far less than 10x the memory.
  EXPECT_LT(large.MemoryBytes(), small.MemoryBytes() * 10);
}

TEST(ExponentialHistogramTest, SerializeRoundTrip) {
  ExponentialHistogram eh({0.1, 1000});
  Rng rng(3);
  Timestamp t = 1;
  for (int i = 0; i < 5000; ++i) {
    t += rng.Uniform(2);
    eh.Add(t);
  }
  ByteWriter w;
  eh.SerializeTo(&w);
  ByteReader r(w.bytes());
  auto back = ExponentialHistogram::Deserialize(&r);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(back->NumBuckets(), eh.NumBuckets());
  EXPECT_EQ(back->BucketTotal(), eh.BucketTotal());
  EXPECT_EQ(back->lifetime_count(), eh.lifetime_count());
  for (uint64_t range : {10u, 100u, 1000u}) {
    EXPECT_EQ(back->Estimate(t, range), eh.Estimate(t, range));
  }
}

TEST(ExponentialHistogramTest, DeserializeRejectsGarbage) {
  std::vector<uint8_t> junk = {0xFF, 0x01, 0x02};
  ByteReader r(junk.data(), junk.size());
  EXPECT_FALSE(ExponentialHistogram::Deserialize(&r).ok());
}

TEST(ExponentialHistogramTest, DeserializeRejectsTruncation) {
  ExponentialHistogram eh({0.1, 1000});
  for (Timestamp t = 1; t <= 300; ++t) eh.Add(t);
  ByteWriter w;
  eh.SerializeTo(&w);
  auto bytes = w.bytes();
  ByteReader r(bytes.data(), bytes.size() / 2);
  EXPECT_FALSE(ExponentialHistogram::Deserialize(&r).ok());
}

// ---------------------------------------------------------------------------
// Property sweep: the ε guarantee across epsilons, stream shapes, and
// query ranges. Error must satisfy |est - true| <= ε·true + 1 (the +1
// absorbs the half-bucket rounding on size-1 oldest buckets).
// ---------------------------------------------------------------------------

struct EhSweepParam {
  double epsilon;
  int burst;        // arrivals share timestamps in bursts of this size
  uint64_t gap_max; // max timestamp gap between arrivals
};

class EhErrorSweep : public ::testing::TestWithParam<EhSweepParam> {};

TEST_P(EhErrorSweep, ErrorWithinEpsilon) {
  const EhSweepParam p = GetParam();
  constexpr uint64_t kWindow = 50000;
  ExponentialHistogram eh({p.epsilon, kWindow});
  ExactCounter exact;
  Rng rng(static_cast<uint64_t>(p.epsilon * 1000) + p.burst);

  Timestamp t = 1;
  for (int i = 0; i < 30000; ++i) {
    t += 1 + rng.Uniform(p.gap_max);
    uint64_t count = 1 + rng.Uniform(p.burst);
    eh.Add(t, count);
    exact.Add(t, count);
  }
  for (uint64_t range :
       {uint64_t{100}, uint64_t{1000}, uint64_t{10000}, kWindow}) {
    double est = eh.Estimate(t, range);
    double truth = static_cast<double>(exact.Count(t, range));
    EXPECT_LE(std::abs(est - truth), p.epsilon * truth + 1.0)
        << "range=" << range << " truth=" << truth << " est=" << est;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EhErrorSweep,
    ::testing::Values(EhSweepParam{0.01, 1, 3}, EhSweepParam{0.05, 1, 3},
                      EhSweepParam{0.1, 1, 3}, EhSweepParam{0.25, 1, 3},
                      EhSweepParam{0.5, 1, 3}, EhSweepParam{0.1, 8, 1},
                      EhSweepParam{0.1, 64, 10}, EhSweepParam{0.05, 16, 100},
                      EhSweepParam{0.2, 4, 50}));

// Count-based usage: timestamps are arrival indices; "last N arrivals".
TEST(ExponentialHistogramTest, CountBasedSemantics) {
  constexpr uint64_t kWindow = 1000;  // last 1000 arrivals
  ExponentialHistogram eh({0.1, kWindow});
  // Arrivals 1..5000; the counter tracks a sub-stream: every 3rd arrival
  // is "ours" (like one cell of a count-based ECM-sketch).
  uint64_t ours_total = 0;
  std::vector<uint64_t> ours;
  for (uint64_t idx = 1; idx <= 5000; ++idx) {
    if (idx % 3 == 0) {
      eh.Add(idx);
      ours.push_back(idx);
      ++ours_total;
    }
  }
  // Query: of the last 600 arrivals (indices 4401..5000), how many ours?
  uint64_t truth = 0;
  for (uint64_t idx : ours) {
    if (idx > 4400) ++truth;
  }
  double est = eh.Estimate(5000, 600);
  EXPECT_LE(std::abs(est - static_cast<double>(truth)), 0.1 * truth + 1.0);
}

TEST(ExponentialHistogramTest, TinyEpsilonIsExactForSmallStreams) {
  // epsilon so small the capacity exceeds the stream: no merges, exact.
  ExponentialHistogram eh({0.001, 100000});
  Rng rng(5);
  ExactCounter exact;
  Timestamp t = 1;
  for (int i = 0; i < 500; ++i) {
    t += rng.Uniform(5);
    eh.Add(t);
    exact.Add(t);
  }
  for (uint64_t range : {10ULL, 100ULL, 100000ULL}) {
    EXPECT_NEAR(eh.Estimate(t, range),
                static_cast<double>(exact.Count(t, range)), 1.0);
  }
}

TEST(ExponentialHistogramTest, LifetimeCountsEverything) {
  ExponentialHistogram eh({0.1, 10});
  for (Timestamp t = 1; t <= 1000; ++t) eh.Add(t);
  EXPECT_EQ(eh.lifetime_count(), 1000u);  // expiry does not reduce lifetime
  EXPECT_LT(eh.BucketTotal(), 30u);       // window keeps only ~10
}

// Segmented arena growth regression: a tiny-ε histogram has a per-level
// ring bound (level_capacity_) in the millions, but slot storage must
// track the buckets actually held — geometric doubling, not an upfront
// levels × level_capacity_ preallocation.
TEST(ExponentialHistogramTest, SegmentedArenaAllocatesOnDemand) {
  ExponentialHistogram eh({1e-6, 1'000'000});
  EXPECT_EQ(eh.AllocatedSlots(), 0u);
  Timestamp t = 1;
  for (int i = 0; i < 1000; ++i) eh.Add(++t);
  // ε=1e-6 never merges 1000 arrivals: level 0 holds 1000 buckets and the
  // segment has grown to at most the next power of two, nowhere near the
  // ~1e6-slot ring bound the old flat arena reserved per level.
  EXPECT_EQ(eh.NumBuckets(), 1000u);
  EXPECT_GE(eh.AllocatedSlots(), 1000u);
  EXPECT_LE(eh.AllocatedSlots(), 2048u);
  EXPECT_LT(eh.MemoryBytes(), 64u * 1024u);
}

// The wire format is a layout-independent level log, so the segmented
// arena must re-encode a decoded histogram byte-identically (the same
// bytes the flat-arena encoding produced).
TEST(ExponentialHistogramTest, SegmentedArenaRoundTripIsByteStable) {
  ExponentialHistogram eh({0.05, 50'000});
  Rng rng(21);
  Timestamp t = 1;
  for (int op = 0; op < 300; ++op) {
    t += rng.Uniform(30);
    eh.Add(t, 1 + rng.Uniform(op % 7 == 0 ? 20'000 : 40));
  }
  ByteWriter w;
  eh.SerializeTo(&w);
  ByteReader r(w.bytes());
  auto back = ExponentialHistogram::Deserialize(&r);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(r.exhausted());
  ByteWriter w2;
  back->SerializeTo(&w2);
  EXPECT_EQ(w.bytes(), w2.bytes());
  for (uint64_t range : {100u, 5'000u, 50'000u}) {
    EXPECT_EQ(back->Estimate(t, range), eh.Estimate(t, range));
  }
}

}  // namespace
}  // namespace ecm
