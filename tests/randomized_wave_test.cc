// Tests for the randomized wave: exactness while level 0 is complete, the
// (ε, δ) property over seeds (failure-rate counting), memory scaling in
// 1/ε², determinism per seed, and serialization.

#include "src/window/randomized_wave.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/util/random.h"

namespace ecm {
namespace {

TEST(RandomizedWaveTest, EmptyEstimatesZero) {
  RandomizedWave rw;
  EXPECT_EQ(rw.Estimate(50, 100), 0.0);
}

TEST(RandomizedWaveTest, ExactWhileLevelZeroComplete) {
  RandomizedWave::Config cfg;
  cfg.epsilon = 0.2;  // capacity 100 per level
  cfg.window_len = 1000;
  cfg.max_arrivals = 1 << 12;
  RandomizedWave rw(cfg);
  for (Timestamp t = 1; t <= 50; ++t) rw.Add(t);
  EXPECT_EQ(rw.Estimate(50, 1000), 50.0);
  EXPECT_EQ(rw.Estimate(50, 10), 10.0);
}

TEST(RandomizedWaveTest, DeterministicPerSeed) {
  RandomizedWave::Config cfg;
  cfg.seed = 77;
  cfg.window_len = 10000;
  RandomizedWave a(cfg), b(cfg);
  for (Timestamp t = 1; t <= 5000; ++t) {
    a.Add(t);
    b.Add(t);
  }
  EXPECT_EQ(a.Estimate(5000, 2000), b.Estimate(5000, 2000));
}

TEST(RandomizedWaveTest, SubwaveCountGrowsWithDelta) {
  RandomizedWave::Config loose;
  loose.delta = 0.4;
  RandomizedWave::Config tight = loose;
  tight.delta = 0.01;
  EXPECT_LT(RandomizedWave(loose).num_subwaves(),
            RandomizedWave(tight).num_subwaves());
}

TEST(RandomizedWaveTest, MemoryScalesInverseEpsilonSquared) {
  RandomizedWave::Config a;
  a.epsilon = 0.2;
  a.window_len = 1 << 20;
  a.max_arrivals = 1 << 20;
  RandomizedWave::Config b = a;
  b.epsilon = 0.05;  // 4x tighter -> ~16x the sample capacity
  RandomizedWave wa(a), wb(b);
  for (Timestamp t = 1; t <= 200000; ++t) {
    wa.Add(t);
    wb.Add(t);
  }
  EXPECT_GT(wb.MemoryBytes(), wa.MemoryBytes() * 6);
}

// (ε, δ) property: across many seeds, the fraction of estimates outside
// (1±ε)·truth must be below δ (with slack for the test's finite sample).
TEST(RandomizedWaveTest, EpsilonDeltaGuaranteeAcrossSeeds) {
  constexpr double kEps = 0.15;
  constexpr double kDelta = 0.2;
  constexpr int kTrials = 60;
  int failures = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    RandomizedWave::Config cfg;
    cfg.epsilon = kEps;
    cfg.delta = kDelta;
    cfg.window_len = 1 << 20;
    cfg.max_arrivals = 1 << 18;
    cfg.seed = 1000 + trial;
    RandomizedWave rw(cfg);
    Rng rng(trial);
    Timestamp t = 1;
    std::vector<Timestamp> stamps;
    for (int i = 0; i < 30000; ++i) {
      t += rng.Uniform(3);
      rw.Add(t);
      stamps.push_back(t);
    }
    uint64_t range = 5000;
    Timestamp boundary = WindowStart(t, range);
    uint64_t truth = 0;
    for (Timestamp s : stamps) {
      if (s > boundary) ++truth;
    }
    double est = rw.Estimate(t, range);
    if (std::abs(est - static_cast<double>(truth)) >
        kEps * static_cast<double>(truth) + 1.0) {
      ++failures;
    }
  }
  EXPECT_LE(failures, static_cast<int>(kTrials * kDelta) + 3)
      << failures << "/" << kTrials << " trials outside the epsilon band";
}

struct RwSweepParam {
  double epsilon;
  uint64_t range;
};

class RwErrorSweep : public ::testing::TestWithParam<RwSweepParam> {};

TEST_P(RwErrorSweep, TypicalErrorNearEpsilon) {
  const RwSweepParam p = GetParam();
  RandomizedWave::Config cfg;
  cfg.epsilon = p.epsilon;
  cfg.delta = 0.05;
  cfg.window_len = 1 << 20;
  cfg.max_arrivals = 1 << 18;
  cfg.seed = static_cast<uint64_t>(p.epsilon * 1e4) + p.range;
  RandomizedWave rw(cfg);
  Rng rng(11);
  Timestamp t = 1;
  std::vector<Timestamp> stamps;
  for (int i = 0; i < 40000; ++i) {
    t += rng.Uniform(4);
    rw.Add(t);
    stamps.push_back(t);
  }
  Timestamp boundary = WindowStart(t, p.range);
  uint64_t truth = 0;
  for (Timestamp s : stamps) {
    if (s > boundary) ++truth;
  }
  double est = rw.Estimate(t, p.range);
  // Median-of-subwaves at delta=0.05: allow 2x the epsilon band.
  EXPECT_LE(std::abs(est - static_cast<double>(truth)),
            2.0 * p.epsilon * static_cast<double>(truth) + 2.0)
      << "truth=" << truth << " est=" << est;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RwErrorSweep,
    ::testing::Values(RwSweepParam{0.1, 1000}, RwSweepParam{0.1, 10000},
                      RwSweepParam{0.1, 50000}, RwSweepParam{0.2, 10000},
                      RwSweepParam{0.3, 10000}, RwSweepParam{0.05, 20000}));

TEST(RandomizedWaveTest, SerializeRoundTrip) {
  RandomizedWave::Config cfg;
  cfg.epsilon = 0.2;
  cfg.window_len = 5000;
  cfg.max_arrivals = 1 << 14;
  cfg.seed = 5;
  RandomizedWave rw(cfg);
  Rng rng(6);
  Timestamp t = 1;
  for (int i = 0; i < 10000; ++i) {
    t += rng.Uniform(2);
    rw.Add(t);
  }
  ByteWriter w;
  rw.SerializeTo(&w);
  ByteReader r(w.bytes());
  auto back = RandomizedWave::Deserialize(&r);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(back->lifetime_count(), rw.lifetime_count());
  EXPECT_EQ(back->num_subwaves(), rw.num_subwaves());
  for (uint64_t range : {500u, 2000u, 5000u}) {
    EXPECT_EQ(back->Estimate(t, range), rw.Estimate(t, range));
  }
}

TEST(RandomizedWaveTest, DeserializeRejectsGarbage) {
  std::vector<uint8_t> junk = {0x00, 0x01, 0x02, 0x03};
  ByteReader r(junk.data(), junk.size());
  EXPECT_FALSE(RandomizedWave::Deserialize(&r).ok());
}

TEST(RandomizedWaveTest, DeserializeRejectsOverCapacityLevel) {
  // A hostile header claiming more retained samples than the level
  // capacity must be rejected, not allowed to inflate sizes[] (and with
  // it the truncated-coverage fallback estimate).
  ByteWriter w;
  w.PutFixed<uint8_t>(0xB7);  // magic
  w.PutDouble(0.5);           // epsilon -> capacity 16
  w.PutDouble(0.1);           // delta
  w.PutVarint(100);           // window_len
  w.PutVarint(16);            // level_capacity
  w.PutVarint(1);             // num_levels
  w.PutVarint(1);             // num_subwaves
  w.PutVarint(20);            // lifetime
  w.PutVarint(20);            // last_ts
  w.PutFixed<uint8_t>(0);     // level 0: not truncated
  w.PutVarint(20);            // 20 samples > capacity 16
  for (int i = 0; i < 20; ++i) w.PutVarint(1);
  ByteReader r(w.bytes());
  auto result = RandomizedWave::Deserialize(&r);
  EXPECT_FALSE(result.ok());
}

TEST(RandomizedWaveTest, ExpiryKeepsWindowEstimatesSane) {
  RandomizedWave::Config cfg;
  cfg.epsilon = 0.1;
  cfg.window_len = 1000;
  cfg.max_arrivals = 1 << 16;
  RandomizedWave rw(cfg);
  for (Timestamp t = 1; t <= 20000; ++t) rw.Add(t);
  double est = rw.Estimate(20000, 1000);
  EXPECT_NEAR(est, 1000.0, 300.0);
}

}  // namespace
}  // namespace ecm
