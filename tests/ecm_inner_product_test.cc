// Tests for inner-product and self-join queries over sliding windows
// (Theorem 2): error bounds across epsilons and ranges, the self-join
// optimized ε-split, and compatibility enforcement.

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>

#include "src/core/ecm_sketch.h"
#include "src/stream/generators.h"
#include "src/util/random.h"

namespace ecm {
namespace {

struct TwoStreams {
  std::vector<StreamEvent> a, b;
  Timestamp now = 0;
};

TwoStreams MakeStreams(double skew_a, double skew_b, int n, uint64_t seed) {
  ZipfStream::Config ca;
  ca.domain = 1000;
  ca.skew = skew_a;
  ca.seed = seed;
  ZipfStream sa(ca);
  ZipfStream::Config cb = ca;
  cb.skew = skew_b;
  cb.seed = seed + 1;
  ZipfStream sb(cb);
  TwoStreams out;
  out.a = sa.Take(n);
  out.b = sb.Take(n);
  out.now = std::max(out.a.back().ts, out.b.back().ts);
  return out;
}

double ExactInnerProduct(const std::vector<StreamEvent>& a,
                         const std::vector<StreamEvent>& b, Timestamp now,
                         uint64_t range) {
  auto sa = ComputeExactRangeStats(a, now, range);
  auto sb = ComputeExactRangeStats(b, now, range);
  std::unordered_map<uint64_t, uint64_t> fb;
  for (const auto& [k, c] : sb.freqs) fb[k] = c;
  double ip = 0.0;
  for (const auto& [k, c] : sa.freqs) {
    auto it = fb.find(k);
    if (it != fb.end()) {
      ip += static_cast<double>(c) * static_cast<double>(it->second);
    }
  }
  return ip;
}

TEST(InnerProductTest, RequiresCompatibleSketches) {
  auto a = EcmEh::Create(0.1, 0.1, WindowMode::kTimeBased, 1000, 1);
  auto b = EcmEh::Create(0.1, 0.1, WindowMode::kTimeBased, 1000, 2);
  ASSERT_TRUE(a.ok() && b.ok());
  auto r = a->InnerProduct(*b, 1000);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIncompatible);
}

TEST(InnerProductTest, DisjointStreamsNearZero) {
  auto cfg = EcmConfig::Create(0.05, 0.05, WindowMode::kTimeBased, 100000, 3,
                               OptimizeFor::kSelfJoinQueries);
  ASSERT_TRUE(cfg.ok());
  EcmEh a(*cfg), b(*cfg);
  for (Timestamp t = 1; t <= 2000; ++t) {
    a.Add(t % 100, t);           // keys 0..99
    b.Add(1000 + t % 100, t);    // keys 1000..1099
  }
  auto est = a.InnerProductAt(b, 100000, 2000);
  ASSERT_TRUE(est.ok());
  // Theorem 2: error <= ~eps * ||a|| * ||b||.
  EXPECT_LE(*est, 0.08 * 2000.0 * 2000.0);
}

struct IpSweep {
  double epsilon;
  double skew;
  uint64_t range;
};

class InnerProductSweep : public ::testing::TestWithParam<IpSweep> {};

TEST_P(InnerProductSweep, Theorem2Bound) {
  const IpSweep p = GetParam();
  auto cfg =
      EcmConfig::Create(p.epsilon, 0.05, WindowMode::kTimeBased, 100000, 77,
                        OptimizeFor::kSelfJoinQueries);
  ASSERT_TRUE(cfg.ok());
  EcmEh sa(*cfg), sb(*cfg);
  TwoStreams streams = MakeStreams(p.skew, 1.0, 30000, p.range);
  for (const auto& e : streams.a) sa.Add(e.key, e.ts);
  for (const auto& e : streams.b) sb.Add(e.key, e.ts);

  double truth = ExactInnerProduct(streams.a, streams.b, streams.now, p.range);
  auto ea = ComputeExactRangeStats(streams.a, streams.now, p.range);
  auto eb = ComputeExactRangeStats(streams.b, streams.now, p.range);
  auto est = sa.InnerProductAt(sb, p.range, streams.now);
  ASSERT_TRUE(est.ok());
  double budget = p.epsilon * static_cast<double>(ea.l1) *
                      static_cast<double>(eb.l1) +
                  2.0;
  EXPECT_LE(std::abs(*est - truth), budget)
      << "truth=" << truth << " est=" << *est << " l1a=" << ea.l1
      << " l1b=" << eb.l1;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InnerProductSweep,
    ::testing::Values(IpSweep{0.05, 1.0, 10000}, IpSweep{0.1, 1.0, 10000},
                      IpSweep{0.2, 1.0, 10000}, IpSweep{0.1, 0.6, 5000},
                      IpSweep{0.1, 1.2, 30000}, IpSweep{0.15, 1.0, 100000}));

class SelfJoinSweep : public ::testing::TestWithParam<IpSweep> {};

TEST_P(SelfJoinSweep, Theorem2BoundOnF2) {
  const IpSweep p = GetParam();
  auto cfg =
      EcmConfig::Create(p.epsilon, 0.05, WindowMode::kTimeBased, 100000, 41,
                        OptimizeFor::kSelfJoinQueries);
  ASSERT_TRUE(cfg.ok());
  EcmEh sketch(*cfg);
  ZipfStream::Config zc;
  zc.domain = 800;
  zc.skew = p.skew;
  zc.seed = 17;
  ZipfStream stream(zc);
  auto events = stream.Take(30000);
  for (const auto& e : events) sketch.Add(e.key, e.ts);
  Timestamp now = events.back().ts;

  auto exact = ComputeExactRangeStats(events, now, p.range);
  double est = sketch.InnerProductAt(sketch, p.range, now).value();
  double budget = p.epsilon * static_cast<double>(exact.l1) *
                      static_cast<double>(exact.l1) +
                  2.0;
  EXPECT_LE(std::abs(est - exact.self_join), budget)
      << "truth=" << exact.self_join << " est=" << est;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SelfJoinSweep,
    ::testing::Values(IpSweep{0.05, 1.0, 10000}, IpSweep{0.1, 1.0, 10000},
                      IpSweep{0.25, 1.0, 10000}, IpSweep{0.1, 0.5, 20000},
                      IpSweep{0.1, 1.4, 100000}));

TEST(SelfJoinTest, SkewRaisesF2) {
  auto cfg = EcmConfig::Create(0.1, 0.05, WindowMode::kTimeBased, 100000, 5,
                               OptimizeFor::kSelfJoinQueries);
  ASSERT_TRUE(cfg.ok());
  EcmEh uniform_sketch(*cfg), skewed_sketch(*cfg);
  ZipfStream::Config zu;
  zu.domain = 500;
  zu.skew = 0.0;
  zu.seed = 1;
  ZipfStream us(zu);
  ZipfStream::Config zs = zu;
  zs.skew = 1.5;
  zs.seed = 2;
  ZipfStream ss(zs);
  auto ue = us.Take(20000);
  auto se = ss.Take(20000);
  for (const auto& e : ue) uniform_sketch.Add(e.key, e.ts);
  for (const auto& e : se) skewed_sketch.Add(e.key, e.ts);
  // F2 is minimized by uniform distributions.
  EXPECT_GT(skewed_sketch.SelfJoin(100000), uniform_sketch.SelfJoin(100000));
}

TEST(SelfJoinTest, InnerProductWithSelfEqualsSelfJoin) {
  auto sketch = EcmEh::Create(0.1, 0.1, WindowMode::kTimeBased, 10000, 6);
  ASSERT_TRUE(sketch.ok());
  for (Timestamp t = 1; t <= 3000; ++t) sketch->Add(t % 37, t);
  auto ip = sketch->InnerProduct(*sketch, 5000);
  ASSERT_TRUE(ip.ok());
  EXPECT_DOUBLE_EQ(*ip, sketch->SelfJoin(5000));
}

}  // namespace
}  // namespace ecm
