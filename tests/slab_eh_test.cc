// Differential tests for the slab-arena exponential histogram: bit-identity
// against ExponentialHistogram over randomized weighted add/expire/query
// interleavings, invariance of estimates under extra wheel-driven Expire
// calls (the property the keyed store's expiry wheel relies on), and slab
// recycling / shrinking behaviour.

#include "src/window/slab_eh.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/util/random.h"
#include "src/window/exponential_histogram.h"

namespace ecm {
namespace {

struct ParamCase {
  double epsilon;
  uint64_t window_len;
};

void ExpectSameBuckets(const SlabEhPool& pool, const SlabEhState& s,
                       const ExponentialHistogram& eh) {
  std::vector<BucketView> a = pool.Buckets(s);
  std::vector<BucketView> b = eh.Buckets();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start, b[i].start) << "bucket " << i;
    EXPECT_EQ(a[i].end, b[i].end) << "bucket " << i;
    EXPECT_EQ(a[i].size, b[i].size) << "bucket " << i;
  }
}

// Mirrored random ops on both implementations; every observable compared,
// estimates with EXPECT_EQ (bit-identity, not tolerance).
TEST(SlabEhTest, DifferentialBitIdentity) {
  const ParamCase cases[] = {
      {1.0, 64},      {0.5, 1},        {0.5, 1000},
      {0.1, 100},     {0.1, 1 << 20},  {0.02, 5000},
      {0.002, 4096},  // near the kMaxLevelCapacity bound
  };
  for (const ParamCase& pc : cases) {
    SCOPED_TRACE(testing::Message()
                 << "epsilon=" << pc.epsilon << " window=" << pc.window_len);
    SlabEhPool pool(pc.epsilon, pc.window_len);
    SlabEhState s;
    ExponentialHistogram eh({pc.epsilon, pc.window_len});
    ASSERT_EQ(pool.level_capacity(),
              static_cast<size_t>(std::ceil(1.0 / pc.epsilon)) + 2);

    Rng rng(0xABCD0001 + static_cast<uint64_t>(pc.window_len));
    Timestamp ts = 0;
    for (int op = 0; op < 4000; ++op) {
      const uint64_t what = rng.Uniform(100);
      if (what < 70) {
        // Weighted add; occasional huge counts drive the closed-form path
        // through many levels.
        ts += rng.Uniform(std::max<uint64_t>(pc.window_len / 16, 2));
        uint64_t count = 1;
        const uint64_t shape = rng.Uniform(10);
        if (shape >= 7) count = 1 + rng.Uniform(50);
        if (shape == 9) count = 1 + rng.Uniform(1u << 20);
        pool.Add(&s, ts, count);
        eh.Add(ts, count);
      } else if (what < 80) {
        const Timestamp now = ts + rng.Uniform(pc.window_len + 2);
        pool.Expire(&s, now);
        eh.Expire(now);
        ts = std::max(ts, now);
      } else {
        const Timestamp now = ts + rng.Uniform(pc.window_len / 4 + 2);
        const uint64_t range = 1 + rng.Uniform(pc.window_len + pc.window_len / 2);
        EXPECT_EQ(pool.Estimate(s, now, range), eh.Estimate(now, range))
            << "op " << op << " now=" << now << " range=" << range;
        EXPECT_EQ(pool.NextEstimateChangeAt(s, now, range),
                  eh.NextEstimateChangeAt(now, range))
            << "op " << op << " now=" << now << " range=" << range;
      }
      EXPECT_EQ(pool.BucketTotal(s), eh.BucketTotal());
      EXPECT_EQ(pool.NumBuckets(s), eh.NumBuckets());
      if (op % 257 == 0) ExpectSameBuckets(pool, s, eh);
    }
    ExpectSameBuckets(pool, s, eh);
    pool.Release(&s);
    EXPECT_EQ(pool.arena().LiveBlocks(), 0u);
  }
}

// The expiry wheel calls Expire at times of its own choosing between adds;
// every query issued before the next add must be unaffected by the firing
// (bit-identical to a reference that did not expire). The next add's merge
// cascade, however, legitimately depends on which stale buckets are still
// present (the reference expires them after cascading, the wheel before),
// so the reference is re-synced with a mirrored Expire before each add —
// which is exactly how the keyed store's differential oracle mirrors wheel
// firings via the eviction observer.
TEST(SlabEhTest, EstimateInvariantUnderWheelExpiry) {
  const ParamCase cases[] = {{0.5, 128}, {0.1, 1024}, {0.02, 1 << 16}};
  for (const ParamCase& pc : cases) {
    SCOPED_TRACE(testing::Message()
                 << "epsilon=" << pc.epsilon << " window=" << pc.window_len);
    SlabEhPool pool(pc.epsilon, pc.window_len);
    SlabEhState s;
    ExponentialHistogram eh({pc.epsilon, pc.window_len});

    Rng rng(0xFEED0002);
    Timestamp ts = 0;
    // Last slab-only wheel firing not yet mirrored into the reference.
    Timestamp pending_sync = 0;
    for (int op = 0; op < 3000; ++op) {
      const uint64_t what = rng.Uniform(10);
      if (what < 6) {
        if (pending_sync > 0) {
          eh.Expire(pending_sync);
          pending_sync = 0;
        }
        ts += rng.Uniform(pc.window_len / 8 + 2);
        const uint64_t count = 1 + (rng.Uniform(4) == 0 ? rng.Uniform(999) : 0);
        pool.Add(&s, ts, count);
        eh.Add(ts, count);
      } else if (what < 8) {
        // Wheel fires on the slab side only; the clock advances with it.
        ts += rng.Uniform(pc.window_len / 2 + 2);
        pool.Expire(&s, ts);
        pending_sync = ts;
      } else {
        // Queries between the firing and the next add see no difference.
        const Timestamp now = ts + rng.Uniform(pc.window_len);
        const uint64_t range = 1 + rng.Uniform(pc.window_len);
        EXPECT_EQ(pool.Estimate(s, now, range), eh.Estimate(now, range))
            << "op " << op << " now=" << now << " range=" << range;
      }
    }
  }
}

TEST(SlabEhTest, EmptyStateBehaves) {
  SlabEhPool pool(0.1, 100);
  SlabEhState s;
  EXPECT_EQ(pool.Estimate(s, 50, 100), 0.0);
  EXPECT_EQ(pool.NextEstimateChangeAt(s, 50, 100), 0u);
  EXPECT_EQ(pool.NumBuckets(s), 0u);
  EXPECT_EQ(pool.BucketTotal(s), 0u);
  pool.Expire(&s, 1000);   // no-op
  pool.Release(&s);        // no-op
  EXPECT_EQ(pool.arena().LiveBlocks(), 0u);
}

// Admission/eviction churn must recycle blocks: after the first round the
// arena stops carving pages no matter how many evict/readmit cycles run.
TEST(SlabEhTest, ArenaRecyclesFreedBlocks) {
  SlabEhPool pool(0.1, 1 << 20);
  constexpr int kKeys = 512;
  std::vector<SlabEhState> states(kKeys);
  Timestamp ts = 1;
  for (int round = 0; round < 8; ++round) {
    for (int k = 0; k < kKeys; ++k) {
      for (int i = 0; i < 40; ++i) pool.Add(&states[k], ts += 1);
    }
    const size_t pages_after_first = pool.arena().NumPages();
    for (int k = 0; k < kKeys; ++k) pool.Release(&states[k]);
    EXPECT_EQ(pool.arena().LiveBlocks(), 0u);
    if (round > 0) {
      EXPECT_EQ(pool.arena().NumPages(), pages_after_first)
          << "arena carved new pages despite free blocks, round " << round;
    }
  }
}

// A key that grew a large block and then cooled must hand the block back:
// expiry shrinks the block class once occupancy drops to a quarter.
TEST(SlabEhTest, ExpiryShrinksCooledBlocks) {
  SlabEhPool pool(0.01, 1 << 24);
  SlabEhState s;
  Timestamp ts = 1;
  for (int i = 0; i < 20000; ++i) pool.Add(&s, ts += 8);
  const size_t hot_buckets = pool.NumBuckets(s);
  ASSERT_GT(hot_buckets, 200u);
  // Let almost everything expire, keeping only the most recent content.
  pool.Add(&s, ts += 1);
  pool.Expire(&s, ts + (1 << 24) - 64);
  ASSERT_GT(pool.NumBuckets(s), 0u);
  ASSERT_LT(pool.NumBuckets(s), 32u);
  EXPECT_LE(SlabArena::ClassSlots(s.cls), 128u)
      << "cooled key kept an oversized slab block";
  // Full expiry frees the block entirely.
  pool.Expire(&s, ts + (1ULL << 25));
  EXPECT_EQ(pool.NumBuckets(s), 0u);
  EXPECT_EQ(s.block, SlabArena::kNullBlock);
  EXPECT_EQ(pool.arena().LiveBlocks(), 0u);
}

// The slab header plus amortized slab slots stay far below the
// map<key, shared_ptr<EH>> shape this store replaces; sanity-pin the
// per-key state size so regressions are loud.
TEST(SlabEhTest, StateHeaderStaysSmall) {
  EXPECT_LE(sizeof(SlabEhState), 32u);
}

}  // namespace
}  // namespace ecm
