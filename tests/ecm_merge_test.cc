// Tests for ECM-sketch order-preserving aggregation (§5.3): point and
// self-join accuracy of merged sketches vs a sketch of the union stream,
// the Fig. 2 count-based impossibility, compatibility checks, and the
// lossless RW merge.

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/ecm_sketch.h"
#include "src/stream/generators.h"
#include "src/util/random.h"

namespace ecm {
namespace {

constexpr uint64_t kWindow = 100000;

template <typename Counter>
struct MergedVsUnion {
  EcmSketch<Counter> merged;
  std::vector<StreamEvent> all_events;
  Timestamp now;
};

// Builds `n` compatible sketches over node-sharded Zipf streams, merges
// them, and returns the merged sketch plus the union ground truth.
template <typename Counter>
MergedVsUnion<Counter> BuildMerged(int n, double epsilon, uint64_t seed) {
  auto cfg = EcmConfig::Create(
      epsilon, 0.1, WindowMode::kTimeBased, kWindow, seed,
      OptimizeFor::kPointQueries,
      std::is_same_v<Counter, RandomizedWave> ? CounterFamily::kRandomized
                                              : CounterFamily::kDeterministic,
      /*max_arrivals=*/1 << 18);
  EXPECT_TRUE(cfg.ok());

  ZipfStream::Config zc;
  zc.domain = 2000;
  zc.skew = 1.0;
  zc.num_nodes = n;
  zc.seed = seed;
  ZipfStream stream(zc);
  auto events = stream.Take(40000);

  std::vector<EcmSketch<Counter>> sketches(n, EcmSketch<Counter>(*cfg));
  for (const auto& e : events) sketches[e.node].Add(e.key, e.ts);
  Timestamp now = events.back().ts;
  for (auto& s : sketches) s.AdvanceTo(now);

  std::vector<const EcmSketch<Counter>*> ptrs;
  for (auto& s : sketches) ptrs.push_back(&s);
  auto merged =
      EcmSketch<Counter>::Merge(ptrs, cfg->epsilon_sw, /*seed=*/seed);
  EXPECT_TRUE(merged.ok()) << merged.status();
  return {std::move(*merged), std::move(events), now};
}

struct MergeSweep {
  int nodes;
  double epsilon;
};

class EcmMergeSweep : public ::testing::TestWithParam<MergeSweep> {};

TEST_P(EcmMergeSweep, MergedPointQueriesWithinInflatedBound) {
  const MergeSweep p = GetParam();
  auto r = BuildMerged<ExponentialHistogram>(p.nodes, p.epsilon, 900 + p.nodes);
  auto exact = ComputeExactRangeStats(r.all_events, r.now, 20000);
  ASSERT_GT(exact.l1, 0u);
  // One merge level: window error inflates to ~2eps_sw; total still well
  // under 3*eps against ||a_r||_1 for every key.
  double budget = 3.0 * p.epsilon * static_cast<double>(exact.l1) + 2.0;
  size_t violations = 0;
  for (const auto& [key, count] : exact.freqs) {
    double est = r.merged.PointQueryAt(key, 20000, r.now);
    if (std::abs(est - static_cast<double>(count)) > budget) ++violations;
  }
  EXPECT_LE(violations, exact.freqs.size() / 8 + 2);
}

INSTANTIATE_TEST_SUITE_P(Sweep, EcmMergeSweep,
                         ::testing::Values(MergeSweep{2, 0.1},
                                           MergeSweep{4, 0.1},
                                           MergeSweep{8, 0.1},
                                           MergeSweep{4, 0.05},
                                           MergeSweep{4, 0.2}));

TEST(EcmMergeTest, MergedSelfJoinTracksUnionStream) {
  auto r = BuildMerged<ExponentialHistogram>(4, 0.1, 55);
  auto exact = ComputeExactRangeStats(r.all_events, r.now, 20000);
  double est = r.merged.InnerProductAt(r.merged, 20000, r.now).value();
  double denom = static_cast<double>(exact.l1) * static_cast<double>(exact.l1);
  EXPECT_LE(std::abs(est - exact.self_join) / denom, 0.5);
}

TEST(EcmMergeTest, MergedL1EqualsSumOfStreams) {
  auto r = BuildMerged<ExponentialHistogram>(3, 0.1, 77);
  EXPECT_EQ(r.merged.l1_lifetime(), r.all_events.size());
}

TEST(EcmMergeTest, RandomizedWaveMergeAccuracy) {
  auto r = BuildMerged<RandomizedWave>(4, 0.15, 33);
  auto exact = ComputeExactRangeStats(r.all_events, r.now, 20000);
  ASSERT_GT(exact.l1, 0u);
  // RW merges losslessly: same (eps, delta) guarantee as a single wave.
  double budget = 2.0 * 0.15 * static_cast<double>(exact.l1) + 2.0;
  size_t violations = 0;
  for (const auto& [key, count] : exact.freqs) {
    double est = r.merged.PointQueryAt(key, 20000, r.now);
    if (std::abs(est - static_cast<double>(count)) > budget) ++violations;
  }
  EXPECT_LE(violations, exact.freqs.size() / 6 + 2);
}

TEST(EcmMergeTest, ExactCounterMergeIsLossless) {
  auto r = BuildMerged<ExactWindow>(3, 0.1, 44);
  auto exact = ComputeExactRangeStats(r.all_events, r.now, 20000);
  // Only Count-Min collisions remain: estimates never under the truth.
  for (const auto& [key, count] : exact.freqs) {
    EXPECT_GE(r.merged.PointQueryAt(key, 20000, r.now) + 1e-9,
              static_cast<double>(count));
  }
}

TEST(EcmMergeTest, CountBasedMergeRejected) {
  auto cfg =
      EcmConfig::Create(0.1, 0.1, WindowMode::kCountBased, 1000, 3);
  ASSERT_TRUE(cfg.ok());
  EcmEh a(*cfg), b(*cfg);
  for (int i = 0; i < 100; ++i) {
    a.Add(1, 0);
    b.Add(2, 0);
  }
  auto m = EcmEh::Merge({&a, &b}, cfg->epsilon_sw);
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), StatusCode::kUnsupported);
  // The paper's Fig. 2 argument is cited in the message.
  EXPECT_NE(m.status().message().find("Fig. 2"), std::string::npos);
}

TEST(EcmMergeTest, IncompatibleSeedsRejected) {
  auto a = EcmEh::Create(0.1, 0.1, WindowMode::kTimeBased, 1000, 1);
  auto b = EcmEh::Create(0.1, 0.1, WindowMode::kTimeBased, 1000, 2);
  ASSERT_TRUE(a.ok() && b.ok());
  auto m = EcmEh::Merge({&*a, &*b}, 0.05);
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), StatusCode::kIncompatible);
}

TEST(EcmMergeTest, EmptyInputRejected) {
  auto m = EcmEh::Merge({}, 0.05);
  EXPECT_FALSE(m.ok());
}

TEST(EcmMergeTest, MergeOfEmptySketchesIsEmpty) {
  auto cfg = EcmConfig::Create(0.1, 0.1, WindowMode::kTimeBased, 1000, 9);
  ASSERT_TRUE(cfg.ok());
  EcmEh a(*cfg), b(*cfg);
  auto m = EcmEh::Merge({&a, &b}, cfg->epsilon_sw);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->PointQuery(42, 1000), 0.0);
}

TEST(EcmMergeTest, MergedConfigTracksErrorInflation) {
  auto cfg = EcmConfig::Create(0.1, 0.1, WindowMode::kTimeBased, 1000, 9);
  ASSERT_TRUE(cfg.ok());
  EcmEh a(*cfg), b(*cfg);
  for (Timestamp t = 1; t <= 100; ++t) {
    a.Add(1, t);
    b.Add(2, t);
  }
  auto m = EcmEh::Merge({&a, &b}, cfg->epsilon_sw);
  ASSERT_TRUE(m.ok());
  // Theorem 4: merged window error = eps + eps' + eps*eps' > leaf eps.
  EXPECT_GT(m->config().epsilon, cfg->epsilon);
}

TEST(EcmMergeTest, MergeIsAssociativeInDistribution) {
  // ((a ⊕ b) ⊕ c) and (a ⊕ (b ⊕ c)) answer queries within each other's
  // error bands (they are not bit-identical, but must agree statistically).
  auto cfg = EcmConfig::Create(0.1, 0.1, WindowMode::kTimeBased, kWindow, 21);
  ASSERT_TRUE(cfg.ok());
  EcmEh a(*cfg), b(*cfg), c(*cfg);
  Rng rng(4);
  Timestamp t = 1;
  for (int i = 0; i < 15000; ++i) {
    t += rng.Uniform(3);
    uint64_t key = rng.Uniform(100);
    switch (rng.Uniform(3)) {
      case 0: a.Add(key, t); break;
      case 1: b.Add(key, t); break;
      default: c.Add(key, t); break;
    }
  }
  a.AdvanceTo(t);
  b.AdvanceTo(t);
  c.AdvanceTo(t);
  double eps = cfg->epsilon_sw;
  auto ab = EcmEh::Merge({&a, &b}, eps);
  ASSERT_TRUE(ab.ok());
  auto ab_c = EcmEh::Merge({&*ab, &c}, eps);
  ASSERT_TRUE(ab_c.ok());
  auto bc = EcmEh::Merge({&b, &c}, eps);
  ASSERT_TRUE(bc.ok());
  auto a_bc = EcmEh::Merge({&a, &*bc}, eps);
  ASSERT_TRUE(a_bc.ok());
  for (uint64_t key = 0; key < 100; key += 7) {
    double x = ab_c->PointQueryAt(key, kWindow, t);
    double y = a_bc->PointQueryAt(key, kWindow, t);
    EXPECT_NEAR(x, y, std::max(x, y) * 0.3 + 3.0) << "key " << key;
  }
}

}  // namespace
}  // namespace ecm
