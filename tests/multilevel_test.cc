// Tests for multi-level (hierarchical) aggregation of exponential
// histograms (§5.1): the h-level error bound hε(1+ε)+ε, monotone error
// growth with height, and stability of repeated re-summarization.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/util/random.h"
#include "src/window/merge.h"

namespace ecm {
namespace {

constexpr uint64_t kWindow = 1 << 20;

struct Truth {
  std::vector<Timestamp> stamps;
  uint64_t Count(Timestamp now, uint64_t range) const {
    Timestamp boundary = WindowStart(now, range);
    uint64_t n = 0;
    for (Timestamp t : stamps) {
      if (t > boundary && t <= now) ++n;
    }
    return n;
  }
};

// Builds 2^h leaf histograms over an interleaved stream and merges them
// pairwise up h levels. Returns the root and the interleaved truth.
struct HierarchyResult {
  ExponentialHistogram root;
  Truth truth;
  Timestamp now;
};

HierarchyResult BuildHierarchy(int h, double eps, uint64_t seed) {
  int n = 1 << h;
  std::vector<ExponentialHistogram> level(
      n, ExponentialHistogram({eps, kWindow}));
  Truth truth;
  Rng rng(seed);
  Timestamp t = 1;
  for (int i = 0; i < 50000; ++i) {
    t += rng.Uniform(3);
    level[rng.Uniform(n)].Add(t);
    truth.stamps.push_back(t);
  }
  while (level.size() > 1) {
    std::vector<ExponentialHistogram> next;
    for (size_t i = 0; i + 1 < level.size(); i += 2) {
      auto m = MergeHistograms({&level[i], &level[i + 1]}, eps);
      EXPECT_TRUE(m.ok());
      next.push_back(std::move(*m));
    }
    level = std::move(next);
  }
  return {std::move(level[0]), std::move(truth), t};
}

class MultiLevelSweep : public ::testing::TestWithParam<int> {};

TEST_P(MultiLevelSweep, HLevelBoundHolds) {
  int h = GetParam();
  constexpr double kEps = 0.1;
  auto r = BuildHierarchy(h, kEps, 40 + h);
  // §5.1: err <= h*eps*(1+eps) + eps.
  double bound = h * kEps * (1 + kEps) + kEps;
  for (uint64_t range : {uint64_t{20000}, uint64_t{100000}}) {
    double est = r.root.Estimate(r.now, range);
    double tv = static_cast<double>(r.truth.Count(r.now, range));
    EXPECT_LE(std::abs(est - tv), bound * tv + 3.0)
        << "h=" << h << " range=" << range << " truth=" << tv
        << " est=" << est;
  }
}

INSTANTIATE_TEST_SUITE_P(Heights, MultiLevelSweep,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(MultiLevelTest, ObservedErrorFarBelowWorstCaseBound) {
  // The paper's empirical observation (§7.3): the actual error after
  // aggregation is a small fraction of the analytic bound.
  constexpr double kEps = 0.1;
  auto r = BuildHierarchy(5, kEps, 7);
  double est = r.root.Estimate(r.now, 100000);
  double tv = static_cast<double>(r.truth.Count(r.now, 100000));
  double observed = std::abs(est - tv) / tv;
  double bound = 5 * kEps * (1 + kEps) + kEps;
  EXPECT_LT(observed, bound / 3.0)
      << "observed " << observed << " vs bound " << bound;
}

TEST(MultiLevelTest, RepeatedSelfMergeDoesNotCollapse) {
  // Merging a histogram with an empty one h times re-summarizes it h
  // times; counts must stay within the compounded band, not drift to 0.
  ExponentialHistogram eh({0.1, kWindow});
  for (Timestamp t = 1; t <= 20000; ++t) eh.Add(t);
  ExponentialHistogram current = eh;
  for (int round = 0; round < 6; ++round) {
    ExponentialHistogram empty({0.1, kWindow});
    auto m = MergeHistograms({&current, &empty}, 0.1);
    ASSERT_TRUE(m.ok());
    current = std::move(*m);
  }
  double est = current.Estimate(20000, kWindow);
  EXPECT_NEAR(est, 20000.0, 20000.0 * 0.8);
}

TEST(MultiLevelTest, CalibrationFormulaRoundTrips) {
  // LeafEpsilonForTarget is exercised in aggregation_tree_test; here the
  // §5.1 algebra: plugging the calibrated leaf eps into the bound returns
  // the target for every (h, target) pair.
  for (int h = 1; h <= 12; ++h) {
    for (double target = 0.02; target < 0.5; target += 0.06) {
      double x = target;  // alias for clarity
      double leaf = (std::sqrt(1.0 + 2.0 * h + h * h + 4.0 * h * x) - 1.0 -
                     h) /
                    (2.0 * h);
      EXPECT_NEAR(h * leaf * (1 + leaf) + leaf, target, 1e-9);
    }
  }
}

}  // namespace
}  // namespace ecm
