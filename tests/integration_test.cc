// End-to-end integration tests: the paper's network-monitoring scenario
// (distributed DDoS detection over wc'98/snmp-like traces), serialization
// across the aggregation path, and cross-module consistency between the
// dyadic stack, plain sketches, and exact ground truth.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/core/dyadic.h"
#include "src/core/ecm_sketch.h"
#include "src/dist/aggregation_tree.h"
#include "src/dist/serialize.h"
#include "src/stream/snmp_like.h"
#include "src/stream/wc98_like.h"

namespace ecm {
namespace {

TEST(IntegrationTest, Wc98PipelineCentralizedVsDistributed) {
  // One centralized sketch vs 33 per-server sketches aggregated up a
  // tree: both must answer point queries consistently.
  Wc98Config wc;
  wc.num_events = 120000;
  auto events = GenerateWc98Like(wc);
  Timestamp now = events.back().ts;
  constexpr uint64_t kWindow = 1 << 20;

  auto cfg = EcmConfig::Create(0.1, 0.1, WindowMode::kTimeBased, kWindow, 1);
  ASSERT_TRUE(cfg.ok());
  EcmSketch<ExponentialHistogram> centralized(*cfg);
  std::vector<EcmSketch<ExponentialHistogram>> sites(
      33, EcmSketch<ExponentialHistogram>(*cfg));
  for (const auto& e : events) {
    centralized.Add(e.key, e.ts);
    sites[e.node].Add(e.key, e.ts);
  }
  for (auto& s : sites) s.AdvanceTo(now);
  auto out = AggregateTree(sites);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->height, 6);  // ceil(log2 33)

  auto exact = ComputeExactRangeStats(events, now, kWindow);
  // Hot pages: compare centralized, distributed, and truth.
  int checked = 0;
  for (const auto& [key, count] : exact.freqs) {
    if (count < exact.l1 / 200) continue;
    double c = centralized.PointQueryAt(key, kWindow, now);
    double d = out->root.PointQueryAt(key, kWindow, now);
    EXPECT_NEAR(c, static_cast<double>(count), 0.12 * exact.l1 + 2);
    EXPECT_NEAR(d, static_cast<double>(count), 0.3 * exact.l1 + 2);
    ++checked;
  }
  EXPECT_GT(checked, 3);
}

TEST(IntegrationTest, SnmpHeavyUserDetectionAcrossAps) {
  // The paper's motivating trigger: find users whose sliding-window
  // traffic exceeds a threshold, network-wide, from per-AP sketches.
  SnmpConfig sc;
  sc.num_events = 100000;
  sc.skew = 1.2;
  auto events = GenerateSnmpLike(sc);
  Timestamp now = events.back().ts;
  constexpr uint64_t kWindow = 1 << 20;

  auto cfg = EcmConfig::Create(0.05, 0.05, WindowMode::kTimeBased, kWindow, 2);
  ASSERT_TRUE(cfg.ok());
  std::vector<EcmSketch<ExponentialHistogram>> aps(
      535, EcmSketch<ExponentialHistogram>(*cfg));
  for (const auto& e : events) aps[e.node].Add(e.key, e.ts);
  for (auto& s : aps) s.AdvanceTo(now);
  auto out = AggregateTree(aps);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->height, 10);  // ceil(log2 535)

  auto exact = ComputeExactRangeStats(events, now, kWindow);
  uint64_t threshold = exact.l1 / 50;
  std::set<uint64_t> true_heavy;
  for (const auto& [key, count] : exact.freqs) {
    if (count >= threshold) true_heavy.insert(key);
  }
  ASSERT_FALSE(true_heavy.empty());
  // Every truly heavy user must be flagged by the aggregated sketch with
  // a slightly lowered bar (estimates carry +-eps*L1 slack).
  for (uint64_t user : true_heavy) {
    double est = out->root.PointQueryAt(user, kWindow, now);
    EXPECT_GE(est, static_cast<double>(threshold) * 0.5) << "user " << user;
  }
}

TEST(IntegrationTest, SerializedAggregationPath) {
  // Site -> serialize -> wire -> deserialize -> merge at parent: the
  // realistic deployment path must equal in-process aggregation.
  constexpr uint64_t kWindow = 100000;
  auto cfg = EcmConfig::Create(0.1, 0.1, WindowMode::kTimeBased, kWindow, 3);
  ASSERT_TRUE(cfg.ok());
  Wc98Config wc;
  wc.num_events = 30000;
  wc.num_servers = 4;
  auto events = GenerateWc98Like(wc);
  Timestamp now = events.back().ts;
  std::vector<EcmSketch<ExponentialHistogram>> sites(
      4, EcmSketch<ExponentialHistogram>(*cfg));
  for (const auto& e : events) sites[e.node].Add(e.key, e.ts);
  for (auto& s : sites) s.AdvanceTo(now);

  // In-process merge.
  auto direct = EcmEh::Merge({&sites[0], &sites[1], &sites[2], &sites[3]},
                             cfg->epsilon_sw);
  ASSERT_TRUE(direct.ok());

  // Wire path.
  std::vector<EcmSketch<ExponentialHistogram>> rehydrated;
  for (const auto& s : sites) {
    auto back = DeserializeSketch<ExponentialHistogram>(SerializeSketch(s));
    ASSERT_TRUE(back.ok());
    rehydrated.push_back(std::move(*back));
  }
  auto wire = EcmEh::Merge(
      {&rehydrated[0], &rehydrated[1], &rehydrated[2], &rehydrated[3]},
      cfg->epsilon_sw);
  ASSERT_TRUE(wire.ok());

  for (uint64_t key = 1; key < 200; key += 11) {
    EXPECT_EQ(direct->PointQueryAt(key, kWindow, now),
              wire->PointQueryAt(key, kWindow, now))
        << "key " << key;
  }
}

TEST(IntegrationTest, DyadicAndPlainSketchAgree) {
  // The level-0 sketch of the dyadic stack must answer point queries like
  // a standalone sketch with the same config.
  constexpr uint64_t kWindow = 100000;
  auto dy = DyadicEcm<ExponentialHistogram>::Create(
      10, 0.05, 0.05, WindowMode::kTimeBased, kWindow, 4);
  ASSERT_TRUE(dy.ok());
  Wc98Config wc;
  wc.num_events = 20000;
  wc.domain = 1000;
  auto events = GenerateWc98Like(wc);
  Timestamp now = events.back().ts;
  for (const auto& e : events) dy->Add(e.key, e.ts);

  auto exact = ComputeExactRangeStats(events, now, kWindow);
  for (const auto& [key, count] : exact.freqs) {
    if (count < 200) continue;
    double plain = dy->level(0).PointQueryAt(key, kWindow, now);
    double range1 = dy->RangeQuery(key, key, kWindow);
    EXPECT_EQ(plain, range1);
  }
}

TEST(IntegrationTest, CountBasedCentralizedPipeline) {
  // Count-based windows work end-to-end in a centralized deployment (the
  // only deployment they support, per Fig. 2).
  auto cfg =
      EcmConfig::Create(0.05, 0.05, WindowMode::kCountBased, 5000, 5);
  ASSERT_TRUE(cfg.ok());
  EcmSketch<ExponentialHistogram> sketch(*cfg);
  Wc98Config wc;
  wc.num_events = 20000;
  wc.domain = 100;
  auto events = GenerateWc98Like(wc);
  for (const auto& e : events) sketch.Add(e.key, e.ts);

  // Ground truth over the last 5000 arrivals.
  std::map<uint64_t, uint64_t> truth;
  for (size_t i = events.size() - 5000; i < events.size(); ++i) {
    ++truth[events[i].key];
  }
  int violations = 0, checks = 0;
  for (const auto& [key, count] : truth) {
    double est = sketch.PointQuery(key, 5000);
    if (std::abs(est - static_cast<double>(count)) > 0.06 * 5000 + 2) {
      ++violations;
    }
    ++checks;
  }
  EXPECT_LE(violations, checks / 8 + 1);
}

TEST(IntegrationTest, MemoryHierarchyEhVsRw) {
  // End-to-end memory story on a realistic workload (paper Fig. 4): EH
  // sketches are orders of magnitude smaller than RW at equal epsilon.
  constexpr uint64_t kWindow = 1 << 20;
  auto eh = EcmEh::Create(0.1, 0.1, WindowMode::kTimeBased, kWindow, 6);
  auto rw = EcmRw::Create(0.1, 0.1, WindowMode::kTimeBased, kWindow, 6,
                          OptimizeFor::kPointQueries, 1 << 17);
  ASSERT_TRUE(eh.ok() && rw.ok());
  Wc98Config wc;
  wc.num_events = 50000;
  auto events = GenerateWc98Like(wc);
  for (const auto& e : events) {
    eh->Add(e.key, e.ts);
    rw->Add(e.key, e.ts);
  }
  EXPECT_GT(rw->MemoryBytes(), eh->MemoryBytes() * 10);
}

}  // namespace
}  // namespace ecm
