// Tests for the window-boundary vocabulary shared by all synopses: the
// (now - N, now] convention, saturation at the epoch, and mode naming.

#include "src/window/window_spec.h"

#include <gtest/gtest.h>

namespace ecm {
namespace {

TEST(WindowSpecTest, InWindowBoundaries) {
  // Window of length 10 ending at 100 covers (90, 100].
  EXPECT_TRUE(InWindow(100, 100, 10));
  EXPECT_TRUE(InWindow(91, 100, 10));
  EXPECT_FALSE(InWindow(90, 100, 10));   // boundary itself is out
  EXPECT_FALSE(InWindow(101, 100, 10));  // the future is out
}

TEST(WindowSpecTest, WindowStartSaturates) {
  EXPECT_EQ(WindowStart(100, 10), 90u);
  EXPECT_EQ(WindowStart(5, 10), 0u);
  EXPECT_EQ(WindowStart(10, 10), 0u);
  EXPECT_EQ(WindowStart(0, 10), 0u);
}

TEST(WindowSpecTest, InWindowNearEpoch) {
  // When the window reaches back past t=0, everything from t=1 counts.
  EXPECT_TRUE(InWindow(1, 5, 10));
  EXPECT_TRUE(InWindow(5, 5, 10));
  EXPECT_FALSE(InWindow(6, 5, 10));
}

TEST(WindowSpecTest, HugeLengthsDoNotOverflow) {
  Timestamp now = ~0ULL - 5;
  EXPECT_TRUE(InWindow(now, now, ~0ULL));
  EXPECT_TRUE(InWindow(1, now, ~0ULL));
  EXPECT_EQ(WindowStart(now, ~0ULL), 0u);
}

TEST(WindowSpecTest, ModeNames) {
  EXPECT_STREQ(WindowModeToString(WindowMode::kTimeBased), "time-based");
  EXPECT_STREQ(WindowModeToString(WindowMode::kCountBased), "count-based");
}

}  // namespace
}  // namespace ecm
