// Tests for the balanced-binary-tree aggregation substrate: tree shape,
// root correctness vs the union stream, network accounting, and the
// §5.1 leaf-epsilon calibration.

#include "src/dist/aggregation_tree.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/stream/generators.h"

namespace ecm {
namespace {

TEST(TreeShapeTest, Heights) {
  EXPECT_EQ(TreeHeight(1), 0);
  EXPECT_EQ(TreeHeight(2), 1);
  EXPECT_EQ(TreeHeight(3), 2);
  EXPECT_EQ(TreeHeight(4), 2);
  EXPECT_EQ(TreeHeight(33), 6);
  EXPECT_EQ(TreeHeight(256), 8);
  EXPECT_EQ(TreeHeight(535), 10);
}

TEST(TreeShapeTest, LeafEpsilonInvertsMultiLevelBound) {
  for (int h : {1, 3, 6, 10}) {
    for (double target : {0.05, 0.1, 0.3}) {
      double leaf = LeafEpsilonForTarget(target, h);
      EXPECT_GT(leaf, 0.0);
      EXPECT_LT(leaf, target);
      EXPECT_NEAR(MultiLevelErrorBound(leaf, h), target, 1e-9);
    }
  }
}

TEST(TreeShapeTest, HeightZeroPassesThrough) {
  EXPECT_DOUBLE_EQ(LeafEpsilonForTarget(0.1, 0), 0.1);
  EXPECT_DOUBLE_EQ(MultiLevelErrorBound(0.1, 0), 0.1);
}

class AggregateTreeTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kWindow = 100000;

  struct Setup {
    std::vector<EcmSketch<ExponentialHistogram>> leaves;
    std::vector<StreamEvent> events;
    Timestamp now;
  };

  Setup Build(int n, double epsilon, uint64_t seed) {
    auto cfg = EcmConfig::Create(epsilon, 0.1, WindowMode::kTimeBased,
                                 kWindow, seed);
    EXPECT_TRUE(cfg.ok());
    ZipfStream::Config zc;
    zc.domain = 2000;
    zc.skew = 1.0;
    zc.num_nodes = n;
    zc.seed = seed;
    ZipfStream stream(zc);
    Setup s;
    s.events = stream.Take(30000);
    s.now = s.events.back().ts;
    s.leaves.assign(n, EcmSketch<ExponentialHistogram>(*cfg));
    for (const auto& e : s.events) s.leaves[e.node].Add(e.key, e.ts);
    for (auto& leaf : s.leaves) leaf.AdvanceTo(s.now);
    return s;
  }
};

TEST_F(AggregateTreeTest, RejectsEmpty) {
  std::vector<EcmSketch<ExponentialHistogram>> empty;
  EXPECT_FALSE(AggregateTree(empty).ok());
}

TEST_F(AggregateTreeTest, SingleLeafIsIdentityWithNoTraffic) {
  auto s = Build(1, 0.1, 3);
  auto out = AggregateTree(s.leaves);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->height, 0);
  EXPECT_EQ(out->network.bytes, 0u);
  EXPECT_EQ(out->root.PointQueryAt(1, kWindow, s.now),
            s.leaves[0].PointQueryAt(1, kWindow, s.now));
}

TEST_F(AggregateTreeTest, RootApproximatesUnionStream) {
  for (int n : {2, 5, 8, 16}) {
    auto s = Build(n, 0.1, 100 + n);
    auto out = AggregateTree(s.leaves);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out->height, TreeHeight(n));
    auto exact = ComputeExactRangeStats(s.events, s.now, 20000);
    // Multi-level bound with h levels; generous test band of h*eps + eps.
    double band =
        MultiLevelErrorBound(0.1, out->height) * static_cast<double>(exact.l1) +
        3.0;
    size_t violations = 0;
    for (const auto& [key, count] : exact.freqs) {
      double est = out->root.PointQueryAt(key, 20000, s.now);
      if (std::abs(est - static_cast<double>(count)) > band) ++violations;
    }
    EXPECT_LE(violations, exact.freqs.size() / 8 + 2) << "n=" << n;
  }
}

TEST_F(AggregateTreeTest, NetworkAccountingMatchesEdges) {
  auto s = Build(8, 0.1, 9);
  auto out = AggregateTree(s.leaves);
  ASSERT_TRUE(out.ok());
  // Full binary tree over 8 leaves: 8 + 4 + 2 = 14 transfers.
  EXPECT_EQ(out->network.messages, 14u);
  EXPECT_GT(out->network.bytes, 0u);
}

TEST_F(AggregateTreeTest, OddLeafCountCarriesSurvivor) {
  auto s = Build(5, 0.1, 10);
  auto out = AggregateTree(s.leaves);
  ASSERT_TRUE(out.ok());
  // 5 -> 2 merges (4 msgs) + carry; 3 -> 1 merge (2 msgs) + carry;
  // 2 -> 1 merge (2 msgs). Total 8 messages, height 3.
  EXPECT_EQ(out->height, 3);
  EXPECT_EQ(out->network.messages, 8u);
  EXPECT_EQ(out->root.l1_lifetime(), s.events.size());
}

TEST_F(AggregateTreeTest, TransferVolumeGrowsWithLeafCount) {
  auto s4 = Build(4, 0.1, 11);
  auto s16 = Build(16, 0.1, 11);
  auto o4 = AggregateTree(s4.leaves);
  auto o16 = AggregateTree(s16.leaves);
  ASSERT_TRUE(o4.ok() && o16.ok());
  EXPECT_GT(o16->network.bytes, o4->network.bytes);
}

TEST_F(AggregateTreeTest, CalibratedLeavesMeetTargetAtRoot) {
  // Configure leaves with LeafEpsilonForTarget so the root meets the
  // target despite 3 merge levels.
  constexpr double kTarget = 0.15;
  int n = 8;
  double leaf_eps = LeafEpsilonForTarget(kTarget, TreeHeight(n));
  auto cfg =
      EcmConfig::Create(leaf_eps, 0.1, WindowMode::kTimeBased, kWindow, 5);
  ASSERT_TRUE(cfg.ok());
  ZipfStream::Config zc;
  zc.domain = 1000;
  zc.skew = 1.0;
  zc.num_nodes = n;
  zc.seed = 6;
  ZipfStream stream(zc);
  auto events = stream.Take(30000);
  Timestamp now = events.back().ts;
  std::vector<EcmSketch<ExponentialHistogram>> leaves(
      n, EcmSketch<ExponentialHistogram>(*cfg));
  for (const auto& e : events) leaves[e.node].Add(e.key, e.ts);
  for (auto& leaf : leaves) leaf.AdvanceTo(now);
  auto out = AggregateTree(leaves, cfg->epsilon_sw);
  ASSERT_TRUE(out.ok());

  auto exact = ComputeExactRangeStats(events, now, 20000);
  double band = kTarget * static_cast<double>(exact.l1) +
                cfg->epsilon_cm * static_cast<double>(exact.l1) + 3.0;
  size_t violations = 0;
  for (const auto& [key, count] : exact.freqs) {
    double est = out->root.PointQueryAt(key, 20000, now);
    if (std::abs(est - static_cast<double>(count)) > band) ++violations;
  }
  EXPECT_LE(violations, exact.freqs.size() / 8 + 2);
}

TEST_F(AggregateTreeTest, RandomizedWavesAggregateThroughTree) {
  constexpr int n = 4;
  auto cfg = EcmConfig::Create(0.15, 0.1, WindowMode::kTimeBased, kWindow, 8,
                               OptimizeFor::kPointQueries,
                               CounterFamily::kRandomized, 1 << 16);
  ASSERT_TRUE(cfg.ok());
  ZipfStream::Config zc;
  zc.domain = 500;
  zc.skew = 1.0;
  zc.num_nodes = n;
  zc.seed = 12;
  ZipfStream stream(zc);
  auto events = stream.Take(20000);
  Timestamp now = events.back().ts;
  std::vector<EcmSketch<RandomizedWave>> leaves(
      n, EcmSketch<RandomizedWave>(*cfg));
  for (const auto& e : events) leaves[e.node].Add(e.key, e.ts);
  auto out = AggregateTree(leaves);
  ASSERT_TRUE(out.ok()) << out.status();
  auto exact = ComputeExactRangeStats(events, now, 20000);
  double band = 2.5 * 0.15 * static_cast<double>(exact.l1) + 3.0;
  size_t violations = 0;
  for (const auto& [key, count] : exact.freqs) {
    double est = out->root.PointQueryAt(key, 20000, now);
    if (std::abs(est - static_cast<double>(count)) > band) ++violations;
  }
  EXPECT_LE(violations, exact.freqs.size() / 6 + 2);
}

}  // namespace
}  // namespace ecm
