// Tests for the dyadic ECM stack (§6.1): dyadic decomposition, heavy
// hitters with the Theorem-5 completeness/soundness directions, range
// queries, and quantiles — all over sliding windows.

#include "src/core/dyadic.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/stream/generators.h"
#include "src/util/random.h"

namespace ecm {
namespace {

TEST(DyadicDecomposeTest, SingleKey) {
  auto ranges = DyadicDecompose(5, 5, 8);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].level, 0);
  EXPECT_EQ(ranges[0].prefix, 5u);
}

TEST(DyadicDecomposeTest, AlignedBlock) {
  auto ranges = DyadicDecompose(8, 15, 8);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].level, 3);
  EXPECT_EQ(ranges[0].prefix, 1u);
}

TEST(DyadicDecomposeTest, FullDomainUsesTopLevelPair) {
  auto ranges = DyadicDecompose(0, 255, 8);
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges[0].level, 7);
  EXPECT_EQ(ranges[1].level, 7);
}

TEST(DyadicDecomposeTest, CoversExactlyOnce) {
  // Property: decomposition partitions [lo, hi].
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    uint64_t lo = rng.Uniform(1000);
    uint64_t hi = std::min<uint64_t>(lo + rng.Uniform(1000), 1023);
    auto ranges = DyadicDecompose(lo, hi, 10);
    std::set<uint64_t> covered;
    for (const auto& r : ranges) {
      uint64_t start = r.prefix << r.level;
      for (uint64_t k = start; k < start + (1ULL << r.level); ++k) {
        EXPECT_TRUE(covered.insert(k).second) << "key covered twice: " << k;
      }
    }
    EXPECT_EQ(covered.size(), hi - lo + 1);
    EXPECT_EQ(*covered.begin(), lo);
    EXPECT_EQ(*covered.rbegin(), hi);
  }
}

TEST(DyadicDecomposeTest, EmptyOnInvertedRange) {
  EXPECT_TRUE(DyadicDecompose(10, 5, 8).empty());
}

TEST(DyadicDecomposeTest, ClampsToDomain) {
  auto ranges = DyadicDecompose(250, 10000, 8);
  uint64_t total = 0;
  for (const auto& r : ranges) total += 1ULL << r.level;
  EXPECT_EQ(total, 6u);  // 250..255
}

class DyadicEcmTest : public ::testing::Test {
 protected:
  static constexpr int kDomainBits = 12;  // 4096 keys
  static constexpr uint64_t kWindow = 100000;

  DyadicEcm<ExponentialHistogram> Build(double epsilon, uint64_t seed) {
    auto d = DyadicEcm<ExponentialHistogram>::Create(
        kDomainBits, epsilon, 0.05, WindowMode::kTimeBased, kWindow, seed);
    EXPECT_TRUE(d.ok());
    return std::move(*d);
  }
};

TEST_F(DyadicEcmTest, RangeQueryMatchesExactCounts) {
  auto dyadic = Build(0.05, 1);
  ZipfStream::Config zc;
  zc.domain = 4000;
  zc.skew = 0.9;
  zc.seed = 5;
  ZipfStream stream(zc);
  auto events = stream.Take(30000);
  for (const auto& e : events) dyadic.Add(e.key, e.ts);
  Timestamp now = events.back().ts;

  auto exact = ComputeExactRangeStats(events, now, 20000);
  auto count_in = [&](uint64_t lo, uint64_t hi) {
    uint64_t c = 0;
    for (const auto& [k, v] : exact.freqs) {
      if (k >= lo && k <= hi) c += v;
    }
    return static_cast<double>(c);
  };
  for (auto [lo, hi] : std::vector<std::pair<uint64_t, uint64_t>>{
           {0, 10}, {1, 1}, {100, 900}, {0, 4095}, {2000, 2300}}) {
    double est = dyadic.RangeQuery(lo, hi, 20000);
    double truth = count_in(lo, hi);
    // Dyadic sums accumulate per-range error: generous band.
    EXPECT_NEAR(est, truth, 0.15 * exact.l1 + 3.0)
        << "range [" << lo << "," << hi << "]";
  }
}

TEST_F(DyadicEcmTest, HeavyHittersFindAllTrueHitters) {
  auto dyadic = Build(0.02, 2);
  // Planted hitters: keys 3, 700, 2049 get 15% each; the rest uniform.
  Rng rng(6);
  Timestamp t = 1;
  std::vector<StreamEvent> events;
  for (int i = 0; i < 30000; ++i) {
    t += rng.Uniform(2);
    uint64_t key;
    double u = rng.NextDouble();
    if (u < 0.15) {
      key = 3;
    } else if (u < 0.30) {
      key = 700;
    } else if (u < 0.45) {
      key = 2049;
    } else {
      key = rng.Uniform(4096);
    }
    dyadic.Add(key, t);
    events.push_back({t, key, 0});
  }
  auto hitters = dyadic.HeavyHitters(/*phi_ratio=*/0.1, /*range=*/kWindow);
  std::set<uint64_t> found;
  for (const auto& h : hitters) found.insert(h.key);
  // Completeness (Theorem 5): every key above (phi+eps)||a|| is reported.
  EXPECT_TRUE(found.count(3));
  EXPECT_TRUE(found.count(700));
  EXPECT_TRUE(found.count(2049));
  // Soundness: nothing below phi*||a|| (w.h.p.); uniform keys have ~0.02%.
  auto exact = ComputeExactRangeStats(events, t, kWindow);
  for (uint64_t k : found) {
    uint64_t truth = 0;
    for (const auto& [key, c] : exact.freqs) {
      if (key == k) truth = c;
    }
    EXPECT_GE(static_cast<double>(truth), 0.08 * exact.l1) << "key " << k;
  }
}

TEST_F(DyadicEcmTest, HeavyHittersRespectWindow) {
  auto dyadic = Build(0.02, 3);
  // Key 11 is hot early, key 22 hot late; the window query must surface
  // only the late one.
  Timestamp t = 1;
  for (int i = 0; i < 5000; ++i) dyadic.Add(11, t++);
  for (int i = 0; i < 5000; ++i) dyadic.Add(22, t++);
  auto hitters = dyadic.HeavyHittersAbsolute(/*threshold=*/2000,
                                             /*range=*/4000);
  std::set<uint64_t> found;
  for (const auto& h : hitters) found.insert(h.key);
  EXPECT_TRUE(found.count(22));
  EXPECT_FALSE(found.count(11));
}

TEST_F(DyadicEcmTest, QuantilesOnUniformKeys) {
  auto dyadic = Build(0.02, 4);
  // Uniform keys over [0, 4096): the q-quantile should be ~q*4096.
  Rng rng(9);
  Timestamp t = 1;
  for (int i = 0; i < 40000; ++i) {
    t += 1;
    dyadic.Add(rng.Uniform(4096), t);
  }
  for (double q : {0.25, 0.5, 0.9}) {
    uint64_t est = dyadic.Quantile(q, kWindow);
    EXPECT_NEAR(static_cast<double>(est), q * 4096.0, 4096.0 * 0.08)
        << "quantile " << q;
  }
}

TEST_F(DyadicEcmTest, QuantileOnPointMass) {
  auto dyadic = Build(0.05, 5);
  for (Timestamp t = 1; t <= 10000; ++t) dyadic.Add(1234, t);
  EXPECT_EQ(dyadic.Quantile(0.5, kWindow), 1234u);
}

TEST_F(DyadicEcmTest, MemoryScalesWithDomainBits) {
  auto small = DyadicEcm<ExponentialHistogram>::Create(
      8, 0.1, 0.1, WindowMode::kTimeBased, 1000, 1);
  auto large = DyadicEcm<ExponentialHistogram>::Create(
      16, 0.1, 0.1, WindowMode::kTimeBased, 1000, 1);
  ASSERT_TRUE(small.ok() && large.ok());
  EXPECT_GT(large->MemoryBytes(), small->MemoryBytes());
  EXPECT_LT(large->MemoryBytes(), small->MemoryBytes() * 3);
}

TEST(DyadicEcmCreateTest, RejectsBadDomainBits) {
  auto d = DyadicEcm<ExponentialHistogram>::Create(
      0, 0.1, 0.1, WindowMode::kTimeBased, 1000, 1);
  EXPECT_FALSE(d.ok());
  auto d2 = DyadicEcm<ExponentialHistogram>::Create(
      64, 0.1, 0.1, WindowMode::kTimeBased, 1000, 1);
  EXPECT_FALSE(d2.ok());
}

}  // namespace
}  // namespace ecm
