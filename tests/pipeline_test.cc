// Full-pipeline integration: jittery distributed feeds -> per-site
// reorder buffers -> per-site engines -> scheduled propagation to a
// coordinator -> global queries. Exercises every subsystem added on top
// of the paper's core in one realistic deployment shape.

#include <gtest/gtest.h>

#include "src/dist/periodic.h"
#include "src/engine/continuous.h"
#include "src/stream/reorder.h"
#include "src/stream/wc98_like.h"

namespace ecm {
namespace {

TEST(PipelineTest, JitteryFeedsThroughEnginesAndCoordinator) {
  constexpr uint64_t kWindow = 50'000;
  constexpr int kSites = 4;
  auto cfg = EcmConfig::Create(0.05, 0.05, WindowMode::kTimeBased, kWindow,
                               2025);
  ASSERT_TRUE(cfg.ok());

  // Workload: wc98-like, sharded over 4 sites, shuffled by network jitter.
  Wc98Config wc;
  wc.num_events = 60'000;
  wc.num_servers = kSites;
  auto ordered = GenerateWc98Like(wc);
  auto jittered = ShuffleWithBoundedDelay(ordered, /*max_shift=*/300, 5);

  // Per-site: reorder buffer -> engine (local alerting) and mirror feed
  // into the propagation coordinator.
  PeriodicAggregator::Config pcfg;
  pcfg.period = 5'000;
  PeriodicAggregator coordinator(kSites, *cfg, pcfg);

  StreamEngine::Options opts;
  opts.sketch = *cfg;
  std::vector<StreamEngine> engines;
  engines.reserve(kSites);
  for (int i = 0; i < kSites; ++i) engines.emplace_back(opts);
  std::vector<int> local_alerts(kSites, 0);
  for (int i = 0; i < kSites; ++i) {
    engines[i].WatchPoint(
        /*key=*/1, kWindow, /*threshold=*/200.0,
        [&local_alerts, i](const ThresholdAlert&) { ++local_alerts[i]; });
  }

  std::vector<std::unique_ptr<ReorderBuffer>> buffers;
  for (int i = 0; i < kSites; ++i) {
    buffers.push_back(std::make_unique<ReorderBuffer>(
        ReorderBuffer::Config{300, ReorderBuffer::LatePolicy::kClampForward},
        [&, i](const StreamEvent& e) {
          engines[i].Ingest(e.key, e.ts);
          coordinator.Process(i, e.key, e.ts);
        }));
  }
  for (const auto& e : jittered) buffers[e.node]->Push(e);
  for (auto& b : buffers) b->Flush();

  // Every event made it through, in order, to both consumers.
  uint64_t engine_total = 0;
  for (const auto& eng : engines) engine_total += eng.stats().arrivals;
  EXPECT_EQ(engine_total, ordered.size());
  EXPECT_EQ(coordinator.stats().updates, ordered.size());
  for (const auto& b : buffers) EXPECT_EQ(b->dropped_events(), 0u);

  // Coordinator's merged view vs exact ground truth on the hot keys.
  ASSERT_TRUE(coordinator.SyncAll().ok());
  Timestamp now = coordinator.clock();
  auto exact = ComputeExactRangeStats(ordered, now, kWindow);
  int checked = 0;
  for (const auto& [key, count] : exact.freqs) {
    if (count < exact.l1 / 100) continue;
    auto est = coordinator.GlobalPointQuery(key, kWindow);
    ASSERT_TRUE(est.ok());
    EXPECT_NEAR(*est, static_cast<double>(count), 0.2 * exact.l1 + 3.0)
        << "key " << key;
    ++checked;
  }
  EXPECT_GT(checked, 2);

  // Propagation stayed cheap: far fewer pushes than updates.
  EXPECT_LT(coordinator.stats().pushes, ordered.size() / 100);
}

TEST(PipelineTest, LocalAndGlobalViewsAgreeOnHotKey) {
  constexpr uint64_t kWindow = 20'000;
  auto cfg = EcmConfig::Create(0.05, 0.05, WindowMode::kTimeBased, kWindow,
                               77);
  ASSERT_TRUE(cfg.ok());
  PeriodicAggregator coordinator(2, *cfg, {});
  // All traffic for key 9 goes to site 0; site 1 sees other keys.
  Timestamp t = 1;
  for (int i = 0; i < 3'000; ++i) {
    coordinator.Process(0, 9, t);
    coordinator.Process(1, 1000 + (i % 50), t);
    ++t;
  }
  ASSERT_TRUE(coordinator.SyncAll().ok());
  auto global = coordinator.GlobalPointQuery(9, kWindow);
  ASSERT_TRUE(global.ok());
  double local = coordinator.site_sketch(0).PointQuery(9, kWindow);
  // The global estimate must match the only contributing site.
  EXPECT_NEAR(*global, local, local * 0.15 + 3.0);
}

}  // namespace
}  // namespace ecm
