// Sliding-window heavy hitters & quantiles — the §6.1 dyadic stack on the
// wc'98-like workload: "which pages are hot over the last 30 seconds, and
// how is the request mass distributed over the key space?"
//
//   $ ./example_heavy_hitters_dashboard

#include <cinttypes>
#include <cstdio>

#include "src/core/dyadic.h"
#include "src/stream/wc98_like.h"

using namespace ecm;

int main() {
  constexpr uint64_t kWindowMs = 30'000;
  constexpr int kDomainBits = 17;  // pages are ids < 131072

  auto dashboard = DyadicEcm<ExponentialHistogram>::Create(
      kDomainBits, /*epsilon=*/0.01, /*delta=*/0.05, WindowMode::kTimeBased,
      kWindowMs, /*seed=*/42);
  if (!dashboard.ok()) {
    std::fprintf(stderr, "%s\n", dashboard.status().ToString().c_str());
    return 1;
  }

  Wc98Config wc;
  wc.num_events = 300'000;
  wc.events_per_ms = 3.0;
  auto events = GenerateWc98Like(wc);
  std::printf("replaying %zu requests (~%.0f s of traffic)...\n\n",
              events.size(), events.back().ts / 1000.0);

  Timestamp next_report = 30'000;
  for (const auto& e : events) {
    dashboard->Add(e.key, e.ts);
    if (e.ts >= next_report) {
      next_report += 30'000;
      double l1 = dashboard->EstimateL1(kWindowMs);
      auto hot = dashboard->HeavyHitters(/*phi_ratio=*/0.02, kWindowMs);
      std::printf("t=%5.0fs  ~%.0f req in window, %zu pages above 2%%:\n",
                  e.ts / 1000.0, l1, hot.size());
      for (const auto& h : hot) {
        std::printf("    page %-7" PRIu64 " ~%6.0f hits (%.1f%%)\n", h.key,
                    h.estimate, 100.0 * h.estimate / l1);
      }
      std::printf(
          "    key-space quantiles (25/50/90%%): %" PRIu64 " / %" PRIu64
          " / %" PRIu64 "   range [0,1000): ~%.0f hits\n",
          dashboard->Quantile(0.25, kWindowMs),
          dashboard->Quantile(0.5, kWindowMs),
          dashboard->Quantile(0.9, kWindowMs),
          dashboard->RangeQuery(0, 999, kWindowMs));
    }
  }
  std::printf("\ndashboard memory: %.1f KB for a %d-bit key space\n",
              dashboard->MemoryBytes() / 1024.0, kDomainBits);
  return 0;
}
