// Multi-process distributed runtime demo (§5–§6 deployment path, for
// real): one coordinator process and N site processes exchanging
// serialized sketches over TCP through dist/socket_transport.
//
//   $ ./example_multiproc_runtime          # 4 sites, clean run
//   $ ./example_multiproc_runtime --sites 4 --events 80000
//         --kill-site 2 --kill-after 2     # fault injection
//
// The coordinator binds a loopback port, fork/execs itself N times with
// `--role site --node k`, and each site process replays its shard of a
// deterministic SNMP-like trace, pushing full serialized snapshots every
// --sync-every arrivals plus idle heartbeats. The coordinator tracks
// per-site liveness (heartbeat timeout + EOF crash detection) and rejoin
// epochs.
//
// Fault injection: --kill-site k SIGKILLs site k after it has shipped
// --kill-after snapshots, then respawns it with epoch 2. The restarted
// process replays its whole shard from the trace (catch-up) and ships a
// full snapshot on reconnect (resync), so its final state is identical
// to an uninterrupted run.
//
// Self-validation (the CI gate): the coordinator also runs the same
// trace through an in-process loopback Coordinator<EH> and requires the
// socket run's merged estimates to match the loopback run's on a fixed
// query set. Exit code 0 iff everything (including the expected
// down/rejoin transitions) checks out.

#include <signal.h>
#include <sys/prctl.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/core/ecm_sketch.h"
#include "src/dist/compress.h"
#include "src/dist/runtime.h"
#include "src/dist/serialize.h"
#include "src/dist/socket_transport.h"
#include "src/stream/snmp_like.h"

using namespace ecm;

namespace {

struct Flags {
  std::string role = "coordinator";
  int sites = 4;
  uint64_t events = 60'000;
  uint64_t window = 1u << 15;
  uint64_t sync_every = 2'500;
  int kill_site = -1;     // -1 disables fault injection
  uint64_t kill_after = 2;  // snapshots received before the SIGKILL
  uint64_t push_pause_ms = 50;  // replay pacing after each snapshot push
  uint64_t seed = 7;
  int node = -1;   // site role: which shard
  int port = 0;    // site role: coordinator port
  uint32_t epoch = 1;
  bool compress = false;  // ship delta/RLZ frames instead of full snapshots
};

Flags ParseFlags(int argc, char** argv) {
  Flags f;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (a == "--role") {
      f.role = next();
    } else if (a == "--sites") {
      f.sites = std::atoi(next());
    } else if (a == "--events") {
      f.events = std::strtoull(next(), nullptr, 10);
    } else if (a == "--window") {
      f.window = std::strtoull(next(), nullptr, 10);
    } else if (a == "--sync-every") {
      f.sync_every = std::strtoull(next(), nullptr, 10);
    } else if (a == "--kill-site") {
      f.kill_site = std::atoi(next());
    } else if (a == "--kill-after") {
      f.kill_after = std::strtoull(next(), nullptr, 10);
    } else if (a == "--push-pause-ms") {
      f.push_pause_ms = std::strtoull(next(), nullptr, 10);
    } else if (a == "--seed") {
      f.seed = std::strtoull(next(), nullptr, 10);
    } else if (a == "--node") {
      f.node = std::atoi(next());
    } else if (a == "--port") {
      f.port = std::atoi(next());
    } else if (a == "--epoch") {
      f.epoch = static_cast<uint32_t>(std::atoi(next()));
    } else if (a == "--compress") {
      f.compress = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", a.c_str());
      std::exit(2);
    }
  }
  return f;
}

/// The shared deterministic trace: every process regenerates it bit-
/// identically from the seed, so a restarted site can catch up by
/// replaying its shard from the beginning.
std::vector<StreamEvent> MakeTrace(const Flags& f) {
  SnmpConfig sc;
  sc.num_events = f.events;
  sc.num_aps = static_cast<uint32_t>(f.sites);
  sc.seed = f.seed;
  return GenerateSnmpLike(sc);
}

EcmConfig MakeSketchConfig(const Flags& f) {
  auto cfg = EcmConfig::Create(/*epsilon=*/0.1, /*delta=*/0.1,
                               WindowMode::kTimeBased, f.window,
                               /*seed=*/f.seed);
  if (!cfg.ok()) {
    std::fprintf(stderr, "bad sketch config: %s\n",
                 cfg.status().ToString().c_str());
    std::exit(2);
  }
  return *cfg;
}

// ---------------------------------------------------------------------------
// Site process
// ---------------------------------------------------------------------------

int SiteMain(const Flags& f) {
  // Die with the coordinator: orphaned site processes must not outlive a
  // crashed/timed-out demo run in CI.
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);

  const EcmConfig cfg = MakeSketchConfig(f);
  std::vector<StreamEvent> shard;
  for (const StreamEvent& e : MakeTrace(f)) {
    if (static_cast<int>(e.node) == f.node) shard.push_back(e);
  }

  SocketTransport::Options topt;
  topt.heartbeat_period_ms = 100;
  topt.epoch = f.epoch;
  // Link outages heal inside the transport (backoff dials + fresh-epoch
  // re-hello + retransmit); a push only fails once that machinery has
  // exhausted its attempts, which is terminal for the site.
  topt.reconnect_attempts = 16;
  auto transport = SocketTransport::Connect("127.0.0.1", f.port, f.node, topt);
  if (!transport.ok()) {
    std::fprintf(stderr, "site %d: %s\n", f.node,
                 transport.status().ToString().c_str());
    return 1;
  }

  Site<ExponentialHistogram> site(f.node, cfg);
  // Compressed mode: one sender per (site, coordinator) channel, keyed on
  // the transport's rejoin epoch — polled before every ship, so after an
  // in-transport reconnect the sender re-bases with a full snapshot under
  // the new epoch and a delta encoded against pre-crash state can never
  // poison the coordinator's receiver.
  CompressionOptions copts;
  copts.mode = CompressionMode::kAuto;
  copts.epoch = f.epoch;
  SketchSender<ExponentialHistogram> sender(copts);
  uint32_t channel_epoch = (*transport)->epoch();
  auto push_snapshot = [&]() -> Status {
    if (!f.compress) {
      return (*transport)
          ->SendPayload(FrameType::kSketch, kCoordinatorNode,
                        SerializeSketch(site.sketch()));
    }
    const uint32_t epoch = (*transport)->epoch();
    if (epoch != channel_epoch) {
      channel_epoch = epoch;
      sender.set_epoch(epoch);  // re-base: next image is full
    }
    SketchWireImage img = sender.Ship(site.sketch());
    const FrameType type = img.kind == SketchWireKind::kFull
                               ? FrameType::kSketch
                               : img.kind == SketchWireKind::kDelta
                                     ? FrameType::kSketchDelta
                                     : FrameType::kSketchRlz;
    return (*transport)
        ->SendPayload(type, kCoordinatorNode, std::move(img.bytes));
  };
  uint64_t since_sync = 0;
  for (const StreamEvent& e : shard) {
    site.Ingest(e.key, e.ts);
    if (++since_sync >= f.sync_every) {
      since_sync = 0;
      Status s = push_snapshot();
      if (!s.ok()) {
        std::fprintf(stderr, "site %d: push failed terminally: %s\n",
                     f.node, s.ToString().c_str());
        return 1;
      }
      // Pace the replay so a fault injection lands mid-run instead of
      // after an instantaneous replay (real sites stream, not burst).
      if (f.push_pause_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(f.push_pause_ms));
      }
    }
  }
  // Compressed runs ship the final state through the channel too, so the
  // coordinator can check the delta chain decodes bit-identically to the
  // kDone full snapshot.
  if (f.compress && !push_snapshot().ok()) return 1;
  Status s = (*transport)
                 ->SendPayload(FrameType::kDone, kCoordinatorNode,
                               SerializeSketch(site.sketch()));
  if (!s.ok()) return 1;
  if (!(*transport)->Flush().ok()) return 1;
  return 0;
}

// ---------------------------------------------------------------------------
// Coordinator process
// ---------------------------------------------------------------------------

pid_t SpawnSite(const char* exe, const Flags& f, int node, int port,
                uint32_t epoch) {
  pid_t pid = ::fork();
  if (pid != 0) return pid;
  std::string events = std::to_string(f.events);
  std::string window = std::to_string(f.window);
  std::string sync_every = std::to_string(f.sync_every);
  std::string pause = std::to_string(f.push_pause_ms);
  std::string seed = std::to_string(f.seed);
  std::string sites = std::to_string(f.sites);
  std::string node_s = std::to_string(node);
  std::string port_s = std::to_string(port);
  std::string epoch_s = std::to_string(epoch);
  std::vector<const char*> argv = {exe,
                                   "--role",
                                   "site",
                                   "--sites",
                                   sites.c_str(),
                                   "--events",
                                   events.c_str(),
                                   "--window",
                                   window.c_str(),
                                   "--sync-every",
                                   sync_every.c_str(),
                                   "--push-pause-ms",
                                   pause.c_str(),
                                   "--seed",
                                   seed.c_str(),
                                   "--node",
                                   node_s.c_str(),
                                   "--port",
                                   port_s.c_str(),
                                   "--epoch",
                                   epoch_s.c_str()};
  if (f.compress) argv.push_back("--compress");
  argv.push_back(nullptr);
  ::execv(exe, const_cast<char**>(argv.data()));
  std::perror("execv");
  ::_exit(127);
}

int CoordinatorMain(const Flags& f, const char* exe) {
  const EcmConfig cfg = MakeSketchConfig(f);
  std::vector<StreamEvent> events = MakeTrace(f);

  // Reference: the identical trace through the in-process loopback
  // runtime — per-site sketches fed the same shards in the same order.
  Coordinator<ExponentialHistogram> loopback(f.sites, cfg);
  for (const StreamEvent& e : events) {
    loopback.site(static_cast<int>(e.node)).Ingest(e.key, e.ts);
  }
  auto ref = loopback.CollectAndMerge();
  if (!ref.ok()) {
    std::fprintf(stderr, "loopback merge failed: %s\n",
                 ref.status().ToString().c_str());
    return 1;
  }

  // Coordinator server: store the latest snapshot per site; kDone marks
  // the final one. Compressed runs additionally decode every frame
  // through a per-site SketchReceiver keyed on the connection's rejoin
  // epoch (an epoch bump drops the delta base, forcing full resync).
  std::mutex mu;
  std::map<NodeId, std::vector<uint8_t>> final_snapshots;
  std::map<NodeId, uint64_t> snapshots_seen;
  std::map<NodeId, SketchReceiver<ExponentialHistogram>> receivers;
  uint64_t delta_frames = 0, rlz_frames = 0, full_frames = 0;
  uint64_t stale_rejects = 0, decode_failures = 0, chain_mismatches = 0;
  CoordinatorServer* srv = nullptr;  // set right after Start
  CompressionOptions copts;
  copts.mode = CompressionMode::kAuto;
  CoordinatorServer::Options copt;
  copt.heartbeat_timeout_ms = 1'000;
  auto server = CoordinatorServer::Start(
      0, copt, [&](const Frame& frame) {
        std::lock_guard<std::mutex> lk(mu);
        if (frame.type == FrameType::kSketch) ++snapshots_seen[frame.from];
        if (f.compress) {
          SketchWireKind kind;
          switch (frame.type) {
            case FrameType::kSketch:
              kind = SketchWireKind::kFull;
              ++full_frames;
              break;
            case FrameType::kSketchDelta:
              kind = SketchWireKind::kDelta;
              ++delta_frames;
              ++snapshots_seen[frame.from];
              break;
            case FrameType::kSketchRlz:
              kind = SketchWireKind::kRlz;
              ++rlz_frames;
              ++snapshots_seen[frame.from];
              break;
            default:
              kind = SketchWireKind::kFull;
              break;
          }
          if (frame.type == FrameType::kSketch ||
              frame.type == FrameType::kSketchDelta ||
              frame.type == FrameType::kSketchRlz) {
            auto [it, inserted] = receivers.try_emplace(frame.from, copts);
            SketchReceiver<ExponentialHistogram>& rx = it->second;
            const uint32_t epoch = srv->site(frame.from).epoch;
            if (epoch != rx.epoch()) rx.set_epoch(epoch);
            auto got = rx.Receive(kind, frame.payload.data(),
                                  frame.payload.size());
            if (!got.ok()) {
              if (got.status().code() == StatusCode::kStaleBase) {
                ++stale_rejects;
              } else {
                ++decode_failures;
                std::fprintf(stderr, "site %u frame decode: %s\n",
                             frame.from, got.status().ToString().c_str());
              }
            }
          }
          if (frame.type == FrameType::kDone) {
            // The delta chain must have reconstructed exactly the state
            // the site snapshots into kDone.
            auto it = receivers.find(frame.from);
            if (it == receivers.end() || it->second.sketch() == nullptr ||
                SerializeSketch(*it->second.sketch()) != frame.payload) {
              ++chain_mismatches;
              std::fprintf(stderr,
                           "FAIL: site %u delta chain != final snapshot\n",
                           frame.from);
            }
          }
        }
        if (frame.type == FrameType::kDone) {
          final_snapshots[frame.from] = frame.payload;
        }
      });
  if (!server.ok()) {
    std::fprintf(stderr, "server: %s\n", server.status().ToString().c_str());
    return 1;
  }
  srv = server->get();
  const int port = (*server)->port();
  std::printf("coordinator listening on 127.0.0.1:%d, spawning %d site "
              "processes (%" PRIu64 " events, sync every %" PRIu64 ")\n",
              port, f.sites, f.events, f.sync_every);

  std::vector<pid_t> pids(static_cast<size_t>(f.sites), -1);
  for (int k = 0; k < f.sites; ++k) {
    pids[static_cast<size_t>(k)] = SpawnSite(exe, f, k, port, 1);
  }

  // Drive the run: inject the kill when requested, wait for all sites to
  // finish, reap children. 90s deadline bounds CI hangs.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(90);
  bool killed = false;
  bool respawned = false;
  while (true) {
    if (std::chrono::steady_clock::now() > deadline) {
      std::fprintf(stderr, "FAIL: deadline exceeded\n");
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    if (f.kill_site >= 0 && !killed) {
      uint64_t seen = 0;
      {
        std::lock_guard<std::mutex> lk(mu);
        seen = snapshots_seen[f.kill_site];
      }
      if (seen >= f.kill_after &&
          !(*server)->site(f.kill_site).done) {
        pid_t victim = pids[static_cast<size_t>(f.kill_site)];
        std::printf("injecting fault: SIGKILL site %d (pid %d) after "
                    "%" PRIu64 " snapshots\n",
                    f.kill_site, victim, seen);
        ::kill(victim, SIGKILL);
        ::waitpid(victim, nullptr, 0);
        killed = true;
      }
    }
    if (killed && !respawned) {
      // Let the EOF-driven down-detection land, then restart the site
      // with the next epoch; it replays its shard from the trace.
      if ((*server)->site(f.kill_site).health == SiteHealth::kDown) {
        std::printf("site %d detected down (downs=%" PRIu64 "); "
                    "respawning with epoch 2\n",
                    f.kill_site, (*server)->downs());
        pids[static_cast<size_t>(f.kill_site)] =
            SpawnSite(exe, f, f.kill_site, port, 2);
        respawned = true;
      }
      continue;
    }
    size_t done = 0;
    {
      std::lock_guard<std::mutex> lk(mu);
      done = final_snapshots.size();
    }
    if (done == static_cast<size_t>(f.sites)) break;
  }
  for (int k = 0; k < f.sites; ++k) {
    ::waitpid(pids[static_cast<size_t>(k)], nullptr, 0);
  }

  // Merge the final snapshots exactly like the loopback reference.
  std::vector<EcmSketch<ExponentialHistogram>> remote;
  remote.reserve(static_cast<size_t>(f.sites));
  for (int k = 0; k < f.sites; ++k) {
    std::lock_guard<std::mutex> lk(mu);
    auto sk = DeserializeSketch<ExponentialHistogram>(final_snapshots[k]);
    if (!sk.ok()) {
      std::fprintf(stderr, "FAIL: snapshot of site %d: %s\n", k,
                   sk.status().ToString().c_str());
      return 1;
    }
    remote.push_back(std::move(*sk));
  }
  std::vector<const EcmSketch<ExponentialHistogram>*> ptrs;
  for (const auto& sk : remote) ptrs.push_back(&sk);
  auto merged =
      EcmSketch<ExponentialHistogram>::Merge(ptrs, cfg.epsilon_sw, 0);
  if (!merged.ok()) {
    std::fprintf(stderr, "FAIL: merge: %s\n",
                 merged.status().ToString().c_str());
    return 1;
  }

  // Per-site liveness summary.
  std::printf("\nsite status:\n");
  for (const SiteStatus& st : (*server)->site_status()) {
    std::printf("  site %d: joins=%u epoch=%u frames=%" PRIu64
                " payload=%.1f KB done=%d\n",
                st.node, st.joins, st.epoch, st.frames,
                st.payload_bytes / 1024.0, st.done ? 1 : 0);
  }
  std::printf("downs=%" PRIu64 " rejoins=%" PRIu64 " corrupt=%" PRIu64
              "; received %" PRIu64 " payload frames, %.1f KB\n",
              (*server)->downs(), (*server)->rejoins(),
              (*server)->corrupt_streams(), (*server)->stats().messages,
              (*server)->stats().bytes / 1024.0);

  // The gate: socket-run estimates must equal the loopback run's.
  const Timestamp now = std::max(ref->Now(), merged->Now());
  int mismatches = 0;
  double worst = 0.0;
  for (uint64_t key = 1; key <= 24; ++key) {
    const double want = ref->PointQueryAt(key, f.window, now);
    const double got = merged->PointQueryAt(key, f.window, now);
    const double diff = std::abs(want - got);
    worst = std::max(worst, diff);
    if (diff > 1e-6 * std::max(1.0, std::abs(want))) ++mismatches;
  }
  std::printf("\nloopback vs socket merged estimates: worst |diff| = %g "
              "over 24 point queries\n",
              worst);

  bool ok = mismatches == 0;
  if (f.compress) {
    std::lock_guard<std::mutex> lk(mu);
    std::printf("compression: %llu full, %llu delta, %llu rlz frames; "
                "%llu stale-base rejects\n",
                (unsigned long long)full_frames,
                (unsigned long long)delta_frames,
                (unsigned long long)rlz_frames,
                (unsigned long long)stale_rejects);
    if (delta_frames + rlz_frames == 0) {
      std::fprintf(stderr, "FAIL: --compress run shipped no compressed "
                           "frames\n");
      ok = false;
    }
    if (decode_failures > 0) {
      std::fprintf(stderr, "FAIL: %llu compressed frames failed to decode\n",
                   (unsigned long long)decode_failures);
      ok = false;
    }
    if (chain_mismatches > 0) {
      std::fprintf(stderr, "FAIL: %llu sites whose delta chain diverged "
                           "from the final snapshot\n",
                   (unsigned long long)chain_mismatches);
      ok = false;
    }
  }
  if (f.kill_site >= 0) {
    const SiteStatus st = (*server)->site(f.kill_site);
    if ((*server)->downs() < 1 || (*server)->rejoins() < 1 ||
        st.joins < 2 || !st.done) {
      std::fprintf(stderr,
                   "FAIL: expected a down + rejoin of site %d "
                   "(downs=%" PRIu64 " rejoins=%" PRIu64 " joins=%u)\n",
                   f.kill_site, (*server)->downs(), (*server)->rejoins(),
                   st.joins);
      ok = false;
    }
  }
  if (mismatches > 0) {
    std::fprintf(stderr, "FAIL: %d point-query mismatches\n", mismatches);
  }
  (*server)->Stop();
  std::printf("%s\n", ok ? "OK: multi-process run matches loopback"
                         : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Flags f = ParseFlags(argc, argv);
  if (f.role == "site") {
    if (f.node < 0 || f.port == 0) {
      std::fprintf(stderr, "site role needs --node and --port\n");
      return 2;
    }
    return SiteMain(f);
  }
  char exe[4096];
  ssize_t n = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  if (n <= 0) {
    std::fprintf(stderr, "cannot resolve /proc/self/exe\n");
    return 1;
  }
  exe[n] = '\0';
  return CoordinatorMain(f, exe);
}
