// Quickstart: build an ECM-sketch, feed a stream, ask sliding-window
// questions.
//
//   $ ./example_quickstart
//
// Walks through the three core capabilities: point queries over arbitrary
// in-window ranges, self-join size, and merging two distributed sketches.

#include <cinttypes>
#include <cstdio>

#include "src/core/ecm_sketch.h"
#include "src/stream/generators.h"

int main() {
  using namespace ecm;

  // An ECM-sketch over a time-based window of 60'000 ms (one minute),
  // with total error budget epsilon = 0.1 and failure probability 0.05.
  auto sketch_or = EcmEh::Create(/*epsilon=*/0.1, /*delta=*/0.05,
                                 WindowMode::kTimeBased,
                                 /*window_len=*/60'000, /*seed=*/42);
  if (!sketch_or.ok()) {
    std::fprintf(stderr, "config error: %s\n",
                 sketch_or.status().ToString().c_str());
    return 1;
  }
  EcmEh sketch = sketch_or.MoveValue();
  std::printf("ECM-EH sketch: %u x %d counters, eps_cm=%.4f eps_sw=%.4f\n",
              sketch.config().width, sketch.config().depth,
              sketch.config().epsilon_cm, sketch.config().epsilon_sw);

  // Feed one minute of a synthetic Zipf stream: key 1 is the hottest.
  ZipfStream::Config zc;
  zc.domain = 10'000;
  zc.skew = 1.1;
  zc.events_per_tick = 2.0;  // ~2 arrivals per millisecond
  zc.seed = 7;
  ZipfStream stream(zc);
  uint64_t fed = 0;
  StreamEvent last{};
  while (true) {
    StreamEvent e = stream.Next();
    if (e.ts > 60'000) break;
    sketch.Add(e.key, e.ts);
    last = e;
    ++fed;
  }
  std::printf("fed %" PRIu64 " events, last ts=%" PRIu64 " ms\n", fed,
              last.ts);
  std::printf("sketch memory: %zu bytes (stream would need ~%zu)\n",
              sketch.MemoryBytes(), fed * sizeof(StreamEvent));

  // Point queries over three trailing ranges.
  for (uint64_t range : {1'000ULL, 10'000ULL, 60'000ULL}) {
    std::printf("last %5" PRIu64 " ms: key 1 ~ %.0f hits, key 9999 ~ %.0f\n",
                range, sketch.PointQuery(1, range),
                sketch.PointQuery(9999, range));
  }

  // Self-join size (second frequency moment) of the last 10 seconds.
  std::printf("F2 of last 10 s ~ %.0f\n", sketch.SelfJoin(10'000));

  // Distributed usage: a second site builds a compatible sketch (same
  // config!), both are merged into a sketch of the combined stream.
  EcmEh site2(sketch.config());
  ZipfStream::Config zc2 = zc;
  zc2.seed = 8;
  ZipfStream stream2(zc2);
  while (true) {
    StreamEvent e = stream2.Next();
    if (e.ts > 60'000) break;
    site2.Add(e.key, e.ts);
  }
  auto merged = EcmEh::Merge({&sketch, &site2},
                             /*eps_prime_sw=*/sketch.config().epsilon_sw);
  if (!merged.ok()) {
    std::fprintf(stderr, "merge error: %s\n",
                 merged.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "merged: key 1 over full window ~ %.0f (site1 %.0f + site2 %.0f)\n",
      merged->PointQuery(1, 60'000), sketch.PointQuery(1, 60'000),
      site2.PointQuery(1, 60'000));
  return 0;
}
