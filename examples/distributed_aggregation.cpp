// Order-preserving aggregation walkthrough (§5): serializing per-site
// sketches, shipping them up a tree, and what the merge costs in error
// and bytes — including the count-based impossibility (Fig. 2).
//
//   $ ./example_distributed_aggregation

#include <cinttypes>
#include <cstdio>

#include "src/core/ecm_sketch.h"
#include "src/dist/aggregation_tree.h"
#include "src/dist/serialize.h"
#include "src/stream/snmp_like.h"

using namespace ecm;

int main() {
  constexpr uint64_t kWindowMs = 120'000;
  constexpr int kAps = 64;

  auto cfg = EcmConfig::Create(/*epsilon=*/0.1, /*delta=*/0.1,
                               WindowMode::kTimeBased, kWindowMs,
                               /*seed=*/5);
  if (!cfg.ok()) return 1;

  SnmpConfig sc;
  sc.num_events = 200'000;
  sc.num_aps = kAps;
  auto events = GenerateSnmpLike(sc);
  Timestamp now = events.back().ts;

  // 1. Each AP summarizes its local stream.
  std::vector<EcmSketch<ExponentialHistogram>> aps(
      kAps, EcmSketch<ExponentialHistogram>(*cfg));
  for (const auto& e : events) aps[e.node].Add(e.key, e.ts);
  for (auto& s : aps) s.AdvanceTo(now);

  // 2. Wire path: what one AP ships to its parent.
  auto wire = SerializeSketch(aps[0]);
  std::printf("per-AP sketch: %u x %d counters, %.1f KB on the wire\n",
              cfg->width, cfg->depth, wire.size() / 1024.0);
  auto back = DeserializeSketch<ExponentialHistogram>(wire);
  if (!back.ok()) return 1;
  std::printf("round-trip check: key 1 estimate %.0f == %.0f\n",
              back->PointQueryAt(1, kWindowMs, now),
              aps[0].PointQueryAt(1, kWindowMs, now));

  // 3. Full tree aggregation with exact byte accounting.
  auto agg = AggregateTree(aps);
  if (!agg.ok()) return 1;
  std::printf(
      "\naggregated %d APs in %d rounds: %" PRIu64 " messages, %.1f KB "
      "total transfer\n",
      kAps, agg->height, agg->network.messages,
      agg->network.bytes / 1024.0);

  // 4. Error cost of the lossy merge (Theorem 4 / §5.1 multi-level).
  double bound = MultiLevelErrorBound(cfg->epsilon_sw, agg->height);
  std::printf(
      "window-error bound after %d levels: %.3f (leaves were %.3f); to "
      "hit 0.05 at the root, configure leaves with eps_sw = %.4f\n",
      agg->height, bound, cfg->epsilon_sw,
      LeafEpsilonForTarget(0.05, agg->height));

  // 5. The busiest client, network-wide, over the last 2 minutes.
  uint64_t hot_key = 1;
  double hot_est = 0.0;
  for (uint64_t k = 1; k <= sc.domain; ++k) {
    double est = agg->root.PointQueryAt(k, kWindowMs, now);
    if (est > hot_est) {
      hot_est = est;
      hot_key = k;
    }
  }
  std::printf("\nbusiest client: MAC #%" PRIu64 " with ~%.0f records\n",
              hot_key, hot_est);

  // 6. Fig. 2: the same thing on count-based windows is impossible.
  auto count_cfg =
      EcmConfig::Create(0.1, 0.1, WindowMode::kCountBased, 10'000, 5);
  EcmSketch<ExponentialHistogram> ca(*count_cfg), cb(*count_cfg);
  ca.Add(1, 0);
  cb.Add(2, 0);
  auto refused = EcmEh::Merge({&ca, &cb}, count_cfg->epsilon_sw);
  std::printf("\ncount-based merge: %s\n",
              refused.status().ToString().c_str());
  return 0;
}
