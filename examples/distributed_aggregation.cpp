// Order-preserving aggregation walkthrough (§5) on the shared runtime:
// multi-threaded per-site ingest, serializing sketches for the wire,
// shipping them up a tree through the Transport, and what the merge costs
// in error and bytes — including the count-based impossibility (Fig. 2).
//
//   $ ./example_distributed_aggregation

#include <cinttypes>
#include <cstdio>

#include "src/core/ecm_sketch.h"
#include "src/dist/runtime.h"
#include "src/dist/serialize.h"
#include "src/stream/snmp_like.h"
#include "src/util/timer.h"

using namespace ecm;

int main() {
  constexpr uint64_t kWindowMs = 120'000;
  constexpr int kAps = 64;

  auto cfg = EcmConfig::Create(/*epsilon=*/0.1, /*delta=*/0.1,
                               WindowMode::kTimeBased, kWindowMs,
                               /*seed=*/5);
  if (!cfg.ok()) return 1;

  SnmpConfig sc;
  sc.num_events = 200'000;
  sc.num_aps = kAps;
  auto events = GenerateSnmpLike(sc);
  Timestamp now = events.back().ts;

  // 1. One runtime: 64 AP sites under a coordinator, one transport
  //    charging every transfer. Ingest runs sharded and multi-threaded.
  LoopbackTransport transport;
  Coordinator<ExponentialHistogram> coord(kAps, *cfg, &transport);
  Timer timer;
  auto report = ParallelIngest(
      events, kAps,
      [&coord](int site, const StreamEvent& e) {
        coord.site(site).Ingest(e.key, e.ts);
        return false;  // plain ingest: no sync barrier needed
      },
      [] {}, ParallelIngestOptions{/*num_workers=*/0, /*batch_size=*/4'096,
                                   /*final_sync=*/false});
  std::printf("ingested %" PRIu64 " SNMP records into %d AP sites with %d "
              "workers (%.1fM records/s)\n",
              report.events, kAps, report.workers,
              static_cast<double>(report.events) / timer.ElapsedSeconds() /
                  1e6);
  for (int i = 0; i < kAps; ++i) {
    coord.site(i).mutable_sketch().AdvanceTo(now);
  }

  // 2. Wire path: what one AP ships to its parent.
  auto wire = SerializeSketch(coord.site(0).sketch());
  std::printf("\nper-AP sketch: %u x %d counters, %.1f KB on the wire\n",
              cfg->width, cfg->depth, wire.size() / 1024.0);
  auto back = DeserializeSketch<ExponentialHistogram>(wire);
  if (!back.ok()) return 1;
  std::printf("round-trip check: key 1 estimate %.0f == %.0f\n",
              back->PointQueryAt(1, kWindowMs, now),
              coord.site(0).sketch().PointQueryAt(1, kWindowMs, now));

  // 3. Full tree aggregation through the runtime's transport.
  auto agg = coord.AggregateUp();
  if (!agg.ok()) return 1;
  std::printf(
      "\naggregated %d APs in %d rounds: %" PRIu64 " messages, %.1f KB "
      "total transfer (transport agrees: %" PRIu64 " msgs, %.1f KB)\n",
      kAps, agg->height, agg->network.messages, agg->network.bytes / 1024.0,
      transport.stats().messages, transport.stats().bytes / 1024.0);

  // 4. Error cost of the lossy merge (Theorem 4 / §5.1 multi-level).
  double bound = MultiLevelErrorBound(cfg->epsilon_sw, agg->height);
  std::printf(
      "window-error bound after %d levels: %.3f (leaves were %.3f); to "
      "hit 0.05 at the root, configure leaves with eps_sw = %.4f\n",
      agg->height, bound, cfg->epsilon_sw,
      LeafEpsilonForTarget(0.05, agg->height));

  // 5. The busiest client, network-wide, over the last 2 minutes.
  uint64_t hot_key = 1;
  double hot_est = 0.0;
  for (uint64_t k = 1; k <= sc.domain; ++k) {
    double est = agg->root.PointQueryAt(k, kWindowMs, now);
    if (est > hot_est) {
      hot_est = est;
      hot_key = k;
    }
  }
  std::printf("\nbusiest client: MAC #%" PRIu64 " with ~%.0f records\n",
              hot_key, hot_est);

  // 6. Fig. 2: the same thing on count-based windows is impossible.
  auto count_cfg =
      EcmConfig::Create(0.1, 0.1, WindowMode::kCountBased, 10'000, 5);
  EcmSketch<ExponentialHistogram> ca(*count_cfg), cb(*count_cfg);
  ca.Add(1, 0);
  cb.Add(2, 0);
  auto refused = EcmEh::Merge({&ca, &cb}, count_cfg->epsilon_sw);
  std::printf("\ncount-based merge: %s\n",
              refused.status().ToString().c_str());
  return 0;
}
