// Distributed DDoS / hot-target detection — the paper's §1 motivating
// scenario (Jain et al.'s distributed triggers).
//
//   $ ./example_ddos_monitor
//
// 16 edge routers each observe a stream of (timestamp, target-IP) flow
// records and maintain a local time-based ECM-sketch of the last 60 s.
// Periodically the coordinator aggregates the sketches up a binary tree
// (order-preserving merge, §5) and checks every recently-seen target
// against a per-target capacity threshold — catching attacks whose
// per-router volume is too small to trigger any local alarm.

#include <cinttypes>
#include <cstdio>
#include <set>

#include "src/core/ecm_sketch.h"
#include "src/dist/aggregation_tree.h"
#include "src/stream/generators.h"
#include "src/util/random.h"

using namespace ecm;

namespace {

constexpr int kRouters = 16;
constexpr uint64_t kWindowMs = 60'000;
constexpr uint64_t kAttackTarget = 0xDEAD;  // the victim IP (key)
constexpr uint64_t kThreshold = 6'000;      // victim capacity per minute

}  // namespace

int main() {
  auto cfg = EcmConfig::Create(/*epsilon=*/0.05, /*delta=*/0.05,
                               WindowMode::kTimeBased, kWindowMs,
                               /*seed=*/2026);
  if (!cfg.ok()) {
    std::fprintf(stderr, "%s\n", cfg.status().ToString().c_str());
    return 1;
  }
  std::vector<EcmSketch<ExponentialHistogram>> routers(
      kRouters, EcmSketch<ExponentialHistogram>(*cfg));

  // Background traffic: Zipf over 100k IPs, ~4 records/ms network-wide.
  ZipfStream::Config zc;
  zc.domain = 100'000;
  zc.skew = 1.0;
  zc.num_nodes = kRouters;
  zc.events_per_tick = 4.0;
  zc.seed = 7;
  ZipfStream background(zc);
  Rng attack_rng(99);

  Timestamp now = 0;
  uint64_t fed = 0;
  bool attack_started = false;
  std::printf("monitoring %d routers, window %" PRIu64
              " ms, victim threshold %" PRIu64 " req/min\n\n",
              kRouters, kWindowMs, kThreshold);

  while (now < 180'000) {  // three minutes of traffic
    StreamEvent e = background.Next();
    now = e.ts;
    routers[e.node].Add(e.key, e.ts);
    ++fed;

    // After t=90s, a distributed attack: every router sees a thin extra
    // trickle toward the victim (~5 req/s/router, under the local alarm
    // bar; ~80 req/s aggregate, far above the victim's capacity).
    if (now > 90'000 && attack_rng.Bernoulli(0.12)) {
      uint32_t router = static_cast<uint32_t>(attack_rng.Uniform(kRouters));
      routers[router].Add(kAttackTarget, now);
      attack_started = true;
    }

    // Coordinator pass every 15 s of stream time.
    static Timestamp last_check = 0;
    if (now - last_check >= 15'000) {
      last_check = now;
      for (auto& r : routers) r.AdvanceTo(now);
      auto agg = AggregateTree(routers);
      if (!agg.ok()) {
        std::fprintf(stderr, "merge: %s\n", agg.status().ToString().c_str());
        return 1;
      }
      double victim = agg->root.PointQueryAt(kAttackTarget, kWindowMs, now);
      double local_max = 0.0;
      for (const auto& r : routers) {
        local_max =
            std::max(local_max, r.PointQueryAt(kAttackTarget, kWindowMs, now));
      }
      std::printf(
          "t=%6.1fs  victim global=%7.0f req/min  max-local=%5.0f  "
          "transfer=%.1f KB  %s\n",
          now / 1000.0, victim, local_max,
          agg->network.bytes / 1024.0,
          victim >= kThreshold ? "*** ALERT: distributed flood ***"
          : attack_started     ? "(attack ramping)"
                              : "");
    }
  }
  std::printf("\nprocessed %" PRIu64 " flow records\n", fed);
  return 0;
}
