// Distributed DDoS / hot-target detection — the paper's §1 motivating
// scenario (Jain et al.'s distributed triggers), on the shared runtime.
//
//   $ ./example_ddos_monitor
//
// 16 edge routers each observe a stream of (timestamp, target-IP) flow
// records. A GeometricPointMonitor watches the victim IP across all
// routers with incremental O(d) drift tracking — catching an attack whose
// per-router volume is too small to trigger any local alarm — while the
// sharded multi-threaded ParallelIngest drives all routers concurrently
// (one worker per router shard, coordinator drained on the sync barrier).
// A final aggregation-tree pass over the same runtime cross-checks the
// global view; every transfer of both substrates is charged to one shared
// LoopbackTransport.

#include <cinttypes>
#include <cstdio>
#include <vector>

#include "src/dist/geometric.h"
#include "src/dist/runtime.h"
#include "src/stream/generators.h"
#include "src/util/random.h"
#include "src/util/timer.h"

using namespace ecm;

namespace {

constexpr int kRouters = 16;
constexpr uint64_t kWindowMs = 60'000;
constexpr uint64_t kAttackTarget = 0xDEAD;  // the victim IP (key)
constexpr uint64_t kThreshold = 6'000;      // victim capacity per minute

}  // namespace

int main() {
  auto cfg = EcmConfig::Create(/*epsilon=*/0.05, /*delta=*/0.05,
                               WindowMode::kTimeBased, kWindowMs,
                               /*seed=*/2026);
  if (!cfg.ok()) {
    std::fprintf(stderr, "%s\n", cfg.status().ToString().c_str());
    return 1;
  }

  // 1. Three minutes of traffic: Zipf background over 100k IPs at ~4
  //    records/ms network-wide; after t=90s every router additionally
  //    sees a thin trickle toward the victim (~5 req/s/router, under any
  //    local alarm bar; ~80 req/s aggregate, far above capacity).
  ZipfStream::Config zc;
  zc.domain = 100'000;
  zc.skew = 1.0;
  zc.num_nodes = kRouters;
  zc.events_per_tick = 4.0;
  zc.seed = 7;
  ZipfStream background(zc);
  Rng attack_rng(99);
  std::vector<StreamEvent> script;
  Timestamp now = 0;
  while (now < 180'000) {
    StreamEvent e = background.Next();
    now = e.ts;
    script.push_back(e);
    if (now > 90'000 && attack_rng.Bernoulli(0.12)) {
      script.push_back(StreamEvent{
          now, kAttackTarget,
          static_cast<uint32_t>(attack_rng.Uniform(kRouters))});
    }
  }

  // 2. Watch the victim across all routers and drive the whole fleet
  //    multi-threaded.
  LoopbackTransport transport;
  GeometricPointMonitor::Config mc;
  mc.key = kAttackTarget;
  mc.threshold = kThreshold;
  mc.check_every = 4;
  GeometricPointMonitor monitor(kRouters, *cfg, mc, &transport);

  ParallelIngestOptions opts;
  opts.batch_size = 2'048;
  Timer timer;
  auto report = ParallelIngest(
      script, kRouters,
      [&monitor](int site, const StreamEvent& e) {
        return monitor.LocalProcess(site, e.key, e.ts);
      },
      [&monitor] { monitor.GlobalSync(); }, opts);
  double secs = timer.ElapsedSeconds();

  const MonitorStats s = monitor.stats();
  std::printf("monitored %d routers, window %" PRIu64
              " ms, victim threshold %" PRIu64 " req/min\n",
              kRouters, kWindowMs, kThreshold);
  std::printf("drove %" PRIu64 " flow records with %d workers in %.2fs "
              "(%.1fM records/s)\n",
              report.events, report.workers, secs,
              static_cast<double>(report.events) / secs / 1e6);
  std::printf("geometric monitor: %" PRIu64 " syncs, %" PRIu64
              " sphere tests, %.1f KB shipped\n",
              s.syncs, s.local_checks, s.network.bytes / 1024.0);
  std::printf("victim verdict: %s (global estimate %.0f req/min at last "
              "sync)\n",
              monitor.AboveThreshold() ? "*** distributed flood detected ***"
                                       : "below capacity",
              monitor.GlobalEstimate());

  // No single router ever justified a local alarm.
  double local_max = 0.0;
  Timestamp end = script.back().ts;
  for (int i = 0; i < kRouters; ++i) {
    local_max = std::max(local_max, monitor.site_sketch(i).PointQueryAt(
                                        kAttackTarget, kWindowMs, end));
  }
  std::printf("max per-router victim estimate: %.0f req/min (%.0f%% of "
              "threshold)\n",
              local_max, 100.0 * local_max / kThreshold);

  // 3. Cross-check with the other substrate, charged to the SAME
  //    transport: aggregate the routers' sketches up a binary tree and
  //    point-query the root.
  std::vector<const EcmSketch<ExponentialHistogram>*> leaves;
  for (int i = 0; i < kRouters; ++i) leaves.push_back(&monitor.site_sketch(i));
  auto agg = AggregateTreePtrs(leaves, /*eps_prime_sw=*/-1.0, &transport);
  if (!agg.ok()) {
    std::fprintf(stderr, "merge: %s\n", agg.status().ToString().c_str());
    return 1;
  }
  std::printf("\ntree cross-check: victim global = %.0f req/min over %d "
              "merge rounds (%.1f KB)\n",
              agg->root.PointQueryAt(kAttackTarget, kWindowMs, end),
              agg->height, agg->network.bytes / 1024.0);
  NetworkStats total = transport.stats();
  std::printf("shared transport total: %" PRIu64 " messages, %.1f KB "
              "(monitor + tree, one currency)\n",
              total.messages, total.bytes / 1024.0);
  return monitor.AboveThreshold() ? 0 : 1;
}
